package charfw

import (
	"context"
	"math"
	"testing"

	"nvmllc/internal/prism"
	"nvmllc/internal/reference"
)

// syntheticFramework builds workloads whose energy is exactly linear in
// global write entropy.
func syntheticFramework() (*Framework, []string, map[string]float64) {
	f := New()
	ws := []string{"a", "b", "c", "d", "e"}
	values := map[string]float64{}
	for i, w := range ws {
		hwg := float64(i + 1)
		f.AddWorkload(w, prism.Features{
			GlobalWriteEntropy: hwg,
			GlobalReadEntropy:  float64((i * 7) % 5), // noise
			TotalReads:         uint64(100 + i),
		})
		values[w] = 3*hwg + 2
	}
	return f, ws, values
}

func TestTrainPredictorSelectsRightFeature(t *testing.T) {
	f, ws, values := syntheticFramework()
	p, err := f.TrainPredictor(context.Background(), ws, "energy", values)
	if err != nil {
		t.Fatal(err)
	}
	if p.Feature != "H_wg" {
		t.Errorf("selected feature %q, want H_wg", p.Feature)
	}
	if math.Abs(p.Fit.Slope-3) > 1e-9 || math.Abs(p.Fit.Intercept-2) > 1e-9 {
		t.Errorf("fit = %+v, want slope 3 intercept 2", p.Fit)
	}
	if p.Fit.R2 < 0.999 {
		t.Errorf("R² = %g, want ≈1", p.Fit.R2)
	}
	// Prediction on a new workload.
	got := p.Predict(prism.Features{GlobalWriteEntropy: 10})
	if math.Abs(got-32) > 1e-9 {
		t.Errorf("Predict = %g, want 32", got)
	}
}

func TestPredictVectorErrors(t *testing.T) {
	f, ws, values := syntheticFramework()
	p, err := f.TrainPredictor(context.Background(), ws, "energy", values)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.PredictVector([]float64{1}); err == nil {
		t.Error("short vector accepted")
	}
}

func TestLeaveOneOutPerfectModel(t *testing.T) {
	f, ws, values := syntheticFramework()
	errs, err := f.LeaveOneOut(context.Background(), ws, "energy", values)
	if err != nil {
		t.Fatal(err)
	}
	for w, e := range errs {
		if e > 1e-9 {
			t.Errorf("%s: LOO error %g on a perfectly linear target", w, e)
		}
	}
	if _, err := f.LeaveOneOut(context.Background(), ws[:2], "energy", values); err == nil {
		t.Error("LOO with 2 workloads accepted")
	}
}

func TestWorstHoldoutsOrdering(t *testing.T) {
	order := WorstHoldouts(map[string]float64{"x": 0.1, "y": 0.9, "z": 0.5})
	if order[0] != "y" || order[2] != "x" {
		t.Errorf("ordering = %v", order)
	}
}

func TestPredictorOnPaperFeatures(t *testing.T) {
	// Train an energy predictor on the paper's 16 characterized workloads
	// with energies proportional to unique writes; it must recover the
	// relationship and generalize under leave-one-out.
	f := FromFeatureMap(reference.PaperFeatures())
	ws := f.Workloads()
	values := map[string]float64{}
	for name, feat := range reference.PaperFeatures() {
		values[name] = 0.5 + float64(feat.UniqueWrites)*1e-8
	}
	p, err := f.TrainPredictor(context.Background(), ws, "energy", values)
	if err != nil {
		t.Fatal(err)
	}
	if p.Feature != "w_uniq" {
		t.Errorf("selected %q, want w_uniq", p.Feature)
	}
	errs, err := f.LeaveOneOut(context.Background(), ws, "energy", values)
	if err != nil {
		t.Fatal(err)
	}
	for w, e := range errs {
		if e > 0.01 {
			t.Errorf("%s: LOO relative error %g", w, e)
		}
	}
}

func TestTrainPredictorDegenerate(t *testing.T) {
	f := New()
	f.AddWorkload("a", prism.Features{})
	f.AddWorkload("b", prism.Features{})
	values := map[string]float64{"a": 1, "b": 2}
	if _, err := f.TrainPredictor(context.Background(), []string{"a", "b"}, "energy", values); err == nil {
		t.Error("all-constant features accepted")
	}
}
