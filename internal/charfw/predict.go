package charfw

import (
	"context"
	"fmt"
	"sort"

	"nvmllc/internal/prism"
	"nvmllc/internal/stats"
)

// Predictor realizes the "learning" half of the paper's framework: having
// found which architecture-agnostic feature correlates most with a
// target metric (Section VI), it fits a linear model on that feature and
// predicts the metric for unseen workloads from their characterization
// alone — the designer's what-if tool ("given my application's write
// entropy, what LLC energy should I expect on Jan_S?").
type Predictor struct {
	// Metric is what the model predicts ("energy" or "speedup").
	Metric string
	// Feature is the selected predictor feature name.
	Feature string
	// featureIdx is its index in the framework's feature order.
	featureIdx int
	// Fit is the underlying least-squares model.
	Fit stats.Linear
}

// TrainPredictor learns a single-feature linear model over the given
// workloads: it picks the feature with the strongest |Pearson r| against
// the target values, then fits target ≈ a·feature + b.
func (f *Framework) TrainPredictor(ctx context.Context, workloads []string, metric string, values map[string]float64) (*Predictor, error) {
	corr, err := f.Correlate(ctx, workloads, metric, values)
	if err != nil {
		return nil, err
	}
	best, bestR := -1, -1.0
	for i, r := range corr.R {
		if r > bestR {
			best, bestR = i, r
		}
	}
	if best < 0 || bestR == 0 {
		return nil, fmt.Errorf("charfw: no feature correlates with %s", metric)
	}
	xs := make([]float64, 0, len(workloads))
	ys := make([]float64, 0, len(workloads))
	for _, w := range workloads {
		xs = append(xs, f.features[w][best])
		ys = append(ys, values[w])
	}
	fit, err := stats.FitLinear(xs, ys)
	if err != nil {
		return nil, err
	}
	return &Predictor{
		Metric:     metric,
		Feature:    f.featureNames[best],
		featureIdx: best,
		Fit:        fit,
	}, nil
}

// Predict estimates the metric for a workload characterized by feat.
func (p *Predictor) Predict(feat prism.Features) float64 {
	return p.Fit.Predict(feat.Vector()[p.featureIdx])
}

// PredictVector estimates from a raw feature vector in prism.FeatureNames
// order.
func (p *Predictor) PredictVector(v []float64) (float64, error) {
	if p.featureIdx >= len(v) {
		return 0, fmt.Errorf("charfw: feature vector too short (%d)", len(v))
	}
	return p.Fit.Predict(v[p.featureIdx]), nil
}

// LeaveOneOut reports the predictor family's generalization: for each
// workload, a model is trained on the others and evaluated on it. It
// returns the per-workload absolute relative errors, sorted worst-first,
// keyed by workload name.
func (f *Framework) LeaveOneOut(ctx context.Context, workloads []string, metric string, values map[string]float64) (map[string]float64, error) {
	if len(workloads) < 3 {
		return nil, fmt.Errorf("charfw: leave-one-out needs ≥ 3 workloads, have %d", len(workloads))
	}
	errs := make(map[string]float64, len(workloads))
	for i, holdout := range workloads {
		train := make([]string, 0, len(workloads)-1)
		train = append(train, workloads[:i]...)
		train = append(train, workloads[i+1:]...)
		p, err := f.TrainPredictor(ctx, train, metric, values)
		if err != nil {
			return nil, fmt.Errorf("charfw: holdout %s: %w", holdout, err)
		}
		got, err := p.PredictVector(f.features[holdout])
		if err != nil {
			return nil, err
		}
		want := values[holdout]
		if want == 0 {
			errs[holdout] = 0
			continue
		}
		e := (got - want) / want
		if e < 0 {
			e = -e
		}
		errs[holdout] = e
	}
	return errs, nil
}

// WorstHoldouts orders leave-one-out errors worst-first.
func WorstHoldouts(errs map[string]float64) []string {
	names := make([]string, 0, len(errs))
	for n := range errs {
		names = append(names, n)
	}
	sort.Slice(names, func(a, b int) bool { return errs[names[a]] > errs[names[b]] })
	return names
}
