package charfw

import (
	"bytes"
	"context"
	"math"
	"testing"

	"nvmllc/internal/prism"
	"nvmllc/internal/reference"
)

func TestFromPaperFeatures(t *testing.T) {
	f := FromFeatureMap(reference.PaperFeatures())
	if got := len(f.Workloads()); got != 16 {
		t.Fatalf("workloads = %d, want 16", got)
	}
	if got := len(f.FeatureNames()); got != len(prism.FeatureNames) {
		t.Fatalf("feature names = %d", got)
	}
}

func TestAddWorkloadVector(t *testing.T) {
	f := New()
	if err := f.AddWorkloadVector("w", make([]float64, len(prism.FeatureNames))); err != nil {
		t.Fatal(err)
	}
	if err := f.AddWorkloadVector("bad", []float64{1}); err == nil {
		t.Error("short vector accepted")
	}
}

func TestCorrelatePerfectFeature(t *testing.T) {
	f := New()
	// Three synthetic workloads whose energy equals their write entropy.
	mk := func(hwg float64) prism.Features {
		return prism.Features{GlobalWriteEntropy: hwg, TotalReads: 100, TotalWrites: uint64(200 - 10*hwg)}
	}
	f.AddWorkload("a", mk(1))
	f.AddWorkload("b", mk(5))
	f.AddWorkload("c", mk(9))
	energy := map[string]float64{"a": 10, "b": 50, "c": 90}
	c, err := f.Correlate(context.Background(), []string{"a", "b", "c"}, "energy", energy)
	if err != nil {
		t.Fatal(err)
	}
	// H_wg is index 2 in FeatureNames.
	if math.Abs(c.R[2]-1) > 1e-9 {
		t.Errorf("H_wg correlation = %g, want 1", c.R[2])
	}
	// H_rg is constant (0 everywhere): correlation undefined → 0.
	if c.R[0] != 0 {
		t.Errorf("constant feature correlation = %g, want 0", c.R[0])
	}
}

func TestCorrelateErrors(t *testing.T) {
	f := FromFeatureMap(reference.PaperFeatures())
	if _, err := f.Correlate(context.Background(), []string{"leela"}, "energy", map[string]float64{"leela": 1}); err == nil {
		t.Error("single workload accepted")
	}
	if _, err := f.Correlate(context.Background(), []string{"leela", "nosuch"}, "energy",
		map[string]float64{"leela": 1, "nosuch": 2}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := f.Correlate(context.Background(), []string{"leela", "deepsjeng"}, "energy",
		map[string]float64{"leela": 1}); err == nil {
		t.Error("missing target value accepted")
	}
}

func TestPanelAndHeatmap(t *testing.T) {
	f := FromFeatureMap(reference.PaperFeatures())
	ws := []string{"deepsjeng", "leela", "exchange2"}
	tg := Targets{
		Name:    "Jan_S fixed-capacity",
		Energy:  map[string]float64{"deepsjeng": 3, "leela": 2, "exchange2": 1},
		Speedup: map[string]float64{"deepsjeng": 0.9, "leela": 1.0, "exchange2": 1.1},
	}
	p, err := f.PanelFor(context.Background(), ws, tg)
	if err != nil {
		t.Fatal(err)
	}
	h := p.Heatmap()
	if len(h.Cells) != 2 || len(h.Cells[0]) != len(prism.FeatureNames) {
		t.Fatalf("heatmap shape %dx%d", len(h.Cells), len(h.Cells[0]))
	}
	var buf bytes.Buffer
	if err := h.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty heatmap render")
	}
}

func TestPanelTopFeaturesAndFeatureR(t *testing.T) {
	f := FromFeatureMap(reference.PaperFeatures())
	ws := []string{"deepsjeng", "leela", "exchange2"}
	// Energy proportional to unique writes: deepsjeng 68.3M, leela 5.06M,
	// exchange2 0.02M.
	tg := Targets{
		Name:    "test",
		Energy:  map[string]float64{"deepsjeng": 68.28, "leela": 5.06, "exchange2": 0.02},
		Speedup: map[string]float64{"deepsjeng": 1, "leela": 2, "exchange2": 3},
	}
	p, err := f.PanelFor(context.Background(), ws, tg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.FeatureR("energy", "w_uniq")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-9 {
		t.Errorf("w_uniq energy correlation = %g, want 1", r)
	}
	top, err := p.TopFeatures("energy", 0.99)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range top {
		if n == "w_uniq" {
			found = true
		}
	}
	if !found {
		t.Errorf("w_uniq not in top features %v", top)
	}
	if _, err := p.TopFeatures("nope", 0.5); err == nil {
		t.Error("bad metric accepted")
	}
	if _, err := p.FeatureR("energy", "nope"); err == nil {
		t.Error("bad feature accepted")
	}
}

func TestPaperAICorrelationShape(t *testing.T) {
	// Reconstruct the paper's headline: with the published Table VI
	// features and energies that track write-footprint behavior (as the
	// paper measured for Jan_S/Xue_S/Hayakawa_R), the AI-domain
	// correlation is ~0.99 for write entropy and write footprints and much
	// lower for total reads/writes.
	f := FromFeatureMap(reference.PaperFeatures())
	ws := []string{"deepsjeng", "leela", "exchange2"}
	// Energy ordering: deepsjeng (largest write working set) > leela >
	// exchange2, roughly linear in H_wg as the paper reports.
	tg := Targets{
		Name:    "AI",
		Energy:  map[string]float64{"deepsjeng": 11.9, "leela": 9.0, "exchange2": 8.6},
		Speedup: map[string]float64{"deepsjeng": 0.97, "leela": 0.99, "exchange2": 1.0},
	}
	p, err := f.PanelFor(context.Background(), ws, tg)
	if err != nil {
		t.Fatal(err)
	}
	hwg, _ := p.FeatureR("energy", "H_wg")
	wuniq, _ := p.FeatureR("energy", "w_uniq")
	rtot, _ := p.FeatureR("energy", "r_total")
	wtot, _ := p.FeatureR("energy", "w_total")
	if hwg < 0.95 {
		t.Errorf("H_wg correlation = %.3f, want ≥ 0.95", hwg)
	}
	if wuniq < 0.85 {
		t.Errorf("w_uniq correlation = %.3f, want ≥ 0.85", wuniq)
	}
	if rtot > 0.75 || wtot > 0.75 {
		t.Errorf("total footprint correlations = %.3f/%.3f, want low", rtot, wtot)
	}
}
