// Package charfw implements the paper's workload-characterization
// framework (Section VI, Figure 3): it compiles an array of
// architecture-agnostic features per workload (the Table VI metrics),
// pairs it with the measured energy and speedup of an NVM-based LLC
// system, and computes the per-feature linear correlation used to learn
// which workload behaviors predict NVM-based LLC outcomes (Figure 4).
package charfw

import (
	"context"
	"fmt"
	"sort"

	"nvmllc/internal/prism"
	"nvmllc/internal/stats"
	"nvmllc/internal/tablefmt"
)

// Framework holds the feature table: one feature vector per workload, in
// prism.FeatureNames order.
type Framework struct {
	featureNames []string
	features     map[string][]float64
}

// New creates an empty framework with the standard Table VI feature names.
func New() *Framework {
	return &Framework{
		featureNames: append([]string(nil), prism.FeatureNames...),
		features:     make(map[string][]float64),
	}
}

// AddWorkload registers a workload's features.
func (f *Framework) AddWorkload(name string, feat prism.Features) {
	f.features[name] = feat.Vector()
}

// AddWorkloadVector registers a raw feature vector (must match the
// framework's feature count).
func (f *Framework) AddWorkloadVector(name string, v []float64) error {
	if len(v) != len(f.featureNames) {
		return fmt.Errorf("charfw: workload %s has %d features, want %d", name, len(v), len(f.featureNames))
	}
	f.features[name] = append([]float64(nil), v...)
	return nil
}

// FromFeatureMap builds a framework from a features-by-workload map (e.g.
// reference.PaperFeatures or a prism characterization run).
func FromFeatureMap(m map[string]prism.Features) *Framework {
	f := New()
	for name, feat := range m {
		f.AddWorkload(name, feat)
	}
	return f
}

// Workloads lists the registered workloads, sorted.
func (f *Framework) Workloads() []string {
	out := make([]string, 0, len(f.features))
	for name := range f.features {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// FeatureNames returns the feature column names.
func (f *Framework) FeatureNames() []string {
	return append([]string(nil), f.featureNames...)
}

// Targets holds one system configuration's measured outcomes keyed by
// workload: the LLC energy and the speedup over the SRAM baseline
// (the outputs of Section V feeding Figure 3's correlation stage).
type Targets struct {
	// Name identifies the LLC and configuration, e.g. "Jan_S
	// fixed-capacity".
	Name string
	// Energy is the (normalized or absolute) LLC energy per workload.
	Energy map[string]float64
	// Speedup is the speedup over SRAM per workload.
	Speedup map[string]float64
}

// Correlation is the per-feature |Pearson r| between one target metric and
// each feature.
type Correlation struct {
	// Metric is "energy" or "speedup".
	Metric string
	// R holds |r| per feature, aligned with FeatureNames; undefined
	// correlations (constant series) are reported as 0.
	R []float64
}

// Correlate computes the per-feature correlation of one target metric over
// the given workloads. Every workload must have both a feature vector and
// a target value. The context is honored between feature columns, matching
// the context-first convention of the rest of the experiment stack.
func (f *Framework) Correlate(ctx context.Context, workloads []string, metric string, values map[string]float64) (Correlation, error) {
	if err := ctx.Err(); err != nil {
		return Correlation{}, err
	}
	if len(workloads) < 2 {
		return Correlation{}, fmt.Errorf("charfw: need ≥ 2 workloads to correlate, have %d", len(workloads))
	}
	y := make([]float64, 0, len(workloads))
	xs := make([][]float64, len(f.featureNames))
	for _, w := range workloads {
		feat, ok := f.features[w]
		if !ok {
			return Correlation{}, fmt.Errorf("charfw: no features for workload %q", w)
		}
		v, ok := values[w]
		if !ok {
			return Correlation{}, fmt.Errorf("charfw: no %s value for workload %q", metric, w)
		}
		y = append(y, v)
		for i := range f.featureNames {
			xs[i] = append(xs[i], feat[i])
		}
	}
	c := Correlation{Metric: metric, R: make([]float64, len(f.featureNames))}
	for i := range f.featureNames {
		if err := ctx.Err(); err != nil {
			return Correlation{}, err
		}
		r, ok, err := stats.AbsPearson(xs[i], y)
		if err != nil {
			return Correlation{}, err
		}
		if ok {
			c.R[i] = r
		}
	}
	return c, nil
}

// Panel is one Figure 4 panel: energy and speedup correlations for one
// LLC/configuration over a workload set.
type Panel struct {
	// Name labels the panel, e.g. "Jan_S fixed-capacity".
	Name string
	// Energy and Speedup are per-feature |r| rows.
	Energy, Speedup Correlation
	featureNames    []string
}

// PanelFor computes a Figure 4 panel for one target set.
func (f *Framework) PanelFor(ctx context.Context, workloads []string, t Targets) (*Panel, error) {
	e, err := f.Correlate(ctx, workloads, "energy", t.Energy)
	if err != nil {
		return nil, fmt.Errorf("charfw: panel %s: %w", t.Name, err)
	}
	s, err := f.Correlate(ctx, workloads, "speedup", t.Speedup)
	if err != nil {
		return nil, fmt.Errorf("charfw: panel %s: %w", t.Name, err)
	}
	return &Panel{Name: t.Name, Energy: e, Speedup: s, featureNames: f.FeatureNames()}, nil
}

// Heatmap converts the panel to a renderable two-row heatmap
// (energy, speedup) × features.
func (p *Panel) Heatmap() *tablefmt.Heatmap {
	return &tablefmt.Heatmap{
		Title:    p.Name,
		RowNames: []string{"energy", "speedup"},
		ColNames: p.featureNames,
		Cells:    [][]float64{p.Energy.R, p.Speedup.R},
	}
}

// TopFeatures returns the feature names whose |r| with the metric row
// ("energy" or "speedup") is at least threshold, strongest first.
func (p *Panel) TopFeatures(metric string, threshold float64) ([]string, error) {
	var row []float64
	switch metric {
	case "energy":
		row = p.Energy.R
	case "speedup":
		row = p.Speedup.R
	default:
		return nil, fmt.Errorf("charfw: unknown metric %q", metric)
	}
	type fr struct {
		name string
		r    float64
	}
	var sel []fr
	for i, r := range row {
		if r >= threshold {
			sel = append(sel, fr{p.featureNames[i], r})
		}
	}
	sort.Slice(sel, func(a, b int) bool { return sel[a].r > sel[b].r })
	out := make([]string, len(sel))
	for i, s := range sel {
		out[i] = s.name
	}
	return out, nil
}

// FeatureR returns the metric row's |r| for a named feature.
func (p *Panel) FeatureR(metric, feature string) (float64, error) {
	var row []float64
	switch metric {
	case "energy":
		row = p.Energy.R
	case "speedup":
		row = p.Speedup.R
	default:
		return 0, fmt.Errorf("charfw: unknown metric %q", metric)
	}
	for i, n := range p.featureNames {
		if n == feature {
			return row[i], nil
		}
	}
	return 0, fmt.Errorf("charfw: unknown feature %q", feature)
}
