package fault

import (
	"math"
	"testing"

	"nvmllc/internal/nvm"
)

func TestZeroValueIsInertAndValid(t *testing.T) {
	var c Config
	if err := c.Validate(); err != nil {
		t.Fatalf("zero config invalid: %v", err)
	}
	if c.Enabled() {
		t.Fatal("zero config must be disabled (SRAM ⇒ infinite endurance)")
	}
	if _, err := New(c, 64, 8); err == nil {
		t.Fatal("New must reject a disabled config")
	}
}

func TestOptionsEndurance(t *testing.T) {
	if e := (Options{Class: nvm.PCRAM}).Endurance(); e != nvm.WriteEndurance(nvm.PCRAM) {
		t.Errorf("PCRAM endurance = %g", e)
	}
	if e := (Options{Class: nvm.PCRAM, EnduranceWrites: 42}).Endurance(); e != 42 {
		t.Errorf("override endurance = %g, want 42", e)
	}
	if e := (Options{}).Endurance(); !math.IsInf(e, 1) {
		t.Errorf("zero-value endurance = %g, want +Inf", e)
	}
	// An explicit +Inf override is valid and disabled, like SRAM.
	c := Config{Options: Options{Class: nvm.PCRAM, EnduranceWrites: math.Inf(1)}}
	if c.Enabled() {
		t.Error("infinite endurance override must disable the process")
	}
}

func TestValidate(t *testing.T) {
	for name, c := range map[string]Config{
		"negative endurance": {Options: Options{EnduranceWrites: -1}},
		"negative spread":    {Spread: -1},
		"negative retries":   {MaxRetries: -1},
		"soft fraction > 1":  {SoftFraction: 1.5},
		"negative prewear":   {PreWearWrites: -1},
	} {
		if err := c.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestNewRejectsBadGeometry(t *testing.T) {
	c := Config{Options: Options{EnduranceWrites: 100}}
	for _, g := range []struct{ sets, ways int }{{0, 8}, {-4, 8}, {48, 8}, {64, 0}, {64, 1 << 17}} {
		if _, err := New(c, g.sets, g.ways); err == nil {
			t.Errorf("geometry %dx%d accepted", g.sets, g.ways)
		}
	}
}

// writeSet drives n writes at a line in set s and returns the outcomes.
func writeSet(inj *Injector, s uint64, n int) []Outcome {
	out := make([]Outcome, 0, n)
	for i := 0; i < n; i++ {
		if inj.IsDead(s) {
			break
		}
		out = append(out, inj.OnWrite(s))
	}
	return out
}

func TestDeterministicSequence(t *testing.T) {
	cfg := Config{Options: Options{EnduranceWrites: 10}, Seed: 7}
	a, err := New(cfg, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		line := uint64(i * 13)
		if a.IsDead(line) != b.IsDead(line) {
			t.Fatalf("write %d: IsDead diverged", i)
		}
		if a.IsDead(line) {
			continue
		}
		oa, ob := a.OnWrite(line), b.OnWrite(line)
		if oa != ob {
			t.Fatalf("write %d: outcome %+v vs %+v", i, oa, ob)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged:\n%+v\n%+v", a.Stats(), b.Stats())
	}
}

func TestSeedChangesThresholds(t *testing.T) {
	mk := func(seed uint64) *Injector {
		inj, err := New(Config{Options: Options{EnduranceWrites: 100}, Seed: seed}, 64, 8)
		if err != nil {
			t.Fatal(err)
		}
		return inj
	}
	a, b := mk(1), mk(2)
	diff := false
	for s := uint64(0); s < 64 && !diff; s++ {
		for w := uint64(0); w < 8; w++ {
			if a.threshold(s, w) != b.threshold(s, w) {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Fatal("different seeds drew identical thresholds everywhere")
	}
	// The derived (Seed == 0) seed depends on geometry.
	c := Config{Options: Options{EnduranceWrites: 100}}
	if c.seed(64, 8) == c.seed(128, 8) || c.seed(64, 8) == 0 {
		t.Error("derived seed must be nonzero and geometry-dependent")
	}
}

func TestThresholdRange(t *testing.T) {
	const endurance, spread = 1000.0, 2.0
	inj, err := New(Config{Options: Options{EnduranceWrites: endurance}, Spread: spread, Seed: 3}, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := endurance*math.Exp2(-spread), endurance*math.Exp2(spread)
	for s := uint64(0); s < 32; s++ {
		for w := uint64(0); w < 8; w++ {
			th := inj.threshold(s, w)
			if th < lo || th >= hi {
				t.Fatalf("threshold(%d,%d) = %g outside [%g, %g)", s, w, th, lo, hi)
			}
		}
	}
}

// TestGracefulDegradationToDeath wears one set down completely and checks
// the full soft-window → condemnation → dead-set progression.
func TestGracefulDegradationToDeath(t *testing.T) {
	const ways = 4
	cfg := Config{Options: Options{EnduranceWrites: 8}, Seed: 11, MaxRetries: 2}
	inj, err := New(cfg, 8, ways)
	if err != nil {
		t.Fatal(err)
	}
	const line = 3
	var condemned int
	sawSoft := false
	prevEnabled := ways
	for i := 0; i < 10000 && !inj.IsDead(line); i++ {
		o := inj.OnWrite(line)
		switch {
		case o.Condemned:
			condemned++
			if o.Retries != 2 {
				t.Fatalf("condemnation charged %d retries, want MaxRetries=2", o.Retries)
			}
			if got := ways - inj.DisabledWays(line&7); got != prevEnabled-1 {
				t.Fatalf("condemnation disabled %d ways at once", prevEnabled-got)
			}
			prevEnabled--
		case o.Retries == 1:
			sawSoft = true
		}
	}
	if condemned != ways {
		t.Fatalf("set died after %d condemnations, want %d", condemned, ways)
	}
	if !sawSoft {
		t.Error("write-verify soft window never fired before condemnation")
	}
	if !inj.IsDead(line) {
		t.Fatal("set not dead after all ways condemned")
	}
	inj.NoteDeadAccess()
	inj.NoteDeadWrite()
	st := inj.Stats()
	if st.CondemnedWays != ways || st.DeadSets != 1 || st.FailedWrites != uint64(ways) {
		t.Errorf("stats %+v", st)
	}
	if st.DeadSetAccesses != 1 || st.DeadSetWrites != 1 {
		t.Errorf("dead-set counters %+v", st)
	}
	if want := 8*ways - ways; st.EnabledLines != want {
		t.Errorf("EnabledLines = %d, want %d", st.EnabledLines, want)
	}
	wantCap := float64(st.EnabledLines) / float64(8*ways)
	if st.CapacityFraction() != wantCap {
		t.Errorf("CapacityFraction = %g, want %g", st.CapacityFraction(), wantCap)
	}
}

func TestPreAgingCondemnsUpfront(t *testing.T) {
	const sets, ways = 16, 4
	base := Config{Options: Options{EnduranceWrites: 100}, Seed: 5}
	// Past every possible threshold (endurance × 2^spread): the whole
	// array starts dead.
	dead := base
	dead.PreWearWrites = 100 * math.Exp2(1)
	inj, err := New(dead, sets, ways)
	if err != nil {
		t.Fatal(err)
	}
	st := inj.Stats()
	if st.InitialDisabledWays != sets*ways || st.DeadSets != sets || st.EnabledLines != 0 {
		t.Fatalf("full pre-age: %+v", st)
	}
	if st.CapacityFraction() != 0 {
		t.Errorf("dead array capacity %g", st.CapacityFraction())
	}
	for s := uint64(0); s < sets; s++ {
		if !inj.IsDead(s) {
			t.Fatalf("set %d alive after full pre-age", s)
		}
	}

	// Pre-aging exactly to the nominal budget condemns the below-median
	// cells: roughly half the array, never none, never all.
	half := base
	half.PreWearWrites = 100
	inj2, err := New(half, sets, ways)
	if err != nil {
		t.Fatal(err)
	}
	st2 := inj2.Stats()
	if st2.InitialDisabledWays == 0 || st2.InitialDisabledWays == sets*ways {
		t.Fatalf("median pre-age disabled %d of %d ways", st2.InitialDisabledWays, sets*ways)
	}
	if st2.EnabledLines != sets*ways-st2.InitialDisabledWays {
		t.Errorf("EnabledLines inconsistent: %+v", st2)
	}

	// More pre-wear never re-enables capacity.
	prev := sets * ways
	for _, w := range []float64{0, 25, 50, 75, 100, 150, 200} {
		c := base
		c.PreWearWrites = w
		inj, err := New(c, sets, ways)
		if err != nil {
			t.Fatal(err)
		}
		if got := inj.Stats().EnabledLines; got > prev {
			t.Fatalf("prewear %g enabled %d lines > %d at lower wear", w, got, prev)
		} else {
			prev = got
		}
	}
}

// TestPreAgeMatchesInSituWear: absorbing W writes per cell at
// construction must condemn the same ways as accumulating the same wear
// via OnWrite (outcomes aside), keeping the degradation artifact's
// pre-aged points consistent with a simulated-through history.
func TestPreAgeMatchesInSituWear(t *testing.T) {
	const sets, ways = 4, 4
	cfg := Config{Options: Options{EnduranceWrites: 50}, Seed: 9}
	live, err := New(cfg, sets, ways)
	if err != nil {
		t.Fatal(err)
	}
	// Drive every set until its cumulative per-cell wear reaches 60.
	for s := uint64(0); s < sets; s++ {
		for !live.IsDead(s) && live.sets[s].wear < 60 {
			live.OnWrite(s)
		}
	}
	aged := Config{Options: Options{EnduranceWrites: 50}, Seed: 9, PreWearWrites: 60}
	pre, err := New(aged, sets, ways)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < sets; s++ {
		// The in-situ path stops at the first threshold past wear 60, so it
		// can be one condemnation behind the pre-aged path at exactly-equal
		// boundaries; allow the wear overshoot to settle by comparing
		// against both the target wear and what the live run reached.
		lw, pw := live.DisabledWays(s), pre.DisabledWays(s)
		if lw != pw {
			t.Errorf("set %d: in-situ disabled %d ways, pre-aged %d (wear %g)",
				s, lw, pw, live.sets[s].wear)
		}
	}
}

func TestStatsHelpers(t *testing.T) {
	s := Stats{Sets: 4, Ways: 4, EnabledLines: 12}
	if s.TotalLines() != 16 || s.CapacityFraction() != 0.75 {
		t.Errorf("TotalLines=%d CapacityFraction=%g", s.TotalLines(), s.CapacityFraction())
	}
	if (Stats{}).CapacityFraction() != 1 {
		t.Error("empty stats capacity must be 1")
	}
}
