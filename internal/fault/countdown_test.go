package fault

import (
	"math/rand"
	"testing"
)

// refInjector replays the pre-countdown eager algorithm — one wear
// addition and threshold compare per write, dividing 1/enabled each
// time — as the ground truth the countdown fast path must match
// bit-for-bit. It borrows threshold recomputation from a shadow
// Injector built from the same config so both draw identical
// per-cell thresholds.
type refInjector struct {
	shadow *Injector
	sets   []setState
	stats  Stats
}

func newRef(t *testing.T, cfg Config, sets, ways int) *refInjector {
	t.Helper()
	shadow, err := New(cfg, sets, ways)
	if err != nil {
		t.Fatal(err)
	}
	r := &refInjector{shadow: shadow, sets: make([]setState, sets), stats: shadow.Stats()}
	copy(r.sets, shadow.sets)
	return r
}

func (r *refInjector) isDead(line uint64) bool {
	return r.sets[line&r.shadow.setMask].enabled == 0
}

func (r *refInjector) onWrite(line uint64) Outcome {
	si := line & r.shadow.setMask
	st := &r.sets[si]
	st.wear += 1 / float64(st.enabled)
	switch {
	case st.wear >= st.next:
		st.enabled--
		r.stats.WriteRetries += uint64(r.shadow.maxRetries)
		r.stats.FailedWrites++
		r.stats.CondemnedWays++
		r.stats.EnabledLines--
		r.shadow.setNext(st, r.shadow.setThresholds(si), r.shadow.ways-int(st.enabled))
		if st.enabled == 0 {
			r.stats.DeadSets++
		}
		return Outcome{Retries: r.shadow.maxRetries, Condemned: true}
	case st.wear >= st.soft:
		r.stats.WriteRetries++
		return Outcome{Retries: 1}
	default:
		return Outcome{}
	}
}

// TestCountdownMatchesEagerReference drives the countdown injector and
// the eager reference through identical write streams across adversarial
// regimes — rapid condemnation, long quiescence with lookahead doubling,
// rounding-stalled wear at huge endurance, soft window equal to the
// threshold, pre-aged arrays — and demands identical outcomes, death
// states, and stats at every step.
func TestCountdownMatchesEagerReference(t *testing.T) {
	cases := []struct {
		name       string
		cfg        Config
		sets, ways int
		writes     int
		lines      func(r *rand.Rand, i int) uint64
	}{
		{
			name: "rapid-condemnation",
			cfg:  Config{Options: Options{EnduranceWrites: 40}, Seed: 3, Spread: 2},
			sets: 64, ways: 4, writes: 200000,
			lines: func(r *rand.Rand, i int) uint64 { return r.Uint64() },
		},
		{
			name: "quiescent-hot-set",
			cfg:  Config{Options: Options{EnduranceWrites: 1e6}, Seed: 5},
			sets: 16, ways: 8, writes: 300000,
			lines: func(r *rand.Rand, i int) uint64 { return uint64(i % 3) },
		},
		{
			name: "rounding-stall",
			cfg:  Config{Options: Options{EnduranceWrites: 1e15}, Seed: 7},
			sets: 32, ways: 16, writes: 100000,
			lines: func(r *rand.Rand, i int) uint64 { return r.Uint64() },
		},
		{
			name: "soft-equals-threshold",
			cfg:  Config{Options: Options{EnduranceWrites: 120}, Seed: 11, SoftFraction: 1},
			sets: 8, ways: 4, writes: 50000,
			lines: func(r *rand.Rand, i int) uint64 { return r.Uint64() },
		},
		{
			name: "pre-aged-single-retry",
			cfg:  Config{Options: Options{EnduranceWrites: 200}, Seed: 13, MaxRetries: 1, PreWearWrites: 180},
			sets: 16, ways: 4, writes: 100000,
			lines: func(r *rand.Rand, i int) uint64 { return r.Uint64() },
		},
		{
			name: "tight-spread-slow-approach",
			cfg:  Config{Options: Options{EnduranceWrites: 5e4}, Seed: 17, Spread: 0.01, SoftFraction: 0.999},
			sets: 4, ways: 2, writes: 400000,
			lines: func(r *rand.Rand, i int) uint64 { return uint64(i) },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inj, err := New(tc.cfg, tc.sets, tc.ways)
			if err != nil {
				t.Fatal(err)
			}
			ref := newRef(t, tc.cfg, tc.sets, tc.ways)
			rng := rand.New(rand.NewSource(42))
			for i := 0; i < tc.writes; i++ {
				line := tc.lines(rng, i)
				dead, rdead := inj.IsDead(line), ref.isDead(line)
				if dead != rdead {
					t.Fatalf("write %d line %#x: IsDead %v, reference %v", i, line, dead, rdead)
				}
				if dead {
					continue
				}
				got, want := inj.OnWrite(line), ref.onWrite(line)
				if got != want {
					t.Fatalf("write %d line %#x: outcome %+v, reference %+v", i, line, got, want)
				}
			}
			if got, want := inj.Stats(), ref.stats; got != want {
				t.Fatalf("stats diverged:\n got %+v\nwant %+v", got, want)
			}
			// Wear itself must agree wherever the countdown is not holding
			// pre-proven lookahead: replaying the pending additions eagerly
			// has to land on the reference trajectory exactly.
			for s := range inj.sets {
				st, rst := inj.sets[s], ref.sets[s]
				if st.enabled != rst.enabled || st.next != rst.next {
					t.Fatalf("set %d: state (enabled %d, next %g) vs reference (%d, %g)",
						s, st.enabled, st.next, rst.enabled, rst.next)
				}
			}
		})
	}
}

// TestCountdownRoundingStallGoesQuiescent pins the rounding-stall
// regime: with the wear pre-aged to 2^53 the 1/16 per-write increment is
// below half the wear's ulp, every addition rounds back to the same
// value, and the first slow visit must arm an effectively infinite
// countdown and never charge a retry.
func TestCountdownRoundingStallGoesQuiescent(t *testing.T) {
	const preWear = 1 << 53
	cfg := Config{
		Options:       Options{EnduranceWrites: 2e16},
		Seed:          1,
		Spread:        0.1, // thresholds in 2e16·2^±0.1, all far above preWear
		PreWearWrites: preWear,
	}
	inj, err := New(cfg, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got := inj.Stats().InitialDisabledWays; got != 0 {
		t.Fatalf("pre-aging condemned %d ways, want 0", got)
	}
	if float64(preWear)+1.0/16 != float64(preWear) {
		t.Fatal("increment does not stall at this wear magnitude")
	}
	for i := 0; i < 1000; i++ {
		if o := inj.OnWrite(0); o != (Outcome{}) {
			t.Fatalf("write %d: outcome %+v in stall regime", i, o)
		}
	}
	if k := int64(inj.skip[0]); k < quiescentSkip-1000 {
		t.Fatalf("stalled set armed with skip %d, want ~quiescentSkip", k)
	}
	if s := inj.Stats(); s.WriteRetries != 0 || s.CondemnedWays != 0 {
		t.Fatalf("stall regime charged events: %+v", s)
	}
}
