// Package fault models wear-driven stuck-at faults in an NVM-based LLC
// and the graceful degradation that follows them, the regime past the
// first-cell failure that internal/endurance's closed-form estimate stops
// at. The paper's Table I gives the per-cell write budgets (PCRAM wears
// out after 10⁷–10⁸ writes); L2C2 (Escuin et al., arXiv:2204.09504) shows
// that a cache whose cells start failing keeps serving at reduced
// capacity if faulty blocks are disabled instead of taking the whole
// array down. This package implements that block-disabling policy as a
// deterministic, seed-derived process so degraded runs are exactly
// reproducible and cacheable.
//
// The model is intentionally layout-independent so the simulator's SoA
// and AoS tag stores stay bit-identical under faults. Wear is tracked per
// set under an ideal intra-set-leveling assumption (each data-array write
// to a set adds 1/enabled(set) writes of wear to each of its live cells —
// the WriteSmoothing-style upper bound internal/endurance also uses), and
// each (set, way) cell draws a deterministic endurance threshold from a
// seeded hash. When a set's cumulative per-cell wear approaches a cell's
// threshold the cache enters a write-verify window (each write needs one
// extra attempt); when it crosses the threshold the write fails its
// bounded retries, the line being written is condemned, and the way is
// disabled — the set keeps operating at associativity enabled-1. A set
// whose last way fails is dead and bypassed to DRAM.
package fault

import (
	"fmt"
	"math"
	"sort"

	"nvmllc/internal/nvm"
)

// Options selects the endurance budget the fault process and the
// analytical lifetime estimate (endurance.Estimate) share.
type Options struct {
	// Class is the LLC's technology class; its Table I write endurance
	// (nvm.WriteEndurance) is the per-cell budget unless overridden.
	Class nvm.Class
	// EnduranceWrites, when positive, overrides the class's Table I
	// endurance with an explicit per-cell write budget.
	EnduranceWrites float64
}

// Endurance resolves the per-cell write budget: the explicit override
// when positive, otherwise the class's Table I figure.
func (o Options) Endurance() float64 {
	if o.EnduranceWrites > 0 {
		return o.EnduranceWrites
	}
	return nvm.WriteEndurance(o.Class)
}

// Config parameterizes the fault process. The zero value is inert: class
// SRAM resolves to infinite endurance, so no fault can ever fire and the
// simulator behaves bit-identically to a fault-free build.
type Config struct {
	Options
	// Seed drives the per-cell threshold draws. Zero (the default)
	// derives a seed from the cache geometry and endurance budget, the
	// same convention as cache.Config.VictimSeed; set it explicitly to
	// pin the fault sequence across differently-shaped caches.
	Seed uint64
	// Spread is the half-width, in powers of two, of the per-cell
	// threshold distribution: a cell's threshold is
	// endurance × 2^((2u−1)·Spread) for a uniform u ∈ [0,1), so cells die
	// between endurance/2^Spread and endurance×2^Spread writes with the
	// nominal budget as the median. Zero selects the default 1; negative
	// is invalid.
	Spread float64
	// MaxRetries bounds the write-verify attempts charged when a write
	// lands on a worn-out cell before the line is condemned. Zero selects
	// the default 3; negative is invalid.
	MaxRetries int
	// SoftFraction is the fraction of the next-failing cell's threshold
	// at which the set enters the write-verify window (one extra attempt
	// per write). Zero selects the default 0.9; must be in (0, 1].
	SoftFraction float64
	// PreWearWrites is the per-cell write count the array has already
	// absorbed before the run starts, under the same ideal-leveling
	// assumption (every cell aged equally). The degradation-over-lifetime
	// artifact sweeps this to replay a workload at increasing ages; cells
	// whose threshold is below it start the run condemned.
	PreWearWrites float64
}

// Enabled reports whether the fault process can fire at all: the
// resolved endurance budget is finite and positive. The zero value is
// disabled.
func (c Config) Enabled() bool {
	e := c.Endurance()
	return e > 0 && !math.IsInf(e, 1)
}

// Validate checks the configuration. The zero value is valid (and
// inert).
func (c Config) Validate() error {
	if c.EnduranceWrites < 0 {
		return fmt.Errorf("fault: endurance writes %g, want ≥ 0", c.EnduranceWrites)
	}
	if c.Spread < 0 {
		return fmt.Errorf("fault: spread %g, want ≥ 0", c.Spread)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("fault: max retries %d, want ≥ 0", c.MaxRetries)
	}
	if c.SoftFraction < 0 || c.SoftFraction > 1 {
		return fmt.Errorf("fault: soft fraction %g, want in [0,1]", c.SoftFraction)
	}
	if c.PreWearWrites < 0 {
		return fmt.Errorf("fault: pre-wear writes %g, want ≥ 0", c.PreWearWrites)
	}
	return nil
}

// spread, softFraction and maxRetries resolve zero-value defaults, the
// same convention as HybridConfig.threshold.
func (c Config) spread() float64 {
	if c.Spread <= 0 {
		return 1
	}
	return c.Spread
}

func (c Config) softFraction() float64 {
	if c.SoftFraction <= 0 {
		return 0.9
	}
	return c.SoftFraction
}

func (c Config) maxRetries() int {
	if c.MaxRetries <= 0 {
		return 3
	}
	return c.MaxRetries
}

// seed resolves the threshold-draw seed: the explicit override when set,
// otherwise a derivation mixing the geometry and endurance budget
// (mirroring cache.Config.victimSeed) so differently-shaped caches draw
// independent fault sequences.
func (c Config) seed(sets, ways int) uint64 {
	if c.Seed != 0 {
		return c.Seed
	}
	h := uint64(sets)<<32 ^ uint64(ways)
	h ^= math.Float64bits(c.Endurance())
	h = mix64(h + 0x9E3779B97F4A7C15)
	if h == 0 {
		h = 0x9E3779B97F4A7C15
	}
	return h
}

// mix64 is the splitmix64 finalizer, the same mixer the cache's victim
// seed derivation uses.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// hash01 draws a deterministic uniform value in [0,1) for cell (set,
// way) under the given seed.
func hash01(seed, set, way uint64) float64 {
	x := mix64(seed ^ mix64(set+0x9E3779B97F4A7C15) ^ mix64(way+0xD1B54A32D192ED03))
	return float64(x>>11) / (1 << 53)
}

// Outcome reports what happened to one data-array write.
type Outcome struct {
	// Retries is the number of extra write attempts charged (the
	// write-verify path): one inside the soft window, MaxRetries when the
	// write fails.
	Retries int
	// Condemned reports that the write failed its retries: the line being
	// written is lost and its way must be disabled.
	Condemned bool
}

// setState is the per-set wear bookkeeping. Per-way thresholds are not
// stored — only the next one to fail — and are recomputed from the seed
// at the rare condemnation events.
type setState struct {
	// wear is the cumulative per-cell write count under ideal intra-set
	// leveling. While a countdown is armed (skip > 1) the wear already
	// includes the skipped writes: rearm advanced it with the same
	// repeated additions OnWrite would have performed, so the float
	// trajectory — including any rounding stall — is bit-identical to
	// evaluating every write eagerly.
	wear float64
	// next is the smallest threshold among still-enabled cells (+Inf for
	// a dead set); soft is SoftFraction × next.
	next, soft float64
	// inv caches 1/enabled, the per-write wear increment (0 for a dead
	// set), so the hot path never divides.
	inv float64
	// look is the adaptive rearm lookahead cap; it doubles every time a
	// rearm exhausts it so hot sets amortize toward O(1) slow visits.
	look int32
	// enabled counts live ways.
	enabled uint16
}

// Injector runs the fault process for one cache geometry. It is not safe
// for concurrent use; the simulator drives it from its single-threaded
// hot path.
type Injector struct {
	cfg        Config
	seed       uint64
	endurance  float64
	spread     float64
	softFrac   float64
	maxRetries int
	setMask    uint64
	ways       int
	sets       []setState
	// skip is the per-set quiescent-write countdown, split out of
	// setState into its own dense array so the fast path's only memory
	// touch is 4 bytes per set: at 8K sets that is a 32 KB table that
	// stays cache-resident under random write traffic, where the full
	// 40-byte setState records would thrash. A write finding skip > 1
	// just decrements it — rearm already proved (by exact replay) that
	// the skipped writes stay below the soft window; skip == 1 forces
	// the slow path.
	skip  []int32
	stats Stats
	// snap freezes the per-set records as New left them; Reset restores
	// it so a pooled injector skips re-drawing and re-sorting every
	// cell's threshold — the dominant construction cost (ways hash
	// draws and a sort per set, ~10⁵ Exp2 calls for an 8K-set LLC).
	snap      []setState
	snapStats Stats
	// scratch holds per-way thresholds during recomputation.
	scratch []float64
}

// New builds an injector for a sets×ways cache, applying any pre-aging.
// sets must be a power of two (the simulator's caches guarantee it).
func New(cfg Config, sets, ways int) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, fmt.Errorf("fault: config is disabled (endurance %g)", cfg.Endurance())
	}
	if sets <= 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("fault: set count %d must be a positive power of two", sets)
	}
	if ways <= 0 || ways > math.MaxUint16 {
		return nil, fmt.Errorf("fault: ways %d out of range", ways)
	}
	inj := &Injector{
		cfg:        cfg,
		seed:       cfg.seed(sets, ways),
		endurance:  cfg.Endurance(),
		spread:     cfg.spread(),
		softFrac:   cfg.softFraction(),
		maxRetries: cfg.maxRetries(),
		setMask:    uint64(sets - 1),
		ways:       ways,
		sets:       make([]setState, sets),
		skip:       make([]int32, sets),
		scratch:    make([]float64, ways),
	}
	inj.stats = Stats{
		EnduranceWrites: inj.endurance,
		Sets:            sets,
		Ways:            ways,
		EnabledLines:    sets * ways,
	}
	for s := range inj.sets {
		st := &inj.sets[s]
		st.wear = cfg.PreWearWrites
		// Pre-aging condemns every cell whose threshold is already below
		// the absorbed wear.
		ts := inj.setThresholds(uint64(s))
		condemned := sort.SearchFloat64s(ts, st.wear)
		for condemned < ways && ts[condemned] == st.wear {
			condemned++ // thresholds equal to the wear are spent too
		}
		st.enabled = uint16(ways - condemned)
		inj.setNext(st, ts, condemned)
		st.inv = 0
		if st.enabled > 0 {
			st.inv = 1 / float64(st.enabled)
		}
		inj.skip[s] = 1 // first write takes the slow path and arms the countdown
		st.look = minLookahead
		if condemned > 0 {
			inj.stats.InitialDisabledWays += condemned
			inj.stats.EnabledLines -= condemned
			if st.enabled == 0 {
				inj.stats.DeadSets++
			}
		}
	}
	inj.snap = append([]setState(nil), inj.sets...)
	inj.snapStats = inj.stats
	return inj, nil
}

// Matches reports whether the injector was built for exactly this
// configuration and geometry, making Reset-and-reuse equivalent to a
// fresh New.
func (inj *Injector) Matches(cfg Config, sets, ways int) bool {
	return inj.cfg == cfg && len(inj.sets) == sets && inj.ways == ways
}

// Reset restores the injector to its post-construction state: pristine
// per-set records, the one-write countdown re-armed everywhere, and the
// construction-time stats. A reset injector is indistinguishable from a
// newly built one but costs a memcpy instead of re-deriving every
// cell's threshold, which is what makes pooling it across repeated runs
// of one design point worthwhile (system.Scratch holds the pooled
// injector).
func (inj *Injector) Reset() {
	copy(inj.sets, inj.snap)
	for i := range inj.skip {
		inj.skip[i] = 1
	}
	inj.stats = inj.snapStats
}

// threshold is cell (set, way)'s endurance threshold: the nominal budget
// scaled by 2^((2u−1)·Spread) for the cell's deterministic u.
func (inj *Injector) threshold(set, way uint64) float64 {
	u := hash01(inj.seed, set, way)
	return inj.endurance * math.Exp2((2*u-1)*inj.spread)
}

// setThresholds fills the scratch buffer with the set's per-way
// threshold draws, sorted ascending. Runs at construction and at the
// rare condemnation events, never on the per-write fast path.
func (inj *Injector) setThresholds(set uint64) []float64 {
	ts := inj.scratch[:inj.ways]
	for w := range ts {
		ts[w] = inj.threshold(set, uint64(w))
	}
	sort.Float64s(ts)
	return ts
}

// setNext points st at the (condemned+1)-th smallest threshold — the
// next cell to fail. Exactly one way is condemned per failed write, so
// the rank advances one step at a time and the cache's per-set disabled
// count stays in lockstep with the injector's.
func (inj *Injector) setNext(st *setState, ts []float64, condemned int) {
	if condemned >= inj.ways {
		st.next = math.Inf(1)
		st.soft = math.Inf(1)
		return
	}
	st.next = ts[condemned]
	st.soft = inj.softFrac * st.next
}

// set returns the set index of a line address.
func (inj *Injector) set(line uint64) uint64 { return line & inj.setMask }

// IsDead reports whether the set holding line has no enabled ways left.
// Until the first set actually dies — never, in the quiescent regime —
// it answers from the injector header without touching the per-set
// records, keeping the per-access probe free of random memory traffic.
func (inj *Injector) IsDead(line uint64) bool {
	if inj.stats.DeadSets == 0 {
		return false
	}
	return inj.sets[inj.set(line)].enabled == 0
}

// DisabledWays returns the number of condemned ways in a set (used to
// mirror pre-aged disabling into the cache at construction).
func (inj *Injector) DisabledWays(set int) int {
	return inj.ways - int(inj.sets[set].enabled)
}

// Rearm lookahead bounds. The cap starts small so cold sets pay a few
// additions at most, and doubles whenever a rearm exhausts it so a
// hammered set converges to O(1) slow-path visits; wasted lookahead at
// the end of a run is bounded by the last cap, which the doubling keeps
// within ~2× the writes the set actually absorbed.
const (
	// minLookahead starts small because the replay cost is paid up
	// front: a benchmark spreading writes thinly over thousands of sets
	// visits each set only a handful of times, and a 32-write opening
	// replay would cost more float work than evaluating those writes
	// eagerly. Eight bounds the wasted lookahead at ~2× the writes a
	// barely-touched set actually absorbs while still letting the
	// doubling reach maxLookahead within a dozen slow visits.
	minLookahead = 8
	maxLookahead = 1 << 15
	// quiescentSkip is the countdown armed when repeated addition has
	// stalled (wear + inv rounds back to wear): no future write can move
	// the wear, so the set can never reach its soft window and every
	// remaining write is quiescent. It saturates the int32 countdown
	// slot; the one-in-2³¹-writes exhaustion just re-detects the stall
	// on the slow path and re-arms.
	quiescentSkip = int64(math.MaxInt32 - 1)
)

// OnWrite advances the wear of the written line's set by one data-array
// write and reports the write-verify outcome. The caller must not invoke
// it for dead sets (check IsDead first — dead sets take no array
// writes).
//
// The common case — a set far from its next failure — is a single
// countdown decrement against the dense 4-byte-per-set skip table:
// rearm has already replayed the skipped writes' wear additions and
// proved each lands below the soft window, so the fast path changes no
// observable state an eager evaluation wouldn't, and touches none of
// the wide per-set records.
func (inj *Injector) OnWrite(line uint64) Outcome {
	si := line & inj.setMask
	if k := inj.skip[si]; k > 1 {
		inj.skip[si] = k - 1
		return Outcome{}
	}
	return inj.onWriteSlow(si, &inj.sets[si])
}

// onWriteSlow is the countdown-expired path: apply this write's wear
// addition, classify it against the thresholds exactly as the eager
// algorithm did, and re-arm the countdown when the set stays quiescent.
func (inj *Injector) onWriteSlow(si uint64, st *setState) Outcome {
	// One set write ages every live cell by 1/enabled under ideal
	// intra-set leveling.
	st.wear += st.inv
	switch {
	case st.wear >= st.next:
		// The weakest live cell is past its budget: the write fails all
		// its verify retries, the line is lost, the way is disabled. If
		// the wear has crossed several thresholds at once the following
		// writes condemn the remaining cells one by one.
		st.enabled--
		st.inv = 0
		if st.enabled > 0 {
			st.inv = 1 / float64(st.enabled)
		}
		inj.skip[si] = 1
		st.look = minLookahead
		inj.stats.WriteRetries += uint64(inj.maxRetries)
		inj.stats.FailedWrites++
		inj.stats.CondemnedWays++
		inj.stats.EnabledLines--
		inj.setNext(st, inj.setThresholds(si), inj.ways-int(st.enabled))
		if st.enabled == 0 {
			inj.stats.DeadSets++
		}
		return Outcome{Retries: inj.maxRetries, Condemned: true}
	case st.wear >= st.soft:
		// Write-verify window: the write needs one extra attempt. Every
		// write from here to the condemnation must be charged, so the
		// countdown stays disarmed.
		inj.skip[si] = 1
		inj.stats.WriteRetries++
		return Outcome{Retries: 1}
	default:
		inj.rearm(si, st)
		return Outcome{}
	}
}

// rearm advances the set's wear through as many future writes as it can
// prove quiescent — by performing the exact additions those writes would
// perform, so rounding (including the stall where wear + inv rounds back
// to wear) is reproduced bit-for-bit — and arms the countdown to skip
// them. The first write past the lookahead takes the slow path and
// re-evaluates.
func (inj *Injector) rearm(si uint64, st *setState) {
	look := int64(st.look)
	w, inv, soft := st.wear, st.inv, st.soft
	var q int64
	for q < look {
		w2 := w + inv
		if w2 >= soft {
			break
		}
		if w2 == w {
			// The increment is below the wear's rounding granularity:
			// wear can never advance again, so the soft window is
			// unreachable and every future write is quiescent.
			q = quiescentSkip
			break
		}
		w = w2
		q++
	}
	st.wear = w
	inj.skip[si] = int32(q + 1)
	if q >= look && st.look < maxLookahead {
		st.look <<= 1
	}
}

// NoteDeadAccess counts a demand access that found its set dead and was
// served straight from DRAM.
func (inj *Injector) NoteDeadAccess() { inj.stats.DeadSetAccesses++ }

// NoteDeadWrite counts a write routed around a dead set to DRAM.
func (inj *Injector) NoteDeadWrite() { inj.stats.DeadSetWrites++ }

// Stats snapshots the degradation counters.
func (inj *Injector) Stats() Stats { return inj.stats }

// Stats summarizes the fault process at the end of a run; system.Result
// carries it as the Degradation field.
type Stats struct {
	// EnduranceWrites is the resolved per-cell write budget the run used.
	EnduranceWrites float64
	// Sets and Ways give the cache geometry the counters are against.
	Sets, Ways int
	// InitialDisabledWays counts ways condemned by pre-aging before the
	// run's first access; CondemnedWays counts runtime condemnations.
	InitialDisabledWays int
	CondemnedWays       int
	// DeadSets counts sets with no enabled ways left (bypassed to DRAM).
	DeadSets int
	// WriteRetries is the total extra write attempts charged by the
	// write-verify path (energy but no critical-path latency, like every
	// other LLC write).
	WriteRetries uint64
	// FailedWrites counts writes that exhausted their retries and lost
	// the line being written.
	FailedWrites uint64
	// DeadSetAccesses and DeadSetWrites count traffic bypassed to DRAM
	// because its set had no enabled ways left.
	DeadSetAccesses uint64
	DeadSetWrites   uint64
	// EnabledLines is the number of still-usable lines at the end of the
	// run.
	EnabledLines int
}

// TotalLines is the geometric line count.
func (s Stats) TotalLines() int { return s.Sets * s.Ways }

// CapacityFraction is the fraction of the array still usable: enabled
// lines over total lines (1 for a healthy cache, 0 for a dead one).
func (s Stats) CapacityFraction() float64 {
	if t := s.TotalLines(); t > 0 {
		return float64(s.EnabledLines) / float64(t)
	}
	return 1
}
