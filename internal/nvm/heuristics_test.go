package nvm

import (
	"math"
	"testing"
	"testing/quick"
)

func approxEqual(a, b, relTol float64) bool {
	if a == b {
		return true
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b)/den <= relTol
}

func TestEquation1ReadPower(t *testing.T) {
	// 40 µA at 0.65 V = 26 µW.
	if got := ReadPowerUW(40, 0.65); !approxEqual(got, 26, 1e-12) {
		t.Errorf("ReadPowerUW = %g, want 26", got)
	}
}

func TestEquation2ReproducesChungResetEnergy(t *testing.T) {
	// The paper's † for Chung's reset energy: 80 µA × 0.65 V × 10 ns =
	// 0.52 pJ exactly.
	got := ProgramEnergyPJ(80, 0.65, 10)
	if !approxEqual(got, 0.52, 1e-9) {
		t.Errorf("Chung reset energy = %g pJ, want 0.52", got)
	}
}

func TestEquation2InverseRoundTrip(t *testing.T) {
	f := func(iRaw, vRaw, tRaw uint16) bool {
		i := 1 + float64(iRaw%1000)
		v := 0.1 + float64(vRaw%30)/10
		tt := 1 + float64(tRaw%500)
		e := ProgramEnergyPJ(i, v, tt)
		back := ProgramCurrentUA(e, v, tt)
		return approxEqual(back, i, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEquation3CellSize(t *testing.T) {
	// A 270nm × 270nm cell at 45nm is 36 F².
	if got := CellSizeF2(270, 270, 45); !approxEqual(got, 36, 1e-12) {
		t.Errorf("CellSizeF2 = %g, want 36", got)
	}
}

func TestNominalVDDMonotone(t *testing.T) {
	nodes := []float64{130, 120, 90, 65, 45, 40, 32, 22}
	prev := math.Inf(1)
	for _, n := range nodes {
		v := NominalVDD(n)
		if v <= 0 {
			t.Fatalf("NominalVDD(%g) = %g, want positive", n, v)
		}
		if v > prev {
			t.Errorf("NominalVDD not monotone: VDD(%g)=%g > previous %g", n, v, prev)
		}
		prev = v
	}
}

func TestInterpolateTwoPointsIsLine(t *testing.T) {
	v, err := Interpolate(50, []float64{0, 100}, []float64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEqual(v, 15, 1e-9) {
		t.Errorf("Interpolate midpoint = %g, want 15", v)
	}
}

func TestInterpolateClampsExtrapolation(t *testing.T) {
	// Steep trend extrapolated far out must clamp to 1.5× donor max.
	v, err := Interpolate(1000, []float64{0, 10}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if v > 3.0001 {
		t.Errorf("Interpolate unclamped extrapolation: %g", v)
	}
	// And to 0.5× donor min on the low side.
	v, err = Interpolate(-1000, []float64{0, 10}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if v < 0.49999 {
		t.Errorf("Interpolate below clamp floor: %g", v)
	}
}

func TestInterpolateErrors(t *testing.T) {
	if _, err := Interpolate(1, []float64{1}, []float64{1}); err == nil {
		t.Error("single donor accepted")
	}
	if _, err := Interpolate(1, []float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestInterpolateSameXDonorsUsesMean(t *testing.T) {
	v, err := Interpolate(5, []float64{3, 3}, []float64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEqual(v, 15, 1e-9) {
		t.Errorf("degenerate interpolation = %g, want mean 15", v)
	}
}

func TestSimilarDonorKangExample(t *testing.T) {
	// The paper's worked example: Kang's set current comes from Oh because
	// they share an identical 600 µA reset current.
	kang := Strip(Kang())
	donor, err := SimilarDonor(kang, Corpus(), "set current [uA]")
	if err != nil {
		t.Fatal(err)
	}
	if donor.Name != "Oh" {
		t.Errorf("Kang set-current donor = %s, want Oh", donor.Name)
	}
}

func TestSimilarDonorRejectsCrossClass(t *testing.T) {
	z := Strip(Zhang())
	donor, err := SimilarDonor(z, Corpus(), "read voltage [V]")
	if err != nil {
		t.Fatal(err)
	}
	if donor.Class != RRAM {
		t.Errorf("Zhang donor class = %v, want RRAM", donor.Class)
	}
}

func TestSimilarDonorNoCandidates(t *testing.T) {
	lone := &Cell{Name: "lone", Class: RRAM, CellLevels: 1}
	if _, err := SimilarDonor(lone, []*Cell{lone, Oh()}, "read voltage [V]"); err == nil {
		t.Error("expected error when no same-class donor exists")
	}
}

func TestCompleteFillsAllRequiredParams(t *testing.T) {
	for _, orig := range Corpus() {
		stripped := Strip(orig)
		derivs, err := Complete(stripped, Corpus())
		if err != nil {
			t.Errorf("Complete(%s): %v", orig.Name, err)
			continue
		}
		if !stripped.IsComplete() {
			t.Errorf("%s still incomplete after Complete: %v", orig.Name, stripped.MissingParams())
		}
		for _, d := range derivs {
			if !d.Source.Derived() {
				t.Errorf("%s %s: derivation source %v not a heuristic", orig.Name, d.Param, d.Source)
			}
			if d.Value <= 0 {
				t.Errorf("%s %s: non-positive derived value %g", orig.Name, d.Param, d.Value)
			}
			if d.Note == "" {
				t.Errorf("%s %s: empty derivation note", orig.Name, d.Param)
			}
		}
	}
}

func TestCompleteElectricalDerivationsMatchPaper(t *testing.T) {
	// Chung's † values re-derive exactly (reset energy) or within modeling
	// tolerance (set energy depends on the already-derived set current, and
	// Umeki's currents invert eq. 2 with an approximated access voltage).
	chung := Strip(Chung())
	if _, err := Complete(chung, Corpus()); err != nil {
		t.Fatal(err)
	}
	if got := chung.ResetEnergyPJ; got.Source != HeuristicElectrical || !approxEqual(got.Value, 0.52, 0.01) {
		t.Errorf("Chung reset energy re-derived = %g (%v), want 0.52 via heuristic 1", got.Value, got.Source)
	}

	umeki := Strip(Umeki())
	if _, err := Complete(umeki, Corpus()); err != nil {
		t.Fatal(err)
	}
	// Paper value 255 µA; eq. 2 inversion with V_access = V_read gives
	// 1.12 pJ / (0.38 V × 10 ns) ≈ 295 µA. Accept within 30%.
	if got := umeki.ResetCurrentUA; got.Source != HeuristicElectrical || !approxEqual(got.Value, 255, 0.30) {
		t.Errorf("Umeki reset current re-derived = %g (%v), want ≈255 via heuristic 1", got.Value, got.Source)
	}
}

func TestCompleteSimilarityDerivationsMatchPaper(t *testing.T) {
	kang := Strip(Kang())
	if _, err := Complete(kang, Corpus()); err != nil {
		t.Fatal(err)
	}
	if got := kang.SetCurrentUA; got.Source != HeuristicSimilarity || got.Value != 200 {
		t.Errorf("Kang set current = %g (%v), want 200 via heuristic 3", got.Value, got.Source)
	}
}

func TestCompleteIsIdempotent(t *testing.T) {
	c := Strip(Chung())
	if _, err := Complete(c, Corpus()); err != nil {
		t.Fatal(err)
	}
	snapshot := *c
	derivs, err := Complete(c, Corpus())
	if err != nil {
		t.Fatal(err)
	}
	if len(derivs) != 0 {
		t.Errorf("second Complete produced %d derivations, want 0", len(derivs))
	}
	if *c != snapshot {
		t.Error("second Complete mutated the cell")
	}
}

func TestCompleteErrorsWithoutDonors(t *testing.T) {
	lone := &Cell{
		Name: "lone", Class: PCRAM, CellLevels: 1,
		ProcessNM: Rep(90), CellSizeF2: Rep(10),
	}
	if _, err := Complete(lone, nil); err == nil {
		t.Error("Complete with empty corpus succeeded, want error")
	}
}

func TestStripRemovesOnlyDerived(t *testing.T) {
	c := Chung()
	s := Strip(c)
	if s.ResetEnergyPJ.Known() {
		t.Error("Strip kept derived reset energy")
	}
	if !s.ResetCurrentUA.Known() || s.ResetCurrentUA.Source != Reported {
		t.Error("Strip removed reported reset current")
	}
	// Original untouched.
	if !c.ResetEnergyPJ.Known() {
		t.Error("Strip mutated its argument")
	}
}

func TestBitEnergiesAllCells(t *testing.T) {
	for _, c := range Corpus() {
		set, err := c.BitSetEnergyPJ()
		if err != nil || set <= 0 {
			t.Errorf("%s BitSetEnergyPJ = %g, %v", c.Name, set, err)
		}
		reset, err := c.BitResetEnergyPJ()
		if err != nil || reset <= 0 {
			t.Errorf("%s BitResetEnergyPJ = %g, %v", c.Name, reset, err)
		}
		w, err := c.BitWriteEnergyPJ()
		if err != nil {
			t.Errorf("%s BitWriteEnergyPJ: %v", c.Name, err)
		}
		if !approxEqual(w, (set+reset)/2, 1e-12) {
			t.Errorf("%s write energy %g != mean(set,reset) %g", c.Name, w, (set+reset)/2)
		}
		r, err := c.BitReadEnergyPJ(1.0)
		if err != nil || r <= 0 {
			t.Errorf("%s BitReadEnergyPJ = %g, %v", c.Name, r, err)
		}
	}
}

func TestBitEnergyErrors(t *testing.T) {
	empty := &Cell{Name: "e", Class: STTRAM, CellLevels: 1}
	if _, err := empty.BitSetEnergyPJ(); err == nil {
		t.Error("BitSetEnergyPJ on empty cell succeeded")
	}
	if _, err := empty.BitResetEnergyPJ(); err == nil {
		t.Error("BitResetEnergyPJ on empty cell succeeded")
	}
	if _, err := empty.BitWriteEnergyPJ(); err == nil {
		t.Error("BitWriteEnergyPJ on empty cell succeeded")
	}
	if _, err := empty.BitReadEnergyPJ(1); err == nil {
		t.Error("BitReadEnergyPJ on empty cell succeeded")
	}
}

func TestMaxWritePulse(t *testing.T) {
	oh := Oh()
	if got := oh.MaxWritePulse(); got != 180 {
		t.Errorf("Oh MaxWritePulse = %g, want 180 (set pulse)", got)
	}
	if got := SRAMCell().MaxWritePulse(); got != 0 {
		t.Errorf("SRAM MaxWritePulse = %g, want 0", got)
	}
}

func TestWriteEnergyOrderingPCRAMvsRRAM(t *testing.T) {
	// The paper's qualitative comparison: PCRAM writes are far more
	// expensive than RRAM writes. Verify the corpus reflects it.
	ohW, err := Oh().BitWriteEnergyPJ()
	if err != nil {
		t.Fatal(err)
	}
	zhangW, err := Zhang().BitWriteEnergyPJ()
	if err != nil {
		t.Fatal(err)
	}
	if ohW <= zhangW {
		t.Errorf("Oh (PCRAM) write energy %g pJ should exceed Zhang (RRAM) %g pJ", ohW, zhangW)
	}
}

func TestProgramEnergyPositiveProperty(t *testing.T) {
	f := func(i, v, p uint8) bool {
		cur := 1 + float64(i)
		vol := 0.1 + float64(v)/100
		pul := 1 + float64(p)
		return ProgramEnergyPJ(cur, vol, pul) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
