package nvm_test

import (
	"fmt"

	"nvmllc/internal/nvm"
)

// ExampleComplete shows the paper's modeling heuristics filling in a
// cell's unreported parameters, including the worked example from Section
// III-A: Kang's set current copied from Oh because their reset currents
// are identical.
func ExampleComplete() {
	kang := nvm.Strip(nvm.Kang()) // reported parameters only
	derivations, err := nvm.Complete(kang, nvm.Corpus())
	if err != nil {
		panic(err)
	}
	for _, d := range derivations {
		if d.Param == "set current [uA]" {
			fmt.Printf("%s = %g (%s)\n", d.Param, d.Value, d.Source)
		}
	}
	// Output:
	// set current [uA] = 200 (heuristic-3(*))
}

// ExampleProgramEnergyPJ reproduces the paper's † derivation of Chung's
// RESET energy with equation (2).
func ExampleProgramEnergyPJ() {
	e := nvm.ProgramEnergyPJ(80, 0.65, 10) // 80 µA × 0.65 V × 10 ns
	fmt.Printf("%.2f pJ\n", e)
	// Output:
	// 0.52 pJ
}
