package nvm

import "math"

// WriteEndurance returns the per-cell write endurance for a technology
// class, from the paper's Table I and Section II discussion: PCRAM suffers
// stuck-at faults after 10⁷–10⁸ writes (we use the geometric middle),
// RRAM at 10¹⁰; STTRAM endurance is effectively unbounded for cache
// lifetimes (10¹⁵ is the figure commonly used), and SRAM does not wear.
//
// The table lives here — rather than in internal/endurance, which
// re-exports it — so the wear-driven fault model (internal/fault) and the
// analytical lifetime estimate share one source of truth without an
// import cycle through internal/system.
func WriteEndurance(class Class) float64 {
	switch class {
	case PCRAM:
		return 3e7
	case RRAM:
		return 1e10
	case STTRAM:
		return 1e15
	default: // SRAM
		return math.Inf(1)
	}
}
