package nvm

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON model release — the paper's published artifact ("we release our NVM
// cell models and make them publicly available online"). The schema keeps
// the Table II structure: every parameter carries its value and
// provenance, so a downstream user sees exactly which numbers were
// reported and which were derived, and by which heuristic.

// paramJSON is the serialized form of a Param.
type paramJSON struct {
	Value  float64 `json:"value"`
	Source string  `json:"source"`
}

// cellJSON is the serialized form of a Cell.
type cellJSON struct {
	Name         string               `json:"name"`
	Class        string               `json:"class"`
	Year         int                  `json:"year"`
	AccessDevice string               `json:"access_device"`
	CellLevels   int                  `json:"cell_levels"`
	Params       map[string]paramJSON `json:"params"`
}

// sourceNames maps Source values to stable JSON strings.
var sourceNames = map[Source]string{
	Reported:               "reported",
	HeuristicElectrical:    "heuristic-electrical",
	HeuristicInterpolation: "heuristic-interpolation",
	HeuristicSimilarity:    "heuristic-similarity",
}

func sourceFromName(s string) (Source, error) {
	for src, name := range sourceNames {
		if name == s {
			return src, nil
		}
	}
	return Missing, fmt.Errorf("nvm: unknown parameter source %q", s)
}

// ExportJSON writes the cells as an indented JSON array — the
// downloadable model-release file.
func ExportJSON(w io.Writer, cells []*Cell) error {
	out := make([]cellJSON, 0, len(cells))
	for _, c := range cells {
		if err := c.Validate(); err != nil {
			return err
		}
		cj := cellJSON{
			Name:         c.Name,
			Class:        c.Class.String(),
			Year:         c.Year,
			AccessDevice: c.AccessDevice,
			CellLevels:   c.CellLevels,
			Params:       make(map[string]paramJSON),
		}
		for name, p := range c.Params() {
			if !p.Known() {
				continue
			}
			cj.Params[name] = paramJSON{Value: p.Value, Source: sourceNames[p.Source]}
		}
		out = append(out, cj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ImportJSON reads a model-release file back into cells.
func ImportJSON(r io.Reader) ([]*Cell, error) {
	var in []cellJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("nvm: decoding model file: %w", err)
	}
	cells := make([]*Cell, 0, len(in))
	for _, cj := range in {
		class, err := ParseClass(cj.Class)
		if err != nil {
			return nil, fmt.Errorf("nvm: cell %q: %w", cj.Name, err)
		}
		c := &Cell{
			Name:         cj.Name,
			Class:        class,
			Year:         cj.Year,
			AccessDevice: cj.AccessDevice,
			CellLevels:   cj.CellLevels,
		}
		for name, pj := range cj.Params {
			src, err := sourceFromName(pj.Source)
			if err != nil {
				return nil, fmt.Errorf("nvm: cell %q, param %q: %w", cj.Name, name, err)
			}
			if !validParamName(name) {
				return nil, fmt.Errorf("nvm: cell %q: unknown parameter %q", cj.Name, name)
			}
			setParam(c, name, Param{Value: pj.Value, Source: src})
		}
		if err := c.Validate(); err != nil {
			return nil, err
		}
		cells = append(cells, c)
	}
	return cells, nil
}

// validParamName reports whether name is a Table II row.
func validParamName(name string) bool {
	for _, n := range ParamNames {
		if n == name {
			return true
		}
	}
	return false
}
