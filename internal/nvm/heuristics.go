package nvm

import (
	"fmt"
	"math"
	"sort"
)

// This file implements the paper's three modeling heuristics (Section
// III-A) for filling in cell parameters that the cited VLSI literature does
// not report.
//
// Heuristic 1 (electrical properties) is exact physics and is always
// preferred; heuristic 2 (interpolation over same-class trends) is next;
// heuristic 3 (similarity: copy from the most similar same-class
// technology) is the least accurate and is used last.

// ReadPowerUW implements equation (1): P_read = I_read * V_read.
// Input current in µA and voltage in V; result in µW.
func ReadPowerUW(readCurrentUA, readVoltage float64) float64 {
	return readCurrentUA * readVoltage
}

// ProgramEnergyPJ implements equation (2): E_{s/r} = I_{s/r} * V_access *
// t_{s/r}. Input current in µA, access voltage in V, pulse in ns; result in
// pJ (µA · V · ns = 10⁻¹⁵ J = 10⁻³ pJ).
func ProgramEnergyPJ(currentUA, accessVoltage, pulseNS float64) float64 {
	return currentUA * accessVoltage * pulseNS * 1e-3
}

// ProgramCurrentUA inverts equation (2) to recover a programming current
// (µA) from a known energy (pJ), access voltage (V) and pulse width (ns).
func ProgramCurrentUA(energyPJ, accessVoltage, pulseNS float64) float64 {
	return energyPJ * 1e3 / (accessVoltage * pulseNS)
}

// CellSizeF2 implements equation (3): A[F²] = l·w / s², with cell length
// and width in the same length unit as the process node s.
func CellSizeF2(lCell, wCell, sProcess float64) float64 {
	return lCell * wCell / (sProcess * sProcess)
}

// AccessVoltage estimates the access-device voltage V_access used in
// equation (2). When the cell reports a read voltage we use it (this
// reproduces, e.g., Chung's reset energy 80 µA × 0.65 V × 10 ns = 0.52 pJ);
// otherwise we fall back to a nominal supply voltage for the process node.
func AccessVoltage(c *Cell) float64 {
	if c.ReadVoltage.Known() {
		return c.ReadVoltage.Value
	}
	return NominalVDD(c.ProcessNM.Value)
}

// NominalVDD returns a nominal supply voltage for a process node in nm,
// following the ITRS-style scaling used by CACTI-class tools.
func NominalVDD(processNM float64) float64 {
	switch {
	case processNM >= 120:
		return 1.5
	case processNM >= 90:
		return 1.2
	case processNM >= 65:
		return 1.1
	case processNM >= 45:
		return 1.0
	case processNM >= 32:
		return 0.9
	default:
		return 0.8
	}
}

// Interpolate implements heuristic 2: fit a least-squares linear trend of
// the parameter against process node over the donor points and evaluate it
// at x. It needs at least two donors; with exactly two it is a straight
// line through them. The result is clamped to the positive donor range
// extended by 50% so a noisy fit cannot produce a non-physical value.
func Interpolate(x float64, donorX, donorY []float64) (float64, error) {
	if len(donorX) != len(donorY) {
		return 0, fmt.Errorf("nvm: interpolate: mismatched donor lengths %d and %d", len(donorX), len(donorY))
	}
	if len(donorX) < 2 {
		return 0, fmt.Errorf("nvm: interpolate: need at least 2 donors, have %d", len(donorX))
	}
	n := float64(len(donorX))
	var sx, sy, sxx, sxy float64
	for i := range donorX {
		sx += donorX[i]
		sy += donorY[i]
		sxx += donorX[i] * donorX[i]
		sxy += donorX[i] * donorY[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		// All donors at the same x: use their mean.
		return sy / n, nil
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	y := intercept + slope*x

	lo, hi := donorY[0], donorY[0]
	for _, v := range donorY[1:] {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	lo *= 0.5
	hi *= 1.5
	if y < lo {
		y = lo
	}
	if y > hi {
		y = hi
	}
	return y, nil
}

// SimilarDonor implements the donor selection of heuristic 3: among
// same-class cells in the corpus (excluding target itself) that know the
// wanted parameter, pick the one most similar to the target. Similarity is
// the mean relative distance over all parameters both cells report,
// which reproduces the paper's worked example (Kang's unknown set current
// is taken from Oh because their reset currents are identical).
func SimilarDonor(target *Cell, corpus []*Cell, param string) (*Cell, error) {
	var best *Cell
	bestScore := math.Inf(1)
	for _, donor := range corpus {
		if donor == target || donor.Name == target.Name || donor.Class != target.Class {
			continue
		}
		dp := donor.Params()[param]
		if !dp.Known() {
			continue
		}
		score := similarityDistance(target, donor)
		if score < bestScore {
			bestScore = score
			best = donor
		}
	}
	if best == nil {
		return nil, fmt.Errorf("nvm: no same-class donor for %s of %s", param, target.Name)
	}
	return best, nil
}

// similarityDistance is the mean relative difference over parameters known
// to both cells. Lower is more similar. Reported-vs-reported comparisons
// count double so that published data dominates the match.
func similarityDistance(a, b *Cell) float64 {
	pa, pb := a.Params(), b.Params()
	var sum, weight float64
	for _, name := range ParamNames {
		x, y := pa[name], pb[name]
		if !x.Known() || !y.Known() {
			continue
		}
		w := 1.0
		if x.Source == Reported && y.Source == Reported {
			w = 2.0
		}
		den := math.Max(math.Abs(x.Value), math.Abs(y.Value))
		if den == 0 {
			continue
		}
		sum += w * math.Abs(x.Value-y.Value) / den
		weight += w
	}
	if weight == 0 {
		return math.Inf(1)
	}
	return sum / weight
}

// Derivation records one parameter filled in by Complete.
type Derivation struct {
	Param  string
	Value  float64
	Source Source
	// Note is a human-readable account of the derivation, e.g.
	// "E = 80µA × 0.65V × 10ns (heuristic 1)".
	Note string
}

// Complete fills every missing required parameter of the cell in place,
// trying heuristic 1 (electrical), then heuristic 2 (interpolation over
// same-class corpus cells), then heuristic 3 (similarity copy), exactly in
// the paper's order of preference. The corpus provides donors; the target
// itself is skipped if present. It returns the derivations applied, in
// required-parameter order, or an error if some parameter cannot be filled
// by any heuristic.
func Complete(c *Cell, corpus []*Cell) ([]Derivation, error) {
	var out []Derivation
	for _, param := range requiredParams[c.Class] {
		if c.Params()[param].Known() {
			continue
		}
		d, err := fillParam(c, corpus, param)
		if err != nil {
			return out, err
		}
		out = append(out, d)
	}
	return out, nil
}

// fillParam derives one missing parameter and stores it on the cell.
func fillParam(c *Cell, corpus []*Cell, param string) (Derivation, error) {
	// Heuristic 1: electrical properties.
	if d, ok := electrical(c, param); ok {
		setParam(c, param, derived(d.Value, HeuristicElectrical))
		return d, nil
	}
	// Strong similarity: the paper prefers heuristic 3 over interpolation
	// when a same-class donor shares an identical reported sibling
	// parameter — its worked example copies Kang's set current from Oh
	// because their reset currents are identical.
	if donor, ok := identicalSiblingDonor(c, corpus, param); ok {
		v := donor.Params()[param].Value
		setParam(c, param, derived(v, HeuristicSimilarity))
		return Derivation{
			Param: param, Value: v, Source: HeuristicSimilarity,
			Note: fmt.Sprintf("copied from %s, which reports an identical %s (heuristic 3)", donor.Name, siblingOf[param]),
		}, nil
	}
	// Heuristic 2: interpolation against process node over same-class
	// donors that *report* the parameter.
	var xs, ys []float64
	for _, donor := range sameClassDonors(c, corpus) {
		p := donor.Params()[param]
		if p.Source == Reported && donor.ProcessNM.Known() {
			xs = append(xs, donor.ProcessNM.Value)
			ys = append(ys, p.Value)
		}
	}
	if len(xs) >= 2 && c.ProcessNM.Known() {
		v, err := Interpolate(c.ProcessNM.Value, xs, ys)
		if err == nil && v > 0 {
			setParam(c, param, derived(v, HeuristicInterpolation))
			return Derivation{
				Param: param, Value: v, Source: HeuristicInterpolation,
				Note: fmt.Sprintf("linear trend vs process over %d same-class donors (heuristic 2)", len(xs)),
			}, nil
		}
	}
	// Heuristic 3: similarity copy.
	donor, err := SimilarDonor(c, corpus, param)
	if err != nil {
		return Derivation{}, fmt.Errorf("nvm: cannot complete %s of %s: %w", param, c.Name, err)
	}
	v := donor.Params()[param].Value
	setParam(c, param, derived(v, HeuristicSimilarity))
	return Derivation{
		Param: param, Value: v, Source: HeuristicSimilarity,
		Note: fmt.Sprintf("copied from %s, the most similar %s (heuristic 3)", donor.Name, c.Class),
	}, nil
}

// electrical applies heuristic 1 if the needed inputs are known.
func electrical(c *Cell, param string) (Derivation, bool) {
	va := AccessVoltage(c)
	switch param {
	case "read power [uW]":
		if c.ReadCurrentUA.Known() && c.ReadVoltage.Known() {
			v := ReadPowerUW(c.ReadCurrentUA.Value, c.ReadVoltage.Value)
			return Derivation{Param: param, Value: v, Source: HeuristicElectrical,
				Note: fmt.Sprintf("P = %gµA × %gV (eq. 1)", c.ReadCurrentUA.Value, c.ReadVoltage.Value)}, true
		}
	case "reset energy [pJ]":
		if c.ResetCurrentUA.Known() && c.ResetPulseNS.Known() {
			v := ProgramEnergyPJ(c.ResetCurrentUA.Value, va, c.ResetPulseNS.Value)
			return Derivation{Param: param, Value: v, Source: HeuristicElectrical,
				Note: fmt.Sprintf("E = %gµA × %gV × %gns (eq. 2)", c.ResetCurrentUA.Value, va, c.ResetPulseNS.Value)}, true
		}
	case "set energy [pJ]":
		if c.SetCurrentUA.Known() && c.SetPulseNS.Known() {
			v := ProgramEnergyPJ(c.SetCurrentUA.Value, va, c.SetPulseNS.Value)
			return Derivation{Param: param, Value: v, Source: HeuristicElectrical,
				Note: fmt.Sprintf("E = %gµA × %gV × %gns (eq. 2)", c.SetCurrentUA.Value, va, c.SetPulseNS.Value)}, true
		}
	case "reset current [uA]":
		if c.ResetEnergyPJ.Known() && c.ResetPulseNS.Known() {
			v := ProgramCurrentUA(c.ResetEnergyPJ.Value, va, c.ResetPulseNS.Value)
			return Derivation{Param: param, Value: v, Source: HeuristicElectrical,
				Note: fmt.Sprintf("I = %gpJ / (%gV × %gns) (eq. 2 inverted)", c.ResetEnergyPJ.Value, va, c.ResetPulseNS.Value)}, true
		}
	case "set current [uA]":
		if c.SetEnergyPJ.Known() && c.SetPulseNS.Known() {
			v := ProgramCurrentUA(c.SetEnergyPJ.Value, va, c.SetPulseNS.Value)
			return Derivation{Param: param, Value: v, Source: HeuristicElectrical,
				Note: fmt.Sprintf("I = %gpJ / (%gV × %gns) (eq. 2 inverted)", c.SetEnergyPJ.Value, va, c.SetPulseNS.Value)}, true
		}
	case "read energy [pJ]":
		// PCRAM parameterization: E_read = I_read × V_read_sense × t_sense.
		if c.ReadCurrentUA.Known() && c.ReadVoltage.Known() && c.ResetPulseNS.Known() {
			v := ProgramEnergyPJ(c.ReadCurrentUA.Value, c.ReadVoltage.Value, 1)
			return Derivation{Param: param, Value: v, Source: HeuristicElectrical,
				Note: "E = I_read × V_read × 1ns sense window (eq. 2)"}, true
		}
	}
	return Derivation{}, false
}

// siblingOf pairs each set/reset programming parameter with its opposite-
// polarity counterpart: cells that agree exactly on one polarity very likely
// agree on the other.
var siblingOf = map[string]string{
	"set current [uA]":   "reset current [uA]",
	"reset current [uA]": "set current [uA]",
	"set pulse [ns]":     "reset pulse [ns]",
	"reset pulse [ns]":   "set pulse [ns]",
	"set energy [pJ]":    "reset energy [pJ]",
	"reset energy [pJ]":  "set energy [pJ]",
	"set voltage [V]":    "reset voltage [V]",
	"reset voltage [V]":  "set voltage [V]",
}

// identicalSiblingDonor finds a same-class donor that reports the wanted
// parameter and whose reported sibling parameter is identical (within 0.5%)
// to the target's.
func identicalSiblingDonor(c *Cell, corpus []*Cell, param string) (*Cell, bool) {
	sib, ok := siblingOf[param]
	if !ok {
		return nil, false
	}
	have := c.Params()[sib]
	if !have.Known() {
		return nil, false
	}
	for _, donor := range sameClassDonors(c, corpus) {
		dp, ds := donor.Params()[param], donor.Params()[sib]
		if !dp.Known() || dp.Source.Derived() || ds.Source != Reported {
			continue
		}
		if math.Abs(ds.Value-have.Value) <= 0.005*math.Abs(have.Value) {
			return donor, true
		}
	}
	return nil, false
}

// sameClassDonors returns the same-class cells of the corpus other than the
// target, ordered deterministically by name.
func sameClassDonors(c *Cell, corpus []*Cell) []*Cell {
	var out []*Cell
	for _, donor := range corpus {
		if donor == c || donor.Name == c.Name || donor.Class != c.Class {
			continue
		}
		out = append(out, donor)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// setParam stores a parameter value by its Table II row name.
func setParam(c *Cell, param string, p Param) {
	switch param {
	case "process [nm]":
		c.ProcessNM = p
	case "cell size [F2]":
		c.CellSizeF2 = p
	case "read current [uA]":
		c.ReadCurrentUA = p
	case "read voltage [V]":
		c.ReadVoltage = p
	case "read power [uW]":
		c.ReadPowerUW = p
	case "read energy [pJ]":
		c.ReadEnergyPJ = p
	case "reset current [uA]":
		c.ResetCurrentUA = p
	case "reset voltage [V]":
		c.ResetVoltage = p
	case "reset pulse [ns]":
		c.ResetPulseNS = p
	case "reset energy [pJ]":
		c.ResetEnergyPJ = p
	case "set current [uA]":
		c.SetCurrentUA = p
	case "set voltage [V]":
		c.SetVoltage = p
	case "set pulse [ns]":
		c.SetPulseNS = p
	case "set energy [pJ]":
		c.SetEnergyPJ = p
	default:
		panic("nvm: setParam: unknown parameter " + param)
	}
}

// Strip returns a copy of the cell with every heuristic-derived parameter
// removed (set to Missing), i.e. only the values reported by the cited
// paper remain. Complete(Strip(c), corpus) re-derives the missing values,
// which is how the corpus provenance is validated in tests.
func Strip(c *Cell) *Cell {
	out := c.Clone()
	for _, name := range ParamNames {
		if p := out.Params()[name]; p.Source.Derived() {
			setParam(out, name, Param{})
		}
	}
	return out
}
