package nvm

import "fmt"

// The cells below are the released NVM cell models of the paper's Table II.
// Values carry the provenance of the paper's annotations: unmarked values
// are Reported from the cited VLSI paper, † values were derived with
// heuristic 1 (electrical properties, equations (1)-(3)), and * values were
// derived with heuristic 2 (interpolation) or 3 (similarity).

func h1(v float64) Param { return derived(v, HeuristicElectrical) }
func h2(v float64) Param { return derived(v, HeuristicInterpolation) }
func h3(v float64) Param { return derived(v, HeuristicSimilarity) }

// Oh is the 120nm PCRAM of Oh et al., ISSCC 2005 (64Mb PCM) [28].
func Oh() *Cell {
	return &Cell{
		Name: "Oh", Class: PCRAM, Year: 2005, AccessDevice: "CMOS",
		ProcessNM:  Rep(120),
		CellSizeF2: h3(16.6),
		CellLevels: 1,

		ReadCurrentUA: h3(40),
		ReadEnergyPJ:  h3(2),

		ResetCurrentUA: Rep(600),
		ResetPulseNS:   Rep(10),
		SetCurrentUA:   Rep(200),
		SetPulseNS:     Rep(180),
	}
}

// Chen is the 60nm phase-change bridge PCRAM of Chen et al., IEDM 2006 [29].
func Chen() *Cell {
	return &Cell{
		Name: "Chen", Class: PCRAM, Year: 2006, AccessDevice: "CMOS",
		ProcessNM:  h2(60),
		CellSizeF2: h2(10),
		CellLevels: 1,

		ReadCurrentUA: h3(40),
		ReadEnergyPJ:  h3(2),

		ResetCurrentUA: Rep(90),
		ResetPulseNS:   Rep(60),
		SetCurrentUA:   Rep(55),
		SetPulseNS:     Rep(80),
	}
}

// Kang is the 100nm 256Mb synchronous-burst PCRAM of Kang et al.,
// ISSCC 2006 [30].
func Kang() *Cell {
	return &Cell{
		Name: "Kang", Class: PCRAM, Year: 2006, AccessDevice: "CMOS",
		ProcessNM:  Rep(100),
		CellSizeF2: Rep(16.6),
		CellLevels: 1,

		ReadCurrentUA: h3(60),
		ReadEnergyPJ:  h3(2),

		ResetCurrentUA: Rep(600),
		ResetPulseNS:   Rep(50),
		// The paper's worked example of heuristic 3: Oh and Kang have
		// identical reset current, so Kang's unreported set current is
		// taken from Oh (200 µA).
		SetCurrentUA: h3(200),
		SetPulseNS:   Rep(300),
	}
}

// Close is the 90nm 256Mcell 2+ bit/cell PCRAM of Close et al., TCAS-I
// 2013 [31].
func Close() *Cell {
	return &Cell{
		Name: "Close", Class: PCRAM, Year: 2013, AccessDevice: "CMOS",
		ProcessNM:  Rep(90),
		CellSizeF2: Rep(25),
		CellLevels: 2,

		ReadCurrentUA: h3(60),
		ReadEnergyPJ:  h3(2),

		ResetCurrentUA: Rep(400),
		ResetPulseNS:   Rep(20),
		SetCurrentUA:   Rep(400),
		SetPulseNS:     Rep(20),
	}
}

// Chung is the fully-integrated 54nm STTRAM of Chung et al., IEDM 2010 [32].
func Chung() *Cell {
	return &Cell{
		Name: "Chung", Class: STTRAM, Year: 2010, AccessDevice: "CMOS",
		ProcessNM:  Rep(54),
		CellSizeF2: Rep(14),
		CellLevels: 1,

		ReadVoltage: Rep(0.65),
		ReadPowerUW: h1(24.1),

		ResetCurrentUA: Rep(80),
		ResetPulseNS:   Rep(10),
		ResetEnergyPJ:  h1(0.52),
		SetCurrentUA:   h1(100),
		SetPulseNS:     Rep(10),
		SetEnergyPJ:    h1(0.75),
	}
}

// Jan is the 90nm perpendicular STT-MRAM with sub-5ns writes of Jan et al.,
// VLSI Technology 2014 [33].
func Jan() *Cell {
	return &Cell{
		Name: "Jan", Class: STTRAM, Year: 2014, AccessDevice: "CMOS",
		ProcessNM:  Rep(90),
		CellSizeF2: Rep(50),
		CellLevels: 1,

		ReadVoltage: Rep(0.08),
		ReadPowerUW: h3(30),

		ResetCurrentUA: Rep(52),
		ResetPulseNS:   Rep(4),
		ResetEnergyPJ:  h3(1),
		SetCurrentUA:   Rep(38),
		SetPulseNS:     Rep(4.5),
		SetEnergyPJ:    h3(1),
	}
}

// Umeki is the 65nm negative-resistance sense-amplifier STTRAM of Umeki et
// al., ASP-DAC 2015 [34].
func Umeki() *Cell {
	return &Cell{
		Name: "Umeki", Class: STTRAM, Year: 2015, AccessDevice: "CMOS",
		ProcessNM:  Rep(65),
		CellSizeF2: h1(48),
		CellLevels: 1,

		ReadVoltage: Rep(0.38),
		ReadPowerUW: Rep(1.70),

		ResetCurrentUA: h1(255),
		ResetPulseNS:   Rep(10),
		ResetEnergyPJ:  Rep(1.12),
		SetCurrentUA:   h1(255),
		SetPulseNS:     Rep(10),
		SetEnergyPJ:    Rep(1.12),
	}
}

// Xue is the 45nm 3T-3MTJ 2-level ODESY STTRAM cell of Xue et al.,
// ICCAD 2016 [35].
func Xue() *Cell {
	return &Cell{
		Name: "Xue", Class: STTRAM, Year: 2016, AccessDevice: "CMOS",
		ProcessNM:  Rep(45),
		CellSizeF2: Rep(63),
		CellLevels: 2,

		ReadVoltage: Rep(1.2),
		ReadPowerUW: Rep(65),

		ResetCurrentUA: Rep(150),
		ResetPulseNS:   Rep(2),
		ResetEnergyPJ:  Rep(0.36),
		SetCurrentUA:   Rep(150),
		SetPulseNS:     Rep(2),
		SetEnergyPJ:    Rep(0.36),
	}
}

// Hayakawa is the 40nm TaOx RRAM with centralized filament of Hayakawa et
// al., VLSI Technology 2015 [36].
func Hayakawa() *Cell {
	return &Cell{
		Name: "Hayakawa", Class: RRAM, Year: 2015, AccessDevice: "CMOS",
		ProcessNM:  Rep(40),
		CellSizeF2: h3(4),
		CellLevels: 1,

		ReadVoltage: h3(0.4),
		ReadPowerUW: h3(0.16),

		ResetVoltage:  h3(2),
		ResetPulseNS:  h3(10),
		ResetEnergyPJ: h3(0.6),
		SetVoltage:    h3(2),
		SetPulseNS:    h3(10),
		SetEnergyPJ:   h3(0.6),
	}
}

// Zhang is the 22nm RRAM used in "Mellow Writes" by Zhang et al., ISCA
// 2016 [13].
func Zhang() *Cell {
	return &Cell{
		Name: "Zhang", Class: RRAM, Year: 2016, AccessDevice: "CMOS",
		ProcessNM:  Rep(22),
		CellSizeF2: h3(4),
		CellLevels: 1,

		ReadVoltage: Rep(0.2),
		ReadPowerUW: Rep(0.02),

		ResetVoltage:  Rep(1),
		ResetPulseNS:  Rep(150),
		ResetEnergyPJ: Rep(0.4),
		SetVoltage:    Rep(1),
		SetPulseNS:    Rep(150),
		SetEnergyPJ:   Rep(0.4),
	}
}

// SRAMCell is the 45nm 6T SRAM baseline cell used for the paper's 2MB
// SRAM-based LLC. (The paper does not give cell-level SRAM numbers; the
// 146 F² cell size is the conventional 6T figure used by CACTI-class
// models.)
func SRAMCell() *Cell {
	return &Cell{
		Name: "SRAM", Class: SRAM, Year: 2009, AccessDevice: "CMOS",
		ProcessNM:  Rep(45),
		CellSizeF2: Rep(146),
		CellLevels: 1,
	}
}

// Corpus returns the ten NVM cells of Table II in table (column) order.
func Corpus() []*Cell {
	return []*Cell{
		Oh(), Chen(), Kang(), Close(),
		Chung(), Jan(), Umeki(), Xue(),
		Hayakawa(), Zhang(),
	}
}

// CorpusWithSRAM returns the Table II corpus plus the SRAM baseline cell.
func CorpusWithSRAM() []*Cell {
	return append(Corpus(), SRAMCell())
}

// ByName returns the corpus cell (or SRAM baseline) with the given citation
// name, matching case-insensitively and ignoring any class subscript
// ("Zhang", "zhang", and "Zhang_R" all resolve to the Zhang cell).
func ByName(name string) (*Cell, error) {
	want := normalizeName(name)
	for _, c := range CorpusWithSRAM() {
		if normalizeName(c.Name) == want {
			return c, nil
		}
	}
	return nil, fmt.Errorf("nvm: no cell named %q in Table II corpus", name)
}

func normalizeName(s string) string {
	b := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		ch := s[i]
		if ch == '_' {
			break // strip class subscript suffix
		}
		if 'A' <= ch && ch <= 'Z' {
			ch += 'a' - 'A'
		}
		b = append(b, ch)
	}
	return string(b)
}
