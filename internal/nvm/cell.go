// Package nvm provides cell-level models of emerging non-volatile memory
// (NVM) technologies and the modeling heuristics described in Section III of
// Hankin et al., "Evaluation of Non-Volatile Memory Based Last Level Cache
// Given Modern Use Case Behavior" (IISWC 2019).
//
// A Cell describes a single NVM (or SRAM) bit cell by the parameters a
// circuit-level cache simulator needs: process node, cell size, levels per
// cell, and the read/set/reset electrical characteristics. Published VLSI
// papers rarely report every parameter, so each parameter carries a
// provenance Source recording whether the value was reported in the cited
// paper or derived by one of the paper's three heuristics:
//
//  1. Electrical properties — derive unknown parameters from known ones
//     using equations (1)-(3) of the paper (P = I*V, E = I*V*t, A = l*w/s²).
//  2. Interpolation — fit a trend over same-class technologies and
//     interpolate the missing value.
//  3. Similarity — copy the parameter from the most similar technology in
//     the same class.
//
// The ten cells of Table II are available via Corpus and by name (Oh, Chen,
// Kang, Close, Chung, Jan, Umeki, Xue, Hayakawa, Zhang), with exactly the
// reported/derived provenance of the paper's † and * annotations.
package nvm

import (
	"fmt"
	"strings"
)

// Class is the NVM technology class of a cell.
type Class int

const (
	// SRAM is the conventional volatile baseline technology.
	SRAM Class = iota
	// PCRAM is Phase Change RAM: heat-driven SET (crystallize) and RESET
	// (melt) pulses; small cell, poor write endurance.
	PCRAM
	// STTRAM is Spin-Torque Transfer RAM: magnetic tunnel junction storage;
	// efficient reads, highly asymmetric write energy.
	STTRAM
	// RRAM is metal-oxide Resistive RAM: low-energy writes, very dense,
	// limited write endurance.
	RRAM
)

// String returns the conventional acronym for the class.
func (c Class) String() string {
	switch c {
	case SRAM:
		return "SRAM"
	case PCRAM:
		return "PCRAM"
	case STTRAM:
		return "STTRAM"
	case RRAM:
		return "RRAM"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Subscript returns the single-letter class subscript used in the paper to
// tag LLC names, e.g. "Zhang_R" for an RRAM technology.
func (c Class) Subscript() string {
	switch c {
	case PCRAM:
		return "P"
	case STTRAM:
		return "S"
	case RRAM:
		return "R"
	default:
		return ""
	}
}

// ParseClass converts a class acronym (case-insensitive) to a Class.
func ParseClass(s string) (Class, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "SRAM":
		return SRAM, nil
	case "PCRAM", "PCM":
		return PCRAM, nil
	case "STTRAM", "STT-RAM", "MRAM":
		return STTRAM, nil
	case "RRAM", "RERAM":
		return RRAM, nil
	}
	return 0, fmt.Errorf("nvm: unknown class %q", s)
}

// Source records how a parameter value was obtained.
type Source int

const (
	// Missing marks a parameter with no value: either not applicable to the
	// class or not yet filled in by Complete.
	Missing Source = iota
	// Reported marks a value taken directly from the cited VLSI paper.
	Reported
	// HeuristicElectrical marks a value derived with heuristic 1
	// (equations (1)-(3)); the paper's † annotation.
	HeuristicElectrical
	// HeuristicInterpolation marks a value derived with heuristic 2; part of
	// the paper's * annotation.
	HeuristicInterpolation
	// HeuristicSimilarity marks a value copied from a same-class technology
	// with heuristic 3; part of the paper's * annotation.
	HeuristicSimilarity
)

// String identifies the source in the notation of the paper's Table II:
// reported values are unmarked, heuristic 1 is "†", heuristics 2 and 3 are
// "*".
func (s Source) String() string {
	switch s {
	case Missing:
		return "missing"
	case Reported:
		return "reported"
	case HeuristicElectrical:
		return "heuristic-1(†)"
	case HeuristicInterpolation:
		return "heuristic-2(*)"
	case HeuristicSimilarity:
		return "heuristic-3(*)"
	default:
		return fmt.Sprintf("Source(%d)", int(s))
	}
}

// Derived reports whether the source is one of the three modeling
// heuristics rather than a directly reported value.
func (s Source) Derived() bool {
	return s == HeuristicElectrical || s == HeuristicInterpolation || s == HeuristicSimilarity
}

// Param is a single cell parameter with provenance. The zero value is a
// missing parameter.
type Param struct {
	Value  float64
	Source Source
}

// Known reports whether the parameter has a value (from any source).
func (p Param) Known() bool { return p.Source != Missing }

// Rep constructs a parameter reported directly by the cited paper.
func Rep(v float64) Param { return Param{Value: v, Source: Reported} }

// derived constructs a parameter produced by a heuristic.
func derived(v float64, s Source) Param { return Param{Value: v, Source: s} }

// Cell is a cell-level NVM (or SRAM) model: one column of the paper's
// Table II. Units follow Table II: process in nm, cell size in F², currents
// in µA, voltages in V, power in µW, energy in pJ, pulses in ns.
//
// Parameters that do not apply to a class (for example set/reset voltage for
// PCRAM, which is current-programmed in NVSim's parameterization) are left
// Missing, mirroring the grayed-out cells of Table II.
type Cell struct {
	// Name is the citation name used throughout the paper, e.g. "Zhang".
	Name string
	// Class is the technology class.
	Class Class
	// Year is the publication year of the cited VLSI paper.
	Year int
	// AccessDevice is the access transistor type (CMOS for all Table II
	// cells).
	AccessDevice string

	// ProcessNM is the process node in nanometers.
	ProcessNM Param
	// CellSizeF2 is the cell area in F² (feature-size-squared).
	CellSizeF2 Param
	// CellLevels is the number of levels per cell (1 = SLC, 2 = MLC).
	CellLevels int

	// ReadCurrentUA is the read current in µA (PCRAM parameterization).
	ReadCurrentUA Param
	// ReadVoltage is the read voltage in V (STTRAM/RRAM parameterization).
	ReadVoltage Param
	// ReadPowerUW is the read power in µW (STTRAM/RRAM parameterization).
	ReadPowerUW Param
	// ReadEnergyPJ is the per-access read energy in pJ (PCRAM
	// parameterization).
	ReadEnergyPJ Param

	// ResetCurrentUA is the RESET programming current in µA.
	ResetCurrentUA Param
	// ResetVoltage is the RESET programming voltage in V (RRAM).
	ResetVoltage Param
	// ResetPulseNS is the RESET pulse width in ns.
	ResetPulseNS Param
	// ResetEnergyPJ is the RESET energy in pJ.
	ResetEnergyPJ Param

	// SetCurrentUA is the SET programming current in µA.
	SetCurrentUA Param
	// SetVoltage is the SET programming voltage in V (RRAM).
	SetVoltage Param
	// SetPulseNS is the SET pulse width in ns.
	SetPulseNS Param
	// SetEnergyPJ is the SET energy in pJ.
	SetEnergyPJ Param
}

// DisplayName returns the paper's LLC naming convention: citation name plus
// a class subscript, e.g. "Zhang_R"; SRAM is just "SRAM".
func (c *Cell) DisplayName() string {
	if c.Class == SRAM {
		return c.Name
	}
	return c.Name + "_" + c.Class.Subscript()
}

// ParamNames lists the Table II parameter row names in table order.
var ParamNames = []string{
	"process [nm]",
	"cell size [F2]",
	"read current [uA]",
	"read voltage [V]",
	"read power [uW]",
	"read energy [pJ]",
	"reset current [uA]",
	"reset voltage [V]",
	"reset pulse [ns]",
	"reset energy [pJ]",
	"set current [uA]",
	"set voltage [V]",
	"set pulse [ns]",
	"set energy [pJ]",
}

// Params returns the cell's parameters keyed by the Table II row name, in
// the same units as the table. Only rows relevant to the cell's class carry
// values; the rest are Missing.
func (c *Cell) Params() map[string]Param {
	return map[string]Param{
		"process [nm]":       c.ProcessNM,
		"cell size [F2]":     c.CellSizeF2,
		"read current [uA]":  c.ReadCurrentUA,
		"read voltage [V]":   c.ReadVoltage,
		"read power [uW]":    c.ReadPowerUW,
		"read energy [pJ]":   c.ReadEnergyPJ,
		"reset current [uA]": c.ResetCurrentUA,
		"reset voltage [V]":  c.ResetVoltage,
		"reset pulse [ns]":   c.ResetPulseNS,
		"reset energy [pJ]":  c.ResetEnergyPJ,
		"set current [uA]":   c.SetCurrentUA,
		"set voltage [V]":    c.SetVoltage,
		"set pulse [ns]":     c.SetPulseNS,
		"set energy [pJ]":    c.SetEnergyPJ,
	}
}

// requiredParams maps each class to the NVSim-style parameter set that a
// circuit simulator needs for that class (Section III of the paper).
var requiredParams = map[Class][]string{
	PCRAM: {
		"process [nm]", "cell size [F2]",
		"read current [uA]", "read energy [pJ]",
		"reset current [uA]", "reset pulse [ns]",
		"set current [uA]", "set pulse [ns]",
	},
	STTRAM: {
		"process [nm]", "cell size [F2]",
		"read voltage [V]", "read power [uW]",
		"reset current [uA]", "reset pulse [ns]", "reset energy [pJ]",
		"set current [uA]", "set pulse [ns]", "set energy [pJ]",
	},
	RRAM: {
		"process [nm]", "cell size [F2]",
		"read voltage [V]", "read power [uW]",
		"reset voltage [V]", "reset pulse [ns]", "reset energy [pJ]",
		"set voltage [V]", "set pulse [ns]", "set energy [pJ]",
	},
	SRAM: {
		"process [nm]", "cell size [F2]",
	},
}

// RequiredParams returns the names of the parameters a circuit-level
// simulator requires for the given class, per Section III.
func RequiredParams(class Class) []string {
	req := requiredParams[class]
	out := make([]string, len(req))
	copy(out, req)
	return out
}

// MissingParams returns the required parameters of the cell that have no
// value yet, in table order.
func (c *Cell) MissingParams() []string {
	params := c.Params()
	var missing []string
	for _, name := range requiredParams[c.Class] {
		if !params[name].Known() {
			missing = append(missing, name)
		}
	}
	return missing
}

// IsComplete reports whether every parameter required for the cell's class
// has a value.
func (c *Cell) IsComplete() bool { return len(c.MissingParams()) == 0 }

// Validate checks structural invariants: positive reported values, a known
// class, and levels of 1 or 2.
func (c *Cell) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("nvm: cell has no name")
	}
	switch c.Class {
	case SRAM, PCRAM, STTRAM, RRAM:
	default:
		return fmt.Errorf("nvm: cell %s: invalid class %d", c.Name, int(c.Class))
	}
	if c.CellLevels != 1 && c.CellLevels != 2 {
		return fmt.Errorf("nvm: cell %s: cell levels must be 1 or 2, got %d", c.Name, c.CellLevels)
	}
	for name, p := range c.Params() {
		if p.Known() && p.Value <= 0 {
			return fmt.Errorf("nvm: cell %s: parameter %s must be positive, got %g", c.Name, name, p.Value)
		}
	}
	return nil
}

// Clone returns a deep copy of the cell.
func (c *Cell) Clone() *Cell {
	cp := *c
	return &cp
}
