package nvm

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTripCorpus(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportJSON(&buf, CorpusWithSRAM()); err != nil {
		t.Fatal(err)
	}
	cells, err := ImportJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 11 {
		t.Fatalf("imported %d cells, want 11", len(cells))
	}
	orig := CorpusWithSRAM()
	for i, c := range cells {
		o := orig[i]
		if c.Name != o.Name || c.Class != o.Class || c.Year != o.Year || c.CellLevels != o.CellLevels {
			t.Errorf("cell %d metadata: %+v vs %+v", i, c, o)
		}
		op, cp := o.Params(), c.Params()
		for _, name := range ParamNames {
			if op[name] != cp[name] {
				t.Errorf("%s %s: %+v vs %+v", c.Name, name, cp[name], op[name])
			}
		}
	}
}

func TestJSONProvenancePreserved(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportJSON(&buf, []*Cell{Chung()}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"heuristic-electrical", "reported", "\"class\": \"STTRAM\""} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q", want)
		}
	}
	cells, err := ImportJSON(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if cells[0].ReadPowerUW.Source != HeuristicElectrical {
		t.Error("provenance lost through round trip")
	}
}

func TestImportJSONErrors(t *testing.T) {
	bad := []string{
		`not json`,
		`[{"name":"x","class":"FLASH","cell_levels":1,"params":{}}]`,
		`[{"name":"x","class":"RRAM","cell_levels":1,"params":{"bogus row":{"value":1,"source":"reported"}}}]`,
		`[{"name":"x","class":"RRAM","cell_levels":1,"params":{"process [nm]":{"value":1,"source":"guessed"}}}]`,
		`[{"name":"x","class":"RRAM","cell_levels":0,"params":{}}]`,
		`[{"name":"x","class":"RRAM","cell_levels":1,"params":{"process [nm]":{"value":-5,"source":"reported"}}}]`,
	}
	for i, in := range bad {
		if _, err := ImportJSON(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestExportJSONRejectsInvalidCell(t *testing.T) {
	bad := &Cell{Name: "", Class: RRAM, CellLevels: 1}
	if err := ExportJSON(&bytes.Buffer{}, []*Cell{bad}); err == nil {
		t.Error("invalid cell exported")
	}
}

func TestImportedModelsDriveThePipeline(t *testing.T) {
	// The released file is not just data: imported cells must work with
	// Complete and downstream modeling.
	var buf bytes.Buffer
	if err := ExportJSON(&buf, Corpus()); err != nil {
		t.Fatal(err)
	}
	cells, err := ImportJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	stripped := Strip(cells[9]) // Zhang
	if _, err := Complete(stripped, cells); err != nil {
		t.Fatalf("Complete on imported corpus: %v", err)
	}
	if !stripped.IsComplete() {
		t.Error("imported corpus could not complete a stripped cell")
	}
}
