package nvm

import "fmt"

// This file provides unified per-bit electrical quantities across the three
// class-specific parameterizations of Table II (PCRAM is current/pulse
// programmed, STTRAM reports energies, RRAM is voltage programmed), so the
// circuit-level model in internal/nvsim can treat all classes uniformly.

// BitSetEnergyPJ returns the per-bit SET energy in pJ, using the reported
// energy when available and equation (2) otherwise.
func (c *Cell) BitSetEnergyPJ() (float64, error) {
	if c.SetEnergyPJ.Known() {
		return c.SetEnergyPJ.Value, nil
	}
	if c.SetCurrentUA.Known() && c.SetPulseNS.Known() {
		return ProgramEnergyPJ(c.SetCurrentUA.Value, AccessVoltage(c), c.SetPulseNS.Value), nil
	}
	return 0, fmt.Errorf("nvm: %s: set energy underdetermined", c.Name)
}

// BitResetEnergyPJ returns the per-bit RESET energy in pJ, using the
// reported energy when available and equation (2) otherwise.
func (c *Cell) BitResetEnergyPJ() (float64, error) {
	if c.ResetEnergyPJ.Known() {
		return c.ResetEnergyPJ.Value, nil
	}
	if c.ResetCurrentUA.Known() && c.ResetPulseNS.Known() {
		return ProgramEnergyPJ(c.ResetCurrentUA.Value, AccessVoltage(c), c.ResetPulseNS.Value), nil
	}
	return 0, fmt.Errorf("nvm: %s: reset energy underdetermined", c.Name)
}

// BitWriteEnergyPJ returns the mean of SET and RESET per-bit energies, the
// expected per-bit cost of writing unbiased data.
func (c *Cell) BitWriteEnergyPJ() (float64, error) {
	set, err := c.BitSetEnergyPJ()
	if err != nil {
		return 0, err
	}
	reset, err := c.BitResetEnergyPJ()
	if err != nil {
		return 0, err
	}
	return (set + reset) / 2, nil
}

// BitReadEnergyPJ returns the per-bit read energy in pJ given a sense
// window in ns. PCRAM cells report read energy directly; STTRAM/RRAM cells
// report read power, which is integrated over the sense window.
func (c *Cell) BitReadEnergyPJ(senseNS float64) (float64, error) {
	if c.ReadEnergyPJ.Known() {
		return c.ReadEnergyPJ.Value, nil
	}
	if c.ReadPowerUW.Known() {
		// µW × ns = 10⁻¹⁵ J = 10⁻³ pJ.
		return c.ReadPowerUW.Value * senseNS * 1e-3, nil
	}
	return 0, fmt.Errorf("nvm: %s: read energy underdetermined", c.Name)
}

// SetPulse returns the SET pulse width in ns (SRAM: 0).
func (c *Cell) SetPulse() float64 {
	if c.SetPulseNS.Known() {
		return c.SetPulseNS.Value
	}
	return 0
}

// ResetPulse returns the RESET pulse width in ns (SRAM: 0).
func (c *Cell) ResetPulse() float64 {
	if c.ResetPulseNS.Known() {
		return c.ResetPulseNS.Value
	}
	return 0
}

// MaxWritePulse returns the slower of the SET and RESET pulses in ns, the
// cell-level write latency floor for a write of unknown polarity.
func (c *Cell) MaxWritePulse() float64 {
	s, r := c.SetPulse(), c.ResetPulse()
	if s > r {
		return s
	}
	return r
}

// EffectiveBitsPerCell returns the number of stored bits per physical cell
// (log2 of cell levels; 1 for SLC, 2 levels = 1 bit, the paper's "2
// levels" MLC cells store 2 bits — Close is a "2+ bit/cell" chip and Xue a
// 2-level ODESY cell, both modeled as 2 bits/cell as in Table III where
// their fixed-capacity LLCs double density).
func (c *Cell) EffectiveBitsPerCell() float64 {
	if c.CellLevels >= 2 {
		return 2
	}
	return 1
}
