package nvm

import (
	"strings"
	"testing"
)

func TestCorpusMatchesTableII(t *testing.T) {
	// One spot-check row per cell against the published Table II values.
	cases := []struct {
		cell  *Cell
		class Class
		year  int
		proc  float64
		size  float64
	}{
		{Oh(), PCRAM, 2005, 120, 16.6},
		{Chen(), PCRAM, 2006, 60, 10},
		{Kang(), PCRAM, 2006, 100, 16.6},
		{Close(), PCRAM, 2013, 90, 25},
		{Chung(), STTRAM, 2010, 54, 14},
		{Jan(), STTRAM, 2014, 90, 50},
		{Umeki(), STTRAM, 2015, 65, 48},
		{Xue(), STTRAM, 2016, 45, 63},
		{Hayakawa(), RRAM, 2015, 40, 4},
		{Zhang(), RRAM, 2016, 22, 4},
	}
	for _, tc := range cases {
		c := tc.cell
		if c.Class != tc.class {
			t.Errorf("%s: class = %v, want %v", c.Name, c.Class, tc.class)
		}
		if c.Year != tc.year {
			t.Errorf("%s: year = %d, want %d", c.Name, c.Year, tc.year)
		}
		if c.ProcessNM.Value != tc.proc {
			t.Errorf("%s: process = %g, want %g", c.Name, c.ProcessNM.Value, tc.proc)
		}
		if c.CellSizeF2.Value != tc.size {
			t.Errorf("%s: cell size = %g, want %g", c.Name, c.CellSizeF2.Value, tc.size)
		}
	}
}

func TestCorpusCompleteAndValid(t *testing.T) {
	for _, c := range CorpusWithSRAM() {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%s): %v", c.Name, err)
		}
		if !c.IsComplete() {
			t.Errorf("%s is incomplete: missing %v", c.Name, c.MissingParams())
		}
	}
}

func TestCorpusProvenanceMatchesPaperAnnotations(t *testing.T) {
	// Table II marks specific values with † (heuristic 1) and * (heuristics
	// 2/3). Verify provenance for the annotated parameters.
	type want struct {
		cell   string
		param  string
		source Source
	}
	cases := []want{
		{"Oh", "cell size [F2]", HeuristicSimilarity},
		{"Chen", "process [nm]", HeuristicInterpolation},
		{"Chen", "cell size [F2]", HeuristicInterpolation},
		{"Oh", "read current [uA]", HeuristicSimilarity},
		{"Chen", "read current [uA]", HeuristicSimilarity},
		{"Kang", "read current [uA]", HeuristicSimilarity},
		{"Close", "read current [uA]", HeuristicSimilarity},
		{"Oh", "read energy [pJ]", HeuristicSimilarity},
		{"Kang", "set current [uA]", HeuristicSimilarity},
		{"Chung", "read power [uW]", HeuristicElectrical},
		{"Chung", "reset energy [pJ]", HeuristicElectrical},
		{"Chung", "set current [uA]", HeuristicElectrical},
		{"Chung", "set energy [pJ]", HeuristicElectrical},
		{"Jan", "read power [uW]", HeuristicSimilarity},
		{"Jan", "reset energy [pJ]", HeuristicSimilarity},
		{"Jan", "set energy [pJ]", HeuristicSimilarity},
		{"Umeki", "cell size [F2]", HeuristicElectrical},
		{"Umeki", "reset current [uA]", HeuristicElectrical},
		{"Umeki", "set current [uA]", HeuristicElectrical},
		{"Hayakawa", "cell size [F2]", HeuristicSimilarity},
		{"Hayakawa", "read voltage [V]", HeuristicSimilarity},
		{"Hayakawa", "reset voltage [V]", HeuristicSimilarity},
		{"Zhang", "cell size [F2]", HeuristicSimilarity},
		{"Xue", "read voltage [V]", Reported},
		{"Zhang", "reset pulse [ns]", Reported},
	}
	for _, tc := range cases {
		c, err := ByName(tc.cell)
		if err != nil {
			t.Fatalf("ByName(%q): %v", tc.cell, err)
		}
		got := c.Params()[tc.param].Source
		if got != tc.source {
			t.Errorf("%s %s: source = %v, want %v", tc.cell, tc.param, got, tc.source)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"Zhang", "zhang", "ZHANG", "Zhang_R"} {
		c, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if c.Name != "Zhang" {
			t.Errorf("ByName(%q).Name = %q, want Zhang", name, c.Name)
		}
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Error("ByName(nonexistent) succeeded, want error")
	}
	if c, err := ByName("SRAM"); err != nil || c.Class != SRAM {
		t.Errorf("ByName(SRAM) = %v, %v; want SRAM cell", c, err)
	}
}

func TestDisplayName(t *testing.T) {
	cases := map[string]string{
		"Oh":       "Oh_P",
		"Chung":    "Chung_S",
		"Zhang":    "Zhang_R",
		"Hayakawa": "Hayakawa_R",
		"SRAM":     "SRAM",
	}
	for name, want := range cases {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.DisplayName(); got != want {
			t.Errorf("DisplayName(%s) = %q, want %q", name, got, want)
		}
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{SRAM: "SRAM", PCRAM: "PCRAM", STTRAM: "STTRAM", RRAM: "RRAM"} {
		if c.String() != want {
			t.Errorf("Class(%d).String() = %q, want %q", int(c), c.String(), want)
		}
	}
	if got := Class(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown class string = %q", got)
	}
}

func TestParseClass(t *testing.T) {
	ok := map[string]Class{
		"sram": SRAM, "PCRAM": PCRAM, "pcm": PCRAM,
		"STT-RAM": STTRAM, "mram": STTRAM, "ReRAM": RRAM, " rram ": RRAM,
	}
	for s, want := range ok {
		got, err := ParseClass(s)
		if err != nil || got != want {
			t.Errorf("ParseClass(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseClass("DRAM"); err == nil {
		t.Error("ParseClass(DRAM) succeeded, want error")
	}
}

func TestValidateRejectsBadCells(t *testing.T) {
	bad := []*Cell{
		{Name: "", Class: PCRAM, CellLevels: 1},
		{Name: "x", Class: Class(7), CellLevels: 1},
		{Name: "x", Class: PCRAM, CellLevels: 0},
		{Name: "x", Class: PCRAM, CellLevels: 1, ProcessNM: Rep(-5)},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid cell %+v", i, c)
		}
	}
}

func TestMissingParams(t *testing.T) {
	c := &Cell{Name: "x", Class: RRAM, CellLevels: 1, ProcessNM: Rep(22)}
	missing := c.MissingParams()
	if len(missing) != len(RequiredParams(RRAM))-1 {
		t.Errorf("MissingParams len = %d, want %d", len(missing), len(RequiredParams(RRAM))-1)
	}
	for _, m := range missing {
		if m == "process [nm]" {
			t.Error("process reported but listed missing")
		}
	}
}

func TestRequiredParamsIsACopy(t *testing.T) {
	a := RequiredParams(PCRAM)
	a[0] = "mutated"
	b := RequiredParams(PCRAM)
	if b[0] == "mutated" {
		t.Error("RequiredParams returned shared backing array")
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := Zhang()
	cp := c.Clone()
	cp.ProcessNM = Rep(99)
	cp.Name = "other"
	if c.ProcessNM.Value == 99 || c.Name == "other" {
		t.Error("Clone shares state with original")
	}
}

func TestSourceString(t *testing.T) {
	if Reported.String() != "reported" {
		t.Errorf("Reported.String() = %q", Reported.String())
	}
	if !HeuristicElectrical.Derived() || Reported.Derived() || Missing.Derived() {
		t.Error("Derived() classification wrong")
	}
	if !strings.Contains(HeuristicElectrical.String(), "†") {
		t.Errorf("heuristic 1 should render with †, got %q", HeuristicElectrical.String())
	}
}

func TestEffectiveBitsPerCell(t *testing.T) {
	if got := Xue().EffectiveBitsPerCell(); got != 2 {
		t.Errorf("Xue bits/cell = %g, want 2", got)
	}
	if got := Chung().EffectiveBitsPerCell(); got != 1 {
		t.Errorf("Chung bits/cell = %g, want 1", got)
	}
	if got := Close().EffectiveBitsPerCell(); got != 2 {
		t.Errorf("Close bits/cell = %g, want 2", got)
	}
}
