package workload

import "fmt"

// The profiles below model the paper's 20 benchmarks (Table V). Component
// footprints are the paper's Table VI unique footprints divided by the
// documented FootprintScale; write fractions come from the table's
// w_total/(r_total+w_total); LengthFactor preserves the paper's relative
// total access counts (clamped so every trace remains laptop-sized); hot
// vs stream/random mixture weights are tuned so the 90%-footprint
// concentration and the Table V LLC MPKI ordering are approximated. The
// four PRISM-incompatible workloads (gamess, gobmk, milc, perlbench) have
// no Table VI row; their profiles are modeled from their suite siblings
// and MPKI alone.

// FootprintScale is the divisor applied to the paper's address footprints:
// one synthetic 64-byte line stands for FootprintScale bytes of the
// original working set.
const FootprintScale = 64

// Profiles returns the 20 benchmark profiles in Table V order.
func Profiles() []Profile {
	return []Profile{
		{
			// bzip2: compression over large buffers; the paper's highest
			// cpu2006 MPKI (142.69) with a 6MB scaled working set.
			Name: "bzip2", InstrPerAccess: 4, LengthFactor: 1.2,
			Components: []Component{
				{Kind: Stream, Weight: 0.5, Lines: 60000, WriteFrac: 0.25},
				{Kind: Random, Weight: 0.3, Lines: 30000, WriteFrac: 0.25},
				{Kind: Hot, Weight: 0.2, Lines: 4096, WriteFrac: 0.25},
			},
		},
		{
			// gamess: quantum chemistry; cache-friendly (MPKI 12.83).
			// PRISM-incompatible — no Table VI calibration.
			Name: "gamess", InstrPerAccess: 6, LengthFactor: 0.8,
			Components: []Component{
				{Kind: Hot, Weight: 0.85, Lines: 8192, WriteFrac: 0.2},
				{Kind: Stream, Weight: 0.15, Lines: 65536, WriteFrac: 0.2},
			},
		},
		{
			// GemsFDTD: 3D Maxwell solver; enormous uniform footprint
			// (Table VI's extreme 90% footprints) with strong short-term
			// reuse keeping MPKI moderate (12.56).
			Name: "GemsFDTD", InstrPerAccess: 8, LengthFactor: 0.9,
			Components: []Component{
				{Kind: Hot, Weight: 0.5, Lines: 2048, WriteFrac: 0.30},
				{Kind: Stream, Weight: 0.5, Lines: 1_800_000, WriteFrac: 0.40},
			},
		},
		{
			// gobmk: Go playing; branchy search over board state (MPKI
			// 38.08). PRISM-incompatible.
			Name: "gobmk", InstrPerAccess: 6, LengthFactor: 0.8,
			Components: []Component{
				{Kind: Hot, Weight: 0.7, Lines: 16384, WriteFrac: 0.3},
				{Kind: Random, Weight: 0.3, Lines: 300000, WriteFrac: 0.3},
			},
		},
		{
			// milc: lattice QCD sweeps (MPKI 16.46). PRISM-incompatible.
			Name: "milc", InstrPerAccess: 6, LengthFactor: 0.7,
			Components: []Component{
				{Kind: Hot, Weight: 0.8, Lines: 8192, WriteFrac: 0.35},
				{Kind: Stream, Weight: 0.2, Lines: 500000, WriteFrac: 0.35},
			},
		},
		{
			// perlbench: interpreter with hot dispatch structures (MPKI
			// 7.57). PRISM-incompatible.
			Name: "perlbench", InstrPerAccess: 6, LengthFactor: 0.7,
			Components: []Component{
				{Kind: Hot, Weight: 0.92, Lines: 12288, WriteFrac: 0.3, ZipfS: 1.5},
				{Kind: Random, Weight: 0.08, Lines: 40960, WriteFrac: 0.3},
			},
		},
		{
			// tonto: quantum chemistry with a tiny, intensely reused
			// working set (Table VI: 90% footprint of just 5.6K addresses).
			Name: "tonto", InstrPerAccess: 4, LengthFactor: 0.9,
			Components: []Component{
				{Kind: Hot, Weight: 0.9, Lines: 4700, WriteFrac: 0.3, ZipfS: 1.5},
				{Kind: Stream, Weight: 0.1, Lines: 4096, WriteFrac: 0.3},
			},
		},
		{
			// x264: video encoding; streaming frame reads with writes
			// concentrated into a tiny output set (Table VI: 90% write
			// footprint 3.56K vs read 1585K).
			Name: "x264", InstrPerAccess: 5, LengthFactor: 1.5,
			Components: []Component{
				{Kind: Stream, Weight: 0.10, Lines: 120000, WriteFrac: 0.02},
				{Kind: Random, Weight: 0.05, Lines: 50000, WriteFrac: 0.02},
				{Kind: Hot, Weight: 0.85, Lines: 8192, WriteFrac: 0.156},
			},
		},
		{
			// vips: image pipeline; the paper's lowest MPKI (5.43), m.t.
			Name: "vips", MT: true, InstrPerAccess: 6, LengthFactor: 0.6,
			Components: []Component{
				{Kind: Hot, Weight: 0.92, Lines: 6144, WriteFrac: 0.26},
				{Kind: Stream, Weight: 0.08, Lines: 188000, WriteFrac: 0.3, Shared: true},
			},
		},
		{
			// cg: conjugate gradient; sparse random gathers over a shared
			// matrix straddling the 2MB LLC (MPKI 80.89), almost read-only
			// (Table VI: w_total is 5% of traffic).
			Name: "cg", MT: true, InstrPerAccess: 3, LengthFactor: 0.5,
			Components: []Component{
				{Kind: Random, Weight: 0.75, Lines: 36000, WriteFrac: 0.05, Shared: true},
				{Kind: Hot, Weight: 0.25, Lines: 2048, WriteFrac: 0.05},
			},
		},
		{
			// ep: embarrassingly parallel RNG; tiny hot read set, wider
			// private write spread (Table VI: 90% write footprint 113K vs
			// read 0.84K).
			Name: "ep", MT: true, InstrPerAccess: 4, LengthFactor: 0.6,
			Components: []Component{
				{Kind: Hot, Weight: 0.65, Lines: 1024, WriteFrac: 0.1, ZipfS: 1.4},
				{Kind: Hot, Weight: 0.35, Lines: 23000, WriteFrac: 0.75, ZipfS: 1.5},
			},
		},
		{
			// ft: 3D FFT; balanced reads/writes (Table VI: 49% writes)
			// over shared arrays just above 2MB — the capacity-sensitive
			// workload where Hayakawa_R shines at fixed-area.
			Name: "ft", MT: true, InstrPerAccess: 5, LengthFactor: 0.6,
			Components: []Component{
				{Kind: Stream, Weight: 0.5, Lines: 21000, WriteFrac: 0.5, Shared: true},
				{Kind: Random, Weight: 0.3, Lines: 21000, WriteFrac: 0.5, Shared: true},
				{Kind: Hot, Weight: 0.2, Lines: 2048, WriteFrac: 0.4},
			},
		},
		{
			// is: integer sort; random histogram traffic over a shared
			// buffer straddling the LLC (MPKI 35.63) — the workload whose
			// performance degrades most with slow NVM reads.
			Name: "is", MT: true, InstrPerAccess: 5, LengthFactor: 0.4,
			Components: []Component{
				{Kind: Random, Weight: 0.75, Lines: 34000, WriteFrac: 0.35, Shared: true},
				{Kind: Hot, Weight: 0.25, Lines: 1024, WriteFrac: 0.2},
			},
		},
		{
			// lu: Gauss-Seidel solver; long trace (Table VI: 17.8G reads)
			// over a sub-2MB working set with heavy reuse.
			Name: "lu", MT: true, InstrPerAccess: 3, LengthFactor: 1.4,
			Components: []Component{
				{Kind: Stream, Weight: 0.55, Lines: 13000, WriteFrac: 0.2, Shared: true},
				{Kind: Hot, Weight: 0.45, Lines: 3072, WriteFrac: 0.15},
			},
		},
		{
			// mg: multigrid; large shared meshes (7.4MB scaled) swept with
			// little reuse — capacity starved (MPKI 65.09), the workload
			// the paper says favors the densest LLCs.
			Name: "mg", MT: true, InstrPerAccess: 4, LengthFactor: 0.5,
			Components: []Component{
				{Kind: Stream, Weight: 0.4, Lines: 50000, WriteFrac: 0.17, Shared: true},
				{Kind: Random, Weight: 0.3, Lines: 35000, WriteFrac: 0.17, Shared: true},
				{Kind: Hot, Weight: 0.3, Lines: 2048, WriteFrac: 0.17},
			},
		},
		{
			// sp: penta-diagonal solver; shared arrays with streaming and
			// scattered updates (MPKI 44.35).
			Name: "sp", MT: true, InstrPerAccess: 5, LengthFactor: 1.2,
			Components: []Component{
				{Kind: Random, Weight: 0.7, Lines: 18000, WriteFrac: 0.3, Shared: true},
				{Kind: Stream, Weight: 0.3, Lines: 64000, WriteFrac: 0.3, Shared: true},
			},
		},
		{
			// ua: unstructured adaptive mesh; irregular shared accesses
			// (MPKI 39.08, 37% writes).
			Name: "ua", MT: true, InstrPerAccess: 5, LengthFactor: 1.1,
			Components: []Component{
				{Kind: Random, Weight: 0.65, Lines: 21000, WriteFrac: 0.37, Shared: true},
				{Kind: Stream, Weight: 0.35, Lines: 48000, WriteFrac: 0.37, Shared: true},
			},
		},
		{
			// deepsjeng (AI): alpha-beta search; a tiny blazing-hot node
			// set over a huge transposition table (Table VI: 90% footprint
			// of 4.8K addresses out of 59M unique) — the paper's highest
			// MPKI (159.58).
			Name: "deepsjeng", InstrPerAccess: 3, LengthFactor: 1.1,
			Components: []Component{
				{Kind: Hot, Weight: 0.88, Lines: 1200, WriteFrac: 0.30, ZipfS: 1.6},
				{Kind: Random, Weight: 0.12, Lines: 920000, WriteFrac: 0.80},
			},
		},
		{
			// leela (AI): Monte Carlo tree search; hot tree nodes plus
			// scattered playout state, writes spread wider than reads
			// (Table VI: unique writes 5.06M vs reads 2.26M).
			Name: "leela", InstrPerAccess: 4, LengthFactor: 0.9,
			Components: []Component{
				{Kind: Hot, Weight: 0.79, Lines: 1024, WriteFrac: 0.25, ZipfS: 1.4},
				{Kind: Random, Weight: 0.13, Lines: 10000, WriteFrac: 0.2},
				{Kind: Random, Weight: 0.08, Lines: 22000, WriteFrac: 0.6},
			},
		},
		{
			// exchange2 (AI): recursive puzzle generator; the paper's
			// extreme — the largest totals (62G reads) over the smallest
			// footprint (30K unique addresses), nearly all cache-resident.
			Name: "exchange2", InstrPerAccess: 3, LengthFactor: 2.2,
			Components: []Component{
				{Kind: Hot, Weight: 0.97, Lines: 470, WriteFrac: 0.41, ZipfS: 1.4},
				// A thin slice of L2-sized shuffle state keeps the LLC
				// lightly active (hit-dominated), matching the paper's
				// nonzero exchange2 MPKI despite its tiny footprint.
				{Kind: Random, Weight: 0.07, Lines: 4500, WriteFrac: 0.41},
			},
		},
	}
}

// ByName returns the profile for a Table V benchmark name.
func ByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: no profile named %q", name)
}

// Names lists the profile names in Table V order.
func Names() []string {
	ps := Profiles()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// AINames lists the cpu2017 statistical-inference benchmarks.
func AINames() []string { return []string{"deepsjeng", "leela", "exchange2"} }

// CharacterizedNames lists the 16 Table VI benchmarks (PRISM-compatible).
func CharacterizedNames() []string {
	excluded := map[string]bool{"gamess": true, "gobmk": true, "milc": true, "perlbench": true}
	var out []string
	for _, n := range Names() {
		if !excluded[n] {
			out = append(out, n)
		}
	}
	return out
}
