package workload

// Chunk-at-a-time trace generation. Generator produces the exact access
// sequence Generate materializes — same mixture state machine, same RNG
// consumption order — through the trace.ChunkSource interface, so the
// simulator can stream paper-scale access counts with O(chunk) memory
// and overlap generation with simulation (see system.RunStream).
// Generate itself is one ReadChunk over a full-trace buffer, which makes
// the two paths identical by construction.

import (
	"fmt"
	"math/rand"

	"nvmllc/internal/trace"
)

// Generator streams a profile's synthetic trace chunk by chunk. It is a
// stateful single-pass iterator (see trace.ChunkSource); Reset rewinds
// it to the start of the identical deterministic sequence, re-seeding
// the per-thread RNGs in place so steady-state regeneration does not
// reallocate them.
type Generator struct {
	prof    Profile
	opts    Options
	threads int
	total   int
	next    int
	cum     []float64
	sum     float64
	states  []generatorState
	meta    trace.Meta
}

// NewGenerator validates the profile and prepares the per-thread
// generation state. The (profile, Options) pair fully determines the
// stream, exactly as it determines Generate's trace.
func NewGenerator(p Profile, opts Options) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	threads := 1
	if p.MT {
		threads = opts.Threads
	}
	if threads > 64 {
		return nil, fmt.Errorf("workload %s: %d threads exceeds limit 64", p.Name, threads)
	}
	total := int(float64(opts.Accesses) * p.LengthFactor)
	if total < 1000 {
		total = 1000
	}

	g := &Generator{
		prof:    p,
		opts:    opts,
		threads: threads,
		cum:     make([]float64, len(p.Components)),
	}
	for i, c := range p.Components {
		g.sum += c.Weight
		g.cum[i] = g.sum
	}

	nc := len(p.Components)
	g.states = make([]generatorState, threads)
	zipfsFlat := make([]*rand.Zipf, threads*nc)
	cursorsFlat := make([]int64, threads*nc)
	for t := 0; t < threads; t++ {
		rng := rand.New(rand.NewSource(g.threadSeed(t)))
		st := &g.states[t]
		st.rng = rng
		st.zipfs = zipfsFlat[t*nc : (t+1)*nc]
		st.cursors = cursorsFlat[t*nc : (t+1)*nc]
		for i, c := range p.Components {
			if c.Kind == Hot {
				s := c.ZipfS
				if s == 0 {
					s = 1.3
				}
				st.zipfs[i] = rand.NewZipf(rng, s, 1, uint64(c.Lines-1))
			}
		}
	}
	g.resetCursors()

	// The trace length is total rounded down to a multiple of threads,
	// with tid = index mod threads, so every thread's count is exact up
	// front — the piece of whole-trace knowledge the simulator's
	// instruction pacing needs before the first access exists.
	perThread := total / threads
	g.total = perThread * threads
	per := make([]int64, threads)
	for t := range per {
		per[t] = int64(perThread)
	}
	g.meta = trace.Meta{
		Name:       p.Name,
		Threads:    threads,
		InstrCount: uint64(float64(g.total) * p.InstrPerAccess),
		Accesses:   int64(g.total),
		PerThread:  per,
	}
	return g, nil
}

// threadSeed is the deterministic per-thread RNG seed (unchanged from
// the original whole-trace generator).
func (g *Generator) threadSeed(t int) int64 {
	return g.opts.Seed + int64(t)*7919 + hashName(g.prof.Name)
}

// resetCursors re-staggers the Stream-component cursors across threads.
func (g *Generator) resetCursors() {
	for t := range g.states {
		st := &g.states[t]
		for i, c := range g.prof.Components {
			if c.Kind == Stream {
				st.cursors[i] = (c.Lines / int64(len(g.states))) * int64(t)
			} else {
				st.cursors[i] = 0
			}
		}
	}
}

// Meta describes the stream (see trace.Meta); callers must not mutate
// the shared PerThread slice.
func (g *Generator) Meta() trace.Meta { return g.meta }

// Reset rewinds the generator to the start of its sequence. The
// per-thread RNGs are re-seeded in place (their Zipf samplers keep
// pointing at them), so resetting allocates nothing.
func (g *Generator) Reset() {
	g.next = 0
	for t := range g.states {
		g.states[t].rng.Seed(g.threadSeed(t))
	}
	g.resetCursors()
}

// ReadChunk fills buf with the next accesses of the stream, returning
// how many were produced (0 when exhausted). Generation allocates
// nothing per access.
func (g *Generator) ReadChunk(buf []trace.Access) (int, error) {
	if len(buf) == 0 {
		return 0, fmt.Errorf("workload %s: ReadChunk with empty buffer", g.prof.Name)
	}
	n := g.total - g.next
	if n > len(buf) {
		n = len(buf)
	}
	for k := 0; k < n; k++ {
		i := g.next + k
		t := i % g.threads
		st := &g.states[t]
		ci := pickComponent(st.rng, g.cum, g.sum)
		c := &g.prof.Components[ci]

		var line int64
		switch c.Kind {
		case Hot:
			line = int64(st.zipfs[ci].Uint64())
		case Stream:
			line = st.cursors[ci]
			st.cursors[ci]++
			if st.cursors[ci] >= c.Lines {
				st.cursors[ci] = 0
			}
		case Random:
			line = st.rng.Int63n(c.Lines)
		}
		addr := componentBase(g.prof.Name, ci, t, c.Shared) + uint64(line)*lineBytes
		kind := trace.Read
		if st.rng.Float64() < c.WriteFrac {
			kind = trace.Write
		}
		buf[k] = trace.Access{Addr: addr, Kind: kind, Tid: uint8(t)}
	}
	g.next += n
	return n, nil
}
