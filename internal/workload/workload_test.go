package workload

import (
	"math"
	"testing"

	"nvmllc/internal/prism"
	"nvmllc/internal/reference"
	"nvmllc/internal/trace"
)

func TestAllProfilesValidate(t *testing.T) {
	for _, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestProfilesCoverTableV(t *testing.T) {
	ps := Profiles()
	if len(ps) != 20 {
		t.Fatalf("profiles = %d, want 20", len(ps))
	}
	for _, w := range reference.Workloads() {
		p, err := ByName(w.Name)
		if err != nil {
			t.Errorf("no profile for Table V workload %s", w.Name)
			continue
		}
		if p.MT != w.MultiThreaded {
			t.Errorf("%s: MT = %v, Table V says %v", w.Name, p.MT, w.MultiThreaded)
		}
	}
	if _, err := ByName("unknown"); err == nil {
		t.Error("ByName(unknown) succeeded")
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	good := Component{Kind: Hot, Weight: 1, Lines: 10, WriteFrac: 0.5}
	bad := []Profile{
		{Name: "", InstrPerAccess: 3, LengthFactor: 1, Components: []Component{good}},
		{Name: "x", InstrPerAccess: 0.5, LengthFactor: 1, Components: []Component{good}},
		{Name: "x", InstrPerAccess: 3, LengthFactor: 0, Components: []Component{good}},
		{Name: "x", InstrPerAccess: 3, LengthFactor: 1},
		{Name: "x", InstrPerAccess: 3, LengthFactor: 1,
			Components: []Component{{Kind: Hot, Weight: 0, Lines: 10}}},
		{Name: "x", InstrPerAccess: 3, LengthFactor: 1,
			Components: []Component{{Kind: Hot, Weight: 1, Lines: 0}}},
		{Name: "x", InstrPerAccess: 3, LengthFactor: 1,
			Components: []Component{{Kind: Hot, Weight: 1, Lines: 10, WriteFrac: 2}}},
		{Name: "x", InstrPerAccess: 3, LengthFactor: 1,
			Components: []Component{{Kind: Hot, Weight: 1, Lines: 10, ZipfS: 0.9}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, p)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ByName("leela")
	opts := Options{Accesses: 20000, Seed: 42}
	a, err := Generate(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Accesses) != len(b.Accesses) {
		t.Fatal("lengths differ")
	}
	for i := range a.Accesses {
		if a.Accesses[i] != b.Accesses[i] {
			t.Fatalf("access %d differs: %+v vs %+v", i, a.Accesses[i], b.Accesses[i])
		}
	}
	c, err := Generate(p, Options{Accesses: 20000, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Accesses {
		if a.Accesses[i] != c.Accesses[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateAllProfilesProduceValidTraces(t *testing.T) {
	for _, p := range Profiles() {
		tr, err := Generate(p, Options{Accesses: 30000})
		if err != nil {
			t.Errorf("Generate(%s): %v", p.Name, err)
			continue
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		wantThreads := 1
		if p.MT {
			wantThreads = 4
		}
		if tr.Threads != wantThreads {
			t.Errorf("%s: threads = %d, want %d", p.Name, tr.Threads, wantThreads)
		}
		if tr.InstrCount < uint64(len(tr.Accesses)) {
			t.Errorf("%s: instr count below accesses", p.Name)
		}
	}
}

func TestWriteFractionsMatchTableVI(t *testing.T) {
	// The generated store share must match the paper's w/(r+w) within a
	// few points for every characterized workload.
	features := reference.PaperFeatures()
	for _, name := range CharacterizedNames() {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		f := features[name]
		want := float64(f.TotalWrites) / float64(f.TotalReads+f.TotalWrites)
		tr, err := Generate(p, Options{Accesses: 60000})
		if err != nil {
			t.Fatal(err)
		}
		r, w, _ := tr.Counts()
		got := float64(w) / float64(r+w)
		if math.Abs(got-want) > 0.08 {
			t.Errorf("%s: write fraction %.3f, Table VI implies %.3f", name, got, want)
		}
	}
}

func TestRelativeTraceLengthsFollowTotals(t *testing.T) {
	// exchange2 must be the longest trace; is among the shortest — the
	// paper's totals ordering for the AI correlation study.
	lengths := map[string]int{}
	for _, name := range []string{"exchange2", "deepsjeng", "leela", "is", "cg"} {
		p, _ := ByName(name)
		tr, err := Generate(p, Options{Accesses: 50000})
		if err != nil {
			t.Fatal(err)
		}
		lengths[name] = len(tr.Accesses)
	}
	if !(lengths["exchange2"] > lengths["deepsjeng"] && lengths["deepsjeng"] > lengths["leela"]) {
		t.Errorf("AI totals ordering broken: %v", lengths)
	}
	if lengths["is"] >= lengths["leela"] {
		t.Errorf("is should be shorter than leela: %v", lengths)
	}
}

func TestFootprintOrderingMatchesTableVI(t *testing.T) {
	// Characterize a few key workloads and check the paper's extremes:
	// GemsFDTD has the largest unique footprint, exchange2 the smallest,
	// deepsjeng in between but large.
	uniq := map[string]uint64{}
	for _, name := range []string{"GemsFDTD", "deepsjeng", "exchange2", "tonto", "leela"} {
		p, _ := ByName(name)
		tr, err := Generate(p, Options{Accesses: 400000})
		if err != nil {
			t.Fatal(err)
		}
		f := prism.Characterize(tr, prism.Config{})
		uniq[name] = f.UniqueReads + f.UniqueWrites
	}
	if !(uniq["GemsFDTD"] > uniq["deepsjeng"]) {
		t.Errorf("GemsFDTD unique %d not above deepsjeng %d", uniq["GemsFDTD"], uniq["deepsjeng"])
	}
	if !(uniq["deepsjeng"] > uniq["leela"] && uniq["leela"] > uniq["tonto"]) {
		t.Errorf("unique ordering broken: %v", uniq)
	}
	for name, u := range uniq {
		if name != "exchange2" && u <= uniq["exchange2"] {
			t.Errorf("%s unique %d not above exchange2 %d", name, u, uniq["exchange2"])
		}
	}
}

func TestConcentrationMatchesTableVIShape(t *testing.T) {
	// deepsjeng and exchange2 are hot-set dominated: their 90% footprint
	// is a tiny fraction of unique. GemsFDTD is uniform: a large fraction.
	conc := func(name string) float64 {
		p, _ := ByName(name)
		tr, err := Generate(p, Options{Accesses: 400000})
		if err != nil {
			t.Fatal(err)
		}
		f := prism.Characterize(tr, prism.Config{})
		return float64(f.Footprint90Reads) / float64(f.UniqueReads)
	}
	if c := conc("deepsjeng"); c > 0.3 {
		t.Errorf("deepsjeng 90%%/unique = %.2f, want hot-dominated (≤0.3)", c)
	}
	if c := conc("GemsFDTD"); c < 0.2 {
		t.Errorf("GemsFDTD 90%%/unique = %.2f, want spread (≥0.2)", c)
	}
}

func TestEntropyOrderingMatchesTableVI(t *testing.T) {
	// Table VI: GemsFDTD and cg have the highest global read entropy,
	// exchange2 and ep the lowest.
	h := map[string]float64{}
	for _, name := range []string{"GemsFDTD", "cg", "exchange2", "ep", "bzip2"} {
		p, _ := ByName(name)
		tr, err := Generate(p, Options{Accesses: 300000})
		if err != nil {
			t.Fatal(err)
		}
		h[name] = prism.Characterize(tr, prism.Config{}).GlobalReadEntropy
	}
	for _, hi := range []string{"GemsFDTD", "cg", "bzip2"} {
		for _, lo := range []string{"exchange2", "ep"} {
			if h[hi] <= h[lo] {
				t.Errorf("entropy ordering: H(%s)=%.2f not above H(%s)=%.2f", hi, h[hi], lo, h[lo])
			}
		}
	}
}

func TestMultiThreadedScalesToThreadCount(t *testing.T) {
	p, _ := ByName("cg")
	for _, threads := range []int{1, 2, 8, 16} {
		tr, err := Generate(p, Options{Accesses: 40000, Threads: threads})
		if err != nil {
			t.Fatal(err)
		}
		if tr.Threads != threads {
			t.Errorf("threads = %d, want %d", tr.Threads, threads)
		}
		parts, err := trace.SplitByThread(tr.Accesses, threads)
		if err != nil {
			t.Fatal(err)
		}
		for tid, part := range parts {
			if len(part) == 0 {
				t.Errorf("thread %d of %d got no accesses", tid, threads)
			}
		}
	}
}

func TestSharedVsPrivateRegions(t *testing.T) {
	// cg's random component is shared: different threads must touch
	// overlapping lines. Its hot component is private: hot lines differ.
	p, _ := ByName("cg")
	tr, err := Generate(p, Options{Accesses: 100000, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	perThread, err := trace.SplitByThread(tr.Accesses, 4)
	if err != nil {
		t.Fatal(err)
	}
	lines := func(accs []trace.Access) map[uint64]bool {
		m := make(map[uint64]bool)
		for _, a := range accs {
			m[a.Addr>>6] = true
		}
		return m
	}
	l0, l1 := lines(perThread[0]), lines(perThread[1])
	overlap := 0
	for l := range l0 {
		if l1[l] {
			overlap++
		}
	}
	if overlap == 0 {
		t.Error("threads share no lines despite shared component")
	}
	if overlap == len(l0) {
		t.Error("threads fully overlap despite private hot component")
	}
}

func TestGenerateRejectsTooManyThreads(t *testing.T) {
	p, _ := ByName("cg")
	if _, err := Generate(p, Options{Accesses: 1000, Threads: 65}); err == nil {
		t.Error("accepted 65 threads")
	}
}

func TestComponentKindString(t *testing.T) {
	if Hot.String() != "hot" || Stream.String() != "stream" || Random.String() != "random" {
		t.Error("component kind names wrong")
	}
	if ComponentKind(9).String() == "" {
		t.Error("unknown kind empty")
	}
}

func TestProfileHelpers(t *testing.T) {
	p := Profile{
		Name: "h", InstrPerAccess: 3, LengthFactor: 1,
		Components: []Component{
			{Kind: Hot, Weight: 1, Lines: 10, WriteFrac: 0.2},
			{Kind: Random, Weight: 3, Lines: 20, WriteFrac: 0.6},
		},
	}
	want := (1*0.2 + 3*0.6) / 4
	if math.Abs(p.WriteFraction()-want) > 1e-12 {
		t.Errorf("WriteFraction = %g, want %g", p.WriteFraction(), want)
	}
	if p.FootprintLines() != 30 {
		t.Errorf("FootprintLines = %d, want 30", p.FootprintLines())
	}
}

func TestCharacterizedNamesExcludesPRISMIncompatible(t *testing.T) {
	names := CharacterizedNames()
	if len(names) != 16 {
		t.Fatalf("characterized = %d, want 16", len(names))
	}
	for _, n := range names {
		if n == "gamess" || n == "gobmk" || n == "milc" || n == "perlbench" {
			t.Errorf("%s should be excluded", n)
		}
	}
	if len(AINames()) != 3 {
		t.Error("AI names wrong")
	}
}

func TestStreamComponentIsSequential(t *testing.T) {
	p := Profile{
		Name: "seq", InstrPerAccess: 3, LengthFactor: 1,
		Components: []Component{{Kind: Stream, Weight: 1, Lines: 1000}},
	}
	tr, err := Generate(p, Options{Accesses: 2000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Consecutive accesses advance by one line (mod wrap).
	for i := 1; i < 500; i++ {
		d := int64(tr.Accesses[i].Addr>>6) - int64(tr.Accesses[i-1].Addr>>6)
		if d != 1 && d != -(1000-1) {
			t.Fatalf("access %d: line delta %d, want +1 or wrap", i, d)
		}
	}
}
