// Package workload generates the synthetic memory-access traces that stand
// in for the paper's benchmark suites (SPEC cpu2006/cpu2017, PARSEC 3.0,
// NPB 3.3.1 — Table V). The real benchmarks and their billion-access traces
// are unavailable offline, so each benchmark is modeled as a deterministic
// mixture of access components (hot sets, streams, uniform regions)
// whose parameters are calibrated to the paper's published per-benchmark
// measurements:
//
//   - read/write mix and relative trace length from Table VI's
//     r_total/w_total;
//   - unique and 90% footprints (scaled down by a documented factor) and
//     the concentration (90% footprint ÷ unique footprint) from Table VI;
//   - LLC pressure (working-set span vs the 2MB baseline LLC) from
//     Table V's MPKI.
//
// Generation is fully deterministic for a given (profile, Options) pair.
package workload

import (
	"fmt"
	"math/rand"

	"nvmllc/internal/trace"
)

// ComponentKind selects the address-generation behavior of one mixture
// component.
type ComponentKind int

const (
	// Hot draws Zipf-distributed addresses from a small footprint,
	// modeling a high-reuse working set (caches, stacks, tables).
	Hot ComponentKind = iota
	// Stream walks sequentially through its region one line per access,
	// wrapping around, modeling array sweeps.
	Stream
	// Random draws uniformly from its region, modeling irregular
	// pointer-chasing and hash-table traffic.
	Random
)

// String names the component kind.
func (k ComponentKind) String() string {
	switch k {
	case Hot:
		return "hot"
	case Stream:
		return "stream"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("ComponentKind(%d)", int(k))
	}
}

// Component is one behavior in a workload's mixture.
type Component struct {
	// Kind is the address-generation behavior.
	Kind ComponentKind
	// Weight is the relative share of accesses drawn from this component.
	Weight float64
	// Lines is the footprint in 64-byte lines.
	Lines int64
	// WriteFrac is the probability an access from this component is a
	// store.
	WriteFrac float64
	// ZipfS is the Zipf skew for Hot components (must be > 1; default
	// 1.3).
	ZipfS float64
	// Shared makes multi-threaded threads address a single region instead
	// of per-thread partitions (shared arrays vs private heaps).
	Shared bool
}

// Profile describes one benchmark's synthetic model.
type Profile struct {
	// Name matches the Table V benchmark name.
	Name string
	// MT marks multi-threaded workloads; single-threaded profiles always
	// generate one thread.
	MT bool
	// InstrPerAccess is the number of instructions each memory access
	// represents.
	InstrPerAccess float64
	// LengthFactor scales the trace length relative to Options.Accesses,
	// preserving the paper's relative total access counts across
	// workloads.
	LengthFactor float64
	// Components is the access mixture; weights are normalized internally.
	Components []Component
}

// Validate checks profile invariants.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile has no name")
	}
	if p.InstrPerAccess < 1 {
		return fmt.Errorf("workload %s: instructions per access %g must be ≥ 1", p.Name, p.InstrPerAccess)
	}
	if p.LengthFactor <= 0 {
		return fmt.Errorf("workload %s: length factor %g must be positive", p.Name, p.LengthFactor)
	}
	if len(p.Components) == 0 {
		return fmt.Errorf("workload %s: no components", p.Name)
	}
	var totalW float64
	for i, c := range p.Components {
		if c.Weight <= 0 {
			return fmt.Errorf("workload %s: component %d weight %g must be positive", p.Name, i, c.Weight)
		}
		if c.Lines <= 0 {
			return fmt.Errorf("workload %s: component %d has no footprint", p.Name, i)
		}
		if c.WriteFrac < 0 || c.WriteFrac > 1 {
			return fmt.Errorf("workload %s: component %d write fraction %g outside [0,1]", p.Name, i, c.WriteFrac)
		}
		if c.Kind == Hot && c.ZipfS != 0 && c.ZipfS <= 1 {
			return fmt.Errorf("workload %s: component %d Zipf skew %g must be > 1", p.Name, i, c.ZipfS)
		}
		totalW += c.Weight
	}
	if totalW <= 0 {
		return fmt.Errorf("workload %s: zero total weight", p.Name)
	}
	return nil
}

// WriteFraction returns the expected store share of the mixture.
func (p Profile) WriteFraction() float64 {
	var w, total float64
	for _, c := range p.Components {
		w += c.Weight * c.WriteFrac
		total += c.Weight
	}
	if total == 0 {
		return 0
	}
	return w / total
}

// FootprintLines returns the summed component footprints (an upper bound
// on the lines the workload can touch).
func (p Profile) FootprintLines() int64 {
	var n int64
	for _, c := range p.Components {
		n += c.Lines
	}
	return n
}

// Options controls trace generation.
type Options struct {
	// Accesses is the base trace length before LengthFactor scaling
	// (default 1_000_000).
	Accesses int
	// Threads is the thread count for MT profiles (default 4;
	// single-threaded profiles ignore it).
	Threads int
	// Seed selects the deterministic random stream (default 1).
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Accesses <= 0 {
		o.Accesses = 1_000_000
	}
	if o.Threads <= 0 {
		o.Threads = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// addrBits carves the 64-bit address space: each component gets a region,
// each thread a partition within non-shared regions.
const (
	componentShift = 44
	threadShift    = 38
	lineBytes      = 64
)

// generatorState holds one thread's per-component cursors and RNG. The
// zipfs and cursors slices are windows into flat threads×components
// arrays shared by all states, so per-thread setup costs two allocations
// (the RNG and its Zipf samplers) instead of four.
type generatorState struct {
	rng     *rand.Rand
	zipfs   []*rand.Zipf
	cursors []int64
}

// Generate produces the profile's trace: one ReadChunk over an
// exactly-sized whole-trace buffer, so the materialized and streamed
// (NewGenerator) paths yield identical sequences by construction.
// Generation allocates nothing per access.
func Generate(p Profile, opts Options) (*trace.Trace, error) {
	g, err := NewGenerator(p, opts)
	if err != nil {
		return nil, err
	}
	meta := g.Meta()
	accs := make([]trace.Access, meta.Accesses)
	n, err := g.ReadChunk(accs)
	if err != nil {
		return nil, err
	}
	if int64(n) != meta.Accesses {
		return nil, fmt.Errorf("workload %s: generated %d of %d accesses", p.Name, n, meta.Accesses)
	}
	tr := &trace.Trace{
		Name:       meta.Name,
		Threads:    meta.Threads,
		Accesses:   accs,
		InstrCount: meta.InstrCount,
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// pickComponent samples an index by cumulative weight.
func pickComponent(rng *rand.Rand, cum []float64, sum float64) int {
	x := rng.Float64() * sum
	for i, c := range cum {
		if x < c {
			return i
		}
	}
	return len(cum) - 1
}

// componentBase lays out regions so components and thread partitions never
// overlap. Shared components ignore the thread partition.
func componentBase(name string, component, thread int, shared bool) uint64 {
	base := (uint64(hashName(name)&0xff) << 52) | uint64(component+1)<<componentShift
	if !shared {
		base |= uint64(thread) << threadShift
	}
	return base
}

// hashName gives a stable per-workload seed/address salt.
func hashName(s string) int64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int64(h & 0x7fffffff)
}
