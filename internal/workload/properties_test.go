package workload

import (
	"math"
	"testing"

	"nvmllc/internal/trace"
)

// TestWriteFractionMatchesProfileExpectation: every generated trace's
// store share converges to the profile's analytic WriteFraction.
func TestWriteFractionMatchesProfileExpectation(t *testing.T) {
	for _, p := range Profiles() {
		tr, err := Generate(p, Options{Accesses: 60000, Seed: 9})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		r, w, _ := tr.Counts()
		got := float64(w) / float64(r+w)
		want := p.WriteFraction()
		if math.Abs(got-want) > 0.03 {
			t.Errorf("%s: write fraction %.3f, profile expects %.3f", p.Name, got, want)
		}
	}
}

// TestFootprintBounded: the touched line count never exceeds the profile's
// declared footprint (per thread partitioning can only reduce it).
func TestFootprintBounded(t *testing.T) {
	for _, p := range Profiles() {
		tr, err := Generate(p, Options{Accesses: 50000, Seed: 4})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		lines := map[uint64]bool{}
		for _, a := range tr.Accesses {
			lines[a.Addr>>6] = true
		}
		bound := p.FootprintLines()
		if !p.MT {
			if int64(len(lines)) > bound {
				t.Errorf("%s: touched %d lines, profile bound %d", p.Name, len(lines), bound)
			}
			continue
		}
		// MT: private components replicate per thread (4 by default).
		if int64(len(lines)) > bound*4 {
			t.Errorf("%s: touched %d lines, MT bound %d", p.Name, len(lines), bound*4)
		}
	}
}

// TestComponentRegionsAreDisjoint: no two components of any profile may
// generate the same line address (regions are carved from distinct bases).
func TestComponentRegionsAreDisjoint(t *testing.T) {
	for _, p := range Profiles() {
		tr, err := Generate(p, Options{Accesses: 40000, Seed: 5, Threads: 4})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		// The component index is recoverable from the address layout.
		perComponent := map[uint64]map[uint64]bool{}
		for _, a := range tr.Accesses {
			comp := (a.Addr >> componentShift) & 0xff
			if perComponent[comp] == nil {
				perComponent[comp] = map[uint64]bool{}
			}
			perComponent[comp][a.Addr>>6] = true
		}
		if len(perComponent) != len(p.Components) {
			t.Errorf("%s: %d address regions for %d components", p.Name, len(perComponent), len(p.Components))
		}
	}
}

// TestThreadBalance: multi-threaded traces split work evenly.
func TestThreadBalance(t *testing.T) {
	p, _ := ByName("sp")
	tr, err := Generate(p, Options{Accesses: 48000, Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := trace.SplitByThread(tr.Accesses, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := len(tr.Accesses) / 8
	for tid, part := range parts {
		if len(part) != want {
			t.Errorf("thread %d has %d accesses, want %d", tid, len(part), want)
		}
	}
}

// TestInstructionCountScaling: instruction counts follow InstrPerAccess.
func TestInstructionCountScaling(t *testing.T) {
	for _, p := range Profiles() {
		tr, err := Generate(p, Options{Accesses: 20000})
		if err != nil {
			t.Fatal(err)
		}
		want := float64(len(tr.Accesses)) * p.InstrPerAccess
		if math.Abs(float64(tr.InstrCount)-want) > 1 {
			t.Errorf("%s: instr count %d, want %g", p.Name, tr.InstrCount, want)
		}
	}
}

// TestSeedIndependenceAcrossWorkloads: two different profiles with the
// same seed must not produce identical address streams (per-name salt).
func TestSeedIndependenceAcrossWorkloads(t *testing.T) {
	a, err := Generate(mustProfile(t, "sp"), Options{Accesses: 5000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(mustProfile(t, "ua"), Options{Accesses: 5000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	n := len(a.Accesses)
	if len(b.Accesses) < n {
		n = len(b.Accesses)
	}
	same := 0
	for i := 0; i < n; i++ {
		if a.Accesses[i].Addr == b.Accesses[i].Addr {
			same++
		}
	}
	if same > n/10 {
		t.Errorf("sp and ua share %d/%d addresses at the same positions", same, n)
	}
}

func mustProfile(t *testing.T, name string) Profile {
	t.Helper()
	p, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestMinimumTraceLength: even a tiny budget yields a usable trace.
func TestMinimumTraceLength(t *testing.T) {
	p, _ := ByName("tonto")
	tr, err := Generate(p, Options{Accesses: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Accesses) < 1000 {
		t.Errorf("minimum trace length = %d, want ≥ 1000", len(tr.Accesses))
	}
}

// TestZipfDefaultSkew: Hot components without an explicit skew still
// produce a concentrated distribution (top line ≫ uniform share).
func TestZipfDefaultSkew(t *testing.T) {
	p := Profile{
		Name: "zipfdefault", InstrPerAccess: 3, LengthFactor: 1,
		Components: []Component{{Kind: Hot, Weight: 1, Lines: 1000}},
	}
	tr, err := Generate(p, Options{Accesses: 50000})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[uint64]int{}
	for _, a := range tr.Accesses {
		counts[a.Addr]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	uniformShare := len(tr.Accesses) / 1000
	if max < 5*uniformShare {
		t.Errorf("hottest line %d accesses, want ≫ uniform %d", max, uniformShare)
	}
}
