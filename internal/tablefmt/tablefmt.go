// Package tablefmt renders the reproduction's tables, heatmaps and bar
// charts as aligned ASCII, mirroring the presentation of the paper's
// tables (II, III, V, VI) and figures (1, 2, 4).
package tablefmt

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple aligned-column text table.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: strings pass through, floats
// are formatted with %.3f (or %.4g when very large/small), integers with
// %d.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		row = append(row, formatCell(c))
	}
	t.AddRow(row...)
}

func formatCell(c interface{}) string {
	switch v := c.(type) {
	case string:
		return v
	case float64:
		return FormatFloat(v)
	case float32:
		return FormatFloat(float64(v))
	case int:
		return fmt.Sprintf("%d", v)
	case int64:
		return fmt.Sprintf("%d", v)
	case uint64:
		return fmt.Sprintf("%d", v)
	default:
		return fmt.Sprintf("%v", v)
	}
}

// FormatFloat renders a float compactly: fixed 3 decimals in the normal
// range, scientific form outside it.
func FormatFloat(v float64) string {
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 1e6 || av < 1e-3:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Render writes the table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := len(widths) - 1
	if total < 0 {
		total = 0
	}
	total *= 2
	for _, wd := range widths {
		total += wd
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// shades are the heatmap intensity glyphs from cold to hot.
var shades = []rune{'·', '░', '▒', '▓', '█'}

// Shade maps a value within [min,max] to an intensity glyph.
func Shade(v, min, max float64) rune {
	if math.IsNaN(v) {
		return '?'
	}
	if max <= min {
		return shades[0]
	}
	f := (v - min) / (max - min)
	idx := int(f * float64(len(shades)))
	if idx >= len(shades) {
		idx = len(shades) - 1
	}
	if idx < 0 {
		idx = 0
	}
	return shades[idx]
}

// Heatmap renders a labeled matrix with per-cell values and intensity
// glyphs, scaled over the whole matrix (like the paper's Figure 4 panels).
type Heatmap struct {
	Title    string
	RowNames []string
	ColNames []string
	// Cells is indexed [row][col].
	Cells [][]float64
}

// Validate checks the shape.
func (h *Heatmap) Validate() error {
	if len(h.Cells) != len(h.RowNames) {
		return fmt.Errorf("tablefmt: heatmap has %d rows, %d row names", len(h.Cells), len(h.RowNames))
	}
	for i, row := range h.Cells {
		if len(row) != len(h.ColNames) {
			return fmt.Errorf("tablefmt: heatmap row %d has %d cells, %d column names", i, len(row), len(h.ColNames))
		}
	}
	return nil
}

// Render writes the heatmap.
func (h *Heatmap) Render(w io.Writer) error {
	if err := h.Validate(); err != nil {
		return err
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, row := range h.Cells {
		for _, v := range row {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	}
	t := New(h.Title, append([]string{""}, h.ColNames...)...)
	for i, row := range h.Cells {
		cells := []string{h.RowNames[i]}
		for _, v := range row {
			cells = append(cells, fmt.Sprintf("%c %.2f", Shade(v, min, max), v))
		}
		t.AddRow(cells...)
	}
	return t.Render(w)
}

// BarChart renders one horizontal bar per label, scaled to maxWidth
// characters, with a reference line value (the paper's "normalized to
// SRAM" horizontal line) marked on each bar when it falls inside the bar's
// span.
type BarChart struct {
	Title    string
	Labels   []string
	Values   []float64
	RefValue float64 // 0 disables the reference mark
	MaxWidth int     // default 50
}

// Render writes the chart.
func (c *BarChart) Render(w io.Writer) error {
	if len(c.Labels) != len(c.Values) {
		return fmt.Errorf("tablefmt: bar chart has %d labels, %d values", len(c.Labels), len(c.Values))
	}
	width := c.MaxWidth
	if width <= 0 {
		width = 50
	}
	var max float64
	for _, v := range c.Values {
		if v > max {
			max = v
		}
	}
	if c.RefValue > max {
		max = c.RefValue
	}
	labelW := 0
	for _, l := range c.Labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for i, v := range c.Values {
		n := 0
		if max > 0 {
			n = int(v / max * float64(width))
		}
		if n < 0 {
			n = 0
		}
		bar := []rune(strings.Repeat("#", n) + strings.Repeat(" ", width-n))
		if c.RefValue > 0 && max > 0 {
			ri := int(c.RefValue / max * float64(width))
			if ri >= width {
				ri = width - 1
			}
			if ri >= 0 {
				bar[ri] = '|'
			}
		}
		fmt.Fprintf(&b, "%-*s %s %s\n", labelW, c.Labels[i], string(bar), FormatFloat(v))
	}
	_, err := io.WriteString(w, b.String())
	return err
}
