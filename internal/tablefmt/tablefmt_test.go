package tablefmt

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := New("Title", "name", "value")
	tab.AddRow("alpha", "1")
	tab.AddRowf("beta", 2.5)
	tab.AddRowf("gamma", uint64(7))
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Title", "name", "alpha", "2.500", "gamma", "7", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns aligned: every data line has the same prefix width for col 2.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, header, rule, 3 rows
		t.Errorf("line count = %d, want 6", len(lines))
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tab := New("", "a", "b", "c")
	tab.AddRow("only")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "only") {
		t.Error("short row lost")
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1.5:     "1.500",
		2e7:     "2e+07",
		0.00005: "5e-05",
	}
	for v, want := range cases {
		if got := FormatFloat(v); got != want {
			t.Errorf("FormatFloat(%g) = %q, want %q", v, got, want)
		}
	}
}

func TestShade(t *testing.T) {
	if Shade(0, 0, 1) != '·' {
		t.Error("min shade wrong")
	}
	if Shade(1, 0, 1) != '█' {
		t.Error("max shade wrong")
	}
	if Shade(5, 5, 5) != '·' {
		t.Error("degenerate range should be cold")
	}
	mid := Shade(0.5, 0, 1)
	if mid == '·' || mid == '█' {
		t.Errorf("mid shade = %c", mid)
	}
}

func TestHeatmapRender(t *testing.T) {
	h := &Heatmap{
		Title:    "corr",
		RowNames: []string{"energy", "speedup"},
		ColNames: []string{"H_wg", "w_uniq"},
		Cells:    [][]float64{{0.99, 0.90}, {0.10, 0.20}},
	}
	var buf bytes.Buffer
	if err := h.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"corr", "energy", "H_wg", "0.99", "█"} {
		if !strings.Contains(out, want) {
			t.Errorf("heatmap missing %q:\n%s", want, out)
		}
	}
}

func TestHeatmapValidation(t *testing.T) {
	h := &Heatmap{RowNames: []string{"a"}, ColNames: []string{"x"}, Cells: [][]float64{{1, 2}}}
	if err := h.Render(&bytes.Buffer{}); err == nil {
		t.Error("ragged heatmap accepted")
	}
	h2 := &Heatmap{RowNames: []string{"a", "b"}, ColNames: []string{"x"}, Cells: [][]float64{{1}}}
	if err := h2.Render(&bytes.Buffer{}); err == nil {
		t.Error("row-count mismatch accepted")
	}
}

func TestBarChartRender(t *testing.T) {
	c := &BarChart{
		Title:    "speedup",
		Labels:   []string{"Jan_S", "Zhang_R"},
		Values:   []float64{0.5, 1.0},
		RefValue: 1.0,
		MaxWidth: 20,
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Jan_S") || !strings.Contains(out, "#") || !strings.Contains(out, "|") {
		t.Errorf("bar chart malformed:\n%s", out)
	}
	// The larger value must have more # marks.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	janBars := strings.Count(lines[1], "#")
	zhangBars := strings.Count(lines[2], "#")
	if zhangBars <= janBars {
		t.Errorf("bar lengths wrong: %d vs %d", janBars, zhangBars)
	}
}

func TestBarChartValidation(t *testing.T) {
	c := &BarChart{Labels: []string{"a"}, Values: []float64{1, 2}}
	if err := c.Render(&bytes.Buffer{}); err == nil {
		t.Error("mismatched bar chart accepted")
	}
}

func TestBarChartZeroValues(t *testing.T) {
	c := &BarChart{Labels: []string{"a"}, Values: []float64{0}}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
}
