package nvsim

import (
	"fmt"
	"math"

	"nvmllc/internal/nvm"
)

// The analytical model below mirrors NVSim's structure: the data array is
// tiled into mats of matRows × matCols cells reached over an H-tree; an
// access decodes into one mat, drives a wordline, senses (read) or pulses
// write drivers (write), and returns over the H-tree. Calibration constants
// were fit against the paper's published Table III outputs; EXPERIMENTS.md
// quantifies the residual per-entry error. The paper's own figures are
// regenerated from the published models in internal/reference, so the
// calibration here only affects the Table III reproduction experiment.

const (
	// matRows/matCols: NVSim-style 512×512-cell subarray.
	matRows = 512
	matCols = 512
	// arrayEfficiency is the fraction of mat area occupied by cells.
	arrayEfficiency = 0.90
	// wireNSPerMM is the global H-tree wire delay in ns per mm.
	wireNSPerMM = 0.20
	// senseWindowNS is the read sense window used to integrate read power
	// into read energy for STTRAM/RRAM cells.
	senseWindowNS = 1.0
	// mlcSenseSteps is the sense-latency multiplier for 2-level cells
	// (multi-step sensing).
	mlcSenseSteps = 1.5
	// tsvAreaTax is the per-extra-layer footprint overhead of
	// through-silicon vias in 3D stacks.
	tsvAreaTax = 0.02
	// tsvHopNS is the vertical traversal delay per extra layer.
	tsvHopNS = 0.05
)

// class-dependent calibration constants.
type classCal struct {
	// periphF2PerCol is the peripheral (decoder, sense amp, write driver)
	// area per mat column, in F².
	periphF2PerCol float64
	// senseNS is the sense amplifier resolution time at 45 nm.
	senseNS float64
	// readPJPerBit is the data-array read energy per bit at 45 nm
	// (bitline charging + sensing, all ways read in parallel-access mode).
	readPJPerBit float64
	// writeDriverFactor scales the per-bit cell programming energy to
	// account for write-driver and charging overheads.
	writeDriverFactor float64
	// writeSetupNS is the write-path setup time (drivers, verify logic)
	// at 45 nm, added on top of the H-tree traversal and cell pulse.
	writeSetupNS float64
	// tagNJ is the tag-array dynamic energy per access for a 2MB cache.
	tagNJ float64
	// leakWPerMat is the peripheral leakage per mat at 45 nm.
	leakWPerMat float64
	// cellLeakWPerBit is the per-bit cell leakage (zero for NVMs).
	cellLeakWPerBit float64
}

var calibration = map[nvm.Class]classCal{
	nvm.SRAM: {
		periphF2PerCol: 15000, senseNS: 0.15, readPJPerBit: 1.08,
		writeDriverFactor: 1, writeSetupNS: 0.25, tagNJ: 0.011,
		leakWPerMat: 0, cellLeakWPerBit: 2.05e-7,
	},
	nvm.PCRAM: {
		periphF2PerCol: 5500, senseNS: 0.55, readPJPerBit: 0.75,
		writeDriverFactor: 12.0, writeSetupNS: 0.25, tagNJ: 0.031,
		leakWPerMat: 1.1e-3,
	},
	nvm.STTRAM: {
		periphF2PerCol: 7500, senseNS: 1.45, readPJPerBit: 0.24,
		writeDriverFactor: 3.4, writeSetupNS: 1.45, tagNJ: 0.084,
		leakWPerMat: 3.0e-3,
	},
	nvm.RRAM: {
		periphF2PerCol: 16000, senseNS: 1.15, readPJPerBit: 0.30,
		writeDriverFactor: 2.5, writeSetupNS: 0.85, tagNJ: 0.082,
		leakWPerMat: 2.6e-3,
	},
}

// Generate produces an LLC-level model from a completed cell and cache
// organization, the Table II → Table III step of the paper.
func Generate(cell *nvm.Cell, org Org) (*LLCModel, error) {
	if err := org.Validate(); err != nil {
		return nil, err
	}
	if missing := cell.MissingParams(); len(missing) > 0 {
		return nil, fmt.Errorf("nvsim: cell %s incomplete (missing %v); run nvm.Complete first", cell.Name, missing)
	}
	cal, ok := calibration[cell.Class]
	if !ok {
		return nil, fmt.Errorf("nvsim: no calibration for class %v", cell.Class)
	}
	s := cell.ProcessNM.Value
	if org.ProcessNM > 0 {
		s = org.ProcessNM
	}

	bits := float64(org.CapacityBytes) * 8
	cells := bits / cell.EffectiveBitsPerCell()
	mats := math.Max(1, math.Ceil(cells/(matRows*matCols)))

	// Area: cell array plus per-column peripherals, all in nm² then mm².
	// 3D stacking (DESTINY-style) divides the footprint across layers at
	// a small TSV area tax per extra layer.
	layers := float64(org.layers())
	cellAreaNM2 := cell.CellSizeF2.Value * s * s
	arrayNM2 := cells * cellAreaNM2 / arrayEfficiency
	periphNM2 := mats * matCols * cal.periphF2PerCol * s * s
	planarMM2 := (arrayNM2 + periphNM2) / 1e12
	areaMM2 := planarMM2 / layers * (1 + tsvAreaTax*(layers-1))

	// Timing. H-tree spans the (stacked) footprint once each way; mats add
	// decode, wordline, bitline and sensing delays that scale with the
	// node; TSV hops add a fixed delay per extra layer.
	tsvNS := tsvHopNS * (layers - 1)
	tHtree := wireNSPerMM*math.Sqrt(areaMM2) + tsvNS
	nodeScale := math.Pow(s/45.0, 0.8)
	sense := cal.senseNS
	if cell.CellLevels >= 2 {
		sense *= mlcSenseSteps
	}
	tMatRead := (0.45 + sense) * nodeScale
	readNS := 2*tHtree + tMatRead // equation (4)

	tagNS := (0.20 + 0.6*sense) * nodeScale * 0.9

	// Write latency: one H-tree traversal plus driver setup plus the cell
	// pulse (equation (5)). PCRAM reports set and reset separately; RRAM
	// crossbar writes are two-phase (RESET then SET); STTRAM and SRAM are
	// single-pulse.
	writeOverhead := tHtree + cal.writeSetupNS*nodeScale
	var setNS, resetNS float64
	switch cell.Class {
	case nvm.PCRAM:
		setNS = writeOverhead + cell.SetPulse()
		resetNS = writeOverhead + cell.ResetPulse()
	case nvm.RRAM:
		both := writeOverhead + cell.SetPulse() + cell.ResetPulse()
		setNS, resetNS = both, both
	case nvm.STTRAM:
		w := writeOverhead + cell.MaxWritePulse()
		setNS, resetNS = w, w
	case nvm.SRAM:
		w := 0.3*nodeScale + 0.2
		setNS, resetNS = w, w
	}

	// Energy, equations (6)-(8). Block transfers move BlockBytes×8 bits.
	blockBits := float64(org.BlockBytes) * 8
	capScale := math.Pow(float64(org.CapacityBytes)/float64(2<<20), 0.08)
	tagNJ := cal.tagNJ * capScale

	readScale := math.Pow(s/45.0, 0.5)
	if cell.Class == nvm.SRAM {
		readScale = 1
	}
	dataReadNJ := blockBits * cal.readPJPerBit * readScale / 1000

	var dataWriteNJ float64
	if cell.Class == nvm.SRAM {
		dataWriteNJ = blockBits * 1.03 / 1000
	} else {
		perBit, err := cell.BitWriteEnergyPJ()
		if err != nil {
			return nil, fmt.Errorf("nvsim: %s: %w", cell.Name, err)
		}
		dataWriteNJ = blockBits * perBit * cal.writeDriverFactor / 1000
	}

	hitNJ := tagNJ + dataReadNJ    // equation (6)
	missNJ := tagNJ                // equation (7)
	writeNJ := tagNJ + dataWriteNJ // equation (8)

	// Leakage: SRAM cells leak per bit; NVM cells do not, but mat
	// peripherals do, with worse leakage at smaller nodes.
	leakW := bits*cal.cellLeakWPerBit + mats*cal.leakWPerMat*math.Pow(45.0/s, 0.3)

	m := &LLCModel{
		Name:          cell.DisplayName(),
		Class:         cell.Class,
		CapacityBytes: org.CapacityBytes,
		AreaMM2:       areaMM2,
		TagLatencyNS:  tagNS,
		ReadLatencyNS: readNS,
		WriteSetNS:    setNS,
		WriteResetNS:  resetNS,
		HitEnergyNJ:   hitNJ,
		MissEnergyNJ:  missNJ,
		WriteEnergyNJ: writeNJ,
		LeakageW:      leakW,
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// FitCapacityToArea finds the largest power-of-two capacity whose modeled
// area does not exceed the budget, the paper's fixed-area configuration
// (budget 6.55 mm², the 2MB SRAM baseline). The search is bounded to
// [minCap, maxCap] = [256KB, 1GB].
func FitCapacityToArea(cell *nvm.Cell, org Org, areaBudgetMM2 float64) (*LLCModel, error) {
	if areaBudgetMM2 <= 0 {
		return nil, fmt.Errorf("nvsim: area budget %g must be positive", areaBudgetMM2)
	}
	const (
		minCap = int64(256) << 10
		maxCap = int64(1) << 30
	)
	var best *LLCModel
	for c := minCap; c <= maxCap; c <<= 1 {
		m, err := Generate(cell, org.WithCapacity(c))
		if err != nil {
			return nil, err
		}
		if m.AreaMM2 <= areaBudgetMM2 {
			best = m
		} else {
			break // area is monotone in capacity
		}
	}
	if best == nil {
		return nil, fmt.Errorf("nvsim: %s: even %d bytes exceeds area budget %g mm²", cell.Name, minCap, areaBudgetMM2)
	}
	return best, nil
}
