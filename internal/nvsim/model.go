// Package nvsim is a circuit-level cache model in the spirit of NVSim
// (Dong et al., TCAD 2012), the tool the paper uses to turn the cell-level
// NVM models of Table II into the LLC-level models of Table III.
//
// Given a completed nvm.Cell and a cache organization, Generate produces an
// LLCModel: area, tag/read/write latency, per-access dynamic energies and
// total leakage power. The model follows the paper's equations (4)-(8):
//
//	t_read  ≈ 2·t_Htree + t_read,mat            (4)
//	t_write ≈ 1·t_Htree + t_write,mat           (5)
//	E_hit   = E_tag + E_data-read               (6)
//	E_miss  = E_tag                             (7)
//	E_write = E_tag + E_data-write              (8)
//
// The analytical mat/H-tree formulation is calibrated against the paper's
// published Table III outputs (see internal/reference); EXPERIMENTS.md
// records the per-entry model error. FitCapacityToArea inverts the area
// model to find the largest power-of-two capacity that fits an area budget
// (the paper's fixed-area configuration).
package nvsim

import (
	"fmt"
	"math"

	"nvmllc/internal/nvm"
)

// LLCModel is one column of the paper's Table III: everything the
// full-system simulator needs to know about an LLC built from a given
// memory technology.
type LLCModel struct {
	// Name is the display name, e.g. "Zhang_R" or "SRAM".
	Name string
	// Class is the memory technology class.
	Class nvm.Class
	// CapacityBytes is the usable data capacity.
	CapacityBytes int64
	// AreaMM2 is the total cache area in mm².
	AreaMM2 float64
	// TagLatencyNS is the tag array access latency in ns.
	TagLatencyNS float64
	// ReadLatencyNS is the data read latency t_read in ns (equation (4)).
	ReadLatencyNS float64
	// WriteSetNS and WriteResetNS are the data write latencies in ns
	// (equation (5)). They differ only for PCRAM, matching Table III's
	// "set/ reset" rows; other classes carry the same value in both.
	WriteSetNS   float64
	WriteResetNS float64
	// HitEnergyNJ is E_dyn,hit in nJ (equation (6)).
	HitEnergyNJ float64
	// MissEnergyNJ is E_dyn,miss in nJ (equation (7)).
	MissEnergyNJ float64
	// WriteEnergyNJ is E_dyn,write in nJ (equation (8)).
	WriteEnergyNJ float64
	// LeakageW is the total cache leakage power in W.
	LeakageW float64
}

// WriteLatencyNS is the worst-case data write latency: max(set, reset).
// The full-system simulator uses it for LLC write occupancy.
func (m *LLCModel) WriteLatencyNS() float64 {
	return math.Max(m.WriteSetNS, m.WriteResetNS)
}

// CapacityMB returns the capacity in binary megabytes.
func (m *LLCModel) CapacityMB() float64 {
	return float64(m.CapacityBytes) / (1 << 20)
}

// Validate checks that the model is physically sensible.
func (m *LLCModel) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("nvsim: model has no name")
	}
	if m.CapacityBytes <= 0 {
		return fmt.Errorf("nvsim: %s: capacity %d must be positive", m.Name, m.CapacityBytes)
	}
	pos := map[string]float64{
		"area":         m.AreaMM2,
		"tag latency":  m.TagLatencyNS,
		"read latency": m.ReadLatencyNS,
		"write set":    m.WriteSetNS,
		"write reset":  m.WriteResetNS,
		"hit energy":   m.HitEnergyNJ,
		"miss energy":  m.MissEnergyNJ,
		"write energy": m.WriteEnergyNJ,
		"leakage":      m.LeakageW,
	}
	for what, v := range pos {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("nvsim: %s: %s = %g, want positive finite", m.Name, what, v)
		}
	}
	if m.MissEnergyNJ > m.HitEnergyNJ {
		return fmt.Errorf("nvsim: %s: miss energy %g exceeds hit energy %g (miss is tag-only)", m.Name, m.MissEnergyNJ, m.HitEnergyNJ)
	}
	return nil
}

// Org describes the cache organization to model.
type Org struct {
	// CapacityBytes is the data capacity. Must be a positive multiple of
	// BlockBytes*Ways.
	CapacityBytes int64
	// BlockBytes is the cache line size (the paper uses 64).
	BlockBytes int
	// Ways is the set associativity (the paper's LLC is 16-way).
	Ways int
	// ProcessNM optionally overrides the peripheral process node; when zero
	// the cell's own node is used. (The paper's SRAM baseline is 45 nm.)
	ProcessNM float64
	// Layers stacks the data array in 3D with through-silicon vias, as
	// modeled by DESTINY (Poremba et al., DATE 2015), which the paper
	// discusses as the 3D-capable NVM simulator. Zero or one means planar;
	// each doubling of layers roughly halves footprint at a small TSV
	// latency/energy cost. Maximum 8.
	Layers int
}

// GainestownLLC is the paper's LLC organization: 2MB shared, 64B blocks,
// 16-way set associative.
func GainestownLLC() Org {
	return Org{CapacityBytes: 2 << 20, BlockBytes: 64, Ways: 16}
}

// WithCapacity returns a copy of the organization with a different
// capacity.
func (o Org) WithCapacity(bytes int64) Org {
	o.CapacityBytes = bytes
	return o
}

// Validate checks the organization invariants.
func (o Org) Validate() error {
	if o.BlockBytes <= 0 || o.BlockBytes&(o.BlockBytes-1) != 0 {
		return fmt.Errorf("nvsim: block size %d must be a positive power of two", o.BlockBytes)
	}
	if o.Ways <= 0 {
		return fmt.Errorf("nvsim: ways %d must be positive", o.Ways)
	}
	if o.CapacityBytes <= 0 {
		return fmt.Errorf("nvsim: capacity %d must be positive", o.CapacityBytes)
	}
	setBytes := int64(o.BlockBytes) * int64(o.Ways)
	if o.CapacityBytes%setBytes != 0 {
		return fmt.Errorf("nvsim: capacity %d not a multiple of set size %d", o.CapacityBytes, setBytes)
	}
	if o.Layers < 0 || o.Layers > 8 {
		return fmt.Errorf("nvsim: layers %d outside [0,8]", o.Layers)
	}
	return nil
}

// layers returns the effective 3D layer count (≥ 1).
func (o Org) layers() int {
	if o.Layers < 1 {
		return 1
	}
	return o.Layers
}
