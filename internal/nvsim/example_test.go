package nvsim_test

import (
	"fmt"

	"nvmllc/internal/nvm"
	"nvmllc/internal/nvsim"
)

// ExampleGenerate turns a Table II cell into a Table III LLC model.
func ExampleGenerate() {
	model, err := nvsim.Generate(nvm.Zhang(), nvsim.GainestownLLC())
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %.0f MB, area %.2f mm², write %.0f ns\n",
		model.Name, model.CapacityMB(), model.AreaMM2, model.WriteLatencyNS())
	// Output:
	// Zhang_R: 2 MB, area 0.29 mm², write 301 ns
}

// ExampleFitCapacityToArea performs the paper's fixed-area inversion: the
// largest RRAM LLC fitting the 6.55 mm² SRAM budget.
func ExampleFitCapacityToArea() {
	model, err := nvsim.FitCapacityToArea(nvm.Zhang(), nvsim.GainestownLLC(), 6.55)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s fixed-area capacity: %.0f MB\n", model.Name, model.CapacityMB())
	// Output:
	// Zhang_R fixed-area capacity: 32 MB
}
