package nvsim

import (
	"testing"

	"nvmllc/internal/nvm"
)

func TestLayersValidation(t *testing.T) {
	org := GainestownLLC()
	org.Layers = -1
	if err := org.Validate(); err == nil {
		t.Error("negative layers accepted")
	}
	org.Layers = 9
	if err := org.Validate(); err == nil {
		t.Error("9 layers accepted")
	}
	org.Layers = 8
	if err := org.Validate(); err != nil {
		t.Errorf("8 layers rejected: %v", err)
	}
}

func TestStackingShrinksFootprint(t *testing.T) {
	planar, err := Generate(nvm.Jan(), GainestownLLC())
	if err != nil {
		t.Fatal(err)
	}
	org := GainestownLLC()
	org.Layers = 4
	stacked, err := Generate(nvm.Jan(), org)
	if err != nil {
		t.Fatal(err)
	}
	// 4 layers ≈ quarter footprint plus TSV tax.
	ratio := planar.AreaMM2 / stacked.AreaMM2
	if ratio < 3 || ratio > 4.1 {
		t.Errorf("4-layer footprint ratio = %.2f, want ≈3.8", ratio)
	}
}

func TestStackingLatencyTradeoff(t *testing.T) {
	// For a big planar cache (Jan at 2MB is 9+ mm²), stacking shortens the
	// H-tree more than the TSV hops cost, so reads get faster.
	planar, err := Generate(nvm.Jan(), GainestownLLC())
	if err != nil {
		t.Fatal(err)
	}
	org := GainestownLLC()
	org.Layers = 4
	stacked, err := Generate(nvm.Jan(), org)
	if err != nil {
		t.Fatal(err)
	}
	if stacked.ReadLatencyNS >= planar.ReadLatencyNS {
		t.Errorf("4-layer read %.3f ns not below planar %.3f ns", stacked.ReadLatencyNS, planar.ReadLatencyNS)
	}
	// For a tiny cache (Zhang 0.3 mm²) the TSV hops dominate: stacking
	// must not be free.
	pz, err := Generate(nvm.Zhang(), GainestownLLC())
	if err != nil {
		t.Fatal(err)
	}
	oz := GainestownLLC()
	oz.Layers = 8
	sz, err := Generate(nvm.Zhang(), oz)
	if err != nil {
		t.Fatal(err)
	}
	if sz.ReadLatencyNS <= pz.ReadLatencyNS-0.2 {
		t.Errorf("tiny-cache stacking too beneficial: %.3f vs %.3f", sz.ReadLatencyNS, pz.ReadLatencyNS)
	}
}

func TestStackingIncreasesFixedAreaCapacity(t *testing.T) {
	org := GainestownLLC()
	planar, err := FitCapacityToArea(nvm.Hayakawa(), org, 6.55)
	if err != nil {
		t.Fatal(err)
	}
	org.Layers = 4
	stacked, err := FitCapacityToArea(nvm.Hayakawa(), org, 6.55)
	if err != nil {
		t.Fatal(err)
	}
	if stacked.CapacityBytes < 2*planar.CapacityBytes {
		t.Errorf("4-layer fixed-area capacity %dMB not ≥ 2× planar %dMB",
			stacked.CapacityBytes>>20, planar.CapacityBytes>>20)
	}
}
