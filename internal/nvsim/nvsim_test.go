package nvsim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"nvmllc/internal/nvm"
)

// gainestownOrg returns the paper's LLC organization for the given cell,
// with the SRAM baseline pinned to 45nm.
func gainestownOrg(c *nvm.Cell) Org {
	org := GainestownLLC()
	if c.Class == nvm.SRAM {
		org.ProcessNM = 45
	}
	return org
}

func TestGenerateAllCorpusCells(t *testing.T) {
	for _, c := range nvm.CorpusWithSRAM() {
		m, err := Generate(c, gainestownOrg(c))
		if err != nil {
			t.Errorf("Generate(%s): %v", c.Name, err)
			continue
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
		if m.Name != c.DisplayName() {
			t.Errorf("model name %q, want %q", m.Name, c.DisplayName())
		}
	}
}

func TestGenerateRejectsIncompleteCell(t *testing.T) {
	c := &nvm.Cell{Name: "hollow", Class: nvm.STTRAM, CellLevels: 1, ProcessNM: nvm.Rep(45)}
	if _, err := Generate(c, GainestownLLC()); err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Errorf("Generate(incomplete) = %v, want incomplete error", err)
	}
}

func TestGenerateRejectsBadOrg(t *testing.T) {
	bad := []Org{
		{CapacityBytes: 0, BlockBytes: 64, Ways: 16},
		{CapacityBytes: 2 << 20, BlockBytes: 60, Ways: 16},
		{CapacityBytes: 2 << 20, BlockBytes: 64, Ways: 0},
		{CapacityBytes: 1000, BlockBytes: 64, Ways: 16},
	}
	for i, org := range bad {
		if _, err := Generate(nvm.Zhang(), org); err == nil {
			t.Errorf("case %d: Generate accepted invalid org %+v", i, org)
		}
	}
}

// relErr is the symmetric relative error between model and paper values.
func relErr(got, want float64) float64 {
	return math.Abs(got-want) / math.Max(math.Abs(got), math.Abs(want))
}

func TestGenerateApproximatesTableIII(t *testing.T) {
	// Published Table III fixed-capacity values. The analytical model is a
	// calibrated NVSim substitute, so tolerances are generous and two
	// known outliers are documented in EXPERIMENTS.md: Chen_P's area
	// (NVSim's organization choice for its tiny 10F² cell at 60nm differs
	// from our fixed mat layout) and Jan_S's leakage (a device
	// specifically engineered for low leakage, below our class model).
	cases := []struct {
		cell     *nvm.Cell
		area     float64
		writeMax float64
		eWrite   float64
		leak     float64
		areaTol  float64
		leakTol  float64
	}{
		{nvm.Oh(), 6.847, 181.206, 225.413, 0.062, 0.35, 0.45},
		{nvm.Kang(), 4.591, 301.018, 375.073, 0.061, 0.35, 0.45},
		{nvm.Close(), 2.855, 20.681, 51.116, 0.039, 0.35, 0.45},
		{nvm.Chung(), 1.452, 11.751, 1.332, 0.166, 0.35, 0.45},
		{nvm.Jan(), 9.171, 7.878, 2.305, 0.048, 0.35, 0.75},
		{nvm.Umeki(), 4.348, 11.916, 1.644, 0.295, 0.35, 0.45},
		{nvm.Xue(), 1.585, 4.038, 0.597, 0.115, 0.35, 0.45},
		{nvm.Hayakawa(), 0.915, 20.716, 0.952, 0.194, 0.35, 0.45},
		{nvm.Zhang(), 0.307, 300.834, 0.523, 0.151, 0.35, 0.45},
		{nvm.SRAMCell(), 6.548, 0.515, 0.537, 3.438, 0.10, 0.10},
	}
	for _, tc := range cases {
		m, err := Generate(tc.cell, gainestownOrg(tc.cell))
		if err != nil {
			t.Fatalf("Generate(%s): %v", tc.cell.Name, err)
		}
		if e := relErr(m.AreaMM2, tc.area); e > tc.areaTol {
			t.Errorf("%s area = %.3f, paper %.3f (err %.0f%% > %.0f%%)", m.Name, m.AreaMM2, tc.area, e*100, tc.areaTol*100)
		}
		// Write latency is pulse-dominated, so should track closely.
		if e := relErr(m.WriteLatencyNS(), tc.writeMax); e > 0.15 {
			t.Errorf("%s write latency = %.3f, paper %.3f (err %.0f%%)", m.Name, m.WriteLatencyNS(), tc.writeMax, e*100)
		}
		if e := relErr(m.WriteEnergyNJ, tc.eWrite); e > 0.35 {
			t.Errorf("%s write energy = %.3f, paper %.3f (err %.0f%%)", m.Name, m.WriteEnergyNJ, tc.eWrite, e*100)
		}
		if e := relErr(m.LeakageW, tc.leak); e > tc.leakTol {
			t.Errorf("%s leakage = %.3f, paper %.3f (err %.0f%%)", m.Name, m.LeakageW, tc.leak, e*100)
		}
	}
}

func TestPCRAMSetResetAsymmetry(t *testing.T) {
	m, err := Generate(nvm.Oh(), GainestownLLC())
	if err != nil {
		t.Fatal(err)
	}
	// Oh: 180ns set vs 10ns reset pulses must surface as asymmetric write
	// latencies (Table III reports 181.206/11.206).
	if m.WriteSetNS <= m.WriteResetNS {
		t.Errorf("Oh set %g should exceed reset %g", m.WriteSetNS, m.WriteResetNS)
	}
	if diff := m.WriteSetNS - m.WriteResetNS; math.Abs(diff-170) > 1 {
		t.Errorf("Oh set-reset gap = %g, want 170 (pulse difference)", diff)
	}
}

func TestRRAMTwoPhaseWrite(t *testing.T) {
	// Zhang: 150ns pulses but ~300ns write latency — RRAM writes are
	// two-phase (RESET then SET), as in Table III.
	m, err := Generate(nvm.Zhang(), GainestownLLC())
	if err != nil {
		t.Fatal(err)
	}
	if m.WriteLatencyNS() < 300 {
		t.Errorf("Zhang write latency = %g, want ≥ 300 (two-phase)", m.WriteLatencyNS())
	}
}

func TestAreaMonotoneInCapacity(t *testing.T) {
	for _, c := range []*nvm.Cell{nvm.Zhang(), nvm.Jan(), nvm.SRAMCell()} {
		prev := 0.0
		for capMB := int64(1); capMB <= 64; capMB *= 2 {
			m, err := Generate(c, gainestownOrg(c).WithCapacity(capMB<<20))
			if err != nil {
				t.Fatal(err)
			}
			if m.AreaMM2 <= prev {
				t.Errorf("%s: area not monotone at %dMB: %g ≤ %g", c.Name, capMB, m.AreaMM2, prev)
			}
			prev = m.AreaMM2
		}
	}
}

func TestLatencyGrowsWithCapacity(t *testing.T) {
	small, err := Generate(nvm.Zhang(), GainestownLLC().WithCapacity(2<<20))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Generate(nvm.Zhang(), GainestownLLC().WithCapacity(128<<20))
	if err != nil {
		t.Fatal(err)
	}
	if big.ReadLatencyNS <= small.ReadLatencyNS {
		t.Errorf("128MB read latency %g not above 2MB %g", big.ReadLatencyNS, small.ReadLatencyNS)
	}
	// Table III: Zhang 2MB reads in 2.16ns, 128MB in 9.54ns — the H-tree
	// should at least triple the latency.
	if big.ReadLatencyNS < 2*small.ReadLatencyNS {
		t.Errorf("H-tree scaling too weak: %g vs %g", big.ReadLatencyNS, small.ReadLatencyNS)
	}
}

func TestMLCDensityAdvantage(t *testing.T) {
	// Xue (2 levels, 63F²) must come out denser than a hypothetical
	// 1-level cell with the same footprint.
	slc := nvm.Xue()
	slc.CellLevels = 1
	mlc, err := Generate(nvm.Xue(), GainestownLLC())
	if err != nil {
		t.Fatal(err)
	}
	single, err := Generate(slc, GainestownLLC())
	if err != nil {
		t.Fatal(err)
	}
	if mlc.AreaMM2 >= single.AreaMM2 {
		t.Errorf("MLC area %g not below SLC area %g", mlc.AreaMM2, single.AreaMM2)
	}
}

func TestFitCapacityToArea(t *testing.T) {
	// The SRAM baseline must fit its own area at 2MB.
	sram, err := FitCapacityToArea(nvm.SRAMCell(), gainestownOrg(nvm.SRAMCell()), 6.55)
	if err != nil {
		t.Fatal(err)
	}
	if sram.CapacityBytes != 2<<20 {
		t.Errorf("SRAM fixed-area capacity = %d, want 2MB", sram.CapacityBytes)
	}
	// Dense RRAM must fit far more than SRAM in the same budget (Table
	// III: Zhang 128MB, Hayakawa 32MB).
	zhang, err := FitCapacityToArea(nvm.Zhang(), GainestownLLC(), 6.55)
	if err != nil {
		t.Fatal(err)
	}
	if zhang.CapacityBytes < 32<<20 {
		t.Errorf("Zhang fixed-area capacity = %dMB, want ≥ 32MB", zhang.CapacityBytes>>20)
	}
	if zhang.AreaMM2 > 6.55 {
		t.Errorf("fitted model area %g exceeds budget", zhang.AreaMM2)
	}
}

func TestFitCapacityToAreaErrors(t *testing.T) {
	if _, err := FitCapacityToArea(nvm.Zhang(), GainestownLLC(), -1); err == nil {
		t.Error("negative budget accepted")
	}
	if _, err := FitCapacityToArea(nvm.Jan(), GainestownLLC(), 0.001); err == nil {
		t.Error("impossible budget accepted")
	}
}

func TestFitCapacityRespectsBudgetProperty(t *testing.T) {
	f := func(budgetTenths uint8) bool {
		budget := 1.0 + float64(budgetTenths%100)/5 // 1.0 .. 20.8 mm²
		m, err := FitCapacityToArea(nvm.Hayakawa(), GainestownLLC(), budget)
		if err != nil {
			return true // tiny budgets may legitimately fail
		}
		if m.AreaMM2 > budget {
			return false
		}
		// Doubling capacity must exceed the budget (maximality).
		bigger, err := Generate(nvm.Hayakawa(), GainestownLLC().WithCapacity(m.CapacityBytes*2))
		if err != nil {
			return false
		}
		return bigger.AreaMM2 > budget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestModelValidateCatchesMissBelowHit(t *testing.T) {
	m := LLCModel{
		Name: "bad", CapacityBytes: 1 << 20, AreaMM2: 1,
		TagLatencyNS: 1, ReadLatencyNS: 1, WriteSetNS: 1, WriteResetNS: 1,
		HitEnergyNJ: 0.1, MissEnergyNJ: 0.5, WriteEnergyNJ: 1, LeakageW: 1,
	}
	if err := m.Validate(); err == nil {
		t.Error("Validate accepted miss energy above hit energy")
	}
}

func TestCapacityMB(t *testing.T) {
	m := LLCModel{CapacityBytes: 3 << 20}
	if m.CapacityMB() != 3 {
		t.Errorf("CapacityMB = %g, want 3", m.CapacityMB())
	}
}

func TestEnergyEquationsConsistency(t *testing.T) {
	// Equations (6)-(8): E_miss = E_tag, and hit/write = tag + data parts,
	// so E_hit > E_miss and E_write > E_miss for every technology.
	for _, c := range nvm.CorpusWithSRAM() {
		m, err := Generate(c, gainestownOrg(c))
		if err != nil {
			t.Fatal(err)
		}
		if m.HitEnergyNJ <= m.MissEnergyNJ {
			t.Errorf("%s: E_hit %g ≤ E_miss %g", m.Name, m.HitEnergyNJ, m.MissEnergyNJ)
		}
		if m.WriteEnergyNJ <= m.MissEnergyNJ {
			t.Errorf("%s: E_write %g ≤ E_miss %g", m.Name, m.WriteEnergyNJ, m.MissEnergyNJ)
		}
	}
}

func TestWriteEnergyAsymmetryAcrossClasses(t *testing.T) {
	// STTRAM writes cost several× reads (paper: order of magnitude at the
	// cell level); PCRAM writes are catastrophically expensive.
	chung, err := Generate(nvm.Chung(), GainestownLLC())
	if err != nil {
		t.Fatal(err)
	}
	if chung.WriteEnergyNJ < 2*chung.HitEnergyNJ {
		t.Errorf("Chung write %g not ≫ hit %g", chung.WriteEnergyNJ, chung.HitEnergyNJ)
	}
	kang, err := Generate(nvm.Kang(), GainestownLLC())
	if err != nil {
		t.Fatal(err)
	}
	if kang.WriteEnergyNJ < 100*kang.HitEnergyNJ {
		t.Errorf("Kang write %g not two orders above hit %g", kang.WriteEnergyNJ, kang.HitEnergyNJ)
	}
}
