package telemetry

import (
	"context"
	"fmt"
	"testing"
)

func TestSpanParentAndAttrs(t *testing.T) {
	r := New()
	parent := r.StartSpan("figure", nil)
	parent.SetAttr("title", "Figure 1a")
	child := r.StartSpan("simulate", parent)
	child.SetAttr("workload", "cg")
	child.SetAttr("llc", "Jan_S")
	child.End()
	parent.End()

	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Child ended first, so it is oldest.
	c, p := spans[0], spans[1]
	if c.Name != "simulate" || p.Name != "figure" {
		t.Fatalf("span order = %s, %s", c.Name, p.Name)
	}
	if c.Parent != p.ID {
		t.Errorf("child parent = %d, want %d", c.Parent, p.ID)
	}
	if len(c.Attrs) != 2 || c.Attrs[0] != (Attr{"workload", "cg"}) {
		t.Errorf("child attrs = %v", c.Attrs)
	}
	if c.DurationNS < 0 {
		t.Errorf("negative duration %d", c.DurationNS)
	}
}

func TestSpanDoubleEnd(t *testing.T) {
	r := New()
	s := r.StartSpan("once", nil)
	s.End()
	s.End()
	if got := r.Snapshot().SpansTotal; got != 1 {
		t.Errorf("spans recorded = %d, want 1", got)
	}
}

func TestSpanRingEviction(t *testing.T) {
	r := New()
	n := spanRingCap + 10
	for i := 0; i < n; i++ {
		s := r.StartSpan(fmt.Sprintf("s%d", i), nil)
		s.End()
	}
	spans := r.Spans()
	if len(spans) != spanRingCap {
		t.Fatalf("kept %d spans, want %d", len(spans), spanRingCap)
	}
	if got := r.Snapshot().SpansTotal; got != uint64(n) {
		t.Errorf("SpansTotal = %d, want %d", got, n)
	}
	// Oldest retained span is the 11th started; newest is the last.
	if spans[0].Name != "s10" || spans[len(spans)-1].Name != fmt.Sprintf("s%d", n-1) {
		t.Errorf("ring window = %s..%s", spans[0].Name, spans[len(spans)-1].Name)
	}
}

func TestSpanDurationHistogram(t *testing.T) {
	r := New()
	r.StartSpan("phase", nil).End()
	r.StartSpan("phase", nil).End()
	h := r.Histogram("span_duration_ns", "span", "phase")
	if got := h.Snapshot().Count; got != 2 {
		t.Errorf("span duration histogram count = %d, want 2", got)
	}
}

func TestSpanContext(t *testing.T) {
	r := New()
	s := r.StartSpan("root", nil)
	ctx := ContextWithSpan(context.Background(), s)
	if got := SpanFromContext(ctx); got != s {
		t.Errorf("SpanFromContext = %v, want %v", got, s)
	}
	if got := SpanFromContext(context.Background()); got != nil {
		t.Errorf("empty context span = %v", got)
	}
	// A nil span leaves the context untouched.
	if ctx2 := ContextWithSpan(ctx, nil); SpanFromContext(ctx2) != s {
		t.Error("nil span replaced the context span")
	}
}
