package telemetry

import (
	"context"
	"sync"
	"time"
)

// Attr is one span attribute.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one in-flight traced operation. Spans are created with
// Registry.StartSpan, annotated with SetAttr, and recorded into the
// registry's bounded span log by End. All methods are safe on a nil
// receiver, so code instrumented against a nil registry pays no cost.
type Span struct {
	reg    *Registry
	name   string
	id     uint64
	parent uint64
	start  time.Time

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// SpanRecord is one completed span as kept by the registry and encoded
// in JSON snapshots.
type SpanRecord struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name"`
	Attrs  []Attr `json:"attrs,omitempty"`
	// StartUnixNano is the wall-clock start; DurationNS the elapsed time.
	StartUnixNano int64 `json:"start_unix_nano"`
	DurationNS    int64 `json:"duration_ns"`
}

// StartSpan begins a span, optionally linked to a parent. Safe on a nil
// receiver (returns a nil, no-op span).
func (r *Registry) StartSpan(name string, parent *Span) *Span {
	if r == nil {
		return nil
	}
	s := &Span{
		reg:   r,
		name:  name,
		id:    r.spanSeq.Add(1),
		start: time.Now(),
	}
	if parent != nil {
		s.parent = parent.id
	}
	return s
}

// ID returns the span's registry-unique id (0 on a nil receiver).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Name returns the span name ("" on a nil receiver).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SetAttr attaches a key/value attribute. Safe on a nil receiver and
// after End (late attributes are dropped).
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	}
	s.mu.Unlock()
}

// End completes the span: the record enters the registry's span log and
// the span's duration feeds the span_duration_ns{span=name} histogram.
// Subsequent End calls are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()

	dur := time.Since(s.start)
	s.reg.recordSpan(SpanRecord{
		ID:            s.id,
		Parent:        s.parent,
		Name:          s.name,
		Attrs:         attrs,
		StartUnixNano: s.start.UnixNano(),
		DurationNS:    dur.Nanoseconds(),
	})
	s.reg.Histogram("span_duration_ns", "span", s.name).Observe(float64(dur.Nanoseconds()))
}

// recordSpan appends to the bounded ring, evicting the oldest record
// once spanRingCap is reached.
func (r *Registry) recordSpan(rec SpanRecord) {
	r.spansTotal.Add(1)
	r.spanMu.Lock()
	if len(r.spanRing) < spanRingCap {
		r.spanRing = append(r.spanRing, rec)
	} else {
		r.spanRing[r.spanNext] = rec
		r.spanNext = (r.spanNext + 1) % spanRingCap
		r.spanFull = true
	}
	r.spanMu.Unlock()
}

// Spans returns the retained completed spans, oldest first. Safe on a
// nil receiver.
func (r *Registry) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	r.spanMu.Lock()
	defer r.spanMu.Unlock()
	if !r.spanFull {
		return append([]SpanRecord(nil), r.spanRing...)
	}
	out := make([]SpanRecord, 0, len(r.spanRing))
	out = append(out, r.spanRing[r.spanNext:]...)
	out = append(out, r.spanRing[:r.spanNext]...)
	return out
}

// spanCtxKey keys the active span in a context.
type spanCtxKey struct{}

// ContextWithSpan returns a context carrying the span, so callees can
// parent their own spans to it (e.g. the engine's per-design-point
// spans under a sweep's figure span).
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the context's active span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}
