package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// ManifestLevel is one cache level's statistics in a manifest event.
type ManifestLevel struct {
	Hits       uint64  `json:"hits"`
	Misses     uint64  `json:"misses"`
	HitRate    float64 `json:"hit_rate"`
	Writebacks uint64  `json:"writebacks,omitempty"`
	Fills      uint64  `json:"fills,omitempty"`
	Writes     uint64  `json:"writes,omitempty"`
}

// ManifestDRAM summarizes main-memory traffic and queue latency for one
// design point.
type ManifestDRAM struct {
	Reads     uint64  `json:"reads"`
	Writes    uint64  `json:"writes"`
	AvgWaitNS float64 `json:"avg_wait_ns"`
	// WaitP50NS/P90NS/P99NS/MaxNS summarize the per-request queueing
	// delay distribution.
	WaitP50NS float64 `json:"wait_p50_ns"`
	WaitP90NS float64 `json:"wait_p90_ns"`
	WaitP99NS float64 `json:"wait_p99_ns"`
	WaitMaxNS float64 `json:"wait_max_ns"`
}

// ManifestEvent is one line of a JSONL run manifest. Event is
// "run_start", "design_point" or "run_end"; unused fields are omitted.
// Wall-clock fields (UnixMS, WallNS) are the only non-deterministic
// parts of a fixed-seed run.
type ManifestEvent struct {
	Event   string `json:"event"`
	Tool    string `json:"tool,omitempty"`
	Version string `json:"version,omitempty"`
	UnixMS  int64  `json:"unix_ms,omitempty"`

	// Design-point identity: workload, LLC model and the engine's
	// deterministic config key ("" for uncacheable jobs).
	Workload string `json:"workload,omitempty"`
	LLC      string `json:"llc,omitempty"`
	Key      string `json:"key,omitempty"`
	Cached   bool   `json:"cached,omitempty"`
	Error    string `json:"error,omitempty"`

	// WallNS is host wall-clock simulation time; TimeNS simulated time.
	WallNS        int64   `json:"wall_ns,omitempty"`
	Cores         int     `json:"cores,omitempty"`
	TimeNS        float64 `json:"time_ns,omitempty"`
	Instructions  uint64  `json:"instructions,omitempty"`
	MPKI          float64 `json:"mpki,omitempty"`
	WriteFraction float64 `json:"write_fraction,omitempty"`
	LLCEnergyJ    float64 `json:"llc_energy_j,omitempty"`

	Levels map[string]ManifestLevel `json:"levels,omitempty"`
	DRAM   *ManifestDRAM            `json:"dram,omitempty"`

	// Timeline carries the design point's epoch-sampled series when the
	// run was configured with time-resolved sampling.
	Timeline *TimelineSnapshot `json:"timeline,omitempty"`

	// Jobs is the design-point event count (run_end only).
	Jobs int `json:"jobs,omitempty"`

	// Engine is the final engine counter snapshot (run_end only, when
	// the tool registered its engine): how many design points simulated
	// vs cached, and how much work the estimator fast path absorbed
	// (profiling passes and profile-cache hits).
	Engine *ManifestEngine `json:"engine,omitempty"`
}

// ManifestEngine mirrors engine.Stats for the run_end manifest event
// (declared here because telemetry sits below engine in the import
// graph).
type ManifestEngine struct {
	Simulated   uint64 `json:"simulated"`
	Upgraded    uint64 `json:"upgraded,omitempty"`
	Cached      uint64 `json:"cached"`
	Failed      uint64 `json:"failed,omitempty"`
	TraceGens   uint64 `json:"trace_gens,omitempty"`
	TraceShared uint64 `json:"trace_shared,omitempty"`
	Profiles    uint64 `json:"profiles,omitempty"`
	ProfileHits uint64 `json:"profile_hits,omitempty"`
}

// ManifestWriter emits JSONL manifest events. It is safe for concurrent
// use (engine progress callbacks run on worker goroutines) and safe on
// a nil receiver, so callers can thread an optional writer without nil
// checks.
type ManifestWriter struct {
	mu     sync.Mutex
	w      io.Writer
	closer io.Closer
	events int
	err    error
}

// NewManifestWriter wraps an io.Writer.
func NewManifestWriter(w io.Writer) *ManifestWriter {
	return &ManifestWriter{w: w}
}

// CreateManifest creates (truncating) the file at path and returns a
// writer that closes it on Close.
func CreateManifest(path string) (*ManifestWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: create manifest: %w", err)
	}
	return &ManifestWriter{w: f, closer: f}, nil
}

// Write appends one event line. The first error is sticky: once a write
// fails, subsequent writes return the same error without writing. Safe
// on a nil receiver (no-op).
func (m *ManifestWriter) Write(ev ManifestEvent) error {
	if m == nil {
		return nil
	}
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return m.err
	}
	if _, err := m.w.Write(append(data, '\n')); err != nil {
		m.err = err
		return err
	}
	if ev.Event == "design_point" {
		m.events++
	}
	return nil
}

// Events returns the number of design_point events written.
func (m *ManifestWriter) Events() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.events
}

// Close releases the underlying file (when CreateManifest opened one)
// and reports any sticky write error. Safe on a nil receiver.
func (m *ManifestWriter) Close() error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	err := m.err
	closer := m.closer
	m.closer = nil
	m.mu.Unlock()
	if closer != nil {
		if cerr := closer.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
