package telemetry

// Heatmap is the spatial counterpart of Timeline: a dense rows×columns
// grid of float64 quantities, built for per-set cache views (one row
// per set, one column per quantity — writes, accesses). It is a plain
// data container, not a concurrent instrument: a single simulation
// builds it and hands the finished grid out through its Result.

import (
	"fmt"
	"io"
)

// Heatmap is a dense row-major 2-D grid. Exported fields make it
// JSON-encodable as-is; methods are safe on a nil receiver.
type Heatmap struct {
	// Axis labels the row dimension (e.g. "set").
	Axis string `json:"axis,omitempty"`
	// Cols labels the quantities, one per column.
	Cols []string `json:"cols"`
	// Rows is the row count; Data is row-major, len Rows×len(Cols).
	Rows int       `json:"rows"`
	Data []float64 `json:"data"`
}

// NewHeatmap builds a zeroed rows×len(cols) grid.
func NewHeatmap(rows int, axis string, cols ...string) *Heatmap {
	if rows < 0 {
		rows = 0
	}
	return &Heatmap{
		Axis: axis,
		Cols: cols,
		Rows: rows,
		Data: make([]float64, rows*len(cols)),
	}
}

// At returns the cell value (0 when out of range or nil).
func (h *Heatmap) At(row, col int) float64 {
	if h == nil || row < 0 || row >= h.Rows || col < 0 || col >= len(h.Cols) {
		return 0
	}
	return h.Data[row*len(h.Cols)+col]
}

// Add accumulates into a cell; out-of-range indices are dropped.
func (h *Heatmap) Add(row, col int, v float64) {
	if h == nil || row < 0 || row >= h.Rows || col < 0 || col >= len(h.Cols) {
		return
	}
	h.Data[row*len(h.Cols)+col] += v
}

// Set overwrites a cell; out-of-range indices are dropped.
func (h *Heatmap) Set(row, col int, v float64) {
	if h == nil || row < 0 || row >= h.Rows || col < 0 || col >= len(h.Cols) {
		return
	}
	h.Data[row*len(h.Cols)+col] = v
}

// ColSum totals one column over every row.
func (h *Heatmap) ColSum(col int) float64 {
	if h == nil || col < 0 || col >= len(h.Cols) {
		return 0
	}
	var total float64
	for r := 0; r < h.Rows; r++ {
		total += h.Data[r*len(h.Cols)+col]
	}
	return total
}

// Downsample sums row bands into at most maxRows rows (column sums are
// preserved exactly), for rendering a 8192-set grid as a handful of
// bands. The receiver is returned unchanged when already small enough.
func (h *Heatmap) Downsample(maxRows int) *Heatmap {
	if h == nil || maxRows < 1 || h.Rows <= maxRows {
		return h
	}
	out := NewHeatmap(maxRows, h.Axis, h.Cols...)
	for r := 0; r < h.Rows; r++ {
		band := r * maxRows / h.Rows
		for c := range h.Cols {
			out.Add(band, c, h.At(r, c))
		}
	}
	return out
}

// WriteCSV writes the grid as CSV: axis + column names, one row per row
// index. Nil-safe (writes only the header's newline-less empty form).
func (h *Heatmap) WriteCSV(w io.Writer) error {
	if h == nil {
		return nil
	}
	header := h.Axis
	for _, c := range h.Cols {
		header += "," + c
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for r := 0; r < h.Rows; r++ {
		if _, err := fmt.Fprintf(w, "%d", r); err != nil {
			return err
		}
		for c := range h.Cols {
			if _, err := fmt.Fprintf(w, ",%g", h.At(r, c)); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}
