package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("engine_jobs_total", "kind", "simulated").Add(12)
	r.Counter("engine_jobs_total", "kind", "cached").Add(3)
	r.Gauge("parallelism").Set(8)
	h := r.Histogram("job_wall_ns")
	for _, v := range []float64{10, 1000, 1e6} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Errorf("exposition invalid: %v\n%s", err, out)
	}

	for _, want := range []string{
		"# TYPE engine_jobs_total counter",
		`engine_jobs_total{kind="simulated"} 12`,
		`engine_jobs_total{kind="cached"} 3`,
		"# TYPE parallelism gauge",
		"# TYPE job_wall_ns histogram",
		`job_wall_ns_bucket{le="+Inf"} 3`,
		"job_wall_ns_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// One # TYPE header per family, not per labeled series.
	if got := strings.Count(out, "# TYPE engine_jobs_total"); got != 1 {
		t.Errorf("TYPE header count = %d, want 1", got)
	}
}

func TestPromNameSanitized(t *testing.T) {
	r := New()
	r.Counter("weird-name.total", "bad key", "v").Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("exposition invalid: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "weird_name_total") {
		t.Errorf("name not sanitized:\n%s", buf.String())
	}
}

func TestValidateExpositionCatchesGarbage(t *testing.T) {
	bad := "garbage line without value\n"
	if err := ValidateExposition(strings.NewReader(bad)); err == nil {
		t.Error("validator accepted garbage")
	}
	missingType := "orphan_metric 1\n"
	if err := ValidateExposition(strings.NewReader(missingType)); err == nil {
		t.Error("validator accepted sample without TYPE header")
	}
}

func TestWriteJSON(t *testing.T) {
	r := New()
	r.Counter("a_total").Add(5)
	r.Histogram("h").Observe(2)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("JSON snapshot does not round-trip: %v", err)
	}
	if snap.Counters["a_total"] != 5 || snap.Histograms["h"].Count != 1 {
		t.Errorf("round-tripped snapshot = %+v", snap)
	}
}
