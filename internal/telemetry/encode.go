package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WritePrometheus writes every registered instrument in the Prometheus
// text exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as cumulative _bucket/_sum/_count series with an
// le="+Inf" terminal bucket. Entries sharing a metric name emit one
// # TYPE header. Safe on a nil receiver (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	lastName := ""
	for _, e := range r.sortedEntries() {
		name := promName(e.name)
		if name != lastName {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, promType(e.kind)); err != nil {
				return err
			}
			lastName = name
		}
		var err error
		switch e.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s%s %d\n", name, promLabels(e.labels, "", ""), e.ctr.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s%s %g\n", name, promLabels(e.labels, "", ""), e.gauge.Value())
		case kindHistogram:
			err = writePromHistogram(w, name, e.labels, e.hist.Snapshot())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram emits the cumulative bucket series for one
// histogram.
func writePromHistogram(w io.Writer, name string, labels []string, s HistogramSnapshot) error {
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		le := "+Inf"
		if i < len(s.Bounds) {
			le = fmt.Sprintf("%g", s.Bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(labels, "le", le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", name, promLabels(labels, "", ""), s.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(labels, "", ""), s.Count)
	return err
}

// promType maps a metric kind to its exposition type.
func promType(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// promName sanitizes a metric name to [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if ok {
			b.WriteRune(c)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promLabels renders a label set, appending one extra pair (for
// histogram le) when extraKey is non-empty.
func promLabels(labels []string, extraKey, extraVal string) string {
	if len(labels) < 2 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	n := 0
	for i := 0; i+1 < len(labels); i += 2 {
		if n > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s=%q`, promName(labels[i]), escapeLabel(labels[i+1]))
		n++
	}
	if extraKey != "" {
		if n > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s=%q`, extraKey, escapeLabel(extraVal))
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel handles the exposition-format label escapes beyond what
// %q provides (it already covers backslash, quote and newline).
func escapeLabel(v string) string { return v }

// WriteJSON writes the registry snapshot as indented JSON (the
// /metrics.json debug endpoint). Safe on a nil receiver.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
