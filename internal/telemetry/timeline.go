package telemetry

// Timeline is the time-resolved counterpart of the registry's scalar
// instruments: a bounded, concurrency-safe series of epoch samples. The
// producer appends one point per epoch (an epoch is whatever the caller
// samples on — retired instructions, wall-clock milliseconds); when the
// point budget fills, adjacent epochs are merged pairwise, halving the
// resolution while keeping memory O(budget) regardless of run length.
// The merge is deterministic — no randomness, no clock — so two
// identical runs produce byte-identical timelines, which the system
// simulator's determinism tests pin across schedulers, layouts and the
// streaming path.

import (
	"fmt"
	"io"
	"math"
	"sync"
)

// FieldKind selects how a field behaves when two epochs merge.
type FieldKind uint8

const (
	// FieldDelta is a per-epoch increment (events in the epoch): merging
	// two epochs sums the values, so the series total is exact at every
	// resolution.
	FieldDelta FieldKind = iota
	// FieldLevel is an instantaneous level sampled at the epoch's end
	// (e.g. surviving capacity): merging keeps the later value.
	FieldLevel
)

// TimelineField names one series of a timeline.
type TimelineField struct {
	Name string    `json:"name"`
	Kind FieldKind `json:"kind"`
}

// DeltaField declares a per-epoch increment series.
func DeltaField(name string) TimelineField { return TimelineField{Name: name, Kind: FieldDelta} }

// LevelField declares an instantaneous-level series.
func LevelField(name string) TimelineField { return TimelineField{Name: name, Kind: FieldLevel} }

// Timeline accumulates epoch samples under a fixed point budget.
// Construct with NewTimeline; methods are safe for concurrent use and
// safe on a nil receiver.
type Timeline struct {
	mu      sync.Mutex
	axis    string
	fields  []TimelineField
	budget  int
	end     []uint64  // epoch-end axis values, strictly increasing
	vals    []float64 // point-major: vals[i*len(fields)+f]
	n       int
	merges  int
	dropped uint64
}

// NewTimeline builds a timeline with the given point budget (minimum 2),
// axis label and fields.
func NewTimeline(budget int, axis string, fields ...TimelineField) *Timeline {
	if budget < 2 {
		budget = 2
	}
	return &Timeline{
		axis:   axis,
		fields: fields,
		budget: budget,
		end:    make([]uint64, 0, budget),
		vals:   make([]float64, 0, budget*len(fields)),
	}
}

// Append records one epoch ending at x with one value per field. Points
// must arrive in strictly increasing x order; an out-of-order or
// short/long values slice is dropped (counted, surfaced in the
// snapshot) rather than corrupting the series. Safe for concurrent use.
func (t *Timeline) Append(x uint64, values ...float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(values) != len(t.fields) || (t.n > 0 && x <= t.end[t.n-1]) {
		t.dropped++
		return
	}
	if t.n == t.budget {
		t.compact()
	}
	t.end = append(t.end, x)
	t.vals = append(t.vals, values...)
	t.n++
}

// compact merges adjacent epoch pairs in place: deltas sum, levels keep
// the later sample, the merged epoch ends where the later one did. An
// odd trailing epoch survives unmerged. Called with the lock held.
func (t *Timeline) compact() {
	nf := len(t.fields)
	out := 0
	for i := 0; i < t.n; i += 2 {
		if i+1 == t.n {
			t.end[out] = t.end[i]
			copy(t.vals[out*nf:(out+1)*nf], t.vals[i*nf:(i+1)*nf])
			out++
			break
		}
		t.end[out] = t.end[i+1]
		a, b := t.vals[i*nf:(i+1)*nf], t.vals[(i+1)*nf:(i+2)*nf]
		dst := t.vals[out*nf : (out+1)*nf]
		for f, fd := range t.fields {
			if fd.Kind == FieldDelta {
				dst[f] = a[f] + b[f]
			} else {
				dst[f] = b[f]
			}
		}
		out++
	}
	t.n = out
	t.end = t.end[:out]
	t.vals = t.vals[:out*nf]
	t.merges++
}

// Snapshot copies the timeline into an immutable, JSON-encodable form.
// Safe on a nil receiver (returns the zero snapshot).
func (t *Timeline) Snapshot() TimelineSnapshot {
	if t == nil {
		return TimelineSnapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TimelineSnapshot{
		Axis:        t.axis,
		Fields:      append([]TimelineField(nil), t.fields...),
		X:           append([]uint64(nil), t.end...),
		Compactions: t.merges,
		Dropped:     t.dropped,
	}
	// One backing array for all series keeps a snapshot O(fields)
	// allocations — the streaming allocation gate counts on it.
	backing := make([]float64, t.n*len(t.fields))
	s.Series = make([][]float64, len(t.fields))
	for f := range t.fields {
		col := backing[f*t.n : (f+1)*t.n]
		for i := 0; i < t.n; i++ {
			col[i] = t.vals[i*len(t.fields)+f]
		}
		s.Series[f] = col
	}
	return s
}

// TimelineSnapshot is an immutable copy of a Timeline, series-major:
// Series[f][i] is field f's value in the epoch ending at X[i].
type TimelineSnapshot struct {
	Axis   string          `json:"axis"`
	Fields []TimelineField `json:"fields"`
	X      []uint64        `json:"x"`
	Series [][]float64     `json:"series"`
	// Compactions counts pair-merge rounds (0 = native epoch resolution);
	// Dropped counts malformed or out-of-order appends.
	Compactions int    `json:"compactions,omitempty"`
	Dropped     uint64 `json:"dropped,omitempty"`
}

// Len is the number of retained epochs.
func (s TimelineSnapshot) Len() int { return len(s.X) }

// Series returns the named field's per-epoch values (nil if absent).
func (s TimelineSnapshot) SeriesOf(name string) []float64 {
	for f, fd := range s.Fields {
		if fd.Name == name {
			return s.Series[f]
		}
	}
	return nil
}

// Sum totals the named series over every epoch. For a FieldDelta series
// this is exact at any compaction level — pair-merging sums deltas — so
// e.g. per-epoch LLC write counts always sum to the run total.
func (s TimelineSnapshot) Sum(name string) float64 {
	var total float64
	for _, v := range s.SeriesOf(name) {
		total += v
	}
	return total
}

// widths returns each epoch's axis extent (the first epoch starts at 0).
func (s TimelineSnapshot) widths() []float64 {
	w := make([]float64, len(s.X))
	prev := uint64(0)
	for i, x := range s.X {
		w[i] = float64(x - prev)
		prev = x
	}
	return w
}

// rates returns the named series normalized per axis unit — robust to
// the unequal epoch widths compaction produces. Nil if absent.
func (s TimelineSnapshot) rates(name string) []float64 {
	series := s.SeriesOf(name)
	if series == nil {
		return nil
	}
	widths := s.widths()
	out := make([]float64, len(series))
	for i, v := range series {
		if widths[i] > 0 {
			out[i] = v / widths[i]
		}
	}
	return out
}

// RateCoV is the coefficient of variation (σ/µ) of the named series'
// per-axis-unit rate across epochs: 0 for perfectly steady behavior,
// large for bursty phases. Returns 0 for missing/empty/zero-mean series.
func (s TimelineSnapshot) RateCoV(name string) float64 {
	rates := s.rates(name)
	if len(rates) == 0 {
		return 0
	}
	var mean float64
	for _, r := range rates {
		mean += r
	}
	mean /= float64(len(rates))
	if mean == 0 {
		return 0
	}
	var varsum float64
	for _, r := range rates {
		d := r - mean
		varsum += d * d
	}
	return math.Sqrt(varsum/float64(len(rates))) / mean
}

// RatePeakToMean is the peak epoch rate over the mean rate for the named
// series (≥ 1 for any non-degenerate series; 0 when missing or all-zero).
func (s TimelineSnapshot) RatePeakToMean(name string) float64 {
	rates := s.rates(name)
	if len(rates) == 0 {
		return 0
	}
	var mean, peak float64
	for _, r := range rates {
		mean += r
		if r > peak {
			peak = r
		}
	}
	mean /= float64(len(rates))
	if mean == 0 {
		return 0
	}
	return peak / mean
}

// Downsample returns a copy merged down to at most maxPoints epochs
// using the same pair-merge rule as the live compaction. Renderers use
// it to fit a long timeline into a terminal table.
func (s TimelineSnapshot) Downsample(maxPoints int) TimelineSnapshot {
	if maxPoints < 1 {
		maxPoints = 1
	}
	if s.Len() <= maxPoints {
		return s
	}
	t := NewTimeline(maxPoints, s.Axis, s.Fields...)
	buf := make([]float64, len(s.Fields))
	for i, x := range s.X {
		for f := range s.Fields {
			buf[f] = s.Series[f][i]
		}
		t.Append(x, buf...)
	}
	out := t.Snapshot()
	out.Compactions += s.Compactions
	out.Dropped = s.Dropped
	return out
}

// WriteCSV writes the timeline as CSV: a header of the axis name and
// field names, then one row per epoch.
func (s TimelineSnapshot) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprint(w, csvHeader(s.Axis, s.Fields)); err != nil {
		return err
	}
	for i, x := range s.X {
		if _, err := fmt.Fprintf(w, "%d", x); err != nil {
			return err
		}
		for f := range s.Fields {
			if _, err := fmt.Fprintf(w, ",%g", s.Series[f][i]); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

func csvHeader(axis string, fields []TimelineField) string {
	out := axis
	for _, f := range fields {
		out += "," + f.Name
	}
	return out + "\n"
}
