package telemetry

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Scale describes a log-scale bucket layout: bucket i covers
// (Min·Factor^(i-1), Min·Factor^i], with bucket 0 absorbing everything
// ≤ Min and one extra overflow bucket above the last bound.
type Scale struct {
	// Min is the inclusive upper bound of the first bucket.
	Min float64
	// Factor is the geometric growth per bucket (> 1).
	Factor float64
	// Buckets is the number of finite buckets (≥ 1), excluding overflow.
	Buckets int
}

// DefaultScale covers 1..2^47 in factor-2 buckets — wide enough for
// nanosecond latencies from single cache hits to multi-hour sweeps, and
// for event-count size distributions.
func DefaultScale() Scale { return Scale{Min: 1, Factor: 2, Buckets: 48} }

// valid reports whether the scale is usable.
func (s Scale) valid() bool {
	return s.Min > 0 && s.Factor > 1 && s.Buckets >= 1
}

// Histogram is a concurrency-safe log-scale histogram tracking count,
// sum, min and max alongside per-bucket counts. Construct with
// NewHistogram; all methods are safe on a nil receiver.
type Histogram struct {
	scale        Scale
	invLogFactor float64
	pow2         bool            // Min 1, Factor 2: bucketIndex reduces to Frexp
	bounds       []float64       // inclusive upper bounds, len = Buckets
	counts       []atomic.Uint64 // len = Buckets+1, last is overflow
	count        atomic.Uint64
	sumBits      atomic.Uint64
	minBits      atomic.Uint64 // stores math.Float64bits; +Inf when empty
	maxBits      atomic.Uint64 // -Inf when empty
}

// NewHistogram builds a histogram; an invalid scale falls back to
// DefaultScale.
func NewHistogram(s Scale) *Histogram {
	if !s.valid() {
		s = DefaultScale()
	}
	h := &Histogram{
		scale:        s,
		invLogFactor: 1 / math.Log(s.Factor),
		pow2:         s.Min == 1 && s.Factor == 2,
		bounds:       make([]float64, s.Buckets),
		counts:       make([]atomic.Uint64, s.Buckets+1),
	}
	b := s.Min
	for i := range h.bounds {
		h.bounds[i] = b
		b *= s.Factor
	}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// bucketIndex maps a value to its bucket (len(bounds) = overflow).
func (h *Histogram) bucketIndex(v float64) int {
	if v <= h.scale.Min {
		return 0
	}
	if h.pow2 {
		// Factor-2 buckets with Min 1: bucket i covers (2^(i-1), 2^i], so
		// the index is the binary exponent — exact, no log or fuzz guard.
		if math.IsInf(v, 1) {
			return len(h.bounds)
		}
		frac, exp := math.Frexp(v) // v = frac·2^exp, frac ∈ [0.5, 1)
		if frac == 0.5 {
			exp-- // exact power of two: inclusive upper bound
		}
		if exp > len(h.bounds) {
			exp = len(h.bounds)
		}
		return exp
	}
	idx := int(math.Ceil(math.Log(v/h.scale.Min) * h.invLogFactor))
	// Guard the float fuzz around exact bucket bounds: the bound is an
	// inclusive upper limit.
	if idx > 0 && idx <= len(h.bounds) && h.bounds[idx-1] >= v {
		idx--
	}
	if idx < 0 {
		idx = 0
	}
	if idx > len(h.bounds) {
		idx = len(h.bounds)
	}
	return idx
}

// Observe records one value. NaN is dropped; negative values clamp into
// the first bucket but still update min. Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.counts[h.bucketIndex(v)].Add(1)
	h.count.Add(1)
	atomicAddFloat(&h.sumBits, v)
	atomicMinFloat(&h.minBits, v)
	atomicMaxFloat(&h.maxBits, v)
}

// atomicAddFloat adds delta to a float64 stored as bits.
func atomicAddFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func atomicMinFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func atomicMaxFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Count returns the number of observations so far. Safe on a nil
// receiver; unlike Snapshot it allocates nothing, so per-epoch samplers
// can poll it from a hot loop.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running sum of observed values. Safe on a nil
// receiver and allocation-free, like Count.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// HistogramSnapshot is an immutable copy of a histogram's state with
// quantile estimation. Counts has one more element than Bounds: the
// final entry counts observations above the last bound.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
}

// Snapshot copies the histogram. Safe on a nil receiver (returns the
// zero snapshot). Under concurrent Observe calls the copy may lag by a
// handful of in-flight observations.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	var total uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		total += c
	}
	// Derive Count from the bucket sum so Counts and Count agree even
	// when Observe races the copy.
	s.Count = total
	if total > 0 {
		s.Min = math.Float64frombits(h.minBits.Load())
		s.Max = math.Float64frombits(h.maxBits.Load())
	}
	return s
}

// Mean returns Sum/Count (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) by geometric
// interpolation inside the covering bucket, clamped to the observed
// [Min, Max]. Empty snapshots return 0. Estimates are monotonically
// non-decreasing in q.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	target := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next < target {
			cum = next
			continue
		}
		lo, hi := s.bucketRange(i)
		if hi <= lo {
			return clamp(lo, s.Min, s.Max)
		}
		p := (target - cum) / float64(c)
		var v float64
		if lo > 0 {
			v = lo * math.Pow(hi/lo, p) // geometric within a log bucket
		} else {
			v = lo + (hi-lo)*p
		}
		return clamp(v, s.Min, s.Max)
	}
	return s.Max
}

// bucketRange returns the value range covered by bucket i, tightened by
// the observed min/max at the edges.
func (s HistogramSnapshot) bucketRange(i int) (lo, hi float64) {
	if i == 0 {
		lo = s.Min
	} else {
		lo = s.Bounds[i-1]
	}
	if i < len(s.Bounds) {
		hi = s.Bounds[i]
	} else {
		hi = s.Max // overflow bucket
	}
	if hi > s.Max {
		hi = s.Max
	}
	if lo < s.Min {
		lo = s.Min
	}
	return lo, hi
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Merge folds a snapshot (e.g. a per-simulation histogram) into h. The
// snapshot's bucket layout must match h's scale.
func (h *Histogram) Merge(s HistogramSnapshot) error {
	if h == nil || s.Count == 0 {
		return nil
	}
	if len(s.Bounds) != len(h.bounds) || len(s.Counts) != len(h.counts) {
		return fmt.Errorf("telemetry: merge of mismatched histogram layout (%d/%d buckets, want %d/%d)",
			len(s.Bounds), len(s.Counts), len(h.bounds), len(h.counts))
	}
	for i, b := range s.Bounds {
		if b != h.bounds[i] {
			return fmt.Errorf("telemetry: merge of mismatched histogram bound %d (%g, want %g)", i, b, h.bounds[i])
		}
	}
	for i, c := range s.Counts {
		if c > 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(s.Count)
	atomicAddFloat(&h.sumBits, s.Sum)
	atomicMinFloat(&h.minBits, s.Min)
	atomicMaxFloat(&h.maxBits, s.Max)
	return nil
}
