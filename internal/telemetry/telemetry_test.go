package telemetry

import (
	"fmt"
	"sync"
	"testing"
)

func TestRegistryInstruments(t *testing.T) {
	r := New()
	c := r.Counter("jobs_total", "kind", "simulated")
	c.Add(3)
	c.Inc()
	if got := r.Counter("jobs_total", "kind", "simulated").Value(); got != 4 {
		t.Errorf("counter = %d, want 4 (same instrument on re-lookup)", got)
	}
	if got := r.Counter("jobs_total", "kind", "cached").Value(); got != 0 {
		t.Errorf("differently-labeled counter = %d, want 0", got)
	}

	g := r.Gauge("queue_depth")
	g.Set(7)
	g.Add(-2)
	if got := r.Gauge("queue_depth").Value(); got != 5 {
		t.Errorf("gauge = %g, want 5", got)
	}

	h := r.Histogram("latency_ns")
	h.Observe(100)
	if got := r.Histogram("latency_ns").Snapshot().Count; got != 1 {
		t.Errorf("histogram count = %d, want 1", got)
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := New()
	r.Counter("a_total").Add(2)
	r.Gauge("b").Set(1.5)
	r.Histogram("c_ns", "level", "L2").Observe(10)
	sp := r.StartSpan("phase", nil)
	sp.End()

	s := r.Snapshot()
	if s.Counters["a_total"] != 2 {
		t.Errorf("snapshot counters = %v", s.Counters)
	}
	if s.Gauges["b"] != 1.5 {
		t.Errorf("snapshot gauges = %v", s.Gauges)
	}
	if s.Histograms[`c_ns{level="L2"}`].Count != 1 {
		t.Errorf("snapshot histograms = %v", s.Histograms)
	}
	if s.SpansTotal != 1 || len(s.Spans) != 1 {
		t.Errorf("snapshot spans = total %d, kept %d", s.SpansTotal, len(s.Spans))
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(1)
	r.Gauge("y").Set(2)
	r.Histogram("z").Observe(3)
	sp := r.StartSpan("s", nil)
	sp.SetAttr("k", "v")
	sp.End()
	if s := r.Snapshot(); len(s.Counters) != 0 || s.SpansTotal != 0 {
		t.Errorf("nil registry snapshot = %+v", s)
	}
	if err := r.WritePrometheus(nil); err != nil {
		t.Errorf("nil WritePrometheus errored: %v", err)
	}
}

// TestRegistryConcurrentWriters is the tier-1 race check: concurrent
// writers on every instrument type plus snapshotters must be data-race
// free under -race.
func TestRegistryConcurrentWriters(t *testing.T) {
	r := New()
	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			level := fmt.Sprintf("L%d", w%3)
			for i := 0; i < iters; i++ {
				r.Counter("hits_total", "level", level).Inc()
				r.Gauge("depth").Add(1)
				r.Histogram("wait_ns").Observe(float64(i%1000 + 1))
				if i%100 == 0 {
					sp := r.StartSpan("work", nil)
					sp.SetAttr("worker", level)
					sp.End()
				}
			}
		}(w)
	}
	// Concurrent readers exercise snapshot/encode paths under writes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = r.Snapshot()
			_ = r.Spans()
		}
	}()
	wg.Wait()

	var total uint64
	for _, v := range r.Snapshot().Counters {
		total += v
	}
	if total != workers*iters {
		t.Errorf("counter total = %d, want %d", total, workers*iters)
	}
	if got := r.Histogram("wait_ns").Snapshot().Count; got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
	if got := r.Gauge("depth").Value(); got != workers*iters {
		t.Errorf("gauge = %g, want %d", got, workers*iters)
	}
}

func TestInstrumentID(t *testing.T) {
	if got := instrumentID("n", nil); got != "n" {
		t.Errorf("bare id = %q", got)
	}
	if got := instrumentID("n", []string{"a", "1", "b", "2"}); got != `n{a="1",b="2"}` {
		t.Errorf("labeled id = %q", got)
	}
	// A trailing key with no value is dropped.
	if got := instrumentID("n", []string{"a", "1", "orphan"}); got != `n{a="1"}` {
		t.Errorf("odd-labeled id = %q", got)
	}
}
