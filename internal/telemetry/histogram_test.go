package telemetry

import (
	"math"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram(Scale{Min: 1, Factor: 2, Buckets: 4}) // bounds 1,2,4,8 + overflow
	cases := []struct {
		v    float64
		want int
	}{
		{-5, 0}, {0, 0}, {0.5, 0}, {1, 0}, // ≤ Min → first bucket
		{1.0001, 1}, {2, 1}, // bounds are inclusive upper limits
		{2.0001, 2}, {4, 2},
		{4.0001, 3}, {8, 3},
		{8.0001, 4}, {1e9, 4}, // overflow
	}
	for _, c := range cases {
		if got := h.bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%g) = %d, want %d", c.v, got, c.want)
		}
	}
}

// TestHistogramPow2FastPathSemantics checks the Frexp-based factor-2
// fast path against the bucket definition directly — bucket i covers
// (bound[i-1], bound[i]] — across magnitudes, exact powers of two
// (inclusive upper bounds), nearby off-by-one-ulp values and overflow.
func TestHistogramPow2FastPathSemantics(t *testing.T) {
	h := NewHistogram(DefaultScale())
	if !h.pow2 {
		t.Fatal("default scale did not select the pow2 fast path")
	}
	check := func(v float64) {
		t.Helper()
		idx := h.bucketIndex(v)
		switch {
		case idx == 0:
			if v > h.bounds[0] {
				t.Errorf("bucketIndex(%g) = 0, but %g > bound %g", v, v, h.bounds[0])
			}
		case idx == len(h.bounds):
			if v <= h.bounds[len(h.bounds)-1] {
				t.Errorf("bucketIndex(%g) = overflow, but %g ≤ last bound %g", v, v, h.bounds[len(h.bounds)-1])
			}
		default:
			if !(h.bounds[idx-1] < v && v <= h.bounds[idx]) {
				t.Errorf("bucketIndex(%g) = %d, but %g ∉ (%g, %g]", v, idx, v, h.bounds[idx-1], h.bounds[idx])
			}
		}
	}
	for exp := -2; exp < 50; exp++ {
		p := math.Ldexp(1, exp)
		for _, v := range []float64{p, math.Nextafter(p, 0), math.Nextafter(p, math.Inf(1)), p * 1.5} {
			check(v)
		}
	}
	check(math.Inf(1))
	if got := h.bucketIndex(math.Inf(1)); got != len(h.bounds) {
		t.Errorf("bucketIndex(+Inf) = %d, want overflow %d", got, len(h.bounds))
	}
}

func TestHistogramSnapshotStats(t *testing.T) {
	h := NewHistogram(DefaultScale())
	for _, v := range []float64{3, 1, 100, 7} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 4 {
		t.Errorf("Count = %d, want 4", s.Count)
	}
	if s.Sum != 111 {
		t.Errorf("Sum = %g, want 111", s.Sum)
	}
	if s.Min != 1 || s.Max != 100 {
		t.Errorf("Min/Max = %g/%g, want 1/100", s.Min, s.Max)
	}
	if got := s.Mean(); got != 111.0/4 {
		t.Errorf("Mean = %g", got)
	}
	var bucketTotal uint64
	for _, c := range s.Counts {
		bucketTotal += c
	}
	if bucketTotal != s.Count {
		t.Errorf("bucket total %d != Count %d", bucketTotal, s.Count)
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	h := NewHistogram(DefaultScale())
	// A skewed distribution spanning several octaves.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i * i % 7919))
	}
	s := h.Snapshot()
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0001; q += 0.01 {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%g) = %g < previous %g: not monotonic", q, v, prev)
		}
		prev = v
	}
	if got := s.Quantile(0); got != s.Min {
		t.Errorf("Quantile(0) = %g, want Min %g", got, s.Min)
	}
	if got := s.Quantile(1); got != s.Max {
		t.Errorf("Quantile(1) = %g, want Max %g", got, s.Max)
	}
	// The median of 1000 samples must sit inside the observed range and
	// within a bucket factor of the exact value.
	if med := s.Quantile(0.5); med < s.Min || med > s.Max {
		t.Errorf("median %g outside [%g, %g]", med, s.Min, s.Max)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	s := NewHistogram(DefaultScale()).Snapshot()
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %g, want 0", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(DefaultScale())
	b := NewHistogram(DefaultScale())
	for _, v := range []float64{1, 10, 100} {
		a.Observe(v)
	}
	for _, v := range []float64{5, 50, 5000} {
		b.Observe(v)
	}
	if err := a.Merge(b.Snapshot()); err != nil {
		t.Fatal(err)
	}
	s := a.Snapshot()
	if s.Count != 6 {
		t.Errorf("merged Count = %d, want 6", s.Count)
	}
	if s.Sum != 5166 {
		t.Errorf("merged Sum = %g, want 5166", s.Sum)
	}
	if s.Min != 1 || s.Max != 5000 {
		t.Errorf("merged Min/Max = %g/%g, want 1/5000", s.Min, s.Max)
	}

	// Mismatched layouts must be rejected.
	other := NewHistogram(Scale{Min: 1, Factor: 4, Buckets: 8})
	other.Observe(3)
	if err := a.Merge(other.Snapshot()); err == nil {
		t.Error("merge of mismatched layout did not error")
	}
	// Merging an empty snapshot is a no-op, not an error.
	if err := a.Merge(HistogramSnapshot{}); err != nil {
		t.Errorf("empty merge errored: %v", err)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(5) // must not panic
	if s := h.Snapshot(); s.Count != 0 {
		t.Errorf("nil Snapshot Count = %d", s.Count)
	}
	if err := h.Merge(HistogramSnapshot{Count: 3}); err != nil {
		t.Errorf("nil Merge errored: %v", err)
	}
}

func TestHistogramInvalidScaleFallsBack(t *testing.T) {
	h := NewHistogram(Scale{})
	h.Observe(42)
	if got := h.Snapshot().Count; got != 1 {
		t.Errorf("Count = %d, want 1", got)
	}
	if len(h.bounds) != DefaultScale().Buckets {
		t.Errorf("bounds len = %d, want default %d", len(h.bounds), DefaultScale().Buckets)
	}
}
