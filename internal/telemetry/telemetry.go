// Package telemetry is the dependency-free observability layer shared by
// the simulator, the experiment engine and the CLIs: named counters,
// gauges and log-scale histograms collected in a concurrency-safe
// Registry, lightweight span tracing for sweep → design-point →
// simulation phases, and encoders for the Prometheus text exposition
// format, JSON snapshots and JSONL run manifests.
//
// Every instrument is safe to use through nil receivers: a nil *Registry
// hands out nil instruments whose methods are no-ops, so instrumented
// code pays only a nil check when telemetry is disabled. This is the
// property the BenchmarkTelemetryOverhead bench in the repository root
// guards (< 5% slowdown instrumented vs no-op on the system simulator).
package telemetry

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. Safe on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64 metric.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. Safe on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds delta. Safe on a nil receiver.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// entry is one registered instrument with its identity.
type entry struct {
	kind   metricKind
	name   string
	labels []string // alternating key, value
	id     string   // rendered name{k="v",...}
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// Registry collects named instruments and completed spans. The zero
// value is not usable; construct with New. All methods are safe for
// concurrent use and safe on a nil receiver (returning nil instruments).
type Registry struct {
	mu      sync.Mutex
	index   map[string]*entry
	entries []*entry

	spanSeq    atomic.Uint64
	spansTotal atomic.Uint64
	spanMu     sync.Mutex
	spanRing   []SpanRecord
	spanNext   int
	spanFull   bool
}

// spanRingCap bounds the retained completed spans (oldest evicted first).
const spanRingCap = 1024

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		index:    make(map[string]*entry),
		spanRing: make([]SpanRecord, 0, spanRingCap),
	}
}

// instrumentID renders the canonical identity "name{k="v",...}" with
// labels in the given order. Labels are alternating key, value; a
// trailing key without a value is dropped.
func instrumentID(name string, labels []string) string {
	if len(labels) < 2 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(labels[i+1])
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// lookup returns the entry for id, creating it with mk when absent.
func (r *Registry) lookup(kind metricKind, name string, labels []string, mk func(*entry)) *entry {
	id := instrumentID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.index[id]; ok {
		return e
	}
	e := &entry{kind: kind, name: name, labels: labels, id: id}
	mk(e)
	r.index[id] = e
	r.entries = append(r.entries, e)
	return e
}

// Counter returns the named counter, registering it on first use.
// Labels are alternating key, value pairs. Safe on a nil receiver
// (returns a nil, no-op counter).
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	e := r.lookup(kindCounter, name, labels, func(e *entry) { e.ctr = &Counter{} })
	return e.ctr
}

// Gauge returns the named gauge, registering it on first use. Safe on a
// nil receiver.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	e := r.lookup(kindGauge, name, labels, func(e *entry) { e.gauge = &Gauge{} })
	return e.gauge
}

// Histogram returns the named histogram with the default scale,
// registering it on first use. Safe on a nil receiver.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	return r.HistogramScaled(DefaultScale(), name, labels...)
}

// HistogramScaled is Histogram with an explicit bucket scale (used only
// when the instrument is first registered). Safe on a nil receiver.
func (r *Registry) HistogramScaled(s Scale, name string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	e := r.lookup(kindHistogram, name, labels, func(e *entry) { e.hist = NewHistogram(s) })
	return e.hist
}

// Snapshot is a point-in-time copy of every instrument, JSON-encodable.
// Map keys are the rendered instrument identities (name{k="v",...}).
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	// SpansTotal counts every span ever completed; Spans holds the most
	// recent (bounded) completed spans, oldest first.
	SpansTotal uint64       `json:"spans_total"`
	Spans      []SpanRecord `json:"spans,omitempty"`
}

// Snapshot copies the registry contents. Safe on a nil receiver
// (returns an empty snapshot). Counters, gauges and histogram buckets
// are each read atomically, but the snapshot as a whole is not a
// consistent cut under concurrent writers.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	for _, e := range r.sortedEntries() {
		switch e.kind {
		case kindCounter:
			snap.Counters[e.id] = e.ctr.Value()
		case kindGauge:
			snap.Gauges[e.id] = e.gauge.Value()
		case kindHistogram:
			snap.Histograms[e.id] = e.hist.Snapshot()
		}
	}
	snap.SpansTotal = r.spansTotal.Load()
	snap.Spans = r.Spans()
	return snap
}

// sortedEntries returns the entries ordered by (name, id) for
// deterministic encoding.
func (r *Registry) sortedEntries() []*entry {
	r.mu.Lock()
	out := make([]*entry, len(r.entries))
	copy(out, r.entries)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].id < out[j].id
	})
	return out
}
