package telemetry

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// promSampleRe matches one exposition-format sample line:
// name{label="v",...} value
var promSampleRe = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? ` +
		`[-+]?([0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|Inf|NaN)$`)

// ValidateExposition checks that r is well-formed Prometheus text
// exposition format (version 0.0.4) as WritePrometheus produces it:
// every non-comment line is a valid sample, every sample's metric
// family has a preceding # TYPE header, and histogram bucket series are
// cumulative and terminated by an le="+Inf" bucket. It returns every
// violation joined, or nil. Used by the endpoint tests and available as
// a self-check for scrape consumers.
func ValidateExposition(r io.Reader) error {
	var errs []error
	types := map[string]string{}
	var lastBucketName string
	var lastCum uint64
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) >= 4 && f[1] == "TYPE" {
				types[f[2]] = f[3]
			}
			continue
		}
		if !promSampleRe.MatchString(line) {
			errs = append(errs, fmt.Errorf("invalid sample line %q", line))
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); base != name && types[base] == "histogram" {
				family = base
			}
		}
		if _, ok := types[family]; !ok {
			errs = append(errs, fmt.Errorf("sample %q has no # TYPE header", line))
		}
		if strings.HasSuffix(name, "_bucket") {
			val, _ := strconv.ParseUint(line[strings.LastIndex(line, " ")+1:], 10, 64)
			if name == lastBucketName && val < lastCum {
				errs = append(errs, fmt.Errorf("non-cumulative bucket series at %q", line))
			}
			lastBucketName, lastCum = name, val
			if strings.Contains(line, `le="+Inf"`) {
				lastBucketName = ""
			}
		}
	}
	if lastBucketName != "" {
		errs = append(errs, fmt.Errorf("histogram %s not terminated by le=\"+Inf\"", lastBucketName))
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}
