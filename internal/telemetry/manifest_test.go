package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestManifestWriterJSONL(t *testing.T) {
	var buf bytes.Buffer
	m := NewManifestWriter(&buf)
	events := []ManifestEvent{
		{Event: "run_start", Tool: "figures", Version: "test", UnixMS: 1},
		{Event: "design_point", Workload: "cg", LLC: "Jan_S", TimeNS: 100,
			Levels: map[string]ManifestLevel{"L1D": {Hits: 9, Misses: 1, HitRate: 0.9}},
			DRAM:   &ManifestDRAM{Reads: 4, Writes: 2, WaitP50NS: 3}},
		{Event: "run_end", Jobs: 1, UnixMS: 2},
	}
	for _, ev := range events {
		if err := m.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Events(); got != 1 {
		t.Errorf("Events() = %d, want 1 design point", got)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	sc := bufio.NewScanner(&buf)
	var decoded []ManifestEvent
	for sc.Scan() {
		var ev ManifestEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		decoded = append(decoded, ev)
	}
	if len(decoded) != 3 {
		t.Fatalf("got %d lines, want 3", len(decoded))
	}
	dp := decoded[1]
	if dp.Workload != "cg" || dp.Levels["L1D"].HitRate != 0.9 || dp.DRAM.WaitP50NS != 3 {
		t.Errorf("design point did not round-trip: %+v", dp)
	}
}

func TestManifestWriterConcurrent(t *testing.T) {
	var buf bytes.Buffer
	m := NewManifestWriter(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				m.Write(ManifestEvent{Event: "design_point", Workload: fmt.Sprintf("w%d", w)})
			}
		}(w)
	}
	wg.Wait()
	if got := m.Events(); got != 400 {
		t.Errorf("Events() = %d, want 400", got)
	}
	// Every line must be intact JSON (no interleaved writes).
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev ManifestEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("corrupt line %q: %v", line, err)
		}
	}
}

func TestManifestWriterStickyError(t *testing.T) {
	m := NewManifestWriter(failWriter{})
	if err := m.Write(ManifestEvent{Event: "run_start"}); err == nil {
		t.Fatal("write to failing writer succeeded")
	}
	if err := m.Write(ManifestEvent{Event: "design_point"}); err == nil {
		t.Fatal("sticky error not reported")
	}
	if m.Events() != 0 {
		t.Errorf("failed writes counted: %d", m.Events())
	}
	if err := m.Close(); err == nil {
		t.Error("Close did not surface the sticky error")
	}
}

func TestManifestWriterNilSafe(t *testing.T) {
	var m *ManifestWriter
	if err := m.Write(ManifestEvent{Event: "x"}); err != nil {
		t.Error(err)
	}
	if m.Events() != 0 {
		t.Error("nil Events != 0")
	}
	if err := m.Close(); err != nil {
		t.Error(err)
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, fmt.Errorf("disk full") }
