package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestTimelineAppendAndSnapshot(t *testing.T) {
	tl := NewTimeline(8, "instructions", DeltaField("writes"), LevelField("capacity"))
	tl.Append(100, 10, 1.0)
	tl.Append(200, 20, 0.9)
	tl.Append(300, 30, 0.8)
	s := tl.Snapshot()
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if s.Axis != "instructions" {
		t.Fatalf("Axis = %q", s.Axis)
	}
	if got := s.SeriesOf("writes"); !reflect.DeepEqual(got, []float64{10, 20, 30}) {
		t.Fatalf("writes series = %v", got)
	}
	if got := s.SeriesOf("capacity"); !reflect.DeepEqual(got, []float64{1.0, 0.9, 0.8}) {
		t.Fatalf("capacity series = %v", got)
	}
	if got := s.SeriesOf("nope"); got != nil {
		t.Fatalf("missing series = %v, want nil", got)
	}
	if got := s.Sum("writes"); got != 60 {
		t.Fatalf("Sum(writes) = %g, want 60", got)
	}
}

// TestTimelineCompaction pins the pair-merge rule: deltas sum, levels
// keep the later sample, the budget is never exceeded, and the delta
// total is exact at every compaction level.
func TestTimelineCompaction(t *testing.T) {
	tl := NewTimeline(4, "x", DeltaField("d"), LevelField("l"))
	var wantTotal float64
	for i := 1; i <= 64; i++ {
		tl.Append(uint64(i*10), float64(i), float64(i)/64)
		wantTotal += float64(i)
	}
	s := tl.Snapshot()
	if s.Len() > 4 {
		t.Fatalf("Len = %d, want ≤ budget 4", s.Len())
	}
	if got := s.Sum("d"); got != wantTotal {
		t.Fatalf("Sum(d) = %g, want %g (compaction must preserve delta totals)", got, wantTotal)
	}
	if s.Compactions == 0 {
		t.Fatalf("Compactions = 0, want > 0 after 64 appends into budget 4")
	}
	// The last retained epoch ends at the last append and carries its level.
	if s.X[s.Len()-1] != 640 {
		t.Fatalf("last X = %d, want 640", s.X[s.Len()-1])
	}
	lvl := s.SeriesOf("l")
	if lvl[len(lvl)-1] != 1.0 {
		t.Fatalf("last level = %g, want 1.0 (merge keeps the later level)", lvl[len(lvl)-1])
	}
	// X stays strictly increasing.
	for i := 1; i < s.Len(); i++ {
		if s.X[i] <= s.X[i-1] {
			t.Fatalf("X not strictly increasing: %v", s.X)
		}
	}
}

func TestTimelineRejectsMalformedAppends(t *testing.T) {
	tl := NewTimeline(8, "x", DeltaField("d"))
	tl.Append(10, 1)
	tl.Append(10, 2) // not strictly increasing
	tl.Append(5, 3)  // going backwards
	tl.Append(20)    // wrong arity
	tl.Append(20, 1, 2)
	s := tl.Snapshot()
	if s.Len() != 1 || s.Dropped != 4 {
		t.Fatalf("Len = %d, Dropped = %d, want 1 point and 4 drops", s.Len(), s.Dropped)
	}
}

func TestTimelineNilSafety(t *testing.T) {
	var tl *Timeline
	tl.Append(1, 2) // must not panic
	s := tl.Snapshot()
	if s.Len() != 0 || s.Sum("x") != 0 {
		t.Fatalf("nil timeline snapshot not zero: %+v", s)
	}
}

func TestTimelineRateStats(t *testing.T) {
	tl := NewTimeline(8, "x", DeltaField("d"))
	// Equal-width epochs with constant rate: CoV 0, peak/mean 1.
	tl.Append(10, 5)
	tl.Append(20, 5)
	tl.Append(30, 5)
	s := tl.Snapshot()
	if cov := s.RateCoV("d"); cov != 0 {
		t.Fatalf("constant-rate CoV = %g, want 0", cov)
	}
	if pm := s.RatePeakToMean("d"); pm != 1 {
		t.Fatalf("constant-rate peak/mean = %g, want 1", pm)
	}

	// A bursty series: one epoch carries everything.
	tb := NewTimeline(8, "x", DeltaField("d"))
	tb.Append(10, 0)
	tb.Append(20, 30)
	tb.Append(30, 0)
	sb := tb.Snapshot()
	if cov := sb.RateCoV("d"); !(cov > 1) {
		t.Fatalf("bursty CoV = %g, want > 1", cov)
	}
	if pm := sb.RatePeakToMean("d"); pm != 3 {
		t.Fatalf("bursty peak/mean = %g, want 3", pm)
	}
	if got := s.RateCoV("missing"); got != 0 {
		t.Fatalf("missing-series CoV = %g, want 0", got)
	}
}

// TestTimelineRateStatsDegenerate pins the degenerate-series contract:
// empty, zero-total and single-epoch timelines answer defined zeros (or
// the trivial ratio), never NaN or ±Inf.
func TestTimelineRateStatsDegenerate(t *testing.T) {
	finite := func(name string, v float64) {
		t.Helper()
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s = %v, want a finite value", name, v)
		}
	}

	// Empty timeline: no epochs at all.
	empty := NewTimeline(4, "x", DeltaField("d")).Snapshot()
	if cov := empty.RateCoV("d"); cov != 0 {
		t.Errorf("empty CoV = %g, want 0", cov)
	}
	if pm := empty.RatePeakToMean("d"); pm != 0 {
		t.Errorf("empty peak/mean = %g, want 0", pm)
	}

	// Zero-total series: epochs exist, every delta is zero, so the mean
	// rate is 0 and both ratios must not divide by it.
	tz := NewTimeline(4, "x", DeltaField("d"))
	tz.Append(10, 0)
	tz.Append(20, 0)
	sz := tz.Snapshot()
	cov, pm := sz.RateCoV("d"), sz.RatePeakToMean("d")
	finite("zero-total CoV", cov)
	finite("zero-total peak/mean", pm)
	if cov != 0 || pm != 0 {
		t.Errorf("zero-total: CoV=%g peak/mean=%g, want 0/0", cov, pm)
	}

	// Single epoch: one sample is perfectly steady by definition.
	t1 := NewTimeline(4, "x", DeltaField("d"))
	t1.Append(10, 7)
	s1 := t1.Snapshot()
	if cov := s1.RateCoV("d"); cov != 0 {
		t.Errorf("single-epoch CoV = %g, want 0", cov)
	}
	if pm := s1.RatePeakToMean("d"); pm != 1 {
		t.Errorf("single-epoch peak/mean = %g, want 1", pm)
	}

	// Single epoch ending at x=0: zero width, so no rate is defined.
	t0 := NewTimeline(4, "x", DeltaField("d"))
	t0.Append(0, 5)
	s0 := t0.Snapshot()
	cov, pm = s0.RateCoV("d"), s0.RatePeakToMean("d")
	finite("zero-width CoV", cov)
	finite("zero-width peak/mean", pm)
	if cov != 0 || pm != 0 {
		t.Errorf("zero-width epoch: CoV=%g peak/mean=%g, want 0/0", cov, pm)
	}
}

func TestTimelineDownsample(t *testing.T) {
	tl := NewTimeline(64, "x", DeltaField("d"), LevelField("l"))
	var total float64
	for i := 1; i <= 40; i++ {
		tl.Append(uint64(i), float64(i), float64(i))
		total += float64(i)
	}
	s := tl.Snapshot()
	d := s.Downsample(6)
	if d.Len() > 6 {
		t.Fatalf("downsampled Len = %d, want ≤ 6", d.Len())
	}
	if got := d.Sum("d"); got != total {
		t.Fatalf("downsampled Sum = %g, want %g", got, total)
	}
	if d.X[d.Len()-1] != 40 {
		t.Fatalf("downsampled last X = %d, want 40", d.X[d.Len()-1])
	}
	// Already-small snapshots pass through unchanged.
	if got := s.Downsample(1000); !reflect.DeepEqual(got, s) {
		t.Fatalf("no-op downsample changed the snapshot")
	}
}

func TestTimelineCSVAndJSON(t *testing.T) {
	tl := NewTimeline(8, "instr", DeltaField("writes"), LevelField("cap"))
	tl.Append(100, 7, 0.5)
	tl.Append(200, 9, 0.25)
	s := tl.Snapshot()

	var b strings.Builder
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "instr,writes,cap\n100,7,0.5\n200,9,0.25\n"
	if b.String() != want {
		t.Fatalf("CSV = %q, want %q", b.String(), want)
	}

	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back TimelineSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, s) {
		t.Fatalf("JSON round trip changed the snapshot:\n%+v\n%+v", back, s)
	}
}

// TestTimelineConcurrentWriters drives Append and Snapshot from many
// goroutines; under -race this pins the instrument's concurrency safety
// (the tier-1 verify runs this package with -race). Interleaved
// producers make most appends out-of-order drops — the invariant is no
// data race and a strictly increasing retained series.
func TestTimelineConcurrentWriters(t *testing.T) {
	tl := NewTimeline(16, "x", DeltaField("d"), LevelField("l"))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tl.Append(uint64(w*1000+i), 1, float64(i))
				if i%50 == 0 {
					_ = tl.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	s := tl.Snapshot()
	if s.Len() == 0 || s.Len() > 16 {
		t.Fatalf("Len = %d, want 1..16", s.Len())
	}
	for i := 1; i < s.Len(); i++ {
		if s.X[i] <= s.X[i-1] {
			t.Fatalf("X not strictly increasing after concurrent writes: %v", s.X)
		}
	}
	if got := s.Sum("d") + float64(s.Dropped); got != 8*500 {
		t.Fatalf("retained + dropped = %g, want %d", got, 8*500)
	}
}

func TestHeatmapBasics(t *testing.T) {
	h := NewHeatmap(4, "set", "writes", "accesses")
	h.Add(0, 0, 10)
	h.Add(3, 1, 5)
	h.Add(3, 1, 2)
	h.Set(1, 0, 9)
	if got := h.At(3, 1); got != 7 {
		t.Fatalf("At(3,1) = %g, want 7", got)
	}
	if got := h.ColSum(0); got != 19 {
		t.Fatalf("ColSum(0) = %g, want 19", got)
	}
	// Out-of-range traffic is dropped, not panicking.
	h.Add(-1, 0, 1)
	h.Add(4, 0, 1)
	h.Add(0, 2, 1)
	if got := h.At(99, 99); got != 0 {
		t.Fatalf("out-of-range At = %g", got)
	}
	var nilH *Heatmap
	nilH.Add(0, 0, 1)
	if nilH.At(0, 0) != 0 || nilH.ColSum(0) != 0 {
		t.Fatal("nil heatmap not inert")
	}
	if err := nilH.WriteCSV(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestHeatmapDownsamplePreservesColumnSums(t *testing.T) {
	h := NewHeatmap(64, "set", "writes")
	for r := 0; r < 64; r++ {
		h.Set(r, 0, float64(r))
	}
	d := h.Downsample(7)
	if d.Rows != 7 {
		t.Fatalf("Rows = %d, want 7", d.Rows)
	}
	if got, want := d.ColSum(0), h.ColSum(0); got != want {
		t.Fatalf("downsampled ColSum = %g, want %g", got, want)
	}
	if same := h.Downsample(64); same != h {
		t.Fatal("no-op downsample should return the receiver")
	}
}

func TestHeatmapCSVAndJSON(t *testing.T) {
	h := NewHeatmap(2, "set", "w", "a")
	h.Set(0, 0, 1)
	h.Set(0, 1, 2)
	h.Set(1, 0, 3)
	h.Set(1, 1, 4)
	var b strings.Builder
	if err := h.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "set,w,a\n0,1,2\n1,3,4\n"
	if b.String() != want {
		t.Fatalf("CSV = %q, want %q", b.String(), want)
	}
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Heatmap
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, h) {
		t.Fatalf("JSON round trip changed the heatmap:\n%+v\n%+v", back, *h)
	}
}

// TestHistogramCheapAccessors pins Count/Sum against Snapshot.
func TestHistogramCheapAccessors(t *testing.T) {
	h := NewHistogram(DefaultScale())
	for i := 1; i <= 10; i++ {
		h.Observe(float64(i))
	}
	if got := h.Count(); got != 10 {
		t.Fatalf("Count = %d, want 10", got)
	}
	if got := h.Sum(); got != 55 {
		t.Fatalf("Sum = %g, want 55", got)
	}
	var nilH *Histogram
	if nilH.Count() != 0 || nilH.Sum() != 0 {
		t.Fatal("nil histogram accessors not zero")
	}
	if n := testing.AllocsPerRun(10, func() { _ = h.Count(); _ = h.Sum() }); n != 0 {
		t.Fatalf("Count/Sum allocate %v per call, want 0", n)
	}
}

// --- Histogram edge cases (ISSUE 7 satellite) ---

func TestHistogramEmptyQuantiles(t *testing.T) {
	h := NewHistogram(DefaultScale())
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%g) = %g, want 0", q, got)
		}
	}
	if s.Mean() != 0 {
		t.Fatalf("empty Mean = %g, want 0", s.Mean())
	}
}

func TestHistogramSingleBucket(t *testing.T) {
	h := NewHistogram(Scale{Min: 100, Factor: 10, Buckets: 1})
	for i := 0; i < 5; i++ {
		h.Observe(50)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("Count = %d, want 5", s.Count)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		got := s.Quantile(q)
		if got != 50 {
			t.Fatalf("single-value Quantile(%g) = %g, want 50 (clamped to observed range)", q, got)
		}
	}
	// Overflow-only content still quantiles inside [Min, Max].
	h2 := NewHistogram(Scale{Min: 1, Factor: 2, Buckets: 1})
	h2.Observe(1000)
	s2 := h2.Snapshot()
	if got := s2.Quantile(0.5); got != 1000 {
		t.Fatalf("overflow Quantile(0.5) = %g, want 1000", got)
	}
}

// TestHistogramMergeQuantileBounds is the merge property test: for any
// q, Quantile(merge(a,b), q) lies within [min, max] of the inputs'
// observed ranges, and the merged count/sum are the exact sums.
func TestHistogramMergeQuantileBounds(t *testing.T) {
	cases := []struct{ a, b []float64 }{
		{[]float64{1, 2, 3}, []float64{1000, 2000}},
		{[]float64{5}, []float64{5}},
		{[]float64{1, 1e6}, []float64{10, 100, 1000}},
		{[]float64{0.25, 0.5}, []float64{3}},
	}
	for ci, tc := range cases {
		ha, hb := NewHistogram(DefaultScale()), NewHistogram(DefaultScale())
		lo, hi := math.Inf(1), math.Inf(-1)
		var sum float64
		for _, v := range tc.a {
			ha.Observe(v)
			lo, hi, sum = math.Min(lo, v), math.Max(hi, v), sum+v
		}
		for _, v := range tc.b {
			hb.Observe(v)
			lo, hi, sum = math.Min(lo, v), math.Max(hi, v), sum+v
		}
		merged := NewHistogram(DefaultScale())
		if err := merged.Merge(ha.Snapshot()); err != nil {
			t.Fatal(err)
		}
		if err := merged.Merge(hb.Snapshot()); err != nil {
			t.Fatal(err)
		}
		ms := merged.Snapshot()
		if want := uint64(len(tc.a) + len(tc.b)); ms.Count != want {
			t.Fatalf("case %d: merged Count = %d, want %d", ci, ms.Count, want)
		}
		if math.Abs(ms.Sum-sum) > 1e-9 {
			t.Fatalf("case %d: merged Sum = %g, want %g", ci, ms.Sum, sum)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			got := ms.Quantile(q)
			if got < lo || got > hi {
				t.Fatalf("case %d: Quantile(%.2f) = %g outside input range [%g, %g]", ci, q, got, lo, hi)
			}
			if got < prev {
				t.Fatalf("case %d: Quantile(%.2f) = %g < previous %g (must be monotone)", ci, q, got, prev)
			}
			prev = got
		}
	}
}

// TestHistogramMergeMismatch verifies mismatched layouts refuse to merge.
func TestHistogramMergeMismatch(t *testing.T) {
	a := NewHistogram(Scale{Min: 1, Factor: 2, Buckets: 8})
	b := NewHistogram(Scale{Min: 1, Factor: 2, Buckets: 16})
	b.Observe(3)
	if err := a.Merge(b.Snapshot()); err == nil {
		t.Fatal("merge of mismatched layouts succeeded, want error")
	}
	bad := a.Snapshot()
	bad.Bounds = append([]float64(nil), bad.Bounds...)
	if len(bad.Bounds) > 0 {
		bad.Bounds[0] = 12345
	}
	bad.Count = 1
	bad.Counts[0] = 1
	if err := a.Merge(bad); err == nil {
		t.Fatal("merge with altered bounds succeeded, want error")
	}
}

func ExampleTimelineSnapshot_WriteCSV() {
	tl := NewTimeline(4, "instructions", DeltaField("llc_writes"))
	tl.Append(1000, 42)
	tl.Append(2000, 17)
	s := tl.Snapshot()
	var b strings.Builder
	_ = s.WriteCSV(&b)
	fmt.Print(b.String())
	// Output:
	// instructions,llc_writes
	// 1000,42
	// 2000,17
}
