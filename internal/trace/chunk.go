package trace

import "fmt"

// Meta describes a streamed trace before any of its accesses are
// produced: everything the simulator must know up front to reproduce a
// whole-trace run exactly — the instruction budget it spreads over
// threads and the per-thread access counts its per-access instruction
// pacing divides by — without materializing the accesses.
type Meta struct {
	// Name identifies the workload that produces the stream.
	Name string
	// Threads is the number of distinct thread IDs.
	Threads int
	// InstrCount is the number of instructions the trace represents; at
	// least Accesses.
	InstrCount uint64
	// Accesses is the total number of accesses the source will produce.
	Accesses int64
	// PerThread is the per-thread access count (len Threads, summing to
	// Accesses). Callers must treat it as read-only.
	PerThread []int64
}

// Validate checks the stream invariants Trace.Validate checks for
// in-memory traces, minus the per-access ones (those are enforced
// chunk-by-chunk as the stream is consumed).
func (m Meta) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("trace: unnamed stream")
	}
	if m.Threads <= 0 {
		return fmt.Errorf("trace %s: threads = %d, want positive", m.Name, m.Threads)
	}
	if m.Accesses < 0 {
		return fmt.Errorf("trace %s: negative access count %d", m.Name, m.Accesses)
	}
	if m.InstrCount < uint64(m.Accesses) {
		return fmt.Errorf("trace %s: instruction count %d below access count %d", m.Name, m.InstrCount, m.Accesses)
	}
	if len(m.PerThread) != m.Threads {
		return fmt.Errorf("trace %s: per-thread counts len %d, want %d", m.Name, len(m.PerThread), m.Threads)
	}
	var sum int64
	for t, n := range m.PerThread {
		if n < 0 {
			return fmt.Errorf("trace %s: thread %d has negative access count %d", m.Name, t, n)
		}
		sum += n
	}
	if sum != m.Accesses {
		return fmt.Errorf("trace %s: per-thread counts sum to %d, want %d", m.Name, sum, m.Accesses)
	}
	return nil
}

// ChunkSource produces a trace one chunk at a time, so consumers hold
// O(chunk) access memory regardless of trace length. Implementations are
// stateful single-pass iterators: ReadChunk calls must be sequential
// (internal/system issues them from a single generator goroutine,
// overlapping generation of chunk N+1 with simulation of chunk N).
type ChunkSource interface {
	// Meta describes the full trace. It must be constant across the
	// stream's lifetime and callable before, during and after iteration.
	Meta() Meta
	// ReadChunk fills buf with the next accesses in program order and
	// returns how many were written. A return of 0 with a nil error means
	// the stream is exhausted; it must keep returning 0 afterwards.
	ReadChunk(buf []Access) (int, error)
}

// TraceSource adapts an in-memory Trace to a ChunkSource (the
// equivalence tests stream materialized traces through it; callers with
// real traces on disk would implement ChunkSource over the codec
// instead).
type TraceSource struct {
	tr   *Trace
	meta Meta
	pos  int
}

// NewTraceSource validates the trace and computes its per-thread counts.
func NewTraceSource(tr *Trace) (*TraceSource, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	per := make([]int64, tr.Threads)
	for i := range tr.Accesses {
		per[tr.Accesses[i].Tid]++
	}
	return &TraceSource{
		tr: tr,
		meta: Meta{
			Name:       tr.Name,
			Threads:    tr.Threads,
			InstrCount: tr.InstrCount,
			Accesses:   int64(len(tr.Accesses)),
			PerThread:  per,
		},
	}, nil
}

// Meta describes the underlying trace.
func (s *TraceSource) Meta() Meta { return s.meta }

// ReadChunk copies the next window of the trace into buf.
func (s *TraceSource) ReadChunk(buf []Access) (int, error) {
	if len(buf) == 0 {
		return 0, fmt.Errorf("trace %s: ReadChunk with empty buffer", s.meta.Name)
	}
	n := copy(buf, s.tr.Accesses[s.pos:])
	s.pos += n
	return n, nil
}

// Reset rewinds the source to the beginning of the trace.
func (s *TraceSource) Reset() { s.pos = 0 }

// SliceSource adapts a shared, read-only access slice plus its Meta to a
// ChunkSource. Unlike TraceSource it carries no *Trace and performs no
// validation of its own — the engine's trace-sharing layer materializes
// one slice per distinct (workload, options) pair and hands every design
// point its own SliceSource cursor over the same backing array, so the
// slice must not be mutated while any cursor is live. The simulator's
// per-chunk validation still applies to every access read through it.
type SliceSource struct {
	accs []Access
	meta Meta
	pos  int
}

// NewSliceSource wraps a shared access slice. The meta must describe
// exactly the accesses in the slice (same counts and per-thread totals).
func NewSliceSource(meta Meta, accs []Access) (*SliceSource, error) {
	if err := meta.Validate(); err != nil {
		return nil, err
	}
	if int64(len(accs)) != meta.Accesses {
		return nil, fmt.Errorf("trace %s: slice has %d accesses, meta declares %d", meta.Name, len(accs), meta.Accesses)
	}
	return &SliceSource{accs: accs, meta: meta}, nil
}

// Meta describes the shared trace.
func (s *SliceSource) Meta() Meta { return s.meta }

// ReadChunk copies the next window of the shared slice into buf.
func (s *SliceSource) ReadChunk(buf []Access) (int, error) {
	if len(buf) == 0 {
		return 0, fmt.Errorf("trace %s: ReadChunk with empty buffer", s.meta.Name)
	}
	n := copy(buf, s.accs[s.pos:])
	s.pos += n
	return n, nil
}
