package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestTextRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := EncodeText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.Threads != tr.Threads || got.InstrCount != tr.InstrCount {
		t.Errorf("metadata: %+v vs %+v", got, tr)
	}
	for i := range tr.Accesses {
		if got.Accesses[i] != tr.Accesses[i] {
			t.Errorf("access %d: %+v vs %+v", i, got.Accesses[i], tr.Accesses[i])
		}
	}
}

func TestDecodeTextHandWritten(t *testing.T) {
	in := `# a comment
# name=mykernel threads=2 instr=500

R 0 0x1000
w 1 4096
I 0 0x400000
`
	tr, err := DecodeText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "mykernel" || tr.Threads != 2 || tr.InstrCount != 500 {
		t.Errorf("metadata = %+v", tr)
	}
	if len(tr.Accesses) != 3 {
		t.Fatalf("accesses = %d", len(tr.Accesses))
	}
	if tr.Accesses[1].Kind != Write || tr.Accesses[1].Addr != 4096 || tr.Accesses[1].Tid != 1 {
		t.Errorf("decimal-address write parsed as %+v", tr.Accesses[1])
	}
	if tr.Accesses[2].Kind != Ifetch {
		t.Error("ifetch not parsed")
	}
}

func TestDecodeTextInfersMetadata(t *testing.T) {
	tr, err := DecodeText(strings.NewReader("R 0 0x10\nW 3 0x20\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Threads != 4 {
		t.Errorf("inferred threads = %d, want 4 (max tid 3)", tr.Threads)
	}
	if tr.InstrCount != 2 {
		t.Errorf("inferred instr = %d, want 2", tr.InstrCount)
	}
}

func TestDecodeTextErrors(t *testing.T) {
	bad := []string{
		"R 0\n",
		"X 0 0x10\n",
		"R 999 0x10\n",
		"R 0 zzz\n",
	}
	for _, in := range bad {
		if _, err := DecodeText(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestEncodeTextRejectsInvalid(t *testing.T) {
	tr := sampleTrace()
	tr.Threads = 0
	if err := EncodeText(&bytes.Buffer{}, tr); err == nil {
		t.Error("invalid trace accepted")
	}
}
