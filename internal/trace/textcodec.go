package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text trace format — a human-readable/interoperable alternative to the
// binary codec, so traces from other tools (Pin, DynamoRIO, perf scripts)
// can be converted with a one-line awk and fed to the characterizer and
// simulator:
//
//	# nvmllc-trace v1
//	# name=cg threads=4 instr=3000000
//	R 0 0x7f001000
//	W 1 0x7f001040
//	I 0 0x400123
//
// Kind letters: R read, W write, I instruction fetch. Blank lines and
// further # comments are ignored.

// EncodeText writes the trace in the text format.
func EncodeText(w io.Writer, t *Trace) error {
	if err := t.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# nvmllc-trace v1\n# name=%s threads=%d instr=%d\n",
		t.Name, t.Threads, t.InstrCount); err != nil {
		return err
	}
	for _, a := range t.Accesses {
		var k byte
		switch a.Kind {
		case Read:
			k = 'R'
		case Write:
			k = 'W'
		case Ifetch:
			k = 'I'
		default:
			return fmt.Errorf("trace: invalid kind %d", a.Kind)
		}
		if _, err := fmt.Fprintf(bw, "%c %d 0x%x\n", k, a.Tid, a.Addr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeText parses the text format. Metadata defaults: name "trace",
// threads inferred from the largest tid seen, instr = access count.
func DecodeText(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	t := &Trace{Name: "trace"}
	var declaredThreads, declaredInstr uint64
	maxTid := uint8(0)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parseTextHeader(line, t, &declaredThreads, &declaredInstr)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("trace: line %d: want 'KIND TID ADDR', got %q", lineNo, line)
		}
		var kind Kind
		switch fields[0] {
		case "R", "r":
			kind = Read
		case "W", "w":
			kind = Write
		case "I", "i":
			kind = Ifetch
		default:
			return nil, fmt.Errorf("trace: line %d: unknown kind %q", lineNo, fields[0])
		}
		tid, err := strconv.ParseUint(fields[1], 10, 8)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad tid: %v", lineNo, err)
		}
		var addr uint64
		if strings.HasPrefix(fields[2], "0x") || strings.HasPrefix(fields[2], "0X") {
			addr, err = strconv.ParseUint(fields[2][2:], 16, 64)
		} else {
			addr, err = strconv.ParseUint(fields[2], 10, 64)
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad address %q", lineNo, fields[2])
		}
		if uint8(tid) > maxTid {
			maxTid = uint8(tid)
		}
		t.Accesses = append(t.Accesses, Access{Addr: addr, Kind: kind, Tid: uint8(tid)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if declaredThreads > 0 {
		t.Threads = int(declaredThreads)
	} else {
		t.Threads = int(maxTid) + 1
	}
	if declaredInstr > 0 {
		t.InstrCount = declaredInstr
	} else {
		t.InstrCount = uint64(len(t.Accesses))
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// parseTextHeader extracts key=value metadata from a comment line.
func parseTextHeader(line string, t *Trace, threads, instr *uint64) {
	for _, tok := range strings.Fields(strings.TrimPrefix(line, "#")) {
		kv := strings.SplitN(tok, "=", 2)
		if len(kv) != 2 {
			continue
		}
		switch kv[0] {
		case "name":
			t.Name = kv[1]
		case "threads":
			if v, err := strconv.ParseUint(kv[1], 10, 8); err == nil && v > 0 {
				*threads = v
			}
		case "instr":
			if v, err := strconv.ParseUint(kv[1], 10, 64); err == nil {
				*instr = v
			}
		}
	}
}
