package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace format:
//
//	magic "NVMT" | version u8 | name len uvarint | name bytes |
//	instrCount uvarint | threads uvarint | accessCount uvarint |
//	per access: header u8 (kind in bits 0-1, tid in bits 2-7) |
//	            addr zigzag-varint delta from previous address
//
// Address deltas are small for the streaming-heavy workloads this project
// generates, so the encoding is typically 2-4 bytes per access instead
// of 10.

const (
	magic   = "NVMT"
	version = 1
)

var (
	// ErrBadMagic is returned when the input does not start with the trace
	// magic bytes.
	ErrBadMagic = errors.New("trace: bad magic (not a trace file)")
	// ErrBadVersion is returned for an unsupported format version.
	ErrBadVersion = errors.New("trace: unsupported format version")
)

// Encode writes the trace to w in the binary trace format.
func Encode(w io.Writer, t *Trace) error {
	if err := t.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	if err := bw.WriteByte(version); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(t.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	if err := putUvarint(t.InstrCount); err != nil {
		return err
	}
	if err := putUvarint(uint64(t.Threads)); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(t.Accesses))); err != nil {
		return err
	}
	var prev uint64
	for _, a := range t.Accesses {
		hdr := byte(a.Kind) | a.Tid<<2
		if err := bw.WriteByte(hdr); err != nil {
			return err
		}
		delta := int64(a.Addr - prev) // wrapping subtraction; zigzag below
		n := binary.PutVarint(buf[:], delta)
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		prev = a.Addr
	}
	return bw.Flush()
}

// Decode reads a trace previously written by Encode.
func Decode(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic)+1)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(head[:len(magic)]) != magic {
		return nil, ErrBadMagic
	}
	if head[len(magic)] != version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, head[len(magic)])
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w", err)
	}
	const maxName = 4096
	if nameLen > maxName {
		return nil, fmt.Errorf("trace: name length %d exceeds limit %d", nameLen, maxName)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	instr, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading instruction count: %w", err)
	}
	threads, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading thread count: %w", err)
	}
	if threads == 0 || threads > 64 {
		return nil, fmt.Errorf("trace: thread count %d out of range [1,64]", threads)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading access count: %w", err)
	}
	const maxAccesses = 1 << 32
	if count > maxAccesses {
		return nil, fmt.Errorf("trace: access count %d exceeds limit", count)
	}
	t := &Trace{
		Name:       string(name),
		InstrCount: instr,
		Threads:    int(threads),
		Accesses:   make([]Access, 0, count),
	}
	var prev uint64
	for i := uint64(0); i < count; i++ {
		hdr, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: access %d header: %w", i, err)
		}
		kind := Kind(hdr & 3)
		if kind > Ifetch {
			return nil, fmt.Errorf("trace: access %d has invalid kind %d", i, kind)
		}
		delta, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: access %d address: %w", i, err)
		}
		prev += uint64(delta)
		t.Accesses = append(t.Accesses, Access{Addr: prev, Kind: kind, Tid: hdr >> 2})
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
