package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func sampleTrace() *Trace {
	return &Trace{
		Name: "sample",
		Accesses: []Access{
			{Addr: 0x1000, Kind: Read, Tid: 0},
			{Addr: 0x1040, Kind: Write, Tid: 1},
			{Addr: 0x0fff, Kind: Ifetch, Tid: 0},
			{Addr: 0xdeadbeef, Kind: Read, Tid: 1},
		},
		InstrCount: 16,
		Threads:    2,
	}
}

func TestValidateAcceptsGoodTrace(t *testing.T) {
	if err := sampleTrace().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejectsBadTraces(t *testing.T) {
	cases := []struct {
		mutate func(*Trace)
		want   string
	}{
		{func(tr *Trace) { tr.Name = "" }, "unnamed"},
		{func(tr *Trace) { tr.Threads = 0 }, "threads"},
		{func(tr *Trace) { tr.InstrCount = 1 }, "instruction count"},
		{func(tr *Trace) { tr.Accesses[1].Tid = 9 }, "tid"},
		{func(tr *Trace) { tr.Accesses[0].Kind = Kind(5) }, "kind"},
	}
	for i, tc := range cases {
		tr := sampleTrace()
		tc.mutate(tr)
		err := tr.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("case %d: Validate = %v, want error containing %q", i, err, tc.want)
		}
	}
}

func TestCounts(t *testing.T) {
	r, w, f := sampleTrace().Counts()
	if r != 2 || w != 1 || f != 1 {
		t.Errorf("Counts = %d,%d,%d; want 2,1,1", r, w, f)
	}
}

func TestKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" || Ifetch.String() != "ifetch" {
		t.Error("kind names wrong")
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Error("unknown kind should include numeric value")
	}
}

func TestSliceStream(t *testing.T) {
	tr := sampleTrace()
	s := NewSliceStream(tr.Accesses)
	got := Collect(s)
	if len(got) != len(tr.Accesses) {
		t.Fatalf("Collect returned %d accesses, want %d", len(got), len(tr.Accesses))
	}
	for i := range got {
		if got[i] != tr.Accesses[i] {
			t.Errorf("access %d = %+v, want %+v", i, got[i], tr.Accesses[i])
		}
	}
	if _, ok := s.Next(); ok {
		t.Error("exhausted stream returned ok")
	}
	s.Reset()
	if a, ok := s.Next(); !ok || a != tr.Accesses[0] {
		t.Error("Reset did not rewind")
	}
}

func TestFilterKind(t *testing.T) {
	tr := sampleTrace()
	reads := FilterKind(tr.Accesses, Read)
	if len(reads) != 2 {
		t.Fatalf("FilterKind(Read) len = %d, want 2", len(reads))
	}
	for _, a := range reads {
		if a.Kind != Read {
			t.Errorf("filtered access has kind %v", a.Kind)
		}
	}
}

func TestSplitByThread(t *testing.T) {
	tr := sampleTrace()
	parts, err := SplitByThread(tr.Accesses, tr.Threads)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 {
		t.Fatalf("SplitByThread returned %d parts", len(parts))
	}
	if len(parts[0]) != 2 || len(parts[1]) != 2 {
		t.Errorf("part sizes = %d,%d; want 2,2", len(parts[0]), len(parts[1]))
	}
	// Order within each thread preserved.
	if parts[0][0].Addr != 0x1000 || parts[0][1].Addr != 0x0fff {
		t.Error("thread 0 order not preserved")
	}
}

// TestSplitByThreadRejectsOutOfRangeTid: a tid ≥ threads must be an
// error, not a silently dropped access.
func TestSplitByThreadRejectsOutOfRangeTid(t *testing.T) {
	accs := []Access{{Addr: 0x40, Tid: 0}, {Addr: 0x80, Tid: 3}}
	if _, err := SplitByThread(accs, 2); err == nil {
		t.Fatal("SplitByThread accepted tid 3 with 2 threads")
	}
	if _, err := SplitByThread(accs, 0); err == nil {
		t.Fatal("SplitByThread accepted 0 threads")
	}
}

// TestSplitByThreadIntoReusesBuffers: the second split with the same
// scratch must not grow the buffers and must produce the same partitions.
func TestSplitByThreadIntoReusesBuffers(t *testing.T) {
	tr := sampleTrace()
	var buf []Access
	var parts [][]Access
	first, err := SplitByThreadInto(tr.Accesses, tr.Threads, &buf, &parts)
	if err != nil {
		t.Fatal(err)
	}
	bufCap, partsCap := cap(buf), cap(parts)
	want := make([][]Access, len(first))
	for i := range first {
		want[i] = append([]Access(nil), first[i]...)
	}
	second, err := SplitByThreadInto(tr.Accesses, tr.Threads, &buf, &parts)
	if err != nil {
		t.Fatal(err)
	}
	if cap(buf) != bufCap || cap(parts) != partsCap {
		t.Errorf("buffers grew on reuse: cap(buf) %d→%d, cap(parts) %d→%d",
			bufCap, cap(buf), partsCap, cap(parts))
	}
	for i := range want {
		if len(second[i]) != len(want[i]) {
			t.Fatalf("thread %d: %d accesses on reuse, want %d", i, len(second[i]), len(want[i]))
		}
		for j := range want[i] {
			if second[i][j] != want[i][j] {
				t.Fatalf("thread %d access %d differs on reuse", i, j)
			}
		}
	}
}

func TestCodecRoundTripSample(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Name != tr.Name || got.InstrCount != tr.InstrCount || got.Threads != tr.Threads {
		t.Errorf("metadata mismatch: %+v vs %+v", got, tr)
	}
	if len(got.Accesses) != len(tr.Accesses) {
		t.Fatalf("access count %d, want %d", len(got.Accesses), len(tr.Accesses))
	}
	for i := range got.Accesses {
		if got.Accesses[i] != tr.Accesses[i] {
			t.Errorf("access %d: %+v, want %+v", i, got.Accesses[i], tr.Accesses[i])
		}
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%500) + 1
		tr := &Trace{Name: "prop", Threads: 4, InstrCount: uint64(count) * 3}
		for i := 0; i < count; i++ {
			tr.Accesses = append(tr.Accesses, Access{
				Addr: rng.Uint64(),
				Kind: Kind(rng.Intn(3)),
				Tid:  uint8(rng.Intn(4)),
			})
		}
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		if len(got.Accesses) != len(tr.Accesses) {
			return false
		}
		for i := range got.Accesses {
			if got.Accesses[i] != tr.Accesses[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestCodecCompression(t *testing.T) {
	// Sequential streaming accesses should encode far below 10 bytes each.
	tr := &Trace{Name: "stream", Threads: 1, InstrCount: 10000}
	for i := 0; i < 10000; i++ {
		tr.Accesses = append(tr.Accesses, Access{Addr: uint64(0x10000 + 64*i), Kind: Read})
	}
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	perAccess := float64(buf.Len()) / float64(len(tr.Accesses))
	if perAccess > 4 {
		t.Errorf("sequential encoding uses %.1f bytes/access, want ≤ 4", perAccess)
	}
}

func TestDecodeRejectsCorruptInput(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("XXXX\x01"),
		"bad version": []byte("NVMT\x09"),
		"truncated":   []byte("NVMT\x01\x05samp"),
	}
	for name, data := range cases {
		if _, err := Decode(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: Decode succeeded on corrupt input", name)
		}
	}
}

func TestDecodeRejectsTruncatedAccessStream(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Decode(bytes.NewReader(data[:len(data)-2])); err == nil {
		t.Error("Decode succeeded on truncated access stream")
	}
}

func TestEncodeRejectsInvalidTrace(t *testing.T) {
	tr := sampleTrace()
	tr.Threads = 0
	if err := Encode(&bytes.Buffer{}, tr); err == nil {
		t.Error("Encode accepted invalid trace")
	}
}

// failingWriter errors after n bytes, to exercise Encode error paths.
type failingWriter struct{ n int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errFail
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, errFail
	}
	w.n -= len(p)
	return len(p), nil
}

var errFail = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "synthetic write failure" }

func TestEncodeWriteFailures(t *testing.T) {
	tr := sampleTrace()
	// The sample trace encodes to ~30 bytes; sweep failure points strictly
	// inside it so every write site is exercised.
	var full bytes.Buffer
	if err := Encode(&full, tr); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < full.Len(); n += 3 {
		if err := Encode(&failingWriter{n: n}, tr); err == nil {
			t.Errorf("Encode succeeded with writer failing after %d bytes", n)
		}
	}
}

func TestDecodeRejectsOversizedDeclarations(t *testing.T) {
	// Hand-craft headers declaring absurd sizes.
	mk := func(nameLen, threads uint64) []byte {
		var buf bytes.Buffer
		buf.WriteString("NVMT\x01")
		var tmp [10]byte
		n := putUvarintHelper(tmp[:], nameLen)
		buf.Write(tmp[:n])
		for i := uint64(0); i < nameLen && i < 10; i++ {
			buf.WriteByte('a')
		}
		n = putUvarintHelper(tmp[:], 100) // instr
		buf.Write(tmp[:n])
		n = putUvarintHelper(tmp[:], threads)
		buf.Write(tmp[:n])
		return buf.Bytes()
	}
	if _, err := Decode(bytes.NewReader(mk(1<<20, 1))); err == nil {
		t.Error("huge name length accepted")
	}
	if _, err := Decode(bytes.NewReader(mk(4, 9999))); err == nil {
		t.Error("huge thread count accepted")
	}
}

func putUvarintHelper(buf []byte, v uint64) int {
	i := 0
	for v >= 0x80 {
		buf[i] = byte(v) | 0x80
		v >>= 7
		i++
	}
	buf[i] = byte(v)
	return i + 1
}
