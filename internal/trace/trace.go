// Package trace defines memory-access traces: the interchange format
// between the synthetic workload generators (internal/workload), the
// PRISM-style characterization framework (internal/prism), and the
// full-system simulator (internal/system).
//
// A trace is a sequence of Access records in program order. Traces can be
// held in memory (Trace), streamed (Stream/Reader), and serialized with a
// compact delta-encoded binary codec (Writer/Reader).
package trace

import "fmt"

// Kind is the access type.
type Kind uint8

const (
	// Read is a data load.
	Read Kind = iota
	// Write is a data store.
	Write
	// Ifetch is an instruction fetch.
	Ifetch
)

// String names the kind ("read", "write", "ifetch").
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case Ifetch:
		return "ifetch"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Access is one memory reference.
type Access struct {
	// Addr is the virtual byte address.
	Addr uint64
	// Kind is the access type.
	Kind Kind
	// Tid is the issuing thread ID.
	Tid uint8
}

// Trace is an in-memory access sequence plus the instruction count of the
// region it represents (used for MPKI and CPI computations: synthetic
// generators emit a memory trace standing for InstrCount executed
// instructions).
type Trace struct {
	// Name identifies the workload that produced the trace.
	Name string
	// Accesses is the access sequence in program order.
	Accesses []Access
	// InstrCount is the number of instructions the trace represents; at
	// least len(Accesses).
	InstrCount uint64
	// Threads is the number of distinct thread IDs (1 for single-threaded).
	Threads int
}

// Validate checks trace invariants.
func (t *Trace) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("trace: unnamed trace")
	}
	if t.Threads <= 0 {
		return fmt.Errorf("trace %s: threads = %d, want positive", t.Name, t.Threads)
	}
	if t.InstrCount < uint64(len(t.Accesses)) {
		return fmt.Errorf("trace %s: instruction count %d below access count %d", t.Name, t.InstrCount, len(t.Accesses))
	}
	for i, a := range t.Accesses {
		if int(a.Tid) >= t.Threads {
			return fmt.Errorf("trace %s: access %d has tid %d ≥ threads %d", t.Name, i, a.Tid, t.Threads)
		}
		if a.Kind > Ifetch {
			return fmt.Errorf("trace %s: access %d has invalid kind %d", t.Name, i, a.Kind)
		}
	}
	return nil
}

// Counts tallies the accesses by kind.
func (t *Trace) Counts() (reads, writes, ifetches uint64) {
	for _, a := range t.Accesses {
		switch a.Kind {
		case Read:
			reads++
		case Write:
			writes++
		case Ifetch:
			ifetches++
		}
	}
	return
}

// Stream is an access iterator. Implementations return one access at a
// time; ok is false when the stream is exhausted.
type Stream interface {
	Next() (a Access, ok bool)
}

// SliceStream adapts an in-memory access slice to a Stream.
type SliceStream struct {
	accesses []Access
	pos      int
}

// NewSliceStream returns a Stream over the slice.
func NewSliceStream(a []Access) *SliceStream { return &SliceStream{accesses: a} }

// Next returns the next access.
func (s *SliceStream) Next() (Access, bool) {
	if s.pos >= len(s.accesses) {
		return Access{}, false
	}
	a := s.accesses[s.pos]
	s.pos++
	return a, true
}

// Reset rewinds the stream to the beginning.
func (s *SliceStream) Reset() { s.pos = 0 }

// Collect drains a stream into a slice.
func Collect(s Stream) []Access {
	var out []Access
	for {
		a, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
}

// FilterKind returns the accesses of the given kind.
func FilterKind(accesses []Access, k Kind) []Access {
	var out []Access
	for _, a := range accesses {
		if a.Kind == k {
			out = append(out, a)
		}
	}
	return out
}

// SplitByThread partitions accesses by thread ID, preserving order
// within each thread. An access whose Tid is out of range is an error
// (it would silently corrupt the per-thread streams); Trace.Validate
// catches the same condition earlier for whole traces.
func SplitByThread(accesses []Access, threads int) ([][]Access, error) {
	var buf []Access
	var parts [][]Access
	return SplitByThreadInto(accesses, threads, &buf, &parts)
}

// SplitByThreadInto is SplitByThread reusing caller-provided buffers:
// buf is the backing array every partition is carved from and parts the
// slice-header array, both grown only when too small. In steady state
// (repeated splits of same-or-smaller traces) it does not allocate. The
// returned partitions alias *buf, so a later call with the same buffers
// invalidates them.
func SplitByThreadInto(accesses []Access, threads int, buf *[]Access, parts *[][]Access) ([][]Access, error) {
	if threads <= 0 {
		return nil, fmt.Errorf("trace: split into %d threads, want positive", threads)
	}
	// Counting pass so each partition is exactly sized. The counts live
	// on the stack for the simulator's 1..64-core range.
	var countsArr [64]int
	var counts []int
	if threads <= len(countsArr) {
		counts = countsArr[:threads]
	} else {
		counts = make([]int, threads)
	}
	for i := range accesses {
		tid := int(accesses[i].Tid)
		if tid >= threads {
			return nil, fmt.Errorf("trace: access %d has tid %d ≥ threads %d", i, tid, threads)
		}
		counts[tid]++
	}
	backing := *buf
	if cap(backing) < len(accesses) {
		backing = make([]Access, len(accesses))
		*buf = backing
	}
	out := *parts
	if cap(out) < threads {
		out = make([][]Access, threads)
		*parts = out
	}
	out = out[:threads]
	// Carve zero-length, exactly-capped windows out of the backing array;
	// the fill pass appends within capacity and never reallocates.
	off := 0
	for t := 0; t < threads; t++ {
		out[t] = backing[off : off : off+counts[t]]
		off += counts[t]
	}
	for _, a := range accesses {
		out[a.Tid] = append(out[a.Tid], a)
	}
	return out, nil
}
