package sweep

import (
	"context"
	"fmt"

	"nvmllc/internal/cache"
	"nvmllc/internal/engine"
	"nvmllc/internal/reference"
	"nvmllc/internal/system"
	"nvmllc/internal/workload"
)

// AblationRow is one design-point measurement for the ablation suite.
type AblationRow struct {
	// Name labels the design point.
	Name string
	// TimeMS, DynEnergyMJ and TotalEnergyMJ are absolute measurements.
	TimeMS, DynEnergyMJ, TotalEnergyMJ float64
	// LLCWrites counts LLC data-array writes.
	LLCWrites uint64
	// Hits counts LLC demand hits.
	Hits uint64
}

// AblationSuite evaluates every modeled design lever on one (workload,
// NVM) pair: the DESIGN.md ablations in one table. The baseline is the
// paper's configuration (LRU, writes off the critical path, no bypass,
// pure NVM LLC).
func AblationSuite(ctx context.Context, workloadName, llcName string, cfg Config) ([]AblationRow, error) {
	ctx, span := cfg.startSpan(ctx, "ablation", "workload", workloadName, "llc", llcName)
	defer span.End()
	model, err := reference.ModelByName(reference.FixedCapacityModels(), llcName)
	if err != nil {
		return nil, err
	}
	p, err := workload.ByName(workloadName)
	if err != nil {
		return nil, err
	}
	tr, err := workload.Generate(p, cfg.Opts)
	if err != nil {
		return nil, err
	}
	eng := cfg.engineOrNew()

	points := []struct {
		name   string
		mutate func(*system.Config)
	}{
		{"baseline (paper config)", nil},
		{"writes on critical path", func(c *system.Config) { c.ModelWriteContention = true }},
		{"SRRIP replacement", func(c *system.Config) { c.LLCPolicy = cache.SRRIP }},
		{"random replacement", func(c *system.Config) { c.LLCPolicy = cache.Random }},
		{"dead-block bypass", func(c *system.Config) { c.LLCBypass = system.BypassDeadBlock }},
		{"hybrid 4×SRAM ways", func(c *system.Config) {
			c.Hybrid = &system.HybridConfig{
				SRAM: reference.SRAMBaseline(), NVM: model, SRAMWays: 4,
			}
		}},
		{"coherence off", func(c *system.Config) { c.DisableCoherence = true }},
	}

	rows := make([]AblationRow, 0, len(points))
	for _, pt := range points {
		sysCfg := system.Gainestown(model)
		if pt.mutate != nil {
			pt.mutate(&sysCfg)
		}
		r, err := eng.Run(ctx, engine.Job{
			Workload:  workloadName,
			TraceOpts: cfg.Opts,
			Config:    sysCfg,
			Trace:     tr,
		})
		if err != nil {
			return nil, fmt.Errorf("sweep: ablation %q: %w", pt.name, err)
		}
		rows = append(rows, AblationRow{
			Name:          pt.name,
			TimeMS:        r.TimeNS / 1e6,
			DynEnergyMJ:   r.LLCDynamicJ * 1e3,
			TotalEnergyMJ: r.LLCEnergyJ() * 1e3,
			LLCWrites:     r.LLC.Writes,
			Hits:          r.LLC.Hits,
		})
	}
	return rows, nil
}
