package sweep

// Time-resolved phase study: the paper's LLC designs replayed with
// epoch sampling on, so the per-phase behavior a single end-of-run
// aggregate hides — write bursts, MPKI swings, spatial wear skew —
// becomes a table. The companion of the degradation artifact: where
// that asks "what is the cache worth after N years", this asks "which
// phases of the workload age it".

import (
	"context"
	"fmt"

	"nvmllc/internal/engine"
	"nvmllc/internal/reference"
	"nvmllc/internal/system"
	"nvmllc/internal/tablefmt"
	"nvmllc/internal/telemetry"
	"nvmllc/internal/workload"
)

// TimelineOptions parameterizes the study; the zero value selects the
// defaults (workload "is" — the most write-intensive NAS kernel — on
// one LLC per wearing NVM class plus the SRAM control, the degradation
// artifact's set).
type TimelineOptions struct {
	// Workload is the trace replayed per LLC (default "is").
	Workload string
	// LLCs are the fixed-capacity models to sample (default Kang_P,
	// Chung_S, SRAM).
	LLCs []string
	// Points bounds the retained epochs per design
	// (default system.DefaultTimelinePoints).
	Points int
}

// DesignTimeline is one LLC's sampled run.
type DesignTimeline struct {
	// LLC names the model.
	LLC string
	// Timeline is the per-epoch series; Phases its condensed summary.
	Timeline *telemetry.TimelineSnapshot
	Phases   *system.PhaseStats
	// Wear carries the end-of-run wear statistics (per-set CoV/Gini
	// included); Heatmap the per-set writes×accesses grid.
	Wear    *system.WearStats
	Heatmap *telemetry.Heatmap
	// Result is the full simulation outcome, for programmatic consumers.
	Result *system.Result
}

// TimelineStudy is the artifact: one sampled design per LLC over the
// same workload, so their phase structures line up epoch for epoch.
type TimelineStudy struct {
	Workload string
	Designs  []DesignTimeline
}

// Timeline runs the study through the engine: wear-tracked, epoch-
// sampled jobs, one per LLC. The cache key excludes sampling, and the
// engine upgrades any cached timeline-less results, so the study
// composes with prior sweeps on a shared engine.
func Timeline(ctx context.Context, cfg Config, opts TimelineOptions) (*TimelineStudy, error) {
	if opts.Workload == "" {
		opts.Workload = "is"
	}
	if len(opts.LLCs) == 0 {
		opts.LLCs = []string{"Kang_P", "Chung_S", "SRAM"}
	}
	ctx, span := cfg.startSpan(ctx, "timeline", "workload", opts.Workload)
	defer span.End()

	p, err := workload.ByName(opts.Workload)
	if err != nil {
		return nil, err
	}
	tr, err := workload.Generate(p, cfg.Opts)
	if err != nil {
		return nil, err
	}
	models := reference.FixedCapacityModels()
	eng := cfg.engineOrNew()

	jobs := make([]engine.Job, 0, len(opts.LLCs))
	for _, name := range opts.LLCs {
		model, err := reference.ModelByName(models, name)
		if err != nil {
			return nil, err
		}
		sysCfg := system.Gainestown(model)
		sysCfg.ModelWriteContention = cfg.WriteContention
		sysCfg.TrackWear = true
		sysCfg.Timeline = &system.TimelineConfig{Points: opts.Points}
		jobs = append(jobs, engine.Job{
			Workload:  opts.Workload,
			TraceOpts: cfg.Opts,
			Config:    sysCfg,
			Trace:     tr,
		})
	}
	results, err := eng.RunAll(ctx, jobs)
	if err != nil {
		return nil, err
	}

	study := &TimelineStudy{Workload: opts.Workload}
	for i, name := range opts.LLCs {
		r := results[i]
		if r == nil || r.Timeline == nil {
			return nil, fmt.Errorf("sweep: timeline run for %s produced no timeline", name)
		}
		study.Designs = append(study.Designs, DesignTimeline{
			LLC:      name,
			Timeline: r.Timeline,
			Phases:   r.Phases(),
			Wear:     r.Wear,
			Heatmap:  r.WearHeatmap,
			Result:   r,
		})
	}
	return study, nil
}

// runTimelineArtifact is the registry entry point.
func runTimelineArtifact(ctx context.Context, cfg Config) (*ArtifactResult, error) {
	study, err := Timeline(ctx, cfg, TimelineOptions{})
	if err != nil {
		return nil, err
	}
	return &ArtifactResult{Value: study, Renderers: timelineRenderers(study)}, nil
}

// timelineRenderers prints the phase summary across designs, a shared
// per-epoch write/MPKI table (every design samples the same instruction
// boundaries, so the epochs line up), and one per-set wear band heatmap
// per design.
func timelineRenderers(study *TimelineStudy) []Renderer {
	var out []Renderer

	summary := tablefmt.New(
		fmt.Sprintf("Time-resolved phase summary: %s", study.Workload),
		"LLC", "epochs", "LLC writes", "write-rate CoV", "peak/mean wear",
		"set-write CoV", "set Gini", "MPKI min..max")
	for _, d := range study.Designs {
		ph := d.Phases
		if ph == nil {
			continue
		}
		var setCoV, setGini float64
		var totalWrites uint64
		if d.Wear != nil {
			setCoV, setGini = d.Wear.SetWriteCoV, d.Wear.SetWriteGini
			totalWrites = d.Wear.TotalWrites
		}
		summary.AddRowf(d.LLC, ph.Epochs, totalWrites, ph.WriteRateCoV, ph.PeakToMeanWear,
			setCoV, setGini, fmt.Sprintf("%.2f..%.2f", ph.MPKIMin, ph.MPKIMax))
	}
	out = append(out, summary)

	out = append(out,
		epochTable(study, "LLC writes per epoch", system.TimelineLLCWrites, false),
		epochTable(study, "LLC MPKI per epoch", system.TimelineLLCMisses, true))

	for _, d := range study.Designs {
		if hm := bandHeatmap(d); hm != nil {
			out = append(out, hm)
		}
	}
	return out
}

// epochRenderRows bounds the rendered per-epoch tables; the full
// resolution stays in the study value and the CSV export.
const epochRenderRows = 16

// epochTable builds a rows=epochs × cols=LLCs table of the named delta
// series, downsampled for the terminal. asMPKI divides by the epoch's
// instruction width ×1000.
func epochTable(study *TimelineStudy, title, field string, asMPKI bool) Renderer {
	headers := []string{"instructions"}
	type col struct {
		series []float64
		x      []uint64
	}
	cols := make([]col, 0, len(study.Designs))
	for _, d := range study.Designs {
		headers = append(headers, d.LLC)
		ds := d.Timeline.Downsample(epochRenderRows)
		cols = append(cols, col{series: ds.SeriesOf(field), x: ds.X})
	}
	t := tablefmt.New(fmt.Sprintf("%s: %s", title, study.Workload), headers...)
	if len(cols) == 0 || len(cols[0].x) == 0 {
		return t
	}
	for i := range cols[0].x {
		row := make([]interface{}, 0, len(headers))
		row = append(row, cols[0].x[i])
		for _, c := range cols {
			if i >= len(c.series) {
				row = append(row, "")
				continue
			}
			v := c.series[i]
			if asMPKI {
				prev := uint64(0)
				if i > 0 {
					prev = c.x[i-1]
				}
				if width := float64(c.x[i] - prev); width > 0 {
					v = v / width * 1000
				}
			}
			row = append(row, v)
		}
		t.AddRowf(row...)
	}
	return t
}

// bandHeatmapRows is the rendered set-band count per design.
const bandHeatmapRows = 8

// bandHeatmap folds a design's per-set grid into bands and renders it
// as a tablefmt heatmap (nil when the design has no grid — SRAM still
// has one, wear tracking is technology-agnostic).
func bandHeatmap(d DesignTimeline) Renderer {
	if d.Heatmap == nil || d.Heatmap.Rows == 0 {
		return nil
	}
	bands := d.Heatmap.Downsample(bandHeatmapRows)
	setsPerBand := (d.Heatmap.Rows + bands.Rows - 1) / bands.Rows
	hm := &tablefmt.Heatmap{
		Title:    fmt.Sprintf("Per-set wear bands: %s (%d sets per band)", d.LLC, setsPerBand),
		ColNames: bands.Cols,
	}
	for r := 0; r < bands.Rows; r++ {
		hm.RowNames = append(hm.RowNames, fmt.Sprintf("sets %d-%d", r*setsPerBand, min((r+1)*setsPerBand, d.Heatmap.Rows)-1))
		row := make([]float64, len(bands.Cols))
		for c := range bands.Cols {
			row[c] = bands.At(r, c)
		}
		hm.Cells = append(hm.Cells, row)
	}
	return hm
}
