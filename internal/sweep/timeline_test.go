package sweep

import (
	"context"
	"strings"
	"testing"

	"nvmllc/internal/system"
	"nvmllc/internal/workload"
)

func timelineTestCfg() Config {
	return Config{Opts: workload.Options{Accesses: 15000, Seed: 3}}
}

// TestTimelineStudy is the artifact's acceptance property: every
// design's per-epoch wear_writes series sums EXACTLY (integer counts
// below 2^53 — no epsilon) to its end-of-run WearStats.TotalWrites, and
// the phase summaries are populated.
func TestTimelineStudy(t *testing.T) {
	study, err := Timeline(context.Background(), timelineTestCfg(), TimelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if study.Workload != "is" {
		t.Errorf("default workload %q", study.Workload)
	}
	if len(study.Designs) != 3 {
		t.Fatalf("%d designs, want Kang_P + Chung_S + SRAM", len(study.Designs))
	}
	for _, d := range study.Designs {
		if d.Timeline == nil || d.Phases == nil || d.Wear == nil || d.Heatmap == nil {
			t.Fatalf("%s: incomplete design %+v", d.LLC, d)
		}
		if got, want := d.Timeline.Sum(system.TimelineWearWrites), float64(d.Wear.TotalWrites); got != want {
			t.Errorf("%s: per-epoch wear writes sum to %v, want exactly %v", d.LLC, got, want)
		}
		if got, want := d.Timeline.Sum(system.TimelineLLCWrites), float64(d.Result.LLC.Writes); got != want {
			t.Errorf("%s: per-epoch LLC writes sum to %v, want exactly %v", d.LLC, got, want)
		}
		if d.Phases.Epochs == 0 || d.Phases.PeakToMeanWear < 1 {
			t.Errorf("%s: implausible phases %+v", d.LLC, d.Phases)
		}
		if got, want := d.Heatmap.ColSum(0), float64(d.Wear.TotalWrites); got != want {
			t.Errorf("%s: heatmap writes column %v, want %v", d.LLC, got, want)
		}
	}
	// All designs replay one trace, so their epoch boundaries line up.
	ref := study.Designs[0].Timeline.X
	for _, d := range study.Designs[1:] {
		if len(d.Timeline.X) != len(ref) {
			t.Errorf("%s: %d epochs vs %d — designs must share boundaries", d.LLC, len(d.Timeline.X), len(ref))
			continue
		}
		for i := range ref {
			if d.Timeline.X[i] != ref[i] {
				t.Errorf("%s: epoch %d ends at %d, reference at %d", d.LLC, i, d.Timeline.X[i], ref[i])
				break
			}
		}
	}
}

// TestTimelineArtifact drives the registry entry end to end and checks
// the rendered output carries the summary, epoch tables and wear bands.
func TestTimelineArtifact(t *testing.T) {
	res, err := Run(context.Background(), "timeline", timelineTestCfg())
	if err != nil {
		t.Fatal(err)
	}
	study, ok := res.Value.(*TimelineStudy)
	if !ok {
		t.Fatalf("value type %T", res.Value)
	}
	// summary + 2 epoch tables + one heatmap per design
	if want := 3 + len(study.Designs); len(res.Renderers) != want {
		t.Fatalf("%d renderers, want %d", len(res.Renderers), want)
	}
	var sb strings.Builder
	for _, r := range res.Renderers {
		if err := r.Render(&sb); err != nil {
			t.Fatal(err)
		}
	}
	out := sb.String()
	for _, want := range []string{
		"Time-resolved phase summary", "write-rate CoV", "set Gini",
		"LLC writes per epoch", "LLC MPKI per epoch",
		"Per-set wear bands: Kang_P", "Per-set wear bands: SRAM",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}

// TestTimelineUnknownInputs checks input validation surfaces cleanly.
func TestTimelineUnknownInputs(t *testing.T) {
	if _, err := Timeline(context.Background(), timelineTestCfg(), TimelineOptions{Workload: "nope"}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := Timeline(context.Background(), timelineTestCfg(), TimelineOptions{LLCs: []string{"nope"}}); err == nil {
		t.Error("unknown LLC accepted")
	}
}

// TestTimelineSharesEngineCache replays the study on an engine that
// already answered the same design points unsampled: the cache upgrade
// must transparently re-simulate, and a second study then rides the
// enriched cache.
func TestTimelineSharesEngineCache(t *testing.T) {
	cfg := timelineTestCfg()
	eng := cfg.engineOrNew()
	cfg.Engine = eng

	// Prime the cache with unsampled runs of the same jobs.
	if _, err := Degradation(context.Background(), cfg, DegradationOptions{}); err != nil {
		t.Fatal(err)
	}
	study, err := Timeline(context.Background(), cfg, TimelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range study.Designs {
		if d.Timeline == nil {
			t.Fatalf("%s: cached unsampled result served without upgrade", d.LLC)
		}
	}
	before := eng.Stats().Simulated
	again, err := Timeline(context.Background(), cfg, TimelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats().Simulated; got != before {
		t.Errorf("second study simulated %d more jobs; upgraded entries should hit", got-before)
	}
	for i, d := range again.Designs {
		if d.Timeline.Sum(system.TimelineLLCWrites) != study.Designs[i].Timeline.Sum(system.TimelineLLCWrites) {
			t.Errorf("%s: cached study diverged", d.LLC)
		}
	}
}
