package sweep

import (
	"context"
	"testing"
)

func TestPredictionStudy(t *testing.T) {
	study, err := Predict(context.Background(), testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// 3 NVMs × 3 AI workloads.
	if len(study.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(study.Rows))
	}
	for _, r := range study.Rows {
		if r.Feature == "" {
			t.Errorf("%s/%s: no feature selected", r.LLC, r.Workload)
		}
		if r.Simulated <= 0 {
			t.Errorf("%s/%s: non-positive simulated energy", r.LLC, r.Workload)
		}
		if r.RelErr < 0 {
			t.Errorf("%s/%s: negative error", r.LLC, r.Workload)
		}
	}
	if study.MeanRelErr <= 0 {
		t.Error("zero mean error is implausible for cross-domain prediction")
	}
	// The learned models should land in the right order of magnitude: a
	// mean relative error under 300% still tells a designer which NVMs are
	// in contention before any AI workload is ported.
	if study.MeanRelErr > 3 {
		t.Errorf("mean relative error %.2f, want ≤ 3", study.MeanRelErr)
	}
}
