package sweep

import (
	"context"
	"fmt"

	"nvmllc/internal/charfw"
	"nvmllc/internal/reference"
	"nvmllc/internal/workload"
)

// PredictionRow compares a learned model's estimate against simulation for
// one (NVM, workload) pair.
type PredictionRow struct {
	LLC, Workload string
	// Feature is the predictor feature the model selected for this NVM.
	Feature string
	// Predicted and Simulated are SRAM-normalized LLC energies.
	Predicted, Simulated float64
	// RelErr is |predicted-simulated|/simulated.
	RelErr float64
}

// PredictionStudy is the framework-as-a-designer's-tool exercise: learn
// energy models on the 13 non-AI characterized workloads, then predict the
// three AI workloads sight-unseen — emulating the paper's Section VI
// scenario of choosing an LLC technology for a statistical-inference
// architecture before porting its workloads to the simulator.
type PredictionStudy struct {
	Rows []PredictionRow
	// MeanRelErr aggregates prediction quality.
	MeanRelErr float64
}

// Predict runs the study over the paper's best NVMs at fixed capacity.
func Predict(ctx context.Context, cfg Config) (*PredictionStudy, error) {
	all := workload.CharacterizedNames()
	ai := map[string]bool{}
	for _, n := range workload.AINames() {
		ai[n] = true
	}
	var train, test []string
	for _, n := range all {
		if ai[n] {
			test = append(test, n)
		} else {
			train = append(train, n)
		}
	}
	if len(test) == 0 || len(train) < 3 {
		return nil, fmt.Errorf("sweep: bad train/test split (%d/%d)", len(train), len(test))
	}

	// One sweep over all characterized workloads provides both training
	// targets and test ground truth.
	fig, err := RunFigure(ctx, "predict", reference.FixedCapacityModels(), all, cfg)
	if err != nil {
		return nil, err
	}
	fw := charfw.FromFeatureMap(reference.PaperFeatures())

	study := &PredictionStudy{}
	var sumErr float64
	for _, nvmName := range reference.BestNVMs {
		values := map[string]float64{}
		for _, w := range all {
			_, en, _, err := fig.Cell(w, nvmName)
			if err != nil {
				return nil, err
			}
			values[w] = en
		}
		p, err := fw.TrainPredictor(ctx, train, "energy", values)
		if err != nil {
			return nil, fmt.Errorf("sweep: training %s: %w", nvmName, err)
		}
		paper := reference.PaperFeatures()
		for _, w := range test {
			pred := p.Predict(paper[w])
			sim := values[w]
			relErr := 0.0
			if sim != 0 {
				relErr = abs(pred-sim) / sim
			}
			study.Rows = append(study.Rows, PredictionRow{
				LLC: nvmName, Workload: w, Feature: p.Feature,
				Predicted: pred, Simulated: sim, RelErr: relErr,
			})
			sumErr += relErr
		}
	}
	if n := len(study.Rows); n > 0 {
		study.MeanRelErr = sumErr / float64(n)
	}
	return study, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
