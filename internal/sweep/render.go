package sweep

// Renderer builders for the artifact registry. These are the print
// bodies that used to live in cmd/figures, moved behind the registry so
// every CLI renders an artifact identically.

import (
	"context"
	"fmt"
	"io"

	"nvmllc/internal/tablefmt"
	"nvmllc/internal/workload"
)

func figureArtifact(gen func(context.Context, Config) (*FigureResult, error)) func(context.Context, Config) (*ArtifactResult, error) {
	return func(ctx context.Context, cfg Config) (*ArtifactResult, error) {
		fig, err := gen(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return &ArtifactResult{Value: fig, Renderers: figureRenderers(fig)}, nil
	}
}

// figureRenderers renders one bar-chart figure as three tables (speedup,
// LLC energy, ED²P), each normalized to SRAM = 1.
func figureRenderers(fig *FigureResult) []Renderer {
	blocks := []struct {
		name string
		data [][]float64
	}{
		{"normalized speedup", fig.Speedup},
		{"normalized LLC energy", fig.Energy},
		{"normalized ED2P", fig.ED2P},
	}
	var tables []Renderer
	for _, b := range blocks {
		t := tablefmt.New(fmt.Sprintf("%s — %s (SRAM = 1.0)", fig.Title, b.name),
			append([]string{"workload"}, fig.LLCs...)...)
		for wi, w := range fig.Workloads {
			row := []interface{}{w}
			for _, v := range b.data[wi] {
				row = append(row, v)
			}
			t.AddRowf(row...)
		}
		tables = append(tables, t)
	}
	return tables
}

func runCoreSweepArtifact(ctx context.Context, cfg Config) (*ArtifactResult, error) {
	out := &ArtifactResult{}
	results := map[string]*CoreSweepResult{}
	for _, name := range CoreSweepWorkloads {
		res, err := CoreSweep(ctx, name, DefaultCoreCounts, cfg)
		if err != nil {
			return nil, err
		}
		results[name] = res
		out.Renderers = append(out.Renderers, CoreSweepRenderers(name, res)...)
	}
	out.Value = results
	return out, nil
}

// CoreSweepRenderers renders one workload's core sweep as speedup and
// LLC-energy tables; exported so CLIs can sweep a single workload
// without running the whole coresweep artifact.
func CoreSweepRenderers(name string, res *CoreSweepResult) []Renderer {
	var out []Renderer
	for _, block := range []struct {
		label string
		data  [][]float64
	}{{"speedup", res.Speedup}, {"LLC energy", res.Energy}} {
		t := tablefmt.New(
			fmt.Sprintf("Core sweep (%s, %s, normalized to 1-core SRAM)", name, block.label),
			append([]string{"cores"}, res.LLCs...)...)
		for ci, n := range res.Cores {
			row := []interface{}{fmt.Sprintf("%d", n)}
			for _, v := range block.data[ci] {
				row = append(row, v)
			}
			t.AddRowf(row...)
		}
		out = append(out, t)
	}
	return out
}

func runTableVArtifact(ctx context.Context, cfg Config) (*ArtifactResult, error) {
	rows, err := TableV(ctx, cfg)
	if err != nil {
		return nil, err
	}
	t := tablefmt.New("Table V: workloads and LLC MPKI (simulated vs paper)",
		"workload", "suite", "MPKI (ours)", "MPKI (paper)")
	for _, r := range rows {
		t.AddRowf(r.Workload, r.Suite, r.MPKI, r.PaperMPKI)
	}
	return &ArtifactResult{Value: rows, Renderers: []Renderer{t}}, nil
}

func runTableVIArtifact(ctx context.Context, cfg Config) (*ArtifactResult, error) {
	rows, err := TableVI(ctx, cfg)
	if err != nil {
		return nil, err
	}
	t := tablefmt.New(
		fmt.Sprintf("Table VI: workload features (measured on synthetic traces; paper footprints are ~%d× larger at full scale)", workload.FootprintScale),
		"workload", "H_rg", "H_rl", "H_wg", "H_wl", "r_uniq", "w_uniq", "90ft_r", "90ft_w", "r_total", "w_total")
	for _, r := range rows {
		m := r.Measured
		t.AddRowf(r.Workload, m.GlobalReadEntropy, m.LocalReadEntropy,
			m.GlobalWriteEntropy, m.LocalWriteEntropy,
			m.UniqueReads, m.UniqueWrites, m.Footprint90Reads, m.Footprint90Writes,
			m.TotalReads, m.TotalWrites)
	}
	tp := tablefmt.New("Table VI: paper values",
		"workload", "H_rg", "H_rl", "H_wg", "H_wl", "r_uniq", "w_uniq", "90ft_r", "90ft_w", "r_total", "w_total")
	for _, r := range rows {
		p := r.Paper
		tp.AddRowf(r.Workload, p.GlobalReadEntropy, p.LocalReadEntropy,
			p.GlobalWriteEntropy, p.LocalWriteEntropy,
			p.UniqueReads, p.UniqueWrites, p.Footprint90Reads, p.Footprint90Writes,
			p.TotalReads, p.TotalWrites)
	}
	return &ArtifactResult{Value: rows, Renderers: []Renderer{t, tp}}, nil
}

func figure4Artifact(src FeatureSource) func(context.Context, Config) (*ArtifactResult, error) {
	return func(ctx context.Context, cfg Config) (*ArtifactResult, error) {
		panels, err := Figure4(ctx, Figure4Config{Config: cfg, Source: src})
		if err != nil {
			return nil, err
		}
		labels := []string{"(a)", "(b)", "(c)", "(d)", "(e)", "(f)"}
		var maps []Renderer
		for i, p := range panels {
			h := p.Heatmap()
			if i < len(labels) {
				h.Title = fmt.Sprintf("Figure 4%s: |Pearson r|, %s, AI workloads", labels[i], h.Title)
			}
			maps = append(maps, h)
		}
		return &ArtifactResult{Value: panels, Renderers: maps}, nil
	}
}

func runLifetimeArtifact(ctx context.Context, cfg Config) (*ArtifactResult, error) {
	study, err := Lifetime(ctx, cfg, nil)
	if err != nil {
		return nil, err
	}
	t := tablefmt.New("LLC lifetime projection (first-cell-failure model; intra-set wear leveling per WriteSmoothing [20])",
		"workload", "LLC", "class", "hottest-line wr/s", "raw years", "leveled years", "imbalance", "viable 5y")
	for _, r := range study.Rows {
		t.AddRowf(r.Workload, r.LLC, r.Class.String(), r.HottestLineWritesPerSec,
			r.RawYears, r.LeveledYears, r.ImbalanceFactor,
			fmt.Sprintf("%v", r.Viable(5)))
	}
	renderers := []Renderer{t}
	for _, p := range study.Panels {
		h := p.Heatmap()
		h.Title = "Wear-rate correlation with workload features: " + h.Title
		h.Cells = h.Cells[:1]
		h.RowNames = []string{"wear rate"}
		renderers = append(renderers, h)
	}
	return &ArtifactResult{Value: study, Renderers: renderers}, nil
}

func runPredictArtifact(ctx context.Context, cfg Config) (*ArtifactResult, error) {
	study, err := Predict(ctx, cfg)
	if err != nil {
		return nil, err
	}
	t := tablefmt.New("Energy prediction: models trained on the 13 non-AI workloads, evaluated on the unseen AI domain (SRAM-normalized energies)",
		"LLC", "workload", "predictor feature", "predicted", "simulated", "rel. err")
	for _, r := range study.Rows {
		t.AddRowf(r.LLC, r.Workload, r.Feature, r.Predicted, r.Simulated, r.RelErr)
	}
	return &ArtifactResult{
		Value:     study,
		Renderers: []Renderer{t, lineRenderer(fmt.Sprintf("mean relative error: %.2f", study.MeanRelErr))},
	}, nil
}

func runAblationsArtifact(ctx context.Context, cfg Config) (*ArtifactResult, error) {
	rows, err := AblationSuite(ctx, "is", "Kang_P", cfg)
	if err != nil {
		return nil, err
	}
	t := tablefmt.New("Design-lever ablations: is on Kang_P (PCRAM)",
		"configuration", "time [ms]", "dyn energy [mJ]", "total energy [mJ]", "LLC writes", "LLC hits")
	for _, r := range rows {
		t.AddRowf(r.Name, r.TimeMS, r.DynEnergyMJ, r.TotalEnergyMJ, r.LLCWrites, r.Hits)
	}
	return &ArtifactResult{Value: rows, Renderers: []Renderer{t}}, nil
}

func runDegradationArtifact(ctx context.Context, cfg Config) (*ArtifactResult, error) {
	study, err := Degradation(ctx, cfg, DegradationOptions{})
	if err != nil {
		return nil, err
	}
	return &ArtifactResult{Value: study, Renderers: degradationRenderers(study)}, nil
}

// degradationRenderers prints one table per LLC curve: the workload
// replayed at each service age with the cumulative wear pre-applied, and
// what the degraded cache still delivers.
func degradationRenderers(study *DegradationStudy) []Renderer {
	var out []Renderer
	for _, c := range study.Curves {
		life := "∞"
		if c.NominalYears < 1e18 {
			life = fmt.Sprintf("%.2f y", c.NominalYears)
		}
		t := tablefmt.New(
			fmt.Sprintf("Degradation over lifetime: %s on %s (%s, nominal life %s)",
				study.Workload, c.LLC, c.Class.String(), life),
			"age [y]", "prewear wr/cell", "capacity", "condemned ways", "dead sets",
			"retries", "lines lost", "IPC", "MPKI")
		for _, p := range c.Points {
			t.AddRowf(p.AgeYears, p.PreWearWrites, p.CapacityFraction,
				p.CondemnedWays, p.DeadSets, p.WriteRetries, p.LinesLost, p.IPC, p.MPKI)
		}
		out = append(out, t)
	}
	return out
}

// lineRenderer prints one plain line — for artifact summaries that are
// not tables (like predict's mean relative error).
type lineRenderer string

func (l lineRenderer) Render(w io.Writer) error {
	_, err := fmt.Fprintln(w, string(l))
	return err
}
