package sweep

// Estimator fast path: one single-pass reuse-distance profile per
// (workload, trace options) answers the LRU hit/miss counts of every
// swept LLC geometry at once (internal/profile), and an analytical
// timing/energy model anchored on the exact SRAM baseline turns them
// into estimated Results. Sweeps that previously simulated every
// (workload, model) pair exactly — most wastefully capacity-only
// variations of the same trace — simulate only the anchor and any
// caller-pinned models, and derive the rest in O(1) per point.
//
// The estimates are approximations and are marked Result.Estimated:
//   - Hit/miss counts are exact for single-threaded traces (the profile
//     filter replicates the simulator's L1/L2 walk access for access)
//     and ignore coherence invalidations on multi-threaded ones.
//   - Timing is a delta correction around the exact anchor: the
//     anchor's memory-stall time is re-priced with the target model's
//     tag/read latencies and the predicted hit/miss mix, using an
//     effective DRAM latency derived from the anchor itself. At the
//     anchor's own (model, geometry) point the estimate reproduces the
//     exact execution time.
//   - Energy uses the paper's equations (6)-(8) exactly, over the
//     predicted event counts; leakage integrates over estimated time.
//   - LLC bank write contention (Config.ModelWriteContention) is only
//     captured insofar as the anchor absorbed it; non-LRU policies,
//     bypass and hybrid LLCs are never estimated.
//
// Estimated results are computed locally and NEVER enter the engine's
// result cache — the cache stores exact simulations only.

import (
	"context"
	"errors"
	"fmt"
	"math"

	"nvmllc/internal/cache"
	"nvmllc/internal/dram"
	"nvmllc/internal/engine"
	"nvmllc/internal/nvsim"
	"nvmllc/internal/profile"
	"nvmllc/internal/reference"
	"nvmllc/internal/system"
	"nvmllc/internal/tablefmt"
	"nvmllc/internal/trace"
	"nvmllc/internal/workload"
)

// Estimator switches sweeps from exact per-point simulation to the
// profile-driven fast path. The zero value estimates every non-SRAM
// model; Config.Estimator == nil (the default) keeps every sweep
// byte-identical to the exact path.
type Estimator struct {
	// PinExact lists LLC model names that must stay exactly simulated
	// even on the fast path. The SRAM baseline is always pinned: it is
	// the anchor the analytical timing model corrects around.
	PinExact []string
	// MaxWays bounds the profiled stack-distance histograms (default:
	// the sweep's LLC associativity). Raising it lets one cached
	// profile also answer higher-associativity queries later.
	MaxWays int
}

// pins reports whether the named model must be simulated exactly.
func (e *Estimator) pins(name string) bool {
	if name == "SRAM" {
		return true
	}
	for _, n := range e.PinExact {
		if n == name {
			return true
		}
	}
	return false
}

// runPoints evaluates the (workload × model) grid: exactly via runAll
// when no estimator is configured (the default path, unchanged), or via
// the profile-driven fast path.
func runPoints(ctx context.Context, eng *engine.Engine, models []nvsim.LLCModel, names []string, traces map[string]*trace.Trace, genOpts workload.Options, cfg Config, coresOverride int) (map[string]map[string]*system.Result, error) {
	if cfg.Estimator == nil {
		return runAll(ctx, eng, models, names, traces, genOpts, cfg, coresOverride)
	}
	return runEstimated(ctx, eng, models, names, traces, genOpts, cfg, coresOverride)
}

// runEstimated is the fast-path grid: exact simulation for the SRAM
// anchor and pinned models, one filtered reuse-distance profile per
// workload, and analytical estimates for everything else. The returned
// map has runAll's shape and partial-result semantics.
func runEstimated(ctx context.Context, eng *engine.Engine, models []nvsim.LLCModel, names []string, traces map[string]*trace.Trace, genOpts workload.Options, cfg Config, coresOverride int) (map[string]map[string]*system.Result, error) {
	est := cfg.Estimator
	var exact, approx []nvsim.LLCModel
	for _, m := range models {
		if est.pins(m.Name) {
			exact = append(exact, m)
		} else {
			approx = append(approx, m)
		}
	}
	raw, runErr := runAll(ctx, eng, exact, names, traces, genOpts, cfg, coresOverride)
	errs := []error{runErr}
	if len(approx) == 0 {
		return raw, runErr
	}
	anchorModel, err := reference.ModelByName(models, "SRAM")
	if err != nil {
		return raw, errors.Join(append(errs, fmt.Errorf("sweep: estimator needs the SRAM anchor: %w", err))...)
	}

	// One profile geometry cover for the whole grid: the distinct set
	// counts of the estimated models at the sweep's fixed associativity.
	tmpl := system.Gainestown(anchorModel)
	caps := make([]int64, 0, len(approx))
	for _, m := range approx {
		caps = append(caps, m.CapacityBytes)
	}
	geoms, err := cache.EnumerateGeoms(caps, tmpl.BlockBytes, tmpl.LLCWays)
	if err != nil {
		return raw, errors.Join(append(errs, err)...)
	}
	pc := profile.Config{
		BlockBytes: tmpl.BlockBytes,
		SetCounts:  cache.SetCountsOf(geoms),
		MaxWays:    max(tmpl.LLCWays, est.MaxWays),
	}
	h := hierarchyFor(tmpl)

	for _, n := range names {
		base := raw[n]["SRAM"]
		if base == nil {
			// The anchor failed; runAll already reported why.
			continue
		}
		prof, err := eng.RunProfile(ctx, engine.ProfileJob{
			Workload:  n,
			TraceOpts: genOpts,
			Config:    pc,
			Hierarchy: &h,
			Trace:     traces[n],
		})
		if err != nil {
			errs = append(errs, fmt.Errorf("sweep: profiling %s: %w", n, err))
			continue
		}
		for _, m := range approx {
			sets, err := cache.SetsFor(m.CapacityBytes, tmpl.BlockBytes, tmpl.LLCWays)
			if err != nil {
				errs = append(errs, err)
				continue
			}
			r, err := estimateResult(base, anchorModel, prof, m, sets, tmpl.LLCWays, float64(tmpl.LLCWays), tmpl.L2LatencyNS)
			if err != nil {
				errs = append(errs, err)
				continue
			}
			raw[n][m.Name] = r
		}
	}
	return raw, errors.Join(errs...)
}

// hierarchyFor extracts the private-level geometry the profile filter
// must replicate from a system configuration.
func hierarchyFor(sysCfg system.Config) profile.Hierarchy {
	return profile.Hierarchy{
		BlockBytes: sysCfg.BlockBytes,
		L1I:        profile.LevelSpec{CapacityBytes: sysCfg.L1IBytes, Ways: sysCfg.L1IWays},
		L1D:        profile.LevelSpec{CapacityBytes: sysCfg.L1DBytes, Ways: sysCfg.L1DWays},
		L2:         profile.LevelSpec{CapacityBytes: sysCfg.L2Bytes, Ways: sysCfg.L2Ways},
	}
}

// estimateResult derives one design point analytically: the profile
// supplies the LLC hit/miss/write counts at (sets × waysEff), and the
// exact anchor result (simulated with anchor model am on the same
// trace) supplies the timing baseline the target model m is re-priced
// against. waysEff may be fractional (degradation's mean surviving
// associativity); integral waysEff at the anchor's own geometry and
// model reproduces base.TimeNS exactly.
func estimateResult(base *system.Result, am nvsim.LLCModel, prof *profile.Profile, m nvsim.LLCModel, sets, ways int, waysEff float64, l2LatNS float64) (*system.Result, error) {
	hitsF, ok := interpHits(prof, sets, waysEff)
	if !ok {
		return nil, fmt.Errorf("sweep: profile %s lacks geometry %d sets × %.1f ways (covered: %v, ≤%d ways)",
			prof.Name, sets, waysEff, prof.SetCounts(), prof.MaxWays)
	}
	hits := uint64(hitsF + 0.5)
	if hits > prof.Demand {
		hits = prof.Demand
	}
	misses := prof.Demand - hits
	// Every miss fills the array; every L2 dirty eviction writes it
	// (writebacks are geometry-independent — they only depend on the
	// private levels).
	writes := misses + prof.Writebacks

	// Delta-corrected timing: re-price the anchor's LLC-level stalls
	// with the target latencies and predicted mix. The effective DRAM
	// latency comes from the anchor run itself, so queueing and
	// bandwidth effects the anchor saw are carried over.
	dramNS := effDRAMLatencyNS(base, am, l2LatNS)
	predStall := float64(hits)*(m.TagLatencyNS+m.ReadLatencyNS) +
		float64(misses)*(m.TagLatencyNS+dramNS)
	anchStall := float64(base.LLC.Hits)*(am.TagLatencyNS+am.ReadLatencyNS) +
		float64(base.LLC.Misses)*(am.TagLatencyNS+dramNS)
	threads := prof.Threads
	if threads < 1 {
		threads = 1
	}
	t := base.TimeNS + (predStall-anchStall)/float64(threads)
	if t < 1 {
		t = 1
	}

	r := &system.Result{
		Workload:     base.Workload,
		LLCName:      m.Name,
		Cores:        base.Cores,
		TimeNS:       t,
		Instructions: base.Instructions,
		LLC:          system.LLCStats{Hits: hits, Misses: misses, Writes: writes},
		DRAM:         dram.Stats{Reads: misses},
		MemStallNS:   predStall + float64(base.L2.Hits)*l2LatNS,
		ClockGHz:     base.ClockGHz,
		Estimated:    true,
	}
	if up := prof.Upstream; up != nil {
		r.L1I, r.L1D, r.L2 = up.L1I, up.L1D, up.L2
	} else {
		r.L1I, r.L1D, r.L2 = base.L1I, base.L1D, base.L2
	}
	// Equations (6)-(8) over the predicted counts; leakage over the
	// estimated time.
	dynNJ := float64(hits)*m.HitEnergyNJ + float64(misses)*m.MissEnergyNJ + float64(writes)*m.WriteEnergyNJ
	r.LLCDynamicJ = dynNJ * 1e-9
	r.LLCLeakageJ = m.LeakageW * t * 1e-9
	return r, nil
}

// interpHits reads the profile's hit count at a possibly fractional
// way count, interpolating linearly between the bracketing histogram
// prefixes (0 ways hits nothing).
func interpHits(prof *profile.Profile, sets int, waysEff float64) (float64, bool) {
	if waysEff <= 0 {
		return 0, true
	}
	lo := int(waysEff)
	hi := lo
	if float64(lo) < waysEff {
		hi = lo + 1
	}
	var hLo uint64
	if lo > 0 {
		var ok bool
		if hLo, ok = prof.HitsFor(sets, lo); !ok {
			return 0, false
		}
	}
	hHi, ok := prof.HitsFor(sets, hi)
	if !ok {
		return 0, false
	}
	f := waysEff - float64(lo)
	return float64(hLo) + (float64(hHi)-float64(hLo))*f, true
}

// effDRAMLatencyNS derives the anchor run's effective per-miss DRAM
// service latency by subtracting the modeled L2- and LLC-hit stalls
// from its measured memory-stall time. Clamped non-negative: the
// decomposition over-counts slightly (stores retire without stalling),
// and the residual is what the delta correction re-prices.
func effDRAMLatencyNS(base *system.Result, am nvsim.LLCModel, l2LatNS float64) float64 {
	if base.LLC.Misses == 0 {
		return 0
	}
	stall := base.MemStallNS -
		float64(base.L2.Hits)*l2LatNS -
		float64(base.LLC.Hits)*(am.TagLatencyNS+am.ReadLatencyNS)
	d := stall/float64(base.LLC.Misses) - am.TagLatencyNS
	if d < 0 {
		d = 0
	}
	return d
}

// EstimateOptions parameterizes the estimator-validation artifact; the
// zero value selects the defaults.
type EstimateOptions struct {
	// Workload is the trace to validate on (default "is").
	Workload string
	// MaxCapacityBytes tops the halving capacity ladder (default 8 MiB).
	MaxCapacityBytes int64
	// Points is the ladder length (default 6: 256 KiB .. 8 MiB).
	Points int
}

// EstimateRow compares the profile-derived estimate against exact
// simulation for one LLC geometry.
type EstimateRow struct {
	CapacityBytes int64
	Sets, Ways    int
	// PredHits/ExactHits are LLC demand hits; the rates divide by
	// demand accesses.
	PredHits, ExactHits       uint64
	PredHitRate, ExactHitRate float64
	// AbsRateErr is |predicted − exact| hit rate, in percentage points.
	AbsRateErr float64
	PredMPKI, ExactMPKI     float64
	PredTimeNS, ExactTimeNS float64
	// TimeErrPct is the signed relative execution-time error in percent.
	TimeErrPct float64
	// Anchor marks the geometry the timing model is anchored on (its
	// time error is zero by construction).
	Anchor bool
}

// EstimateStudy is the estimate artifact: predicted-vs-exact hit rate,
// MPKI and execution time across a capacity ladder of SRAM-class LLCs,
// quantifying the fast path's error model on one workload.
type EstimateStudy struct {
	Workload string
	Threads  int
	Rows     []EstimateRow
	// MeanAbsRateErr and MaxAbsRateErr aggregate the hit-rate error in
	// percentage points.
	MeanAbsRateErr, MaxAbsRateErr float64
}

// Estimate runs the validation study: exact simulations of the SRAM
// baseline at every ladder capacity versus one filtered profile
// answering all of them, anchored at the 2 MB baseline point.
func Estimate(ctx context.Context, cfg Config, opts EstimateOptions) (*EstimateStudy, error) {
	if opts.Workload == "" {
		opts.Workload = "is"
	}
	if opts.MaxCapacityBytes == 0 {
		opts.MaxCapacityBytes = 8 << 20
	}
	if opts.Points == 0 {
		opts.Points = 6
	}
	ctx, span := cfg.startSpan(ctx, "estimate", "workload", opts.Workload)
	defer span.End()

	p, err := workload.ByName(opts.Workload)
	if err != nil {
		return nil, err
	}
	tr, err := workload.Generate(p, cfg.Opts)
	if err != nil {
		return nil, err
	}
	caps, err := cache.CapacityLadder(opts.MaxCapacityBytes, opts.Points)
	if err != nil {
		return nil, err
	}

	// The ladder models are the SRAM baseline resized: only geometry
	// varies, so every difference in the table is the estimator's.
	anchorIdx := len(caps) / 2
	models := make([]nvsim.LLCModel, len(caps))
	for i, c := range caps {
		m := reference.SRAMBaseline()
		m.CapacityBytes = c
		m.Name = fmt.Sprintf("SRAM@%s", fmtBytes(c))
		models[i] = m
		if c == reference.SRAMBaseline().CapacityBytes {
			anchorIdx = i
		}
	}

	eng := cfg.engineOrNew()
	jobs := make([]engine.Job, len(models))
	for i, m := range models {
		sysCfg := system.Gainestown(m)
		sysCfg.ModelWriteContention = cfg.WriteContention
		jobs[i] = engine.Job{Workload: opts.Workload, TraceOpts: cfg.Opts, Config: sysCfg, Trace: tr}
	}
	exact, err := eng.RunAll(ctx, jobs)
	if err != nil {
		return nil, err
	}
	anchor := exact[anchorIdx]

	tmpl := system.Gainestown(models[anchorIdx])
	geoms, err := cache.EnumerateGeoms(caps, tmpl.BlockBytes, tmpl.LLCWays)
	if err != nil {
		return nil, err
	}
	h := hierarchyFor(tmpl)
	prof, err := eng.RunProfile(ctx, engine.ProfileJob{
		Workload:  opts.Workload,
		TraceOpts: cfg.Opts,
		Config: profile.Config{
			BlockBytes: tmpl.BlockBytes,
			SetCounts:  cache.SetCountsOf(geoms),
			MaxWays:    tmpl.LLCWays,
		},
		Hierarchy: &h,
		Trace:     tr,
	})
	if err != nil {
		return nil, err
	}

	study := &EstimateStudy{Workload: opts.Workload, Threads: tr.Threads}
	for i, c := range caps {
		sets, err := cache.SetsFor(c, tmpl.BlockBytes, tmpl.LLCWays)
		if err != nil {
			return nil, err
		}
		est, err := estimateResult(anchor, models[anchorIdx], prof, models[i], sets, tmpl.LLCWays, float64(tmpl.LLCWays), tmpl.L2LatencyNS)
		if err != nil {
			return nil, err
		}
		sim := exact[i]
		row := EstimateRow{
			CapacityBytes: c,
			Sets:          sets,
			Ways:          tmpl.LLCWays,
			PredHits:      est.LLC.Hits,
			ExactHits:     sim.LLC.Hits,
			PredMPKI:      est.LLCMPKI(),
			ExactMPKI:     sim.LLCMPKI(),
			PredTimeNS:    est.TimeNS,
			ExactTimeNS:   sim.TimeNS,
			Anchor:        i == anchorIdx,
		}
		if acc := sim.LLC.Accesses(); acc > 0 {
			row.ExactHitRate = float64(sim.LLC.Hits) / float64(acc)
		}
		if acc := est.LLC.Accesses(); acc > 0 {
			row.PredHitRate = float64(est.LLC.Hits) / float64(acc)
		}
		row.AbsRateErr = math.Abs(row.PredHitRate-row.ExactHitRate) * 100
		if sim.TimeNS > 0 {
			row.TimeErrPct = (est.TimeNS - sim.TimeNS) / sim.TimeNS * 100
		}
		study.Rows = append(study.Rows, row)
		study.MeanAbsRateErr += row.AbsRateErr
		if row.AbsRateErr > study.MaxAbsRateErr {
			study.MaxAbsRateErr = row.AbsRateErr
		}
	}
	if n := len(study.Rows); n > 0 {
		study.MeanAbsRateErr /= float64(n)
	}
	return study, nil
}

// RenderEstimate formats the study the way cmd/figures prints tables.
func RenderEstimate(s *EstimateStudy) *tablefmt.Table {
	t := tablefmt.New(
		fmt.Sprintf("Estimator validation: %s, %d threads (reuse-distance profile vs exact simulation; mean |Δhit| %.3f pp, max %.3f pp)",
			s.Workload, s.Threads, s.MeanAbsRateErr, s.MaxAbsRateErr),
		"LLC", "geometry", "hit% prof", "hit% sim", "|Δ| pp", "MPKI prof", "MPKI sim", "time prof [ms]", "time sim [ms]", "Δtime %")
	for _, r := range s.Rows {
		name := fmtBytes(r.CapacityBytes)
		if r.Anchor {
			name += " *"
		}
		t.AddRowf(name, fmt.Sprintf("%d×%d", r.Sets, r.Ways),
			r.PredHitRate*100, r.ExactHitRate*100, r.AbsRateErr,
			r.PredMPKI, r.ExactMPKI,
			r.PredTimeNS/1e6, r.ExactTimeNS/1e6, r.TimeErrPct)
	}
	return t
}

// runEstimateArtifact adapts Estimate to the artifact registry.
func runEstimateArtifact(ctx context.Context, cfg Config) (*ArtifactResult, error) {
	study, err := Estimate(ctx, cfg, EstimateOptions{})
	if err != nil {
		return nil, err
	}
	return &ArtifactResult{Value: study, Renderers: []Renderer{RenderEstimate(study)}}, nil
}

// fmtBytes renders a power-of-two capacity compactly (256KiB, 2MiB).
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKiB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
