package sweep

import (
	"context"
	"math"
	"reflect"
	"testing"

	"nvmllc/internal/engine"
	"nvmllc/internal/reference"
	"nvmllc/internal/workload"
)

// estTestCfg keeps estimator integration runs fast.
func estTestCfg() Config {
	return Config{Opts: workload.Options{Accesses: 20000, Seed: 3}}
}

// TestEstimatorFigureMatchesExact runs the same small figure exactly and
// through the fast path. Fixed-capacity models all share the 2 MB × 16-way
// geometry, so for single-threaded workloads (no coherence, which the
// profile filter does not model) the estimated hit/miss counts must EQUAL
// the exact simulator's; the multi-threaded workload gets a tolerance.
func TestEstimatorFigureMatchesExact(t *testing.T) {
	names := []string{"bzip2", "milc", "ft"}
	st := map[string]bool{"bzip2": true, "milc": true}
	models := reference.FixedCapacityModels()

	exact, err := RunFigure(context.Background(), "exact", models, names, estTestCfg())
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New()
	cfg := estTestCfg()
	cfg.Engine = eng
	cfg.Estimator = &Estimator{}
	fast, err := RunFigure(context.Background(), "fast", models, names, cfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, w := range names {
		if fast.Raw[w]["SRAM"].Estimated {
			t.Errorf("%s: SRAM anchor marked estimated", w)
		}
		for _, m := range models {
			if m.Name == "SRAM" {
				continue
			}
			er := exact.Raw[w][m.Name]
			fr := fast.Raw[w][m.Name]
			if fr == nil {
				t.Fatalf("%s/%s: missing fast-path result", w, m.Name)
			}
			if !fr.Estimated {
				t.Errorf("%s/%s: fast-path result not marked estimated", w, m.Name)
			}
			if st[w] {
				if fr.LLC.Hits != er.LLC.Hits || fr.LLC.Misses != er.LLC.Misses || fr.LLC.Writes != er.LLC.Writes {
					t.Errorf("%s/%s: estimated LLC counts %d/%d/%d, exact %d/%d/%d",
						w, m.Name, fr.LLC.Hits, fr.LLC.Misses, fr.LLC.Writes,
						er.LLC.Hits, er.LLC.Misses, er.LLC.Writes)
				}
			} else if d := float64(fr.LLC.Hits) - float64(er.LLC.Hits); math.Abs(d) > 0.05*float64(er.LLC.Accesses()) {
				t.Errorf("%s/%s: estimated hits %d vs exact %d (>5%% of accesses off)",
					w, m.Name, fr.LLC.Hits, er.LLC.Hits)
			}
			if fr.TimeNS <= 0 || fr.LLCEnergyJ() <= 0 {
				t.Errorf("%s/%s: non-positive estimated time/energy", w, m.Name)
			}
		}
	}

	// The point of the fast path: one exact simulation (the anchor) and
	// one profile per workload, instead of one simulation per model.
	s := eng.Stats()
	if got, want := s.Jobs(), uint64(len(names)); got != want {
		t.Errorf("fast path simulated %d jobs, want %d (anchors only)", got, want)
	}
	if s.Profiles != uint64(len(names)) {
		t.Errorf("fast path profiled %d times, want %d", s.Profiles, len(names))
	}
}

// TestEstimatorPinExactEquivalence pins every model: the fast path then
// degenerates to the exact grid and must reproduce it verbatim.
func TestEstimatorPinExactEquivalence(t *testing.T) {
	names := []string{"bzip2"}
	models := reference.FixedCapacityModels()
	exact, err := RunFigure(context.Background(), "t", models, names, estTestCfg())
	if err != nil {
		t.Fatal(err)
	}
	cfg := estTestCfg()
	var pins []string
	for _, m := range models {
		pins = append(pins, m.Name)
	}
	cfg.Estimator = &Estimator{PinExact: pins}
	pinned, err := RunFigure(context.Background(), "t", models, names, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(exact.Speedup, pinned.Speedup) ||
		!reflect.DeepEqual(exact.Energy, pinned.Energy) ||
		!reflect.DeepEqual(exact.ED2P, pinned.ED2P) {
		t.Error("fully pinned estimator grid differs from the exact grid")
	}
	for w, row := range exact.Raw {
		for llc, er := range row {
			pr := pinned.Raw[w][llc]
			if pr == nil || pr.Estimated {
				t.Fatalf("%s/%s: pinned result missing or estimated", w, llc)
			}
			if !reflect.DeepEqual(er.LLC, pr.LLC) || er.TimeNS != pr.TimeNS {
				t.Errorf("%s/%s: pinned result differs from exact", w, llc)
			}
		}
	}
}

// TestEstimatorAnchorReproducesExactTime checks the delta correction's
// fixed point: estimating the anchor's own model and geometry must give
// back the anchor's exact execution time (single-threaded workload, so
// the predicted counts equal the exact ones).
func TestEstimatorAnchorReproducesExactTime(t *testing.T) {
	study, err := Estimate(context.Background(), estTestCfg(), EstimateOptions{Workload: "bzip2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(study.Rows))
	}
	anchors := 0
	for _, r := range study.Rows {
		if r.PredHits != r.ExactHits {
			t.Errorf("%d×%d: predicted hits %d, exact %d (single-threaded filter must be exact)",
				r.Sets, r.Ways, r.PredHits, r.ExactHits)
		}
		if r.Anchor {
			anchors++
			if math.Abs(r.TimeErrPct) > 1e-9 {
				t.Errorf("anchor time error %.6f%%, want 0 by construction", r.TimeErrPct)
			}
		}
		if r.PredTimeNS <= 0 || r.ExactTimeNS <= 0 {
			t.Errorf("%d×%d: non-positive times", r.Sets, r.Ways)
		}
	}
	if anchors != 1 {
		t.Fatalf("anchor rows = %d, want 1", anchors)
	}
	if study.MaxAbsRateErr != 0 {
		t.Errorf("max |Δhit rate| = %.4f pp, want 0 for a single-threaded workload", study.MaxAbsRateErr)
	}
}

// TestPredictEstimatorOrdering is the satellite regression: the
// prediction study through the fast path must rank the candidate NVMs
// identically to the exact study for every test workload — the decision
// the Section VI designer actually reads off the table.
func TestPredictEstimatorOrdering(t *testing.T) {
	exact, err := Predict(context.Background(), estTestCfg())
	if err != nil {
		t.Fatal(err)
	}
	cfg := estTestCfg()
	cfg.Estimator = &Estimator{}
	fast, err := Predict(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fast.Rows) != len(exact.Rows) {
		t.Fatalf("rows = %d, want %d", len(fast.Rows), len(exact.Rows))
	}
	rank := func(s *PredictionStudy) map[string][]string {
		byWorkload := map[string][]string{}
		for _, w := range workload.AINames() {
			var rows []PredictionRow
			for _, r := range s.Rows {
				if r.Workload == w {
					rows = append(rows, r)
				}
			}
			for i := 0; i < len(rows); i++ {
				for j := i + 1; j < len(rows); j++ {
					if rows[j].Predicted < rows[i].Predicted {
						rows[i], rows[j] = rows[j], rows[i]
					}
				}
			}
			for _, r := range rows {
				byWorkload[w] = append(byWorkload[w], r.LLC)
			}
		}
		return byWorkload
	}
	if got, want := rank(fast), rank(exact); !reflect.DeepEqual(got, want) {
		t.Errorf("estimator changed the predicted NVM ordering:\nfast  %v\nexact %v", got, want)
	}
}

// TestCoreSweepEstimator checks the core-sweep pre-pass: per core count
// only the SRAM baseline simulates, the NVM columns are estimated.
func TestCoreSweepEstimator(t *testing.T) {
	eng := engine.New()
	cfg := estTestCfg()
	cfg.Engine = eng
	cfg.Estimator = &Estimator{}
	res, err := CoreSweep(context.Background(), "ft", []int{1, 2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Raw) != 2 {
		t.Fatalf("core points = %d, want 2", len(res.Raw))
	}
	for ci, row := range res.Raw {
		for li, r := range row {
			llc := res.LLCs[li]
			if (llc == "SRAM") == r.Estimated {
				t.Errorf("cores[%d]/%s: Estimated = %v", ci, llc, r.Estimated)
			}
			if res.Speedup[ci][li] <= 0 || res.Energy[ci][li] <= 0 {
				t.Errorf("cores[%d]/%s: non-positive normalized values", ci, llc)
			}
		}
	}
	// One exact simulation per core count (the SRAM anchor).
	if got := eng.Stats().Jobs(); got != 2 {
		t.Errorf("core sweep simulated %d jobs, want 2 anchors", got)
	}
}

// TestDegradationEstimator checks the aged-replay fast path: wearing
// curves decay via the injector's pre-age census without replaying, the
// pinned SRAM control stays exact and flat.
func TestDegradationEstimator(t *testing.T) {
	cfg := Config{Opts: workload.Options{Accesses: 15000, Seed: 3}}
	cfg.Estimator = &Estimator{}
	study, err := Degradation(context.Background(), cfg, DegradationOptions{
		LLCs:      []string{"Kang_P", "SRAM"},
		FaultSeed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Curves) != 2 {
		t.Fatalf("curves = %d, want 2", len(study.Curves))
	}
	for _, c := range study.Curves {
		if len(c.Points) != len(study.AgesYears) {
			t.Fatalf("%s: %d points, want %d", c.LLC, len(c.Points), len(study.AgesYears))
		}
	}
	kang := study.Curves[0]
	last := kang.Points[len(kang.Points)-1]
	if last.CapacityFraction >= 1 {
		t.Errorf("Kang_P capacity fraction %.3f at end of ladder, want < 1", last.CapacityFraction)
	}
	for i, pt := range kang.Points {
		if pt.WriteRetries != 0 || pt.LinesLost != 0 {
			t.Errorf("estimated point %d has runtime wear traffic (%d retries, %d lost)", i, pt.WriteRetries, pt.LinesLost)
		}
		if i > 0 && pt.CapacityFraction > kang.Points[i-1].CapacityFraction+1e-12 {
			t.Errorf("capacity fraction increased with age at point %d", i)
		}
		if pt.TimeNS <= 0 || pt.IPC <= 0 {
			t.Errorf("point %d: non-positive time/IPC", i)
		}
	}
	if last.MPKI+1e-9 < kang.Points[0].MPKI {
		t.Errorf("MPKI fell with age: %.3f -> %.3f", kang.Points[0].MPKI, last.MPKI)
	}
	for i, pt := range study.Curves[1].Points {
		if pt.CapacityFraction != 1 {
			t.Errorf("SRAM point %d: capacity fraction %.3f, want 1", i, pt.CapacityFraction)
		}
	}
}
