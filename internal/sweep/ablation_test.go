package sweep

import (
	"context"
	"testing"

	"nvmllc/internal/workload"
)

func TestAblationSuite(t *testing.T) {
	// Multi-pass trace: the dead-block predictor needs completed
	// residencies before it can bypass.
	cfg := Config{Opts: workload.Options{Accesses: 500000, Seed: 3}}
	rows, err := AblationSuite(context.Background(), "is", "Kang_P", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		if r.TimeMS <= 0 || r.TotalEnergyMJ <= 0 {
			t.Errorf("%s: non-positive measurements %+v", r.Name, r)
		}
		byName[r.Name] = r
	}
	base := byName["baseline (paper config)"]
	// Write contention on a write-heavy workload with 301ns writes slows
	// the system.
	if byName["writes on critical path"].TimeMS <= base.TimeMS {
		t.Error("write contention did not slow the system")
	}
	// Bypass cuts LLC writes.
	if byName["dead-block bypass"].LLCWrites >= base.LLCWrites {
		t.Error("bypass did not cut LLC writes")
	}
	// Hybrid cuts dynamic energy on the PCRAM part.
	if byName["hybrid 4×SRAM ways"].DynEnergyMJ >= base.DynEnergyMJ {
		t.Error("hybrid did not cut dynamic energy")
	}
}

func TestAblationSuiteErrors(t *testing.T) {
	if _, err := AblationSuite(context.Background(), "nosuch", "Kang_P", testCfg()); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := AblationSuite(context.Background(), "is", "nosuch", testCfg()); err == nil {
		t.Error("unknown LLC accepted")
	}
}
