package sweep

import (
	"context"
	"math"
	"testing"

	"nvmllc/internal/nvm"
)

func TestLifetimeStudy(t *testing.T) {
	study, err := Lifetime(context.Background(), testCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// 16 characterized workloads × 3 representative LLCs.
	if len(study.Rows) != 48 {
		t.Fatalf("rows = %d, want 48", len(study.Rows))
	}
	if len(study.Panels) != 3 {
		t.Fatalf("panels = %d, want 3", len(study.Panels))
	}

	byKey := map[string]LifetimeRow{}
	for _, r := range study.Rows {
		byKey[r.Workload+"/"+r.LLC] = r
		if r.ImbalanceFactor < 1 {
			t.Errorf("%s/%s: imbalance %g < 1", r.Workload, r.LLC, r.ImbalanceFactor)
		}
		if r.LeveledYears < r.RawYears {
			t.Errorf("%s/%s: leveling shortened lifetime %g -> %g", r.Workload, r.LLC, r.RawYears, r.LeveledYears)
		}
	}
	// Class endurance ordering must show up per workload: PCRAM dies first,
	// STTRAM lasts longest.
	for _, w := range []string{"bzip2", "cg", "deepsjeng"} {
		kang := byKey[w+"/Kang_P"]
		chung := byKey[w+"/Chung_S"]
		zhang := byKey[w+"/Zhang_R"]
		if !(kang.RawYears < zhang.RawYears && zhang.RawYears < chung.RawYears) {
			t.Errorf("%s: lifetime ordering PCRAM<RRAM<STTRAM broken: %g, %g, %g",
				w, kang.RawYears, zhang.RawYears, chung.RawYears)
		}
	}
	// LLC-stressing workloads must wear faster than cache-resident ones:
	// exchange2's 30KB working set lives in L1, so its LLC barely wears,
	// while tonto's L2-overflowing hot set hammers a few LLC lines.
	if byKey["tonto/Kang_P"].RawYears >= byKey["exchange2/Kang_P"].RawYears {
		t.Errorf("tonto lifetime %g not below exchange2 %g on PCRAM",
			byKey["tonto/Kang_P"].RawYears, byKey["exchange2/Kang_P"].RawYears)
	}
}

func TestLifetimeCorrelatesWithWriteFeatures(t *testing.T) {
	study, err := Lifetime(context.Background(), testCfg(), []string{"Kang_P"})
	if err != nil {
		t.Fatal(err)
	}
	p := study.Panels[0]
	// Wear rate should track write-side behavior across the 16 workloads
	// more than read entropy alone — the Section VII hypothesis.
	wuniq, err := p.FeatureR("energy", "w_uniq")
	if err != nil {
		t.Fatal(err)
	}
	ft90w, err := p.FeatureR("energy", "90%ft_w")
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(wuniq) || math.IsNaN(ft90w) {
		t.Fatal("NaN correlations")
	}
	if wuniq <= 0.1 && ft90w <= 0.1 {
		t.Errorf("wear rate uncorrelated with write footprints (w_uniq %.2f, 90%%ft_w %.2f)", wuniq, ft90w)
	}
}

func TestLifetimeUnknownLLC(t *testing.T) {
	if _, err := Lifetime(context.Background(), testCfg(), []string{"nope"}); err == nil {
		t.Error("unknown LLC accepted")
	}
}

func TestLifetimeClassesCovered(t *testing.T) {
	study, err := Lifetime(context.Background(), testCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	classes := map[nvm.Class]bool{}
	for _, r := range study.Rows {
		classes[r.Class] = true
	}
	for _, c := range []nvm.Class{nvm.PCRAM, nvm.STTRAM, nvm.RRAM} {
		if !classes[c] {
			t.Errorf("class %v missing from default study", c)
		}
	}
}
