package sweep

import (
	"context"
	"fmt"

	"nvmllc/internal/charfw"
	"nvmllc/internal/prism"
	"nvmllc/internal/reference"
	"nvmllc/internal/workload"
)

// FeatureSource selects where Figure 4's feature vectors come from.
type FeatureSource int

const (
	// PaperFeatures uses the paper's published Table VI values (the
	// default — the released dataset a downstream user would correlate
	// against).
	PaperFeatures FeatureSource = iota
	// MeasuredFeatures characterizes this project's synthetic traces with
	// the prism profiler.
	MeasuredFeatures
)

// Figure4Config controls the correlation study.
type Figure4Config struct {
	Config
	// Source selects the feature table.
	Source FeatureSource
	// Workloads are the use cases to correlate over; nil means the paper's
	// AI set (deepsjeng, leela, exchange2).
	Workloads []string
	// NVMs are the LLCs to panel; nil means the paper's best three
	// (Jan_S, Xue_S, Hayakawa_R).
	NVMs []string
}

// Figure4 regenerates the paper's Figure 4: one correlation panel per
// (NVM, configuration) pair — fixed-capacity panels (a)-(c) then
// fixed-area panels (d)-(f) — correlating each workload's features with
// the NVM system's energy and speedup over the workload set.
func Figure4(ctx context.Context, cfg Figure4Config) ([]*charfw.Panel, error) {
	ws := cfg.Workloads
	if ws == nil {
		ws = workload.AINames()
	}
	nvms := cfg.NVMs
	if nvms == nil {
		nvms = append([]string(nil), reference.BestNVMs...)
	}

	fw, err := buildFramework(cfg, ws)
	if err != nil {
		return nil, err
	}

	// One simulation sweep per configuration over the target workloads,
	// both through one engine so shared design points (the SRAM baseline
	// is identical in the fixed-capacity and fixed-area model sets)
	// simulate exactly once.
	cfg.Config.Engine = cfg.Config.engineOrNew()
	fixCap, err := RunFigure(ctx, "fig4 fixed-capacity", reference.FixedCapacityModels(), ws, cfg.Config)
	if err != nil {
		return nil, err
	}
	fixArea, err := RunFigure(ctx, "fig4 fixed-area", reference.FixedAreaModels(), ws, cfg.Config)
	if err != nil {
		return nil, err
	}

	var panels []*charfw.Panel
	for _, block := range []struct {
		label string
		fig   *FigureResult
	}{{"fixed-capacity", fixCap}, {"fixed-area", fixArea}} {
		for _, nvm := range nvms {
			t := charfw.Targets{
				Name:    fmt.Sprintf("%s %s", nvm, block.label),
				Energy:  map[string]float64{},
				Speedup: map[string]float64{},
			}
			for _, w := range ws {
				sp, en, _, err := block.fig.Cell(w, nvm)
				if err != nil {
					return nil, err
				}
				t.Energy[w] = en
				t.Speedup[w] = sp
			}
			p, err := fw.PanelFor(ctx, ws, t)
			if err != nil {
				return nil, err
			}
			panels = append(panels, p)
		}
	}
	return panels, nil
}

// buildFramework assembles the feature table from the configured source.
func buildFramework(cfg Figure4Config, ws []string) (*charfw.Framework, error) {
	fw := charfw.New()
	switch cfg.Source {
	case PaperFeatures:
		paper := reference.PaperFeatures()
		for _, w := range ws {
			f, ok := paper[w]
			if !ok {
				return nil, fmt.Errorf("sweep: no published Table VI features for %q", w)
			}
			fw.AddWorkload(w, f)
		}
	case MeasuredFeatures:
		for _, w := range ws {
			p, err := workload.ByName(w)
			if err != nil {
				return nil, err
			}
			tr, err := workload.Generate(p, cfg.Opts)
			if err != nil {
				return nil, err
			}
			fw.AddWorkload(w, prism.Characterize(tr, prism.Config{}))
		}
	default:
		return nil, fmt.Errorf("sweep: unknown feature source %d", cfg.Source)
	}
	return fw, nil
}

// GeneralPurposeCorrelation runs the framework over all 16 characterized
// workloads (the paper's general-purpose case, where energy and execution
// time correlate most with total reads and writes). It returns one panel
// per configured NVM for the given configuration block.
func GeneralPurposeCorrelation(ctx context.Context, cfg Figure4Config) ([]*charfw.Panel, error) {
	cfg.Workloads = workload.CharacterizedNames()
	return Figure4(ctx, cfg)
}
