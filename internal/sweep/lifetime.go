package sweep

import (
	"context"

	"nvmllc/internal/charfw"
	"nvmllc/internal/endurance"
	"nvmllc/internal/engine"
	"nvmllc/internal/reference"
	"nvmllc/internal/system"
	"nvmllc/internal/workload"
)

// LifetimeRow is one (workload, LLC) lifetime projection.
type LifetimeRow struct {
	endurance.Projection
	// LLCWritesPerSec is the aggregate write rate, for context.
	LLCWritesPerSec float64
}

// LifetimeStudy projects LLC lifetime for every characterized workload on
// the given fixed-capacity NVM LLCs (default: one representative per
// class — Kang_P, Chung_S, Zhang_R — since endurance is a class
// property), and correlates the raw lifetime with the paper's workload
// features: the Section VII future-work study.
type LifetimeStudy struct {
	Rows []LifetimeRow
	// Panels hold, per LLC, the |Pearson r| of each workload feature with
	// the raw projected lifetime (a single-row "energy" panel reused for
	// lifetime).
	Panels []*charfw.Panel
}

// Lifetime runs the study.
func Lifetime(ctx context.Context, cfg Config, llcs []string) (*LifetimeStudy, error) {
	ctx, span := cfg.startSpan(ctx, "lifetime")
	defer span.End()
	if len(llcs) == 0 {
		llcs = []string{"Kang_P", "Chung_S", "Zhang_R"}
	}
	models := reference.FixedCapacityModels()
	names := workload.CharacterizedNames()
	eng := cfg.engineOrNew()

	study := &LifetimeStudy{}
	fw := charfw.FromFeatureMap(reference.PaperFeatures())
	for _, llcName := range llcs {
		model, err := reference.ModelByName(models, llcName)
		if err != nil {
			return nil, err
		}
		lifeByWorkload := map[string]float64{}
		for _, wlName := range names {
			p, err := workload.ByName(wlName)
			if err != nil {
				return nil, err
			}
			tr, err := workload.Generate(p, cfg.Opts)
			if err != nil {
				return nil, err
			}
			sysCfg := system.Gainestown(model)
			sysCfg.ModelWriteContention = cfg.WriteContention
			sysCfg.TrackWear = true
			r, err := eng.Run(ctx, engine.Job{
				Workload:  wlName,
				TraceOpts: cfg.Opts,
				Config:    sysCfg,
				Trace:     tr,
			})
			if err != nil {
				return nil, err
			}
			est, err := endurance.Estimate(r, endurance.Options{Class: model.Class})
			if err != nil {
				return nil, err
			}
			study.Rows = append(study.Rows, LifetimeRow{
				Projection:      est,
				LLCWritesPerSec: float64(r.LLC.Writes) / r.Seconds(),
			})
			lifeByWorkload[wlName] = est.RawYears
		}
		// Correlate wear RATE (1/lifetime) with features so the target is
		// finite and monotone in stress.
		rateByWorkload := map[string]float64{}
		for w, y := range lifeByWorkload {
			if y > 0 {
				rateByWorkload[w] = 1 / y
			}
		}
		panel, err := fw.PanelFor(ctx, names, charfw.Targets{
			Name:    llcName + " wear rate",
			Energy:  rateByWorkload,
			Speedup: rateByWorkload,
		})
		if err != nil {
			return nil, err
		}
		study.Panels = append(study.Panels, panel)
	}
	return study, nil
}
