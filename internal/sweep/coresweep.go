package sweep

import (
	"context"
	"fmt"

	"nvmllc/internal/engine"
	"nvmllc/internal/reference"
	"nvmllc/internal/system"
	"nvmllc/internal/trace"
	"nvmllc/internal/workload"
)

// CoreSweepResult holds the Section V-C sensitivity study for one
// workload: performance and LLC energy across core counts and LLC
// technologies, normalized to the single-core SRAM baseline.
type CoreSweepResult struct {
	// Workload is the benchmark name.
	Workload string
	// Cores lists the swept core counts.
	Cores []int
	// LLCs are the model names (including SRAM).
	LLCs []string
	// Speedup and Energy are indexed [coreIdx][llc], normalized to the
	// 1-core SRAM run.
	Speedup, Energy [][]float64
	// Raw holds the underlying results indexed the same way.
	Raw [][]*system.Result
}

// DefaultCoreCounts is the paper's sweep: 1 to 32 cores.
var DefaultCoreCounts = []int{1, 2, 4, 8, 16, 32}

// CoreSweep runs the Section V-C study: one multi-threaded workload across
// core counts for every fixed-area LLC model, normalized to 1-core SRAM.
func CoreSweep(ctx context.Context, name string, cores []int, cfg Config) (*CoreSweepResult, error) {
	ctx, span := cfg.startSpan(ctx, "core_sweep", "workload", name)
	defer span.End()
	p, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	if !p.MT {
		return nil, fmt.Errorf("sweep: core sweep needs a multi-threaded workload, %s is single-threaded", name)
	}
	if len(cores) == 0 {
		cores = DefaultCoreCounts
	}
	models := reference.FixedAreaModels()
	eng := cfg.engineOrNew()
	res := &CoreSweepResult{Workload: name, Cores: cores}
	for _, m := range models {
		res.LLCs = append(res.LLCs, m.Name)
	}

	var baseline *system.Result
	for _, n := range cores {
		opts := cfg.Opts
		opts.Threads = n
		tr, err := workload.Generate(p, opts)
		if err != nil {
			return nil, err
		}
		traces := map[string]*trace.Trace{name: tr}
		raw, err := runPoints(ctx, eng, models, []string{name}, traces, opts, cfg, n)
		if err != nil {
			return nil, err
		}
		if n == cores[0] {
			// Establish the single-core SRAM baseline from the first swept
			// count if it is 1; otherwise simulate it explicitly.
			if cores[0] == 1 {
				baseline = raw[name]["SRAM"]
			} else {
				opts1 := cfg.Opts
				opts1.Threads = 1
				tr1, err := workload.Generate(p, opts1)
				if err != nil {
					return nil, err
				}
				sysCfg := system.Gainestown(reference.SRAMBaseline()).WithCores(1)
				sysCfg.ModelWriteContention = cfg.WriteContention
				baseline, err = eng.Run(ctx, engine.Job{
					Workload:  name,
					TraceOpts: opts1,
					Config:    sysCfg,
					Trace:     tr1,
				})
				if err != nil {
					return nil, err
				}
			}
		}
		var sp, en []float64
		var rawRow []*system.Result
		for _, llc := range res.LLCs {
			r := raw[name][llc]
			if r == nil {
				return nil, fmt.Errorf("sweep: core sweep missing result for %s on %s at %d cores", name, llc, n)
			}
			sp = append(sp, baseline.TimeNS/r.TimeNS)
			en = append(en, r.LLCEnergyJ()/baseline.LLCEnergyJ())
			rawRow = append(rawRow, r)
		}
		res.Speedup = append(res.Speedup, sp)
		res.Energy = append(res.Energy, en)
		res.Raw = append(res.Raw, rawRow)
	}
	return res, nil
}

// CoreSweepWorkloads are the workloads Section V-C discusses.
var CoreSweepWorkloads = []string{"ft", "cg", "lu", "sp", "mg", "is"}
