package sweep

import (
	"context"
	"math"
	"strings"
	"testing"

	"nvmllc/internal/nvm"
	"nvmllc/internal/workload"
)

func degradationTestCfg() Config {
	return Config{Opts: workload.Options{Accesses: 15000, Seed: 3}}
}

// TestDegradationStudy is the artifact's acceptance property: over a
// shared absolute age ladder, the PCRAM LLC's effective capacity is
// monotonically non-increasing and actually degrades, while the STTRAM
// and SRAM curves hold flat at full capacity over the same years.
func TestDegradationStudy(t *testing.T) {
	study, err := Degradation(context.Background(), degradationTestCfg(), DegradationOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if study.Workload != "is" {
		t.Errorf("default workload %q", study.Workload)
	}
	if len(study.AgesYears) < 2 {
		t.Fatalf("age ladder too short: %v", study.AgesYears)
	}
	for i := 1; i < len(study.AgesYears); i++ {
		if study.AgesYears[i] <= study.AgesYears[i-1] {
			t.Fatalf("age ladder not increasing: %v", study.AgesYears)
		}
	}
	byClass := map[nvm.Class]DegradationCurve{}
	for _, c := range study.Curves {
		if len(c.Points) != len(study.AgesYears) {
			t.Fatalf("%s: %d points for %d ages", c.LLC, len(c.Points), len(study.AgesYears))
		}
		byClass[c.Class] = c
	}

	pcram, ok := byClass[nvm.PCRAM]
	if !ok {
		t.Fatal("no PCRAM curve in default LLC set")
	}
	if math.IsInf(pcram.NominalYears, 1) || pcram.NominalYears <= 0 {
		t.Fatalf("PCRAM nominal lifetime %g", pcram.NominalYears)
	}
	prev := 2.0
	for i, p := range pcram.Points {
		if p.CapacityFraction > prev {
			t.Fatalf("PCRAM capacity not monotone: point %d rose to %g from %g", i, p.CapacityFraction, prev)
		}
		prev = p.CapacityFraction
	}
	first, last := pcram.Points[0], pcram.Points[len(pcram.Points)-1]
	if first.CapacityFraction != 1 {
		t.Errorf("PCRAM capacity at age 0 is %g, want 1", first.CapacityFraction)
	}
	if last.CapacityFraction >= first.CapacityFraction {
		t.Errorf("PCRAM never degraded: first %g, last %g", first.CapacityFraction, last.CapacityFraction)
	}
	// The ladder tops out at 2× the nominal lifetime: essentially every
	// cell has exceeded its budget, so almost nothing survives.
	if last.CondemnedWays == 0 || last.DeadSets == 0 {
		t.Errorf("PCRAM end of life too healthy: %+v", last)
	}

	for _, class := range []nvm.Class{nvm.STTRAM, nvm.SRAM} {
		c, ok := byClass[class]
		if !ok {
			t.Fatalf("no %v curve in default LLC set", class)
		}
		for i, p := range c.Points {
			if p.CapacityFraction != 1 || p.CondemnedWays != 0 {
				t.Errorf("%v point %d degraded: %+v", class, i, p)
			}
		}
		// Flat curves must also be flat in performance: the replays are
		// one cached simulation, so IPC is identical at every age.
		for i := 1; i < len(c.Points); i++ {
			if c.Points[i].IPC != c.Points[0].IPC {
				t.Errorf("%v IPC varies across a flat curve", class)
			}
		}
	}
}

func TestDegradationExplicitOptions(t *testing.T) {
	study, err := Degradation(context.Background(), degradationTestCfg(), DegradationOptions{
		Workload:  "cg",
		LLCs:      []string{"SRAM"},
		AgesYears: []float64{0, 5},
		FaultSeed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if study.Workload != "cg" || len(study.Curves) != 1 || len(study.AgesYears) != 2 {
		t.Fatalf("options not honored: %+v", study)
	}
	if !math.IsInf(study.Curves[0].NominalYears, 1) {
		t.Errorf("SRAM nominal lifetime %g, want +Inf", study.Curves[0].NominalYears)
	}
}

func TestDegradationUnknownInputs(t *testing.T) {
	if _, err := Degradation(context.Background(), degradationTestCfg(), DegradationOptions{Workload: "nosuch"}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := Degradation(context.Background(), degradationTestCfg(), DegradationOptions{LLCs: []string{"nosuch"}}); err == nil {
		t.Error("unknown LLC accepted")
	}
}

func TestDeriveAgeLadder(t *testing.T) {
	flat := deriveAgeLadder([]DegradationCurve{{NominalYears: math.Inf(1)}})
	if len(flat) != 1 || flat[0] != 0 {
		t.Errorf("non-wearing ladder %v", flat)
	}
	ladder := deriveAgeLadder([]DegradationCurve{{NominalYears: math.Inf(1)}, {NominalYears: 4}})
	if len(ladder) != 8 || ladder[0] != 0 || ladder[len(ladder)-1] != 8 {
		t.Errorf("ladder %v", ladder)
	}
}

func TestArtifactRegistry(t *testing.T) {
	arts := Artifacts()
	if len(arts) == 0 {
		t.Fatal("empty registry")
	}
	seen := map[string]bool{}
	for _, a := range arts {
		if a.Name == "" || a.Title == "" || a.run == nil {
			t.Errorf("incomplete artifact %+v", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate artifact name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, want := range []string{"table5", "fig1a", "coresweep", "lifetime", "degradation"} {
		if !seen[want] {
			t.Errorf("registry missing %q", want)
		}
	}
	if names := ArtifactNames(); len(names) != len(arts) {
		t.Errorf("ArtifactNames length %d != %d", len(names), len(arts))
	}
	if _, err := Run(context.Background(), "nosuch", degradationTestCfg()); err == nil ||
		!strings.Contains(err.Error(), "unknown artifact") {
		t.Errorf("unknown artifact error = %v", err)
	}
}

// TestDegradationArtifact drives the registry entry end to end and
// checks the rendered tables carry the capacity column.
func TestDegradationArtifact(t *testing.T) {
	res, err := Run(context.Background(), "degradation", degradationTestCfg())
	if err != nil {
		t.Fatal(err)
	}
	study, ok := res.Value.(*DegradationStudy)
	if !ok {
		t.Fatalf("value type %T", res.Value)
	}
	if len(res.Renderers) != len(study.Curves) {
		t.Fatalf("%d renderers for %d curves", len(res.Renderers), len(study.Curves))
	}
	var sb strings.Builder
	for _, r := range res.Renderers {
		if err := r.Render(&sb); err != nil {
			t.Fatal(err)
		}
	}
	out := sb.String()
	for _, want := range []string{"Degradation over lifetime", "capacity", "Kang_P", "SRAM"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}
