package sweep

// Artifact registry: every table and figure this reproduction can emit,
// addressable by name. CLIs dispatch through Run instead of hard-coding
// one flag per artifact, so a new study (like the degradation sweep)
// becomes reachable everywhere by registering it here.

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Renderer is anything that can print itself; tablefmt.Table and
// tablefmt.Heatmap both satisfy it. It is structurally identical to
// cliutil.Renderer, so registry output plugs straight into
// cliutil.RenderAll without sweep importing CLI plumbing.
type Renderer interface {
	Render(w io.Writer) error
}

// ArtifactResult is what running an artifact produces: the typed study
// value (for programmatic consumers) and ready-to-print renderers (for
// CLIs).
type ArtifactResult struct {
	// Value is the artifact's native result: *FigureResult, []TableVRow,
	// *DegradationStudy, ... — callers type-switch when they need more
	// than the rendered form.
	Value any
	// Renderers print the artifact the way cmd/figures historically did,
	// in order, typically separated by blank lines.
	Renderers []Renderer
}

// Artifact is one registered table/figure generator.
type Artifact struct {
	// Name is the registry key, as passed to Run and to -artifact flags.
	Name string
	// Title is a one-line description for -help listings.
	Title string
	run   func(context.Context, Config) (*ArtifactResult, error)
}

// artifacts is the registry, in presentation order (the order cmd/figures
// prints under -all).
var artifacts = []Artifact{
	{"table5", "Table V: workload LLC MPKI (simulated vs paper)", runTableVArtifact},
	{"table6", "Table VI: workload features (measured vs paper)", runTableVIArtifact},
	{"fig1a", "Figure 1a: fixed-capacity, single-threaded", figureArtifact(Figure1a)},
	{"fig1b", "Figure 1b: fixed-capacity, multi-threaded", figureArtifact(Figure1b)},
	{"fig2a", "Figure 2a: fixed-area, single-threaded", figureArtifact(Figure2a)},
	{"fig2b", "Figure 2b: fixed-area, multi-threaded", figureArtifact(Figure2b)},
	{"coresweep", "Section V-C core sweep", runCoreSweepArtifact},
	{"fig4", "Figure 4 correlation heatmaps (paper's Table VI features)", figure4Artifact(PaperFeatures)},
	{"fig4measured", "Figure 4 correlation heatmaps (prism-measured features)", figure4Artifact(MeasuredFeatures)},
	{"lifetime", "endurance/lifetime study (Section VII future work)", runLifetimeArtifact},
	{"predict", "energy predictors trained on non-AI workloads, evaluated on the AI domain", runPredictArtifact},
	{"ablations", "design-lever ablation table (workload 'is' on Kang_P)", runAblationsArtifact},
	{"degradation", "wear-driven degradation over lifetime (capacity/IPC vs age)", runDegradationArtifact},
	{"timeline", "time-resolved phase study (per-epoch series, wear heatmaps)", runTimelineArtifact},
	{"estimate", "estimator validation: profile-predicted vs exact hit rate/MPKI/time per geometry", runEstimateArtifact},
}

// Artifacts lists every registered artifact in presentation order.
func Artifacts() []Artifact {
	out := make([]Artifact, len(artifacts))
	copy(out, artifacts)
	return out
}

// ArtifactNames lists the registered names, for flag help text.
func ArtifactNames() []string {
	names := make([]string, len(artifacts))
	for i, a := range artifacts {
		names[i] = a.Name
	}
	return names
}

// Run executes the named artifact. Unknown names list the registry
// (sorted) in the error, so a typo on a -artifact flag is self-repairing.
func Run(ctx context.Context, name string, cfg Config) (*ArtifactResult, error) {
	for _, a := range artifacts {
		if a.Name == name {
			return a.run(ctx, cfg)
		}
	}
	known := ArtifactNames()
	sort.Strings(known)
	return nil, fmt.Errorf("sweep: unknown artifact %q (known: %s)", name, strings.Join(known, ", "))
}
