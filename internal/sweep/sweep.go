// Package sweep is the experiment harness that regenerates the paper's
// evaluation artifacts: it generates each benchmark's trace, simulates it
// against every LLC model in both the fixed-capacity and fixed-area
// configurations (Section V), normalizes to the SRAM baseline, sweeps core
// counts (Section V-C), and feeds the results through the correlation
// framework (Section VI, Figure 4).
//
// All simulations run through an internal/engine Engine: every entry
// point takes a context.Context first (cancellation aborts in-flight
// simulations promptly) and Config can carry a shared Engine so repeated
// design points — most prominently the SRAM baseline shared by every
// figure — are simulated exactly once across calls.
package sweep

import (
	"context"
	"errors"
	"fmt"

	"nvmllc/internal/engine"
	"nvmllc/internal/nvsim"
	"nvmllc/internal/reference"
	"nvmllc/internal/system"
	"nvmllc/internal/telemetry"
	"nvmllc/internal/trace"
	"nvmllc/internal/workload"
)

// Config controls a sweep run.
type Config struct {
	// Opts shapes trace generation (length, seed). Threads is set by the
	// harness per experiment.
	Opts workload.Options
	// Parallelism bounds concurrent simulations (default: GOMAXPROCS).
	// Ignored when Engine is set — the engine's own bound wins.
	Parallelism int
	// WriteContention turns on LLC bank write contention (the ablation of
	// the paper's writes-off-critical-path assumption).
	WriteContention bool
	// Engine optionally supplies a shared experiment engine, so the
	// result cache and statistics span multiple sweep calls. When nil, a
	// private engine is built per call from the fields below.
	Engine *engine.Engine
	// DisableCache turns off result memoization in the private engine
	// (ignored when Engine is set).
	DisableCache bool
	// Progress streams engine events from the private engine (ignored
	// when Engine is set; install the callback on the shared engine
	// instead).
	Progress func(engine.Event)
	// Telemetry optionally receives sweep-level spans (one per figure,
	// table or study, tagged with its identity) and, via the engine,
	// per-design-point metrics. When Engine is set the shared engine's
	// own registry instruments the simulations; this field still drives
	// the sweep spans.
	Telemetry *telemetry.Registry
	// Estimator, when non-nil, switches figure/core-sweep/degradation
	// grids to the single-pass reuse-distance fast path (estimate.go):
	// exact simulation only for the SRAM anchor and Estimator.PinExact
	// models, profile-derived estimates (Result.Estimated) for the rest.
	// Nil — the default — keeps every sweep exactly simulated,
	// byte-identical to the pre-estimator behavior.
	Estimator *Estimator
}

// engineOrNew returns the configured shared engine, or builds a private
// one from the config's knobs.
func (c Config) engineOrNew() *engine.Engine {
	if c.Engine != nil {
		return c.Engine
	}
	var opts []engine.Option
	if c.Parallelism > 0 {
		opts = append(opts, engine.WithParallelism(c.Parallelism))
	}
	if c.DisableCache {
		opts = append(opts, engine.WithoutCache())
	}
	if c.Progress != nil {
		opts = append(opts, engine.WithProgress(c.Progress))
	}
	if c.Telemetry != nil {
		opts = append(opts, engine.WithTelemetry(c.Telemetry))
	}
	return engine.New(opts...)
}

// startSpan opens a sweep-level span and threads it through the returned
// context, so the engine's per-design-point "simulate" spans parent to
// it. attrs are alternating key/value pairs tagging the span's identity
// (figure title, workload, LLC). Nil-safe: with no Telemetry configured
// everything degrades to no-ops.
func (c Config) startSpan(ctx context.Context, name string, attrs ...string) (context.Context, *telemetry.Span) {
	span := c.Telemetry.StartSpan(name, telemetry.SpanFromContext(ctx))
	for i := 0; i+1 < len(attrs); i += 2 {
		span.SetAttr(attrs[i], attrs[i+1])
	}
	return telemetry.ContextWithSpan(ctx, span), span
}

// ErrNoCell reports a Cell lookup for a workload/LLC pair the figure does
// not contain.
var ErrNoCell = errors.New("sweep: no such figure cell")

// FigureResult holds one of the paper's bar-chart figures: per-workload,
// per-NVM speedup, LLC energy and ED²P, all normalized to the SRAM
// baseline (value 1.0 = SRAM).
type FigureResult struct {
	// Title labels the figure (e.g. "Figure 1a: fixed-capacity,
	// single-threaded").
	Title string
	// Workloads are the row labels in Table V order.
	Workloads []string
	// LLCs are the column labels (the ten NVM LLC names).
	LLCs []string
	// Speedup, Energy and ED2P are indexed [workload][llc].
	Speedup, Energy, ED2P [][]float64
	// Raw holds every simulation result keyed by workload then LLC name
	// (including "SRAM"). On a partial run it also carries rows for
	// workloads that did not complete normalization.
	Raw map[string]map[string]*system.Result

	// workloadIdx and llcIdx are name→index maps built at construction so
	// Cell is O(1).
	workloadIdx, llcIdx map[string]int
}

// newFigureResult builds the empty figure with its column index.
func newFigureResult(title string, models []nvsim.LLCModel, raw map[string]map[string]*system.Result) *FigureResult {
	fig := &FigureResult{
		Title:       title,
		Raw:         raw,
		workloadIdx: make(map[string]int),
		llcIdx:      make(map[string]int, len(models)),
	}
	for _, m := range models {
		if m.Name != "SRAM" {
			fig.llcIdx[m.Name] = len(fig.LLCs)
			fig.LLCs = append(fig.LLCs, m.Name)
		}
	}
	return fig
}

// addRow appends one workload's normalized row and indexes it.
func (f *FigureResult) addRow(w string, sp, en, ed []float64) {
	f.workloadIdx[w] = len(f.Workloads)
	f.Workloads = append(f.Workloads, w)
	f.Speedup = append(f.Speedup, sp)
	f.Energy = append(f.Energy, en)
	f.ED2P = append(f.ED2P, ed)
}

// Cell returns the normalized triple for a workload/LLC pair. Unknown
// pairs (including workloads dropped from a partial run) report ErrNoCell.
func (f *FigureResult) Cell(workloadName, llc string) (speedup, energy, ed2p float64, err error) {
	wi, okW := f.workloadIdx[workloadName]
	li, okL := f.llcIdx[llc]
	if !okW || !okL {
		return 0, 0, 0, fmt.Errorf("%w: %s/%s", ErrNoCell, workloadName, llc)
	}
	return f.Speedup[wi][li], f.Energy[wi][li], f.ED2P[wi][li], nil
}

// RunFigure simulates the named workloads against the model set (which
// must include the SRAM baseline) and returns SRAM-normalized results.
//
// On failure of individual design points it returns the partial figure —
// normalized rows for every workload whose full row completed, plus all
// completed raw results — together with every job error joined via
// errors.Join, so callers can render what finished.
func RunFigure(ctx context.Context, title string, models []nvsim.LLCModel, names []string, cfg Config) (*FigureResult, error) {
	ctx, span := cfg.startSpan(ctx, "figure", "title", title)
	defer span.End()
	var sramIdx = -1
	for i, m := range models {
		if m.Name == "SRAM" {
			sramIdx = i
		}
	}
	if sramIdx < 0 {
		return nil, fmt.Errorf("sweep: model set lacks the SRAM baseline")
	}

	// Generate traces serially (cheap) so simulations can share them.
	traces := make(map[string]*trace.Trace, len(names))
	for _, name := range names {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		tr, err := workload.Generate(p, cfg.Opts)
		if err != nil {
			return nil, err
		}
		traces[name] = tr
	}

	raw, runErr := runPoints(ctx, cfg.engineOrNew(), models, names, traces, cfg.Opts, cfg, 0)

	fig := newFigureResult(title, models, raw)
	for _, w := range names {
		base := raw[w]["SRAM"]
		if base == nil {
			if runErr == nil {
				runErr = fmt.Errorf("sweep: missing SRAM baseline result for %s", w)
			}
			continue
		}
		var sp, en, ed []float64
		complete := true
		for _, llc := range fig.LLCs {
			r := raw[w][llc]
			if r == nil {
				complete = false
				break
			}
			sp = append(sp, base.TimeNS/r.TimeNS)
			en = append(en, r.LLCEnergyJ()/base.LLCEnergyJ())
			ed = append(ed, r.ED2P()/base.ED2P())
		}
		if complete {
			fig.addRow(w, sp, en, ed)
		}
	}
	if runErr != nil {
		return fig, runErr
	}
	return fig, nil
}

// runAll simulates every (workload, model) pair through the engine.
// coresOverride > 0 forces the core count (core sweep); otherwise the
// Gainestown quad-core is used. genOpts must be the workload.Options the
// traces were generated with (they key the engine's cache).
//
// The returned map holds every design point that completed, even when the
// joined error is non-nil — callers decide what to do with partial grids.
func runAll(ctx context.Context, eng *engine.Engine, models []nvsim.LLCModel, names []string, traces map[string]*trace.Trace, genOpts workload.Options, cfg Config, coresOverride int) (map[string]map[string]*system.Result, error) {
	jobs := make([]engine.Job, 0, len(names)*len(models))
	for _, n := range names {
		for _, m := range models {
			sysCfg := system.Gainestown(m)
			sysCfg.ModelWriteContention = cfg.WriteContention
			if coresOverride > 0 {
				sysCfg = sysCfg.WithCores(coresOverride)
			}
			jobs = append(jobs, engine.Job{
				Workload:  n,
				TraceOpts: genOpts,
				Config:    sysCfg,
				Trace:     traces[n],
			})
		}
	}
	results, err := eng.RunAll(ctx, jobs)
	raw := make(map[string]map[string]*system.Result, len(names))
	for _, n := range names {
		raw[n] = make(map[string]*system.Result, len(models))
	}
	for i, r := range results {
		if r != nil {
			raw[jobs[i].Workload][jobs[i].LLCName()] = r
		}
	}
	return raw, err
}

// workloadNames splits Table V's workloads by threading.
func workloadNames(multiThreaded bool) []string {
	var out []string
	for _, w := range reference.Workloads() {
		if w.MultiThreaded == multiThreaded {
			out = append(out, w.Name)
		}
	}
	return out
}

// Figure1a regenerates Figure 1a: fixed-capacity, single-threaded.
func Figure1a(ctx context.Context, cfg Config) (*FigureResult, error) {
	return RunFigure(ctx, "Figure 1a: fixed-capacity LLC, single-threaded workloads",
		reference.FixedCapacityModels(), workloadNames(false), cfg)
}

// Figure1b regenerates Figure 1b: fixed-capacity, multi-threaded.
func Figure1b(ctx context.Context, cfg Config) (*FigureResult, error) {
	return RunFigure(ctx, "Figure 1b: fixed-capacity LLC, multi-threaded workloads",
		reference.FixedCapacityModels(), workloadNames(true), cfg)
}

// Figure2a regenerates Figure 2a: fixed-area, single-threaded.
func Figure2a(ctx context.Context, cfg Config) (*FigureResult, error) {
	return RunFigure(ctx, "Figure 2a: fixed-area LLC, single-threaded workloads",
		reference.FixedAreaModels(), workloadNames(false), cfg)
}

// Figure2b regenerates Figure 2b: fixed-area, multi-threaded.
func Figure2b(ctx context.Context, cfg Config) (*FigureResult, error) {
	return RunFigure(ctx, "Figure 2b: fixed-area LLC, multi-threaded workloads",
		reference.FixedAreaModels(), workloadNames(true), cfg)
}
