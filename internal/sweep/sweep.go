// Package sweep is the experiment harness that regenerates the paper's
// evaluation artifacts: it generates each benchmark's trace, simulates it
// against every LLC model in both the fixed-capacity and fixed-area
// configurations (Section V), normalizes to the SRAM baseline, sweeps core
// counts (Section V-C), and feeds the results through the correlation
// framework (Section VI, Figure 4).
package sweep

import (
	"fmt"
	"runtime"
	"sync"

	"nvmllc/internal/nvsim"
	"nvmllc/internal/reference"
	"nvmllc/internal/system"
	"nvmllc/internal/trace"
	"nvmllc/internal/workload"
)

// Config controls a sweep run.
type Config struct {
	// Opts shapes trace generation (length, seed). Threads is set by the
	// harness per experiment.
	Opts workload.Options
	// Parallelism bounds concurrent simulations (default: GOMAXPROCS).
	Parallelism int
	// WriteContention turns on LLC bank write contention (the ablation of
	// the paper's writes-off-critical-path assumption).
	WriteContention bool
}

func (c Config) workers() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// FigureResult holds one of the paper's bar-chart figures: per-workload,
// per-NVM speedup, LLC energy and ED²P, all normalized to the SRAM
// baseline (value 1.0 = SRAM).
type FigureResult struct {
	// Title labels the figure (e.g. "Figure 1a: fixed-capacity,
	// single-threaded").
	Title string
	// Workloads are the row labels in Table V order.
	Workloads []string
	// LLCs are the column labels (the ten NVM LLC names).
	LLCs []string
	// Speedup, Energy and ED2P are indexed [workload][llc].
	Speedup, Energy, ED2P [][]float64
	// Raw holds every simulation result keyed by workload then LLC name
	// (including "SRAM").
	Raw map[string]map[string]*system.Result
}

// Cell returns the normalized triple for a workload/LLC pair.
func (f *FigureResult) Cell(workloadName, llc string) (speedup, energy, ed2p float64, err error) {
	wi, li := -1, -1
	for i, w := range f.Workloads {
		if w == workloadName {
			wi = i
		}
	}
	for i, l := range f.LLCs {
		if l == llc {
			li = i
		}
	}
	if wi < 0 || li < 0 {
		return 0, 0, 0, fmt.Errorf("sweep: no cell for %s/%s", workloadName, llc)
	}
	return f.Speedup[wi][li], f.Energy[wi][li], f.ED2P[wi][li], nil
}

// RunFigure simulates the named workloads against the model set (which
// must include the SRAM baseline) and returns SRAM-normalized results.
func RunFigure(title string, models []nvsim.LLCModel, names []string, cfg Config) (*FigureResult, error) {
	var sramIdx = -1
	for i, m := range models {
		if m.Name == "SRAM" {
			sramIdx = i
		}
	}
	if sramIdx < 0 {
		return nil, fmt.Errorf("sweep: model set lacks the SRAM baseline")
	}

	// Generate traces serially (cheap) so simulations can share them.
	traces := make(map[string]*trace.Trace, len(names))
	for _, name := range names {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		tr, err := workload.Generate(p, cfg.Opts)
		if err != nil {
			return nil, err
		}
		traces[name] = tr
	}

	raw, err := runAll(models, names, traces, cfg, 0)
	if err != nil {
		return nil, err
	}

	fig := &FigureResult{Title: title, Workloads: names, Raw: raw}
	for _, m := range models {
		if m.Name != "SRAM" {
			fig.LLCs = append(fig.LLCs, m.Name)
		}
	}
	for _, w := range names {
		base := raw[w]["SRAM"]
		if base == nil {
			return nil, fmt.Errorf("sweep: missing SRAM baseline result for %s", w)
		}
		var sp, en, ed []float64
		for _, llc := range fig.LLCs {
			r := raw[w][llc]
			sp = append(sp, base.TimeNS/r.TimeNS)
			en = append(en, r.LLCEnergyJ()/base.LLCEnergyJ())
			ed = append(ed, r.ED2P()/base.ED2P())
		}
		fig.Speedup = append(fig.Speedup, sp)
		fig.Energy = append(fig.Energy, en)
		fig.ED2P = append(fig.ED2P, ed)
	}
	return fig, nil
}

// runAll simulates every (workload, model) pair with a bounded worker
// pool. coresOverride > 0 forces the core count (core sweep); otherwise
// the Gainestown quad-core is used.
func runAll(models []nvsim.LLCModel, names []string, traces map[string]*trace.Trace, cfg Config, coresOverride int) (map[string]map[string]*system.Result, error) {
	type job struct {
		workload string
		model    nvsim.LLCModel
	}
	jobs := make(chan job)
	var mu sync.Mutex
	raw := make(map[string]map[string]*system.Result, len(names))
	for _, n := range names {
		raw[n] = make(map[string]*system.Result, len(models))
	}
	var firstErr error
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				sysCfg := system.Gainestown(j.model)
				sysCfg.ModelWriteContention = cfg.WriteContention
				if coresOverride > 0 {
					sysCfg = sysCfg.WithCores(coresOverride)
				}
				r, err := system.Run(sysCfg, traces[j.workload])
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("sweep: %s on %s: %w", j.workload, j.model.Name, err)
					}
				} else {
					raw[j.workload][j.model.Name] = r
				}
				mu.Unlock()
			}
		}()
	}
	for _, n := range names {
		for _, m := range models {
			jobs <- job{workload: n, model: m}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return raw, nil
}

// workloadNames splits Table V's workloads by threading.
func workloadNames(multiThreaded bool) []string {
	var out []string
	for _, w := range reference.Workloads() {
		if w.MultiThreaded == multiThreaded {
			out = append(out, w.Name)
		}
	}
	return out
}

// Figure1a regenerates Figure 1a: fixed-capacity, single-threaded.
func Figure1a(cfg Config) (*FigureResult, error) {
	return RunFigure("Figure 1a: fixed-capacity LLC, single-threaded workloads",
		reference.FixedCapacityModels(), workloadNames(false), cfg)
}

// Figure1b regenerates Figure 1b: fixed-capacity, multi-threaded.
func Figure1b(cfg Config) (*FigureResult, error) {
	return RunFigure("Figure 1b: fixed-capacity LLC, multi-threaded workloads",
		reference.FixedCapacityModels(), workloadNames(true), cfg)
}

// Figure2a regenerates Figure 2a: fixed-area, single-threaded.
func Figure2a(cfg Config) (*FigureResult, error) {
	return RunFigure("Figure 2a: fixed-area LLC, single-threaded workloads",
		reference.FixedAreaModels(), workloadNames(false), cfg)
}

// Figure2b regenerates Figure 2b: fixed-area, multi-threaded.
func Figure2b(cfg Config) (*FigureResult, error) {
	return RunFigure("Figure 2b: fixed-area LLC, multi-threaded workloads",
		reference.FixedAreaModels(), workloadNames(true), cfg)
}
