package sweep

import (
	"context"
	"testing"

	"nvmllc/internal/reference"
	"nvmllc/internal/workload"
)

// testCfg keeps integration runs fast.
func testCfg() Config {
	return Config{Opts: workload.Options{Accesses: 80000, Seed: 3}}
}

func TestRunFigureRequiresSRAM(t *testing.T) {
	models := reference.NVMModels(reference.FixedCapacityModels())
	if _, err := RunFigure(context.Background(), "x", models, []string{"tonto"}, testCfg()); err == nil {
		t.Error("model set without SRAM accepted")
	}
}

func TestRunFigureUnknownWorkload(t *testing.T) {
	if _, err := RunFigure(context.Background(), "x", reference.FixedCapacityModels(), []string{"quake"}, testCfg()); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestFigure1aShape(t *testing.T) {
	fig, err := Figure1a(context.Background(), testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Workloads) != 11 {
		t.Fatalf("single-threaded workloads = %d, want 11", len(fig.Workloads))
	}
	if len(fig.LLCs) != 10 {
		t.Fatalf("NVM LLCs = %d, want 10", len(fig.LLCs))
	}
	for wi, w := range fig.Workloads {
		for li, llc := range fig.LLCs {
			sp := fig.Speedup[wi][li]
			// Paper Section V-A1: fixed-capacity speedups sit near 1
			// (−1% to −3% typical); allow a slightly wider band.
			if sp < 0.90 || sp > 1.10 {
				t.Errorf("%s/%s: fixed-capacity speedup %.3f outside [0.90,1.10]", w, llc, sp)
			}
			if fig.Energy[wi][li] <= 0 || fig.ED2P[wi][li] <= 0 {
				t.Errorf("%s/%s: non-positive normalized energy/ED2P", w, llc)
			}
		}
	}
}

func TestFigure1aEnergyHeadlines(t *testing.T) {
	fig, err := Figure1a(context.Background(), testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: NVM LLC energy is up to 10× less than SRAM in most cases;
	// Kang_P and Oh_P (PCRAM) are the worst cases, well above SRAM on
	// write-heavy workloads like bzip2.
	_, janEn, _, err := fig.Cell("bzip2", "Jan_S")
	if err != nil {
		t.Fatal(err)
	}
	if janEn > 0.3 {
		t.Errorf("Jan_S bzip2 energy = %.3f× SRAM, want ≤ 0.3 (paper: ~0.1)", janEn)
	}
	_, kangEn, _, err := fig.Cell("bzip2", "Kang_P")
	if err != nil {
		t.Fatal(err)
	}
	if kangEn < 2 {
		t.Errorf("Kang_P bzip2 energy = %.3f× SRAM, want ≥ 2 (paper: up to 6×)", kangEn)
	}
	// exchange2 exercises the LLC least of the AI trio: even for Kang_P
	// its energy blowup is far milder than deepsjeng's, and the
	// low-leakage Jan_S stays well below SRAM.
	_, exKang, _, err := fig.Cell("exchange2", "Kang_P")
	if err != nil {
		t.Fatal(err)
	}
	_, dsKang, _, err := fig.Cell("deepsjeng", "Kang_P")
	if err != nil {
		t.Fatal(err)
	}
	if exKang >= dsKang {
		t.Errorf("Kang_P energy: exchange2 %.3f not below deepsjeng %.3f", exKang, dsKang)
	}
	_, exJan, _, err := fig.Cell("exchange2", "Jan_S")
	if err != nil {
		t.Fatal(err)
	}
	if exJan > 0.3 {
		t.Errorf("Jan_S exchange2 energy = %.3f× SRAM, want ≤ 0.3", exJan)
	}
}

func TestFigure1bMultiThreaded(t *testing.T) {
	fig, err := Figure1b(context.Background(), testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Workloads) != 9 {
		t.Fatalf("multi-threaded workloads = %d, want 9", len(fig.Workloads))
	}
	// Paper V-A4: multi-threaded fixed-capacity performance is mostly
	// agnostic to LLC technology (within ~10%).
	for wi, w := range fig.Workloads {
		for li, llc := range fig.LLCs {
			if sp := fig.Speedup[wi][li]; sp < 0.85 || sp > 1.15 {
				t.Errorf("%s/%s: speedup %.3f outside [0.85,1.15]", w, llc, sp)
			}
		}
	}
}

func TestFigure2aFixedAreaCapacityWins(t *testing.T) {
	// Capacity effects need multi-pass traces: at 500K accesses bzip2
	// sweeps its 6MB working set several times, so the 128MB Zhang_R
	// holds it while the 1MB Jan_S thrashes (paper: Zhang_R gains ~20%
	// on bzip2 at fixed-area).
	cfg := Config{Opts: workload.Options{Accesses: 500000, Seed: 3}}
	fig, err := RunFigure(context.Background(), "fixed-area bzip2", reference.FixedAreaModels(), []string{"bzip2"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	spZhang, _, _, err := fig.Cell("bzip2", "Zhang_R")
	if err != nil {
		t.Fatal(err)
	}
	spJan, _, _, err := fig.Cell("bzip2", "Jan_S")
	if err != nil {
		t.Fatal(err)
	}
	if spZhang <= spJan {
		t.Errorf("fixed-area bzip2: Zhang_R speedup %.3f not above Jan_S %.3f", spZhang, spJan)
	}
	if spZhang < 1.02 {
		t.Errorf("fixed-area bzip2: Zhang_R speedup %.3f, want > 1.02 (capacity win)", spZhang)
	}
}

func TestFigure2bFixedAreaHeadlines(t *testing.T) {
	fig, err := Figure2b(context.Background(), testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Paper V-B4: Jan_S loses >10% on ft (1MB LLC); dense NVMs
	// (Hayakawa_R 32MB) gain on capacity-starved workloads like ft.
	spJan, _, _, err := fig.Cell("ft", "Jan_S")
	if err != nil {
		t.Fatal(err)
	}
	if spJan > 0.9 {
		t.Errorf("fixed-area ft: Jan_S speedup %.3f, paper reports >10%% reduction", spJan)
	}
	spHay, _, _, err := fig.Cell("ft", "Hayakawa_R")
	if err != nil {
		t.Fatal(err)
	}
	if spHay <= spJan {
		t.Errorf("fixed-area ft: Hayakawa_R %.3f should beat Jan_S %.3f", spHay, spJan)
	}
	// Jan_S remains the energy winner on LLC-light workloads (lowest
	// leakage), e.g. vips.
	_, enJan, _, err := fig.Cell("vips", "Jan_S")
	if err != nil {
		t.Fatal(err)
	}
	_, enZhang, _, err := fig.Cell("vips", "Zhang_R")
	if err != nil {
		t.Fatal(err)
	}
	if enJan >= enZhang {
		t.Errorf("fixed-area vips: Jan_S energy %.3f not below Zhang_R %.3f", enJan, enZhang)
	}
}

func TestCoreSweepRuns(t *testing.T) {
	cfg := testCfg()
	res, err := CoreSweep(context.Background(), "ft", []int{1, 2, 4}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 3 || len(res.Speedup) != 3 {
		t.Fatalf("sweep shape wrong: %d cores, %d rows", len(res.Cores), len(res.Speedup))
	}
	if len(res.LLCs) != 11 {
		t.Fatalf("LLCs = %d, want 11", len(res.LLCs))
	}
	// SRAM at 1 core is the baseline: its speedup must be 1.
	sramIdx := -1
	for i, l := range res.LLCs {
		if l == "SRAM" {
			sramIdx = i
		}
	}
	if got := res.Speedup[0][sramIdx]; got != 1 {
		t.Errorf("1-core SRAM speedup = %g, want 1 (self-normalized)", got)
	}
	// More cores must speed up the parallel workload on SRAM.
	if res.Speedup[2][sramIdx] <= res.Speedup[0][sramIdx] {
		t.Errorf("4-core speedup %.3f not above 1-core %.3f", res.Speedup[2][sramIdx], res.Speedup[0][sramIdx])
	}
}

func TestCoreSweepRejectsSingleThreaded(t *testing.T) {
	if _, err := CoreSweep(context.Background(), "bzip2", nil, testCfg()); err == nil {
		t.Error("single-threaded workload accepted for core sweep")
	}
}

func TestCoreSweepUmekiEnergyWorst(t *testing.T) {
	// Paper V-C2: Umeki_S has the worst NVM energy efficiency at scale —
	// slow (2MB) so the system leaks longer. Check it is worse than
	// Xue_S (8MB, fast) at the largest swept core count on a
	// capacity-hungry workload.
	// The effect needs a multi-pass trace so capacity (2MB Umeki vs 8MB
	// Xue against mg's 5.6MB working set) separates the runtimes.
	cfg := Config{Opts: workload.Options{Accesses: 700000, Seed: 3}}
	res, err := CoreSweep(context.Background(), "mg", []int{8}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	idx := func(name string) int {
		for i, l := range res.LLCs {
			if l == name {
				return i
			}
		}
		return -1
	}
	last := len(res.Cores) - 1
	uRaw, xRaw := res.Raw[last][idx("Umeki_S")], res.Raw[last][idx("Xue_S")]
	if uRaw.TimeNS <= xRaw.TimeNS {
		t.Errorf("8-core mg: Umeki_S time %.3g not above Xue_S %.3g", uRaw.TimeNS, xRaw.TimeNS)
	}
	umeki, xue := uRaw.LLCEnergyJ(), xRaw.LLCEnergyJ()
	if umeki <= xue {
		t.Errorf("8-core mg: Umeki_S energy %.3g not above Xue_S %.3g (slow system leaks longer)", umeki, xue)
	}
}

func TestTableVOrderingHighlights(t *testing.T) {
	rows, err := TableV(context.Background(), testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("rows = %d, want 20", len(rows))
	}
	mpki := map[string]float64{}
	for _, r := range rows {
		if r.MPKI < 0 {
			t.Errorf("%s: negative MPKI", r.Workload)
		}
		mpki[r.Workload] = r.MPKI
	}
	// Headline orderings preserved: bzip2 and cg stress the LLC hard;
	// vips, tonto, ep and exchange2 barely miss.
	for _, hi := range []string{"bzip2", "cg", "mg"} {
		for _, lo := range []string{"vips", "tonto", "ep", "exchange2", "perlbench"} {
			if mpki[hi] <= mpki[lo] {
				t.Errorf("MPKI ordering: %s (%.1f) not above %s (%.1f)", hi, mpki[hi], lo, mpki[lo])
			}
		}
	}
}

func TestTableVIMeasuredAgainstPaper(t *testing.T) {
	rows, err := TableVI(context.Background(), testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("rows = %d, want 16", len(rows))
	}
	for _, r := range rows {
		if r.Measured.TotalReads == 0 || r.Measured.TotalWrites == 0 {
			t.Errorf("%s: empty measurement", r.Workload)
		}
		if r.Paper.TotalReads == 0 {
			t.Errorf("%s: missing paper features", r.Workload)
		}
	}
}

func TestFigure4PanelsAndHeadline(t *testing.T) {
	cfg := Figure4Config{Config: testCfg()}
	panels, err := Figure4(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 6 {
		t.Fatalf("panels = %d, want 6 (3 NVMs × 2 configs)", len(panels))
	}
	// The paper's AI headline: energy correlates strongly with write
	// entropy and write footprints, negligibly with total reads/writes.
	// Verify for at least 4 of the 6 panels (small-sample correlations
	// are noisy with only 3 workloads).
	holds := 0
	for _, p := range panels {
		hwg, _ := p.FeatureR("energy", "H_wg")
		wuniq, _ := p.FeatureR("energy", "w_uniq")
		rtot, _ := p.FeatureR("energy", "r_total")
		if (hwg > 0.8 || wuniq > 0.8) && rtot < hwg+0.1 {
			holds++
		}
	}
	if holds < 4 {
		t.Errorf("AI write-feature correlation headline holds in only %d/6 panels", holds)
	}
}

func TestFigure4MeasuredFeatures(t *testing.T) {
	cfg := Figure4Config{Config: testCfg(), Source: MeasuredFeatures}
	panels, err := Figure4(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 6 {
		t.Fatalf("panels = %d, want 6", len(panels))
	}
}

func TestFigure4BadSource(t *testing.T) {
	cfg := Figure4Config{Config: testCfg(), Source: FeatureSource(9)}
	if _, err := Figure4(context.Background(), cfg); err == nil {
		t.Error("bad feature source accepted")
	}
}

func TestGeneralPurposeCorrelationTotalsDominate(t *testing.T) {
	// Paper Section VI: over ALL workloads, LLC energy is most highly
	// correlated with total reads and writes.
	cfg := Figure4Config{Config: testCfg()}
	panels, err := GeneralPurposeCorrelation(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	holds := 0
	for _, p := range panels {
		rtot, _ := p.FeatureR("energy", "r_total")
		wtot, _ := p.FeatureR("energy", "w_tot")
		if wtot == 0 {
			wtot, _ = p.FeatureR("energy", "w_total")
		}
		hrg, _ := p.FeatureR("energy", "H_rg")
		if rtot > 0.4 || wtot > 0.4 || rtot > hrg {
			holds++
		}
	}
	if holds < 3 {
		t.Errorf("general-purpose totals correlation holds in only %d/%d panels", holds, len(panels))
	}
}

func TestFigure2aSmoke(t *testing.T) {
	fig, err := Figure2a(context.Background(), Config{Opts: workload.Options{Accesses: 20000, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Workloads) != 11 || len(fig.LLCs) != 10 {
		t.Fatalf("shape = %d×%d", len(fig.Workloads), len(fig.LLCs))
	}
	for wi := range fig.Workloads {
		for li := range fig.LLCs {
			if fig.Energy[wi][li] <= 0 || fig.Speedup[wi][li] <= 0 {
				t.Fatalf("non-positive cell at %d,%d", wi, li)
			}
		}
	}
	// Parallelism setting must not change results.
	cfg1 := Config{Opts: workload.Options{Accesses: 20000, Seed: 3}, Parallelism: 1}
	fig1, err := Figure2a(context.Background(), cfg1)
	if err != nil {
		t.Fatal(err)
	}
	for wi := range fig.Workloads {
		for li := range fig.LLCs {
			if fig.Speedup[wi][li] != fig1.Speedup[wi][li] {
				t.Fatalf("parallelism changed results at %d,%d", wi, li)
			}
		}
	}
}
