package sweep

import (
	"context"

	"nvmllc/internal/engine"
	"nvmllc/internal/prism"
	"nvmllc/internal/reference"
	"nvmllc/internal/system"
	"nvmllc/internal/workload"
)

// TableVRow is one row of the regenerated Table V: a workload and its
// simulated LLC MPKI on the SRAM baseline, next to the paper's value.
type TableVRow struct {
	Workload  string
	Suite     string
	MPKI      float64
	PaperMPKI float64
}

// TableV simulates every Table V workload on the baseline SRAM system and
// reports its LLC MPKI alongside the paper's measurement.
func TableV(ctx context.Context, cfg Config) ([]TableVRow, error) {
	ctx, span := cfg.startSpan(ctx, "table_v")
	defer span.End()
	eng := cfg.engineOrNew()
	rows := make([]TableVRow, 0, len(reference.Workloads()))
	for _, w := range reference.Workloads() {
		p, err := workload.ByName(w.Name)
		if err != nil {
			return nil, err
		}
		tr, err := workload.Generate(p, cfg.Opts)
		if err != nil {
			return nil, err
		}
		sysCfg := system.Gainestown(reference.SRAMBaseline())
		sysCfg.ModelWriteContention = cfg.WriteContention
		r, err := eng.Run(ctx, engine.Job{
			Workload:  w.Name,
			TraceOpts: cfg.Opts,
			Config:    sysCfg,
			Trace:     tr,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, TableVRow{
			Workload:  w.Name,
			Suite:     w.Suite,
			MPKI:      r.LLCMPKI(),
			PaperMPKI: w.LLCMPKI,
		})
	}
	return rows, nil
}

// TableVIRow pairs a workload with its measured features and the paper's.
type TableVIRow struct {
	Workload string
	Measured prism.Features
	Paper    prism.Features
}

// TableVI characterizes the 16 PRISM-compatible workloads with the prism
// profiler and pairs each with the paper's published features.
func TableVI(ctx context.Context, cfg Config) ([]TableVIRow, error) {
	_, span := cfg.startSpan(ctx, "table_vi")
	defer span.End()
	paper := reference.PaperFeatures()
	rows := make([]TableVIRow, 0, 16)
	for _, name := range workload.CharacterizedNames() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		tr, err := workload.Generate(p, cfg.Opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, TableVIRow{
			Workload: name,
			Measured: prism.Characterize(tr, prism.Config{}),
			Paper:    paper[name],
		})
	}
	return rows, nil
}
