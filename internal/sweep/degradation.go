package sweep

// Degradation-over-lifetime study: the simulated counterpart of the
// analytical Lifetime table. Where Lifetime projects when the first cell
// dies, this artifact replays a workload at increasing cumulative-wear
// points (internal/fault pre-aging) and measures what the cache is still
// worth past that point: effective capacity, IPC and MPKI as faulty ways
// are disabled set by set — the L2C2-style graceful-degradation regime
// (Escuin et al., arXiv:2204.09504).

import (
	"context"
	"fmt"
	"math"

	"nvmllc/internal/cache"
	"nvmllc/internal/endurance"
	"nvmllc/internal/engine"
	"nvmllc/internal/fault"
	"nvmllc/internal/nvm"
	"nvmllc/internal/profile"
	"nvmllc/internal/reference"
	"nvmllc/internal/system"
	"nvmllc/internal/workload"
)

// DegradationOptions parameterizes the study; the zero value selects the
// defaults (workload "is" — the most write-intensive NAS kernel — on one
// wearing LLC per NVM class plus the SRAM control).
type DegradationOptions struct {
	// Workload is the trace replayed at every age point (default "is").
	Workload string
	// LLCs are the fixed-capacity models to age (default Kang_P, Chung_S,
	// SRAM: a PCRAM that degrades within its service life, an STTRAM
	// whose 10¹⁵ budget keeps it flat over the same years, and the
	// non-wearing control).
	LLCs []string
	// AgesYears is the explicit age ladder. Empty derives one from the
	// shortest finite nominal lifetime among the LLCs: 0 to 2× that
	// lifetime in eight steps, bracketing the onset of degradation.
	AgesYears []float64
	// FaultSeed pins the fault process seed across LLCs (0 keeps the
	// per-geometry derivation).
	FaultSeed uint64
}

// DegradationPoint is one aged replay of the workload.
type DegradationPoint struct {
	// AgeYears is the simulated service age; PreWearWrites is the
	// per-cell write count it translates to at the LLC's measured rate.
	AgeYears      float64
	PreWearWrites float64
	// CapacityFraction is the fraction of LLC lines still usable at the
	// end of the replay (1 = pristine).
	CapacityFraction float64
	// CondemnedWays is the total disabled ways (pre-aged + runtime);
	// DeadSets counts sets with no ways left.
	CondemnedWays int
	DeadSets      int
	// WriteRetries and LinesLost count the write-verify traffic during
	// the replay.
	WriteRetries uint64
	LinesLost    uint64
	// IPC, MPKI and TimeNS measure what the degraded cache costs.
	IPC    float64
	MPKI   float64
	TimeNS float64
}

// DegradationCurve is one LLC's capacity/performance-vs-age trajectory.
type DegradationCurve struct {
	// LLC and Class identify the model.
	LLC   string
	Class nvm.Class
	// EnduranceWrites is the per-cell budget (Table I) driving the decay.
	EnduranceWrites float64
	// PerCellWritesPerSec is the ideal-intra-set-leveling aging rate
	// measured from the baseline (unaged, wear-tracked) run.
	PerCellWritesPerSec float64
	// NominalYears is when the average cell exhausts its budget at that
	// rate (+Inf for non-wearing technologies or idle caches).
	NominalYears float64
	// Points are the aged replays, in ladder order.
	Points []DegradationPoint
}

// DegradationStudy is the full artifact: one curve per LLC over a shared
// absolute age ladder, so a wearing PCRAM visibly decays while STTRAM
// and SRAM hold flat over the same calendar years.
type DegradationStudy struct {
	Workload  string
	AgesYears []float64
	Curves    []DegradationCurve
}

// Degradation runs the study: one wear-tracked baseline per LLC to
// measure its per-cell write rate, then one faulted replay per (LLC,
// age) with the cumulative wear pre-applied. All replays run through the
// engine — the fault config is part of the result-cache key, so repeated
// studies hit the cache.
func Degradation(ctx context.Context, cfg Config, opts DegradationOptions) (*DegradationStudy, error) {
	if opts.Workload == "" {
		opts.Workload = "is"
	}
	if len(opts.LLCs) == 0 {
		opts.LLCs = []string{"Kang_P", "Chung_S", "SRAM"}
	}
	ctx, span := cfg.startSpan(ctx, "degradation", "workload", opts.Workload)
	defer span.End()

	p, err := workload.ByName(opts.Workload)
	if err != nil {
		return nil, err
	}
	tr, err := workload.Generate(p, cfg.Opts)
	if err != nil {
		return nil, err
	}
	models := reference.FixedCapacityModels()
	eng := cfg.engineOrNew()

	// Baseline pass: wear-tracked, unaged, one run per LLC, measuring the
	// per-cell write rate each curve ages at.
	baseJobs := make([]engine.Job, 0, len(opts.LLCs))
	for _, name := range opts.LLCs {
		model, err := reference.ModelByName(models, name)
		if err != nil {
			return nil, err
		}
		sysCfg := system.Gainestown(model)
		sysCfg.ModelWriteContention = cfg.WriteContention
		sysCfg.TrackWear = true
		baseJobs = append(baseJobs, engine.Job{
			Workload:  opts.Workload,
			TraceOpts: cfg.Opts,
			Config:    sysCfg,
			Trace:     tr,
		})
	}
	baseResults, err := eng.RunAll(ctx, baseJobs)
	if err != nil {
		return nil, err
	}

	study := &DegradationStudy{Workload: opts.Workload}
	for i, name := range opts.LLCs {
		model, _ := reference.ModelByName(models, name)
		r := baseResults[i]
		if r == nil || r.Wear == nil {
			return nil, fmt.Errorf("sweep: degradation baseline for %s produced no wear data", name)
		}
		curve := DegradationCurve{
			LLC:             name,
			Class:           model.Class,
			EnduranceWrites: nvm.WriteEndurance(model.Class),
		}
		if lines := r.Wear.Sets * r.Wear.Ways; lines > 0 && r.Seconds() > 0 {
			curve.PerCellWritesPerSec = float64(r.Wear.TotalWrites) / float64(lines) / r.Seconds()
		}
		curve.NominalYears = math.Inf(1)
		if curve.PerCellWritesPerSec > 0 && !math.IsInf(curve.EnduranceWrites, 1) {
			curve.NominalYears = curve.EnduranceWrites / curve.PerCellWritesPerSec / endurance.SecondsPerYear
		}
		study.Curves = append(study.Curves, curve)
	}

	study.AgesYears = opts.AgesYears
	if len(study.AgesYears) == 0 {
		study.AgesYears = deriveAgeLadder(study.Curves)
	}

	// Estimator fast path: non-pinned curves derive their aged points
	// from one reuse-distance profile plus the fault injector's pre-aged
	// capacity census (fault.New draws the same deterministic wear-out
	// the replay would start from), instead of replaying the workload
	// once per age. WriteRetries/LinesLost stay zero on estimated
	// points: runtime write-verify traffic needs the replay.
	est := cfg.Estimator
	exactCurve := make([]bool, len(study.Curves))
	anyEstimated := false
	for ci := range study.Curves {
		exactCurve[ci] = est == nil || est.pins(study.Curves[ci].LLC)
		if !exactCurve[ci] {
			anyEstimated = true
		}
	}
	tmpl := system.Gainestown(reference.SRAMBaseline())
	var prof *profile.Profile
	if anyEstimated {
		var caps []int64
		for ci := range study.Curves {
			if !exactCurve[ci] {
				model, _ := reference.ModelByName(models, study.Curves[ci].LLC)
				caps = append(caps, model.CapacityBytes)
			}
		}
		geoms, err := cache.EnumerateGeoms(caps, tmpl.BlockBytes, tmpl.LLCWays)
		if err != nil {
			return nil, err
		}
		h := hierarchyFor(tmpl)
		prof, err = eng.RunProfile(ctx, engine.ProfileJob{
			Workload:  opts.Workload,
			TraceOpts: cfg.Opts,
			Config: profile.Config{
				BlockBytes: tmpl.BlockBytes,
				SetCounts:  cache.SetCountsOf(geoms),
				MaxWays:    max(tmpl.LLCWays, est.MaxWays),
			},
			Hierarchy: &h,
			Trace:     tr,
		})
		if err != nil {
			return nil, err
		}
	}

	// Aged pass: every (LLC, age) point, faults enabled with the
	// cumulative wear pre-applied. Ages are shared absolute years, so the
	// short-lived technology decays across the ladder while long-lived
	// ones stay flat over the very same calendar time.
	agedJobs := make([]engine.Job, 0, len(study.Curves)*len(study.AgesYears))
	type pointKey struct{ curve, age int }
	keys := make([]pointKey, 0, cap(agedJobs))
	for ci := range study.Curves {
		curve := &study.Curves[ci]
		model, _ := reference.ModelByName(models, curve.LLC)
		if !exactCurve[ci] {
			sets, err := cache.SetsFor(model.CapacityBytes, tmpl.BlockBytes, tmpl.LLCWays)
			if err != nil {
				return nil, err
			}
			for _, age := range study.AgesYears {
				pre := curve.PerCellWritesPerSec * age * endurance.SecondsPerYear
				fc := fault.Config{
					Options:       fault.Options{Class: model.Class},
					Seed:          opts.FaultSeed,
					PreWearWrites: pre,
				}
				pt := DegradationPoint{AgeYears: age, PreWearWrites: pre, CapacityFraction: 1}
				waysEff := float64(tmpl.LLCWays)
				if fc.Enabled() {
					inj, err := fault.New(fc, sets, tmpl.LLCWays)
					if err != nil {
						return nil, err
					}
					fs := inj.Stats()
					waysEff = float64(tmpl.LLCWays) * fs.CapacityFraction()
					pt.CapacityFraction = fs.CapacityFraction()
					pt.CondemnedWays = fs.InitialDisabledWays
					pt.DeadSets = fs.DeadSets
				}
				r, err := estimateResult(baseResults[ci], model, prof, model, sets, tmpl.LLCWays, waysEff, tmpl.L2LatencyNS)
				if err != nil {
					return nil, err
				}
				pt.IPC = r.IPC()
				pt.MPKI = r.LLCMPKI()
				pt.TimeNS = r.TimeNS
				curve.Points = append(curve.Points, pt)
			}
			continue
		}
		for ai, age := range study.AgesYears {
			sysCfg := system.Gainestown(model)
			sysCfg.ModelWriteContention = cfg.WriteContention
			fc := fault.Config{
				Options:       fault.Options{Class: model.Class},
				Seed:          opts.FaultSeed,
				PreWearWrites: curve.PerCellWritesPerSec * age * endurance.SecondsPerYear,
			}
			if fc.Enabled() {
				// Non-wearing technologies keep the zero-value (inert)
				// fault config, so every age point shares one cached
				// simulation — the flat curve costs one run.
				sysCfg.Fault = fc
			}
			agedJobs = append(agedJobs, engine.Job{
				Workload:  opts.Workload,
				TraceOpts: cfg.Opts,
				Config:    sysCfg,
				Trace:     tr,
			})
			keys = append(keys, pointKey{ci, ai})
		}
	}
	agedResults, err := eng.RunAll(ctx, agedJobs)
	if err != nil {
		return nil, err
	}
	for ji, r := range agedResults {
		if r == nil {
			return nil, fmt.Errorf("sweep: degradation point %s/%gy produced no result",
				study.Curves[keys[ji].curve].LLC, study.AgesYears[keys[ji].age])
		}
		curve := &study.Curves[keys[ji].curve]
		age := study.AgesYears[keys[ji].age]
		pt := DegradationPoint{
			AgeYears:         age,
			PreWearWrites:    curve.PerCellWritesPerSec * age * endurance.SecondsPerYear,
			CapacityFraction: 1,
			IPC:              r.IPC(),
			MPKI:             r.LLCMPKI(),
			TimeNS:           r.TimeNS,
		}
		if d := r.Degradation; d != nil {
			pt.CapacityFraction = d.CapacityFraction()
			pt.CondemnedWays = d.InitialDisabledWays + d.CondemnedWays
			pt.DeadSets = d.DeadSets
			pt.WriteRetries = d.WriteRetries
			pt.LinesLost = d.FailedWrites
		}
		curve.Points = append(curve.Points, pt)
	}
	return study, nil
}

// deriveAgeLadder builds the shared absolute age ladder from the
// shortest finite nominal lifetime among the curves: eight points from 0
// to 2× that lifetime, bracketing the capacity knee. With no wearing
// technology in the set there is nothing to sweep and age 0 suffices.
func deriveAgeLadder(curves []DegradationCurve) []float64 {
	shortest := math.Inf(1)
	for _, c := range curves {
		if c.NominalYears < shortest {
			shortest = c.NominalYears
		}
	}
	if math.IsInf(shortest, 1) || shortest <= 0 {
		return []float64{0}
	}
	fractions := []float64{0, 0.25, 0.5, 0.75, 1, 1.25, 1.5, 2}
	ages := make([]float64, len(fractions))
	for i, f := range fractions {
		ages[i] = f * shortest
	}
	return ages
}
