package sweep

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"nvmllc/internal/engine"
	"nvmllc/internal/reference"
	"nvmllc/internal/workload"
)

// TestSharedEngineAcrossFigures is the acceptance check for the shared
// experiment engine: running two figures back-to-back through one engine
// simulates each shared design point exactly once. Figure 1a
// (fixed-capacity) and Figure 2a (fixed-area) cover the same 11
// single-threaded workloads, and the SRAM baseline model is identical in
// both configuration blocks — so the second figure must hit the cache for
// exactly those 11 (workload, SRAM) points and simulate only the 110 NVM
// points fresh.
func TestSharedEngineAcrossFigures(t *testing.T) {
	eng := engine.New()
	cfg := Config{Opts: workload.Options{Accesses: 20000, Seed: 3}, Engine: eng}

	if _, err := Figure1a(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	s1 := eng.Stats()
	if s1.Simulated != 121 || s1.Cached != 0 {
		t.Fatalf("after Figure1a: %+v, want 121 simulated (11 workloads × 11 models)", s1)
	}

	if _, err := Figure2a(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	s2 := eng.Stats()
	if got := s2.Simulated - s1.Simulated; got != 110 {
		t.Errorf("Figure2a simulated %d new points, want 110 (SRAM baseline shared)", got)
	}
	if got := s2.Cached - s1.Cached; got != 11 {
		t.Errorf("Figure2a hit the cache %d times, want 11 (one SRAM point per workload)", got)
	}
	if s2.Failed != 0 {
		t.Errorf("failed = %d, want 0", s2.Failed)
	}
}

// TestRunFigureSecondCallFullyCached asserts a repeated identical figure
// performs zero new simulations and returns byte-identical numbers.
func TestRunFigureSecondCallFullyCached(t *testing.T) {
	eng := engine.New()
	cfg := Config{Opts: workload.Options{Accesses: 20000, Seed: 3}, Engine: eng}

	first, err := Figure1a(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := eng.Stats()

	second, err := Figure1a(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	after := eng.Stats()
	if after.Simulated != before.Simulated {
		t.Errorf("second run simulated %d new points, want 0", after.Simulated-before.Simulated)
	}
	if got := after.Cached - before.Cached; got != 121 {
		t.Errorf("second run cached %d points, want 121", got)
	}
	if !reflect.DeepEqual(first.Speedup, second.Speedup) ||
		!reflect.DeepEqual(first.Energy, second.Energy) ||
		!reflect.DeepEqual(first.ED2P, second.ED2P) {
		t.Error("cached figure differs from the fresh one")
	}
}

// TestRunFigureCancellation cancels a figure mid-sweep and expects a
// prompt context.Canceled with partial progress recorded.
func TestRunFigureCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	eng := engine.New(engine.WithParallelism(2), engine.WithProgress(func(ev engine.Event) {
		cancel() // abort as soon as the first design point answers
	}))
	cfg := Config{Opts: workload.Options{Accesses: 300_000, Seed: 3}, Engine: eng}

	start := time.Now()
	_, err := Figure1a(ctx, cfg)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 10*time.Second {
		t.Errorf("cancellation took %v, want prompt abort", elapsed)
	}
	if eng.Stats().Jobs() == 121 {
		t.Error("every design point ran despite cancellation")
	}
}

func TestCellErrNoCell(t *testing.T) {
	fig, err := RunFigure(context.Background(), "one cell",
		reference.FixedCapacityModels(), []string{"bzip2"},
		Config{Opts: workload.Options{Accesses: 20000, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := fig.Cell("bzip2", "Jan_S"); err != nil {
		t.Errorf("valid cell: %v", err)
	}
	for _, bad := range [][2]string{{"nosuch", "Jan_S"}, {"bzip2", "nosuch"}, {"bzip2", "SRAM"}} {
		_, _, _, err := fig.Cell(bad[0], bad[1])
		if !errors.Is(err, ErrNoCell) {
			t.Errorf("Cell(%s, %s) = %v, want ErrNoCell", bad[0], bad[1], err)
		}
	}
}

// TestConfigProgressCallback wires a progress callback through the
// config-built private engine.
func TestConfigProgressCallback(t *testing.T) {
	events := 0
	cfg := Config{
		Opts:     workload.Options{Accesses: 20000, Seed: 3},
		Progress: func(engine.Event) { events++ },
		// Serialize so the callback needs no locking.
		Parallelism: 1,
	}
	if _, err := RunFigure(context.Background(), "cb", reference.FixedCapacityModels(), []string{"bzip2"}, cfg); err != nil {
		t.Fatal(err)
	}
	if events != len(reference.FixedCapacityModels()) {
		t.Errorf("progress events = %d, want %d", events, len(reference.FixedCapacityModels()))
	}
}
