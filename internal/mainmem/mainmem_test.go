package mainmem

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPresetsValid(t *testing.T) {
	for _, tech := range []Tech{DRAM, PCRAMMem, STTRAMMem, RRAMMem} {
		p := Preset(tech)
		if err := p.Validate(); err != nil {
			t.Errorf("%v: %v", tech, err)
		}
		if p.Tech != tech {
			t.Errorf("%v: preset tech mismatch", tech)
		}
		if tech.String() == "" {
			t.Errorf("%v: empty name", tech)
		}
	}
	if Tech(9).String() == "" {
		t.Error("unknown tech name empty")
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := []Params{
		{Channels: 0, BanksPerChannel: 8, RowBytes: 8192, BlockBytes: 64, BurstNS: 8, Timing: Timing{RowHitNS: 13}},
		{Channels: 4, BanksPerChannel: 0, RowBytes: 8192, BlockBytes: 64, BurstNS: 8, Timing: Timing{RowHitNS: 13}},
		{Channels: 4, BanksPerChannel: 8, RowBytes: 32, BlockBytes: 64, BurstNS: 8, Timing: Timing{RowHitNS: 13}},
		{Channels: 4, BanksPerChannel: 8, RowBytes: 8192, BlockBytes: 64, BurstNS: 0, Timing: Timing{RowHitNS: 13}},
		{Channels: 4, BanksPerChannel: 8, RowBytes: 8192, BlockBytes: 64, BurstNS: 8},
	}
	for i, p := range bad {
		if _, err := New(p); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func TestRowBufferHitsAndMisses(t *testing.T) {
	m, err := New(Preset(DRAM))
	if err != nil {
		t.Fatal(err)
	}
	// Sequential lines in the same 8KB row: first access activates, the
	// next 127 hit the open row.
	var last float64
	for l := uint64(0); l < 128; l++ {
		last = m.Read(last, l)
	}
	s := m.Stats()
	if s.RowMisses != 1 || s.RowHits != 127 {
		t.Errorf("row hits/misses = %d/%d, want 127/1", s.RowHits, s.RowMisses)
	}
	if s.Activations != 1 {
		t.Errorf("activations = %d, want 1", s.Activations)
	}
	if s.RowHitRate() < 0.99 {
		t.Errorf("row hit rate = %g", s.RowHitRate())
	}
}

func TestRowConflictCostsMore(t *testing.T) {
	p := Preset(DRAM)
	m, _ := New(p)
	// Activate row 0 of bank 0, then hit it, then conflict with row 1 of
	// the same bank.
	done0 := m.Read(0, 0)
	hitStart := done0
	hitDone := m.Read(hitStart, 1)
	hitLat := hitDone - hitStart
	banks := uint64(len(m.banks))
	conflictLine := m.rowBlocks * banks // same bank (0), next row
	confStart := hitDone
	confDone := m.Read(confStart, conflictLine)
	confLat := confDone - confStart
	wantExtra := p.Timing.PrechargeNS + p.Timing.ActivateNS
	if confLat < hitLat+wantExtra-1e-9 {
		t.Errorf("conflict latency %g not ≥ hit %g + precharge+activate %g", confLat, hitLat, wantExtra)
	}
	if m.Stats().RowMisses != 2 {
		t.Errorf("row misses = %d, want 2", m.Stats().RowMisses)
	}
}

func TestPCRAMWriteAsymmetry(t *testing.T) {
	d, _ := New(Preset(DRAM))
	pcm, _ := New(Preset(PCRAMMem))
	dRead := d.Read(0, 0)
	pRead := pcm.Read(0, 0)
	// PCM reads are somewhat slower (longer activation)…
	if pRead < dRead {
		t.Errorf("PCM read %g faster than DRAM %g", pRead, dRead)
	}
	// …but writes are drastically slower.
	dW := d.Write(1e6, 0) - 1e6
	pW := pcm.Write(1e6, 0) - 1e6
	if pW < dW+200 {
		t.Errorf("PCM write %g not ≫ DRAM write %g", pW, dW)
	}
}

func TestEnergyAccounting(t *testing.T) {
	m, _ := New(Preset(PCRAMMem))
	base := m.EnergyJ(0)
	if base != 0 {
		t.Errorf("zero-time energy = %g", base)
	}
	m.Read(0, 0)
	e1 := m.EnergyJ(1000)
	m.Write(1000, 0)
	e2 := m.EnergyJ(1000)
	if e2 <= e1 {
		t.Error("write added no energy")
	}
	// Background power integrates over time.
	if m.EnergyJ(2000) <= m.EnergyJ(1000) {
		t.Error("background energy not growing with time")
	}
	// PCM writes cost far more than reads.
	mm, _ := New(Preset(PCRAMMem))
	mm.Read(0, 0)
	readE := mm.EnergyJ(0)
	mm2, _ := New(Preset(PCRAMMem))
	mm2.Write(0, 0)
	writeE := mm2.EnergyJ(0)
	if writeE < 3*readE {
		t.Errorf("PCM write energy %g not ≫ read %g", writeE, readE)
	}
}

func TestBankParallelism(t *testing.T) {
	m, _ := New(Preset(DRAM))
	banks := uint64(len(m.banks))
	// Two accesses to different banks at t=0 complete at the same time.
	a := m.Read(0, 0)
	b := m.Read(0, m.rowBlocks) // next row ID → next bank
	if a != b {
		t.Errorf("independent banks interfered: %g vs %g", a, b)
	}
	// Same bank back-to-back queues.
	c := m.Read(0, 0)
	if c <= a {
		t.Errorf("same-bank access %g did not queue behind %g", c, a)
	}
	_ = banks
}

func TestCompletionNeverBeforeArrivalProperty(t *testing.T) {
	f := func(lines []uint16) bool {
		m, err := New(Preset(RRAMMem))
		if err != nil {
			return false
		}
		now := 0.0
		for i, l := range lines {
			done := m.Read(now, uint64(l))
			if done < now {
				return false
			}
			if i%3 == 0 {
				now = done
			} else {
				now += 1
			}
		}
		s := m.Stats()
		return s.RowHits+s.RowMisses == uint64(len(lines))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTechAccessor(t *testing.T) {
	m, _ := New(Preset(STTRAMMem))
	if m.Tech() != STTRAMMem {
		t.Error("Tech accessor wrong")
	}
}

func TestStatsZeroRowHitRate(t *testing.T) {
	if (Stats{}).RowHitRate() != 0 {
		t.Error("empty row hit rate not 0")
	}
	if math.IsNaN((Stats{}).RowHitRate()) {
		t.Error("NaN hit rate")
	}
}
