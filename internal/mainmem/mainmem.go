// Package mainmem is an NVMain-style architectural main-memory model
// (Poremba & Xie, ISVLSI 2012) — the second of the three NVM simulators
// the paper's Section III discusses (NVSim, NVMain, DESTINY). Where
// internal/dram models main memory as fixed-latency bandwidth-limited
// controllers (sufficient for the paper's LLC study), this package models
// the banked, row-buffered organization that matters when the main memory
// itself is an NVM: per-bank open rows, asymmetric read/write timing, and
// per-technology activation/burst energies, letting the system compare a
// PCRAM or RRAM main memory against DRAM below any of the LLCs — the
// "NVMs have slowly made their way down the memory hierarchy" trajectory
// of the paper's Section II.
package mainmem

import (
	"fmt"
	"math"
)

// Tech selects the main-memory technology preset.
type Tech int

const (
	// DRAM is the DDR3-class baseline (the paper's main memory).
	DRAM Tech = iota
	// PCRAMMem is a phase-change main memory (slow asymmetric writes, no
	// refresh, negligible standby power).
	PCRAMMem
	// STTRAMMem is a spin-torque main memory.
	STTRAMMem
	// RRAMMem is a resistive main memory.
	RRAMMem
)

// String names the technology.
func (t Tech) String() string {
	switch t {
	case DRAM:
		return "DRAM"
	case PCRAMMem:
		return "PCRAM"
	case STTRAMMem:
		return "STTRAM"
	case RRAMMem:
		return "RRAM"
	default:
		return fmt.Sprintf("Tech(%d)", int(t))
	}
}

// Timing holds the device timing parameters in ns.
type Timing struct {
	// RowHitNS is the column access time (tCAS) for an open-row hit.
	RowHitNS float64
	// ActivateNS is row activation (tRCD): added on a row miss.
	ActivateNS float64
	// PrechargeNS is row precharge (tRP): added when a different row is
	// open.
	PrechargeNS float64
	// WriteExtraNS is the additional array-write time over a read
	// (asymmetric writes; large for PCRAM).
	WriteExtraNS float64
}

// Energy holds per-operation energies in nJ and standby power in W.
type Energy struct {
	// ActivateNJ is per row activation.
	ActivateNJ float64
	// ReadNJ and WriteNJ are per 64B burst.
	ReadNJ, WriteNJ float64
	// BackgroundW is standby/refresh power for the whole memory.
	BackgroundW float64
}

// Params configures a memory.
type Params struct {
	Tech Tech
	// Channels and BanksPerChannel set the parallelism (paper: 4
	// controllers; 8 banks is DDR3-typical).
	Channels, BanksPerChannel int
	// RowBytes is the row-buffer size.
	RowBytes int
	// BlockBytes is the transfer granularity (LLC line).
	BlockBytes int
	// BurstNS is the data-bus occupancy per transfer.
	BurstNS float64
	Timing  Timing
	Energy  Energy
}

// Preset returns the technology's default parameters with the paper's
// 4-channel organization. Timing/energy values follow the NVMain
// configuration files and the PCM main-memory literature (Lee et al.,
// ISCA'09 class numbers).
func Preset(t Tech) Params {
	p := Params{
		Tech:            t,
		Channels:        4,
		BanksPerChannel: 8,
		RowBytes:        8192,
		BlockBytes:      64,
		BurstNS:         8.4, // 64B at 7.6 GB/s per channel
	}
	switch t {
	case DRAM:
		p.Timing = Timing{RowHitNS: 13.75, ActivateNS: 13.75, PrechargeNS: 13.75, WriteExtraNS: 0}
		p.Energy = Energy{ActivateNJ: 2.0, ReadNJ: 1.2, WriteNJ: 1.2, BackgroundW: 1.0}
	case PCRAMMem:
		p.Timing = Timing{RowHitNS: 13.75, ActivateNS: 55, PrechargeNS: 0, WriteExtraNS: 250}
		p.Energy = Energy{ActivateNJ: 4.0, ReadNJ: 1.0, WriteNJ: 16.0, BackgroundW: 0.1}
	case STTRAMMem:
		p.Timing = Timing{RowHitNS: 13.75, ActivateNS: 20, PrechargeNS: 0, WriteExtraNS: 12}
		p.Energy = Energy{ActivateNJ: 2.5, ReadNJ: 1.0, WriteNJ: 3.0, BackgroundW: 0.15}
	case RRAMMem:
		p.Timing = Timing{RowHitNS: 13.75, ActivateNS: 25, PrechargeNS: 0, WriteExtraNS: 80}
		p.Energy = Energy{ActivateNJ: 3.0, ReadNJ: 1.0, WriteNJ: 5.0, BackgroundW: 0.12}
	}
	return p
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.Channels <= 0 || p.BanksPerChannel <= 0 {
		return fmt.Errorf("mainmem: channels %d × banks %d must be positive", p.Channels, p.BanksPerChannel)
	}
	if p.RowBytes <= 0 || p.BlockBytes <= 0 || p.RowBytes < p.BlockBytes {
		return fmt.Errorf("mainmem: row %dB must hold at least one %dB block", p.RowBytes, p.BlockBytes)
	}
	if p.BurstNS <= 0 {
		return fmt.Errorf("mainmem: burst time must be positive")
	}
	if p.Timing.RowHitNS <= 0 {
		return fmt.Errorf("mainmem: row-hit time must be positive")
	}
	return nil
}

// Stats counts memory activity.
type Stats struct {
	Reads, Writes        uint64
	RowHits, RowMisses   uint64
	Activations          uint64
	TotalWaitNS          float64
	lastCompleteNS       float64
	dynamicEnergyNJTotal float64
}

// RowHitRate is row-buffer hits over all accesses.
func (s Stats) RowHitRate() float64 {
	n := s.RowHits + s.RowMisses
	if n == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(n)
}

// bank is one row-buffered bank.
type bank struct {
	openRow     int64 // -1: closed
	busyUntilNS float64
}

// Memory is the simulated main memory. It satisfies the system
// simulator's MainMemory interface.
type Memory struct {
	p     Params
	banks []bank
	stats Stats
	// address decomposition shifts
	blockBits, rowBlocks uint64
}

// New builds a memory.
func New(p Params) (*Memory, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.Channels * p.BanksPerChannel
	m := &Memory{p: p, banks: make([]bank, n)}
	for i := range m.banks {
		m.banks[i].openRow = -1
	}
	m.rowBlocks = uint64(p.RowBytes / p.BlockBytes)
	return m, nil
}

// decompose maps a line address to (bank, row): consecutive lines fill a
// row, rows interleave across banks.
func (m *Memory) decompose(lineAddr uint64) (bankIdx int, row int64) {
	rowID := lineAddr / m.rowBlocks
	return int(rowID % uint64(len(m.banks))), int64(rowID / uint64(len(m.banks)))
}

// Read issues a 64B read and returns its completion time.
func (m *Memory) Read(nowNS float64, lineAddr uint64) float64 {
	m.stats.Reads++
	return m.access(nowNS, lineAddr, false)
}

// Write issues a 64B write (posted) and returns its completion time.
func (m *Memory) Write(nowNS float64, lineAddr uint64) float64 {
	m.stats.Writes++
	return m.access(nowNS, lineAddr, true)
}

func (m *Memory) access(nowNS float64, lineAddr uint64, isWrite bool) float64 {
	bi, row := m.decompose(lineAddr)
	b := &m.banks[bi]

	start := math.Max(nowNS, b.busyUntilNS)
	m.stats.TotalWaitNS += start - nowNS

	lat := m.p.Timing.RowHitNS
	energy := m.p.Energy.ReadNJ
	if isWrite {
		energy = m.p.Energy.WriteNJ
	}
	if b.openRow == row {
		m.stats.RowHits++
	} else {
		m.stats.RowMisses++
		m.stats.Activations++
		if b.openRow >= 0 {
			lat += m.p.Timing.PrechargeNS
		}
		lat += m.p.Timing.ActivateNS
		energy += m.p.Energy.ActivateNJ
		b.openRow = row
	}
	occupancy := lat + m.p.BurstNS
	if isWrite {
		occupancy += m.p.Timing.WriteExtraNS
	}
	b.busyUntilNS = start + occupancy
	complete := start + lat + m.p.BurstNS
	if isWrite {
		complete = b.busyUntilNS
	}
	m.stats.dynamicEnergyNJTotal += energy
	if complete > m.stats.lastCompleteNS {
		m.stats.lastCompleteNS = complete
	}
	return complete
}

// Stats returns the accumulated counters.
func (m *Memory) Stats() Stats { return m.stats }

// EnergyJ returns total memory energy over an elapsed wall-clock time:
// dynamic plus background (refresh/standby) power.
func (m *Memory) EnergyJ(elapsedNS float64) float64 {
	return m.stats.dynamicEnergyNJTotal*1e-9 + m.p.Energy.BackgroundW*elapsedNS*1e-9
}

// Tech returns the configured technology.
func (m *Memory) Tech() Tech { return m.p.Tech }
