// Package cache implements the set-associative, write-back caches of the
// simulated Gainestown memory hierarchy (Table IV of the paper): private
// L1I/L1D and L2 caches per core and a shared LLC.
//
// Cache models a single level with true-LRU replacement, write-back and
// write-allocate policy, operating on line addresses (byte address >>
// log2(block size) is performed by the caller or via the Line helper).
package cache

import "fmt"

// Stats counts cache events.
type Stats struct {
	// Hits and Misses count lookups by outcome.
	Hits, Misses uint64
	// Writebacks counts dirty lines evicted (writes propagated downstream).
	Writebacks uint64
	// Fills counts lines installed: one per allocating miss from Access,
	// WritebackTo or Install. Non-allocating lookups (Touch) miss without
	// filling, so Fills ≤ Misses in general and the two are equal only
	// when every lookup goes through the allocate-on-miss Access path.
	Fills uint64
}

// Accesses is hits plus misses.
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses }

// MissRate returns misses/accesses, or 0 for an untouched cache.
func (s Stats) MissRate() float64 {
	a := s.Accesses()
	if a == 0 {
		return 0
	}
	return float64(s.Misses) / float64(a)
}

// HitRate returns hits/accesses, or 0 for an untouched cache.
func (s Stats) HitRate() float64 {
	a := s.Accesses()
	if a == 0 {
		return 0
	}
	return float64(s.Hits) / float64(a)
}

// String renders a one-line summary (mirroring engine.Stats.String).
func (s Stats) String() string {
	return fmt.Sprintf("%d hits, %d misses (%.1f%% hit rate), %d fills, %d writebacks",
		s.Hits, s.Misses, 100*s.HitRate(), s.Fills, s.Writebacks)
}

// Add accumulates another stats block.
func (s *Stats) Add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Writebacks += o.Writebacks
	s.Fills += o.Fills
}

// line is one cache way.
type line struct {
	tag   uint64
	valid bool
	dirty bool
	rrpv  uint8 // SRRIP re-reference prediction value
}

// Cache is a single-level set-associative write-back cache.
type Cache struct {
	name      string
	ways      int
	sets      int
	setMask   uint64
	lines     []line // sets × ways; LRU keeps index 0 = MRU
	stats     Stats
	blockBits uint
	policy    Policy
	rngState  uint64 // Random policy xorshift state
}

// Config describes a cache level.
type Config struct {
	// Name identifies the level in errors and dumps (e.g. "L1D").
	Name string
	// CapacityBytes is the total data capacity.
	CapacityBytes int64
	// BlockBytes is the line size.
	BlockBytes int
	// Ways is the associativity.
	Ways int
	// Policy is the replacement policy (zero value: LRU).
	Policy Policy
}

// New builds a cache. Capacity must be a power-of-two multiple of
// BlockBytes×Ways so the set count is a power of two.
func New(cfg Config) (*Cache, error) {
	if cfg.BlockBytes <= 0 || cfg.BlockBytes&(cfg.BlockBytes-1) != 0 {
		return nil, fmt.Errorf("cache %s: block size %d must be a positive power of two", cfg.Name, cfg.BlockBytes)
	}
	if cfg.Ways <= 0 {
		return nil, fmt.Errorf("cache %s: ways %d must be positive", cfg.Name, cfg.Ways)
	}
	if !cfg.Policy.Valid() {
		return nil, fmt.Errorf("cache %s: unknown replacement policy %d", cfg.Name, int(cfg.Policy))
	}
	setBytes := int64(cfg.BlockBytes) * int64(cfg.Ways)
	if cfg.CapacityBytes <= 0 || cfg.CapacityBytes%setBytes != 0 {
		return nil, fmt.Errorf("cache %s: capacity %d not a positive multiple of set size %d", cfg.Name, cfg.CapacityBytes, setBytes)
	}
	sets := cfg.CapacityBytes / setBytes
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache %s: set count %d must be a power of two", cfg.Name, sets)
	}
	blockBits := uint(0)
	for 1<<blockBits < cfg.BlockBytes {
		blockBits++
	}
	return &Cache{
		name:      cfg.Name,
		ways:      cfg.Ways,
		sets:      int(sets),
		setMask:   uint64(sets - 1),
		lines:     make([]line, int(sets)*cfg.Ways),
		blockBits: blockBits,
		policy:    cfg.Policy,
		rngState:  0x9E3779B97F4A7C15,
	}, nil
}

// Line converts a byte address to this cache's line address.
func (c *Cache) Line(addr uint64) uint64 { return addr >> c.blockBits }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Name returns the configured level name.
func (c *Cache) Name() string { return c.name }

// ReplacementPolicy returns the configured policy.
func (c *Cache) ReplacementPolicy() Policy { return c.policy }

// Stats returns the accumulated event counts.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without touching cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Eviction describes a line displaced by a fill.
type Eviction struct {
	// LineAddr is the evicted line address.
	LineAddr uint64
	// Dirty reports whether the line must be written downstream.
	Dirty bool
	// Valid is false when the fill used an empty way (no eviction).
	Valid bool
}

// Access performs a lookup for a line address, allocating on miss.
// isWrite marks the line dirty on hit or after the allocate (write-back,
// write-allocate). It returns whether the lookup hit and the eviction, if
// any, caused by the allocation.
func (c *Cache) Access(lineAddr uint64, isWrite bool) (hit bool, ev Eviction) {
	set := c.set(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			c.stats.Hits++
			if isWrite {
				set[i].dirty = true
			}
			c.onHit(set, i)
			return true, Eviction{}
		}
	}
	c.stats.Misses++
	ev = c.fill(set, lineAddr, isWrite)
	return false, ev
}

// Touch performs a non-allocating lookup: a hit updates replacement
// state (and optionally dirtiness) and returns true; a miss changes
// nothing. Statistics are counted like Access.
func (c *Cache) Touch(lineAddr uint64, isWrite bool) bool {
	set := c.set(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			c.stats.Hits++
			if isWrite {
				set[i].dirty = true
			}
			c.onHit(set, i)
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Probe checks residency without updating LRU state or statistics.
func (c *Cache) Probe(lineAddr uint64) bool {
	set := c.set(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			return true
		}
	}
	return false
}

// Install inserts a line (e.g. a fill from below in a non-lookup path)
// and returns any eviction. The line is installed clean unless dirty.
func (c *Cache) Install(lineAddr uint64, dirty bool) Eviction {
	set := c.set(lineAddr)
	// If already present, just update dirtiness and recency.
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			set[i].dirty = set[i].dirty || dirty
			c.onHit(set, i)
			return Eviction{}
		}
	}
	return c.fill(set, lineAddr, dirty)
}

// WritebackTo marks a resident line dirty (a writeback arriving from an
// upper level). If the line is absent it is installed dirty
// (write-allocate) and the displaced line is returned.
func (c *Cache) WritebackTo(lineAddr uint64) (wasPresent bool, ev Eviction) {
	set := c.set(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			set[i].dirty = true
			c.onHit(set, i)
			return true, Eviction{}
		}
	}
	return false, c.fill(set, lineAddr, true)
}

// Clean clears a resident line's dirty bit without evicting it (a
// coherence downgrade: Modified -> Shared). It reports residency and
// whether the line had been dirty.
func (c *Cache) Clean(lineAddr uint64) (present, wasDirty bool) {
	set := c.set(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			wasDirty = set[i].dirty
			set[i].dirty = false
			return true, wasDirty
		}
	}
	return false, false
}

// Invalidate drops a line if present, returning whether it was dirty.
func (c *Cache) Invalidate(lineAddr uint64) (present, dirty bool) {
	set := c.set(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			present, dirty = true, set[i].dirty
			if c.policy == LRU {
				// Keep LRU sets compacted: valid lines first.
				copy(set[i:], set[i+1:])
				set[len(set)-1] = line{}
			} else {
				set[i] = line{}
			}
			return present, dirty
		}
	}
	return false, false
}

// fill installs a tag, evicting the policy's victim if the set is full.
func (c *Cache) fill(set []line, tag uint64, dirty bool) Eviction {
	c.stats.Fills++
	vi := emptyWayIndex(set)
	ev := Eviction{}
	if vi < 0 {
		vi = c.victimIndex(set)
		victim := set[vi]
		ev = Eviction{LineAddr: victim.tag, Dirty: victim.dirty, Valid: true}
		if victim.dirty {
			c.stats.Writebacks++
		}
	}
	c.place(set, vi, line{tag: tag, valid: true, dirty: dirty})
	return ev
}

// set returns the ways of the set holding lineAddr, MRU first.
func (c *Cache) set(lineAddr uint64) []line {
	idx := int(lineAddr&c.setMask) * c.ways
	return c.lines[idx : idx+c.ways]
}

// OccupiedLines counts currently valid lines (for tests and capacity
// diagnostics).
func (c *Cache) OccupiedLines() int {
	n := 0
	for _, l := range c.lines {
		if l.valid {
			n++
		}
	}
	return n
}

// DirtyLines counts currently dirty lines.
func (c *Cache) DirtyLines() int {
	n := 0
	for _, l := range c.lines {
		if l.valid && l.dirty {
			n++
		}
	}
	return n
}
