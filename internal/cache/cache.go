// Package cache implements the set-associative, write-back caches of the
// simulated Gainestown memory hierarchy (Table IV of the paper): private
// L1I/L1D and L2 caches per core and a shared LLC.
//
// Cache models a single level with true-LRU replacement, write-back and
// write-allocate policy, operating on line addresses (byte address >>
// log2(block size) is performed by the caller or via the Line helper).
//
// The tag store is a packed struct-of-arrays layout: a flat tags []uint64
// array scanned per set (one cache line covers an 8-way set; empty ways
// hold a reserved sentinel so the residency scan is a single uint64
// compare per way with no metadata load), valid/dirty/RRPV bits packed
// into a parallel meta []uint8 array, and LRU recency kept as monotonic
// per-line stamps — a hit is one store instead of shuffling 16-byte line
// structs. The pre-SoA slice-of-struct implementation is retained
// (reference.go) behind Config{Layout: LayoutAoS} as the bit-identical
// baseline for equivalence tests and layout benchmarks.
package cache

import (
	"fmt"
	"math/bits"
)

// Stats counts cache events.
type Stats struct {
	// Hits and Misses count lookups by outcome.
	Hits, Misses uint64
	// Writebacks counts dirty lines evicted (writes propagated downstream).
	Writebacks uint64
	// Fills counts lines installed: one per allocating miss from Access,
	// WritebackTo or Install. Non-allocating lookups (Touch) miss without
	// filling, so Fills ≤ Misses in general and the two are equal only
	// when every lookup goes through the allocate-on-miss Access path.
	Fills uint64
}

// Accesses is hits plus misses.
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses }

// MissRate returns misses/accesses, or 0 for an untouched cache.
func (s Stats) MissRate() float64 {
	a := s.Accesses()
	if a == 0 {
		return 0
	}
	return float64(s.Misses) / float64(a)
}

// HitRate returns hits/accesses, or 0 for an untouched cache.
func (s Stats) HitRate() float64 {
	a := s.Accesses()
	if a == 0 {
		return 0
	}
	return float64(s.Hits) / float64(a)
}

// String renders a one-line summary (mirroring engine.Stats.String).
func (s Stats) String() string {
	return fmt.Sprintf("%d hits, %d misses (%.1f%% hit rate), %d fills, %d writebacks",
		s.Hits, s.Misses, 100*s.HitRate(), s.Fills, s.Writebacks)
}

// Add accumulates another stats block.
func (s *Stats) Add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Writebacks += o.Writebacks
	s.Fills += o.Fills
}

// Layout selects the tag-store memory layout.
type Layout int

const (
	// LayoutSoA is the packed struct-of-arrays store (the default).
	LayoutSoA Layout = iota
	// LayoutAoS is the retained pre-SoA slice-of-struct reference
	// implementation, kept for equivalence tests and the
	// BENCH_hotloop.json old-vs-new layout comparison.
	LayoutAoS
)

// String names the layout ("soa", "aos").
func (l Layout) String() string {
	switch l {
	case LayoutSoA:
		return "soa"
	case LayoutAoS:
		return "aos"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// meta bit layout: valid and dirty flags plus the 2-bit SRRIP RRPV.
const (
	metaValid     uint8 = 1 << 0
	metaDirty     uint8 = 1 << 1
	metaRRPVShift       = 2
	metaRRPVMask  uint8 = 3 << metaRRPVShift
)

// invalidTag occupies empty ways in the packed tag array, so the
// residency scan needs no metadata load: a way matches iff its tag
// equals the probed line address, and no real line address can equal the
// sentinel (a line address is a byte address right-shifted by at least
// one bit for any block size ≥ 2 — every configuration this simulator
// builds uses 64-byte blocks).
const invalidTag = ^uint64(0)

// Cache is a single-level set-associative write-back cache.
type Cache struct {
	name    string
	ways    int
	sets    int
	setMask uint64
	// tags and meta are the packed struct-of-arrays tag store: sets×ways
	// entries, empty ways holding invalidTag with the matching meta valid
	// bit clear.
	tags []uint64
	meta []uint8
	// stamps holds per-line LRU recency (larger = more recent, assigned
	// from lruClock); nil under SRRIP and Random, whose state lives in
	// meta/rngState. The clock is per cache and monotonic, so stamps are
	// unique and a uint64 cannot wrap within any feasible run.
	stamps   []uint64
	lruClock uint64
	// occ counts valid ways per set, so steady-state fills (every set
	// full) skip the empty-way scan and go straight to victim selection.
	occ []uint8
	// disabled, when non-nil, counts condemned ways per set (wear-driven
	// fault degradation, see internal/fault): a set operates at
	// associativity ways−disabled, and a set with every way disabled is
	// dead (fills are refused). Nil — the common case — keeps the fill
	// path on its historical branch untouched.
	disabled  []uint8
	stats     Stats
	blockBits uint
	policy    Policy
	rngState  uint64 // Random policy victim-selection state
	// ref, when non-nil, is the retained slice-of-struct implementation
	// (Config.Layout == LayoutAoS); every operation delegates to it.
	ref *refStore
}

// Config describes a cache level.
type Config struct {
	// Name identifies the level in errors and dumps (e.g. "L1D").
	Name string
	// CapacityBytes is the total data capacity.
	CapacityBytes int64
	// BlockBytes is the line size.
	BlockBytes int
	// Ways is the associativity.
	Ways int
	// Policy is the replacement policy (zero value: LRU).
	Policy Policy
	// VictimSeed seeds the Random policy's victim RNG. Zero (the
	// default) derives the seed from the level name and geometry, so
	// same-shaped caches at different levels pick independent victim
	// sequences; set it explicitly to pin a seed when seed-state
	// comparisons must stay reproducible across differently-named caches.
	VictimSeed uint64
	// Layout selects the tag-store memory layout (default LayoutSoA).
	Layout Layout
}

// Validate checks the configuration; New and the hybrid-LLC construction
// path in internal/system both run it before building a cache.
func (cfg Config) Validate() error {
	if cfg.BlockBytes <= 0 || cfg.BlockBytes&(cfg.BlockBytes-1) != 0 {
		return fmt.Errorf("cache %s: block size %d must be a positive power of two", cfg.Name, cfg.BlockBytes)
	}
	if cfg.Ways <= 0 {
		return fmt.Errorf("cache %s: ways %d must be positive", cfg.Name, cfg.Ways)
	}
	if cfg.Ways > 255 {
		return fmt.Errorf("cache %s: ways %d exceeds the associativity limit 255", cfg.Name, cfg.Ways)
	}
	if !cfg.Policy.Valid() {
		return fmt.Errorf("cache %s: unknown replacement policy %d", cfg.Name, int(cfg.Policy))
	}
	if cfg.Layout != LayoutSoA && cfg.Layout != LayoutAoS {
		return fmt.Errorf("cache %s: unknown tag-store layout %d", cfg.Name, int(cfg.Layout))
	}
	setBytes := int64(cfg.BlockBytes) * int64(cfg.Ways)
	if cfg.CapacityBytes <= 0 || cfg.CapacityBytes%setBytes != 0 {
		return fmt.Errorf("cache %s: capacity %d not a positive multiple of set size %d", cfg.Name, cfg.CapacityBytes, setBytes)
	}
	sets := cfg.CapacityBytes / setBytes
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d must be a power of two", cfg.Name, sets)
	}
	return nil
}

// sets returns the validated set count.
func (cfg Config) numSets() int {
	return int(cfg.CapacityBytes / (int64(cfg.BlockBytes) * int64(cfg.Ways)))
}

// victimSeed resolves the Random-policy RNG seed: the explicit override
// when set, otherwise a per-level derivation mixing the name and geometry
// so same-shaped caches at different levels (or levels at different
// cores) do not replay identical victim sequences.
func (cfg Config) victimSeed(sets int) uint64 {
	if cfg.VictimSeed != 0 {
		return cfg.VictimSeed
	}
	// FNV-1a over the name, then splitmix64-style finalization with the
	// geometry folded in. The additive constant keeps the zero-name,
	// zero-geometry corner away from a zero state.
	h := uint64(14695981039346656037)
	for i := 0; i < len(cfg.Name); i++ {
		h ^= uint64(cfg.Name[i])
		h *= 1099511628211
	}
	h ^= uint64(sets)<<32 ^ uint64(cfg.Ways)
	h += 0x9E3779B97F4A7C15
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	if h == 0 {
		h = 0x9E3779B97F4A7C15
	}
	return h
}

// New builds a cache. Capacity must be a power-of-two multiple of
// BlockBytes×Ways so the set count is a power of two.
func New(cfg Config) (*Cache, error) { return NewIn(nil, cfg) }

// NewIn is New carving the tag-store arrays out of the arena, recycling
// their storage across simulator constructions (a nil arena allocates
// fresh). The reference LayoutAoS always allocates fresh, preserving the
// historical allocation behavior it exists to represent.
func NewIn(a *Arena, cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.numSets()
	c := &Cache{
		name:      cfg.Name,
		ways:      cfg.Ways,
		sets:      sets,
		setMask:   uint64(sets - 1),
		blockBits: uint(bits.TrailingZeros64(uint64(cfg.BlockBytes))),
		policy:    cfg.Policy,
		rngState:  cfg.victimSeed(sets),
	}
	if cfg.Layout == LayoutAoS {
		c.ref = newRefStore(sets, cfg.Ways, cfg.Policy, c.rngState)
		return c, nil
	}
	lines := sets * cfg.Ways
	c.tags = a.takeTags(lines)
	c.meta = a.takeMeta(lines)
	c.occ = a.takeOcc(sets)
	if cfg.Policy == LRU {
		c.stamps = a.takeStamps(lines)
	}
	return c, nil
}

// Line converts a byte address to this cache's line address.
func (c *Cache) Line(addr uint64) uint64 { return addr >> c.blockBits }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Name returns the configured level name.
func (c *Cache) Name() string { return c.name }

// ReplacementPolicy returns the configured policy.
func (c *Cache) ReplacementPolicy() Policy { return c.policy }

// Stats returns the accumulated event counts.
func (c *Cache) Stats() Stats {
	if c.ref != nil {
		return c.ref.stats
	}
	return c.stats
}

// ResetStats zeroes the counters without touching cache contents.
func (c *Cache) ResetStats() {
	if c.ref != nil {
		c.ref.stats = Stats{}
		return
	}
	c.stats = Stats{}
}

// Eviction describes a line displaced by a fill.
type Eviction struct {
	// LineAddr is the evicted line address.
	LineAddr uint64
	// Dirty reports whether the line must be written downstream.
	Dirty bool
	// Valid is false when the fill used an empty way (no eviction).
	Valid bool
}

// setBase returns the index of the first way of lineAddr's set.
func (c *Cache) setBase(lineAddr uint64) int {
	return int(lineAddr&c.setMask) * c.ways
}

// findWay scans the set's packed tags for lineAddr, returning the way
// index or -1: one uint64 compare per way over a single contiguous run
// of tags, with no metadata load — empty ways hold invalidTag, which no
// probed line address can equal.
func (c *Cache) findWay(base int, lineAddr uint64) int {
	tags := c.tags[base : base+c.ways]
	for i := range tags {
		if tags[i] == lineAddr {
			return i
		}
	}
	return -1
}

// Access performs a lookup for a line address, allocating on miss.
// isWrite marks the line dirty on hit or after the allocate (write-back,
// write-allocate). It returns whether the lookup hit and the eviction, if
// any, caused by the allocation.
func (c *Cache) Access(lineAddr uint64, isWrite bool) (hit bool, ev Eviction) {
	if c.ref != nil {
		return c.ref.Access(lineAddr, isWrite)
	}
	base := c.setBase(lineAddr)
	if i := c.findWay(base, lineAddr); i >= 0 {
		c.stats.Hits++
		if isWrite {
			c.meta[base+i] |= metaDirty
		}
		c.touchHit(base, i)
		return true, Eviction{}
	}
	c.stats.Misses++
	return false, c.fill(base, lineAddr, isWrite)
}

// BaseOf returns the tag-store index of the first way of lineAddr's set
// — the value AccessAt consumes. It is pure geometry (mask and multiply
// over fields that never change after construction), so pre-decode
// passes may evaluate it from another goroutine while the consumer
// drives the cache.
func (c *Cache) BaseOf(lineAddr uint64) int32 {
	return int32(lineAddr&c.setMask) * int32(c.ways)
}

// Geometry exposes the set-index parameters a pre-decoder needs to
// compute set bases without holding the cache: base = (line & mask) × ways.
func (c *Cache) Geometry() (setMask uint64, ways int) { return c.setMask, c.ways }

// AccessAt is Access with the set base precomputed (BaseOf): the batch
// pre-decode pass hoists the shift/mask geometry out of the per-access
// hot loop and hands the base in as a lane. The reference AoS layout
// ignores the base and recomputes, keeping the two layouts
// bit-identical.
func (c *Cache) AccessAt(base int32, lineAddr uint64, isWrite bool) (hit bool, ev Eviction) {
	if c.ref != nil {
		return c.ref.Access(lineAddr, isWrite)
	}
	b := int(base)
	if i := c.findWay(b, lineAddr); i >= 0 {
		c.stats.Hits++
		if isWrite {
			c.meta[b+i] |= metaDirty
		}
		c.touchHit(b, i)
		return true, Eviction{}
	}
	c.stats.Misses++
	return false, c.fill(b, lineAddr, isWrite)
}

// Touch performs a non-allocating lookup: a hit updates replacement
// state (and optionally dirtiness) and returns true; a miss changes
// nothing. Statistics are counted like Access.
func (c *Cache) Touch(lineAddr uint64, isWrite bool) bool {
	if c.ref != nil {
		return c.ref.Touch(lineAddr, isWrite)
	}
	base := c.setBase(lineAddr)
	if i := c.findWay(base, lineAddr); i >= 0 {
		c.stats.Hits++
		if isWrite {
			c.meta[base+i] |= metaDirty
		}
		c.touchHit(base, i)
		return true
	}
	c.stats.Misses++
	return false
}

// Probe checks residency without updating LRU state or statistics.
func (c *Cache) Probe(lineAddr uint64) bool {
	if c.ref != nil {
		return c.ref.Probe(lineAddr)
	}
	return c.findWay(c.setBase(lineAddr), lineAddr) >= 0
}

// Install inserts a line (e.g. a fill from below in a non-lookup path)
// and returns any eviction. The line is installed clean unless dirty.
func (c *Cache) Install(lineAddr uint64, dirty bool) Eviction {
	if c.ref != nil {
		return c.ref.Install(lineAddr, dirty)
	}
	base := c.setBase(lineAddr)
	// If already present, just update dirtiness and recency.
	if i := c.findWay(base, lineAddr); i >= 0 {
		if dirty {
			c.meta[base+i] |= metaDirty
		}
		c.touchHit(base, i)
		return Eviction{}
	}
	return c.fill(base, lineAddr, dirty)
}

// WritebackTo marks a resident line dirty (a writeback arriving from an
// upper level). If the line is absent it is installed dirty
// (write-allocate) and the displaced line is returned.
func (c *Cache) WritebackTo(lineAddr uint64) (wasPresent bool, ev Eviction) {
	if c.ref != nil {
		return c.ref.WritebackTo(lineAddr)
	}
	base := c.setBase(lineAddr)
	if i := c.findWay(base, lineAddr); i >= 0 {
		c.meta[base+i] |= metaDirty
		c.touchHit(base, i)
		return true, Eviction{}
	}
	return false, c.fill(base, lineAddr, true)
}

// Clean clears a resident line's dirty bit without evicting it (a
// coherence downgrade: Modified -> Shared). It reports residency and
// whether the line had been dirty.
func (c *Cache) Clean(lineAddr uint64) (present, wasDirty bool) {
	if c.ref != nil {
		return c.ref.Clean(lineAddr)
	}
	base := c.setBase(lineAddr)
	i := c.findWay(base, lineAddr)
	if i < 0 {
		return false, false
	}
	wasDirty = c.meta[base+i]&metaDirty != 0
	c.meta[base+i] &^= metaDirty
	return true, wasDirty
}

// Invalidate drops a line if present, returning whether it was dirty.
func (c *Cache) Invalidate(lineAddr uint64) (present, dirty bool) {
	if c.ref != nil {
		return c.ref.Invalidate(lineAddr)
	}
	base := c.setBase(lineAddr)
	i := c.findWay(base, lineAddr)
	if i < 0 {
		return false, false
	}
	dirty = c.meta[base+i]&metaDirty != 0
	// Dropping a line needs no LRU bookkeeping: the surviving stamps keep
	// their relative order, exactly as the reference layout's compaction
	// preserves the survivors' order.
	c.tags[base+i] = invalidTag
	c.meta[base+i] = 0
	c.occ[lineAddr&c.setMask]--
	return true, dirty
}

// fill installs a tag at the set starting at base, evicting the policy's
// victim if the set is full. The occupancy count routes full sets (the
// steady state) straight to victim selection; non-full sets find a free
// way by scanning the tags for the invalidTag sentinel. Sets with
// disabled ways are full at their reduced associativity, and a dead set
// (every way disabled) refuses the fill outright.
func (c *Cache) fill(base int, tag uint64, dirty bool) Eviction {
	si := int(tag & c.setMask)
	capWays := c.ways
	if c.disabled != nil {
		capWays -= int(c.disabled[si])
		if capWays == 0 {
			return Eviction{}
		}
	}
	c.stats.Fills++
	ev := Eviction{}
	var vi int
	if occ := int(c.occ[si]); occ >= capWays {
		if capWays == c.ways {
			vi = c.victimWay(base)
		} else {
			vi = c.victimWayCapped(base, occ)
		}
		m := c.meta[base+vi]
		ev = Eviction{LineAddr: c.tags[base+vi], Dirty: m&metaDirty != 0, Valid: true}
		if m&metaDirty != 0 {
			c.stats.Writebacks++
		}
	} else {
		vi = c.findWay(base, invalidTag)
		c.occ[si]++
	}
	c.place(base, vi, tag, dirty)
	return ev
}

// SetOf returns the index of the set holding lineAddr.
func (c *Cache) SetOf(lineAddr uint64) int { return int(lineAddr & c.setMask) }

// DisableWay permanently removes one way from a set (a wear-condemned
// cell, see internal/fault), shrinking its associativity by one; victim
// selection re-routes over the surviving ways. The caller must have
// invalidated a resident line first if the set was full at its previous
// capacity — the cache never holds more lines than a set's enabled ways.
func (c *Cache) DisableWay(set int) {
	if c.ref != nil {
		c.ref.DisableWay(set)
		return
	}
	if c.disabled == nil {
		c.disabled = make([]uint8, c.sets)
	}
	if int(c.disabled[set]) < c.ways {
		c.disabled[set]++
	}
}

// DisabledWays returns the number of condemned ways in a set.
func (c *Cache) DisabledWays(set int) int {
	if c.ref != nil {
		return c.ref.disabledWays(set)
	}
	if c.disabled == nil {
		return 0
	}
	return int(c.disabled[set])
}

// EnabledWays returns a set's surviving associativity.
func (c *Cache) EnabledWays(set int) int { return c.ways - c.DisabledWays(set) }

// OccupiedLines counts currently valid lines (for tests and capacity
// diagnostics).
func (c *Cache) OccupiedLines() int {
	if c.ref != nil {
		return c.ref.occupiedLines()
	}
	n := 0
	for _, m := range c.meta {
		if m&metaValid != 0 {
			n++
		}
	}
	return n
}

// DirtyLines counts currently dirty lines.
func (c *Cache) DirtyLines() int {
	if c.ref != nil {
		return c.ref.dirtyLines()
	}
	n := 0
	for _, m := range c.meta {
		if m&(metaValid|metaDirty) == metaValid|metaDirty {
			n++
		}
	}
	return n
}
