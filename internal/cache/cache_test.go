package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return c
}

func small(t *testing.T) *Cache {
	// 4 sets × 2 ways × 64B = 512B.
	return mustNew(t, Config{Name: "t", CapacityBytes: 512, BlockBytes: 64, Ways: 2})
}

func TestNewRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{Name: "b", CapacityBytes: 512, BlockBytes: 0, Ways: 2},
		{Name: "b", CapacityBytes: 512, BlockBytes: 48, Ways: 2},
		{Name: "b", CapacityBytes: 512, BlockBytes: 64, Ways: 0},
		{Name: "b", CapacityBytes: 0, BlockBytes: 64, Ways: 2},
		{Name: "b", CapacityBytes: 100, BlockBytes: 64, Ways: 2},
		{Name: "b", CapacityBytes: 64 * 2 * 3, BlockBytes: 64, Ways: 2}, // 3 sets
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New accepted %+v", i, cfg)
		}
	}
}

func TestBasicHitMiss(t *testing.T) {
	c := small(t)
	if hit, _ := c.Access(1, false); hit {
		t.Error("first access hit an empty cache")
	}
	if hit, _ := c.Access(1, false); !hit {
		t.Error("second access to same line missed")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Fills != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 fill", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small(t)
	// Lines 0, 4, 8 map to set 0 (4 sets). 2 ways.
	c.Access(0, false)
	c.Access(4, false)
	c.Access(0, false)          // 0 becomes MRU, 4 is LRU
	_, ev := c.Access(8, false) // evicts 4
	if !ev.Valid || ev.LineAddr != 4 {
		t.Errorf("eviction = %+v, want line 4", ev)
	}
	if !c.Probe(0) || !c.Probe(8) || c.Probe(4) {
		t.Error("post-eviction residency wrong")
	}
}

func TestDirtyEvictionAndWritebackCount(t *testing.T) {
	c := small(t)
	c.Access(0, true) // dirty
	c.Access(4, false)
	_, ev := c.Access(8, false) // evicts dirty 0
	if !ev.Valid || ev.LineAddr != 0 || !ev.Dirty {
		t.Errorf("eviction = %+v, want dirty line 0", ev)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
	// Clean eviction does not count.
	_, ev = c.Access(12, false) // evicts clean 4
	if !ev.Valid || ev.Dirty {
		t.Errorf("eviction = %+v, want clean line 4", ev)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d after clean evict, want 1", c.Stats().Writebacks)
	}
}

func TestWriteHitMarksDirty(t *testing.T) {
	c := small(t)
	c.Access(0, false) // clean fill
	c.Access(0, true)  // write hit dirties
	if c.DirtyLines() != 1 {
		t.Errorf("dirty lines = %d, want 1", c.DirtyLines())
	}
	c.Access(4, false)
	_, ev := c.Access(8, false)
	if !ev.Dirty {
		t.Error("write-hit dirtiness lost on eviction")
	}
}

func TestProbeDoesNotPerturb(t *testing.T) {
	c := small(t)
	c.Access(0, false)
	c.Access(4, false) // LRU: 0
	c.Probe(0)         // must NOT touch recency
	_, ev := c.Access(8, false)
	if ev.LineAddr != 0 {
		t.Errorf("Probe perturbed LRU: evicted %d, want 0", ev.LineAddr)
	}
	if c.Stats().Accesses() != 3 {
		t.Errorf("Probe counted as access: %d", c.Stats().Accesses())
	}
}

func TestInstallAndInvalidate(t *testing.T) {
	c := small(t)
	ev := c.Install(0, false)
	if ev.Valid {
		t.Errorf("Install into empty set evicted %+v", ev)
	}
	if !c.Probe(0) {
		t.Error("installed line absent")
	}
	// Install of a present line must not duplicate.
	c.Install(0, true)
	if c.OccupiedLines() != 1 {
		t.Errorf("occupied = %d after re-install, want 1", c.OccupiedLines())
	}
	present, dirty := c.Invalidate(0)
	if !present || !dirty {
		t.Errorf("Invalidate = %v,%v, want present dirty", present, dirty)
	}
	if c.Probe(0) {
		t.Error("line survives Invalidate")
	}
	present, _ = c.Invalidate(0)
	if present {
		t.Error("double Invalidate reports present")
	}
}

func TestWritebackTo(t *testing.T) {
	c := small(t)
	c.Access(0, false)
	present, _ := c.WritebackTo(0)
	if !present {
		t.Error("WritebackTo missed resident line")
	}
	if c.DirtyLines() != 1 {
		t.Error("WritebackTo did not dirty the line")
	}
	present, _ = c.WritebackTo(4)
	if present {
		t.Error("WritebackTo found absent line")
	}
	if !c.Probe(4) {
		t.Error("WritebackTo did not allocate")
	}
}

func TestHitsPlusMissesEqualsAccessesProperty(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		c, err := New(Config{Name: "p", CapacityBytes: 4096, BlockBytes: 64, Ways: 4})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		count := uint64(n%2000) + 1
		for i := uint64(0); i < count; i++ {
			c.Access(rng.Uint64()%256, rng.Intn(2) == 0)
		}
		s := c.Stats()
		return s.Accesses() == count && s.Fills == s.Misses &&
			c.OccupiedLines() <= c.Sets()*c.Ways()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLRUMatchesReferenceModel(t *testing.T) {
	// Compare against a straightforward per-set reference LRU.
	c := mustNew(t, Config{Name: "ref", CapacityBytes: 2048, BlockBytes: 64, Ways: 4})
	sets := c.Sets()
	type refSet []uint64 // MRU first
	ref := make([]refSet, sets)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 20000; i++ {
		addr := rng.Uint64() % 64
		si := int(addr) % sets
		hit, _ := c.Access(addr, false)
		// Reference.
		rs := ref[si]
		refHit := false
		for j, tag := range rs {
			if tag == addr {
				refHit = true
				copy(rs[1:j+1], rs[:j])
				rs[0] = addr
				break
			}
		}
		if !refHit {
			if len(rs) < 4 {
				rs = append(rs, 0)
			}
			copy(rs[1:], rs[:len(rs)-1])
			rs[0] = addr
			ref[si] = rs
		}
		if hit != refHit {
			t.Fatalf("access %d (line %d): hit=%v, reference=%v", i, addr, hit, refHit)
		}
	}
}

func TestWorkingSetFitsMeansNoCapacityMisses(t *testing.T) {
	c := mustNew(t, Config{Name: "fit", CapacityBytes: 8192, BlockBytes: 64, Ways: 4})
	// 128 lines exactly fill the cache; loop over 64 (half).
	for pass := 0; pass < 4; pass++ {
		for l := uint64(0); l < 64; l++ {
			c.Access(l, false)
		}
	}
	s := c.Stats()
	if s.Misses != 64 {
		t.Errorf("misses = %d, want 64 (cold only)", s.Misses)
	}
}

func TestThrashingWorkingSet(t *testing.T) {
	// Working set 2× capacity with LRU round-robin = 100% miss.
	c := mustNew(t, Config{Name: "thrash", CapacityBytes: 4096, BlockBytes: 64, Ways: 4})
	// 64-line cache; cycle 128 distinct lines mapping evenly.
	for pass := 0; pass < 3; pass++ {
		for l := uint64(0); l < 128; l++ {
			c.Access(l, false)
		}
	}
	s := c.Stats()
	if s.Hits != 0 {
		t.Errorf("hits = %d, want 0 under LRU thrash", s.Hits)
	}
}

func TestLineAddressing(t *testing.T) {
	c := mustNew(t, Config{Name: "line", CapacityBytes: 4096, BlockBytes: 64, Ways: 4})
	if c.Line(0x1000) != 0x40 {
		t.Errorf("Line(0x1000) = %#x, want 0x40", c.Line(0x1000))
	}
	// Two addresses in one block are the same line.
	if c.Line(0x1000) != c.Line(0x103F) {
		t.Error("same-block addresses map to different lines")
	}
}

func TestResetStats(t *testing.T) {
	c := small(t)
	c.Access(0, true)
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Errorf("stats after reset = %+v", c.Stats())
	}
	if !c.Probe(0) {
		t.Error("ResetStats dropped contents")
	}
}

func TestStatsAddAndMissRate(t *testing.T) {
	a := Stats{Hits: 3, Misses: 1, Writebacks: 2, Fills: 1}
	b := Stats{Hits: 1, Misses: 3, Writebacks: 1, Fills: 3}
	a.Add(b)
	if a.Hits != 4 || a.Misses != 4 || a.Writebacks != 3 || a.Fills != 4 {
		t.Errorf("Add = %+v", a)
	}
	if a.MissRate() != 0.5 {
		t.Errorf("MissRate = %g, want 0.5", a.MissRate())
	}
	if (Stats{}).MissRate() != 0 {
		t.Error("empty MissRate not 0")
	}
}

func TestNameAccessor(t *testing.T) {
	c := small(t)
	if c.Name() != "t" {
		t.Errorf("Name = %q", c.Name())
	}
}

func TestTouch(t *testing.T) {
	c := small(t)
	if c.Touch(0, false) {
		t.Error("Touch hit an empty cache")
	}
	// Touch must not allocate.
	if c.Probe(0) {
		t.Error("Touch allocated")
	}
	c.Access(0, false)
	c.Access(4, false) // LRU: 0
	if !c.Touch(0, false) {
		t.Error("Touch missed a resident line")
	}
	// Touch promotes: the next conflict must evict 4, not 0.
	_, ev := c.Access(8, false)
	if ev.LineAddr != 4 {
		t.Errorf("Touch did not promote: evicted %d, want 4", ev.LineAddr)
	}
	// Touch with isWrite dirties.
	c.Touch(0, true)
	if c.DirtyLines() != 1 {
		t.Error("Touch(write) did not dirty")
	}
	// Touch counts stats like Access.
	before := c.Stats().Accesses()
	c.Touch(0, false)
	c.Touch(12345, false)
	if c.Stats().Accesses() != before+2 {
		t.Error("Touch not counted in stats")
	}
}

func TestClean(t *testing.T) {
	c := small(t)
	c.Access(0, true)
	present, wasDirty := c.Clean(0)
	if !present || !wasDirty {
		t.Errorf("Clean = %v,%v, want true,true", present, wasDirty)
	}
	if c.DirtyLines() != 0 {
		t.Error("Clean left the line dirty")
	}
	if !c.Probe(0) {
		t.Error("Clean evicted the line")
	}
	present, wasDirty = c.Clean(0)
	if !present || wasDirty {
		t.Errorf("second Clean = %v,%v, want true,false", present, wasDirty)
	}
	if present, _ := c.Clean(999); present {
		t.Error("Clean found an absent line")
	}
}
