package cache

import "fmt"

// Policy selects the replacement policy of a cache level. The paper's
// configuration uses true LRU at every level; SRRIP and Random are
// provided for the replacement-policy ablation (the LLC-management
// related work the paper surveys in Section I builds on exactly these
// baselines).
type Policy int

const (
	// LRU is true least-recently-used replacement (the default).
	LRU Policy = iota
	// SRRIP is 2-bit static re-reference interval prediction (Jaleel et
	// al.): lines insert at "long" re-reference, promote to "immediate"
	// on hit, and the victim is the first line predicted "distant".
	SRRIP
	// Random evicts a pseudo-random way (deterministic per cache
	// instance; seeded per level, see Config.VictimSeed).
	Random
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case SRRIP:
		return "SRRIP"
	case Random:
		return "Random"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Valid reports whether p is a known policy.
func (p Policy) Valid() bool { return p == LRU || p == SRRIP || p == Random }

// rrpv constants for SRRIP (2-bit).
const (
	rrpvMax    = 3 // distant re-reference: eviction candidate
	rrpvInsert = 2 // long re-reference: insertion value
)

// touchHit updates replacement state for a hit on way i of the set at
// base. Under LRU the hit line takes the next clock stamp — one store,
// against the reference layout's copy-to-front shuffle of 16-byte
// structs; the stamps record the same recency order.
func (c *Cache) touchHit(base, i int) {
	switch c.policy {
	case LRU:
		c.lruClock++
		c.stamps[base+i] = c.lruClock
	case SRRIP:
		c.meta[base+i] &^= metaRRPVMask
	default: // Random: no state
	}
}

// victimWay picks the way to evict from a full set (every way valid).
func (c *Cache) victimWay(base int) int {
	switch c.policy {
	case LRU:
		// The LRU line holds the set's minimum stamp (stamps are unique:
		// the clock is monotonic, and a full set means every way was
		// stamped by this cache instance).
		stamps := c.stamps[base : base+c.ways]
		vi, min := 0, stamps[0]
		for j := 1; j < len(stamps); j++ {
			if stamps[j] < min {
				vi, min = j, stamps[j]
			}
		}
		return vi
	case SRRIP:
		meta := c.meta[base : base+c.ways]
		for {
			for i := range meta {
				if (meta[i]&metaRRPVMask)>>metaRRPVShift >= rrpvMax {
					return i
				}
			}
			for i := range meta {
				if (meta[i]&metaRRPVMask)>>metaRRPVShift < rrpvMax {
					meta[i] += 1 << metaRRPVShift
				}
			}
		}
	default: // Random
		c.rngState = c.rngState*6364136223846793005 + 1442695040888963407
		return int((c.rngState >> 33) % uint64(c.ways))
	}
}

// victimWayCapped picks the eviction victim from a set that is full at a
// reduced associativity (disabled ways leave invalid slots behind, so
// valid ways must be filtered explicitly — the full-set fast paths above
// may not assume every way is live). occ is the set's current valid-way
// count, consumed by the Random policy's index draw. The selections are
// semantically identical to the reference layout's capped variants: LRU
// picks the minimum stamp among valid ways (the reference's last
// compacted line), SRRIP scans and ages only valid ways, and Random maps
// one RNG draw onto the occ-th valid slot.
func (c *Cache) victimWayCapped(base, occ int) int {
	switch c.policy {
	case LRU:
		meta := c.meta[base : base+c.ways]
		stamps := c.stamps[base : base+c.ways]
		vi := -1
		var min uint64
		for j := range meta {
			if meta[j]&metaValid == 0 {
				continue
			}
			if vi < 0 || stamps[j] < min {
				vi, min = j, stamps[j]
			}
		}
		return vi
	case SRRIP:
		meta := c.meta[base : base+c.ways]
		for {
			for i := range meta {
				if meta[i]&metaValid != 0 && (meta[i]&metaRRPVMask)>>metaRRPVShift >= rrpvMax {
					return i
				}
			}
			for i := range meta {
				if meta[i]&metaValid != 0 && (meta[i]&metaRRPVMask)>>metaRRPVShift < rrpvMax {
					meta[i] += 1 << metaRRPVShift
				}
			}
		}
	default: // Random
		c.rngState = c.rngState*6364136223846793005 + 1442695040888963407
		idx := int((c.rngState >> 33) % uint64(occ))
		meta := c.meta[base : base+c.ways]
		for i := range meta {
			if meta[i]&metaValid == 0 {
				continue
			}
			if idx == 0 {
				return i
			}
			idx--
		}
		return 0 // unreachable: occ valid ways exist
	}
}

// place installs a new line over way vi (an empty way or the victim),
// maintaining policy state. Under LRU the filled line takes the next
// clock stamp, making it the set's most recent whether the way was empty
// or the evicted minimum.
func (c *Cache) place(base, vi int, tag uint64, dirty bool) {
	m := metaValid
	if dirty {
		m |= metaDirty
	}
	switch c.policy {
	case LRU:
		c.lruClock++
		c.stamps[base+vi] = c.lruClock
	case SRRIP:
		m |= rrpvInsert << metaRRPVShift
	}
	c.tags[base+vi] = tag
	c.meta[base+vi] = m
}
