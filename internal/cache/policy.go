package cache

import "fmt"

// Policy selects the replacement policy of a cache level. The paper's
// configuration uses true LRU at every level; SRRIP and Random are
// provided for the replacement-policy ablation (the LLC-management
// related work the paper surveys in Section I builds on exactly these
// baselines).
type Policy int

const (
	// LRU is true least-recently-used replacement (the default).
	LRU Policy = iota
	// SRRIP is 2-bit static re-reference interval prediction (Jaleel et
	// al.): lines insert at "long" re-reference, promote to "immediate"
	// on hit, and the victim is the first line predicted "distant".
	SRRIP
	// Random evicts a pseudo-random way (xorshift, deterministic per
	// cache instance).
	Random
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case SRRIP:
		return "SRRIP"
	case Random:
		return "Random"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Valid reports whether p is a known policy.
func (p Policy) Valid() bool { return p == LRU || p == SRRIP || p == Random }

// rrpv constants for SRRIP (2-bit).
const (
	rrpvMax    = 3 // distant re-reference: eviction candidate
	rrpvInsert = 2 // long re-reference: insertion value
)

// onHit updates replacement state for a hit at index i of the set and
// returns the (possibly moved) index of the line afterwards.
func (c *Cache) onHit(set []line, i int) int {
	switch c.policy {
	case LRU:
		l := set[i]
		copy(set[1:i+1], set[:i])
		set[0] = l
		return 0
	case SRRIP:
		set[i].rrpv = 0
		return i
	default: // Random: no state
		return i
	}
}

// victimIndex picks the way to evict from a full set.
func (c *Cache) victimIndex(set []line) int {
	switch c.policy {
	case LRU:
		return len(set) - 1
	case SRRIP:
		for {
			for i := range set {
				if set[i].rrpv >= rrpvMax {
					return i
				}
			}
			for i := range set {
				if set[i].rrpv < rrpvMax {
					set[i].rrpv++
				}
			}
		}
	default: // Random
		c.rngState = c.rngState*6364136223846793005 + 1442695040888963407
		return int((c.rngState >> 33) % uint64(len(set)))
	}
}

// place installs a new line over the victim at index vi, maintaining
// policy state.
func (c *Cache) place(set []line, vi int, l line) {
	switch c.policy {
	case LRU:
		copy(set[1:vi+1], set[:vi])
		l.rrpv = 0
		set[0] = l
	case SRRIP:
		l.rrpv = rrpvInsert
		set[vi] = l
	default:
		set[vi] = l
	}
}

// emptyWayIndex returns the index of an invalid way, or -1 if the set is
// full.
func emptyWayIndex(set []line) int {
	for i := range set {
		if !set[i].valid {
			return i
		}
	}
	return -1
}
