package cache

import (
	"math/rand"
	"testing"
)

func newPolicyCache(t *testing.T, p Policy) *Cache {
	t.Helper()
	c, err := New(Config{Name: "pol", CapacityBytes: 4096, BlockBytes: 64, Ways: 4, Policy: p})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "LRU" || SRRIP.String() != "SRRIP" || Random.String() != "Random" {
		t.Error("policy names wrong")
	}
	if Policy(9).Valid() {
		t.Error("invalid policy accepted")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy name empty")
	}
}

func TestNewRejectsUnknownPolicy(t *testing.T) {
	_, err := New(Config{Name: "x", CapacityBytes: 4096, BlockBytes: 64, Ways: 4, Policy: Policy(42)})
	if err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestReplacementPolicyAccessor(t *testing.T) {
	if newPolicyCache(t, SRRIP).ReplacementPolicy() != SRRIP {
		t.Error("policy accessor wrong")
	}
}

func TestAllPoliciesBasicInvariants(t *testing.T) {
	for _, p := range []Policy{LRU, SRRIP, Random} {
		c := newPolicyCache(t, p)
		rng := rand.New(rand.NewSource(11))
		var accesses uint64
		for i := 0; i < 50000; i++ {
			c.Access(rng.Uint64()%128, rng.Intn(3) == 0)
			accesses++
		}
		s := c.Stats()
		if s.Accesses() != accesses {
			t.Errorf("%v: accesses %d != %d", p, s.Accesses(), accesses)
		}
		if s.Fills != s.Misses {
			t.Errorf("%v: fills %d != misses %d", p, s.Fills, s.Misses)
		}
		if c.OccupiedLines() > c.Sets()*c.Ways() {
			t.Errorf("%v: overfull cache", p)
		}
		// Repeated access to a resident line must always hit.
		c.Access(7, false)
		if hit, _ := c.Access(7, false); !hit {
			t.Errorf("%v: immediate re-access missed", p)
		}
	}
}

func TestSRRIPHitPromotion(t *testing.T) {
	c := newPolicyCache(t, SRRIP)
	// Fill one set (lines 0,16,32,48 map to set 0 of 16 sets).
	for _, l := range []uint64{0, 16, 32, 48} {
		c.Access(l, false)
	}
	// Promote line 0 (rrpv -> 0); the others stay at insert rrpv.
	c.Access(0, false)
	// Next fill must evict one of the non-promoted lines, never line 0.
	_, ev := c.Access(64, false)
	if !ev.Valid {
		t.Fatal("no eviction from full set")
	}
	if ev.LineAddr == 0 {
		t.Error("SRRIP evicted the promoted line")
	}
	if !c.Probe(0) {
		t.Error("promoted line gone")
	}
}

func TestSRRIPBeatsLRUOnScanMixes(t *testing.T) {
	// The classic SRRIP result: an active working set mixed with one-shot
	// scan bursts. LRU lets the scan flush the working set; SRRIP keeps
	// re-referenced lines at immediate re-reference and sacrifices the
	// scan lines instead.
	run := func(p Policy) Stats {
		c := newPolicyCache(t, p) // 64 lines, 16 sets × 4 ways
		scanBase := uint64(1 << 20)
		for round := 0; round < 200; round++ {
			// Re-reference a 32-line working set twice...
			for rep := 0; rep < 2; rep++ {
				for l := uint64(0); l < 32; l++ {
					c.Access(l, false)
				}
			}
			// ...then a one-shot 64-line scan burst.
			for l := uint64(0); l < 64; l++ {
				c.Access(scanBase+uint64(round)*64+l, false)
			}
		}
		return c.Stats()
	}
	lru := run(LRU)
	srrip := run(SRRIP)
	if srrip.Hits <= lru.Hits {
		t.Errorf("SRRIP hits %d not above LRU %d on scan mix", srrip.Hits, lru.Hits)
	}
}

func TestRandomPolicyIsDeterministicPerInstance(t *testing.T) {
	run := func() []uint64 {
		c := newPolicyCache(t, Random)
		var evs []uint64
		for l := uint64(0); l < 200; l++ {
			if _, ev := c.Access(l, false); ev.Valid {
				evs = append(evs, ev.LineAddr)
			}
		}
		return evs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic eviction count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("eviction %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestRandomPolicySpreadsEvictions(t *testing.T) {
	c := newPolicyCache(t, Random)
	// Hammer one set with a long conflict stream; all four ways should
	// host victims over time (i.e. evictions touch ≥ 3 distinct prior
	// occupants in a row of 4).
	seen := map[uint64]bool{}
	for i := uint64(0); i < 400; i++ {
		if _, ev := c.Access(i*16, false); ev.Valid {
			seen[ev.LineAddr] = true
		}
	}
	if len(seen) < 4 {
		t.Errorf("random evictions too narrow: %d distinct victims", len(seen))
	}
}

func TestInvalidateUnderNonLRUPolicies(t *testing.T) {
	for _, p := range []Policy{SRRIP, Random} {
		c := newPolicyCache(t, p)
		c.Access(0, true)
		c.Access(16, false)
		present, dirty := c.Invalidate(0)
		if !present || !dirty {
			t.Errorf("%v: Invalidate = %v,%v", p, present, dirty)
		}
		if c.Probe(0) || !c.Probe(16) {
			t.Errorf("%v: residency after invalidate wrong", p)
		}
		// Refill reuses the freed way.
		c.Access(32, false)
		if c.OccupiedLines() != 2 {
			t.Errorf("%v: occupied = %d, want 2", p, c.OccupiedLines())
		}
	}
}

func TestDirtyWritebackUnderAllPolicies(t *testing.T) {
	for _, p := range []Policy{LRU, SRRIP, Random} {
		c := newPolicyCache(t, p)
		// Dirty the whole cache, then scan a disjoint region of equal
		// size: every eviction must be a dirty writeback.
		for l := uint64(0); l < 64; l++ {
			c.Access(l, true)
		}
		c.ResetStats()
		for l := uint64(1000); l < 1064; l++ {
			c.Access(l, false)
		}
		wb := c.Stats().Writebacks
		if p == LRU && wb != 64 {
			t.Errorf("LRU: writebacks = %d, want exactly 64", wb)
		}
		// Non-LRU victims may include clean newcomers, but the bulk of
		// the dirty set must still wash out.
		if wb < 32 {
			t.Errorf("%v: writebacks = %d, want ≥ 32", p, wb)
		}
	}
}
