package cache

import (
	"reflect"
	"testing"
)

func TestSetsFor(t *testing.T) {
	sets, err := SetsFor(2<<20, 64, 16)
	if err != nil || sets != 2048 {
		t.Fatalf("SetsFor(2MiB, 64, 16) = %d, %v; want 2048", sets, err)
	}
	if _, err := SetsFor(3<<20, 64, 16); err == nil {
		t.Error("SetsFor accepted a non-power-of-two set count")
	}
	if _, err := SetsFor(2<<20, 0, 16); err == nil {
		t.Error("SetsFor accepted a zero block size")
	}
}

func TestConfigGeom(t *testing.T) {
	g, err := Config{Name: "L2", CapacityBytes: 256 << 10, BlockBytes: 64, Ways: 8}.Geom()
	if err != nil {
		t.Fatalf("Geom: %v", err)
	}
	if g != (Geom{Sets: 512, Ways: 8}) {
		t.Fatalf("Geom = %+v, want 512×8", g)
	}
	if g.CapacityBytes(64) != 256<<10 {
		t.Errorf("CapacityBytes = %d, want %d", g.CapacityBytes(64), 256<<10)
	}
	if g.String() != "512×8" {
		t.Errorf("String = %q", g.String())
	}
}

func TestCapacityLadder(t *testing.T) {
	got, err := CapacityLadder(16<<20, 8)
	if err != nil {
		t.Fatalf("CapacityLadder: %v", err)
	}
	want := []int64{128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CapacityLadder = %v, want %v", got, want)
	}
	if _, err := CapacityLadder(3<<20, 4); err == nil {
		t.Error("CapacityLadder accepted a non-power-of-two top")
	}
	if _, err := CapacityLadder(1<<20, 0); err == nil {
		t.Error("CapacityLadder accepted zero points")
	}
	if _, err := CapacityLadder(64, 10); err == nil {
		t.Error("CapacityLadder accepted an underflowing point count")
	}
}

func TestEnumerateGeomsAndSetCounts(t *testing.T) {
	caps, err := CapacityLadder(16<<20, 8)
	if err != nil {
		t.Fatalf("CapacityLadder: %v", err)
	}
	geoms, err := EnumerateGeoms(caps, 64, 16)
	if err != nil {
		t.Fatalf("EnumerateGeoms: %v", err)
	}
	if len(geoms) != 8 || geoms[0] != (Geom{Sets: 128, Ways: 16}) || geoms[7] != (Geom{Sets: 16384, Ways: 16}) {
		t.Fatalf("EnumerateGeoms = %v", geoms)
	}
	counts := SetCountsOf(append(geoms, Geom{Sets: 128, Ways: 4}))
	want := []int{128, 256, 512, 1024, 2048, 4096, 8192, 16384}
	if !reflect.DeepEqual(counts, want) {
		t.Fatalf("SetCountsOf = %v, want %v", counts, want)
	}
	if _, err := EnumerateGeoms([]int64{96 << 10}, 64, 16); err == nil {
		t.Error("EnumerateGeoms accepted a capacity yielding non-power-of-two sets")
	}
}
