package cache

// Arena recycles tag-store storage across cache constructions. A
// simulator builds dozens to hundreds of caches per run (three private
// levels × up to 64 cores plus the LLC); carving their tags/meta/stamps
// arrays out of one reusable arena makes repeated runs — the engine's
// steady state and the hot-loop benchmarks — allocation-free on cache
// storage instead of several megabytes per run at 64 cores.
//
// Usage: Reset() once per construction cycle, then NewIn for every cache
// of that cycle. Windows handed out before a Reset must no longer be in
// use when the next cycle begins — the caller (internal/system's Scratch)
// guarantees a Scratch is owned by one run at a time. The zero value is
// ready to use. An Arena must not be shared by concurrent simulations.
type Arena struct {
	tags   []uint64
	meta   []uint8
	stamps []uint64

	tagOff, metaOff, stampOff int
}

// Reset starts a new construction cycle: previously carved windows are
// abandoned (their backing arrays are reused) and capacity is retained.
func (a *Arena) Reset() {
	a.tagOff, a.metaOff, a.stampOff = 0, 0, 0
}

// take carves an n-element window out of buf, growing to a fresh backing
// array when full. Earlier windows keep aliasing the old array, so the
// grow path is safe mid-cycle; capacity doubles relative to the running
// total, reaching a single steady-state backing within a few cycles.
func take[T uint64 | uint8](buf *[]T, off *int, n int) []T {
	if *off+n > len(*buf) {
		*buf = make([]T, 2*(*off+n))
		*off = 0
	}
	s := (*buf)[*off : *off+n : *off+n]
	*off += n
	return s
}

// takeTags returns an n-line tag window with every way empty (the
// invalidTag sentinel findWay's residency scan relies on).
func (a *Arena) takeTags(n int) []uint64 {
	var s []uint64
	if a == nil {
		s = make([]uint64, n)
	} else {
		s = take(&a.tags, &a.tagOff, n)
	}
	for i := range s {
		s[i] = invalidTag
	}
	return s
}

// takeMeta returns an n-line meta window, zeroed (all ways invalid).
func (a *Arena) takeMeta(n int) []uint8 {
	if a == nil {
		return make([]uint8, n)
	}
	s := take(&a.meta, &a.metaOff, n)
	clear(s)
	return s
}

// takeStamps returns an n-line LRU-stamp window, zeroed (stamps are
// (re)assigned from the owning cache's clock as ways fill, and only
// valid ways' stamps are ever compared).
func (a *Arena) takeStamps(n int) []uint64 {
	if a == nil {
		return make([]uint64, n)
	}
	s := take(&a.stamps, &a.stampOff, n)
	clear(s)
	return s
}

// takeOcc returns an n-set occupancy window, zeroed (all sets empty). It
// shares the meta backing array — both are per-construction uint8 state.
func (a *Arena) takeOcc(n int) []uint8 {
	return a.takeMeta(n)
}
