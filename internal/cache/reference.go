package cache

// refStore is the pre-SoA slice-of-struct tag store, retained verbatim as
// the reference implementation. It backs Config{Layout: LayoutAoS} so the
// equivalence suites (cache-level property tests, system- and
// engine-level byte-identity tests) and cmd/benchreport's old-vs-new
// layout comparison can replay the exact historical behavior against the
// packed struct-of-arrays store. Do not optimize this code: its value is
// being the unchanged baseline.

// line is one cache way of the reference layout.
type line struct {
	tag   uint64
	valid bool
	dirty bool
	rrpv  uint8 // SRRIP re-reference prediction value
}

type refStore struct {
	ways     int
	setMask  uint64
	lines    []line // sets × ways; LRU keeps index 0 = MRU
	stats    Stats
	policy   Policy
	rngState uint64 // Random policy victim-selection state
	// disabled mirrors Cache.disabled for the fault-degradation model
	// (per-set condemned-way counts); nil keeps every historical path
	// untouched. The capped variants below are the only post-SoA addition
	// to this file and are exercised solely by the fault tests' layout
	// equivalence.
	disabled []uint8
}

func newRefStore(sets, ways int, policy Policy, seed uint64) *refStore {
	return &refStore{
		ways:     ways,
		setMask:  uint64(sets - 1),
		lines:    make([]line, sets*ways),
		policy:   policy,
		rngState: seed,
	}
}

func (c *refStore) Access(lineAddr uint64, isWrite bool) (hit bool, ev Eviction) {
	set := c.set(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			c.stats.Hits++
			if isWrite {
				set[i].dirty = true
			}
			c.onHit(set, i)
			return true, Eviction{}
		}
	}
	c.stats.Misses++
	ev = c.fill(set, lineAddr, isWrite)
	return false, ev
}

func (c *refStore) Touch(lineAddr uint64, isWrite bool) bool {
	set := c.set(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			c.stats.Hits++
			if isWrite {
				set[i].dirty = true
			}
			c.onHit(set, i)
			return true
		}
	}
	c.stats.Misses++
	return false
}

func (c *refStore) Probe(lineAddr uint64) bool {
	set := c.set(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			return true
		}
	}
	return false
}

func (c *refStore) Install(lineAddr uint64, dirty bool) Eviction {
	set := c.set(lineAddr)
	// If already present, just update dirtiness and recency.
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			set[i].dirty = set[i].dirty || dirty
			c.onHit(set, i)
			return Eviction{}
		}
	}
	return c.fill(set, lineAddr, dirty)
}

func (c *refStore) WritebackTo(lineAddr uint64) (wasPresent bool, ev Eviction) {
	set := c.set(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			set[i].dirty = true
			c.onHit(set, i)
			return true, Eviction{}
		}
	}
	return false, c.fill(set, lineAddr, true)
}

func (c *refStore) Clean(lineAddr uint64) (present, wasDirty bool) {
	set := c.set(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			wasDirty = set[i].dirty
			set[i].dirty = false
			return true, wasDirty
		}
	}
	return false, false
}

func (c *refStore) Invalidate(lineAddr uint64) (present, dirty bool) {
	set := c.set(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			present, dirty = true, set[i].dirty
			if c.policy == LRU {
				// Keep LRU sets compacted: valid lines first.
				copy(set[i:], set[i+1:])
				set[len(set)-1] = line{}
			} else {
				set[i] = line{}
			}
			return present, dirty
		}
	}
	return false, false
}

// fill installs a tag, evicting the policy's victim if the set is full.
func (c *refStore) fill(set []line, tag uint64, dirty bool) Eviction {
	if c.disabled != nil {
		if d := c.disabled[tag&c.setMask]; d > 0 {
			return c.fillCapped(set, tag, dirty, int(d))
		}
	}
	c.stats.Fills++
	vi := emptyWayIndex(set)
	ev := Eviction{}
	if vi < 0 {
		vi = c.victimIndex(set)
		victim := set[vi]
		ev = Eviction{LineAddr: victim.tag, Dirty: victim.dirty, Valid: true}
		if victim.dirty {
			c.stats.Writebacks++
		}
	}
	c.place(set, vi, line{tag: tag, valid: true, dirty: dirty})
	return ev
}

// fillCapped is fill for a set with d disabled ways: the set is full at
// occupancy ways−d, and a dead set (d == ways) refuses the install.
func (c *refStore) fillCapped(set []line, tag uint64, dirty bool, d int) Eviction {
	capWays := c.ways - d
	if capWays == 0 {
		return Eviction{}
	}
	valid := 0
	for i := range set {
		if set[i].valid {
			valid++
		}
	}
	c.stats.Fills++
	ev := Eviction{}
	var vi int
	if valid >= capWays {
		vi = c.victimIndexCapped(set, valid)
		victim := set[vi]
		ev = Eviction{LineAddr: victim.tag, Dirty: victim.dirty, Valid: true}
		if victim.dirty {
			c.stats.Writebacks++
		}
	} else {
		vi = emptyWayIndex(set)
	}
	c.place(set, vi, line{tag: tag, valid: true, dirty: dirty})
	return ev
}

// victimIndexCapped picks the eviction victim among the valid ways of a
// set that is full at reduced associativity. Selections match the packed
// layout's victimWayCapped line for line: LRU evicts the last compacted
// (least recent) valid line, SRRIP scans and ages only valid ways, and
// Random maps one RNG draw onto the valid-th slot.
func (c *refStore) victimIndexCapped(set []line, valid int) int {
	switch c.policy {
	case LRU:
		return valid - 1 // LRU sets stay compacted, valid lines first
	case SRRIP:
		for {
			for i := range set {
				if set[i].valid && set[i].rrpv >= rrpvMax {
					return i
				}
			}
			for i := range set {
				if set[i].valid && set[i].rrpv < rrpvMax {
					set[i].rrpv++
				}
			}
		}
	default: // Random
		c.rngState = c.rngState*6364136223846793005 + 1442695040888963407
		idx := int((c.rngState >> 33) % uint64(valid))
		for i := range set {
			if !set[i].valid {
				continue
			}
			if idx == 0 {
				return i
			}
			idx--
		}
		return 0 // unreachable: valid ways exist
	}
}

// DisableWay mirrors Cache.DisableWay for the reference layout.
func (c *refStore) DisableWay(set int) {
	if c.disabled == nil {
		c.disabled = make([]uint8, int(c.setMask)+1)
	}
	if int(c.disabled[set]) < c.ways {
		c.disabled[set]++
	}
}

func (c *refStore) disabledWays(set int) int {
	if c.disabled == nil {
		return 0
	}
	return int(c.disabled[set])
}

// set returns the ways of the set holding lineAddr, MRU first under LRU.
func (c *refStore) set(lineAddr uint64) []line {
	idx := int(lineAddr&c.setMask) * c.ways
	return c.lines[idx : idx+c.ways]
}

// onHit updates replacement state for a hit at index i of the set.
func (c *refStore) onHit(set []line, i int) {
	switch c.policy {
	case LRU:
		l := set[i]
		copy(set[1:i+1], set[:i])
		set[0] = l
	case SRRIP:
		set[i].rrpv = 0
	default: // Random: no state
	}
}

// victimIndex picks the way to evict from a full set.
func (c *refStore) victimIndex(set []line) int {
	switch c.policy {
	case LRU:
		return len(set) - 1
	case SRRIP:
		for {
			for i := range set {
				if set[i].rrpv >= rrpvMax {
					return i
				}
			}
			for i := range set {
				if set[i].rrpv < rrpvMax {
					set[i].rrpv++
				}
			}
		}
	default: // Random
		c.rngState = c.rngState*6364136223846793005 + 1442695040888963407
		return int((c.rngState >> 33) % uint64(len(set)))
	}
}

// place installs a new line over the victim at index vi, maintaining
// policy state.
func (c *refStore) place(set []line, vi int, l line) {
	switch c.policy {
	case LRU:
		copy(set[1:vi+1], set[:vi])
		l.rrpv = 0
		set[0] = l
	case SRRIP:
		l.rrpv = rrpvInsert
		set[vi] = l
	default:
		set[vi] = l
	}
}

// emptyWayIndex returns the index of an invalid way, or -1 if the set is
// full.
func emptyWayIndex(set []line) int {
	for i := range set {
		if !set[i].valid {
			return i
		}
	}
	return -1
}

func (c *refStore) occupiedLines() int {
	n := 0
	for _, l := range c.lines {
		if l.valid {
			n++
		}
	}
	return n
}

func (c *refStore) dirtyLines() int {
	n := 0
	for _, l := range c.lines {
		if l.valid && l.dirty {
			n++
		}
	}
	return n
}
