package cache

import (
	"fmt"
	"sort"
)

// Geom is a bare (sets, ways) cache shape — the coordinate the
// reuse-distance profiler (internal/profile) derives hit rates over,
// detached from any one level's latencies or energies.
type Geom struct {
	// Sets is the power-of-two set count.
	Sets int
	// Ways is the associativity.
	Ways int
}

// CapacityBytes returns the shape's data capacity at a block size.
func (g Geom) CapacityBytes(blockBytes int) int64 {
	return int64(g.Sets) * int64(g.Ways) * int64(blockBytes)
}

// String renders "sets×ways".
func (g Geom) String() string { return fmt.Sprintf("%d×%d", g.Sets, g.Ways) }

// Geom returns the validated configuration's shape.
func (cfg Config) Geom() (Geom, error) {
	if err := cfg.Validate(); err != nil {
		return Geom{}, err
	}
	return Geom{Sets: cfg.numSets(), Ways: cfg.Ways}, nil
}

// SetsFor returns the set count of a (capacity, block, ways) geometry,
// with the same divisibility and power-of-two constraints
// Config.Validate enforces.
func SetsFor(capacityBytes int64, blockBytes, ways int) (int, error) {
	cfg := Config{Name: "geom", CapacityBytes: capacityBytes, BlockBytes: blockBytes, Ways: ways}
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	return cfg.numSets(), nil
}

// EnumerateGeoms expands a capacity ladder at fixed block size and
// associativity into shapes, one per capacity, in input order.
func EnumerateGeoms(capacities []int64, blockBytes, ways int) ([]Geom, error) {
	out := make([]Geom, 0, len(capacities))
	for _, c := range capacities {
		sets, err := SetsFor(c, blockBytes, ways)
		if err != nil {
			return nil, err
		}
		out = append(out, Geom{Sets: sets, Ways: ways})
	}
	return out, nil
}

// SetCountsOf collects the distinct set counts of a shape list, sorted
// ascending — the profiler's Config.SetCounts for a sweep over them.
func SetCountsOf(geoms []Geom) []int {
	seen := make(map[int]bool, len(geoms))
	var out []int
	for _, g := range geoms {
		if !seen[g.Sets] {
			seen[g.Sets] = true
			out = append(out, g.Sets)
		}
	}
	sort.Ints(out)
	return out
}

// CapacityLadder builds a power-of-two capacity sweep: points entries
// ending at maxBytes, each half the previous (e.g. 8 points ending at
// 16 MiB spans 128 KiB..16 MiB), in ascending order.
func CapacityLadder(maxBytes int64, points int) ([]int64, error) {
	if points <= 0 {
		return nil, fmt.Errorf("cache: capacity ladder needs a positive point count, got %d", points)
	}
	if maxBytes <= 0 || maxBytes&(maxBytes-1) != 0 {
		return nil, fmt.Errorf("cache: capacity ladder top %d must be a positive power of two", maxBytes)
	}
	if maxBytes>>(points-1) == 0 {
		return nil, fmt.Errorf("cache: %d points underflow a %d-byte ladder", points, maxBytes)
	}
	out := make([]int64, points)
	for i := 0; i < points; i++ {
		out[i] = maxBytes >> (points - 1 - i)
	}
	return out, nil
}
