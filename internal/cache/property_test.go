package cache

// Property test for the packed struct-of-arrays tag store: long random
// operation streams are replayed through both layouts — the SoA Cache and
// the retained slice-of-struct reference (LayoutAoS) — and every return
// value, the running statistics and the final contents must match
// exactly. This is the cache-level leg of the PR's equivalence discipline
// (the system- and engine-level legs live in internal/system and
// internal/engine).

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// dumpLine is one valid line in canonical order for contents comparison.
type dumpLine struct {
	tag   uint64
	dirty bool
	rrpv  uint8
}

// dumpSoA lists the valid lines of each set: recency order under LRU
// (most recent stamp first), physical way order otherwise — exactly the
// order the reference layout stores them in.
func dumpSoA(c *Cache) [][]dumpLine {
	out := make([][]dumpLine, c.sets)
	for s := 0; s < c.sets; s++ {
		base := s * c.ways
		var set []dumpLine
		if c.policy == LRU {
			type stamped struct {
				stamp uint64
				line  dumpLine
			}
			var lines []stamped
			for w := 0; w < c.ways; w++ {
				if c.meta[base+w]&metaValid != 0 {
					lines = append(lines, stamped{
						stamp: c.stamps[base+w],
						line:  dumpLine{tag: c.tags[base+w], dirty: c.meta[base+w]&metaDirty != 0},
					})
				}
			}
			sort.Slice(lines, func(i, j int) bool { return lines[i].stamp > lines[j].stamp })
			for _, l := range lines {
				set = append(set, l.line)
			}
		} else {
			for w := 0; w < c.ways; w++ {
				if m := c.meta[base+w]; m&metaValid != 0 {
					set = append(set, dumpLine{
						tag:   c.tags[base+w],
						dirty: m&metaDirty != 0,
						rrpv:  (m & metaRRPVMask) >> metaRRPVShift,
					})
				}
			}
		}
		out[s] = set
	}
	return out
}

// dumpRef lists the reference layout's valid lines in storage order
// (MRU-first under LRU by construction, physical otherwise).
func dumpRef(c *refStore) [][]dumpLine {
	sets := int(c.setMask) + 1
	out := make([][]dumpLine, sets)
	for s := 0; s < sets; s++ {
		var set []dumpLine
		for _, l := range c.lines[s*c.ways : (s+1)*c.ways] {
			if !l.valid {
				continue
			}
			d := dumpLine{tag: l.tag, dirty: l.dirty}
			if c.policy != LRU {
				d.rrpv = l.rrpv
			}
			set = append(set, d)
		}
		out[s] = set
	}
	return out
}

func TestSoAMatchesReferenceLayout(t *testing.T) {
	geometries := []struct {
		sets, ways int
	}{
		{4, 2},   // tiny, high conflict
		{16, 8},  // L1-shaped
		{64, 16}, // LLC-shaped
		{8, 3},   // non-power-of-two ways
	}
	const opsPerConfig = 20_000 // × 4 geometries × 3 policies = 240k ops
	totalOps := 0
	for _, p := range []Policy{LRU, SRRIP, Random} {
		for gi, g := range geometries {
			cfg := Config{
				Name:          fmt.Sprintf("prop-%s-%d", p, gi),
				CapacityBytes: int64(g.sets) * int64(g.ways) * 64,
				BlockBytes:    64,
				Ways:          g.ways,
				Policy:        p,
			}
			soa, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Layout = LayoutAoS
			aos, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if soa.ref != nil || aos.ref == nil {
				t.Fatalf("layout selection broken: soa.ref=%v aos.ref=%v", soa.ref, aos.ref)
			}
			rng := rand.New(rand.NewSource(int64(7*gi) + int64(p)*1331 + 99))
			// Address pool ~2× capacity so sets fill, conflict and churn.
			addrSpace := uint64(g.sets*g.ways) * 2
			for op := 0; op < opsPerConfig; op++ {
				addr := rng.Uint64() % addrSpace
				isWrite := rng.Intn(2) == 0
				var got, want any
				switch rng.Intn(8) {
				case 0, 1, 2: // Access dominates, as in the simulator
					h1, e1 := soa.Access(addr, isWrite)
					h2, e2 := aos.Access(addr, isWrite)
					got, want = fmt.Sprint(h1, e1), fmt.Sprint(h2, e2)
				case 3:
					got, want = soa.Touch(addr, isWrite), aos.Touch(addr, isWrite)
				case 4:
					got, want = soa.Install(addr, isWrite), aos.Install(addr, isWrite)
				case 5:
					p1, e1 := soa.WritebackTo(addr)
					p2, e2 := aos.WritebackTo(addr)
					got, want = fmt.Sprint(p1, e1), fmt.Sprint(p2, e2)
				case 6:
					p1, d1 := soa.Clean(addr)
					p2, d2 := aos.Clean(addr)
					got, want = fmt.Sprint(p1, d1), fmt.Sprint(p2, d2)
				case 7:
					p1, d1 := soa.Invalidate(addr)
					p2, d2 := aos.Invalidate(addr)
					got, want = fmt.Sprint(p1, d1), fmt.Sprint(p2, d2)
				}
				if got != want {
					t.Fatalf("%s geometry %d op %d: SoA returned %v, reference %v", p, gi, op, got, want)
				}
				if rng.Intn(512) == 0 {
					if p1, p2 := soa.Probe(addr), aos.Probe(addr); p1 != p2 {
						t.Fatalf("%s geometry %d op %d: Probe %v vs %v", p, gi, op, p1, p2)
					}
				}
				totalOps++
			}
			if s1, s2 := soa.Stats(), aos.Stats(); s1 != s2 {
				t.Errorf("%s geometry %d: stats diverged: SoA %+v, reference %+v", p, gi, s1, s2)
			}
			if o1, o2 := soa.OccupiedLines(), aos.OccupiedLines(); o1 != o2 {
				t.Errorf("%s geometry %d: occupied %d vs %d", p, gi, o1, o2)
			}
			if d1, d2 := soa.DirtyLines(), aos.DirtyLines(); d1 != d2 {
				t.Errorf("%s geometry %d: dirty %d vs %d", p, gi, d1, d2)
			}
			c1, c2 := dumpSoA(soa), dumpRef(aos.ref)
			for s := range c1 {
				if fmt.Sprint(c1[s]) != fmt.Sprint(c2[s]) {
					t.Fatalf("%s geometry %d set %d: contents diverged\nSoA: %v\nref: %v", p, gi, s, c1[s], c2[s])
				}
			}
		}
	}
	if totalOps < 200_000 {
		t.Fatalf("property test replayed only %d ops, want ≥200000", totalOps)
	}
}

// TestVictimSeedDerivation covers the Random-policy seeding fix:
// same-shaped caches at different levels must not replay identical
// victim sequences, while the VictimSeed knob pins the sequence for
// reproducible seed-state comparisons.
func TestVictimSeedDerivation(t *testing.T) {
	evictions := func(cfg Config) []uint64 {
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var evs []uint64
		for l := uint64(0); l < 4096; l++ {
			if _, ev := c.Access(l, false); ev.Valid {
				evs = append(evs, ev.LineAddr)
			}
		}
		return evs
	}
	base := Config{CapacityBytes: 8 << 10, BlockBytes: 64, Ways: 4, Policy: Random}

	l2, l2b := base, base
	l2.Name, l2b.Name = "L2", "L2"
	if fmt.Sprint(evictions(l2)) != fmt.Sprint(evictions(l2b)) {
		t.Error("identical configs must produce identical victim sequences")
	}

	llc := base
	llc.Name = "LLC"
	if fmt.Sprint(evictions(l2)) == fmt.Sprint(evictions(llc)) {
		t.Error("same-shaped caches at different levels picked identical victim sequences")
	}

	pinA, pinB := l2, llc
	pinA.VictimSeed, pinB.VictimSeed = 0x9E3779B97F4A7C15, 0x9E3779B97F4A7C15
	if fmt.Sprint(evictions(pinA)) != fmt.Sprint(evictions(pinB)) {
		t.Error("VictimSeed override must pin the victim sequence across level names")
	}

	// Both layouts must derive the same seed from the same config, so
	// old-vs-new comparisons stay reproducible under Random replacement.
	aos := llc
	aos.Layout = LayoutAoS
	if fmt.Sprint(evictions(llc)) != fmt.Sprint(evictions(aos)) {
		t.Error("SoA and reference layouts diverged under Random replacement")
	}
}

// TestConfigValidate exercises Validate directly (New and the hybrid-LLC
// construction path both call it).
func TestConfigValidate(t *testing.T) {
	good := Config{Name: "ok", CapacityBytes: 512, BlockBytes: 64, Ways: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Name: "b", CapacityBytes: 512, BlockBytes: 0, Ways: 2},
		{Name: "b", CapacityBytes: 512, BlockBytes: 48, Ways: 2},
		{Name: "b", CapacityBytes: 512, BlockBytes: 64, Ways: 0},
		{Name: "b", CapacityBytes: 64 * 300, BlockBytes: 64, Ways: 300},
		{Name: "b", CapacityBytes: 0, BlockBytes: 64, Ways: 2},
		{Name: "b", CapacityBytes: 100, BlockBytes: 64, Ways: 2},
		{Name: "b", CapacityBytes: 64 * 2 * 3, BlockBytes: 64, Ways: 2}, // 3 sets
		{Name: "b", CapacityBytes: 512, BlockBytes: 64, Ways: 2, Policy: Policy(99)},
		{Name: "b", CapacityBytes: 512, BlockBytes: 64, Ways: 2, Layout: Layout(99)},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, cfg)
		}
	}
}

// TestArenaRecycling checks that arena-backed construction reuses
// storage across Reset cycles and still behaves like a fresh cache.
func TestArenaRecycling(t *testing.T) {
	var a Arena
	cfg := Config{Name: "ar", CapacityBytes: 4 << 10, BlockBytes: 64, Ways: 4}
	build := func() *Cache {
		a.Reset()
		c, err := NewIn(&a, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c1 := build()
	for l := uint64(0); l < 500; l++ {
		c1.Access(l, l%3 == 0)
	}
	// Second cycle must come up empty despite the dirtied storage.
	c2 := build()
	if got := c2.OccupiedLines(); got != 0 {
		t.Fatalf("recycled cache starts with %d occupied lines", got)
	}
	if hit, _ := c2.Access(1, false); hit {
		t.Fatal("recycled cache hit on first access")
	}
	// And behave identically to a fresh allocation.
	fresh, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c3 := build()
	for l := uint64(0); l < 2000; l++ {
		h1, e1 := c3.Access(l%97, l%5 == 0)
		h2, e2 := fresh.Access(l%97, l%5 == 0)
		if h1 != h2 || e1 != e2 {
			t.Fatalf("access %d: arena-backed (%v,%v) vs fresh (%v,%v)", l, h1, e1, h2, e2)
		}
	}
	if c3.Stats() != fresh.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", c3.Stats(), fresh.Stats())
	}
}
