package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"nvmllc/internal/reference"
	"nvmllc/internal/system"
	"nvmllc/internal/workload"
)

// mtJobs builds a small multi-threaded design-point grid (two workloads
// at two core counts) whose jobs exercise the scheduler and coherence
// paths the single-threaded engine tests miss.
func mtJobs(t *testing.T) []Job {
	t.Helper()
	var jobs []Job
	for _, name := range []string{"ft", "is"} {
		for _, threads := range []int{2, 8} {
			p, err := workload.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			opts := workload.Options{Accesses: 20000, Threads: threads, Seed: 11}
			tr, err := workload.Generate(p, opts)
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, Job{
				Workload:  name,
				TraceOpts: opts,
				Config:    system.Gainestown(reference.SRAMBaseline()).WithCores(threads),
				Trace:     tr,
			})
		}
	}
	return jobs
}

// marshal renders a Result for byte-level comparison.
func marshal(t *testing.T, r *system.Result) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestEngineSchedulerEquivalence is the engine-level acceptance test for
// the heap-scheduler swap: every Result the engine produces (through its
// default heap-scheduled, scratch-pooled path) must be byte-identical to
// the same design point simulated with the historical linear-scan
// scheduler, and the cache key must not change — cached results from
// before the swap stay valid.
func TestEngineSchedulerEquivalence(t *testing.T) {
	e := New()
	for _, j := range mtJobs(t) {
		key, cacheable := Key(j)
		if !cacheable {
			t.Fatalf("%s/%d threads: job unexpectedly uncacheable", j.Workload, j.TraceOpts.Threads)
		}
		got, err := e.Run(context.Background(), j)
		if err != nil {
			t.Fatal(err)
		}
		want, err := system.RunScheduled(context.Background(), j.Config, j.Trace, system.SchedLinearScan, nil)
		if err != nil {
			t.Fatal(err)
		}
		if gb, wb := marshal(t, got), marshal(t, want); !bytes.Equal(gb, wb) {
			t.Errorf("%s/%d threads: engine result differs from linear-scan scheduler\nengine: %s\nscan:   %s",
				j.Workload, j.TraceOpts.Threads, gb, wb)
		}
		if key2, _ := Key(j); key2 != key {
			t.Errorf("%s/%d threads: cache key not deterministic: %s vs %s",
				j.Workload, j.TraceOpts.Threads, key, key2)
		}
		// Pre-decode leg: the same design point streamed through a fresh
		// engine (chunked ring + batch pre-decode + trace sharing) must
		// reproduce the linear-scan result too, under the same cache key —
		// the pipeline rework must never move a job to a different entry.
		p, err := workload.ByName(j.Workload)
		if err != nil {
			t.Fatal(err)
		}
		sj := StreamJob(p, j.TraceOpts, j.Config)
		if skey, ok := Key(sj); !ok || skey != key {
			t.Errorf("%s/%d threads: streamed form keys to %q, materialized to %q",
				j.Workload, j.TraceOpts.Threads, skey, key)
		}
		sres, err := New().Run(context.Background(), sj)
		if err != nil {
			t.Fatal(err)
		}
		if sb, wb := marshal(t, sres), marshal(t, want); !bytes.Equal(sb, wb) {
			t.Errorf("%s/%d threads: streamed engine result differs from linear-scan scheduler\nstream: %s\nscan:   %s",
				j.Workload, j.TraceOpts.Threads, sb, wb)
		}
	}
}

// TestEngineDeterministicAcrossParallelism runs the same design-point
// grid twice through shared engines — once serialized, once at the
// engine's default GOMAXPROCS parallelism — and requires identical cache
// keys and byte-identical Result fields. Worker scheduling, the scratch
// pool and cache races must not leak into results.
func TestEngineDeterministicAcrossParallelism(t *testing.T) {
	jobs := mtJobs(t)
	// Duplicate the grid so the parallel engine also exercises its
	// concurrent same-key dedup path.
	jobs = append(jobs, jobs...)

	serial := New(WithParallelism(1))
	serialRes, err := serial.RunAll(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	parallel := New()
	parallelRes, err := parallel.RunAll(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if serialRes[i] == nil || parallelRes[i] == nil {
			t.Fatalf("job %d: nil result without error", i)
		}
		sb, pb := marshal(t, serialRes[i]), marshal(t, parallelRes[i])
		if !bytes.Equal(sb, pb) {
			t.Errorf("job %d (%s/%d threads): results differ across parallelism\nserial:   %s\nparallel: %s",
				i, jobs[i].Workload, jobs[i].TraceOpts.Threads, sb, pb)
		}
	}
	// Same grid, same keys: both engines must agree job-for-job.
	for i := range jobs {
		ks, _ := Key(jobs[i])
		kp, _ := Key(jobs[i])
		if ks == "" || ks != kp {
			t.Errorf("job %d: unstable cache key %q vs %q", i, ks, kp)
		}
	}
}
