package engine

// Engine-level acceptance tests for the streaming trace pipeline: a
// streamed job must produce byte-identical results to its materialized
// twin, share its cache key (so the two forms deduplicate against each
// other), and the SoA/AoS layout swap must be invisible in every result
// the engine serves.

import (
	"bytes"
	"context"
	"testing"

	"nvmllc/internal/cache"
	"nvmllc/internal/system"
	"nvmllc/internal/trace"
	"nvmllc/internal/workload"
)

// streamTwin converts a materialized job into its streaming form.
func streamTwin(t *testing.T, j Job) Job {
	t.Helper()
	p, err := workload.ByName(j.Workload)
	if err != nil {
		t.Fatal(err)
	}
	return StreamJob(p, j.TraceOpts, j.Config)
}

// TestEngineStreamEquivalence: for every design point in the grid, the
// streamed and materialized forms must agree byte-for-byte and hash to
// the same cache key.
func TestEngineStreamEquivalence(t *testing.T) {
	e := New(WithoutCache())
	for _, j := range mtJobs(t) {
		sj := streamTwin(t, j)
		k1, c1 := Key(j)
		k2, c2 := Key(sj)
		if !c1 || !c2 || k1 != k2 {
			t.Fatalf("%s: cache keys differ across forms: %q (cacheable=%v) vs %q (cacheable=%v)", j.Workload, k1, c1, k2, c2)
		}
		whole, err := e.Run(context.Background(), j)
		if err != nil {
			t.Fatal(err)
		}
		streamed, err := e.Run(context.Background(), sj)
		if err != nil {
			t.Fatal(err)
		}
		if wb, sb := marshal(t, whole), marshal(t, streamed); !bytes.Equal(wb, sb) {
			t.Errorf("%s/%d threads: streamed result diverged\nstream: %s\nwhole:  %s", j.Workload, j.TraceOpts.Threads, sb, wb)
		}
	}
}

// TestEngineStreamCacheDedup: a streamed job and its materialized twin
// must share one cache entry — the second form is answered from the
// cache without calling the source factory or simulating again.
func TestEngineStreamCacheDedup(t *testing.T) {
	e := New()
	jobs := mtJobs(t)
	j := jobs[0]
	if _, err := e.Run(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	sj := streamTwin(t, j)
	factoryCalls := 0
	inner := sj.Source
	sj.Source = func() (trace.ChunkSource, error) {
		factoryCalls++
		return inner()
	}
	res, err := e.Run(context.Background(), sj)
	if err != nil {
		t.Fatal(err)
	}
	if factoryCalls != 0 {
		t.Errorf("cached streamed job called its source factory %d times", factoryCalls)
	}
	st := e.Stats()
	if st.Simulated != 1 || st.Cached != 1 {
		t.Errorf("stats = %+v, want 1 simulated + 1 cached", st)
	}
	whole, err := e.Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshal(t, res), marshal(t, whole)) {
		t.Error("cached answers diverge between forms")
	}
}

// TestEngineStreamAccessesCounter: the engine's simulated-access counter
// must come from the stream's Meta for streamed jobs.
func TestEngineStreamAccessesCounter(t *testing.T) {
	e := New(WithoutCache())
	sj := streamTwin(t, mtJobs(t)[0])
	src, err := sj.Source()
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(src.Meta().Accesses)
	if _, err := e.Run(context.Background(), sj); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().Accesses; got != want {
		t.Errorf("Accesses = %d, want %d", got, want)
	}
}

// TestEngineJobWithoutTraceOrSource: a job carrying neither form must
// fail cleanly, not panic.
func TestEngineJobWithoutTraceOrSource(t *testing.T) {
	e := New()
	j := mtJobs(t)[0]
	j.Trace = nil
	j.NoCache = true
	if _, err := e.Run(context.Background(), j); err == nil {
		t.Fatal("job with neither trace nor source must error")
	}
	if e.Stats().Failed != 1 {
		t.Errorf("Failed = %d, want 1", e.Stats().Failed)
	}
}

// TestEngineLayoutEquivalence: results served through the engine are
// identical when the same design points are replayed through the
// reference AoS tag store via system.RunLayout — the engine-level leg of
// the SoA equivalence discipline.
func TestEngineLayoutEquivalence(t *testing.T) {
	e := New()
	for _, j := range mtJobs(t) {
		res, err := e.Run(context.Background(), j)
		if err != nil {
			t.Fatal(err)
		}
		aos, err := system.RunLayout(context.Background(), j.Config, j.Trace, cache.LayoutAoS, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rb, ab := marshal(t, res), marshal(t, aos); !bytes.Equal(rb, ab) {
			t.Errorf("%s/%d threads: AoS replay diverged\nsoa: %s\naos: %s", j.Workload, j.TraceOpts.Threads, rb, ab)
		}
	}
}
