package engine

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"nvmllc/internal/reference"
	"nvmllc/internal/system"
	"nvmllc/internal/workload"
)

// testJob builds a small deterministic design point.
func testJob(t *testing.T, name string, opts workload.Options) Job {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.Generate(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return Job{
		Workload:  name,
		TraceOpts: opts,
		Config:    system.Gainestown(reference.SRAMBaseline()),
		Trace:     tr,
	}
}

func smallOpts() workload.Options {
	return workload.Options{Accesses: 20000, Seed: 7}
}

func TestRunCachesSecondCall(t *testing.T) {
	e := New()
	j := testJob(t, "bzip2", smallOpts())
	r1, err := e.Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Simulated != 1 || s.Cached != 1 {
		t.Fatalf("stats = %+v, want 1 simulated / 1 cached", s)
	}
	if r1 != r2 {
		t.Error("cache did not return the memoized result")
	}
	if s.Accesses != uint64(len(j.Trace.Accesses)) {
		t.Errorf("accesses = %d, want %d (cache hits must not recount)", s.Accesses, len(j.Trace.Accesses))
	}
}

func TestCachedEqualsFresh(t *testing.T) {
	j := testJob(t, "bzip2", smallOpts())

	shared := New()
	if _, err := shared.Run(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	cached, err := shared.Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}

	fresh, err := New(WithoutCache()).Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cached, fresh) {
		t.Errorf("cached result differs from fresh simulation:\ncached: %+v\nfresh:  %+v", cached, fresh)
	}
}

func TestWithoutCacheSimulatesEveryTime(t *testing.T) {
	e := New(WithoutCache())
	j := testJob(t, "bzip2", smallOpts())
	for i := 0; i < 2; i++ {
		if _, err := e.Run(context.Background(), j); err != nil {
			t.Fatal(err)
		}
	}
	if s := e.Stats(); s.Simulated != 2 || s.Cached != 0 {
		t.Fatalf("stats = %+v, want 2 simulated / 0 cached", s)
	}
}

func TestRunAllDedupesIdenticalJobs(t *testing.T) {
	e := New()
	j := testJob(t, "bzip2", smallOpts())
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = j
	}
	results, err := e.RunAll(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r == nil {
			t.Fatalf("result %d is nil", i)
		}
		if r != results[0] {
			t.Errorf("result %d not deduplicated", i)
		}
	}
	if s := e.Stats(); s.Simulated != 1 || s.Cached != 7 {
		t.Fatalf("stats = %+v, want 1 simulated / 7 cached (singleflight)", s)
	}
}

func TestRunAllPartialResultsOnFailure(t *testing.T) {
	e := New()
	good := testJob(t, "bzip2", smallOpts())
	// A trace with more threads than cores fails system.Run validation.
	badOpts := workload.Options{Accesses: 20000, Seed: 7, Threads: 8}
	bad := testJob(t, "ft", badOpts)
	bad.Config = bad.Config.WithCores(4)

	results, err := e.RunAll(context.Background(), []Job{good, bad})
	if err == nil {
		t.Fatal("want joined error for the failing job")
	}
	if results[0] == nil {
		t.Error("successful job's result dropped")
	}
	if results[1] != nil {
		t.Error("failed job has a result")
	}
	if s := e.Stats(); s.Simulated != 1 || s.Failed != 1 {
		t.Fatalf("stats = %+v, want 1 simulated / 1 failed", s)
	}
}

func TestFailedJobsAreNotCached(t *testing.T) {
	e := New()
	badOpts := workload.Options{Accesses: 20000, Seed: 7, Threads: 8}
	bad := testJob(t, "ft", badOpts)
	bad.Config = bad.Config.WithCores(4)
	for i := 0; i < 2; i++ {
		if _, err := e.Run(context.Background(), bad); err == nil {
			t.Fatal("invalid job accepted")
		}
	}
	if s := e.Stats(); s.Failed != 2 || s.Cached != 0 {
		t.Fatalf("stats = %+v, want both attempts to fail fresh (no caching of failures)", s)
	}
}

func TestRunCancellationIsPrompt(t *testing.T) {
	e := New()
	// A multi-million-access run takes far longer than the cancellation
	// budget, so a prompt return proves the hot loop honors the context.
	j := testJob(t, "cg", workload.Options{Accesses: 4_000_000, Seed: 7})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := e.Run(ctx, j)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Generous bound: under -race the simulator runs ~15x slower, but a
	// full 4M-access run would still take minutes, not seconds.
	if elapsed > 15*time.Second {
		t.Errorf("cancellation took %v, want prompt abort", elapsed)
	}
	if s := e.Stats(); s.Failed != 1 {
		t.Errorf("stats = %+v, want the aborted run counted as failed", s)
	}
}

func TestRunAllCancellationMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var events atomic.Int64
	e := New(WithParallelism(2), WithProgress(func(Event) {
		// Cancel as soon as the first design point completes: the rest of
		// the sweep must abort instead of running to completion.
		if events.Add(1) == 1 {
			cancel()
		}
	}))
	opts := workload.Options{Accesses: 400_000, Seed: 7}
	var jobs []Job
	for _, name := range []string{"bzip2", "cg", "mg", "is", "ua", "ft"} {
		jobs = append(jobs, testJob(t, name, opts))
	}
	results, err := e.RunAll(ctx, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	done := 0
	for _, r := range results {
		if r != nil {
			done++
		}
	}
	if done == len(jobs) {
		t.Error("every job completed despite cancellation")
	}
	if s := e.Stats(); s.Jobs() == 0 {
		t.Error("no partial progress recorded")
	}
}

func TestRunOnCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := New()
	if _, err := e.Run(ctx, testJob(t, "bzip2", smallOpts())); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s := e.Stats(); s.Jobs() != 0 {
		t.Errorf("stats = %+v, want no work on a dead context", s)
	}
}

func TestJoinedErrorsLabelDesignPoints(t *testing.T) {
	e := New()
	badOpts := workload.Options{Accesses: 20000, Seed: 7, Threads: 8}
	bad := testJob(t, "ft", badOpts)
	bad.Config = bad.Config.WithCores(4)
	_, err := e.RunAll(context.Background(), []Job{bad})
	if err == nil {
		t.Fatal("want error")
	}
	for _, want := range []string{"engine:", "ft", "SRAM"} {
		if !contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestKeyDeterministicAndDiscriminating(t *testing.T) {
	j := testJob(t, "bzip2", smallOpts())
	k1, ok := Key(j)
	if !ok || k1 == "" {
		t.Fatal("cacheable job has no key")
	}
	k2, _ := Key(j)
	if k1 != k2 {
		t.Error("key not deterministic")
	}

	other := j
	other.TraceOpts.Seed = 99
	if k, _ := Key(other); k == k1 {
		t.Error("seed change did not change the key")
	}
	other = j
	other.Workload = "cg"
	if k, _ := Key(other); k == k1 {
		t.Error("workload change did not change the key")
	}
	other = j
	other.Config = other.Config.WithCores(2)
	if k, _ := Key(other); k == k1 {
		t.Error("config change did not change the key")
	}
}

func TestKeyHashesHybridByValue(t *testing.T) {
	j := testJob(t, "bzip2", smallOpts())
	model := reference.FixedCapacityModels()[1]
	a, b := j, j
	a.Config.Hybrid = &system.HybridConfig{SRAM: reference.SRAMBaseline(), NVM: model, SRAMWays: 4}
	b.Config.Hybrid = &system.HybridConfig{SRAM: reference.SRAMBaseline(), NVM: model, SRAMWays: 4}
	ka, _ := Key(a)
	kb, _ := Key(b)
	if ka != kb {
		t.Error("equal hybrid configs at distinct addresses hash differently")
	}
	b.Config.Hybrid.SRAMWays = 2
	if kb2, _ := Key(b); kb2 == ka {
		t.Error("hybrid way change did not change the key")
	}
	if ka == mustKey(t, j) {
		t.Error("hybrid and non-hybrid configs share a key")
	}
}

func mustKey(t *testing.T, j Job) string {
	t.Helper()
	k, ok := Key(j)
	if !ok {
		t.Fatal("job not cacheable")
	}
	return k
}

func TestUncacheableJobs(t *testing.T) {
	j := testJob(t, "bzip2", smallOpts())
	j.NoCache = true
	if _, ok := Key(j); ok {
		t.Error("NoCache job reported cacheable")
	}
	j = testJob(t, "bzip2", smallOpts())
	j.Config.Memory = fakeMemory{}
	if _, ok := Key(j); ok {
		t.Error("job with external main memory reported cacheable")
	}
}

// fakeMemory is a stub MainMemory: external memory models carry state, so
// jobs using them must bypass the cache.
type fakeMemory struct{}

func (fakeMemory) Read(nowNS float64, lineAddr uint64) float64  { return nowNS + 10 }
func (fakeMemory) Write(nowNS float64, lineAddr uint64) float64 { return nowNS + 10 }

func TestStatsString(t *testing.T) {
	s := Stats{Simulated: 3, Cached: 2, Failed: 1, Accesses: 2_500_000, SimWallNS: int64(1500 * time.Millisecond)}
	str := s.String()
	for _, want := range []string{"3 simulated", "2 cached", "1 failed", "2.50M accesses", "1.5s"} {
		if !contains(str, want) {
			t.Errorf("Stats.String() = %q missing %q", str, want)
		}
	}
	if s.Jobs() != 6 {
		t.Errorf("Jobs() = %d, want 6", s.Jobs())
	}
}

func TestProgressEvents(t *testing.T) {
	var cachedSeen, simSeen atomic.Int64
	e := New(WithProgress(func(ev Event) {
		if ev.Err != nil {
			t.Errorf("unexpected event error: %v", ev.Err)
		}
		if ev.Cached {
			cachedSeen.Add(1)
		} else {
			simSeen.Add(1)
		}
		if ev.Workload != "bzip2" || ev.LLC != "SRAM" {
			t.Errorf("event identifies %s/%s, want bzip2/SRAM", ev.Workload, ev.LLC)
		}
	}))
	j := testJob(t, "bzip2", smallOpts())
	for i := 0; i < 2; i++ {
		if _, err := e.Run(context.Background(), j); err != nil {
			t.Fatal(err)
		}
	}
	if simSeen.Load() != 1 || cachedSeen.Load() != 1 {
		t.Errorf("events: %d simulated / %d cached, want 1/1", simSeen.Load(), cachedSeen.Load())
	}
}
