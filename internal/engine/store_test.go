package engine

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nvmllc/internal/system"
)

// TestDiskCacheRoundTrip pins the basic store contract: a stored result
// loads back equal, survives a fresh open (the boot sweep indexes it),
// and the key appears in Keys.
func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	j := testJob(t, "bzip2", smallOpts())
	key, _ := Key(j)
	want, err := New().Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load(key); ok {
		t.Fatal("empty cache reported a hit")
	}
	if err := c.Store(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Load(key)
	if !ok {
		t.Fatal("stored entry did not load")
	}
	wb, _ := json.Marshal(want)
	gb, _ := json.Marshal(got)
	if string(wb) != string(gb) {
		t.Error("loaded result differs from stored result")
	}

	// Reopen: the warm-start sweep must re-index the entry.
	c2, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 1 || len(c2.Keys()) != 1 || c2.Keys()[0] != key {
		t.Errorf("reopened cache: Len=%d Keys=%v, want the one stored key", c2.Len(), c2.Keys())
	}
	if _, ok := c2.Load(key); !ok {
		t.Error("reopened cache missed the stored entry")
	}
}

// corruptOneEntry flips bytes in the payload of the single cache file.
func corruptOneEntry(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*"+storeExt))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no cache entries to corrupt (err=%v)", err)
	}
	p := matches[0]
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0xFF
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestDiskCacheCorruptionIsAMiss: a flipped payload byte fails the
// checksum, loads as a miss (not an error) and quarantines the file.
func TestDiskCacheCorruptionIsAMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	j := testJob(t, "bzip2", smallOpts())
	key, _ := Key(j)
	res, err := New().Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store(key, res); err != nil {
		t.Fatal(err)
	}
	p := corruptOneEntry(t, dir)
	if _, ok := c.Load(key); ok {
		t.Fatal("corrupt entry loaded as a hit")
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Error("corrupt entry was not quarantined")
	}
	if s := c.Stats(); s.Corrupt != 1 {
		t.Errorf("stats = %+v, want 1 corrupt", s)
	}
}

// TestDiskCacheVersionSkew: entries of another format version are
// invisible — skipped by the boot sweep and missed by Load.
func TestDiskCacheVersionSkew(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	j := testJob(t, "bzip2", smallOpts())
	key, _ := Key(j)
	res, err := New().Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store(key, res); err != nil {
		t.Fatal(err)
	}
	// Rewrite the header with a bumped version.
	p := filepath.Join(dir, key+storeExt)
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	s := string(raw)
	s = strings.Replace(s, `"version":1`, `"version":999`, 1)
	if s == string(raw) {
		t.Fatal("test fixture: version field not found in header")
	}
	if err := os.WriteFile(p, []byte(s), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 0 {
		t.Errorf("boot sweep indexed %d stale-version entries, want 0", c2.Len())
	}
	if _, ok := c2.Load(key); ok {
		t.Error("stale-version entry loaded as a hit")
	}
}

// TestDiskCacheRejectsTraversalKeys: keys that would escape the cache
// directory are refused.
func TestDiskCacheRejectsTraversalKeys(t *testing.T) {
	c, err := OpenDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", ".", "..", "../evil", "a/b", `a\b`} {
		if err := c.Store(key, &system.Result{}); err == nil {
			t.Errorf("Store accepted unusable key %q", key)
		}
		if _, ok := c.Load(key); ok {
			t.Errorf("Load hit on unusable key %q", key)
		}
	}
}

// TestEngineStoreWarmRestart is the restart scenario: a second engine
// sharing only the on-disk cache answers every previously computed key
// with zero simulations, and those hits count as Cached so Jobs() still
// equals submissions.
func TestEngineStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{
		testJob(t, "bzip2", smallOpts()),
		testJob(t, "is", smallOpts()),
	}
	e1 := New(WithStore(store))
	if _, err := e1.RunAll(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if s := e1.Stats(); s.Simulated != 2 {
		t.Fatalf("first engine: stats = %+v, want 2 simulated", s)
	}

	// "Restart": fresh engine, fresh DiskCache over the same directory.
	store2, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if store2.Len() != 2 {
		t.Fatalf("boot sweep indexed %d entries, want 2", store2.Len())
	}
	e2 := New(WithStore(store2))
	res, err := e2.RunAll(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r == nil {
			t.Fatalf("job %d: nil result from warm cache", i)
		}
	}
	if s := e2.Stats(); s.Simulated != 0 || s.Cached != 2 || s.Jobs() != 2 {
		t.Errorf("warm restart: stats = %+v, want 0 simulated / 2 cached", s)
	}

	// Corrupt one entry: the third engine re-simulates exactly that key.
	corruptOneEntry(t, dir)
	store3, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	e3 := New(WithStore(store3))
	if _, err := e3.RunAll(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if s := e3.Stats(); s.Simulated != 1 || s.Cached != 1 {
		t.Errorf("after corruption: stats = %+v, want 1 simulated / 1 cached", s)
	}
}

// TestEngineStoreTimelineUpgrade: a persisted timeline-less result does
// not satisfy a sampled job — the engine re-simulates and overwrites the
// stored entry with the enriched one, which then serves sampled jobs
// across a restart.
func TestEngineStoreTimelineUpgrade(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	plain := testJob(t, "bzip2", smallOpts())
	if _, err := New(WithStore(store)).Run(context.Background(), plain); err != nil {
		t.Fatal(err)
	}

	sampled := plain
	sampled.Config.Timeline = &system.TimelineConfig{Points: 16}
	store2, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	e2 := New(WithStore(store2))
	r, err := e2.Run(context.Background(), sampled)
	if err != nil {
		t.Fatal(err)
	}
	if r.Timeline == nil {
		t.Fatal("sampled job served a persisted timeline-less result without re-simulating")
	}
	if s := e2.Stats(); s.Simulated != 1 || s.Cached != 0 {
		t.Errorf("stats = %+v, want 1 simulated (stored entry unusable for sampling)", s)
	}

	// The overwritten entry now answers sampled jobs from disk.
	store3, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	e3 := New(WithStore(store3))
	r3, err := e3.Run(context.Background(), sampled)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Timeline == nil {
		t.Error("persisted upgraded entry lost its timeline")
	}
	if s := e3.Stats(); s.Simulated != 0 || s.Cached != 1 {
		t.Errorf("stats = %+v, want a pure disk hit", s)
	}
}
