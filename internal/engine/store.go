package engine

// Persistent result cache: a second tier behind the engine's in-memory
// map, so the design points a process has paid for survive restarts and
// can be shipped between machines. The on-disk layout is content-
// addressed by the engine's deterministic SHA-256 job key — one file per
// design point, named <key>.llcres — and every file is self-describing:
// a one-line JSON header (format name, version, key, payload checksum)
// followed by the JSON-encoded system.Result. Loads verify the header
// and the payload checksum; anything that does not verify is treated as
// a miss (and quarantined by deletion), never as an error — a corrupt
// cache degrades to re-simulation.

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"nvmllc/internal/profile"
	"nvmllc/internal/system"
)

// CacheStore is a persistent result-cache backend. Implementations must
// be safe for concurrent use; Load must treat unreadable or corrupt
// entries as misses so callers always have the re-simulation fallback.
type CacheStore interface {
	// Load returns the stored result for key, or false when the store has
	// no valid entry. The returned result must be treated as immutable.
	Load(key string) (*system.Result, bool)
	// Store persists the result under key, replacing any prior entry.
	Store(key string, res *system.Result) error
	// Keys lists the keys the store believes it holds (the boot-sweep
	// index for a disk store); order is unspecified.
	Keys() []string
}

// ProfileStore is an optional extension a CacheStore may implement to
// persist reuse-distance profiles (profilejob.go) alongside results.
// The engine type-asserts for it; a store without the extension simply
// keeps profiles memory-only. The same miss-on-corruption contract as
// Load applies.
type ProfileStore interface {
	// LoadProfile returns the stored profile for key, or false when the
	// store has no valid entry.
	LoadProfile(key string) (*profile.Profile, bool)
	// StoreProfile persists the profile under key.
	StoreProfile(key string, p *profile.Profile) error
}

// StoreFormatVersion is the on-disk entry format version. Bumping it
// invalidates every existing entry: the boot sweep skips mismatched
// files and Load treats them as misses, so old caches silently degrade
// to re-simulation instead of decoding garbage. Bump whenever the
// serialized form of system.Result changes incompatibly or the cache
// key function changes what it hashes.
const StoreFormatVersion = 1

// storeFormatName guards against feeding some other tool's files to the
// decoder.
const storeFormatName = "nvmllc-result-cache"

// storeExt is the cache entry file suffix.
const storeExt = ".llcres"

// profileFormatName and profileStoreExt are the profile tier's
// counterparts: profiles live beside results in the same directory,
// under their own suffix and format name so neither decoder can ever be
// fed the other's files. Profile keys are already a distinct SHA-256
// domain (ProfileKey), making collisions doubly impossible.
const (
	profileFormatName = "nvmllc-profile-cache"
	profileStoreExt   = ".llcprof"
)

// storeHeader is the one-line JSON header preceding the payload.
type storeHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	Key     string `json:"key"`
	// SHA256 is the hex digest of the payload bytes; Bytes their count.
	SHA256 string `json:"payload_sha256"`
	Bytes  int64  `json:"payload_bytes"`
}

// DiskCacheStats counts store activity since OpenDiskCache.
type DiskCacheStats struct {
	// Entries is the number of valid entries indexed at boot plus stores
	// since; Hits/Misses count Load outcomes; Corrupt counts entries that
	// failed header or checksum verification (at boot or on load) and
	// were discarded; Stores counts successful writes.
	Entries, Hits, Misses, Corrupt, Stores uint64
}

// DiskCache is the on-disk CacheStore: one atomic, checksummed file per
// key in a flat directory. Safe for concurrent use.
type DiskCache struct {
	dir string

	mu    sync.Mutex
	index map[string]bool

	hits    atomic.Uint64
	misses  atomic.Uint64
	corrupt atomic.Uint64
	stores  atomic.Uint64
}

// OpenDiskCache opens (creating if needed) the cache directory and
// performs the warm-start sweep: every *.llcres file's header is read
// and verified — format, version, key/filename agreement — and valid
// entries are indexed, so a freshly booted process knows immediately
// which design points it can serve without simulating. Invalid or
// stale-version files are skipped (counted as corrupt), never fatal.
func OpenDiskCache(dir string) (*DiskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: open disk cache: %w", err)
	}
	c := &DiskCache{dir: dir, index: make(map[string]bool)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("engine: open disk cache: %w", err)
	}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, storeExt) {
			continue
		}
		key := strings.TrimSuffix(name, storeExt)
		if c.verifyHeader(key) {
			c.index[key] = true
		} else {
			c.corrupt.Add(1)
		}
	}
	return c, nil
}

// Dir is the cache directory.
func (c *DiskCache) Dir() string { return c.dir }

// Len is the number of indexed entries.
func (c *DiskCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.index)
}

// Keys lists the indexed keys.
func (c *DiskCache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.index))
	for k := range c.index {
		out = append(out, k)
	}
	return out
}

// Stats snapshots the store counters.
func (c *DiskCache) Stats() DiskCacheStats {
	return DiskCacheStats{
		Entries: uint64(c.Len()),
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Corrupt: c.corrupt.Load(),
		Stores:  c.stores.Load(),
	}
}

// path maps a key to its entry file; false for keys that could escape
// the cache directory (engine keys are hex SHA-256 and always pass).
func (c *DiskCache) path(key string) (string, bool) {
	if key == "" || key != filepath.Base(key) || strings.ContainsAny(key, "/\\") || key == "." || key == ".." {
		return "", false
	}
	return filepath.Join(c.dir, key+storeExt), true
}

// verifyHeader cheaply checks an entry file's header (no payload read):
// used by the boot sweep.
func (c *DiskCache) verifyHeader(key string) bool {
	p, ok := c.path(key)
	if !ok {
		return false
	}
	f, err := os.Open(p)
	if err != nil {
		return false
	}
	defer f.Close()
	line, err := bufio.NewReader(io.LimitReader(f, 4096)).ReadBytes('\n')
	if err != nil {
		return false
	}
	var h storeHeader
	if json.Unmarshal(line, &h) != nil {
		return false
	}
	return h.Format == storeFormatName && h.Version == StoreFormatVersion && h.Key == key && h.Bytes > 0
}

// Load reads, verifies and decodes the entry for key. Any failure —
// missing file, malformed header, version skew, checksum mismatch,
// undecodable payload — is a miss; corrupt files are deleted so they
// are paid for at most once.
func (c *DiskCache) Load(key string) (*system.Result, bool) {
	p, ok := c.path(key)
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	raw, err := os.ReadFile(p)
	if err != nil {
		c.misses.Add(1)
		return nil, false
	}
	res, err := decodeEntry(key, raw)
	if err != nil {
		// Quarantine: a file that fails verification will keep failing;
		// delete it so the slot is rewritten by the re-simulation.
		_ = os.Remove(p)
		c.mu.Lock()
		delete(c.index, key)
		c.mu.Unlock()
		c.corrupt.Add(1)
		c.misses.Add(1)
		return nil, false
	}
	c.mu.Lock()
	c.index[key] = true
	c.mu.Unlock()
	c.hits.Add(1)
	return res, true
}

// decodeRawEntry verifies an entry's header and checksum against the
// expected format name and returns the payload bytes — the shared
// verification path of the result and profile tiers.
func decodeRawEntry(format, key string, raw []byte) ([]byte, error) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("no header line")
	}
	var h storeHeader
	if err := json.Unmarshal(raw[:nl], &h); err != nil {
		return nil, fmt.Errorf("header: %w", err)
	}
	if h.Format != format {
		return nil, fmt.Errorf("format %q, want %q", h.Format, format)
	}
	if h.Version != StoreFormatVersion {
		return nil, fmt.Errorf("version %d, want %d", h.Version, StoreFormatVersion)
	}
	if h.Key != key {
		return nil, fmt.Errorf("key mismatch: header %q, file %q", h.Key, key)
	}
	payload := raw[nl+1:]
	if int64(len(payload)) != h.Bytes {
		return nil, fmt.Errorf("payload %d bytes, header says %d", len(payload), h.Bytes)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != h.SHA256 {
		return nil, fmt.Errorf("payload checksum mismatch")
	}
	return payload, nil
}

// decodeEntry verifies header and checksum and decodes the payload.
func decodeEntry(key string, raw []byte) (*system.Result, error) {
	payload, err := decodeRawEntry(storeFormatName, key, raw)
	if err != nil {
		return nil, err
	}
	res := new(system.Result)
	if err := json.Unmarshal(payload, res); err != nil {
		return nil, fmt.Errorf("payload: %w", err)
	}
	return res, nil
}

// Store atomically persists res under key: the entry is written to a
// temp file in the cache directory, synced, and renamed into place, so
// readers (and a crash mid-write) only ever observe complete entries.
func (c *DiskCache) Store(key string, res *system.Result) error {
	payload, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("engine: disk cache: encode %s: %w", key, err)
	}
	p, ok := c.path(key)
	if !ok {
		return fmt.Errorf("engine: disk cache: unusable key %q", key)
	}
	if err := c.writeEntry(p, storeFormatName, key, payload); err != nil {
		return err
	}
	c.mu.Lock()
	c.index[key] = true
	c.mu.Unlock()
	c.stores.Add(1)
	return nil
}

// writeEntry writes one header+payload entry atomically: temp file in
// the cache directory, synced, renamed into place.
func (c *DiskCache) writeEntry(path, format, key string, payload []byte) error {
	sum := sha256.Sum256(payload)
	header, err := json.Marshal(storeHeader{
		Format:  format,
		Version: StoreFormatVersion,
		Key:     key,
		SHA256:  hex.EncodeToString(sum[:]),
		Bytes:   int64(len(payload)),
	})
	if err != nil {
		return fmt.Errorf("engine: disk cache: encode header %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(c.dir, ".tmp-*"+filepath.Ext(path))
	if err != nil {
		return fmt.Errorf("engine: disk cache: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	_, werr := tmp.Write(append(append(header, '\n'), payload...))
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("engine: disk cache: write %s: %w", key, werr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("engine: disk cache: %w", err)
	}
	return nil
}

// profilePath maps a profile key to its entry file.
func (c *DiskCache) profilePath(key string) (string, bool) {
	if key == "" || key != filepath.Base(key) || strings.ContainsAny(key, "/\\") || key == "." || key == ".." {
		return "", false
	}
	return filepath.Join(c.dir, key+profileStoreExt), true
}

// LoadProfile reads, verifies and decodes the profile entry for key
// (the ProfileStore side of the cache). The same degrade-to-miss and
// quarantine discipline as Load applies, sharing the hit/miss/corrupt
// counters; a decoded profile is additionally run through
// profile.Validate so a stale-schema entry can never hand out histogram
// prefix sums that do not add up.
func (c *DiskCache) LoadProfile(key string) (*profile.Profile, bool) {
	p, ok := c.profilePath(key)
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	raw, err := os.ReadFile(p)
	if err != nil {
		c.misses.Add(1)
		return nil, false
	}
	prof, err := decodeProfileEntry(key, raw)
	if err != nil {
		_ = os.Remove(p)
		c.corrupt.Add(1)
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return prof, true
}

// decodeProfileEntry verifies and decodes one profile entry.
func decodeProfileEntry(key string, raw []byte) (*profile.Profile, error) {
	payload, err := decodeRawEntry(profileFormatName, key, raw)
	if err != nil {
		return nil, err
	}
	prof := new(profile.Profile)
	if err := json.Unmarshal(payload, prof); err != nil {
		return nil, fmt.Errorf("payload: %w", err)
	}
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	return prof, nil
}

// StoreProfile atomically persists a profile under key.
func (c *DiskCache) StoreProfile(key string, prof *profile.Profile) error {
	payload, err := json.Marshal(prof)
	if err != nil {
		return fmt.Errorf("engine: disk cache: encode profile %s: %w", key, err)
	}
	p, ok := c.profilePath(key)
	if !ok {
		return fmt.Errorf("engine: disk cache: unusable profile key %q", key)
	}
	if err := c.writeEntry(p, profileFormatName, key, payload); err != nil {
		return err
	}
	c.stores.Add(1)
	return nil
}
