package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Key returns the deterministic cache key for a job and whether the job
// is cacheable at all.
//
// The key hashes the trace's provenance — workload name plus the
// workload.Options it was generated with — and the full system.Config
// value (core model, cache geometry, LLC model, policies, DRAM
// parameters; the hybrid configuration is hashed by value when present).
// Two jobs with equal keys are guaranteed to simulate identically,
// because trace generation and the simulator are both deterministic in
// those inputs.
//
// A job is not cacheable when it opts out via NoCache or when
// Config.Memory carries an external main-memory model: such models
// accumulate state across runs (row-buffer statistics, energy), so their
// results are not reusable and the key cannot capture them.
func Key(j Job) (string, bool) {
	if j.NoCache || j.Config.Memory != nil {
		return "", false
	}
	h := sha256.New()
	fmt.Fprintf(h, "workload=%s\nopts=%+v\n", j.Workload, j.TraceOpts)
	cfg := j.Config
	hybrid := cfg.Hybrid
	cfg.Hybrid = nil    // pointer field: hash the pointee, not the address
	cfg.Telemetry = nil // observation only: never part of the result identity
	cfg.Timeline = nil  // observation only, like Telemetry: sampling never
	// alters simulation behavior, so a sampled and an unsampled job share
	// one key (Run upgrades a cached timeline-less result on demand)
	fmt.Fprintf(h, "config=%+v\n", cfg)
	if hybrid != nil {
		fmt.Fprintf(h, "hybrid=%+v\n", *hybrid)
	}
	return hex.EncodeToString(h.Sum(nil)), true
}
