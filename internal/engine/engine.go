// Package engine is the shared experiment-execution engine behind the
// sweep harness and the CLIs: every (workload, LLC model, system config)
// design point of the paper's evaluation grid runs through one Engine,
// which provides
//
//   - context-first cancellation — a cancelled context aborts in-flight
//     simulations in bounded time (the system simulator checks the
//     context inside its hot loop);
//   - an in-memory, concurrency-safe result cache keyed by a
//     deterministic hash of (workload name, trace options, system
//     config), so the SRAM baseline and repeated design points are
//     simulated once across figures and sweeps;
//   - per-run observability — atomic counters snapshotable as a Stats
//     struct and streamed through an optional progress callback;
//   - aggregated error reporting: RunAll returns every job's failure
//     joined with errors.Join alongside the partial results, instead of
//     first-error-wins.
//
// An Engine is safe for concurrent use; one instance can (and should) be
// shared across many sweeps so the cache spans them.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"nvmllc/internal/system"
	"nvmllc/internal/telemetry"
	"nvmllc/internal/trace"
	"nvmllc/internal/workload"
)

// Job is one design point: an access trace and the machine configuration
// to simulate it on. Workload and TraceOpts identify the trace's
// provenance and, with Config, form the cache key — callers must pass
// the same Options the trace was generated with (a hand-built trace
// that did not come from workload.Generate should disable caching via
// NoCache).
//
// The trace arrives either materialized (Trace) or streamed (Source).
// The two forms are interchangeable: the simulator produces byte-
// identical results for the same access sequence, and the cache key does
// not distinguish them, so a streamed job can be answered by a cached
// whole-trace result and vice versa.
type Job struct {
	// Workload is the trace/workload name.
	Workload string
	// TraceOpts are the generation options that produced Trace.
	TraceOpts workload.Options
	// Config is the simulated machine.
	Config system.Config
	// Trace is the access trace to simulate.
	Trace *trace.Trace
	// Source, when Trace is nil, supplies the trace as a chunked stream:
	// the factory is called once per actual simulation (cache hits skip
	// it) and must return a fresh, unconsumed source each time — sources
	// are single-pass and owned by the run (see system.RunStream). The
	// engine holds O(chunk) access memory per worker instead of the whole
	// trace.
	Source func() (trace.ChunkSource, error)
	// NoCache forces a fresh simulation and keeps the result out of the
	// cache (for traces whose provenance the key cannot capture).
	NoCache bool
}

// StreamJob builds a streaming job for a named workload: the generator
// is constructed per simulation from the same (profile, options) pair
// the materialized form would use, so the job hits the same cache entry.
func StreamJob(p workload.Profile, opts workload.Options, cfg system.Config) Job {
	return Job{
		Workload:  p.Name,
		TraceOpts: opts,
		Config:    cfg,
		Source: func() (trace.ChunkSource, error) {
			return workload.NewGenerator(p, opts)
		},
	}
}

// LLCName labels the job's LLC for error and progress reporting.
func (j Job) LLCName() string {
	if j.Config.Hybrid != nil {
		return fmt.Sprintf("hybrid(%s+%s)", j.Config.Hybrid.SRAM.Name, j.Config.Hybrid.NVM.Name)
	}
	return j.Config.LLC.Name
}

// Stats is a snapshot of the engine's counters.
type Stats struct {
	// Simulated counts fresh simulations actually executed; Cached counts
	// jobs answered from the result cache (the in-memory map or, when a
	// CacheStore is installed, the persistent tier); Failed counts
	// simulations that returned an error (including cancellation).
	Simulated, Cached, Failed uint64
	// Upgraded counts timeline upgrades: a sampled job that found a
	// cached timeline-less result and re-simulated to enrich it. The
	// re-simulation is real work (its accesses and wall time are
	// counted), but it answers the same submission the cache hit would
	// have, so it is kept out of Simulated — one submitted job increments
	// exactly one of the four outcome counters, and Stats.Jobs() equals
	// submissions.
	Upgraded uint64
	// Accesses is the total trace accesses simulated (cache hits excluded).
	Accesses uint64
	// SimWallNS is the summed wall-clock time spent inside simulations,
	// across all workers.
	SimWallNS int64
	// TraceGens counts trace materializations the sharing layer performed
	// (share.go); TraceShared counts simulations answered from an already
	// materialized shared trace instead of generating their own. A sweep
	// of N design points over one workload shows TraceGens=1,
	// TraceShared=N-1.
	TraceGens, TraceShared uint64
	// Profiles counts reuse-distance profiling passes actually executed
	// (profilejob.go); ProfileHits counts profile requests answered from
	// the profile cache (memory or store). Profile jobs are a separate
	// request stream from simulation jobs — neither counter participates
	// in Jobs(), which stays equal to simulation submissions.
	Profiles, ProfileHits uint64
}

// Jobs is the total design points answered: simulated, upgraded, cached
// or failed — exactly one increment per submission.
func (s Stats) Jobs() uint64 { return s.Simulated + s.Upgraded + s.Cached + s.Failed }

// String renders a one-line progress summary.
func (s Stats) String() string {
	out := fmt.Sprintf("%d simulated, %d cached, %d failed, %.2fM accesses, %.1fs sim wall",
		s.Simulated, s.Cached, s.Failed, float64(s.Accesses)/1e6,
		time.Duration(s.SimWallNS).Seconds())
	if s.Upgraded > 0 {
		out = fmt.Sprintf("%s, %d upgraded", out, s.Upgraded)
	}
	if s.TraceShared > 0 {
		out = fmt.Sprintf("%s, %d traces generated / %d shared", out, s.TraceGens, s.TraceShared)
	}
	if s.Profiles+s.ProfileHits > 0 {
		out = fmt.Sprintf("%s, %d profiled / %d profile hits", out, s.Profiles, s.ProfileHits)
	}
	return out
}

// Event is one progress notification: a design point was answered.
type Event struct {
	// Workload and LLC identify the design point.
	Workload, LLC string
	// Key is the design point's deterministic cache key ("" when the job
	// is uncacheable).
	Key string
	// Cached marks a cache hit (WallNS is then zero).
	Cached bool
	// Upgraded marks a timeline upgrade: the design point had a cached
	// timeline-less result and was re-simulated with sampling on. At most
	// one of Cached and Upgraded is set, and an upgrade emits exactly one
	// event (kind "upgrade", not a second "simulate").
	Upgraded bool
	// Err is the job's failure, nil on success.
	Err error
	// Result is the design point's outcome (nil on failure). Manifest
	// writers read per-level statistics from it; treat it as immutable.
	Result *system.Result
	// WallNS is the wall-clock time the simulation took.
	WallNS int64
	// Stats is the engine snapshot after this job.
	Stats Stats
}

// Option configures an Engine.
type Option func(*Engine)

// WithParallelism bounds concurrent simulations (default GOMAXPROCS).
func WithParallelism(n int) Option {
	return func(e *Engine) { e.parallelism = n }
}

// WithoutCache disables result memoization (every job simulates).
func WithoutCache() Option {
	return func(e *Engine) { e.cacheOff = true }
}

// WithProgress streams an Event after every answered job. The callback
// must be safe for concurrent use; it is invoked from worker goroutines.
func WithProgress(fn func(Event)) Option {
	return func(e *Engine) { e.progress = fn }
}

// WithTelemetry publishes engine activity into the registry: job
// counters (engine_jobs_total by outcome), per-job wall-time and
// LLC-hit-count histograms, and one span per simulated design point
// (named "simulate", tagged with workload and llc, parented to the span
// carried by the job's context, e.g. a sweep's figure span).
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(e *Engine) { e.reg = reg }
}

// WithTimeline installs a default time-resolved sampling config on every
// job that does not carry its own, so a whole sweep gains epoch-sampled
// Results without touching each job builder. Like WithTelemetry this is
// propagation only — the cache key already excludes Config.Timeline.
func WithTimeline(tc system.TimelineConfig) Option {
	return func(e *Engine) { e.timeline = &tc }
}

// WithStore installs a persistent second cache tier behind the in-memory
// result map: an in-memory miss consults the store before simulating,
// and every successful simulation (upgrades included) is written back,
// so results survive process restarts and can be shipped between
// machines. Store hits count as Cached. Store failures never fail a job
// — a corrupt or unreadable entry degrades to re-simulation.
func WithStore(s CacheStore) Option {
	return func(e *Engine) { e.store = s }
}

// entry is one cache slot; done closes when the computing goroutine
// finishes, so concurrent requests for the same key wait instead of
// duplicating the simulation.
type entry struct {
	done chan struct{}
	res  *system.Result
	err  error
}

// Engine executes simulation jobs with caching, bounded parallelism and
// cancellation.
type Engine struct {
	parallelism int
	cacheOff    bool
	progress    func(Event)
	reg         *telemetry.Registry
	timeline    *system.TimelineConfig
	store       CacheStore
	shareOff    bool
	shareLimit  int64

	mu      sync.Mutex
	results map[string]*entry

	// profMu/profiles memoize reuse-distance profiles (profilejob.go),
	// a separate singleflight domain from simulation results.
	profMu   sync.Mutex
	profiles map[string]*profEntry

	// shares memoizes generated traces across jobs (share.go); tracePool
	// recycles their materialization buffers.
	shareMu   sync.Mutex
	shares    map[string]*shareEntry
	tracePool sync.Pool

	// scratch pools per-run simulator buffers (the trace split) across
	// the worker pool, so steady-state simulation is allocation-free on
	// the trace pipeline.
	scratch sync.Pool

	simulated   atomic.Uint64
	upgraded    atomic.Uint64
	cached      atomic.Uint64
	failed      atomic.Uint64
	accesses    atomic.Uint64
	simWallNS   atomic.Int64
	traceGens   atomic.Uint64
	traceShared atomic.Uint64
	profiled    atomic.Uint64
	profileHits atomic.Uint64
}

// New creates an engine.
func New(opts ...Option) *Engine {
	e := &Engine{results: make(map[string]*entry)}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Workers is the effective parallelism bound.
func (e *Engine) Workers() int {
	if e.parallelism > 0 {
		return e.parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Stats snapshots the counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Simulated:   e.simulated.Load(),
		Upgraded:    e.upgraded.Load(),
		Cached:      e.cached.Load(),
		Failed:      e.failed.Load(),
		Accesses:    e.accesses.Load(),
		SimWallNS:   e.simWallNS.Load(),
		TraceGens:   e.traceGens.Load(),
		TraceShared: e.traceShared.Load(),
		Profiles:    e.profiled.Load(),
		ProfileHits: e.profileHits.Load(),
	}
}

// Run answers one design point, from the cache when possible. Identical
// concurrent requests share a single simulation. A cancelled context
// returns promptly with ctx.Err().
func (e *Engine) Run(ctx context.Context, j Job) (*system.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key, cacheable := Key(j)
	if e.cacheOff || !cacheable {
		return e.simulate(ctx, j)
	}
	// A job that wants a timeline cannot be answered by a cached result
	// simulated without one (the key excludes Config.Timeline, so both
	// kinds share an entry). Such a hit retires the stale entry and
	// re-simulates; the richer result re-caches and answers either kind.
	wantTimeline := j.Config.Timeline != nil || e.timeline != nil
	upgrade := false
	for {
		e.mu.Lock()
		ent, ok := e.results[key]
		if !ok {
			ent = &entry{done: make(chan struct{})}
			e.results[key] = ent
			e.mu.Unlock()

			// Consult the persistent tier before simulating. An upgrade
			// skips it: the stored result is the very timeline-less one
			// being retired.
			if !upgrade && e.store != nil {
				if res, hit := e.store.Load(key); hit && (!wantTimeline || res.Timeline != nil) {
					ent.res = res
					close(ent.done)
					e.cached.Add(1)
					e.reg.Counter("engine_jobs_total", "outcome", "cached").Inc()
					e.reg.Counter("engine_store_total", "outcome", "hit").Inc()
					e.emit(j, key, res, true, false, nil, 0)
					return res, nil
				}
				e.reg.Counter("engine_store_total", "outcome", "miss").Inc()
			}

			ent.res, ent.err = e.simulateKeyed(ctx, j, key, upgrade)
			if ent.err != nil {
				// Do not cache failures (typically cancellations): the next
				// run must be able to retry.
				e.mu.Lock()
				delete(e.results, key)
				e.mu.Unlock()
			} else if e.store != nil {
				// Persist best-effort; an unwritable store never fails the
				// job. Upgrades overwrite the stale timeline-less entry.
				if serr := e.store.Store(key, ent.res); serr != nil {
					e.reg.Counter("engine_store_total", "outcome", "write_error").Inc()
				} else {
					e.reg.Counter("engine_store_total", "outcome", "write").Inc()
				}
			}
			close(ent.done)
			return ent.res, ent.err
		}
		e.mu.Unlock()
		select {
		case <-ent.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if ent.err != nil {
			// The computing goroutine failed and removed the entry;
			// propagate its error (a later Run will retry fresh).
			return nil, ent.err
		}
		if wantTimeline && ent.res.Timeline == nil {
			// Upgrade: drop the timeline-less entry (only if it is still
			// the one we waited on — a concurrent upgrade may have already
			// replaced it) and loop to simulate with sampling on. The
			// re-simulation is accounted as Upgraded, not Simulated: one
			// submission, one outcome.
			e.mu.Lock()
			if cur, ok := e.results[key]; ok && cur == ent {
				delete(e.results, key)
			}
			e.mu.Unlock()
			upgrade = true
			continue
		}
		e.cached.Add(1)
		e.reg.Counter("engine_jobs_total", "outcome", "cached").Inc()
		e.emit(j, key, ent.res, true, false, nil, 0)
		return ent.res, nil
	}
}

// simulate executes the job and updates counters.
func (e *Engine) simulate(ctx context.Context, j Job) (*system.Result, error) {
	return e.simulateKeyed(ctx, j, "", false)
}

// simulateKeyed executes the job. upgrade marks a timeline-upgrade
// re-simulation, which counts toward Stats.Upgraded instead of
// Stats.Simulated and emits an "upgrade" event rather than a second
// "simulate" for the same key.
func (e *Engine) simulateKeyed(ctx context.Context, j Job, key string, upgrade bool) (*system.Result, error) {
	if e.reg != nil && j.Config.Telemetry == nil {
		// Job is a value, so this stays local: every simulation run by an
		// instrumented engine publishes system-level metrics too. The cache
		// key already excludes Telemetry, so identity is unchanged.
		j.Config.Telemetry = e.reg
	}
	if e.timeline != nil && j.Config.Timeline == nil {
		// Same propagation for the engine-wide sampling default; copied so
		// a job can never alias the engine's config.
		tc := *e.timeline
		j.Config.Timeline = &tc
	}
	spanName := "simulate"
	if upgrade {
		spanName = "upgrade"
	}
	span := e.reg.StartSpan(spanName, telemetry.SpanFromContext(ctx))
	span.SetAttr("workload", j.Workload)
	span.SetAttr("llc", j.LLCName())
	scratch, _ := e.scratch.Get().(*system.Scratch)
	if scratch == nil {
		scratch = new(system.Scratch)
	}
	start := time.Now()
	var res *system.Result
	var err error
	var accesses uint64
	switch {
	case j.Trace != nil:
		res, err = system.RunWith(ctx, j.Config, j.Trace, scratch)
		accesses = uint64(len(j.Trace.Accesses))
	case j.Source != nil:
		res, accesses, err = e.runSource(ctx, j, scratch)
	default:
		err = fmt.Errorf("engine: job %s on %s has neither a trace nor a source", j.Workload, j.LLCName())
	}
	wall := time.Since(start).Nanoseconds()
	e.scratch.Put(scratch)
	e.simWallNS.Add(wall)
	e.reg.Histogram("engine_job_wall_ns").Observe(float64(wall))
	if err != nil {
		e.failed.Add(1)
		e.reg.Counter("engine_jobs_total", "outcome", "failed").Inc()
		span.SetAttr("error", err.Error())
	} else {
		// An upgrade is real simulation work (accesses and wall time
		// count) but answers the same submission a cache hit would have,
		// so it lands in the Upgraded counter and Jobs() stays equal to
		// submissions.
		if upgrade {
			e.upgraded.Add(1)
			e.reg.Counter("engine_jobs_total", "outcome", "upgraded").Inc()
		} else {
			e.simulated.Add(1)
			e.reg.Counter("engine_jobs_total", "outcome", "simulated").Inc()
		}
		e.accesses.Add(accesses)
		e.reg.Histogram("engine_job_llc_hits").Observe(float64(res.LLC.Hits))
	}
	span.End()
	e.emit(j, key, res, false, upgrade, err, wall)
	return res, err
}

func (e *Engine) emit(j Job, key string, res *system.Result, cachedHit, upgraded bool, err error, wallNS int64) {
	if e.progress == nil {
		return
	}
	e.progress(Event{
		Workload: j.Workload,
		LLC:      j.LLCName(),
		Key:      key,
		Cached:   cachedHit,
		Upgraded: upgraded,
		Err:      err,
		Result:   res,
		WallNS:   wallNS,
		Stats:    e.Stats(),
	})
}

// RunAll answers every job with a bounded worker pool. It always returns
// a result slice aligned with jobs — entries are nil for failed jobs —
// plus every failure joined with errors.Join (context errors are folded
// into one), so callers can render what completed.
func (e *Engine) RunAll(ctx context.Context, jobs []Job) ([]*system.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Pin every distinct shareable trace for the batch, so sweeps
	// amortize generation across design points regardless of worker-pool
	// shape (share.go).
	unpin := e.pinShares(jobs)
	defer unpin()
	results := make([]*system.Result, len(jobs))
	errs := make([]error, len(jobs))
	sem := make(chan struct{}, e.Workers())
	var wg sync.WaitGroup
	for i := range jobs {
		// Acquiring the slot here (not in the goroutine) bounds the pool
		// and lets cancellation stop submission immediately.
		select {
		case <-ctx.Done():
			errs[i] = ctx.Err()
			continue
		case sem <- struct{}{}:
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i], errs[i] = e.Run(ctx, jobs[i])
		}(i)
	}
	wg.Wait()
	return results, joinJobErrors(jobs, errs)
}

// joinJobErrors aggregates per-job failures, labeling each with its
// design point and collapsing the flood of identical context errors a
// cancellation produces into a single entry.
func joinJobErrors(jobs []Job, errs []error) error {
	var out []error
	ctxSeen := false
	for i, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			if !ctxSeen {
				out = append(out, err)
				ctxSeen = true
			}
		default:
			out = append(out, fmt.Errorf("engine: %s on %s: %w", jobs[i].Workload, jobs[i].LLCName(), err))
		}
	}
	return errors.Join(out...)
}
