package engine

// Engine-level fault-injection properties: the result-cache key must
// cover the fault configuration (a different fault process is a
// different design point), a disabled fault config must be inert through
// the engine path, and faulted runs must memoize like any other job.

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"nvmllc/internal/fault"
	"nvmllc/internal/reference"
	"nvmllc/internal/system"
)

// faultedJob builds a Kang_P design point with faults scaled to fire
// within the short test trace.
func faultedJob(t *testing.T, enduranceWrites float64, seed uint64) Job {
	t.Helper()
	kang, err := reference.ModelByName(reference.FixedCapacityModels(), "Kang_P")
	if err != nil {
		t.Fatal(err)
	}
	j := testJob(t, "is", smallOpts())
	j.Config = system.Gainestown(kang)
	j.Config.Fault = fault.Config{
		Options: fault.Options{Class: kang.Class, EnduranceWrites: enduranceWrites},
		Seed:    seed,
	}
	return j
}

func TestKeyCoversFaultConfig(t *testing.T) {
	base := faultedJob(t, 0.3, 21)
	keyOf := func(j Job) string {
		k, ok := Key(j)
		if !ok {
			t.Fatal("job unexpectedly uncacheable")
		}
		return k
	}
	k0 := keyOf(base)
	if k1 := keyOf(base); k1 != k0 {
		t.Error("key not deterministic")
	}
	seed := base
	seed.Config.Fault.Seed = 22
	if keyOf(seed) == k0 {
		t.Error("fault seed not covered by the cache key")
	}
	prewear := base
	prewear.Config.Fault.PreWearWrites = 0.1
	if keyOf(prewear) == k0 {
		t.Error("pre-wear not covered by the cache key")
	}
	endurance := base
	endurance.Config.Fault.EnduranceWrites = 0.4
	if keyOf(endurance) == k0 {
		t.Error("endurance override not covered by the cache key")
	}
}

// TestEngineFaultInertness: a populated-but-disabled fault config is a
// distinct cache key (the config differs) yet must simulate to exactly
// the same Result as the zero value — the engine-level half of the
// inertness guarantee.
func TestEngineFaultInertness(t *testing.T) {
	e := New()
	plain := testJob(t, "bzip2", smallOpts())
	disabled := plain
	disabled.Config.Fault = fault.Config{Seed: 99, Spread: 2, MaxRetries: 5, SoftFraction: 0.5}
	if disabled.Config.Fault.Enabled() {
		t.Fatal("test fault config unexpectedly enabled")
	}
	kPlain, _ := Key(plain)
	kDisabled, _ := Key(disabled)
	if kPlain == kDisabled {
		t.Fatal("distinct configs share a cache key; the comparison would be a cache alias")
	}
	r1, err := e.Run(context.Background(), plain)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(context.Background(), disabled)
	if err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.Simulated != 2 {
		t.Fatalf("stats %+v, want 2 fresh simulations", s)
	}
	b1, err := json.Marshal(r1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(r2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Errorf("disabled fault config changed the engine result\nplain:    %s\ndisabled: %s", b1, b2)
	}
}

// TestEngineFaultedRunsMemoize: a faulted design point is deterministic,
// so the engine may cache it; a second identical Run must hit.
func TestEngineFaultedRunsMemoize(t *testing.T) {
	e := New()
	j := faultedJob(t, 0.3, 21)
	r1, err := e.Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Degradation == nil || r1.Degradation.CondemnedWays == 0 {
		t.Fatalf("no degradation in faulted run: %+v", r1.Degradation)
	}
	r2, err := e.Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.Simulated != 1 || s.Cached != 1 {
		t.Fatalf("stats %+v, want 1 simulated / 1 cached", s)
	}
	if r1 != r2 {
		t.Error("faulted result not memoized")
	}
	// And a fresh engine reproduces it bit-for-bit: same seed ⇒ same
	// fault sequence ⇒ same Result.
	r3, err := New().Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*r1.Degradation, *r3.Degradation) {
		t.Errorf("fault history not reproducible across engines:\n%+v\n%+v", r1.Degradation, r3.Degradation)
	}
}
