package engine

import (
	"bytes"
	"context"
	"sync/atomic"
	"testing"

	"nvmllc/internal/reference"
	"nvmllc/internal/system"
	"nvmllc/internal/trace"
	"nvmllc/internal/workload"
)

// sweepJobs builds a technology sweep over one workload: points design
// points differing only in the LLC model/latency — distinct result-cache
// keys, one shareable trace. gens counts how many times any job's source
// factory actually got constructed and consumed.
func sweepJobs(t *testing.T, points int, gens *atomic.Uint64) []Job {
	t.Helper()
	p, err := workload.ByName("ft")
	if err != nil {
		t.Fatal(err)
	}
	opts := workload.Options{Accesses: 20000, Threads: 4, Seed: 7}
	models := reference.FixedCapacityModels()
	if len(models) < points {
		t.Fatalf("need %d LLC models, reference set has %d", points, len(models))
	}
	jobs := make([]Job, points)
	for i := 0; i < points; i++ {
		cfg := system.Gainestown(models[i]).WithCores(4)
		jobs[i] = Job{
			Workload:  p.Name,
			TraceOpts: opts,
			Config:    cfg,
			Source: func() (trace.ChunkSource, error) {
				gens.Add(1)
				return workload.NewGenerator(p, opts)
			},
		}
	}
	return jobs
}

// TestTraceSharingByteIdentical: an 8-point technology sweep must
// materialize its trace once, answer the other seven design points from
// the shared slice, and produce results byte-identical to the same jobs
// run with sharing disabled.
func TestTraceSharingByteIdentical(t *testing.T) {
	const points = 8
	var gens atomic.Uint64
	jobs := sweepJobs(t, points, &gens)

	e := New()
	got, err := e.RunAll(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.TraceGens != 1 {
		t.Errorf("sweep materialized the trace %d times, want 1", st.TraceGens)
	}
	if st.TraceShared != points-1 {
		t.Errorf("TraceShared = %d, want %d", st.TraceShared, points-1)
	}
	if st.Simulated != points {
		t.Errorf("Simulated = %d, want %d (every design point is a distinct config)", st.Simulated, points)
	}

	var gensOff atomic.Uint64
	off := New(WithoutTraceSharing())
	want, err := off.RunAll(context.Background(), sweepJobs(t, points, &gensOff))
	if err != nil {
		t.Fatal(err)
	}
	if stOff := off.Stats(); stOff.TraceGens != 0 || stOff.TraceShared != 0 {
		t.Errorf("sharing-disabled engine reported TraceGens=%d TraceShared=%d, want 0/0", stOff.TraceGens, stOff.TraceShared)
	}
	if gensOff.Load() != points {
		t.Errorf("sharing disabled: %d source constructions, want %d", gensOff.Load(), points)
	}
	for i := range jobs {
		gb, wb := marshal(t, got[i]), marshal(t, want[i])
		if !bytes.Equal(gb, wb) {
			t.Errorf("design point %d: shared-trace result differs from unshared\nshared:   %s\nunshared: %s", i, gb, wb)
		}
	}
}

// TestTraceSharingSerializedWorkers: RunAll pins shares for the batch,
// so a fully serialized pool (parallelism 1, where per-job refcounts
// drop to zero between jobs) still generates once per sweep.
func TestTraceSharingSerializedWorkers(t *testing.T) {
	var gens atomic.Uint64
	e := New(WithParallelism(1))
	if _, err := e.RunAll(context.Background(), sweepJobs(t, 8, &gens)); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.TraceGens != 1 || st.TraceShared != 7 {
		t.Errorf("serialized sweep: TraceGens=%d TraceShared=%d, want 1/7", st.TraceGens, st.TraceShared)
	}
}

// TestTraceSharingShareLimit: traces over the configured byte limit are
// not materialized — every job streams from its own source — and results
// are unchanged.
func TestTraceSharingShareLimit(t *testing.T) {
	var gens atomic.Uint64
	jobs := sweepJobs(t, 4, &gens)
	// 20000 accesses × 16 B = 320 kB; a 1 kB limit forces pass-through.
	e := New(WithTraceShareLimit(1024))
	got, err := e.RunAll(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.TraceGens != 0 || st.TraceShared != 0 {
		t.Errorf("over-limit sweep: TraceGens=%d TraceShared=%d, want 0/0", st.TraceGens, st.TraceShared)
	}
	var gensOff atomic.Uint64
	off := New(WithoutTraceSharing())
	want, err := off.RunAll(context.Background(), sweepJobs(t, 4, &gensOff))
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if !bytes.Equal(marshal(t, got[i]), marshal(t, want[i])) {
			t.Errorf("design point %d: over-limit result differs from unshared", i)
		}
	}
}

// TestTraceSharingSkipsIneligibleJobs: NoCache jobs and materialized
// jobs never participate in sharing.
func TestTraceSharingSkipsIneligibleJobs(t *testing.T) {
	var gens atomic.Uint64
	jobs := sweepJobs(t, 2, &gens)
	jobs[0].NoCache = true
	jobs[1].NoCache = true
	e := New()
	if _, err := e.RunAll(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.TraceGens != 0 || st.TraceShared != 0 {
		t.Errorf("NoCache jobs shared traces: TraceGens=%d TraceShared=%d", st.TraceGens, st.TraceShared)
	}
	if gens.Load() != 2 {
		t.Errorf("NoCache jobs constructed %d sources, want 2", gens.Load())
	}
}

// TestTraceSharingWithResultCache: identical design points still dedup
// through the result cache — only distinct configs simulate, and only
// the simulations touch the sharing layer.
func TestTraceSharingWithResultCache(t *testing.T) {
	var gens atomic.Uint64
	jobs := sweepJobs(t, 4, &gens)
	jobs = append(jobs, jobs...) // every point submitted twice
	e := New()
	if _, err := e.RunAll(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Simulated != 4 || st.Cached != 4 {
		t.Errorf("Simulated=%d Cached=%d, want 4/4", st.Simulated, st.Cached)
	}
	if st.TraceGens != 1 || st.TraceShared != 3 {
		t.Errorf("TraceGens=%d TraceShared=%d, want 1/3 (cache hits never reach the sharing layer)", st.TraceGens, st.TraceShared)
	}
}
