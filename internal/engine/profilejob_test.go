package engine

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"nvmllc/internal/profile"
	"nvmllc/internal/telemetry"
	"nvmllc/internal/workload"
)

// testProfileJob builds a small streaming profile job.
func testProfileJob(t *testing.T, name string, opts workload.Options) ProfileJob {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return StreamProfileJob(p, opts, profile.Config{SetCounts: []int{256, 512, 1024}})
}

func TestRunProfileCachesSecondCall(t *testing.T) {
	e := New()
	pj := testProfileJob(t, "bzip2", smallOpts())
	p1, err := e.RunProfile(context.Background(), pj)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.RunProfile(context.Background(), pj)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("second RunProfile did not return the memoized profile")
	}
	s := e.Stats()
	if s.Profiles != 1 || s.ProfileHits != 1 {
		t.Errorf("stats = %d profiled / %d hits, want 1/1", s.Profiles, s.ProfileHits)
	}
}

func TestProfileKeyDomainsAndDefaults(t *testing.T) {
	pj := testProfileJob(t, "bzip2", smallOpts())
	key, ok := ProfileKey(pj)
	if !ok || key == "" {
		t.Fatal("profile job unexpectedly uncacheable")
	}
	// A zero MaxWays and the explicit default must share an identity.
	expl := pj
	expl.Config.MaxWays = profile.DefaultMaxWays
	expl.Config.BlockBytes = profile.DefaultBlockBytes
	if k2, _ := ProfileKey(expl); k2 != key {
		t.Error("defaulted and explicit configs hash differently")
	}
	// Different geometry cover, filter hierarchy, or NoCache change identity.
	alt := pj
	alt.Config.SetCounts = []int{128}
	if k2, _ := ProfileKey(alt); k2 == key {
		t.Error("different set counts share a key")
	}
	filt := pj
	filt.Hierarchy = &profile.Hierarchy{
		BlockBytes: 64,
		L1I:        profile.LevelSpec{CapacityBytes: 32 << 10, Ways: 4},
		L1D:        profile.LevelSpec{CapacityBytes: 32 << 10, Ways: 8},
		L2:         profile.LevelSpec{CapacityBytes: 256 << 10, Ways: 8},
	}
	if k2, _ := ProfileKey(filt); k2 == key {
		t.Error("filtered and raw profiles share a key")
	}
	nc := pj
	nc.NoCache = true
	if _, ok := ProfileKey(nc); ok {
		t.Error("NoCache profile job reported cacheable")
	}
}

// TestJobsExcludesProfiles is the satellite regression test: profile
// requests must not disturb the Jobs() == submissions invariant.
func TestJobsExcludesProfiles(t *testing.T) {
	e := New()
	ctx := context.Background()
	j := testJob(t, "bzip2", smallOpts())
	const simSubmissions = 3
	for i := 0; i < simSubmissions; i++ {
		if _, err := e.Run(ctx, j); err != nil {
			t.Fatal(err)
		}
	}
	pj := testProfileJob(t, "bzip2", smallOpts())
	for i := 0; i < 4; i++ {
		if _, err := e.RunProfile(ctx, pj); err != nil {
			t.Fatal(err)
		}
	}
	s := e.Stats()
	if got := s.Jobs(); got != simSubmissions {
		t.Errorf("Jobs() = %d, want %d simulation submissions", got, simSubmissions)
	}
	if s.Profiles != 1 || s.ProfileHits != 3 {
		t.Errorf("profile counters = %d/%d, want 1 computed / 3 hits", s.Profiles, s.ProfileHits)
	}
}

// TestRunProfileSingleflight checks concurrent identical requests share
// one pass.
func TestRunProfileSingleflight(t *testing.T) {
	e := New()
	pj := testProfileJob(t, "bzip2", smallOpts())
	var wg sync.WaitGroup
	profs := make([]*profile.Profile, 8)
	for i := range profs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := e.RunProfile(context.Background(), pj)
			if err != nil {
				t.Error(err)
				return
			}
			profs[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(profs); i++ {
		if profs[i] != profs[0] {
			t.Fatalf("request %d got a different profile instance", i)
		}
	}
	if s := e.Stats(); s.Profiles != 1 {
		t.Errorf("Profiles = %d, want 1", s.Profiles)
	}
}

// TestProfileTraceSharing checks a profile job and a simulation job over
// the same (workload, options) share one trace materialization.
func TestProfileTraceSharing(t *testing.T) {
	e := New(WithParallelism(1))
	ctx := context.Background()
	p, err := workload.ByName("ft")
	if err != nil {
		t.Fatal(err)
	}
	opts := workload.Options{Accesses: 20000, Threads: 4, Seed: 3}
	sim := StreamJob(p, opts, testJob(t, "ft", opts).Config)
	pins := e.pinShares([]Job{sim})
	defer pins()
	if _, err := e.RunProfile(ctx, StreamProfileJob(p, opts, profile.Config{SetCounts: []int{512}})); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(ctx, sim); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.TraceGens != 1 || s.TraceShared != 1 {
		t.Errorf("trace sharing = %d gens / %d shared, want 1/1", s.TraceGens, s.TraceShared)
	}
}

// TestProfilePersistence round-trips a profile through a DiskCache: a
// fresh engine over the same store must answer from disk without
// re-profiling.
func TestProfilePersistence(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	pj := testProfileJob(t, "bzip2", smallOpts())
	e1 := New(WithStore(store))
	want, err := e1.RunProfile(context.Background(), pj)
	if err != nil {
		t.Fatal(err)
	}
	if s := e1.Stats(); s.Profiles != 1 {
		t.Fatalf("first engine profiled %d times, want 1", s.Profiles)
	}

	store2, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	e2 := New(WithStore(store2))
	got, err := e2.RunProfile(context.Background(), pj)
	if err != nil {
		t.Fatal(err)
	}
	s := e2.Stats()
	if s.Profiles != 0 || s.ProfileHits != 1 {
		t.Errorf("second engine = %d profiled / %d hits, want 0/1", s.Profiles, s.ProfileHits)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("profile changed across the persistence round trip")
	}
	// Corrupting the entry degrades to a miss and a fresh pass.
	matches, err := filepath.Glob(filepath.Join(dir, "*"+profileStoreExt))
	if err != nil || len(matches) != 1 {
		t.Fatalf("profile entries on disk: %v, %v", matches, err)
	}
	raw, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0xFF
	if err := os.WriteFile(matches[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	store3, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	e3 := New(WithStore(store3))
	re, err := e3.RunProfile(context.Background(), pj)
	if err != nil {
		t.Fatal(err)
	}
	if s := e3.Stats(); s.Profiles != 1 {
		t.Errorf("corrupt entry did not degrade to re-profiling (%d passes)", s.Profiles)
	}
	if !reflect.DeepEqual(re, want) {
		t.Error("re-profiled result differs from original")
	}
}

// TestProfileSpanParentedLikeSimulate checks the "profile" span is
// emitted and parented to the context span, exactly as "simulate" is.
func TestProfileSpanParentedLikeSimulate(t *testing.T) {
	reg := telemetry.New()
	e := New(WithTelemetry(reg))
	parent := reg.StartSpan("figure", nil)
	ctx := telemetry.ContextWithSpan(context.Background(), parent)
	if _, err := e.RunProfile(ctx, testProfileJob(t, "bzip2", smallOpts())); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(ctx, testJob(t, "bzip2", smallOpts())); err != nil {
		t.Fatal(err)
	}
	parent.End()
	var profSpan, simSpan *telemetry.SpanRecord
	var parentID uint64
	for _, s := range reg.Spans() {
		s := s
		switch s.Name {
		case "profile":
			profSpan = &s
		case "simulate":
			simSpan = &s
		case "figure":
			parentID = s.ID
		}
	}
	if profSpan == nil || simSpan == nil || parentID == 0 {
		t.Fatalf("missing spans: profile=%v simulate=%v figure=%d", profSpan, simSpan, parentID)
	}
	if profSpan.Parent != parentID {
		t.Errorf("profile span parent = %d, want %d (the figure span), like simulate's %d",
			profSpan.Parent, parentID, simSpan.Parent)
	}
	if simSpan.Parent != parentID {
		t.Errorf("simulate span parent = %d, want %d", simSpan.Parent, parentID)
	}
	found := false
	for _, a := range profSpan.Attrs {
		if a.Key == "workload" && a.Value == "bzip2" {
			found = true
		}
	}
	if !found {
		t.Error("profile span missing workload attribute")
	}
}
