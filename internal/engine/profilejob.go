package engine

// Profile jobs: the reuse-distance profiling analogue of simulation
// jobs. A ProfileJob identifies a trace (same provenance fields as Job)
// plus the profile.Config selecting the geometries to cover; the engine
// memoizes profiles under their own deterministic key — a distinct
// domain from simulation keys, so the two caches can never answer each
// other — persists them through the store when it implements
// ProfileStore, and rides the cross-job trace-sharing layer so a sweep
// that both profiles and simulates a workload generates its trace once.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"nvmllc/internal/profile"
	"nvmllc/internal/system"
	"nvmllc/internal/telemetry"
	"nvmllc/internal/trace"
	"nvmllc/internal/workload"
)

// ProfileJob is one profiling request: a trace plus the geometry cover
// to profile it over. Trace/Source/NoCache behave exactly as on Job.
type ProfileJob struct {
	// Workload is the trace/workload name.
	Workload string
	// TraceOpts are the generation options that produced the trace.
	TraceOpts workload.Options
	// Config selects the set counts and histogram bound.
	Config profile.Config
	// Hierarchy, when non-nil, strains the trace through functional
	// L1/L2 levels first (profile.RunFiltered), so the profiled stream
	// is the one the LLC sees; nil profiles the raw stream.
	Hierarchy *profile.Hierarchy
	// Trace is the materialized trace to profile.
	Trace *trace.Trace
	// Source, when Trace is nil, supplies the trace as a chunked stream
	// (same contract as Job.Source).
	Source func() (trace.ChunkSource, error)
	// NoCache forces a fresh profiling pass and keeps it out of the
	// cache.
	NoCache bool
}

// StreamProfileJob builds a streaming profile job for a named workload,
// sharing its generated trace with any simulation jobs over the same
// (profile, options) pair.
func StreamProfileJob(p workload.Profile, opts workload.Options, pc profile.Config) ProfileJob {
	return ProfileJob{
		Workload:  p.Name,
		TraceOpts: opts,
		Config:    pc,
		Source: func() (trace.ChunkSource, error) {
			return workload.NewGenerator(p, opts)
		},
	}
}

// ProfileKey returns the deterministic cache key for a profile job and
// whether it is cacheable. The key hashes the trace provenance, the
// profile configuration and the filter hierarchy under a domain prefix
// distinct from simulation keys.
func ProfileKey(pj ProfileJob) (string, bool) {
	if pj.NoCache {
		return "", false
	}
	h := sha256.New()
	fmt.Fprintf(h, "domain=profile\nworkload=%s\nopts=%+v\n", pj.Workload, pj.TraceOpts)
	fmt.Fprintf(h, "config=%+v\n", pj.Config.WithDefaults())
	if pj.Hierarchy != nil {
		fmt.Fprintf(h, "hierarchy=%+v\n", *pj.Hierarchy)
	}
	return hex.EncodeToString(h.Sum(nil)), true
}

// profEntry is one profile-cache slot (the singleflight discipline of
// entry, for profiles).
type profEntry struct {
	done chan struct{}
	prof *profile.Profile
	err  error
}

// RunProfile answers one profiling request, from the profile cache when
// possible. Identical concurrent requests share a single pass; a
// cancelled context returns promptly with ctx.Err().
func (e *Engine) RunProfile(ctx context.Context, pj ProfileJob) (*profile.Profile, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key, cacheable := ProfileKey(pj)
	if e.cacheOff || !cacheable {
		return e.computeProfile(ctx, pj)
	}
	e.profMu.Lock()
	if e.profiles == nil {
		e.profiles = make(map[string]*profEntry)
	}
	ent, ok := e.profiles[key]
	if !ok {
		ent = &profEntry{done: make(chan struct{})}
		e.profiles[key] = ent
		e.profMu.Unlock()

		// Consult the persistent tier before profiling.
		if ps, ok := e.store.(ProfileStore); ok && ps != nil {
			if p, hit := ps.LoadProfile(key); hit {
				ent.prof = p
				close(ent.done)
				e.profileHits.Add(1)
				e.reg.Counter("engine_profiles_total", "outcome", "cached").Inc()
				return p, nil
			}
		}

		ent.prof, ent.err = e.computeProfile(ctx, pj)
		if ent.err != nil {
			// Like simulation failures: never cache, so a later run retries.
			e.profMu.Lock()
			delete(e.profiles, key)
			e.profMu.Unlock()
		} else if ps, ok := e.store.(ProfileStore); ok && ps != nil {
			// Best-effort persistence, mirroring result stores.
			if serr := ps.StoreProfile(key, ent.prof); serr != nil {
				e.reg.Counter("engine_profile_store_total", "outcome", "write_error").Inc()
			} else {
				e.reg.Counter("engine_profile_store_total", "outcome", "write").Inc()
			}
		}
		close(ent.done)
		return ent.prof, ent.err
	}
	e.profMu.Unlock()
	select {
	case <-ent.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if ent.err != nil {
		return nil, ent.err
	}
	e.profileHits.Add(1)
	e.reg.Counter("engine_profiles_total", "outcome", "cached").Inc()
	return ent.prof, nil
}

// computeProfile executes the profiling pass, riding the trace-sharing
// layer for generator-backed jobs and the engine scratch pool for
// buffers. It is accounted under Stats.Profiles (never Jobs()).
func (e *Engine) computeProfile(ctx context.Context, pj ProfileJob) (*profile.Profile, error) {
	span := e.reg.StartSpan("profile", telemetry.SpanFromContext(ctx))
	span.SetAttr("workload", pj.Workload)
	defer span.End()
	scratch, _ := e.scratch.Get().(*system.Scratch)
	if scratch == nil {
		scratch = new(system.Scratch)
	}
	start := time.Now()
	p, err := e.profileSource(ctx, pj, scratch.ProfileScratch())
	wall := time.Since(start).Nanoseconds()
	e.scratch.Put(scratch)
	e.simWallNS.Add(wall)
	e.reg.Histogram("engine_profile_wall_ns").Observe(float64(wall))
	if err != nil {
		e.reg.Counter("engine_profiles_total", "outcome", "failed").Inc()
		span.SetAttr("error", err.Error())
		return nil, err
	}
	e.profiled.Add(1)
	e.reg.Counter("engine_profiles_total", "outcome", "computed").Inc()
	e.accesses.Add(uint64(p.Accesses))
	return p, nil
}

// runProfilePass dispatches to the raw or filtered profiler.
func runProfilePass(ctx context.Context, pj ProfileJob, src trace.ChunkSource, sc *profile.Scratch) (*profile.Profile, error) {
	if pj.Hierarchy != nil {
		return profile.RunFiltered(ctx, src, *pj.Hierarchy, pj.Config, sc)
	}
	return profile.Run(ctx, src, pj.Config, sc)
}

// profileSource obtains the job's stream — materialized trace,
// share-layer slice, or the job's own source — and profiles it.
func (e *Engine) profileSource(ctx context.Context, pj ProfileJob, sc *profile.Scratch) (*profile.Profile, error) {
	if pj.Trace != nil {
		src, err := trace.NewTraceSource(pj.Trace)
		if err != nil {
			return nil, err
		}
		return runProfilePass(ctx, pj, src, sc)
	}
	if pj.Source == nil {
		return nil, fmt.Errorf("engine: profile job %s has neither a trace nor a source", pj.Workload)
	}
	src, err := pj.Source()
	if err != nil {
		return nil, err
	}
	// Share the materialized trace with simulation jobs over the same
	// (workload, options) pair: shareKey ignores everything profile-
	// specific, so an estimator sweep generates its workload once for
	// the profile and every pinned exact simulation.
	alias := Job{Workload: pj.Workload, TraceOpts: pj.TraceOpts, Source: pj.Source, NoCache: pj.NoCache}
	key, ok := shareKey(alias)
	if e.shareOff || !ok ||
		(e.shareLimit > 0 && src.Meta().Accesses*shareBytesPerAccess > e.shareLimit) {
		return runProfilePass(ctx, pj, src, sc)
	}
	sh := e.acquireShare(alias)
	defer e.releaseShare(key, sh)
	if !e.materialize(sh, src) && sh.err == nil {
		e.traceShared.Add(1)
	}
	if sh.err != nil {
		return nil, sh.err
	}
	shared, err := trace.NewSliceSource(sh.meta, sh.accs)
	if err != nil {
		return nil, err
	}
	return runProfilePass(ctx, pj, shared, sc)
}
