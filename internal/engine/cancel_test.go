package engine

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"nvmllc/internal/workload"
)

// TestRunAllCancellationMidSubmission pins RunAll's abort contract:
// cancelling while the submission loop is still feeding jobs preserves
// the results already computed, collapses the flood of per-job context
// errors into a single joined entry, and leaks neither goroutines nor
// pool slots — the engine keeps working afterwards.
func TestRunAllCancellationMidSubmission(t *testing.T) {
	before := runtime.NumGoroutine()

	// Parallelism 1 serializes the submission loop on the pool slot, so
	// cancelling from the first job's completion event is guaranteed to
	// land while later jobs are still waiting to be submitted.
	e := New(WithParallelism(1))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cancelled := make(chan struct{})
	e.progress = func(Event) {
		select {
		case <-cancelled:
		default:
			close(cancelled)
			cancel()
		}
	}

	jobs := make([]Job, 6)
	for i := range jobs {
		jobs[i] = testJob(t, "bzip2", workload.Options{Accesses: 20000, Seed: int64(i + 1)})
	}
	results, err := e.RunAll(ctx, jobs)

	// The completed head of the batch survives the abort.
	if len(results) != len(jobs) {
		t.Fatalf("results slice has %d entries, want %d", len(results), len(jobs))
	}
	if results[0] == nil {
		t.Error("cancellation discarded the already-computed first result")
	}
	var kept int
	for _, r := range results {
		if r != nil {
			kept++
		}
	}
	if kept == len(jobs) {
		t.Fatal("every job completed; cancellation never interrupted the batch")
	}

	// One joined context entry, not one per refused job.
	if err == nil {
		t.Fatal("cancelled RunAll returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want a context.Canceled chain", err)
	}
	if got := strings.Count(err.Error(), context.Canceled.Error()); got != 1 {
		t.Errorf("error mentions the cancellation %d times, want it collapsed to 1:\n%v", got, err)
	}

	// No slot leak: the same engine, under a fresh context, still runs a
	// full batch at its bounded parallelism.
	fresh, err := e.RunAll(context.Background(), jobs)
	if err != nil {
		t.Fatalf("engine broken after a cancelled batch: %v", err)
	}
	for i, r := range fresh {
		if r == nil {
			t.Fatalf("post-cancel batch lost result %d", i)
		}
	}

	// No goroutine leak: the count settles back to the baseline (with a
	// little slack for runtime background goroutines).
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+3 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+3 {
		t.Errorf("goroutines grew from %d to %d after RunAll cancellation", before, after)
	}
}
