package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"

	"nvmllc/internal/system"
	"nvmllc/internal/workload"
)

// timelineJob is testJob with wear tracking and epoch sampling on.
func timelineJob(t *testing.T, name string, opts workload.Options) Job {
	t.Helper()
	j := testJob(t, name, opts)
	j.Config.TrackWear = true
	j.Config.Timeline = &system.TimelineConfig{Points: 16}
	return j
}

// TestKeyExcludesTimeline pins the cache-identity rule: sampling is
// observation-only, so a sampled and an unsampled job share one key.
func TestKeyExcludesTimeline(t *testing.T) {
	plain := testJob(t, "bzip2", smallOpts())
	sampled := plain
	sampled.Config.Timeline = &system.TimelineConfig{Points: 64}
	kp, ok1 := Key(plain)
	ks, ok2 := Key(sampled)
	if !ok1 || !ok2 {
		t.Fatal("jobs unexpectedly uncacheable")
	}
	if kp != ks {
		t.Errorf("timeline config changed the cache key:\nplain:   %s\nsampled: %s", kp, ks)
	}
}

// TestRunUpgradesCachedResultForTimeline exercises the cache-upgrade
// loop: a timeline-less cached entry is re-simulated when a later job
// asks for sampling, and the richer result replaces it. The upgrade
// must be accounted as Upgraded — not a second Simulated — so
// Stats.Jobs() stays equal to submissions.
func TestRunUpgradesCachedResultForTimeline(t *testing.T) {
	var events []Event
	var mu sync.Mutex
	e := New(WithProgress(func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}))
	plain := testJob(t, "bzip2", smallOpts())
	r1, err := e.Run(context.Background(), plain)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Timeline != nil {
		t.Fatal("unsampled run produced a timeline")
	}

	sampled := plain
	sampled.Config.Timeline = &system.TimelineConfig{Points: 16}
	r2, err := e.Run(context.Background(), sampled)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Timeline == nil {
		t.Fatal("sampled job hit the timeline-less cache entry without upgrading")
	}
	if s := e.Stats(); s.Simulated != 1 || s.Upgraded != 1 || s.Cached != 0 {
		t.Errorf("stats = %+v, want 1 simulated + 1 upgraded (the upgrade must not double-count Simulated)", s)
	}
	if s := e.Stats(); s.Jobs() != 2 {
		t.Errorf("Jobs() = %d, want 2 (one per submission)", s.Jobs())
	}
	// Exactly one plain simulate event and one upgrade event for the key
	// — not two simulate events.
	var sims, upgrades int
	for _, ev := range events {
		switch {
		case ev.Upgraded:
			upgrades++
		case !ev.Cached:
			sims++
		}
	}
	if sims != 1 || upgrades != 1 {
		t.Errorf("events: %d simulate + %d upgrade, want 1 + 1", sims, upgrades)
	}

	// The upgraded entry now serves both shapes from cache.
	r3, err := e.Run(context.Background(), sampled)
	if err != nil {
		t.Fatal(err)
	}
	if r3 != r2 {
		t.Error("second sampled run missed the upgraded cache entry")
	}
	r4, err := e.Run(context.Background(), plain)
	if err != nil {
		t.Fatal(err)
	}
	if r4 != r2 {
		t.Error("plain run after the upgrade should share the enriched entry")
	}
	if s := e.Stats(); s.Cached != 2 {
		t.Errorf("stats = %+v, want 2 cached after the upgrade", e.Stats())
	}
}

// TestWithTimelineAppliesToAllJobs checks the engine-level default: an
// engine built WithTimeline samples every job, without mutating caller
// configs, and per-job configs still win.
func TestWithTimelineAppliesToAllJobs(t *testing.T) {
	e := New(WithTimeline(system.TimelineConfig{Points: 8}))
	j := testJob(t, "bzip2", smallOpts())
	r, err := e.Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if r.Timeline == nil {
		t.Fatal("WithTimeline engine returned no timeline")
	}
	if n := r.Timeline.Len(); n == 0 || n > 8 {
		t.Errorf("engine default produced %d points, want 1..8", n)
	}
	if j.Config.Timeline != nil {
		t.Error("engine mutated the caller's job config")
	}

	// A job-level config overrides the engine default.
	j2 := timelineJob(t, "bzip2", workload.Options{Accesses: 20000, Seed: 9})
	r2, err := e.Run(context.Background(), j2)
	if err != nil {
		t.Fatal(err)
	}
	if n := r2.Timeline.Len(); n == 0 || n > 16 {
		t.Errorf("job-level config produced %d points, want 1..16 (job wins over engine default)", n)
	}
}

// TestTimelineDeterministicAcrossEngineParallelism requires byte-identical
// timelines and heatmaps whether the sampled grid runs serialized or at
// full parallelism through the scratch pool.
func TestTimelineDeterministicAcrossEngineParallelism(t *testing.T) {
	mkJobs := func() []Job {
		var jobs []Job
		for _, wl := range []string{"is", "ft"} {
			for _, threads := range []int{1, 4} {
				j := timelineJob(t, wl, workload.Options{Accesses: 15000, Threads: threads, Seed: 3})
				jobs = append(jobs, j)
			}
		}
		// Duplicates exercise concurrent same-key dedup on sampled jobs.
		return append(jobs, jobs...)
	}

	serialRes, err := New(WithParallelism(1)).RunAll(context.Background(), mkJobs())
	if err != nil {
		t.Fatal(err)
	}
	parallelRes, err := New().RunAll(context.Background(), mkJobs())
	if err != nil {
		t.Fatal(err)
	}
	for i := range serialRes {
		if serialRes[i].Timeline == nil || parallelRes[i].Timeline == nil {
			t.Fatalf("job %d: missing timeline", i)
		}
		sb, err := json.Marshal(struct {
			T any
			H any
		}{serialRes[i].Timeline, serialRes[i].WearHeatmap})
		if err != nil {
			t.Fatal(err)
		}
		pb, err := json.Marshal(struct {
			T any
			H any
		}{parallelRes[i].Timeline, parallelRes[i].WearHeatmap})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sb, pb) {
			t.Errorf("job %d: timeline differs across engine parallelism", i)
		}
	}
}
