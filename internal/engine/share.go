package engine

// Cross-job trace sharing. A technology sweep submits many design points
// that differ only in the machine configuration — same workload, same
// generation options — and the result cache cannot help because every
// config is a distinct key. Without sharing, each worker re-runs the
// trace generator for its own job, so an 8-point sweep synthesizes the
// same access sequence 8 times. The sharing layer memoizes generated
// traces per (workload, options) pair: the first job to need one drains
// its source into a pooled buffer, and every other job gets a read-only
// trace.SliceSource cursor over the same backing array, streaming it
// through the normal chunked pipeline. Results are unaffected — a
// SliceSource replays exactly the sequence the generator would have
// produced, and the result-cache key never sees the difference (pinned
// by TestTraceSharingByteIdentical).
//
// Lifetime is refcounted: each simulation holds a reference for its
// duration, and RunAll pins every distinct share key up front so a
// serialized worker pool (parallelism 1) still generates once per sweep
// instead of once per job. When the last reference drops, the buffer
// returns to a sync.Pool for the next sweep.

import (
	"context"
	"fmt"
	"sync"

	"nvmllc/internal/system"
	"nvmllc/internal/trace"
)

// shareBytesPerAccess sizes a share against the limit (one trace.Access).
const shareBytesPerAccess = 16

// WithoutTraceSharing disables cross-job trace memoization: every
// streamed job drives its own source, as before.
func WithoutTraceSharing() Option {
	return func(e *Engine) { e.shareOff = true }
}

// WithTraceShareLimit bounds the materialized size of a shared trace in
// bytes (0 = unlimited, the default). Traces whose declared access count
// would exceed the limit are not materialized; their jobs stream
// directly from their own sources and keep O(chunk) memory.
func WithTraceShareLimit(bytes int64) Option {
	return func(e *Engine) { e.shareLimit = bytes }
}

// shareEntry is one memoized trace. refs counts live holds (running
// simulations plus RunAll pins); the buffer recycles when it reaches
// zero. Materialization is lazy — a pinned entry that no job ends up
// needing never generates anything.
type shareEntry struct {
	once sync.Once
	meta trace.Meta
	accs []trace.Access
	err  error
	refs int
}

// shareKey identifies the trace a job will stream, independent of the
// machine config. Only generator-backed jobs are shareable: a NoCache
// job's provenance is by definition not captured by (Workload,
// TraceOpts), and a materialized job has nothing to generate.
func shareKey(j Job) (string, bool) {
	if j.NoCache || j.Trace != nil || j.Source == nil {
		return "", false
	}
	return fmt.Sprintf("%s|%+v", j.Workload, j.TraceOpts), true
}

// acquireShare takes a reference on the job's share entry, creating it
// on first use. Returns nil when the job does not participate.
func (e *Engine) acquireShare(j Job) *shareEntry {
	if e.shareOff {
		return nil
	}
	key, ok := shareKey(j)
	if !ok {
		return nil
	}
	e.shareMu.Lock()
	defer e.shareMu.Unlock()
	if e.shares == nil {
		e.shares = make(map[string]*shareEntry)
	}
	sh := e.shares[key]
	if sh == nil {
		sh = &shareEntry{}
		e.shares[key] = sh
	}
	sh.refs++
	return sh
}

// releaseShare drops a reference; the last one retires the entry and
// recycles its buffer.
func (e *Engine) releaseShare(key string, sh *shareEntry) {
	e.shareMu.Lock()
	defer e.shareMu.Unlock()
	sh.refs--
	if sh.refs > 0 {
		return
	}
	if cur, ok := e.shares[key]; ok && cur == sh {
		delete(e.shares, key)
	}
	if sh.accs != nil {
		buf := sh.accs[:0]
		sh.accs = nil
		e.tracePool.Put(&buf)
	}
}

// pinShares holds a reference on every distinct share key in a job batch
// for the batch's duration, so amortization survives any worker-pool
// shape (including fully serialized execution, where per-job refcounts
// alone would drop to zero between jobs and regenerate each time).
func (e *Engine) pinShares(jobs []Job) func() {
	if e.shareOff {
		return func() {}
	}
	type pin struct {
		key string
		sh  *shareEntry
	}
	var pins []pin
	seen := make(map[string]bool)
	for _, j := range jobs {
		key, ok := shareKey(j)
		if !ok || seen[key] {
			continue
		}
		seen[key] = true
		if sh := e.acquireShare(j); sh != nil {
			pins = append(pins, pin{key, sh})
		}
	}
	return func() {
		for _, p := range pins {
			e.releaseShare(p.key, p.sh)
		}
	}
}

// materialize drains src into a pooled buffer exactly once per entry;
// concurrent and later callers wait on the Once and reuse the slice.
// It reports whether this call performed the generation (its caller
// abandons src either way — sources are cheap to construct, generation
// is the expensive part and happens only here).
func (e *Engine) materialize(sh *shareEntry, src trace.ChunkSource) bool {
	generated := false
	sh.once.Do(func() {
		generated = true
		meta := src.Meta()
		n := meta.Accesses
		var buf []trace.Access
		if p, _ := e.tracePool.Get().(*[]trace.Access); p != nil {
			buf = *p
		}
		if int64(cap(buf)) < n {
			buf = make([]trace.Access, n)
		}
		buf = buf[:n]
		var pos int64
		for pos < n {
			c, err := src.ReadChunk(buf[pos:])
			if err != nil {
				sh.err = err
				return
			}
			if c == 0 {
				sh.err = fmt.Errorf("engine: trace %s ended after %d of %d declared accesses", meta.Name, pos, n)
				return
			}
			pos += int64(c)
		}
		sh.meta = meta
		sh.accs = buf
		e.traceGens.Add(1)
	})
	return generated
}

// runSource simulates a streamed job, through the sharing layer when the
// job is eligible and the trace fits the share limit.
func (e *Engine) runSource(ctx context.Context, j Job, scratch *system.Scratch) (*system.Result, uint64, error) {
	src, err := j.Source()
	if err != nil {
		return nil, 0, err
	}
	accesses := uint64(src.Meta().Accesses)
	key, ok := shareKey(j)
	if e.shareOff || !ok ||
		(e.shareLimit > 0 && src.Meta().Accesses*shareBytesPerAccess > e.shareLimit) {
		res, err := system.RunStreamWith(ctx, j.Config, src, scratch)
		return res, accesses, err
	}
	sh := e.acquireShare(j)
	defer e.releaseShare(key, sh)
	if !e.materialize(sh, src) && sh.err == nil {
		e.traceShared.Add(1)
	}
	if sh.err != nil {
		return nil, 0, sh.err
	}
	shared, err := trace.NewSliceSource(sh.meta, sh.accs)
	if err != nil {
		return nil, 0, err
	}
	res, err := system.RunStreamWith(ctx, j.Config, shared, scratch)
	return res, accesses, err
}
