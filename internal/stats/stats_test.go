package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanAndStdDev(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Errorf("Mean = %g", Mean([]float64{1, 2, 3, 4}))
	}
	if !almost(StdDev([]float64{2, 2, 2}), 0) {
		t.Error("StdDev of constant != 0")
	}
	if !almost(StdDev([]float64{1, 3}), 1) {
		t.Errorf("StdDev = %g, want 1", StdDev([]float64{1, 3}))
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	r, ok, err := Pearson(x, y)
	if err != nil || !ok || !almost(r, 1) {
		t.Errorf("Pearson = %g, %v, %v; want 1", r, ok, err)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, ok, err = Pearson(x, neg)
	if err != nil || !ok || !almost(r, -1) {
		t.Errorf("Pearson = %g, %v, %v; want -1", r, ok, err)
	}
}

func TestPearsonUncorrelated(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{1, -1, -1, 1} // orthogonal to linear trend
	r, ok, err := Pearson(x, y)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if math.Abs(r) > 0.01 {
		t.Errorf("Pearson = %g, want ≈0", r)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if _, _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Error("single sample accepted")
	}
	if _, _, err := Pearson([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	r, ok, err := Pearson([]float64{3, 3, 3}, []float64{1, 2, 3})
	if err != nil || ok || r != 0 {
		t.Errorf("constant sample: r=%g ok=%v err=%v, want 0,false,nil", r, ok, err)
	}
}

func TestPearsonBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 2
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		r, ok, err := Pearson(x, y)
		if err != nil {
			return false
		}
		if !ok {
			return true
		}
		return r >= -1 && r <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPearsonInvariantToAffineTransforms(t *testing.T) {
	x := []float64{1, 5, 2, 8, 3}
	y := []float64{2, 3, 9, 1, 4}
	r1, _, _ := Pearson(x, y)
	scaled := make([]float64, len(x))
	for i := range x {
		scaled[i] = 3*x[i] + 7
	}
	r2, _, _ := Pearson(scaled, y)
	if !almost(r1, r2) {
		t.Errorf("affine transform changed r: %g vs %g", r1, r2)
	}
}

func TestAbsPearson(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{3, 2, 1}
	a, ok, err := AbsPearson(x, y)
	if err != nil || !ok || !almost(a, 1) {
		t.Errorf("AbsPearson = %g, want 1", a)
	}
}

func TestRanks(t *testing.T) {
	got := Ranks([]float64{10, 30, 20})
	want := []float64{1, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Ranks[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	// Ties share an average rank.
	got = Ranks([]float64{5, 1, 5})
	if got[1] != 1 || got[0] != 2.5 || got[2] != 2.5 {
		t.Errorf("tied ranks = %v", got)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// A nonlinear but monotone relation has Spearman 1.
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 8, 27, 64, 125}
	rho, ok, err := Spearman(x, y)
	if err != nil || !ok || !almost(rho, 1) {
		t.Errorf("Spearman = %g, want 1", rho)
	}
}

func TestNormalize(t *testing.T) {
	out, err := Normalize([]float64{2, 4, 6}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{1, 2, 3} {
		if out[i] != want {
			t.Errorf("Normalize[%d] = %g", i, out[i])
		}
	}
	if _, err := Normalize([]float64{1}, 0); err == nil {
		t.Error("zero base accepted")
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 4})
	if err != nil || !almost(g, 2) {
		t.Errorf("GeoMean = %g, %v; want 2", g, err)
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("empty GeoMean accepted")
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Error("negative GeoMean accepted")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil || lo != -1 || hi != 7 {
		t.Errorf("MinMax = %g, %g, %v", lo, hi, err)
	}
	if _, _, err := MinMax(nil); err == nil {
		t.Error("empty MinMax accepted")
	}
}
