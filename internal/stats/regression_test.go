package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitLinearExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 2x + 3
	l, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(l.Slope, 2) || !almost(l.Intercept, 3) {
		t.Errorf("fit = %+v, want 2x+3", l)
	}
	if !almost(l.R2, 1) {
		t.Errorf("R² = %g, want 1", l.R2)
	}
	if !almost(l.Predict(10), 23) {
		t.Errorf("Predict(10) = %g", l.Predict(10))
	}
	rmse, err := l.RMSE(x, y)
	if err != nil || !almost(rmse, 0) {
		t.Errorf("RMSE = %g, %v", rmse, err)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Error("single sample accepted")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := FitLinear([]float64{3, 3}, []float64{1, 2}); err == nil {
		t.Error("constant predictor accepted")
	}
}

func TestFitLinearConstantTarget(t *testing.T) {
	l, err := FitLinear([]float64{1, 2, 3}, []float64{7, 7, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(l.Slope, 0) || !almost(l.Intercept, 7) || !almost(l.R2, 1) {
		t.Errorf("constant-target fit = %+v", l)
	}
}

func TestResiduals(t *testing.T) {
	l := Linear{Slope: 1, Intercept: 0}
	res, err := l.Residuals([]float64{1, 2}, []float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res[0], 1) || !almost(res[1], 0) {
		t.Errorf("residuals = %v", res)
	}
	if _, err := l.Residuals([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched residuals accepted")
	}
}

func TestFitLinearR2BoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 3
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 10
			y[i] = 2*x[i] + rng.NormFloat64()
		}
		l, err := FitLinear(x, y)
		if err != nil {
			return true // degenerate draw
		}
		if math.IsNaN(l.R2) || l.R2 < -1e-9 || l.R2 > 1+1e-9 {
			return false
		}
		// Least squares: residuals sum ≈ 0.
		res, err := l.Residuals(x, y)
		if err != nil {
			return false
		}
		var s float64
		for _, r := range res {
			s += r
		}
		return math.Abs(s) < 1e-6*float64(n)*10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
