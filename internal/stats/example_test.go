package stats_test

import (
	"fmt"

	"nvmllc/internal/stats"
)

// ExamplePearson computes the linear correlation the paper's framework
// uses to rank workload features.
func ExamplePearson() {
	entropy := []float64{11.86, 8.95, 8.61} // H_wg of the AI workloads
	energy := []float64{0.10, 0.055, 0.048}
	r, ok, err := stats.Pearson(entropy, energy)
	if err != nil || !ok {
		panic("correlation undefined")
	}
	fmt.Printf("r = %.2f\n", r)
	// Output:
	// r = 1.00
}
