// Package stats provides the small statistical toolkit behind the paper's
// workload-characterization framework (Section VI): Pearson linear
// correlation between architecture-agnostic feature vectors and measured
// performance/energy, plus normalization and summary helpers.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Pearson computes the linear correlation coefficient between two equal-
// length samples. It returns an error for mismatched or too-short inputs;
// if either sample is constant the correlation is undefined and 0 is
// returned with ok=false.
func Pearson(x, y []float64) (r float64, ok bool, err error) {
	if len(x) != len(y) {
		return 0, false, fmt.Errorf("stats: mismatched lengths %d and %d", len(x), len(y))
	}
	if len(x) < 2 {
		return 0, false, fmt.Errorf("stats: need at least 2 samples, have %d", len(x))
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, false, nil
	}
	r = sxy / math.Sqrt(sxx*syy)
	// Clamp rounding spill.
	if r > 1 {
		r = 1
	}
	if r < -1 {
		r = -1
	}
	return r, true, nil
}

// AbsPearson returns |r| from Pearson, the magnitude the paper's heatmaps
// display.
func AbsPearson(x, y []float64) (float64, bool, error) {
	r, ok, err := Pearson(x, y)
	return math.Abs(r), ok, err
}

// Spearman computes the rank correlation coefficient: Pearson over ranks,
// with average ranks for ties. Used by the reproduction experiments to
// compare orderings against the paper's tables.
func Spearman(x, y []float64) (float64, bool, error) {
	if len(x) != len(y) {
		return 0, false, fmt.Errorf("stats: mismatched lengths %d and %d", len(x), len(y))
	}
	return Pearson(Ranks(x), Ranks(y))
}

// Ranks converts values to 1-based ranks, assigning tied values their
// average rank.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Normalize divides every element by base, the paper's
// "normalized-to-SRAM" presentation. It returns an error if base is zero.
func Normalize(xs []float64, base float64) ([]float64, error) {
	if base == 0 {
		return nil, fmt.Errorf("stats: normalization base is zero")
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / base
	}
	return out, nil
}

// GeoMean returns the geometric mean of positive values; it returns an
// error if any value is non-positive.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: geometric mean of empty slice")
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geometric mean needs positive values, got %g", x)
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs))), nil
}

// MinMax returns the extrema of a non-empty slice.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, fmt.Errorf("stats: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}
