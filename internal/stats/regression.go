package stats

import (
	"fmt"
	"math"
)

// Linear holds a simple least-squares linear fit y ≈ Slope·x + Intercept.
type Linear struct {
	Slope, Intercept float64
	// R2 is the coefficient of determination of the fit.
	R2 float64
	// N is the number of samples fitted.
	N int
}

// FitLinear computes the least-squares line through (x, y).
// It needs at least two samples and a non-constant x.
func FitLinear(x, y []float64) (Linear, error) {
	if len(x) != len(y) {
		return Linear{}, fmt.Errorf("stats: mismatched lengths %d and %d", len(x), len(y))
	}
	if len(x) < 2 {
		return Linear{}, fmt.Errorf("stats: need at least 2 samples, have %d", len(x))
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Linear{}, fmt.Errorf("stats: constant predictor")
	}
	l := Linear{N: len(x)}
	l.Slope = sxy / sxx
	l.Intercept = my - l.Slope*mx
	if syy == 0 {
		l.R2 = 1 // constant target perfectly "explained"
	} else {
		l.R2 = (sxy * sxy) / (sxx * syy)
	}
	return l, nil
}

// Predict evaluates the fit at x.
func (l Linear) Predict(x float64) float64 { return l.Slope*x + l.Intercept }

// Residuals returns y - ŷ for each sample.
func (l Linear) Residuals(x, y []float64) ([]float64, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("stats: mismatched lengths %d and %d", len(x), len(y))
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = y[i] - l.Predict(x[i])
	}
	return out, nil
}

// RMSE is the root-mean-square error of the fit over the samples.
func (l Linear) RMSE(x, y []float64) (float64, error) {
	res, err := l.Residuals(x, y)
	if err != nil {
		return 0, err
	}
	var s float64
	for _, r := range res {
		s += r * r
	}
	return math.Sqrt(s / float64(len(res))), nil
}
