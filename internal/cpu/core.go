// Package cpu provides the interval-style out-of-order core timing model
// used in place of Sniper's detailed Gainestown core. Each core retires
// instructions at a base CPI and stalls on long-latency loads, with
// memory-level parallelism (MLP) overlapping a window of outstanding
// misses, bounded by the 48-entry load queue of the modeled Xeon x5550.
// Stores retire through the store queue off the critical path, matching the
// paper's observation that LLC writes do not appear in execution time.
package cpu

import "fmt"

// Params configures a core.
type Params struct {
	// ClockGHz is the core frequency (Gainestown: 2.66).
	ClockGHz float64
	// BaseCPI is the no-miss cycles per instruction of the OoO pipeline.
	BaseCPI float64
	// MLP is the effective number of overlapped outstanding misses; long
	// load latencies are divided by it.
	MLP float64
	// ROBEntries, LoadQueue, StoreQueue document the modeled window
	// (128/48/32 for Gainestown); LoadQueue caps MLP.
	ROBEntries, LoadQueue, StoreQueue int
}

// Gainestown returns the paper's core parameters (Table IV).
func Gainestown() Params {
	return Params{
		ClockGHz:   2.66,
		BaseCPI:    1.0,
		MLP:        4,
		ROBEntries: 128,
		LoadQueue:  48,
		StoreQueue: 32,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.ClockGHz <= 0 {
		return fmt.Errorf("cpu: clock %g GHz must be positive", p.ClockGHz)
	}
	if p.BaseCPI <= 0 {
		return fmt.Errorf("cpu: base CPI %g must be positive", p.BaseCPI)
	}
	if p.MLP < 1 {
		return fmt.Errorf("cpu: MLP %g must be ≥ 1", p.MLP)
	}
	if p.ROBEntries <= 0 || p.LoadQueue <= 0 || p.StoreQueue <= 0 {
		return fmt.Errorf("cpu: ROB/LQ/SQ must be positive")
	}
	return nil
}

// CycleNS returns the cycle time in ns.
func (p Params) CycleNS() float64 { return 1.0 / p.ClockGHz }

// EffectiveMLP is the overlap factor, bounded by the load queue.
func (p Params) EffectiveMLP() float64 {
	if lq := float64(p.LoadQueue); p.MLP > lq {
		return lq
	}
	return p.MLP
}

// Core tracks one core's local time and retirement statistics.
type Core struct {
	params Params
	// TimeNS is the core-local clock.
	timeNS float64
	// instructions retired so far.
	instructions uint64
	// memStallNS accumulates load-stall time.
	memStallNS float64
}

// NewCore builds a core at time zero.
func NewCore(p Params) (*Core, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Core{params: p}, nil
}

// Params returns the core's configuration.
func (c *Core) Params() Params { return c.params }

// TimeNS returns the core-local clock.
func (c *Core) TimeNS() float64 { return c.timeNS }

// Instructions returns retired instructions.
func (c *Core) Instructions() uint64 { return c.instructions }

// MemStallNS returns accumulated load-stall time.
func (c *Core) MemStallNS() float64 { return c.memStallNS }

// Retire advances the core by n instructions of pipelined work.
func (c *Core) Retire(n uint64) {
	c.instructions += n
	c.timeNS += float64(n) * c.params.BaseCPI * c.params.CycleNS()
}

// StallLoad charges a load that completes at completeNS on the core. The
// exposed stall is the remaining latency divided by the MLP overlap
// factor. Loads completing in the past cost nothing.
func (c *Core) StallLoad(completeNS float64) {
	if completeNS <= c.timeNS {
		return
	}
	stall := (completeNS - c.timeNS) / c.params.EffectiveMLP()
	c.timeNS += stall
	c.memStallNS += stall
}

// CPI returns the realized cycles per instruction.
func (c *Core) CPI() float64 {
	if c.instructions == 0 {
		return 0
	}
	return c.timeNS / c.params.CycleNS() / float64(c.instructions)
}
