package cpu

import (
	"math"
	"testing"
)

func TestGainestownParams(t *testing.T) {
	p := Gainestown()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.ClockGHz != 2.66 || p.ROBEntries != 128 || p.LoadQueue != 48 || p.StoreQueue != 32 {
		t.Errorf("Gainestown = %+v, want Table IV values", p)
	}
	if math.Abs(p.CycleNS()-1/2.66) > 1e-12 {
		t.Errorf("CycleNS = %g", p.CycleNS())
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{ClockGHz: 0, BaseCPI: 1, MLP: 4, ROBEntries: 1, LoadQueue: 1, StoreQueue: 1},
		{ClockGHz: 1, BaseCPI: 0, MLP: 4, ROBEntries: 1, LoadQueue: 1, StoreQueue: 1},
		{ClockGHz: 1, BaseCPI: 1, MLP: 0.5, ROBEntries: 1, LoadQueue: 1, StoreQueue: 1},
		{ClockGHz: 1, BaseCPI: 1, MLP: 4, ROBEntries: 0, LoadQueue: 1, StoreQueue: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, p)
		}
	}
}

func TestEffectiveMLPBoundedByLoadQueue(t *testing.T) {
	p := Gainestown()
	p.MLP = 1000
	if got := p.EffectiveMLP(); got != 48 {
		t.Errorf("EffectiveMLP = %g, want load-queue bound 48", got)
	}
	p.MLP = 4
	if got := p.EffectiveMLP(); got != 4 {
		t.Errorf("EffectiveMLP = %g, want 4", got)
	}
}

func TestRetireAdvancesTime(t *testing.T) {
	c, err := NewCore(Gainestown())
	if err != nil {
		t.Fatal(err)
	}
	c.Retire(1000)
	wantNS := 1000 * 1.0 / 2.66
	if math.Abs(c.TimeNS()-wantNS) > 1e-9 {
		t.Errorf("TimeNS = %g, want %g", c.TimeNS(), wantNS)
	}
	if c.Instructions() != 1000 {
		t.Errorf("Instructions = %d", c.Instructions())
	}
	if math.Abs(c.CPI()-1.0) > 1e-9 {
		t.Errorf("CPI = %g, want 1.0", c.CPI())
	}
}

func TestStallLoadDividesByMLP(t *testing.T) {
	p := Gainestown() // MLP 4
	c, _ := NewCore(p)
	c.StallLoad(100) // 100 ns remaining latency / 4
	if math.Abs(c.TimeNS()-25) > 1e-9 {
		t.Errorf("TimeNS after stall = %g, want 25", c.TimeNS())
	}
	if math.Abs(c.MemStallNS()-25) > 1e-9 {
		t.Errorf("MemStallNS = %g, want 25", c.MemStallNS())
	}
}

func TestStallLoadInPastIsFree(t *testing.T) {
	c, _ := NewCore(Gainestown())
	c.Retire(1000)
	before := c.TimeNS()
	c.StallLoad(before - 50)
	if c.TimeNS() != before {
		t.Errorf("past completion advanced time from %g to %g", before, c.TimeNS())
	}
	if c.MemStallNS() != 0 {
		t.Error("past completion charged stall time")
	}
}

func TestCPIIncludesStalls(t *testing.T) {
	c, _ := NewCore(Gainestown())
	c.Retire(100)
	c.StallLoad(c.TimeNS() + 400) // +100ns at MLP 4
	if c.CPI() <= 1.0 {
		t.Errorf("CPI with stalls = %g, want > base 1.0", c.CPI())
	}
}

func TestCPIZeroInstructions(t *testing.T) {
	c, _ := NewCore(Gainestown())
	if c.CPI() != 0 {
		t.Errorf("CPI of idle core = %g", c.CPI())
	}
}

func TestNewCoreRejectsBadParams(t *testing.T) {
	if _, err := NewCore(Params{}); err == nil {
		t.Error("NewCore accepted zero params")
	}
}
