package system

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"nvmllc/internal/reference"
	"nvmllc/internal/trace"
)

// streamTrace builds a sequential read stream touching `lines` distinct
// cache lines repeatedly.
func streamTrace(name string, lines, accesses int, writeEvery int, threads int) *trace.Trace {
	tr := &trace.Trace{Name: name, Threads: threads}
	for i := 0; i < accesses; i++ {
		kind := trace.Read
		if writeEvery > 0 && i%writeEvery == 0 {
			kind = trace.Write
		}
		tr.Accesses = append(tr.Accesses, trace.Access{
			Addr: uint64(i%lines) * 64,
			Kind: kind,
			Tid:  uint8(i % threads),
		})
	}
	tr.InstrCount = uint64(accesses) * 4
	return tr
}

func sramConfig() Config {
	return Gainestown(reference.SRAMBaseline())
}

func TestRunSmallTrace(t *testing.T) {
	tr := streamTrace("small", 100, 10000, 5, 1)
	r, err := Run(context.Background(), sramConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Instructions != tr.InstrCount {
		t.Errorf("instructions = %d, want %d", r.Instructions, tr.InstrCount)
	}
	if r.TimeNS <= 0 {
		t.Error("non-positive execution time")
	}
	if r.LLCEnergyJ() <= 0 {
		t.Error("non-positive LLC energy")
	}
	if r.Workload != "small" || r.LLCName != "SRAM" {
		t.Errorf("labels = %q/%q", r.Workload, r.LLCName)
	}
}

func TestValidationErrors(t *testing.T) {
	tr := streamTrace("v", 10, 100, 0, 1)
	cfg := sramConfig()
	cfg.Cores = 0
	if _, err := Run(context.Background(), cfg, tr); err == nil {
		t.Error("accepted zero cores")
	}
	cfg = sramConfig()
	cfg.LLCBanks = 0
	if _, err := Run(context.Background(), cfg, tr); err == nil {
		t.Error("accepted zero banks")
	}
	// More threads than cores.
	tr8 := streamTrace("v8", 10, 100, 0, 8)
	cfg = sramConfig() // 4 cores
	if _, err := Run(context.Background(), cfg, tr8); err == nil {
		t.Error("accepted 8 threads on 4 cores")
	}
	// Invalid trace.
	bad := &trace.Trace{Name: "", Threads: 1}
	if _, err := Run(context.Background(), sramConfig(), bad); err == nil {
		t.Error("accepted invalid trace")
	}
}

func TestCacheFittingWorkloadHitsLLCRarely(t *testing.T) {
	// 100 lines fit in L1 (512 lines): after warmup everything hits L1,
	// so the LLC sees only cold traffic.
	tr := streamTrace("fits-l1", 100, 50000, 0, 1)
	r, err := Run(context.Background(), sramConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.LLC.Accesses() > 200 {
		t.Errorf("LLC accesses = %d, want ≈100 cold misses", r.LLC.Accesses())
	}
	if r.L1D.MissRate() > 0.01 {
		t.Errorf("L1D miss rate = %g, want ≈0", r.L1D.MissRate())
	}
}

func TestLLCCapacityEffect(t *testing.T) {
	// A working set of 8MB misses hard in a 2MB LLC but fits a 32MB one.
	lines := (8 << 20) / 64
	tr := streamTrace("ws8mb", lines, 4*lines, 0, 1)

	small, err := Run(context.Background(), Gainestown(reference.SRAMBaseline()), tr)
	if err != nil {
		t.Fatal(err)
	}
	hay, err := reference.ModelByName(reference.FixedAreaModels(), "Hayakawa_R")
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(context.Background(), Gainestown(hay), tr)
	if err != nil {
		t.Fatal(err)
	}
	if big.LLC.Misses >= small.LLC.Misses {
		t.Errorf("32MB LLC misses %d not below 2MB %d", big.LLC.Misses, small.LLC.Misses)
	}
	if big.TimeNS >= small.TimeNS {
		t.Errorf("32MB LLC time %g not below 2MB %g", big.TimeNS, small.TimeNS)
	}
}

func TestWritesOffCriticalPath(t *testing.T) {
	// With contention off (the paper's assumption), Kang_P's 301ns writes
	// must not slow the system much relative to SRAM on a write-heavy
	// working set that thrashes the LLC.
	lines := (4 << 20) / 64
	tr := streamTrace("writeheavy", lines, 2*lines, 2, 1)

	sram, err := Run(context.Background(), Gainestown(reference.SRAMBaseline()), tr)
	if err != nil {
		t.Fatal(err)
	}
	kang, err := reference.ModelByName(reference.FixedCapacityModels(), "Kang_P")
	if err != nil {
		t.Fatal(err)
	}
	kr, err := Run(context.Background(), Gainestown(kang), tr)
	if err != nil {
		t.Fatal(err)
	}
	slowdown := kr.TimeNS / sram.TimeNS
	if slowdown > 1.10 {
		t.Errorf("Kang_P slowdown = %.3f with writes off critical path, want ≤ 1.10", slowdown)
	}
	// But its write energy must be catastrophic (the paper's key result).
	if kr.LLCDynamicJ < 10*sram.LLCDynamicJ {
		t.Errorf("Kang_P dynamic energy %g not ≫ SRAM %g", kr.LLCDynamicJ, sram.LLCDynamicJ)
	}
}

func TestWriteContentionAblation(t *testing.T) {
	// Turning contention on must slow a write-heavy workload on a slow-
	// write technology — the effect the paper says its simulator hides.
	lines := (4 << 20) / 64
	tr := streamTrace("ablate", lines, 2*lines, 2, 1)
	kang, err := reference.ModelByName(reference.FixedCapacityModels(), "Kang_P")
	if err != nil {
		t.Fatal(err)
	}
	off, err := Run(context.Background(), Gainestown(kang), tr)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Gainestown(kang)
	cfg.ModelWriteContention = true
	on, err := Run(context.Background(), cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if on.TimeNS <= off.TimeNS*1.2 {
		t.Errorf("write contention on: %g ns vs off: %g ns; expected ≥20%% slowdown", on.TimeNS, off.TimeNS)
	}
}

func TestLeakageDominatesForSRAMOnLongRuns(t *testing.T) {
	tr := streamTrace("leak", 1000, 100000, 0, 1)
	r, err := Run(context.Background(), sramConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.LLCLeakageJ <= r.LLCDynamicJ {
		t.Errorf("SRAM leakage %g should dominate dynamic %g on an LLC-quiet run", r.LLCLeakageJ, r.LLCDynamicJ)
	}
}

func TestEnergyAccountingAdditive(t *testing.T) {
	tr := streamTrace("energy", 100000, 200000, 3, 1)
	kang, _ := reference.ModelByName(reference.FixedCapacityModels(), "Kang_P")
	r, err := Run(context.Background(), Gainestown(kang), tr)
	if err != nil {
		t.Fatal(err)
	}
	m := kang
	wantDyn := (float64(r.LLC.Hits)*m.HitEnergyNJ +
		float64(r.LLC.Misses)*m.MissEnergyNJ +
		float64(r.LLC.Writes)*m.WriteEnergyNJ) * 1e-9
	if math.Abs(wantDyn-r.LLCDynamicJ) > 1e-12+1e-9*wantDyn {
		t.Errorf("dynamic energy %g != recomputed %g", r.LLCDynamicJ, wantDyn)
	}
	wantLeak := m.LeakageW * r.TimeNS * 1e-9
	if math.Abs(wantLeak-r.LLCLeakageJ) > 1e-12+1e-9*wantLeak {
		t.Errorf("leakage energy %g != recomputed %g", r.LLCLeakageJ, wantLeak)
	}
	if r.LLCEnergyJ() != r.LLCDynamicJ+r.LLCLeakageJ {
		t.Error("total energy not additive")
	}
	if r.ED2P() != r.LLCEnergyJ()*r.Seconds()*r.Seconds() {
		t.Error("ED2P inconsistent")
	}
	if r.EDP() != r.LLCEnergyJ()*r.Seconds() {
		t.Error("EDP inconsistent")
	}
}

func TestMultiThreadedSharesLLC(t *testing.T) {
	// 4 threads × disjoint 1MB working sets = 4MB total: thrashes a 2MB
	// LLC; each thread alone fits.
	mk := func(threads int) *trace.Trace {
		tr := &trace.Trace{Name: "mt", Threads: threads}
		perLines := (1 << 20) / 64
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 400000; i++ {
			tid := i % threads
			line := rng.Intn(perLines)
			addr := uint64(tid)<<30 + uint64(line)*64
			tr.Accesses = append(tr.Accesses, trace.Access{Addr: addr, Kind: trace.Read, Tid: uint8(tid)})
		}
		tr.InstrCount = uint64(len(tr.Accesses)) * 4
		return tr
	}
	one, err := Run(context.Background(), sramConfig(), mk(1))
	if err != nil {
		t.Fatal(err)
	}
	four, err := Run(context.Background(), sramConfig(), mk(4))
	if err != nil {
		t.Fatal(err)
	}
	if four.LLC.Misses <= one.LLC.Misses {
		t.Errorf("4-thread LLC misses %d not above 1-thread %d (no capacity pressure)", four.LLC.Misses, one.LLC.Misses)
	}
}

func TestMultiCoreSpeedsUpParallelWork(t *testing.T) {
	// The same total work split over 4 threads should finish much faster
	// than on one core.
	mk := func(threads int) *trace.Trace {
		tr := &trace.Trace{Name: "scale", Threads: threads}
		for i := 0; i < 100000; i++ {
			tr.Accesses = append(tr.Accesses, trace.Access{
				Addr: uint64(i) * 64,
				Kind: trace.Read,
				Tid:  uint8(i % threads),
			})
		}
		tr.InstrCount = uint64(len(tr.Accesses)) * 4
		return tr
	}
	one, err := Run(context.Background(), sramConfig(), mk(1))
	if err != nil {
		t.Fatal(err)
	}
	four, err := Run(context.Background(), sramConfig(), mk(4))
	if err != nil {
		t.Fatal(err)
	}
	speedup := one.TimeNS / four.TimeNS
	if speedup < 2 {
		t.Errorf("4-core speedup = %.2f, want ≥ 2", speedup)
	}
}

func TestLLCWriteCountsFillsAndWritebacks(t *testing.T) {
	// Read-only thrashing working set: every LLC miss produces a fill
	// (write); no writebacks since nothing is dirty.
	lines := (4 << 20) / 64
	tr := streamTrace("fills", lines, lines, 0, 1)
	r, err := Run(context.Background(), sramConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.LLC.Writes != r.LLC.Misses {
		t.Errorf("read-only: LLC writes %d != misses %d", r.LLC.Writes, r.LLC.Misses)
	}
	// With stores, writebacks add to the count.
	trw := streamTrace("fills+wb", lines, 4*lines, 2, 1)
	rw, err := Run(context.Background(), sramConfig(), trw)
	if err != nil {
		t.Fatal(err)
	}
	if rw.LLC.Writes <= rw.LLC.Misses {
		t.Errorf("write-heavy: LLC writes %d should exceed misses %d (writebacks)", rw.LLC.Writes, rw.LLC.Misses)
	}
}

func TestMPKIReported(t *testing.T) {
	lines := (8 << 20) / 64
	tr := streamTrace("mpki", lines, lines, 0, 1)
	r, err := Run(context.Background(), sramConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	// Every access cold-misses: 1 miss per 4 instructions = 250 MPKI.
	if math.Abs(r.LLCMPKI()-250) > 10 {
		t.Errorf("MPKI = %g, want ≈250", r.LLCMPKI())
	}
}

func TestIfetchGoesThroughL1I(t *testing.T) {
	tr := &trace.Trace{Name: "ifetch", Threads: 1}
	for i := 0; i < 10000; i++ {
		tr.Accesses = append(tr.Accesses, trace.Access{Addr: uint64(i%64) * 64, Kind: trace.Ifetch})
	}
	tr.InstrCount = uint64(len(tr.Accesses))
	r, err := Run(context.Background(), sramConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.L1I.Accesses() != 10000 {
		t.Errorf("L1I accesses = %d, want 10000", r.L1I.Accesses())
	}
	if r.L1D.Accesses() != 0 {
		t.Errorf("L1D accesses = %d, want 0", r.L1D.Accesses())
	}
}

func TestDeterminism(t *testing.T) {
	tr := streamTrace("det", 5000, 50000, 7, 2)
	a, err := Run(context.Background(), sramConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), sramConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.TimeNS != b.TimeNS || a.LLC != b.LLC || a.LLCDynamicJ != b.LLCDynamicJ {
		t.Error("simulation is not deterministic")
	}
}

func TestWithCores(t *testing.T) {
	cfg := sramConfig().WithCores(16)
	if cfg.Cores != 16 {
		t.Errorf("WithCores = %d", cfg.Cores)
	}
}
