package system

// Hybrid SRAM/NVM LLC with write-aware placement and migration, the
// technique of the paper's reference [7] (Wang et al., HPCA 2014:
// "Adaptive placement and migration policy for an STT-RAM-based hybrid
// cache") and the LAP work [8]. Each set is split into a few SRAM ways
// and many NVM ways: load fills go to the dense NVM partition,
// store-allocations and write-hot lines live in the SRAM partition, so
// the expensive NVM writes are absorbed by SRAM while the NVM provides
// capacity.

import (
	"fmt"

	"nvmllc/internal/cache"
	"nvmllc/internal/nvsim"
)

// HybridConfig describes a hybrid LLC.
type HybridConfig struct {
	// SRAM and NVM are the partition technologies (typically the SRAM
	// baseline and one Table III NVM).
	SRAM, NVM nvsim.LLCModel
	// SRAMWays of the total Config.LLCWays are SRAM; the rest are NVM.
	SRAMWays int
	// MigrationThreshold is the number of NVM write-hits after which a
	// line migrates to the SRAM partition (default 2).
	MigrationThreshold int
}

// Validate checks the hybrid configuration against the machine config.
func (h *HybridConfig) Validate(totalWays int) error {
	if err := h.SRAM.Validate(); err != nil {
		return err
	}
	if err := h.NVM.Validate(); err != nil {
		return err
	}
	if h.SRAMWays <= 0 || h.SRAMWays >= totalWays {
		return fmt.Errorf("system: hybrid SRAM ways %d must be in (0,%d)", h.SRAMWays, totalWays)
	}
	return nil
}

func (h *HybridConfig) threshold() int {
	if h.MigrationThreshold <= 0 {
		return 2
	}
	return h.MigrationThreshold
}

// HybridStats counts hybrid-LLC events by partition.
type HybridStats struct {
	// SRAMHits/NVMHits are demand hits by partition.
	SRAMHits, NVMHits uint64
	// SRAMWrites/NVMWrites are data-array writes by partition (fills,
	// writebacks, migrations).
	SRAMWrites, NVMWrites uint64
	// Misses are demand misses of both partitions.
	Misses uint64
	// Migrations counts NVM→SRAM promotions of write-hot lines;
	// Demotions counts SRAM→NVM spills on SRAM pressure.
	Migrations, Demotions uint64
}

// hybridLLC is the runtime engine: two per-set partitions with the same
// set count sharing one line-address space.
type hybridLLC struct {
	cfg        *HybridConfig
	sram, nvm  *cache.Cache
	writeHeat  map[uint64]int
	stats      HybridStats
	dynamicNJ  float64
	totalWays  int
	threshold  int
	sets       int
	capacityBy int64
}

// newHybridLLC builds the partitions: the NVM model's capacity defines the
// set count at the machine's total associativity; each partition gets its
// share of ways at that set count. Both partition configs go through
// cache.Config.Validate before construction, so a bad hybrid geometry is
// reported against the partition that causes it rather than surfacing as
// a generic cache.New error.
func newHybridLLC(h *HybridConfig, blockBytes, totalWays int, layout cache.Layout) (*hybridLLC, error) {
	if err := h.Validate(totalWays); err != nil {
		return nil, err
	}
	sets := h.NVM.CapacityBytes / int64(blockBytes) / int64(totalWays)
	if sets <= 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("system: hybrid set count %d must be a positive power of two", sets)
	}
	nvmWays := totalWays - h.SRAMWays
	sramCfg := cache.Config{
		Name: "LLC-SRAM", CapacityBytes: sets * int64(h.SRAMWays) * int64(blockBytes),
		BlockBytes: blockBytes, Ways: h.SRAMWays, Layout: layout,
	}
	nvmCfg := cache.Config{
		Name: "LLC-NVM", CapacityBytes: sets * int64(nvmWays) * int64(blockBytes),
		BlockBytes: blockBytes, Ways: nvmWays, Layout: layout,
	}
	for _, cfg := range []cache.Config{sramCfg, nvmCfg} {
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("system: hybrid partition: %w", err)
		}
	}
	sram, err := cache.New(sramCfg)
	if err != nil {
		return nil, err
	}
	nvm, err := cache.New(nvmCfg)
	if err != nil {
		return nil, err
	}
	return &hybridLLC{
		cfg: h, sram: sram, nvm: nvm,
		writeHeat: make(map[uint64]int),
		totalWays: totalWays, threshold: h.threshold(),
		sets:       int(sets),
		capacityBy: sets * int64(totalWays) * int64(blockBytes),
	}, nil
}

// lookup services a demand access without allocating. It returns whether
// it hit and the access latency (on a miss, the tag-check latency).
func (hl *hybridLLC) lookup(line uint64) (hit bool, latencyNS float64) {
	if hl.sram.Touch(line, false) {
		hl.stats.SRAMHits++
		hl.dynamicNJ += hl.cfg.SRAM.HitEnergyNJ
		return true, hl.cfg.SRAM.TagLatencyNS + hl.cfg.SRAM.ReadLatencyNS
	}
	if hl.nvm.Touch(line, false) {
		hl.stats.NVMHits++
		hl.dynamicNJ += hl.cfg.NVM.HitEnergyNJ
		return true, hl.cfg.NVM.TagLatencyNS + hl.cfg.NVM.ReadLatencyNS
	}
	hl.stats.Misses++
	hl.dynamicNJ += hl.cfg.SRAM.MissEnergyNJ + hl.cfg.NVM.MissEnergyNJ
	return false, hl.cfg.NVM.TagLatencyNS
}

// readLatencyNS is the cost of reading a line back out of the hybrid
// LLC: the tag+data latency of the partition holding it, or the NVM
// (worst-case) path for an absent line. Pure timing — no statistics or
// replacement state are touched — used to price coherence
// cache-to-cache transfers routed through the LLC.
func (hl *hybridLLC) readLatencyNS(line uint64) float64 {
	if hl.sram.Probe(line) {
		return hl.cfg.SRAM.TagLatencyNS + hl.cfg.SRAM.ReadLatencyNS
	}
	return hl.cfg.NVM.TagLatencyNS + hl.cfg.NVM.ReadLatencyNS
}

// fill installs a line after a DRAM fetch. Store-allocations go to SRAM
// (they are about to be written), load fills to the dense NVM.
func (hl *hybridLLC) fill(line uint64, forStore bool) (dramWbs []uint64) {
	if forStore {
		return hl.installSRAM(line, false)
	}
	hl.stats.NVMWrites++
	hl.dynamicNJ += hl.cfg.NVM.WriteEnergyNJ
	if ev := hl.nvm.Install(line, false); ev.Valid {
		delete(hl.writeHeat, ev.LineAddr)
		if ev.Dirty {
			dramWbs = append(dramWbs, ev.LineAddr)
		}
	}
	return dramWbs
}

// writeback absorbs an L2 dirty eviction. SRAM-resident lines update in
// place; NVM-resident lines heat up and migrate to SRAM past the
// threshold; absent lines allocate into SRAM (write-allocate into the
// write-friendly partition).
func (hl *hybridLLC) writeback(line uint64) (dramWbs []uint64) {
	if hl.sram.Probe(line) {
		hl.sram.Touch(line, true)
		hl.stats.SRAMWrites++
		hl.dynamicNJ += hl.cfg.SRAM.WriteEnergyNJ
		return nil
	}
	if hl.nvm.Probe(line) {
		hl.writeHeat[line]++
		if hl.writeHeat[line] >= hl.threshold {
			// Promote the write-hot line: NVM read + SRAM install.
			delete(hl.writeHeat, line)
			hl.nvm.Invalidate(line)
			hl.stats.Migrations++
			hl.dynamicNJ += hl.cfg.NVM.HitEnergyNJ // migration read
			return hl.installSRAM(line, true)
		}
		hl.nvm.Touch(line, true)
		hl.stats.NVMWrites++
		hl.dynamicNJ += hl.cfg.NVM.WriteEnergyNJ
		return nil
	}
	return hl.installSRAM(line, true)
}

// installSRAM places a line in the SRAM partition; a displaced victim
// demotes to the NVM partition (an NVM write), whose own victim may go to
// DRAM.
func (hl *hybridLLC) installSRAM(line uint64, dirty bool) (dramWbs []uint64) {
	hl.stats.SRAMWrites++
	hl.dynamicNJ += hl.cfg.SRAM.WriteEnergyNJ
	ev := hl.sram.Install(line, dirty)
	if !ev.Valid {
		return nil
	}
	hl.stats.Demotions++
	hl.stats.NVMWrites++
	hl.dynamicNJ += hl.cfg.NVM.WriteEnergyNJ
	ev2 := hl.nvm.Install(ev.LineAddr, ev.Dirty)
	if ev2.Valid {
		delete(hl.writeHeat, ev2.LineAddr)
		if ev2.Dirty {
			dramWbs = append(dramWbs, ev2.LineAddr)
		}
	}
	return dramWbs
}

// leakageW is the way-weighted sum of the partition leakage powers.
func (hl *hybridLLC) leakageW() float64 {
	sramFrac := float64(hl.cfg.SRAMWays) / float64(hl.totalWays)
	nvmFrac := 1 - sramFrac
	return hl.cfg.SRAM.LeakageW*sramFrac + hl.cfg.NVM.LeakageW*nvmFrac
}
