package system

// Fault-injection properties at the whole-simulator level: a disabled
// fault config must be provably inert (bit-identical results to a config
// that never mentions faults, across layouts and input paths), and an
// enabled one must degrade deterministically and identically in every
// layout and input path.

import (
	"bytes"
	"context"
	"testing"

	"nvmllc/internal/cache"
	"nvmllc/internal/fault"
	"nvmllc/internal/reference"
	"nvmllc/internal/workload"
)

// faultedKang returns a Kang_P (PCRAM) config whose endurance is scaled
// down so faults fire within a short synthetic trace.
func faultedKang(t *testing.T, enduranceWrites float64) Config {
	t.Helper()
	kang, err := reference.ModelByName(reference.FixedCapacityModels(), "Kang_P")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Gainestown(kang)
	cfg.Fault = fault.Config{
		Options: fault.Options{Class: kang.Class, EnduranceWrites: enduranceWrites},
		Seed:    21,
	}
	return cfg
}

// TestFaultZeroValueBitIdentical: a Config whose Fault field is set but
// disabled (infinite endurance) must produce byte-identical Results to
// the untouched zero-value Fault, for both tag-store layouts and for the
// streaming input path — the inertness guarantee that keeps fault-free
// runs bit-identical to the pre-fault simulator.
func TestFaultZeroValueBitIdentical(t *testing.T) {
	prof, err := workload.ByName("ft")
	if err != nil {
		t.Fatal(err)
	}
	for name, mkCfg := range machineVariants(t) {
		opts := workload.Options{Accesses: 20000, Threads: 4}
		tr, err := workload.Generate(prof, opts)
		if err != nil {
			t.Fatal(err)
		}
		base := mkCfg(4)
		want, err := Run(context.Background(), base, tr)
		if err != nil {
			t.Fatal(err)
		}
		if want.Degradation != nil {
			t.Fatalf("%s: zero-value fault config produced degradation stats", name)
		}
		wantB := marshalResult(t, want)

		// Same machine, fault config populated but disabled: every knob
		// set, endurance infinite (zero-value Options ⇒ SRAM ⇒ +Inf).
		cfg := base
		cfg.Fault = fault.Config{Seed: 99, Spread: 2, MaxRetries: 5, SoftFraction: 0.5}
		if cfg.Fault.Enabled() {
			t.Fatal("test config unexpectedly enabled")
		}
		for _, layout := range []cache.Layout{cache.LayoutSoA, cache.LayoutAoS} {
			got, err := RunLayout(context.Background(), cfg, tr, layout, nil)
			if err != nil {
				t.Fatal(err)
			}
			if gotB := marshalResult(t, got); !bytes.Equal(gotB, wantB) {
				t.Errorf("%s/%v: disabled fault config changed the result\ngot:  %s\nwant: %s",
					name, layout, gotB, wantB)
			}
		}
		gen, err := workload.NewGenerator(prof, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunStreamWith(context.Background(), cfg, gen, nil)
		if err != nil {
			t.Fatal(err)
		}
		if gotB := marshalResult(t, got); !bytes.Equal(gotB, wantB) {
			t.Errorf("%s/stream: disabled fault config changed the result", name)
		}
	}
}

// TestFaultedRunEquivalence: with faults actively condemning ways, both
// tag-store layouts and the streaming path must still agree byte for
// byte, at a mild endurance (a few condemnations) and a harsh one (dead
// sets and DRAM bypassing).
func TestFaultedRunEquivalence(t *testing.T) {
	prof, err := workload.ByName("is")
	if err != nil {
		t.Fatal(err)
	}
	// The Gainestown Kang_P LLC sees only a few writes per set over a
	// short trace (≈3.7 per 16-way set at 25k accesses), so the scaled
	// endurances sit well below one per-cell write: "mild" condemns a few
	// ways in the hottest sets, "harsh" is below every threshold so each
	// write condemns a way and the hottest sets die completely.
	for name, tc := range map[string]struct {
		enduranceWrites float64
		accesses        int
	}{"mild": {0.05, 25000}, "harsh": {0.004, 60000}} {
		opts := workload.Options{Accesses: tc.accesses, Threads: 4}
		tr, err := workload.Generate(prof, opts)
		if err != nil {
			t.Fatal(err)
		}
		cfg := faultedKang(t, tc.enduranceWrites)
		want, err := Run(context.Background(), cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		d := want.Degradation
		if d == nil || d.CondemnedWays == 0 {
			t.Fatalf("%s: no degradation observed (endurance too high for the trace?)", name)
		}
		if name == "harsh" && d.DeadSets == 0 {
			t.Fatal("harsh endurance produced no dead sets; tighten it")
		}
		if d.CapacityFraction() >= 1 {
			t.Fatalf("%s: capacity did not drop: %+v", name, d)
		}
		wantB := marshalResult(t, want)

		aos, err := RunLayout(context.Background(), cfg, tr, cache.LayoutAoS, nil)
		if err != nil {
			t.Fatal(err)
		}
		if aosB := marshalResult(t, aos); !bytes.Equal(aosB, wantB) {
			t.Errorf("%s: AoS diverged under faults\naos: %s\nsoa: %s", name, aosB, wantB)
		}
		gen, err := workload.NewGenerator(prof, opts)
		if err != nil {
			t.Fatal(err)
		}
		stream, err := RunStreamWith(context.Background(), cfg, gen, nil)
		if err != nil {
			t.Fatal(err)
		}
		if streamB := marshalResult(t, stream); !bytes.Equal(streamB, wantB) {
			t.Errorf("%s: streaming diverged under faults", name)
		}
	}
}

// TestFaultDeterminism: the fault process is part of the simulation's
// deterministic identity — same config ⇒ identical results; a different
// fault seed ⇒ a different fault history.
func TestFaultDeterminism(t *testing.T) {
	prof, err := workload.ByName("is")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.Generate(prof, workload.Options{Accesses: 25000, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Endurance chosen so per-write wear steps (1/ways) are fine-grained
	// against the threshold band [E/2, 2E): which ways die then depends on
	// the per-cell draws, i.e. on the seed.
	cfg := faultedKang(t, 0.3)
	a, err := Run(context.Background(), cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalResult(t, a), marshalResult(t, b)) {
		t.Error("same config not deterministic under faults")
	}
	cfg2 := cfg
	cfg2.Fault.Seed = 22
	c, err := Run(context.Background(), cfg2, tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.Degradation == nil || c.Degradation == nil {
		t.Fatal("degradation stats missing")
	}
	if a.Degradation.CondemnedWays == 0 {
		t.Fatal("no condemnations fired; the seed comparison would be vacuous")
	}
	if *a.Degradation == *c.Degradation {
		t.Error("different fault seeds produced identical fault histories")
	}
}

// TestFaultPreAgingMonotone: more pre-wear can only shrink the effective
// capacity the run ends with.
func TestFaultPreAgingMonotone(t *testing.T) {
	prof, err := workload.ByName("is")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.Generate(prof, workload.Options{Accesses: 15000, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	prev := 2.0
	for _, prewear := range []float64{0, 0.04, 0.08, 0.16, 0.32} {
		cfg := faultedKang(t, 0.16)
		cfg.Fault.PreWearWrites = prewear
		r, err := Run(context.Background(), cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		capFrac := r.Degradation.CapacityFraction()
		if capFrac > prev {
			t.Fatalf("prewear %g: capacity %g above %g at lower wear", prewear, capFrac, prev)
		}
		prev = capFrac
	}
	if prev >= 1 {
		t.Error("deepest pre-aging left the cache pristine; endurance too high for the sweep")
	}
}

// TestFaultHybridRejected: fault injection composes with the single-tech
// LLC only; hybrid configs must be rejected at validation.
func TestFaultHybridRejected(t *testing.T) {
	kang, err := reference.ModelByName(reference.FixedCapacityModels(), "Kang_P")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Gainestown(kang)
	cfg.Hybrid = &HybridConfig{SRAM: reference.SRAMBaseline(), NVM: kang, SRAMWays: 4}
	cfg.Fault = fault.Config{Options: fault.Options{Class: kang.Class}}
	if err := cfg.Validate(); err == nil {
		t.Fatal("hybrid + faults accepted")
	}
}
