package system

// Streaming simulation: RunStream consumes a trace.ChunkSource chunk by
// chunk instead of a materialized trace, holding O(chunk × ring) access
// memory regardless of trace length, and overlaps generation AND
// pre-decode of upcoming chunks with simulation of the current one
// through an N-slot ring (default DefaultRingSlots) cycled between a
// producer goroutine and the consumer over free/out channels.
//
// The producer does everything that used to sit on the consumer's
// critical path: it reads the chunk, validates every access (thread
// bounds, kind, declared per-thread counts), splits it per thread with a
// stable counting scatter, and pre-decodes each access's line address
// and per-level set bases into the slot's SoA lanes (predecode.go). The
// consumer receives finished slots and only moves slice headers: each
// core's share of a slot is a contiguous lane window, queued on the
// core's segment FIFO and consumed in place — no per-access copying or
// append/compaction on the hot path. A slot returns to the ring when
// every core has finished its window (a consumer-side refcount; no
// atomics, since ownership transfers wholly through the channels).
//
// The ring bounds memory, but the min-heap schedule does not bound
// cross-core skew: a core whose accesses stall long can fall arbitrarily
// far behind, pinning its undrained slots while the earliest core
// starves for a chunk the producer cannot build. When the consumer
// detects that state (every slot on its side and the out channel empty)
// it evacuates the oldest held slot — copying its unconsumed lane
// windows into a spill slot recycled through the scratch — and frees the
// ring slot, restoring progress. Evacuation degrades gracefully toward
// the historical copy-into-queues behavior and only runs under skew the
// old design would have paid copying for on every chunk.
//
// Every slot handoff — producer acquiring or sending, consumer receiving
// or returning — selects on the run's lifecycle context alongside the
// stop channel, so a producer error after the consumer has exited (or a
// cancelled run) can never block forever on a full or empty channel.
//
// The scheduling is provably identical to the whole-trace path: the same
// min-heap picks the core with the earliest (local time, index) key, a
// core stays in the heap while it has stream accesses left anywhere in
// the trace (streamLeft, from Meta.PerThread), and when the earliest
// core's next access has not been generated yet the loop refills — which
// steps no other core — until it is. Per-core segment FIFOs preserve
// program order (the counting scatter is stable), and the instruction
// pacing divides the same up-front PerThread counts, so results are
// byte-identical to Run on the same sequence.

import (
	"context"
	"fmt"

	"nvmllc/internal/cache"
	"nvmllc/internal/trace"
)

// DefaultChunkAccesses is the streaming chunk size (accesses per
// ReadChunk): large enough to amortize the channel handoff to well under
// a nanosecond per access, small enough that the ring stays around a
// megabyte.
const DefaultChunkAccesses = 8192

// DefaultRingSlots is the streaming ring depth: enough slots that the
// producer's generate+decode of upcoming chunks overlaps the consumer's
// simulation without either side stalling on the other's jitter. A
// deliberate constant rather than a Config field — Config participates
// in the engine's result-cache key, and ring depth must never change a
// result.
const DefaultRingSlots = 4

// RunStream simulates a chunked trace source on the configured machine.
// The source is consumed exactly once, sequentially, from a single
// producer goroutine that runs ahead of the simulation by at most the
// ring depth; it must not be shared with other concurrent runs.
func RunStream(ctx context.Context, cfg Config, src trace.ChunkSource) (*Result, error) {
	return RunStreamWith(ctx, cfg, src, nil)
}

// RunStreamWith is RunStream reusing the caller's Scratch buffers (ring
// slots, segment queues, cache arena, directory tables), making repeated
// streaming simulations allocation-free on those paths.
func RunStreamWith(ctx context.Context, cfg Config, src trace.ChunkSource, scratch *Scratch) (*Result, error) {
	res, _, err := runStreamChunked(ctx, cfg, src, scratch, DefaultChunkAccesses, DefaultRingSlots)
	return res, err
}

// streamStats reports internals of one streaming run for tests and
// diagnostics: chunks received and skew evacuations performed.
type streamStats struct {
	chunks      uint64
	evacuations uint64
}

func runStreamChunked(ctx context.Context, cfg Config, src trace.ChunkSource, scratch *Scratch, chunkAccesses, ringSlots int) (*Result, streamStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, streamStats{}, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, streamStats{}, err
	}
	meta := src.Meta()
	if err := meta.Validate(); err != nil {
		return nil, streamStats{}, err
	}
	if meta.Threads > cfg.Cores {
		return nil, streamStats{}, fmt.Errorf("system: trace %s has %d threads but only %d cores", meta.Name, meta.Threads, cfg.Cores)
	}
	if chunkAccesses <= 0 {
		return nil, streamStats{}, fmt.Errorf("system: chunk size %d, want positive", chunkAccesses)
	}
	if ringSlots < 2 {
		return nil, streamStats{}, fmt.Errorf("system: ring slots %d, want ≥ 2", ringSlots)
	}
	if scratch == nil {
		scratch = new(Scratch)
	}
	sim, err := newSimulator(cfg, meta.Threads, scratch, cache.LayoutSoA)
	if err != nil {
		return nil, streamStats{}, err
	}
	defer sim.releaseScratch(scratch)

	// Wire the stream: segment queues start empty, streamLeft counts
	// everything the core will consume (generated or not), pacing divides
	// the same PerThread totals loadTrace derives from a materialized
	// split.
	if cap(scratch.segq) < meta.Threads {
		scratch.segq = make([][]*ringSlot, meta.Threads)
	}
	scratch.segq = scratch.segq[:meta.Threads]
	for t, cs := range sim.cores {
		cs.clearLanes()
		cs.cur = nil
		cs.segs = segQueue{q: scratch.segq[t][:0]}
		cs.streamLeft = meta.PerThread[t]
	}
	sim.spreadBudgets(meta.InstrCount, func(t int) int64 { return meta.PerThread[t] })
	// Return the (possibly regrown) queue storage to the scratch whatever
	// the outcome.
	defer func() {
		for t, cs := range sim.cores {
			scratch.segq[t] = cs.segs.q[:0]
		}
	}()

	st := newStreamState(ctx, src, scratch, chunkAccesses, ringSlots, meta, newDecoder(sim))
	defer st.shutdown()
	if err := sim.runStream(ctx, st); err != nil {
		return nil, st.stats, err
	}
	return sim.result(meta.Name), st.stats, nil
}

// ringSlot is one streaming buffer: the producer's raw chunk, the
// decoded SoA lanes, and the per-thread windows into them. refs counts
// the windows the consumer has not finished; the slot goes back on the
// free channel when it reaches zero. Spill slots (evacuation overflow)
// have a nil raw buffer and recycle through the scratch instead of the
// ring.
type ringSlot struct {
	raw  []trace.Access
	lane laneBuf
	segs []slotSeg
	refs int32
	err  error
}

// slotSeg is one thread's window into a slot's lanes.
type slotSeg struct{ off, n int32 }

// segQueue is a per-core FIFO of slots whose window for this core is
// pending. Capacity is usually the ring depth; spill slots can push it
// further, so it grows (with head compaction) rather than being fixed.
type segQueue struct {
	q    []*ringSlot
	head int
}

func (s *segQueue) empty() bool { return s.head >= len(s.q) }

func (s *segQueue) push(sl *ringSlot) {
	if s.head > 0 && len(s.q) == cap(s.q) {
		n := copy(s.q, s.q[s.head:])
		s.q = s.q[:n]
		s.head = 0
	}
	s.q = append(s.q, sl)
}

func (s *segQueue) pop() *ringSlot {
	if s.head >= len(s.q) {
		return nil
	}
	sl := s.q[s.head]
	s.q[s.head] = nil
	s.head++
	if s.head >= len(s.q) {
		s.q = s.q[:0]
		s.head = 0
	}
	return sl
}

// replace swaps a pending slot pointer (evacuation re-targets a segment
// from a ring slot to its spill copy).
func (s *segQueue) replace(old, new *ringSlot) bool {
	for i := s.head; i < len(s.q); i++ {
		if s.q[i] == old {
			s.q[i] = new
			return true
		}
	}
	return false
}

// streamState runs the producer goroutine and hands its finished slots
// to the consumer.
type streamState struct {
	meta trace.Meta
	ctx  context.Context
	dec  decoder
	// free carries drained slots back to the producer; out carries
	// filled ones forward. Together they bound the producer's lead at the
	// ring depth.
	free chan *ringSlot
	out  chan *ringSlot
	// stop aborts the producer early; the producer closes out on exit, so
	// shutdown can drain to completion.
	stop chan struct{}
	// produced/counts/offs are producer-owned: per-thread totals checked
	// against meta.PerThread (a source that lies about its Meta fails
	// loudly instead of corrupting the pacing) and per-chunk scatter
	// cursors.
	produced []int64
	counts   []int32
	offs     []int32
	// Consumer-side state: slots received but not fully consumed, in
	// arrival order (ring slots only — spills are tracked by the segment
	// queues alone).
	held     []*ringSlot
	inFlight int
	slots    int
	chunk    int
	scratch  *Scratch
	done     bool
	stats    streamStats
}

func newStreamState(ctx context.Context, src trace.ChunkSource, scratch *Scratch, chunkAccesses, ringSlots int, meta trace.Meta, dec decoder) *streamState {
	st := &streamState{
		meta:     meta,
		ctx:      ctx,
		dec:      dec,
		free:     make(chan *ringSlot, ringSlots),
		out:      make(chan *ringSlot, ringSlots),
		stop:     make(chan struct{}),
		produced: make([]int64, meta.Threads),
		counts:   make([]int32, meta.Threads),
		offs:     make([]int32, meta.Threads),
		held:     make([]*ringSlot, 0, ringSlots),
		slots:    ringSlots,
		chunk:    chunkAccesses,
		scratch:  scratch,
	}
	for len(scratch.slots) < ringSlots {
		scratch.slots = append(scratch.slots, new(ringSlot))
	}
	for i := 0; i < ringSlots; i++ {
		sl := scratch.slots[i]
		if cap(sl.raw) < chunkAccesses {
			sl.raw = make([]trace.Access, chunkAccesses)
		}
		sl.raw = sl.raw[:chunkAccesses]
		sl.lane.ensure(chunkAccesses)
		sl.prepare(meta.Threads)
		st.free <- sl
	}
	go st.produce(src)
	return st
}

// prepare resets a slot for a new chunk.
func (sl *ringSlot) prepare(threads int) {
	if cap(sl.segs) < threads {
		sl.segs = make([]slotSeg, threads)
	}
	sl.segs = sl.segs[:threads]
	sl.refs = 0
	sl.err = nil
}

// produce runs the source ahead of the simulation, one chunk per free
// slot, validating, splitting and pre-decoding each chunk before the
// handoff. It owns src: ReadChunk is only ever called here,
// sequentially.
func (st *streamState) produce(src trace.ChunkSource) {
	defer close(st.out)
	for {
		var sl *ringSlot
		select {
		case sl = <-st.free:
		case <-st.stop:
			return
		case <-st.ctx.Done():
			return
		}
		n, err := src.ReadChunk(sl.raw[:st.chunk])
		if err == nil && n > 0 {
			err = st.fill(sl, n)
		}
		if err != nil {
			sl.err = err
			st.send(sl)
			return
		}
		if n == 0 {
			return // exhausted
		}
		if !st.send(sl) {
			return
		}
	}
}

// send hands a finished slot to the consumer, abandoning it if the run
// is stopping or the lifecycle context is cancelled (so a producer error
// after the consumer has exited can never block forever).
func (st *streamState) send(sl *ringSlot) bool {
	select {
	case st.out <- sl:
		return true
	case <-st.stop:
		return false
	case <-st.ctx.Done():
		return false
	}
}

// fill validates a raw chunk and scatters it into the slot's lanes: one
// counting pass (validation + per-thread counts), then a stable
// per-thread scatter that decodes each access in the same step
// (predecode.go), so the consumer receives contiguous, program-ordered,
// fully decoded windows per thread.
func (st *streamState) fill(sl *ringSlot, n int) error {
	accs := sl.raw[:n]
	counts := st.counts
	for t := range counts {
		counts[t] = 0
	}
	threads := st.meta.Threads
	for i := range accs {
		a := &accs[i]
		if int(a.Tid) >= threads {
			return fmt.Errorf("trace %s: streamed access has tid %d ≥ threads %d", st.meta.Name, a.Tid, threads)
		}
		if a.Kind > trace.Ifetch {
			return fmt.Errorf("trace %s: streamed access has invalid kind %d", st.meta.Name, a.Kind)
		}
		counts[a.Tid]++
	}
	off := int32(0)
	for t := 0; t < threads; t++ {
		if st.produced[t]+int64(counts[t]) > st.meta.PerThread[t] {
			return fmt.Errorf("trace %s: thread %d produced more than its declared %d accesses", st.meta.Name, t, st.meta.PerThread[t])
		}
		st.produced[t] += int64(counts[t])
		sl.segs[t] = slotSeg{off: off, n: counts[t]}
		st.offs[t] = off
		off += counts[t]
		if counts[t] > 0 {
			sl.refs++
		}
	}
	d := &st.dec
	offs := st.offs
	for i := range accs {
		a := accs[i]
		j := offs[a.Tid]
		offs[a.Tid] = j + 1
		d.put(&sl.lane, int(j), a)
	}
	return nil
}

// shutdown stops the producer and drains its output, so the ring slots
// are quiescent (safe to reuse from the scratch) on return.
func (st *streamState) shutdown() {
	close(st.stop)
	for range st.out {
	}
}

// release retires one finished segment of a slot. When the last segment
// finishes, a ring slot returns to the producer and a spill slot returns
// to the scratch's recycle list.
func (st *streamState) release(sl *ringSlot) {
	sl.refs--
	if sl.refs > 0 {
		return
	}
	if sl.raw == nil {
		st.scratch.spills = append(st.scratch.spills, sl)
		return
	}
	for i, h := range st.held {
		if h == sl {
			st.held = append(st.held[:i], st.held[i+1:]...)
			break
		}
	}
	st.inFlight--
	sl.prepare(st.meta.Threads)
	select {
	case st.free <- sl:
	case <-st.ctx.Done():
	}
}

// advance moves a core onto its next pending decoded segment, releasing
// the one it finished. It reports whether a segment was installed.
func (st *streamState) advance(cs *coreState) bool {
	if cs.cur != nil {
		st.release(cs.cur)
		cs.cur = nil
		cs.clearLanes()
	}
	sl := cs.segs.pop()
	if sl == nil {
		return false
	}
	seg := sl.segs[cs.idx]
	cs.cur = sl
	cs.setLanes(&sl.lane, int(seg.off), int(seg.n))
	return true
}

// refill receives the next finished slot and queues its windows on the
// owning cores. It returns false with a nil error when the source is
// exhausted. If every ring slot is already on the consumer's side and
// nothing is in flight, the producer is starved by schedule skew and the
// oldest held slot is evacuated first.
func (s *simulator) refill(st *streamState) (bool, error) {
	if st.done {
		return false, nil
	}
	var sl *ringSlot
	select {
	case got, ok := <-st.out:
		if !ok {
			st.done = true
			return false, nil
		}
		sl = got
	default:
		if st.inFlight == st.slots {
			st.evacuate(s)
		}
		select {
		case got, ok := <-st.out:
			if !ok {
				st.done = true
				return false, nil
			}
			sl = got
		case <-st.ctx.Done():
			return false, st.ctx.Err()
		}
	}
	if sl.err != nil {
		st.done = true
		return false, sl.err
	}
	st.stats.chunks++
	st.inFlight++
	st.held = append(st.held, sl)
	for t := 0; t < st.meta.Threads; t++ {
		if sl.segs[t].n > 0 {
			s.cores[t].segs.push(sl)
		}
	}
	return true, nil
}

// evacuate frees the oldest consumer-held ring slot by copying its
// unconsumed lane windows into a spill slot (recycled through the
// scratch), re-targeting the affected cores' pending segments at the
// copies. Only runs when schedule skew has pinned every ring slot on the
// consumer's side — the state that would otherwise deadlock the bounded
// ring against a starved producer.
func (st *streamState) evacuate(s *simulator) {
	old := st.held[0]
	var spill *ringSlot
	if n := len(st.scratch.spills); n > 0 {
		spill = st.scratch.spills[n-1]
		st.scratch.spills = st.scratch.spills[:n-1]
	} else {
		spill = new(ringSlot)
	}
	spill.lane.ensure(st.chunk)
	spill.prepare(st.meta.Threads)
	off := int32(0)
	for t := 0; t < st.meta.Threads; t++ {
		cs := s.cores[t]
		switch {
		case cs.cur == old:
			// Copy only the unconsumed remainder of the core's current
			// views and re-point them at the spill.
			rem := int32(len(cs.line) - cs.pos)
			srcOff := old.segs[t].off + old.segs[t].n - rem
			copyLaneWindow(&spill.lane, off, &old.lane, srcOff, rem)
			spill.segs[t] = slotSeg{off: off, n: rem}
			cs.cur = spill
			cs.setLanes(&spill.lane, int(off), int(rem))
			off += rem
			spill.refs++
		case cs.segs.replace(old, spill):
			seg := old.segs[t]
			copyLaneWindow(&spill.lane, off, &old.lane, seg.off, seg.n)
			spill.segs[t] = slotSeg{off: off, n: seg.n}
			off += seg.n
			spill.refs++
		}
	}
	old.refs = 0
	st.held = st.held[1:]
	st.inFlight--
	old.prepare(st.meta.Threads)
	select {
	case st.free <- old:
	case <-st.ctx.Done():
	}
	st.stats.evacuations++
}

// copyLaneWindow copies n decoded accesses between lane buffers.
func copyLaneWindow(dst *laneBuf, dstOff int32, src *laneBuf, srcOff, n int32) {
	d, s0, s1 := int(dstOff), int(srcOff), int(srcOff+n)
	copy(dst.line[d:], src.line[s0:s1])
	copy(dst.l1[d:], src.l1[s0:s1])
	copy(dst.l2[d:], src.l2[s0:s1])
	copy(dst.llc[d:], src.llc[s0:s1])
	copy(dst.kind[d:], src.kind[s0:s1])
}

// runStream is the heap scheduler over a chunked source: identical step
// order to run(), with membership keyed on streamLeft instead of segment
// length, segment advance when the current window drains, and an inline
// refill whenever the earliest core's next access has not been delivered
// yet.
func (s *simulator) runStream(ctx context.Context, st *streamState) error {
	h := newStreamHeap(s.cores)
	steps := 0
	for h.len() > 0 {
		cs := h.min()
		if cs.pos >= len(cs.line) {
			if st.advance(cs) {
				continue
			}
			more, err := s.refill(st)
			if err != nil {
				return err
			}
			if !more {
				return fmt.Errorf("trace %s: stream ended with %d accesses of thread %d undelivered", st.meta.Name, cs.streamLeft, cs.idx)
			}
			continue
		}
		s.step(cs)
		cs.streamLeft--
		if cs.streamLeft == 0 {
			if cs.cur != nil {
				st.release(cs.cur)
				cs.cur = nil
			}
			h.popMin()
		} else {
			h.fixMin(cs.core.TimeNS())
		}
		if steps++; steps >= cancelCheckInterval {
			steps = 0
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
	s.retireRemainder()
	return nil
}

// newStreamHeap heapifies the cores that will consume any stream
// accesses (their queues may still be empty — membership is the thread's
// total remaining count, not what has been generated so far).
func newStreamHeap(cores []*coreState) *coreHeap {
	h := &coreHeap{cores: cores, ents: make([]heapEnt, 0, len(cores))}
	for _, cs := range cores {
		if cs.streamLeft > 0 {
			h.ents = append(h.ents, heapEnt{timeNS: cs.core.TimeNS(), idx: int32(cs.idx)})
		}
	}
	for i := len(h.ents)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	return h
}
