package system

// Streaming simulation: RunStream consumes a trace.ChunkSource chunk by
// chunk instead of a materialized trace, holding O(chunk) access memory
// regardless of trace length, and overlaps generation of chunk N+1 with
// simulation of chunk N through a bounded double buffer (a producer
// goroutine cycling two chunk buffers through free/out channels).
//
// The scheduling is provably identical to the whole-trace path: the same
// min-heap picks the core with the earliest (local time, index) key, a
// core stays in the heap while it has stream accesses left anywhere in
// the trace (streamLeft, from Meta.PerThread), and when the earliest
// core's queue has not been generated yet the loop refills — which steps
// no other core — until it is. Per-core FIFO append preserves program
// order, and the instruction pacing divides the same up-front PerThread
// counts, so results are byte-identical to Run on the same sequence.

import (
	"context"
	"fmt"

	"nvmllc/internal/cache"
	"nvmllc/internal/trace"
)

// DefaultChunkAccesses is the streaming chunk size (accesses per
// ReadChunk): large enough to amortize the channel handoff to well under
// a nanosecond per access, small enough that the double buffer stays a
// few hundred KB.
const DefaultChunkAccesses = 8192

// RunStream simulates a chunked trace source on the configured machine.
// The source is consumed exactly once, sequentially, from a single
// producer goroutine that runs ahead of the simulation by at most two
// chunks; it must not be shared with other concurrent runs.
func RunStream(ctx context.Context, cfg Config, src trace.ChunkSource) (*Result, error) {
	return RunStreamWith(ctx, cfg, src, nil)
}

// RunStreamWith is RunStream reusing the caller's Scratch buffers (chunk
// double buffer, per-core queues, cache arena, directory tables), making
// repeated streaming simulations allocation-free on those paths.
func RunStreamWith(ctx context.Context, cfg Config, src trace.ChunkSource, scratch *Scratch) (*Result, error) {
	return runStreamChunked(ctx, cfg, src, scratch, DefaultChunkAccesses)
}

func runStreamChunked(ctx context.Context, cfg Config, src trace.ChunkSource, scratch *Scratch, chunkAccesses int) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	meta := src.Meta()
	if err := meta.Validate(); err != nil {
		return nil, err
	}
	if meta.Threads > cfg.Cores {
		return nil, fmt.Errorf("system: trace %s has %d threads but only %d cores", meta.Name, meta.Threads, cfg.Cores)
	}
	if chunkAccesses <= 0 {
		return nil, fmt.Errorf("system: chunk size %d, want positive", chunkAccesses)
	}
	if scratch == nil {
		scratch = new(Scratch)
	}
	sim, err := newSimulator(cfg, meta.Threads, scratch, cache.LayoutSoA)
	if err != nil {
		return nil, err
	}
	defer sim.releaseScratch(scratch)

	// Wire the stream: queues start empty, streamLeft counts everything
	// the core will consume (generated or not), pacing divides the same
	// PerThread totals loadTrace derives from a materialized split.
	if cap(scratch.queues) < meta.Threads {
		scratch.queues = make([][]trace.Access, meta.Threads)
	}
	scratch.queues = scratch.queues[:meta.Threads]
	for t, cs := range sim.cores {
		cs.accs = scratch.queues[t][:0]
		cs.streamLeft = meta.PerThread[t]
	}
	sim.spreadBudgets(meta.InstrCount, func(t int) int64 { return meta.PerThread[t] })
	// Return the (possibly regrown) queue storage to the scratch whatever
	// the outcome.
	defer func() {
		for t, cs := range sim.cores {
			scratch.queues[t] = cs.accs[:0]
		}
	}()

	st := newStreamState(src, scratch, chunkAccesses, meta)
	defer st.shutdown()
	if err := sim.runStream(ctx, st); err != nil {
		return nil, err
	}
	return sim.result(meta.Name), nil
}

// chunkMsg is one producer→consumer handoff: a filled chunk (nil when
// the source failed) and the source's error, if any.
type chunkMsg struct {
	accs []trace.Access
	err  error
}

// streamState runs the producer goroutine and distributes its chunks
// into the per-core queues.
type streamState struct {
	meta trace.Meta
	// free carries empty chunk buffers back to the producer; out carries
	// filled ones forward. Capacity 2 on both sides bounds the producer's
	// lead at two chunks (the double buffer).
	free chan []trace.Access
	out  chan chunkMsg
	// stop aborts the producer early; the producer closes out on exit, so
	// shutdown can drain to completion.
	stop chan struct{}
	// produced counts per-thread accesses distributed so far, checked
	// against meta.PerThread so a source that lies about its Meta fails
	// loudly instead of corrupting the pacing.
	produced []int64
	done     bool
}

func newStreamState(src trace.ChunkSource, scratch *Scratch, chunkAccesses int, meta trace.Meta) *streamState {
	st := &streamState{
		meta:     meta,
		free:     make(chan []trace.Access, 2),
		out:      make(chan chunkMsg, 2),
		stop:     make(chan struct{}),
		produced: make([]int64, meta.Threads),
	}
	for i := range scratch.chunks {
		if cap(scratch.chunks[i]) < chunkAccesses {
			scratch.chunks[i] = make([]trace.Access, chunkAccesses)
		}
		st.free <- scratch.chunks[i][:chunkAccesses]
	}
	go st.produce(src)
	return st
}

// produce runs the source ahead of the simulation, one chunk per free
// buffer. It owns src: ReadChunk is only ever called here, sequentially.
func (st *streamState) produce(src trace.ChunkSource) {
	defer close(st.out)
	for {
		var buf []trace.Access
		select {
		case buf = <-st.free:
		case <-st.stop:
			return
		}
		n, err := src.ReadChunk(buf)
		if err != nil {
			select {
			case st.out <- chunkMsg{err: err}:
			case <-st.stop:
			}
			return
		}
		if n == 0 {
			return // exhausted
		}
		select {
		case st.out <- chunkMsg{accs: buf[:n]}:
		case <-st.stop:
			return
		}
	}
}

// shutdown stops the producer and drains its output, so the chunk
// buffers are quiescent (safe to reuse from the scratch) on return.
func (st *streamState) shutdown() {
	close(st.stop)
	for range st.out {
	}
}

// refill distributes the next chunk into the per-core queues. It returns
// false with a nil error when the source is exhausted.
func (s *simulator) refill(st *streamState) (bool, error) {
	if st.done {
		return false, nil
	}
	msg, ok := <-st.out
	if !ok {
		st.done = true
		return false, nil
	}
	if msg.err != nil {
		st.done = true
		return false, msg.err
	}
	for _, a := range msg.accs {
		if int(a.Tid) >= st.meta.Threads {
			return false, fmt.Errorf("trace %s: streamed access has tid %d ≥ threads %d", st.meta.Name, a.Tid, st.meta.Threads)
		}
		if a.Kind > trace.Ifetch {
			return false, fmt.Errorf("trace %s: streamed access has invalid kind %d", st.meta.Name, a.Kind)
		}
		if st.produced[a.Tid]++; st.produced[a.Tid] > st.meta.PerThread[a.Tid] {
			return false, fmt.Errorf("trace %s: thread %d produced more than its declared %d accesses", st.meta.Name, a.Tid, st.meta.PerThread[a.Tid])
		}
		cs := s.cores[a.Tid]
		if len(cs.accs) == cap(cs.accs) && cs.pos > 0 {
			// Compact the consumed prefix before growing the queue.
			n := copy(cs.accs, cs.accs[cs.pos:])
			cs.accs = cs.accs[:n]
			cs.pos = 0
		}
		cs.accs = append(cs.accs, a)
	}
	// Return the drained buffer for the producer's next chunk (capacity 2
	// matches the two buffers in flight, so this never blocks).
	st.free <- msg.accs[:cap(msg.accs)]
	return true, nil
}

// runStream is the heap scheduler over a chunked source: identical step
// order to run(), with membership keyed on streamLeft instead of queue
// length and an inline refill whenever the earliest core's next access
// has not been generated yet.
func (s *simulator) runStream(ctx context.Context, st *streamState) error {
	h := newStreamHeap(s.cores)
	steps := 0
	for h.len() > 0 {
		cs := h.min()
		if cs.pos >= len(cs.accs) {
			more, err := s.refill(st)
			if err != nil {
				return err
			}
			if !more {
				return fmt.Errorf("trace %s: stream ended with %d accesses of thread %d undelivered", st.meta.Name, cs.streamLeft, cs.idx)
			}
			continue
		}
		s.step(cs)
		cs.streamLeft--
		if cs.streamLeft == 0 {
			h.popMin()
		} else {
			h.fixMin(cs.core.TimeNS())
		}
		if steps++; steps >= cancelCheckInterval {
			steps = 0
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
	s.retireRemainder()
	return nil
}

// newStreamHeap heapifies the cores that will consume any stream
// accesses (their queues may still be empty — membership is the thread's
// total remaining count, not what has been generated so far).
func newStreamHeap(cores []*coreState) *coreHeap {
	h := &coreHeap{cores: cores, ents: make([]heapEnt, 0, len(cores))}
	for _, cs := range cores {
		if cs.streamLeft > 0 {
			h.ents = append(h.ents, heapEnt{timeNS: cs.core.TimeNS(), idx: int32(cs.idx)})
		}
	}
	for i := len(h.ents)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	return h
}
