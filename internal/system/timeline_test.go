package system

import (
	"context"
	"math"
	"reflect"
	"testing"

	"nvmllc/internal/cache"
	"nvmllc/internal/fault"
	"nvmllc/internal/reference"
	"nvmllc/internal/telemetry"
	"nvmllc/internal/workload"
)

// timelineConfig is sramConfig with wear tracking and epoch sampling on.
func timelineConfig(points int) Config {
	cfg := sramConfig()
	cfg.TrackWear = true
	cfg.Timeline = &TimelineConfig{Points: points}
	return cfg
}

func TestTimelineAbsentByDefault(t *testing.T) {
	tr := streamTrace("notl", 5000, 30000, 3, 2)
	r, err := Run(context.Background(), sramConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Timeline != nil || r.WearHeatmap != nil {
		t.Error("timeline artifacts present without Config.Timeline")
	}
	if r.Phases() != nil {
		t.Error("Phases() non-nil without a timeline")
	}
}

// TestTimelineDeltasTelescope pins the artifact's core accounting
// promise: every per-epoch delta series sums exactly (not within
// epsilon — exactly, the counts are integers below 2^53) to the run's
// end-of-run totals.
func TestTimelineDeltasTelescope(t *testing.T) {
	tr := streamTrace("tl", 20000, 120000, 3, 4)
	r, err := Run(context.Background(), timelineConfig(32), tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Timeline == nil {
		t.Fatal("no timeline")
	}
	sums := map[string]float64{
		TimelineLLCHits:   float64(r.LLC.Hits),
		TimelineLLCMisses: float64(r.LLC.Misses),
		TimelineLLCWrites: float64(r.LLC.Writes),
		TimelineDRAMReqs:  float64(r.DRAM.Reads + r.DRAM.Writes),
		TimelineWearWrites: float64(func() uint64 {
			if r.Wear == nil {
				return 0
			}
			return r.Wear.TotalWrites
		}()),
	}
	for field, want := range sums {
		if got := r.Timeline.Sum(field); got != want {
			t.Errorf("Sum(%s) = %v, want exactly %v", field, got, want)
		}
	}
	if got, want := r.Timeline.Sum(TimelineDRAMWaitNS), r.DRAM.TotalWaitNS; got != want {
		t.Errorf("Sum(dram_wait_ns) = %v, want %v", got, want)
	}
	if n := r.Timeline.Len(); n == 0 || n > 32 {
		t.Errorf("timeline has %d points, want 1..32", n)
	}
	if last := r.Timeline.X[r.Timeline.Len()-1]; last != r.Instructions {
		t.Errorf("final epoch ends at %d instructions, want the run total %d", last, r.Instructions)
	}
}

func TestTimelineWearHeatmapMatchesWearStats(t *testing.T) {
	tr := streamTrace("hm", 30000, 90000, 2, 4)
	r, err := Run(context.Background(), timelineConfig(16), tr)
	if err != nil {
		t.Fatal(err)
	}
	hm := r.WearHeatmap
	if hm == nil {
		t.Fatal("no wear heatmap")
	}
	if r.Wear == nil {
		t.Fatal("no wear stats")
	}
	if hm.Rows != r.Wear.Sets {
		t.Errorf("heatmap rows = %d, want %d sets", hm.Rows, r.Wear.Sets)
	}
	if got, want := hm.ColSum(0), float64(r.Wear.TotalWrites); got != want {
		t.Errorf("heatmap writes column sums to %v, want %v", got, want)
	}
	if hm.ColSum(1) < float64(r.Wear.TotalWrites) {
		t.Errorf("accesses column (%v) below writes (%v)", hm.ColSum(1), r.Wear.TotalWrites)
	}
}

func TestTimelinePhases(t *testing.T) {
	tr := streamTrace("ph", 20000, 80000, 3, 4)
	r, err := Run(context.Background(), timelineConfig(16), tr)
	if err != nil {
		t.Fatal(err)
	}
	ph := r.Phases()
	if ph == nil {
		t.Fatal("no phases")
	}
	if ph.Epochs != r.Timeline.Len() {
		t.Errorf("Epochs = %d, want %d", ph.Epochs, r.Timeline.Len())
	}
	if ph.WriteRateCoV < 0 || ph.PeakToMeanWrites < 1 || ph.PeakToMeanWear < 1 {
		t.Errorf("implausible phase stats: %+v", ph)
	}
	if ph.MPKIMin > ph.MPKIMax || ph.MPKIMax <= 0 {
		t.Errorf("MPKI range %v..%v", ph.MPKIMin, ph.MPKIMax)
	}
}

// phaseSnapshot builds a synthetic Result carrying just enough timeline
// for Phases(): the X axis plus misses/writes delta series.
func phaseSnapshot(x []uint64, misses, writes []float64) *Result {
	return &Result{Timeline: &telemetry.TimelineSnapshot{
		Axis: "instructions",
		Fields: []telemetry.TimelineField{
			telemetry.DeltaField(TimelineLLCMisses),
			telemetry.DeltaField(TimelineLLCWrites),
		},
		X:      x,
		Series: [][]float64{misses, writes},
	}}
}

// TestPhasesDegenerateTimelines pins Phases() on the degenerate shapes:
// empty (nil), zero-total, single-epoch and zero-width-first-epoch
// timelines produce defined finite values — in particular MPKIMin must
// be seeded by the first epoch with a defined rate, not left at zero
// when epoch 0 has no width.
func TestPhasesDegenerateTimelines(t *testing.T) {
	// Empty timeline → nil, same as unsampled.
	if ph := phaseSnapshot(nil, nil, nil).Phases(); ph != nil {
		t.Errorf("empty timeline Phases() = %+v, want nil", ph)
	}

	checkFinite := func(ph *PhaseStats) {
		t.Helper()
		for name, v := range map[string]float64{
			"WriteRateCoV":     ph.WriteRateCoV,
			"PeakToMeanWrites": ph.PeakToMeanWrites,
			"PeakToMeanWear":   ph.PeakToMeanWear,
			"MPKIMin":          ph.MPKIMin,
			"MPKIMax":          ph.MPKIMax,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s = %v, want finite", name, v)
			}
		}
	}

	// Zero-total series: epochs with no misses and no writes.
	ph := phaseSnapshot([]uint64{10, 20}, []float64{0, 0}, []float64{0, 0}).Phases()
	if ph == nil {
		t.Fatal("zero-total timeline lost its phases")
	}
	checkFinite(ph)
	if ph.WriteRateCoV != 0 || ph.MPKIMin != 0 || ph.MPKIMax != 0 {
		t.Errorf("zero-total phases = %+v, want all-zero statistics", ph)
	}

	// Single epoch: steady by definition, MPKI min == max.
	ph = phaseSnapshot([]uint64{1000}, []float64{5}, []float64{8}).Phases()
	if ph == nil {
		t.Fatal("single-epoch timeline lost its phases")
	}
	checkFinite(ph)
	if ph.Epochs != 1 || ph.WriteRateCoV != 0 || ph.PeakToMeanWrites != 1 {
		t.Errorf("single-epoch phases = %+v, want CoV 0 and peak/mean 1", ph)
	}
	if ph.MPKIMin != ph.MPKIMax || ph.MPKIMin != 5 {
		t.Errorf("single-epoch MPKI range %v..%v, want exactly 5", ph.MPKIMin, ph.MPKIMax)
	}

	// Zero-width first epoch (X[0] == 0): it has no defined rate and must
	// not pin MPKIMin at 0 — the bounds come from the valid epochs, both
	// of which have MPKI ≥ 2.
	ph = phaseSnapshot([]uint64{0, 1000, 2000}, []float64{9, 2, 4}, []float64{0, 1, 1}).Phases()
	if ph == nil {
		t.Fatal("zero-width-first-epoch timeline lost its phases")
	}
	checkFinite(ph)
	if ph.MPKIMin != 2 || ph.MPKIMax != 4 {
		t.Errorf("MPKI range %v..%v, want 2..4 (zero-width epoch skipped, not seeded as min)", ph.MPKIMin, ph.MPKIMax)
	}

	// A timeline missing the misses series (foreign schema) must not
	// panic; the rate statistics still apply.
	r := &Result{Timeline: &telemetry.TimelineSnapshot{
		Fields: []telemetry.TimelineField{telemetry.DeltaField(TimelineLLCWrites)},
		X:      []uint64{10, 20},
		Series: [][]float64{{3, 3}},
	}}
	ph = r.Phases()
	if ph == nil {
		t.Fatal("missing-misses timeline lost its phases")
	}
	checkFinite(ph)
	if ph.MPKIMin != 0 || ph.MPKIMax != 0 {
		t.Errorf("missing misses series: MPKI range %v..%v, want 0..0", ph.MPKIMin, ph.MPKIMax)
	}
	if ph.PeakToMeanWrites != 1 {
		t.Errorf("steady writes peak/mean = %v, want 1", ph.PeakToMeanWrites)
	}
}

// TestTimelineDeterministicAcrossPaths pins byte-identical timelines and
// heatmaps across every execution strategy that must not change results:
// the heap vs linear-scan schedulers, SoA vs AoS tag layouts, and the
// chunked streaming pipeline vs whole-trace materialization.
func TestTimelineDeterministicAcrossPaths(t *testing.T) {
	p, err := workload.ByName("ft")
	if err != nil {
		t.Fatal(err)
	}
	opts := workload.Options{Accesses: 40000, Threads: 4, Seed: 7}
	tr, err := workload.Generate(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Gainestown(reference.SRAMBaseline()).WithCores(4)
	cfg.TrackWear = true
	cfg.Timeline = &TimelineConfig{Points: 24}

	ctx := context.Background()
	ref, err := RunWith(ctx, cfg, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	runs := map[string]func() (*Result, error){
		"linear-scan": func() (*Result, error) { return RunScheduled(ctx, cfg, tr, SchedLinearScan, nil) },
		"aos-layout":  func() (*Result, error) { return RunLayout(ctx, cfg, tr, cache.LayoutAoS, nil) },
		"streaming": func() (*Result, error) {
			gen, err := workload.NewGenerator(p, opts)
			if err != nil {
				return nil, err
			}
			return RunStreamWith(ctx, cfg, gen, nil)
		},
		"scratch-reuse": func() (*Result, error) {
			var scratch Scratch
			if _, err := RunWith(ctx, cfg, tr, &scratch); err != nil {
				return nil, err
			}
			return RunWith(ctx, cfg, tr, &scratch)
		},
	}
	for name, run := range runs {
		got, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got.Timeline, ref.Timeline) {
			t.Errorf("%s: timeline differs from the reference run", name)
		}
		if !reflect.DeepEqual(got.WearHeatmap, ref.WearHeatmap) {
			t.Errorf("%s: wear heatmap differs from the reference run", name)
		}
	}
}

// TestTimelineFaultSeries checks the fault fields: a heavily pre-aged
// NVM LLC condemns ways during the run, and those events land in the
// epoch series with the capacity level ending at the injector's final
// fraction.
func TestTimelineFaultSeries(t *testing.T) {
	p, err := workload.ByName("is")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.Generate(p, workload.Options{Accesses: 40000, Threads: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	models := reference.FixedCapacityModels()
	model, err := reference.ModelByName(models, "Kang_P")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Gainestown(model).WithCores(4)
	cfg.Timeline = &TimelineConfig{Points: 16}
	cfg.Fault = fault.Config{
		Options:       fault.Options{Class: model.Class},
		PreWearWrites: 4e7,
	}
	r, err := Run(context.Background(), cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	d := r.Degradation
	if d == nil || r.Timeline == nil {
		t.Fatal("faulted sampled run missing degradation or timeline")
	}
	// Runtime condemnations only: the pre-aged ways are disabled before
	// the clock starts, so the delta series carries just the run's events.
	if got, want := r.Timeline.Sum(TimelineFaultCondemned), float64(d.CondemnedWays); got != want {
		t.Errorf("Sum(fault_condemned) = %v, want %v", got, want)
	}
	if got, want := r.Timeline.Sum(TimelineFaultRetries), float64(d.WriteRetries); got != want {
		t.Errorf("Sum(fault_retries) = %v, want %v", got, want)
	}
	caps := r.Timeline.SeriesOf(TimelineCapacity)
	if len(caps) == 0 {
		t.Fatal("no capacity series")
	}
	if got, want := caps[len(caps)-1], d.CapacityFraction(); got != want {
		t.Errorf("final capacity level = %v, want %v", got, want)
	}
	for i := 1; i < len(caps); i++ {
		if caps[i] > caps[i-1] {
			t.Errorf("capacity rose between epochs %d and %d (%v -> %v)", i-1, i, caps[i-1], caps[i])
		}
	}
}

func TestTimelineConfigValidate(t *testing.T) {
	var nilCfg *TimelineConfig
	if err := nilCfg.Validate(); err != nil {
		t.Errorf("nil config: %v", err)
	}
	if err := (&TimelineConfig{Points: -1}).Validate(); err == nil {
		t.Error("negative Points accepted")
	}
	if got := (&TimelineConfig{}).points(); got != DefaultTimelinePoints {
		t.Errorf("default points = %d, want %d", got, DefaultTimelinePoints)
	}
}

// TestEpochSamplerBoundary drives the reference note() directly: epochs
// advance past multi-epoch retirements and the flush captures the tail.
func TestEpochSamplerBoundary(t *testing.T) {
	es := newEpochSampler(&TimelineConfig{EpochInstructions: 100, Points: 8}, 1000)
	s := &simulator{}
	es.note(s, 50)
	if got := es.tl.Snapshot().Len(); got != 0 {
		t.Errorf("sampled %d epochs before a boundary", got)
	}
	es.note(s, 50) // lands exactly on the boundary
	if got := es.tl.Snapshot().Len(); got != 1 {
		t.Errorf("boundary crossing sampled %d epochs, want 1", got)
	}
	es.note(s, 350) // one retirement spanning several epochs
	snap := es.tl.Snapshot()
	if got := snap.Len(); got != 2 {
		t.Fatalf("multi-epoch retirement sampled %d points, want 2", got)
	}
	if snap.X[1] != 450 {
		t.Errorf("second sample at %d instructions, want 450", snap.X[1])
	}
	if es.next != 500 {
		t.Errorf("next boundary = %d, want 500", es.next)
	}
	es.flush(s)
	if got := es.tl.Snapshot().Len(); got != 2 {
		t.Error("flush with no pending instructions emitted a point")
	}
	es.note(s, 10)
	es.flush(s)
	snap = es.tl.Snapshot()
	if got := snap.Len(); got != 3 || snap.X[2] != 460 {
		t.Errorf("flush after a partial epoch: %d points ending at %v", snap.Len(), snap.X)
	}
}
