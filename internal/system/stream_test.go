package system

// Equivalence tests for the streaming pipeline and the tag-store layout
// swap at the whole-simulator level: RunStream must be byte-identical to
// Run on the same access sequence (every counter, clock and energy
// figure), and RunLayout(LayoutAoS) byte-identical to the default SoA
// layout, across machine variants that exercise every optional subsystem
// (coherence, hybrid LLC, wear tracking, dead-block bypass, write
// contention).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"nvmllc/internal/cache"
	"nvmllc/internal/reference"
	"nvmllc/internal/trace"
	"nvmllc/internal/workload"
)

// machineVariants are the configs the equivalence suites sweep. Each
// returns a config for the given core count.
func machineVariants(t *testing.T) map[string]func(cores int) Config {
	t.Helper()
	kang, err := reference.ModelByName(reference.FixedCapacityModels(), "Kang_P")
	if err != nil {
		t.Fatal(err)
	}
	return map[string]func(cores int) Config{
		"sram": func(cores int) Config {
			return sramConfig().WithCores(cores)
		},
		"nvm-wear-bypass": func(cores int) Config {
			cfg := Gainestown(kang).WithCores(cores)
			cfg.TrackWear = true
			cfg.LLCBypass = BypassDeadBlock
			return cfg
		},
		"nvm-contention-srrip": func(cores int) Config {
			cfg := Gainestown(kang).WithCores(cores)
			cfg.ModelWriteContention = true
			cfg.LLCPolicy = cache.SRRIP
			return cfg
		},
		"nvm-random-nocoherence": func(cores int) Config {
			cfg := Gainestown(kang).WithCores(cores)
			cfg.LLCPolicy = cache.Random
			cfg.DisableCoherence = true
			return cfg
		},
		"hybrid": func(cores int) Config {
			cfg := Gainestown(kang).WithCores(cores)
			cfg.Hybrid = &HybridConfig{SRAM: reference.SRAMBaseline(), NVM: kang, SRAMWays: 4}
			return cfg
		},
	}
}

func marshalResult(t *testing.T, r *Result) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestStreamMatchesWholeTrace: simulating a workload through the chunked
// streaming path (generator → double buffer → per-core queues) must be
// byte-identical to materializing the whole trace and running it, for
// every machine variant, thread count and chunk size — including chunks
// far smaller than a scheduling quantum, which force mid-flight refills.
func TestStreamMatchesWholeTrace(t *testing.T) {
	prof, err := workload.ByName("ft")
	if err != nil {
		t.Fatal(err)
	}
	for name, mkCfg := range machineVariants(t) {
		for _, threads := range []int{1, 2, 8} {
			opts := workload.Options{Accesses: 20000, Threads: threads}
			tr, err := workload.Generate(prof, opts)
			if err != nil {
				t.Fatal(err)
			}
			cfg := mkCfg(threads)
			want, err := Run(context.Background(), cfg, tr)
			if err != nil {
				t.Fatal(err)
			}
			wantB := marshalResult(t, want)
			for _, chunk := range []int{64, 1000, DefaultChunkAccesses} {
				for _, slots := range []int{2, DefaultRingSlots, 8} {
					gen, err := workload.NewGenerator(prof, opts)
					if err != nil {
						t.Fatal(err)
					}
					got, _, err := runStreamChunked(context.Background(), cfg, gen, nil, chunk, slots)
					if err != nil {
						t.Fatalf("%s/%dt/chunk=%d/slots=%d: %v", name, threads, chunk, slots, err)
					}
					if gotB := marshalResult(t, got); !bytes.Equal(gotB, wantB) {
						t.Errorf("%s/%dt/chunk=%d/slots=%d: streaming diverged\nstream: %s\nwhole:  %s", name, threads, chunk, slots, gotB, wantB)
					}
				}
			}
		}
	}
}

// TestTraceSourceStreaming: streaming a materialized trace back through
// trace.TraceSource must reproduce the whole-trace result, and reusing
// one Scratch across repeated streaming runs must not change anything.
func TestTraceSourceStreaming(t *testing.T) {
	prof, err := workload.ByName("is")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.Generate(prof, workload.Options{Accesses: 15000, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sramConfig().WithCores(4)
	want, err := Run(context.Background(), cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	wantB := marshalResult(t, want)
	scratch := new(Scratch)
	for i := 0; i < 3; i++ {
		src, err := trace.NewTraceSource(tr)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunStreamWith(context.Background(), cfg, src, scratch)
		if err != nil {
			t.Fatal(err)
		}
		if gotB := marshalResult(t, got); !bytes.Equal(gotB, wantB) {
			t.Errorf("run %d: TraceSource streaming diverged\nstream: %s\nwhole:  %s", i, gotB, wantB)
		}
	}
}

// TestRunLayoutEquivalence: the packed SoA tag store and the retained
// reference layout must produce byte-identical results through the full
// simulator on every machine variant.
func TestRunLayoutEquivalence(t *testing.T) {
	prof, err := workload.ByName("ft")
	if err != nil {
		t.Fatal(err)
	}
	for name, mkCfg := range machineVariants(t) {
		for _, threads := range []int{1, 4} {
			tr, err := workload.Generate(prof, workload.Options{Accesses: 20000, Threads: threads})
			if err != nil {
				t.Fatal(err)
			}
			cfg := mkCfg(threads)
			soa, err := RunLayout(context.Background(), cfg, tr, cache.LayoutSoA, nil)
			if err != nil {
				t.Fatal(err)
			}
			aos, err := RunLayout(context.Background(), cfg, tr, cache.LayoutAoS, nil)
			if err != nil {
				t.Fatal(err)
			}
			sb, ab := marshalResult(t, soa), marshalResult(t, aos)
			if !bytes.Equal(sb, ab) {
				t.Errorf("%s/%dt: layouts disagree\nsoa: %s\naos: %s", name, threads, sb, ab)
			}
		}
	}
}

// lyingSource wraps a ChunkSource and misdeclares or corrupts its stream.
type lyingSource struct {
	trace.ChunkSource
	meta     trace.Meta
	truncate int64 // stop after this many accesses (0 = no truncation)
	sent     int64
	badTid   bool
	badKind  bool
}

func (s *lyingSource) Meta() trace.Meta { return s.meta }

func (s *lyingSource) ReadChunk(buf []trace.Access) (int, error) {
	if s.truncate > 0 && s.sent >= s.truncate {
		return 0, nil
	}
	n, err := s.ChunkSource.ReadChunk(buf)
	if err != nil || n == 0 {
		return n, err
	}
	if s.truncate > 0 && s.sent+int64(n) > s.truncate {
		n = int(s.truncate - s.sent)
	}
	s.sent += int64(n)
	if s.badTid {
		buf[0].Tid = 63
	}
	if s.badKind {
		buf[0].Kind = trace.Kind(200)
	}
	return n, nil
}

// TestStreamSourceValidation: sources that end early, overrun their
// declared per-thread counts, or emit malformed accesses must fail the
// run with an error instead of corrupting the pacing.
func TestStreamSourceValidation(t *testing.T) {
	prof, err := workload.ByName("ft")
	if err != nil {
		t.Fatal(err)
	}
	opts := workload.Options{Accesses: 5000, Threads: 2}
	mk := func() (*workload.Generator, trace.Meta) {
		g, err := workload.NewGenerator(prof, opts)
		if err != nil {
			t.Fatal(err)
		}
		return g, g.Meta()
	}
	cfg := sramConfig().WithCores(2)
	run := func(src trace.ChunkSource) error {
		_, err := RunStream(context.Background(), cfg, src)
		return err
	}

	g, meta := mk()
	if err := run(&lyingSource{ChunkSource: g, meta: meta, truncate: meta.Accesses / 2}); err == nil {
		t.Error("stream ending early must error")
	}
	g, meta = mk()
	over := meta
	over.Accesses /= 2
	per := make([]int64, meta.Threads)
	for t := range per {
		per[t] = over.Accesses / int64(meta.Threads)
	}
	over.PerThread = per
	if err := run(&lyingSource{ChunkSource: g, meta: over}); err == nil {
		t.Error("producing more than the declared per-thread counts must error")
	}
	g, meta = mk()
	if err := run(&lyingSource{ChunkSource: g, meta: meta, badTid: true}); err == nil {
		t.Error("out-of-range tid must error")
	}
	g, meta = mk()
	if err := run(&lyingSource{ChunkSource: g, meta: meta, badKind: true}); err == nil {
		t.Error("invalid access kind must error")
	}
	g, meta = mk()
	bad := meta
	bad.PerThread = nil
	if err := run(&lyingSource{ChunkSource: g, meta: bad}); err == nil {
		t.Error("inconsistent Meta must fail validation")
	}
}

// TestStreamCancellation: cancelling the context aborts a streaming run
// promptly with ctx.Err() and shuts the producer down cleanly.
func TestStreamCancellation(t *testing.T) {
	prof, err := workload.ByName("ft")
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.NewGenerator(prof, workload.Options{Accesses: 2_000_000, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunStream(ctx, sramConfig().WithCores(4), g); err == nil {
		t.Fatal("cancelled streaming run returned no error")
	} else if err != context.Canceled {
		// Pre-flight rejection also acceptable; anything but success is.
		if !errorsIsContext(err) {
			t.Fatalf("unexpected error: %v", err)
		}
	}
}

func errorsIsContext(err error) bool {
	return err == context.Canceled || err == context.DeadlineExceeded ||
		fmt.Sprint(err) == context.Canceled.Error()
}

// skewTrace builds a two-thread trace whose stream order is maximally
// skewed: every thread-0 access is produced before any thread-1 access,
// so the consumer must buffer thread 0's chunks while thread 1 (whose
// clock stays earliest) starves for its first access. With a bounded
// ring this is exactly the state that forces slot evacuation.
func skewTrace(perThread int) *trace.Trace {
	accs := make([]trace.Access, 0, 2*perThread)
	for tid := uint8(0); tid < 2; tid++ {
		for i := 0; i < perThread; i++ {
			kind := trace.Read
			switch i % 3 {
			case 1:
				kind = trace.Write
			case 2:
				kind = trace.Ifetch
			}
			accs = append(accs, trace.Access{
				Addr: uint64(i)*64*7 + uint64(tid)<<20,
				Tid:  tid,
				Kind: kind,
			})
		}
	}
	return &trace.Trace{
		Name:       "skew",
		Threads:    2,
		InstrCount: uint64(3 * len(accs)),
		Accesses:   accs,
	}
}

// TestStreamSkewEvacuation: a stream whose thread interleaving outruns
// the ring depth must complete (no deadlock between the bounded ring and
// the starved producer), actually exercise the evacuation path, and stay
// byte-identical to the whole-trace run.
func TestStreamSkewEvacuation(t *testing.T) {
	tr := skewTrace(640)
	cfg := sramConfig().WithCores(2)
	want, err := Run(context.Background(), cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	wantB := marshalResult(t, want)
	scratch := new(Scratch)
	for _, slots := range []int{2, 4} {
		// Two runs per depth: the second reuses the scratch's recycled
		// spill slots.
		for round := 0; round < 2; round++ {
			src, err := trace.NewTraceSource(tr)
			if err != nil {
				t.Fatal(err)
			}
			got, stats, err := runStreamChunked(context.Background(), cfg, src, scratch, 64, slots)
			if err != nil {
				t.Fatalf("slots=%d round=%d: %v", slots, round, err)
			}
			if stats.evacuations == 0 {
				t.Errorf("slots=%d round=%d: skewed stream performed no evacuations; the deadlock path is untested", slots, round)
			}
			if gotB := marshalResult(t, got); !bytes.Equal(gotB, wantB) {
				t.Errorf("slots=%d round=%d: evacuating stream diverged\nstream: %s\nwhole:  %s", slots, round, gotB, wantB)
			}
		}
	}
}

// errorTailSource delivers its trace faithfully, then returns an error
// where a well-behaved source would report exhaustion. The consumer
// finishes before the producer's error can be delivered, so the error
// lands after the consumer is gone — the producer must abandon the
// handoff instead of blocking forever (the run then tears down cleanly
// and returns the completed result).
type errorTailSource struct {
	*trace.TraceSource
	done bool
}

func (s *errorTailSource) ReadChunk(buf []trace.Access) (int, error) {
	n, err := s.TraceSource.ReadChunk(buf)
	if err == nil && n == 0 {
		if s.done {
			return 0, nil
		}
		s.done = true
		return 0, fmt.Errorf("synthetic post-stream failure")
	}
	return n, err
}

// TestStreamProducerErrorAfterConsumerExit: a producer that fails after
// the consumer has everything it needs must not hang the run on a slot
// handoff. Regression test for the free/out channel waits not observing
// the run lifecycle.
func TestStreamProducerErrorAfterConsumerExit(t *testing.T) {
	prof, err := workload.ByName("is")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.Generate(prof, workload.Options{Accesses: 10000, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sramConfig().WithCores(2)
	want, err := Run(context.Background(), cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	src, err := trace.NewTraceSource(tr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunStream(context.Background(), cfg, &errorTailSource{TraceSource: src})
	if err != nil {
		t.Fatalf("completed stream failed on its post-stream producer error: %v", err)
	}
	if gotB, wantB := marshalResult(t, got), marshalResult(t, want); !bytes.Equal(gotB, wantB) {
		t.Errorf("stream with failing tail diverged\nstream: %s\nwhole:  %s", gotB, wantB)
	}
}

// TestStreamCancellationMidRun: cancelling while the pipeline is deep in
// flight (producer possibly blocked on a slot handoff) must unwind both
// goroutines promptly — the deferred shutdown drains the producer, so a
// hang here fails the package timeout.
func TestStreamCancellationMidRun(t *testing.T) {
	prof, err := workload.ByName("ft")
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.NewGenerator(prof, workload.Options{Accesses: 50_000_000, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Let the run get going before pulling the plug.
		for i := 0; i < 1_000_000; i++ {
			_ = i
		}
		cancel()
	}()
	if _, err := RunStream(ctx, sramConfig().WithCores(4), g); !errorsIsContext(err) {
		t.Fatalf("mid-run cancellation returned %v, want context error", err)
	}
}
