package system

// Batched hot-loop pre-decode. The per-access hierarchy walk used to
// recompute the same geometry at every level — shift the address into a
// line, mask it into a set, multiply into a tag-store base — for every
// access, interleaved with the pointer-chasing cache probes. A decoder
// instead runs one batch pass per trace chunk (or over the whole
// materialized split) that precomputes the line address, the per-level
// set bases, and the access kind into SoA lane arrays; the simulation
// loop then consumes the lanes and hands the bases to
// cache.AccessAt, keeping the shift/mask work out of the dispatch path
// and in a tight, bounds-check-eliminated loop. The lanes carry exactly
// the values the eager path computed, so results are byte-identical
// (pinned by the stream/layout/scheduler equivalence suites).

import (
	"nvmllc/internal/cache"
	"nvmllc/internal/trace"
)

// laneBuf holds the pre-decoded SoA lanes for a run of accesses: the
// line address, the set base per cache level (the L1 lane is resolved by
// kind — instruction fetches decode against the L1I, everything else
// against the L1D), and the access kind. Each access costs
// laneBytesPerAccess bytes of lane storage.
type laneBuf struct {
	line []uint64
	l1   []int32
	l2   []int32
	llc  []int32
	kind []trace.Kind
}

// laneBytesPerAccess is the lane storage per decoded access (8 + 4 + 4 +
// 4 + 1), the figure the peak-footprint accounting in cmd/benchreport
// uses.
const laneBytesPerAccess = 21

// ensure grows the lanes to hold n accesses, reusing prior capacity.
func (b *laneBuf) ensure(n int) {
	if cap(b.line) < n {
		b.line = make([]uint64, n)
		b.l1 = make([]int32, n)
		b.l2 = make([]int32, n)
		b.llc = make([]int32, n)
		b.kind = make([]trace.Kind, n)
	}
	b.line = b.line[:n]
	b.l1 = b.l1[:n]
	b.l2 = b.l2[:n]
	b.llc = b.llc[:n]
	b.kind = b.kind[:n]
}

// decoder is an immutable copy of the machine's set-index geometry. The
// streaming producer goroutine decodes with it while the consumer drives
// the caches, so it must not alias any mutable simulator state — it
// holds only the mask/ways values, which never change after
// construction. Every core's private levels share one geometry, so one
// decoder serves all cores.
type decoder struct {
	blockBits uint
	l1iMask   uint64
	l1dMask   uint64
	l2Mask    uint64
	llcMask   uint64
	l1iWays   int32
	l1dWays   int32
	l2Ways    int32
	llcWays   int32
}

func newDecoder(s *simulator) decoder {
	geom := func(c *cache.Cache) (uint64, int32) {
		mask, ways := c.Geometry()
		return mask, int32(ways)
	}
	d := decoder{blockBits: s.blockBits}
	c0 := s.cores[0]
	d.l1iMask, d.l1iWays = geom(c0.l1i)
	d.l1dMask, d.l1dWays = geom(c0.l1d)
	d.l2Mask, d.l2Ways = geom(c0.l2)
	if s.llc != nil {
		// Hybrid mode has no monolithic LLC; its lane stays zero and the
		// hybrid walk never reads it.
		d.llcMask, d.llcWays = geom(s.llc)
	}
	return d
}

// decodeInto batch-decodes a contiguous run of accesses into lane
// windows of the same length. The self-slicing hoists every bounds check
// out of the loop body.
func (d *decoder) decodeInto(accs []trace.Access, line []uint64, l1, l2, llc []int32, kind []trace.Kind) {
	n := len(accs)
	line = line[:n]
	l1 = l1[:n]
	l2 = l2[:n]
	llc = llc[:n]
	kind = kind[:n]
	for i := range accs {
		a := accs[i]
		ln := a.Addr >> d.blockBits
		line[i] = ln
		kind[i] = a.Kind
		b1 := int32(ln&d.l1dMask) * d.l1dWays
		if a.Kind == trace.Ifetch {
			b1 = int32(ln&d.l1iMask) * d.l1iWays
		}
		l1[i] = b1
		l2[i] = int32(ln&d.l2Mask) * d.l2Ways
		llc[i] = int32(ln&d.llcMask) * d.llcWays
	}
}

// put decodes a single access into lane slot j (the streaming producer's
// scatter path, where per-thread destinations interleave).
func (d *decoder) put(b *laneBuf, j int, a trace.Access) {
	ln := a.Addr >> d.blockBits
	b.line[j] = ln
	b.kind[j] = a.Kind
	b1 := int32(ln&d.l1dMask) * d.l1dWays
	if a.Kind == trace.Ifetch {
		b1 = int32(ln&d.l1iMask) * d.l1iWays
	}
	b.l1[j] = b1
	b.l2[j] = int32(ln&d.l2Mask) * d.l2Ways
	b.llc[j] = int32(ln&d.llcMask) * d.llcWays
}

// setLanes points a core's consumption views at a lane window.
func (cs *coreState) setLanes(b *laneBuf, off, n int) {
	cs.line = b.line[off : off+n]
	cs.l1b = b.l1[off : off+n]
	cs.l2b = b.l2[off : off+n]
	cs.llcb = b.llc[off : off+n]
	cs.kind = b.kind[off : off+n]
	cs.pos = 0
}

// clearLanes empties a core's views.
func (cs *coreState) clearLanes() {
	cs.line = nil
	cs.l1b = nil
	cs.l2b = nil
	cs.llcb = nil
	cs.kind = nil
	cs.pos = 0
}

// traceAccessBytes is the size of one trace.Access (the raw chunk and
// split storage unit) for the peak-footprint accounting.
const traceAccessBytes = 16

// MaterializedPeakBytes estimates the peak resident trace-buffer
// footprint of a whole-trace run: the materialized trace itself, the
// per-thread split copy, and the pre-decoded lanes — all O(trace).
func MaterializedPeakBytes(accesses int64) int64 {
	return accesses * (2*traceAccessBytes + laneBytesPerAccess)
}

// StreamingPeakBytes estimates the peak resident trace-buffer footprint
// of a streaming run: ringSlots chunk buffers each holding the raw
// accesses plus their decoded lanes — O(chunk × ring), independent of
// trace length.
func StreamingPeakBytes(chunkAccesses, ringSlots int) int64 {
	return int64(ringSlots) * int64(chunkAccesses) * (traceAccessBytes + laneBytesPerAccess)
}

// StreamedTracePeakBytes estimates the peak resident trace-buffer
// footprint of streaming an already-materialized trace: the trace stays
// resident, but the per-thread split copy and the whole-trace lanes are
// never built — only the ring's O(chunk × ring) window exists alongside
// it.
func StreamedTracePeakBytes(accesses int64, chunkAccesses, ringSlots int) int64 {
	return accesses*traceAccessBytes + StreamingPeakBytes(chunkAccesses, ringSlots)
}
