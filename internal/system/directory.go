package system

// Full-map directory coherence (Table IV: "104K entries/directory
// controller, full-map directory"). The directory tracks which cores hold
// a copy of each line in their private caches; a store from one core
// invalidates the copies in the others, and a dirty remote copy is written
// back through the LLC first. Data values are not modeled (the simulator
// is timing/energy-only), so the directory's job is to reproduce the
// coherence *traffic*: invalidations, remote writebacks, and the extra LLC
// writes they cause on shared, write-shared workloads.

// DirectoryStats counts coherence events.
type DirectoryStats struct {
	// Invalidations counts private-cache copies invalidated by remote
	// stores.
	Invalidations uint64
	// RemoteWritebacks counts dirty remote copies flushed to the LLC by an
	// invalidation.
	RemoteWritebacks uint64
	// InterventionStalls counts loads/stores that paid an intervention
	// latency because another core held the line dirty.
	InterventionStalls uint64
}

// directory is a full-map sharers table keyed by line address. A bit set
// in the mask means the corresponding core may hold the line in L1/L2.
// The table is consulted on every private-cache miss, fill and eviction,
// so it uses a specialized open-addressed hash table instead of a Go map
// — line-address keys need no generic hashing, and the sharer mask is
// never zero for a stored entry (noteEvict deletes emptied lines), which
// lets mask==0 mark empty slots.
type directory struct {
	sharers sharerTable
	stats   DirectoryStats
}

func newDirectory() *directory {
	return newDirectoryWith(sharerTable{})
}

// newDirectoryWith builds a directory on recycled table storage (from a
// Scratch), clearing any previous contents; a zero table allocates
// fresh.
func newDirectoryWith(t sharerTable) *directory {
	d := &directory{sharers: t}
	if len(d.sharers.entries) == 0 {
		d.sharers.init(1 << 10)
	} else {
		d.sharers.clear()
	}
	return d
}

// noteFill records that core holds the line after a fill.
func (d *directory) noteFill(line uint64, core int) {
	d.sharers.orBit(line, 1<<uint(core))
}

// noteEvict clears core's sharer bit (called when a private cache drops
// the line entirely).
func (d *directory) noteEvict(line uint64, core int) {
	d.sharers.clearBit(line, 1<<uint(core))
}

// othersHolding returns the sharer mask excluding the requesting core.
func (d *directory) othersHolding(line uint64, core int) uint64 {
	return d.sharers.get(line) &^ (1 << uint(core))
}

// sharerEntry is one slot of the table: the line address and its sharer
// mask side by side, so a probe touches one cache line instead of two
// parallel arrays (the table is probed on every private-cache miss, fill
// and eviction — it profiles as one of the simulator's hottest data
// structures, and its misses are DRAM-bound).
type sharerEntry struct {
	key  uint64
	mask uint64
}

// sharerTable is an open-addressed, linear-probed uint64→uint64 hash
// table holding the directory's line→sharer-mask entries. Invariant: a
// stored mask is never zero, so mask==0 marks an empty slot. Entries
// bounded by total private-cache lines keep the load factor low; the
// table doubles at 3/4 full.
type sharerTable struct {
	entries []sharerEntry
	shift   uint // 64 - log2(len(entries)), for fibonacci hashing
	used    int
}

// clear empties the table, keeping its capacity.
func (t *sharerTable) clear() {
	for i := range t.entries {
		t.entries[i] = sharerEntry{}
	}
	t.used = 0
}

func (t *sharerTable) init(size int) {
	t.entries = make([]sharerEntry, size)
	t.shift = 64
	for s := size; s > 1; s >>= 1 {
		t.shift--
	}
	t.used = 0
}

// home is the preferred slot for a key (fibonacci hashing).
func (t *sharerTable) home(key uint64) int {
	return int((key * 0x9E3779B97F4A7C15) >> t.shift)
}

// get returns the stored mask, or 0 when the line is untracked.
func (t *sharerTable) get(line uint64) uint64 {
	mask := uint64(len(t.entries) - 1)
	for i := t.home(line); ; i = int((uint64(i) + 1) & mask) {
		e := t.entries[i]
		if e.mask == 0 {
			return 0
		}
		if e.key == line {
			return e.mask
		}
	}
}

// orBit sets bit in the line's mask, inserting the entry if absent.
func (t *sharerTable) orBit(line, bit uint64) {
	mask := uint64(len(t.entries) - 1)
	for i := t.home(line); ; i = int((uint64(i) + 1) & mask) {
		e := &t.entries[i]
		if e.mask == 0 {
			e.key = line
			e.mask = bit
			if t.used++; 4*t.used >= 3*len(t.entries) {
				t.grow()
			}
			return
		}
		if e.key == line {
			e.mask |= bit
			return
		}
	}
}

// clearBit clears bit in the line's mask, deleting the entry when the
// mask empties. Unknown lines are a no-op.
func (t *sharerTable) clearBit(line, bit uint64) {
	mask := uint64(len(t.entries) - 1)
	for i := t.home(line); ; i = int((uint64(i) + 1) & mask) {
		e := &t.entries[i]
		if e.mask == 0 {
			return
		}
		if e.key == line {
			if e.mask &^= bit; e.mask == 0 {
				t.del(i)
			}
			return
		}
	}
}

// del empties slot i and backward-shifts the probe chain so lookups
// never cross a false hole (standard linear-probing deletion).
func (t *sharerTable) del(i int) {
	mask := uint64(len(t.entries) - 1)
	t.used--
	j := i
	for {
		j = int((uint64(j) + 1) & mask)
		if t.entries[j].mask == 0 {
			break
		}
		k := t.home(t.entries[j].key)
		// Slot j's entry may move into the hole at i only if i lies in
		// its probe path [k, j) (cyclically).
		if j > i {
			if k <= i || k > j {
				t.entries[i] = t.entries[j]
				i = j
			}
		} else if k <= i && k > j {
			t.entries[i] = t.entries[j]
			i = j
		}
	}
	t.entries[i] = sharerEntry{}
}

// grow doubles the table and rehashes every live entry.
func (t *sharerTable) grow() {
	old := t.entries
	t.init(2 * len(old))
	mask := uint64(len(t.entries) - 1)
	for _, e := range old {
		if e.mask == 0 {
			continue
		}
		j := t.home(e.key)
		for t.entries[j].mask != 0 {
			j = int((uint64(j) + 1) & mask)
		}
		t.entries[j] = e
		t.used++
	}
}

// invalidateOthers removes every other core's copy, returning how many
// copies were dropped and how many were dirty (needing writeback).
func (s *simulator) invalidateOthers(line uint64, core int) (dropped, dirtyWb int) {
	mask := s.dir.othersHolding(line, core)
	if mask == 0 {
		return 0, 0
	}
	for c := 0; mask != 0; c++ {
		bit := uint64(1) << uint(c)
		if mask&bit == 0 {
			continue
		}
		mask &^= bit
		cs := s.cores[c]
		anyDirty := false
		if present, dirty := cs.l1d.Invalidate(line); present {
			dropped++
			anyDirty = anyDirty || dirty
		}
		if present, dirty := cs.l2.Invalidate(line); present {
			dropped++
			anyDirty = anyDirty || dirty
		}
		if anyDirty {
			dirtyWb++
		}
		s.dir.noteEvict(line, c)
	}
	s.dir.sharers.orBit(line, 1<<uint(core))
	d := &s.dir.stats
	d.Invalidations += uint64(dropped)
	d.RemoteWritebacks += uint64(dirtyWb)
	return dropped, dirtyWb
}
