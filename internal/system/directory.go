package system

// Full-map directory coherence (Table IV: "104K entries/directory
// controller, full-map directory"). The directory tracks which cores hold
// a copy of each line in their private caches; a store from one core
// invalidates the copies in the others, and a dirty remote copy is written
// back through the LLC first. Data values are not modeled (the simulator
// is timing/energy-only), so the directory's job is to reproduce the
// coherence *traffic*: invalidations, remote writebacks, and the extra LLC
// writes they cause on shared, write-shared workloads.

// DirectoryStats counts coherence events.
type DirectoryStats struct {
	// Invalidations counts private-cache copies invalidated by remote
	// stores.
	Invalidations uint64
	// RemoteWritebacks counts dirty remote copies flushed to the LLC by an
	// invalidation.
	RemoteWritebacks uint64
	// InterventionStalls counts loads/stores that paid an intervention
	// latency because another core held the line dirty.
	InterventionStalls uint64
}

// directory is a full-map sharers table keyed by line address. A bit set
// in the mask means the corresponding core may hold the line in L1/L2.
type directory struct {
	sharers map[uint64]uint64
	stats   DirectoryStats
}

func newDirectory() *directory {
	return &directory{sharers: make(map[uint64]uint64)}
}

// noteFill records that core holds the line after a fill.
func (d *directory) noteFill(line uint64, core int) {
	d.sharers[line] |= 1 << uint(core)
}

// noteEvict clears core's sharer bit (called when a private cache drops
// the line entirely).
func (d *directory) noteEvict(line uint64, core int) {
	m := d.sharers[line] &^ (1 << uint(core))
	if m == 0 {
		delete(d.sharers, line)
	} else {
		d.sharers[line] = m
	}
}

// othersHolding returns the sharer mask excluding the requesting core.
func (d *directory) othersHolding(line uint64, core int) uint64 {
	return d.sharers[line] &^ (1 << uint(core))
}

// invalidateOthers removes every other core's copy, returning how many
// copies were dropped and how many were dirty (needing writeback).
func (s *simulator) invalidateOthers(line uint64, core int) (dropped, dirtyWb int) {
	mask := s.dir.othersHolding(line, core)
	if mask == 0 {
		return 0, 0
	}
	for c := 0; mask != 0; c++ {
		bit := uint64(1) << uint(c)
		if mask&bit == 0 {
			continue
		}
		mask &^= bit
		cs := s.cores[c]
		anyDirty := false
		if present, dirty := cs.l1d.Invalidate(line); present {
			dropped++
			anyDirty = anyDirty || dirty
		}
		if present, dirty := cs.l2.Invalidate(line); present {
			dropped++
			anyDirty = anyDirty || dirty
		}
		if anyDirty {
			dirtyWb++
		}
		s.dir.noteEvict(line, c)
	}
	s.dir.sharers[line] |= 1 << uint(core)
	d := &s.dir.stats
	d.Invalidations += uint64(dropped)
	d.RemoteWritebacks += uint64(dirtyWb)
	return dropped, dirtyWb
}
