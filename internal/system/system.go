// Package system is the trace-driven full-system simulator standing in for
// Sniper (Section IV): a multi-core Gainestown-class machine with private
// L1I/L1D/L2 caches, a shared NVM- or SRAM-based LLC, and distributed DRAM
// controllers.
//
// The LLC is the paper's modified Sniper LLC: reads are on the critical
// path with their technology-specific tag and data latencies, writes (fills
// and writebacks) happen off the critical path, and per-access dynamic
// energy follows equations (6)-(8). Leakage integrates over execution time.
// Setting Config.ModelWriteContention recreates the behavior the paper
// flags as absent from its simulator — LLC writes occupying banks and
// delaying reads — and is used by the ablation benchmarks.
package system

import (
	"context"
	"fmt"
	"math"
	"math/bits"

	"nvmllc/internal/cache"
	"nvmllc/internal/cpu"
	"nvmllc/internal/dram"
	"nvmllc/internal/fault"
	"nvmllc/internal/nvsim"
	"nvmllc/internal/profile"
	"nvmllc/internal/telemetry"
	"nvmllc/internal/trace"
)

// Config describes the simulated machine.
type Config struct {
	// Cores is the number of cores (threads map 1:1 onto cores).
	Cores int
	// Core is the per-core timing model.
	Core cpu.Params
	// BlockBytes is the line size used at every level (paper: 64).
	BlockBytes int
	// L1IBytes/L1IWays, L1DBytes/L1DWays, L2Bytes/L2Ways size the private
	// levels (Table IV: 32KB/4, 32KB/8, 256KB/8).
	L1IBytes int64
	L1IWays  int
	L1DBytes int64
	L1DWays  int
	L2Bytes  int64
	L2Ways   int
	// L2LatencyNS is the L2 hit latency exposed to loads.
	L2LatencyNS float64
	// LLC is the last-level cache model under evaluation.
	LLC nvsim.LLCModel
	// LLCWays is the LLC associativity (paper: 16).
	LLCWays int
	// LLCBanks is the number of independently schedulable LLC banks, used
	// only when ModelWriteContention is set.
	LLCBanks int
	// DRAM is the main memory model.
	DRAM dram.Config
	// Memory optionally replaces the default DRAM model with any
	// MainMemory implementation (e.g. an internal/mainmem NVM main
	// memory). When set, Result.DRAM stays zero and the caller reads
	// statistics from its own model.
	Memory MainMemory
	// ModelWriteContention, when true, makes LLC writes occupy banks so
	// reads queue behind slow NVM writes. The paper's simulator keeps
	// writes entirely off the critical path (the default, false).
	ModelWriteContention bool
	// TrackWear, when true, records per-line and per-set LLC write counts
	// for the endurance/lifetime study (Section VII future work).
	TrackWear bool
	// Fault parameterizes wear-driven stuck-at fault injection with
	// graceful degradation (internal/fault): LLC writes age the array,
	// worn cells fail their write-verify retries, faulty ways are
	// disabled per-set and dead sets are bypassed to DRAM. The zero value
	// is inert — it resolves to infinite endurance, so the simulation is
	// bit-identical to a fault-free build (test-enforced). Deterministic:
	// the fault sequence is derived from Fault.Seed, never wall-clock or
	// global RNG state, so it participates in the engine's result-cache
	// key like every other Config value field.
	Fault fault.Config
	// LLCPolicy selects the LLC replacement policy (default cache.LRU,
	// the paper's configuration).
	LLCPolicy cache.Policy
	// LLCBypass enables NVM write bypassing at the LLC (default off).
	LLCBypass BypassPolicy
	// DisableCoherence turns off the full-map directory (Table IV) that
	// keeps private caches coherent on multi-threaded traces. Coherence is
	// modeled by default whenever a trace has more than one thread.
	DisableCoherence bool
	// Hybrid replaces the single-technology LLC with a hybrid SRAM/NVM
	// LLC (write-aware placement and migration, the paper's cited
	// technique [7]). When set, Config.LLC is ignored; TrackWear and
	// LLCBypass are unsupported in hybrid mode.
	Hybrid *HybridConfig
	// Telemetry optionally receives the run's instrumentation: per-level
	// cache hit/miss/writeback counters, per-bank LLC contention stalls
	// and the DRAM queue-latency histogram are published into it when the
	// simulation completes. Pure observation: it never alters simulation
	// behavior and is excluded from the engine's result-cache key.
	Telemetry *telemetry.Registry
	// Timeline, when non-nil, samples the run at fixed instruction
	// epochs and surfaces the per-epoch series as Result.Timeline (plus
	// a per-set wear/access heatmap when TrackWear is on). Observation
	// only — it never alters simulation behavior and is excluded from
	// the engine's result-cache key — but unlike Telemetry it enriches
	// the Result, so the engine re-simulates cached timeline-less
	// results for jobs that ask for one.
	Timeline *TimelineConfig
}

// Gainestown returns the paper's simulated architecture (Table IV) around
// the given LLC model.
func Gainestown(llc nvsim.LLCModel) Config {
	return Config{
		Cores:       4,
		Core:        cpu.Gainestown(),
		BlockBytes:  64,
		L1IBytes:    32 << 10,
		L1IWays:     4,
		L1DBytes:    32 << 10,
		L1DWays:     8,
		L2Bytes:     256 << 10,
		L2Ways:      8,
		L2LatencyNS: 3.0, // 8 cycles at 2.66 GHz
		LLC:         llc,
		LLCWays:     16,
		LLCBanks:    4,
		DRAM:        dram.Gainestown(),
	}
}

// WithCores returns a copy configured for n cores.
func (c Config) WithCores(n int) Config {
	c.Cores = n
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Cores <= 0 || c.Cores > 64 {
		return fmt.Errorf("system: cores = %d, want 1..64", c.Cores)
	}
	if err := c.Core.Validate(); err != nil {
		return err
	}
	if err := c.Fault.Validate(); err != nil {
		return err
	}
	if err := c.Timeline.Validate(); err != nil {
		return err
	}
	if c.Hybrid != nil {
		if err := c.Hybrid.Validate(c.LLCWays); err != nil {
			return err
		}
		if c.TrackWear || c.LLCBypass != BypassNone {
			return fmt.Errorf("system: hybrid LLC does not support wear tracking or bypass")
		}
		if c.Fault.Enabled() {
			return fmt.Errorf("system: hybrid LLC does not support fault injection")
		}
	} else if err := c.LLC.Validate(); err != nil {
		return err
	}
	if c.LLCBanks <= 0 {
		return fmt.Errorf("system: LLC banks = %d, want positive", c.LLCBanks)
	}
	if c.L2LatencyNS < 0 {
		return fmt.Errorf("system: negative L2 latency")
	}
	return nil
}

// MainMemory abstracts the memory below the LLC: both internal/dram (the
// paper's fixed-latency bandwidth-limited controllers) and
// internal/mainmem (the NVMain-style row-buffered model) satisfy it.
// Completion times are in ns; writes are posted but still occupy the
// device.
type MainMemory interface {
	Read(nowNS float64, lineAddr uint64) (completeNS float64)
	Write(nowNS float64, lineAddr uint64) (completeNS float64)
}

// LLCStats counts last-level cache events as the paper's energy model needs
// them: demand lookups split into hits and misses, and writes (line fills
// plus writebacks arriving from L2).
type LLCStats struct {
	Hits, Misses, Writes uint64
	// BypassedFills and BypassedWritebacks count LLC writes avoided by
	// the bypass policy (zero unless Config.LLCBypass is enabled).
	BypassedFills, BypassedWritebacks uint64
}

// Accesses is demand lookups (hits + misses).
func (s LLCStats) Accesses() uint64 { return s.Hits + s.Misses }

// WriteFraction is the share of LLC traffic that writes the array —
// writes / (lookups + writes) — the quantity the paper's write-cost
// analysis (Section V) turns on.
func (s LLCStats) WriteFraction() float64 {
	total := s.Accesses() + s.Writes
	if total == 0 {
		return 0
	}
	return float64(s.Writes) / float64(total)
}

// Result is the outcome of one simulation.
type Result struct {
	// Workload is the trace name; LLCName identifies the LLC model.
	Workload string
	LLCName  string
	// Cores is the simulated core count.
	Cores int
	// TimeNS is the execution time (slowest core's finish time).
	TimeNS float64
	// Instructions is the total retired instruction count.
	Instructions uint64
	// LLC tallies last-level cache events.
	LLC LLCStats
	// L1I, L1D, L2 aggregate the private-cache stats across cores.
	L1I, L1D, L2 cache.Stats
	// DRAM tallies memory traffic.
	DRAM dram.Stats
	// LLCDynamicJ and LLCLeakageJ decompose LLC energy in joules.
	LLCDynamicJ, LLCLeakageJ float64
	// MemStallNS is the summed per-core load-stall time.
	MemStallNS float64
	// Wear holds LLC write-wear statistics when Config.TrackWear is set.
	Wear *WearStats
	// Degradation holds the fault-injection outcome (condemned ways,
	// write-verify retries, surviving capacity) when Config.Fault is
	// enabled; nil otherwise.
	Degradation *fault.Stats
	// Directory tallies coherence traffic (zero when coherence is off or
	// the trace is single-threaded).
	Directory DirectoryStats
	// Hybrid holds partition statistics when Config.Hybrid is set.
	Hybrid *HybridStats
	// DRAMWait is the per-request DRAM queue-latency distribution of this
	// run (nil when Config.Memory replaces the default DRAM model). Run
	// manifests report its quantile summary per design point.
	DRAMWait *telemetry.HistogramSnapshot
	// Timeline is the epoch-sampled series of this run (nil without
	// Config.Timeline): per-epoch LLC/DRAM/wear/fault deltas over retired
	// instructions. Phases() condenses it to a phase summary.
	Timeline *telemetry.TimelineSnapshot
	// WearHeatmap is the per-set writes×accesses grid (nil unless both
	// Config.Timeline and Config.TrackWear are set).
	WearHeatmap *telemetry.Heatmap
	// ClockGHz is the core frequency the run was configured with
	// (Config.Core.ClockGHz), recorded so IPC is computed against the
	// clock that actually ran rather than a hardcoded default.
	ClockGHz float64
	// Estimated marks a Result derived analytically from a reuse-distance
	// profile (internal/sweep's estimator fast path) instead of simulated.
	// Estimated results never enter the engine's result cache.
	Estimated bool
}

// Seconds returns execution time in seconds.
func (r *Result) Seconds() float64 { return r.TimeNS * 1e-9 }

// LLCEnergyJ is total LLC energy: dynamic plus leakage.
func (r *Result) LLCEnergyJ() float64 { return r.LLCDynamicJ + r.LLCLeakageJ }

// EDP is the LLC energy-delay product (J·s).
func (r *Result) EDP() float64 { return r.LLCEnergyJ() * r.Seconds() }

// ED2P is the LLC energy-delay-squared product (J·s²), the paper's primary
// combined metric.
func (r *Result) ED2P() float64 { return r.LLCEnergyJ() * r.Seconds() * r.Seconds() }

// LLCMPKI is LLC misses per thousand instructions (Table V's metric).
func (r *Result) LLCMPKI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.LLC.Misses) / float64(r.Instructions) * 1000
}

// IPC is aggregate instructions per cycle at the run's configured core
// clock (Result.ClockGHz). Hand-built Results that predate the ClockGHz
// field fall back to the 2.66 GHz Gainestown default.
func (r *Result) IPC() float64 {
	if r.TimeNS == 0 {
		return 0
	}
	ghz := r.ClockGHz
	if ghz == 0 {
		ghz = 2.66
	}
	return float64(r.Instructions) / (r.TimeNS * ghz)
}

// coreState bundles one core's pipeline and private caches with its share
// of the trace.
type coreState struct {
	idx      int
	core     *cpu.Core
	l1i, l1d *cache.Cache
	l2       *cache.Cache
	// line..kind are the core's current pre-decoded segment (SoA lane
	// views — see predecode.go): the whole per-thread split on the
	// materialized path, one chunk's per-thread slice on the streaming
	// path. pos indexes into them.
	line []uint64
	l1b  []int32
	l2b  []int32
	llcb []int32
	kind []trace.Kind
	pos  int
	// cur is the ring slot backing the current segment views (streaming
	// only); segs queues decoded segments delivered but not yet consumed.
	cur  *ringSlot
	segs segQueue
	// streamLeft is the number of accesses this core has not yet
	// consumed in streaming mode (including ones not yet generated);
	// unused (zero) on the whole-trace path.
	streamLeft int64
	// instrPerAccess is the instruction gap represented by each access;
	// instrCarry accumulates the fractional remainder.
	instrPerAccess float64
	instrCarry     float64
	instrBudget    uint64
	instrRetired   uint64
}

type simulator struct {
	cfg       Config
	blockBits uint
	cores     []*coreState
	llc       *cache.Cache
	mem       MainMemory
	dramMem   *dram.Memory // non-nil when the default model is in use
	bankBusy  []float64
	stats     LLCStats
	wear      *WearTracker
	faults    *fault.Injector
	bypass    *deadBlockPredictor
	dir       *directory
	hybrid    *hybridLLC
	// dramWait collects per-request DRAM queueing delay (always on with
	// the default memory model; its snapshot lands in Result.DRAMWait).
	dramWait *telemetry.Histogram
	// sampler drives epoch-boundary timeline sampling (nil unless
	// Config.Timeline is set: one nil check per access when disabled).
	sampler *epochSampler
	// setAccs counts LLC demand accesses per set for the wear heatmap
	// (nil unless the sampler and wear tracking are both on).
	setAccs []uint64
	// liveRetries..liveCapacity mirror fault events into the registry as
	// they happen, so /metrics shows degradation mid-run instead of only
	// at publication (all nil without telemetry or faults; counter and
	// gauge methods are nil-safe regardless).
	liveRetries     *telemetry.Counter
	liveCondemned   *telemetry.Counter
	liveLinesLost   *telemetry.Counter
	liveDeadSets    *telemetry.Counter
	liveDeadTraffic *telemetry.Counter
	liveCapacity    *telemetry.Gauge
	// bankStallNS/bankStallEvents account per-bank time reads and writes
	// spent queued behind busy LLC banks (write-contention mode only).
	bankStallNS     []float64
	bankStallEvents []uint64
}

// Scratch holds reusable per-run buffers for the trace pipeline and the
// tag stores: the backing array and slice headers of the per-thread
// access split, the cache arena every level's tags/meta/rank arrays are
// carved from, and the streaming path's chunk buffers and per-core
// queues. The zero value is ready to use; after the first run the
// buffers are retained, making repeated simulations allocation-free on
// these paths. A Scratch must not be shared by concurrent simulations —
// the engine pools them across its workers via sync.Pool.
type Scratch struct {
	split []trace.Access
	parts [][]trace.Access
	// sharers recycles the coherence directory's hash-table storage, so
	// repeated multi-threaded runs skip the grow-and-rehash ramp.
	sharers sharerTable
	// arena recycles every cache level's tag-store storage (several MB
	// per 64-core run when allocated fresh).
	arena cache.Arena
	// lanes holds the whole-trace pre-decoded SoA lanes (predecode.go).
	lanes laneBuf
	// slots are the streaming ring's chunk slots (raw buffer + decoded
	// lanes); spills recycle the overflow slots evacuation creates when a
	// skewed schedule outruns the ring; segq recycles the per-core
	// segment-FIFO storage.
	slots  []*ringSlot
	spills []*ringSlot
	segq   [][]*ringSlot
	// wearLines and wearSets recycle the WearTracker's per-line map and
	// per-set slice; setAccs recycles the timeline sampler's per-set
	// access counters. All are handed to the run at construction and
	// returned by releaseScratch.
	wearLines map[uint64]uint64
	wearSets  []uint64
	setAccs   []uint64
	// faults recycles the fault injector: construction draws and sorts
	// every cell's endurance threshold (milliseconds for an 8K-set LLC),
	// so repeated fault-enabled runs of the same design point Reset the
	// pooled injector instead. A run whose fault config or geometry
	// differs just builds a fresh one.
	faults *fault.Injector
	// prof holds the reuse-distance profiler's buffers (line lanes,
	// Fenwick tree, last-touch table, filter tag stores), so the
	// engine's scratch pool covers profile jobs with the same recycling
	// the simulator gets.
	prof profile.Scratch
}

// ProfileScratch exposes the embedded reuse-distance profiler scratch
// for engine profile jobs. The same no-concurrent-use rule applies.
func (s *Scratch) ProfileScratch() *profile.Scratch { return &s.prof }

// Run simulates the trace on the configured machine. The context is
// checked periodically inside the simulation loop, so cancelling it
// aborts even a multi-million-access run in bounded time with ctx.Err().
func Run(ctx context.Context, cfg Config, tr *trace.Trace) (*Result, error) {
	return RunScheduled(ctx, cfg, tr, SchedHeap, nil)
}

// RunWith is Run reusing the caller's Scratch buffers, avoiding the
// per-run trace-split allocation on repeated simulations.
func RunWith(ctx context.Context, cfg Config, tr *trace.Trace, scratch *Scratch) (*Result, error) {
	return RunScheduled(ctx, cfg, tr, SchedHeap, scratch)
}

// RunScheduled is Run with an explicit core-interleaving scheduler and
// optional scratch buffers (both may be zero values). The schedulers are
// step-for-step equivalent; SchedLinearScan exists so equivalence tests
// and the benchmark baseline can compare against the historical
// implementation.
func RunScheduled(ctx context.Context, cfg Config, tr *trace.Trace, sched Scheduler, scratch *Scratch) (*Result, error) {
	return runTrace(ctx, cfg, tr, sched, scratch, cache.LayoutSoA)
}

// RunLayout is Run with an explicit tag-store layout. cache.LayoutAoS
// replays the retained pre-SoA slice-of-struct store through the full
// simulator — the system-level leg of the layout-equivalence tests and
// cmd/benchreport's old-vs-new comparison. Results are byte-identical
// across layouts by design.
func RunLayout(ctx context.Context, cfg Config, tr *trace.Trace, layout cache.Layout, scratch *Scratch) (*Result, error) {
	return runTrace(ctx, cfg, tr, SchedHeap, scratch, layout)
}

func runTrace(ctx context.Context, cfg Config, tr *trace.Trace, sched Scheduler, scratch *Scratch, layout cache.Layout) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if tr.Threads > cfg.Cores {
		return nil, fmt.Errorf("system: trace %s has %d threads but only %d cores", tr.Name, tr.Threads, cfg.Cores)
	}
	if scratch == nil {
		scratch = new(Scratch)
	}
	sim, err := newSimulator(cfg, tr.Threads, scratch, layout)
	if err != nil {
		return nil, err
	}
	if err := sim.loadTrace(tr, scratch); err != nil {
		return nil, err
	}
	// Return the directory/wear/sampler storage to the scratch for the
	// next run, whatever the outcome.
	defer sim.releaseScratch(scratch)
	if err := sim.run(ctx, sched); err != nil {
		return nil, err
	}
	return sim.result(tr.Name), nil
}

// newSimulator builds the machine — LLC or hybrid, main memory, banks,
// wear/bypass/coherence structures and `threads` cores with private
// caches — without wiring any access stream: loadTrace (whole-trace) or
// initStream (chunked) supplies that. Cache tag stores are carved from
// the scratch's arena, so repeated runs recycle their storage.
func newSimulator(cfg Config, threads int, scratch *Scratch, layout cache.Layout) (*simulator, error) {
	blockBits := uint(0)
	if cfg.BlockBytes > 0 {
		blockBits = uint(bits.TrailingZeros64(uint64(cfg.BlockBytes)))
	}
	arena := &scratch.arena
	arena.Reset()
	var llc *cache.Cache
	var hybrid *hybridLLC
	if cfg.Hybrid != nil {
		var err error
		hybrid, err = newHybridLLC(cfg.Hybrid, cfg.BlockBytes, cfg.LLCWays, layout)
		if err != nil {
			return nil, err
		}
	} else {
		var err error
		llc, err = cache.NewIn(arena, cache.Config{
			Name:          "LLC",
			CapacityBytes: cfg.LLC.CapacityBytes,
			BlockBytes:    cfg.BlockBytes,
			Ways:          cfg.LLCWays,
			Policy:        cfg.LLCPolicy,
			Layout:        layout,
		})
		if err != nil {
			return nil, err
		}
	}
	var mem MainMemory
	var dramMem *dram.Memory
	if cfg.Memory != nil {
		mem = cfg.Memory
	} else {
		var err error
		dramMem, err = dram.New(cfg.DRAM)
		if err != nil {
			return nil, err
		}
		mem = dramMem
	}
	sim := &simulator{
		cfg:             cfg,
		blockBits:       blockBits,
		llc:             llc,
		mem:             mem,
		dramMem:         dramMem,
		bankBusy:        make([]float64, cfg.LLCBanks),
		bankStallNS:     make([]float64, cfg.LLCBanks),
		bankStallEvents: make([]uint64, cfg.LLCBanks),
		hybrid:          hybrid,
	}
	if dramMem != nil {
		sim.dramWait = telemetry.NewHistogram(telemetry.DefaultScale())
		dramMem.SetWaitHook(sim.dramWait.Observe)
	}
	if cfg.TrackWear {
		sim.wear = newWearTracker(llc.Sets(), cfg.LLCWays, scratch)
	}
	if cfg.Timeline != nil && sim.wear != nil {
		// Per-set access counts feed the wear heatmap's second column;
		// the slice is recycled through the scratch like the tracker's.
		sets := llc.Sets()
		if cap(scratch.setAccs) < sets {
			sim.setAccs = make([]uint64, sets)
		} else {
			sim.setAccs = scratch.setAccs[:sets]
			clear(sim.setAccs)
		}
		scratch.setAccs = nil
	}
	if cfg.Fault.Enabled() {
		inj := scratch.faults
		scratch.faults = nil
		if inj != nil && inj.Matches(cfg.Fault, llc.Sets(), cfg.LLCWays) {
			inj.Reset()
		} else {
			var err error
			inj, err = fault.New(cfg.Fault, llc.Sets(), cfg.LLCWays)
			if err != nil {
				return nil, err
			}
		}
		sim.faults = inj
		// Mirror pre-aged condemnations into the tag store so the run
		// starts at the aged capacity (only pre-aging can have disabled
		// ways at construction).
		if cfg.Fault.PreWearWrites > 0 {
			for set := 0; set < llc.Sets(); set++ {
				for i := inj.DisabledWays(set); i > 0; i-- {
					llc.DisableWay(set)
				}
			}
		}
		if reg := cfg.Telemetry; reg != nil {
			// Live degradation telemetry: resolve the instruments once and
			// move them at the fault events themselves, so /metrics shows
			// the array dying mid-run instead of only at publication.
			sim.liveRetries = reg.Counter("system_llc_fault_write_retries_total")
			sim.liveCondemned = reg.Counter("system_llc_fault_condemned_ways_total")
			sim.liveLinesLost = reg.Counter("system_llc_fault_lines_lost_total")
			sim.liveDeadSets = reg.Counter("system_llc_fault_dead_sets_total")
			sim.liveDeadTraffic = reg.Counter("system_llc_fault_dead_set_accesses_total")
			sim.liveCapacity = reg.Gauge("system_llc_capacity_fraction")
			fs := inj.Stats()
			sim.liveCondemned.Add(uint64(fs.InitialDisabledWays))
			sim.liveDeadSets.Add(uint64(fs.DeadSets))
			sim.liveCapacity.Set(fs.CapacityFraction())
		}
	}
	if cfg.LLCBypass == BypassDeadBlock {
		sim.bypass = newDeadBlockPredictor()
	}
	if !cfg.DisableCoherence && threads > 1 {
		// Take over the scratch's recycled table storage (returned by
		// runTrace/RunStreamWith once the run completes).
		sim.dir = newDirectoryWith(scratch.sharers)
		scratch.sharers = sharerTable{}
	}
	for t := 0; t < threads; t++ {
		core, err := cpu.NewCore(cfg.Core)
		if err != nil {
			return nil, err
		}
		l1i, err := cache.NewIn(arena, cache.Config{Name: "L1I", CapacityBytes: cfg.L1IBytes, BlockBytes: cfg.BlockBytes, Ways: cfg.L1IWays, Layout: layout})
		if err != nil {
			return nil, err
		}
		l1d, err := cache.NewIn(arena, cache.Config{Name: "L1D", CapacityBytes: cfg.L1DBytes, BlockBytes: cfg.BlockBytes, Ways: cfg.L1DWays, Layout: layout})
		if err != nil {
			return nil, err
		}
		l2, err := cache.NewIn(arena, cache.Config{Name: "L2", CapacityBytes: cfg.L2Bytes, BlockBytes: cfg.BlockBytes, Ways: cfg.L2Ways, Layout: layout})
		if err != nil {
			return nil, err
		}
		sim.cores = append(sim.cores, &coreState{
			idx:  t,
			core: core, l1i: l1i, l1d: l1d, l2: l2,
		})
	}
	return sim, nil
}

// spreadBudgets distributes the trace's instruction count over the
// threads, the remainder across the first ones, so retired instructions
// sum exactly to instrCount. perThread[t] is thread t's total access
// count — the whole-trace knowledge the per-access pacing divides by,
// identical whether the accesses are materialized or streamed.
func (s *simulator) spreadBudgets(instrCount uint64, perThread func(t int) int64) {
	threads := uint64(len(s.cores))
	instrPerThread := instrCount / threads
	instrRemainder := instrCount % threads
	for t, cs := range s.cores {
		budget := instrPerThread
		if uint64(t) < instrRemainder {
			budget++
		}
		cs.instrBudget = budget
		if n := perThread(t); n > 0 {
			cs.instrPerAccess = float64(budget) / float64(n)
		}
	}
	if s.cfg.Timeline != nil {
		// Both the whole-trace and streaming paths pass through here, so
		// this is the one place the sampler learns the run's length.
		s.sampler = newEpochSampler(s.cfg.Timeline, instrCount)
	}
}

// releaseScratch returns the simulator's recycled storage — directory
// tables, wear-tracker map/slice, per-set access counters — to the
// scratch for the next run.
func (s *simulator) releaseScratch(scratch *Scratch) {
	if s.dir != nil {
		scratch.sharers = s.dir.sharers
	}
	if s.wear != nil {
		scratch.wearLines = s.wear.lineWrites
		scratch.wearSets = s.wear.setWrites[:0]
	}
	if s.setAccs != nil {
		scratch.setAccs = s.setAccs[:0]
	}
	if s.faults != nil {
		scratch.faults = s.faults
	}
}

// loadTrace wires a materialized trace into the cores: the per-thread
// split, then one batch pre-decode pass filling the scratch's lane
// arrays with each access's line address and per-level set bases
// (predecode.go), which step() consumes instead of recomputing geometry.
func (s *simulator) loadTrace(tr *trace.Trace, scratch *Scratch) error {
	perThread, err := trace.SplitByThreadInto(tr.Accesses, tr.Threads, &scratch.split, &scratch.parts)
	if err != nil {
		return err
	}
	scratch.lanes.ensure(len(tr.Accesses))
	d := newDecoder(s)
	b := &scratch.lanes
	off := 0
	for t, cs := range s.cores {
		part := perThread[t]
		n := len(part)
		d.decodeInto(part, b.line[off:off+n], b.l1[off:off+n], b.l2[off:off+n], b.llc[off:off+n], b.kind[off:off+n])
		cs.setLanes(b, off, n)
		off += n
	}
	s.spreadBudgets(tr.InstrCount, func(t int) int64 { return int64(len(perThread[t])) })
	return nil
}

// cancelCheckInterval is how many accesses the simulation loop executes
// between context checks: frequent enough that cancellation lands within
// microseconds, rare enough to stay invisible in the hot loop.
const cancelCheckInterval = 4096

// run interleaves the per-core access streams in core-local time order:
// each step advances the core with the earliest local clock, which keeps
// shared-resource (LLC, DRAM) interactions approximately causal. The
// next core comes from a min-heap keyed on (local time, core index), so
// each step costs O(log cores) instead of the historical O(cores) scan;
// the index tie-break makes the two schedulers step-for-step identical.
func (s *simulator) run(ctx context.Context, sched Scheduler) error {
	if sched == SchedLinearScan {
		return s.runLinearScan(ctx)
	}
	h := newCoreHeap(s.cores)
	steps := 0
	for h.len() > 0 {
		cs := h.min()
		s.step(cs)
		if cs.pos >= len(cs.line) {
			h.popMin()
		} else {
			// Stepping only moves the core's clock forward.
			h.fixMin(cs.core.TimeNS())
		}
		if steps++; steps >= cancelCheckInterval {
			steps = 0
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
	s.retireRemainder()
	return nil
}

// runLinearScan is the historical O(cores)-per-access scheduler, kept as
// the reference implementation for the equivalence tests and the
// BENCH_hotloop.json before/after comparison.
func (s *simulator) runLinearScan(ctx context.Context) error {
	steps := 0
	for {
		var next *coreState
		for _, cs := range s.cores {
			if cs.pos >= len(cs.line) {
				continue
			}
			if next == nil || cs.core.TimeNS() < next.core.TimeNS() {
				next = cs
			}
		}
		if next == nil {
			break
		}
		s.step(next)
		if steps++; steps >= cancelCheckInterval {
			steps = 0
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
	s.retireRemainder()
	return nil
}

// retireRemainder retires any instruction remainder so totals match the
// trace.
func (s *simulator) retireRemainder() {
	for _, cs := range s.cores {
		if cs.instrRetired < cs.instrBudget {
			rem := cs.instrBudget - cs.instrRetired
			cs.core.Retire(rem)
			cs.instrRetired += rem
			if s.sampler != nil {
				// Credit the catch-up so the final flush ends at the
				// trace's exact instruction count.
				s.sampler.instr += rem
			}
		}
	}
}

// step executes one access on the given core. The core-local clock is
// read once after retirement and threaded through the hierarchy walk
// (it only changes when a StallLoad lands, and those sites re-read it).
// The access's line address and per-level set bases come pre-decoded
// from the SoA lanes (predecode.go) instead of being recomputed here.
func (s *simulator) step(cs *coreState) {
	i := cs.pos
	cs.pos++

	// Advance the pipeline over the instructions this access represents.
	cs.instrCarry += cs.instrPerAccess
	n := uint64(cs.instrCarry)
	if max := cs.instrBudget - cs.instrRetired; n > max {
		n = max
	}
	cs.instrCarry -= float64(n)
	cs.core.Retire(n)
	cs.instrRetired += n

	now := cs.core.TimeNS()
	line := cs.line[i]
	switch cs.kind[i] {
	case trace.Read:
		s.load(cs, line, now, cs.l1b[i], cs.l2b[i], cs.llcb[i])
	case trace.Ifetch:
		s.ifetch(cs, line, now, cs.l1b[i], cs.l2b[i], cs.llcb[i])
	case trace.Write:
		s.store(cs, line, now, cs.l1b[i], cs.l2b[i], cs.llcb[i])
	}
	if es := s.sampler; es != nil {
		// After the access's events so an epoch boundary includes them.
		// One nil check is the entire disabled cost, and the boundary
		// test is hand-inlined so the enabled cost is an add and a
		// compare per access (both bench-pinned; see BENCH_hotloop.json).
		es.instr += n
		if es.instr >= es.next {
			es.boundary(s)
		}
	}
}

// load walks a demand read down the hierarchy, stalling the core on the
// completion time of wherever it hits. l1b/l2b/llcb are the access's
// pre-decoded set bases for the demand line (eviction-path lookups for
// other lines recompute their own).
func (s *simulator) load(cs *coreState, line uint64, now float64, l1b, l2b, llcb int32) {
	if hit, ev := cs.l1d.AccessAt(l1b, line, false); hit {
		return // L1 hit time is covered by base CPI
	} else if ev.Valid && ev.Dirty {
		s.l2Writeback(cs, ev.LineAddr, now)
	}
	if s.dir != nil {
		now = s.downgradeOthers(cs, line, now)
		s.dir.noteFill(line, cs.idx)
	}
	s.fromL2(cs, line, true, now, l2b, llcb)
}

// ifetch is a load through the L1I.
func (s *simulator) ifetch(cs *coreState, line uint64, now float64, l1b, l2b, llcb int32) {
	if hit, ev := cs.l1i.AccessAt(l1b, line, false); hit {
		return
	} else if ev.Valid && ev.Dirty {
		s.l2Writeback(cs, ev.LineAddr, now)
	}
	s.fromL2(cs, line, true, now, l2b, llcb)
}

// store performs a write-back write-allocate store. Stores retire through
// the store queue and never stall the core, but their allocations and
// writebacks consume LLC energy and DRAM bandwidth.
func (s *simulator) store(cs *coreState, line uint64, now float64, l1b, l2b, llcb int32) {
	if s.dir != nil {
		// A store needs exclusive ownership: invalidate remote copies,
		// flushing any dirty one through the LLC first.
		if _, dirtyWb := s.invalidateOthers(line, cs.idx); dirtyWb > 0 {
			for i := 0; i < dirtyWb; i++ {
				s.llcWrite(line, now)
			}
		}
	}
	if hit, ev := cs.l1d.AccessAt(l1b, line, true); hit {
		return
	} else if ev.Valid && ev.Dirty {
		s.l2Writeback(cs, ev.LineAddr, now)
	}
	if s.dir != nil {
		s.dir.noteFill(line, cs.idx)
	}
	s.fromL2(cs, line, false, now, l2b, llcb)
}

// downgradeOthers handles a read to a line another core may hold dirty:
// remote copies are cleaned (Modified -> Shared) and a dirty copy is
// flushed through the LLC, with the reader paying an intervention
// latency. It returns the core's (possibly advanced) local clock.
func (s *simulator) downgradeOthers(cs *coreState, line uint64, now float64) float64 {
	mask := s.dir.othersHolding(line, cs.idx)
	if mask == 0 {
		return now
	}
	flushed := false
	for c := 0; mask != 0; c++ {
		bit := uint64(1) << uint(c)
		if mask&bit == 0 {
			continue
		}
		mask &^= bit
		other := s.cores[c]
		if _, wasDirty := other.l1d.Clean(line); wasDirty {
			flushed = true
		}
		if _, wasDirty := other.l2.Clean(line); wasDirty {
			flushed = true
		}
	}
	if flushed {
		s.llcWrite(line, now)
		s.dir.stats.RemoteWritebacks++
		s.dir.stats.InterventionStalls++
		// Cache-to-cache transfer via the LLC: the reader pays the LLC
		// read that picks the flushed line back up. Config.LLC is
		// zero-valued in hybrid mode, so route the latency through the
		// hybrid partition actually holding the line.
		var lat float64
		if s.hybrid != nil {
			lat = s.hybrid.readLatencyNS(line)
		} else {
			lat = s.cfg.LLC.TagLatencyNS + s.cfg.LLC.ReadLatencyNS
		}
		cs.core.StallLoad(now + lat)
		now = cs.core.TimeNS()
	}
	return now
}

// fromL2 services an L1 miss from the L2 and below. stalls controls
// whether the core waits for the data (loads) or not (stores).
func (s *simulator) fromL2(cs *coreState, line uint64, stalls bool, now float64, l2b, llcb int32) {
	if hit, ev := cs.l2.AccessAt(l2b, line, false); hit {
		if stalls {
			cs.core.StallLoad(now + s.cfg.L2LatencyNS)
		}
		return
	} else if ev.Valid {
		// Enforce inclusion: the L2 victim leaves the L1s too; a dirty L1
		// copy folds into the writeback.
		if present, dirty := cs.l1d.Invalidate(ev.LineAddr); present && dirty {
			ev.Dirty = true
		}
		cs.l1i.Invalidate(ev.LineAddr)
		if s.dir != nil {
			s.dir.noteEvict(ev.LineAddr, cs.idx)
		}
		if ev.Dirty {
			s.llcWrite(ev.LineAddr, now)
		}
	}
	s.fromLLC(cs, line, stalls, now, llcb)
}

// fromLLC services an L2 miss at the shared LLC and, on miss, DRAM.
func (s *simulator) fromLLC(cs *coreState, line uint64, stalls bool, now float64, llcb int32) {
	if s.hybrid != nil {
		s.fromHybridLLC(cs, line, stalls, now)
		return
	}
	llcModel := &s.cfg.LLC
	if s.setAccs != nil {
		s.setAccs[s.llc.SetOf(line)]++
	}
	// Degradation: a dead set (every way wear-condemned) cannot hold the
	// line at all — the demand access misses and is served straight from
	// DRAM, mirroring the dead-block bypass path below.
	if s.faults != nil && s.faults.IsDead(line) {
		s.faults.NoteDeadAccess()
		s.liveDeadTraffic.Inc()
		s.stats.Misses++
		dramComplete := s.mem.Read(now+llcModel.TagLatencyNS, line)
		if stalls {
			cs.core.StallLoad(dramComplete)
		}
		return
	}
	// Dead-block bypass: a line predicted dead skips the NVM fill and is
	// served straight from DRAM (tag probe energy still counts as a miss).
	if s.bypass != nil && s.bypass.predictDead(line) && !s.llc.Probe(line) {
		s.stats.Misses++
		s.stats.BypassedFills++
		dramComplete := s.mem.Read(now+llcModel.TagLatencyNS, line)
		if stalls {
			cs.core.StallLoad(dramComplete)
		}
		return
	}
	hit, ev := s.llc.AccessAt(llcb, line, false)
	if hit {
		s.stats.Hits++
		if s.bypass != nil {
			s.bypass.onHit(line)
		}
		complete := now + llcModel.TagLatencyNS + llcModel.ReadLatencyNS
		if s.cfg.ModelWriteContention {
			start := s.bankStart(line, now)
			s.setBankBusy(line, start+llcModel.ReadLatencyNS)
			complete = start + llcModel.TagLatencyNS + llcModel.ReadLatencyNS
		}
		if stalls {
			cs.core.StallLoad(complete)
		}
		return
	}
	// Miss: tag lookup energy, then DRAM, then the fill writes the LLC.
	// With contention modeled, the tag probe waits for the bank (reads
	// queue behind in-flight slow writes).
	s.stats.Misses++
	if s.bypass != nil {
		s.bypass.onFill(line)
		if ev.Valid {
			s.bypass.onEvict(ev.LineAddr)
		}
	}
	if ev.Valid && ev.Dirty {
		s.mem.Write(now, ev.LineAddr)
	}
	lookupStart := now
	if s.cfg.ModelWriteContention {
		lookupStart = s.bankStart(line, now)
	}
	dramComplete := s.mem.Read(lookupStart+llcModel.TagLatencyNS, line)
	if stalls {
		cs.core.StallLoad(dramComplete)
	}
	s.llcFillWrite(line, dramComplete)
}

// fromHybridLLC services an L2 miss at the hybrid SRAM/NVM LLC.
func (s *simulator) fromHybridLLC(cs *coreState, line uint64, stalls bool, now float64) {
	hit, lat := s.hybrid.lookup(line)
	if hit {
		s.stats.Hits++
		if stalls {
			cs.core.StallLoad(now + lat)
		}
		return
	}
	s.stats.Misses++
	dramComplete := s.mem.Read(now+lat, line)
	if stalls {
		cs.core.StallLoad(dramComplete)
	}
	s.stats.Writes++
	for _, wb := range s.hybrid.fill(line, !stalls) {
		s.mem.Write(dramComplete, wb)
	}
}

// l2Writeback propagates an L1 dirty eviction into the L2; a dirty L2
// victim continues to the LLC as a write.
func (s *simulator) l2Writeback(cs *coreState, line uint64, now float64) {
	if present, ev := cs.l2.WritebackTo(line); !present && ev.Valid && ev.Dirty {
		s.llcWrite(ev.LineAddr, now)
	}
}

// llcWrite is a writeback arriving at the LLC from an L2 (equation (8)
// energy; off the critical path).
func (s *simulator) llcWrite(line uint64, now float64) {
	if s.hybrid != nil {
		s.stats.Writes++
		for _, wb := range s.hybrid.writeback(line) {
			s.mem.Write(now, wb)
		}
		return
	}
	// Degradation: a dead set takes no array writes — the dirty data
	// routes straight to DRAM so nothing is lost.
	if s.faults != nil && s.faults.IsDead(line) {
		s.faults.NoteDeadWrite()
		s.liveDeadTraffic.Inc()
		s.mem.Write(now, line)
		return
	}
	// Dead-block bypass: writebacks of dead lines go straight to DRAM,
	// avoiding the expensive NVM data-array write.
	if s.bypass != nil && s.bypass.predictDead(line) && !s.llc.Probe(line) {
		s.stats.BypassedWritebacks++
		s.mem.Write(now, line)
		return
	}
	s.stats.Writes++
	if s.wear != nil {
		s.wear.Record(line)
	}
	// A writeback does not count as reuse for the dead-block predictor:
	// only demand hits mark a line alive (the dead-write distinction of
	// the write-minimization literature).
	present, ev := s.llc.WritebackTo(line)
	if s.bypass != nil && !present {
		s.bypass.onFill(line)
		if ev.Valid {
			s.bypass.onEvict(ev.LineAddr)
		}
	}
	if ev.Valid && ev.Dirty {
		s.mem.Write(now, ev.LineAddr)
	}
	s.occupyBankForWrite(line, now)
	if s.faults != nil {
		s.applyFault(line, now)
	}
}

// applyFault runs the wear-driven fault process for one LLC data-array
// write (internal/fault). Retries occupy the line's bank like any other
// write — energy is charged in result(), latency stays off the critical
// path. A condemned write loses the line just written: it is invalidated
// (dirty data routes to DRAM so correctness is preserved) and its way is
// disabled, shrinking the set's associativity.
func (s *simulator) applyFault(line uint64, now float64) {
	out := s.faults.OnWrite(line)
	for i := 0; i < out.Retries; i++ {
		s.occupyBankForWrite(line, now)
	}
	if out.Retries > 0 {
		s.liveRetries.Add(uint64(out.Retries))
	}
	if !out.Condemned {
		return
	}
	// Condemnations are rare (at most sets×ways per run), so refreshing
	// the capacity gauge from a fresh stats copy stays off the hot path.
	s.liveCondemned.Inc()
	s.liveLinesLost.Inc()
	if s.liveCapacity != nil {
		fs := s.faults.Stats()
		s.liveCapacity.Set(fs.CapacityFraction())
		if s.faults.IsDead(line) {
			s.liveDeadSets.Inc()
		}
	}
	if present, dirty := s.llc.Invalidate(line); present {
		if dirty {
			s.mem.Write(now, line)
		}
		if s.bypass != nil {
			s.bypass.onEvict(line)
		}
	}
	s.llc.DisableWay(s.llc.SetOf(line))
}

// llcFillWrite is the data-array write of a fill after a DRAM fetch. The
// line was already allocated by the demand Access; only energy and bank
// occupancy are modeled here.
func (s *simulator) llcFillWrite(line uint64, now float64) {
	s.stats.Writes++
	if s.wear != nil {
		s.wear.Record(line)
	}
	s.occupyBankForWrite(line, now)
	if s.faults != nil {
		s.applyFault(line, now)
	}
}

func (s *simulator) occupyBankForWrite(line uint64, now float64) {
	if !s.cfg.ModelWriteContention {
		return
	}
	start := s.bankStart(line, now)
	s.setBankBusy(line, start+s.cfg.LLC.WriteLatencyNS())
}

func (s *simulator) bankStart(line uint64, now float64) float64 {
	b := line % uint64(len(s.bankBusy))
	start := math.Max(now, s.bankBusy[b])
	if start > now {
		s.bankStallNS[b] += start - now
		s.bankStallEvents[b]++
	}
	return start
}

func (s *simulator) setBankBusy(line uint64, until float64) {
	b := line % uint64(len(s.bankBusy))
	s.bankBusy[b] = until
}

// result assembles the Result, integrating LLC energy over the run.
func (s *simulator) result(name string) *Result {
	llcName := s.cfg.LLC.Name
	if s.hybrid != nil {
		llcName = fmt.Sprintf("hybrid(%s+%s)", s.cfg.Hybrid.SRAM.Name, s.cfg.Hybrid.NVM.Name)
	}
	r := &Result{
		Workload: name,
		LLCName:  llcName,
		Cores:    s.cfg.Cores,
		LLC:      s.stats,
		ClockGHz: s.cfg.Core.ClockGHz,
	}
	if s.dir != nil {
		r.Directory = s.dir.stats
	}
	for _, cs := range s.cores {
		if t := cs.core.TimeNS(); t > r.TimeNS {
			r.TimeNS = t
		}
		r.Instructions += cs.core.Instructions()
		r.MemStallNS += cs.core.MemStallNS()
		r.L1I.Add(cs.l1i.Stats())
		r.L1D.Add(cs.l1d.Stats())
		r.L2.Add(cs.l2.Stats())
	}
	if s.dramMem != nil {
		r.DRAM = s.dramMem.Stats()
	}
	if s.hybrid != nil {
		hs := s.hybrid.stats
		r.Hybrid = &hs
		r.LLCDynamicJ = s.hybrid.dynamicNJ * 1e-9
		r.LLCLeakageJ = s.hybrid.leakageW() * r.TimeNS * 1e-9
	} else {
		m := &s.cfg.LLC
		// Equations (6)-(8): nJ per event, summed, converted to joules.
		dynNJ := float64(s.stats.Hits)*m.HitEnergyNJ +
			float64(s.stats.Misses)*m.MissEnergyNJ +
			float64(s.stats.Writes)*m.WriteEnergyNJ +
			// Bypassed writebacks still probe the tags.
			float64(s.stats.BypassedWritebacks)*m.MissEnergyNJ
		if s.faults != nil {
			// Write-verify retries re-drive the array: one write's worth
			// of energy per extra attempt, off the critical path like
			// every other LLC write.
			dynNJ += float64(s.faults.Stats().WriteRetries) * m.WriteEnergyNJ
		}
		r.LLCDynamicJ = dynNJ * 1e-9
		r.LLCLeakageJ = m.LeakageW * r.TimeNS * 1e-9
	}
	if s.wear != nil {
		ws := s.wear.Stats()
		r.Wear = &ws
	}
	if s.faults != nil {
		fs := s.faults.Stats()
		r.Degradation = &fs
	}
	if s.dramWait != nil {
		snap := s.dramWait.Snapshot()
		r.DRAMWait = &snap
	}
	if s.sampler != nil {
		s.sampler.flush(s)
		snap := s.sampler.tl.Snapshot()
		r.Timeline = &snap
		if s.wear != nil {
			r.WearHeatmap = buildWearHeatmap(s.wear, s.setAccs)
		}
	}
	s.publishTelemetry(r)
	return r
}
