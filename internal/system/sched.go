package system

// Core scheduling for the simulation hot loop. The simulator interleaves
// per-core access streams in core-local time order; with up to 64 cores a
// linear min-scan per access is O(cores) and dominates the Section V-C
// core sweeps. coreHeap is a binary min-heap over the active cores keyed
// on (core-local time, core index): selecting the next core is O(1) and
// reinserting the stepped core is O(log cores).
//
// Ties break on core index, ascending — exactly the order the historical
// linear scan produced (it kept the first strictly-smaller element, i.e.
// the lowest-indexed core among equals) — so the heap and scan schedulers
// are step-for-step identical and cached results, fixed-seed manifests
// and the equivalence tests in the engine stay stable across the swap.

// Scheduler selects the core-interleaving implementation for RunScheduled.
type Scheduler int

const (
	// SchedHeap is the default O(log cores) min-heap scheduler.
	SchedHeap Scheduler = iota
	// SchedLinearScan is the historical O(cores) per-access scan, kept as
	// the reference implementation for equivalence tests and the
	// BENCH_hotloop.json before/after comparison.
	SchedLinearScan
)

// String names the scheduler ("heap", "linear-scan").
func (s Scheduler) String() string {
	switch s {
	case SchedHeap:
		return "heap"
	case SchedLinearScan:
		return "linear-scan"
	default:
		return "Scheduler(?)"
	}
}

// heapEnt is one heap slot: the core's clock and index, held by value so
// sift comparisons stay inside the contiguous (cache-resident) heap
// array instead of chasing coreState pointers.
type heapEnt struct {
	timeNS float64
	idx    int32
}

// entLess orders entries by local time, index-ascending on ties.
func entLess(a, b heapEnt) bool {
	return a.timeNS < b.timeNS || (a.timeNS == b.timeNS && a.idx < b.idx)
}

// coreHeap is a binary min-heap of the cores that still have accesses
// left, ordered by (core-local time, core index).
type coreHeap struct {
	ents  []heapEnt
	cores []*coreState // all cores, indexed by coreState.idx
}

// newCoreHeap heapifies the cores that have any accesses to run.
func newCoreHeap(cores []*coreState) *coreHeap {
	h := &coreHeap{cores: cores, ents: make([]heapEnt, 0, len(cores))}
	for _, cs := range cores {
		if cs.pos < len(cs.line) {
			h.ents = append(h.ents, heapEnt{timeNS: cs.core.TimeNS(), idx: int32(cs.idx)})
		}
	}
	for i := len(h.ents)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	return h
}

func (h *coreHeap) len() int { return len(h.ents) }

// min returns the core with the earliest local clock without removing it.
func (h *coreHeap) min() *coreState { return h.cores[h.ents[0].idx] }

// fixMin restores heap order after the root core's clock advanced to t
// (stepping a core only ever moves its clock forward, so a sift-down
// suffices).
func (h *coreHeap) fixMin(t float64) {
	h.ents[0].timeNS = t
	h.siftDown(0)
}

// popMin removes the root (a core whose stream is exhausted).
func (h *coreHeap) popMin() {
	last := len(h.ents) - 1
	h.ents[0] = h.ents[last]
	h.ents = h.ents[:last]
	if last > 0 {
		h.siftDown(0)
	}
}

func (h *coreHeap) siftDown(i int) {
	e := h.ents[i]
	n := len(h.ents)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && entLess(h.ents[r], h.ents[l]) {
			least = r
		}
		if !entLess(h.ents[least], e) {
			break
		}
		h.ents[i] = h.ents[least]
		i = least
	}
	h.ents[i] = e
}
