package system

import (
	"strconv"

	"nvmllc/internal/cache"
)

// publishTelemetry mirrors a completed run's measurements into the
// configured registry: per-level cache hit/miss/writeback/fill
// counters, LLC event counters, per-bank write-contention stalls and
// the DRAM traffic and queue-latency histogram. Counters accumulate
// across runs sharing a registry (one sweep = one registry), which is
// what the /metrics endpoint scrapes mid-run. Called once per
// simulation from result(), so it costs nothing on the hot path.
func (s *simulator) publishTelemetry(r *Result) {
	reg := s.cfg.Telemetry
	if reg == nil {
		return
	}
	for _, lv := range []struct {
		name string
		st   cache.Stats
	}{{"L1I", r.L1I}, {"L1D", r.L1D}, {"L2", r.L2}} {
		reg.Counter("system_cache_hits_total", "level", lv.name).Add(lv.st.Hits)
		reg.Counter("system_cache_misses_total", "level", lv.name).Add(lv.st.Misses)
		reg.Counter("system_cache_writebacks_total", "level", lv.name).Add(lv.st.Writebacks)
		reg.Counter("system_cache_fills_total", "level", lv.name).Add(lv.st.Fills)
	}
	reg.Counter("system_llc_hits_total").Add(r.LLC.Hits)
	reg.Counter("system_llc_misses_total").Add(r.LLC.Misses)
	reg.Counter("system_llc_writes_total").Add(r.LLC.Writes)
	reg.Counter("system_llc_bypassed_fills_total").Add(r.LLC.BypassedFills)
	reg.Counter("system_llc_bypassed_writebacks_total").Add(r.LLC.BypassedWritebacks)

	if s.cfg.ModelWriteContention {
		for b := range s.bankStallNS {
			bank := strconv.Itoa(b)
			reg.Counter("system_llc_bank_stall_ns_total", "bank", bank).Add(uint64(s.bankStallNS[b]))
			reg.Counter("system_llc_bank_stall_events_total", "bank", bank).Add(s.bankStallEvents[b])
		}
	}

	if s.dramMem != nil {
		ds := s.dramMem.Stats()
		reg.Counter("system_dram_reads_total").Add(ds.Reads)
		reg.Counter("system_dram_writes_total").Add(ds.Writes)
		if r.DRAMWait != nil {
			// Fold this run's private wait histogram into the shared one;
			// layouts always match (both default scale), so the error path
			// is unreachable and safe to drop.
			_ = reg.Histogram("system_dram_wait_ns").Merge(*r.DRAMWait)
		}
	}

	// Fault/degradation counters are NOT published here: they move live,
	// at the fault events themselves (newSimulator wires the instruments,
	// applyFault and the dead-set paths increment them), so /metrics
	// shows degradation during a run. Re-adding the end-of-run totals
	// would double count. The capacity gauge is likewise kept current by
	// the live path.

	reg.Histogram("system_sim_time_ns").Observe(r.TimeNS)
	reg.Histogram("system_mem_stall_ns").Observe(r.MemStallNS)
}
