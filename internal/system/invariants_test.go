package system

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"nvmllc/internal/reference"
	"nvmllc/internal/trace"
	"nvmllc/internal/workload"
)

// randomTrace builds an arbitrary but valid trace from fuzz inputs.
func randomTrace(seed int64, n int, threads int, footprintLines int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &trace.Trace{Name: "fuzz", Threads: threads}
	for i := 0; i < n; i++ {
		tr.Accesses = append(tr.Accesses, trace.Access{
			Addr: uint64(rng.Intn(footprintLines)) * 64,
			Kind: trace.Kind(rng.Intn(3)),
			Tid:  uint8(rng.Intn(threads)),
		})
	}
	tr.InstrCount = uint64(n) * 3
	return tr
}

// TestHierarchyConservationProperty checks the cross-level flow
// invariants of the simulated hierarchy on random traces:
//
//   - L2 demand accesses = L1I misses + L1D misses (every L1 miss goes to
//     the L2 exactly once);
//   - LLC demand accesses + bypassed fills = L2 misses;
//   - every LLC demand miss fetches exactly one line from DRAM
//     (dram reads ≥ LLC misses; coherence and L2 writeback evictions add
//     DRAM writes, never reads).
func TestHierarchyConservationProperty(t *testing.T) {
	f := func(seed int64, nRaw, tRaw, fRaw uint16) bool {
		n := int(nRaw%20000) + 1000
		threads := int(tRaw%4) + 1
		footprint := int(fRaw)*4 + 64
		tr := randomTrace(seed, n, threads, footprint)
		r, err := Run(context.Background(), sramConfig(), tr)
		if err != nil {
			return false
		}
		if r.L2.Accesses() != r.L1I.Misses+r.L1D.Misses {
			t.Logf("L2 accesses %d != L1 misses %d+%d", r.L2.Accesses(), r.L1I.Misses, r.L1D.Misses)
			return false
		}
		if r.LLC.Accesses()+r.LLC.BypassedFills != r.L2.Misses {
			t.Logf("LLC accesses %d + bypassed %d != L2 misses %d",
				r.LLC.Accesses(), r.LLC.BypassedFills, r.L2.Misses)
			return false
		}
		if r.DRAM.Reads != r.LLC.Misses {
			t.Logf("DRAM reads %d != LLC misses %d", r.DRAM.Reads, r.LLC.Misses)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestLLCWritesDecomposition: LLC writes = fills (one per miss) plus L2
// dirty writebacks plus coherence flushes — never more than misses +
// total L2 writebacks + remote flushes.
func TestLLCWritesDecomposition(t *testing.T) {
	f := func(seed int64) bool {
		tr := randomTrace(seed, 15000, 2, 30000)
		r, err := Run(context.Background(), sramConfig(), tr)
		if err != nil {
			return false
		}
		upper := r.LLC.Misses + r.L2.Writebacks + r.Directory.RemoteWritebacks + r.L1D.Writebacks
		return r.LLC.Writes >= r.LLC.Misses && r.LLC.Writes <= upper
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestTimeMonotoneInLLCReadLatency: slower LLC reads can never make the
// system faster, everything else equal.
func TestTimeMonotoneInLLCReadLatency(t *testing.T) {
	tr := randomTrace(5, 30000, 1, 60000)
	base := reference.SRAMBaseline()
	prev := 0.0
	for _, lat := range []float64{1, 5, 20, 80} {
		m := base
		m.ReadLatencyNS = lat
		r, err := Run(context.Background(), Gainestown(m), tr)
		if err != nil {
			t.Fatal(err)
		}
		if r.TimeNS < prev {
			t.Errorf("read latency %g ns made the system faster: %g < %g", lat, r.TimeNS, prev)
		}
		prev = r.TimeNS
	}
}

// TestEnergyMonotoneInLeakage: more leakage can never reduce total LLC
// energy.
func TestEnergyMonotoneInLeakage(t *testing.T) {
	tr := randomTrace(7, 20000, 1, 20000)
	base := reference.SRAMBaseline()
	prev := 0.0
	for _, leak := range []float64{0.01, 0.5, 3.4, 10} {
		m := base
		m.LeakageW = leak
		r, err := Run(context.Background(), Gainestown(m), tr)
		if err != nil {
			t.Fatal(err)
		}
		if e := r.LLCEnergyJ(); e < prev {
			t.Errorf("leakage %g W reduced energy: %g < %g", leak, e, prev)
		} else {
			prev = e
		}
	}
}

// TestBiggerLLCNeverMoreMisses: on any trace, growing the LLC (same
// associativity scaling) must not increase demand misses.
func TestBiggerLLCNeverMoreMisses(t *testing.T) {
	f := func(seed int64) bool {
		tr := randomTrace(seed, 25000, 1, 80000)
		small := reference.SRAMBaseline() // 2MB
		big := small
		big.CapacityBytes = 8 << 20
		rs, err := Run(context.Background(), Gainestown(small), tr)
		if err != nil {
			return false
		}
		rb, err := Run(context.Background(), Gainestown(big), tr)
		if err != nil {
			return false
		}
		// LRU with nested capacities at the same associativity is not
		// strictly an inclusion hierarchy (set hashing differs), so allow
		// a 2% tolerance.
		return float64(rb.LLC.Misses) <= 1.02*float64(rs.LLC.Misses)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestInstructionsSumExactlyPrimeThreads: retired instructions must sum
// exactly to the trace's InstrCount for every thread count — prime
// thread counts against a non-divisible instruction count historically
// dropped the InstrCount % Threads remainder of the integer per-thread
// split.
func TestInstructionsSumExactlyPrimeThreads(t *testing.T) {
	for _, threads := range []int{1, 2, 3, 5, 7, 11, 13} {
		tr := randomTrace(int64(threads), 6000, threads, 4096)
		tr.InstrCount = 6000*3 + 29 // 18029, prime: never divisible by threads > 1
		cfg := sramConfig().WithCores(threads)
		r, err := Run(context.Background(), cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		if r.Instructions != tr.InstrCount {
			t.Errorf("%d threads: retired %d instructions, want exactly %d (dropped %d)",
				threads, r.Instructions, tr.InstrCount, tr.InstrCount-r.Instructions)
		}
	}
}

// TestSweepDeterministicAcrossParallelism: the concurrent harness must
// produce identical results regardless of worker count.
func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	p, err := workload.ByName("is")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.Generate(p, workload.Options{Accesses: 30000})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(context.Background(), sramConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), sramConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.TimeNS != b.TimeNS || a.LLC != b.LLC || a.Directory != b.Directory {
		t.Error("repeat run differs")
	}
}
