package system

import (
	"context"
	"testing"

	"nvmllc/internal/cache"
	"nvmllc/internal/reference"
)

func TestBypassPolicyString(t *testing.T) {
	if BypassNone.String() != "none" || BypassDeadBlock.String() != "dead-block" {
		t.Error("bypass names wrong")
	}
	if BypassPolicy(9).String() == "" {
		t.Error("unknown bypass name empty")
	}
}

func TestDeadBlockPredictorLifecycle(t *testing.T) {
	d := newDeadBlockPredictor()
	line := uint64(0x1234)
	if d.predictDead(line) {
		t.Error("never-seen line predicted dead")
	}
	// Residency with no reuse → dead.
	d.onFill(line)
	d.onEvict(line)
	if !d.predictDead(line) {
		t.Error("dead residency not learned")
	}
	// Residency with reuse → alive again.
	d.onFill(line)
	d.onHit(line)
	d.onEvict(line)
	if d.predictDead(line) {
		t.Error("reused residency still predicted dead")
	}
}

func TestBypassReducesNVMWriteEnergyOnThrash(t *testing.T) {
	// A streaming working set 2× the LLC: every line dies without reuse,
	// so from the second pass on the dead-block policy bypasses fills.
	lines := (4 << 20) / 64
	tr := streamTrace("bypass", lines, 6*lines, 0, 1)
	kang, err := reference.ModelByName(reference.FixedCapacityModels(), "Kang_P")
	if err != nil {
		t.Fatal(err)
	}

	base, err := Run(context.Background(), Gainestown(kang), tr)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Gainestown(kang)
	cfg.LLCBypass = BypassDeadBlock
	byp, err := Run(context.Background(), cfg, tr)
	if err != nil {
		t.Fatal(err)
	}

	if byp.LLC.BypassedFills == 0 {
		t.Fatal("no fills bypassed on a thrashing stream")
	}
	if base.LLC.BypassedFills != 0 {
		t.Error("baseline counted bypasses")
	}
	if byp.LLC.Writes >= base.LLC.Writes {
		t.Errorf("bypass writes %d not below baseline %d", byp.LLC.Writes, base.LLC.Writes)
	}
	if byp.LLCDynamicJ >= base.LLCDynamicJ {
		t.Errorf("bypass dynamic energy %g not below baseline %g (PCRAM writes dominate)",
			byp.LLCDynamicJ, base.LLCDynamicJ)
	}
	// Performance must not collapse: the stream had no LLC hits to lose.
	if byp.TimeNS > base.TimeNS*1.05 {
		t.Errorf("bypass slowed a no-reuse stream: %g vs %g", byp.TimeNS, base.TimeNS)
	}
}

func TestBypassPreservesHitsOnResidentWorkingSet(t *testing.T) {
	// A cacheable working set with reuse: the predictor must learn the
	// lines are alive and keep caching them.
	lines := (1 << 20) / 64 // 1MB in a 2MB LLC
	tr := streamTrace("resident", lines, 8*lines, 0, 1)
	cfg := Gainestown(reference.SRAMBaseline())
	cfg.LLCBypass = BypassDeadBlock
	r, err := Run(context.Background(), cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(context.Background(), Gainestown(reference.SRAMBaseline()), tr)
	if err != nil {
		t.Fatal(err)
	}
	// At most a small fraction of hits may be lost to mispredictions.
	if float64(r.LLC.Hits) < 0.8*float64(base.LLC.Hits) {
		t.Errorf("bypass lost hits: %d vs baseline %d", r.LLC.Hits, base.LLC.Hits)
	}
}

func TestBypassedWritebacksGoToDRAM(t *testing.T) {
	// Write-heavy thrash: dirty L2 evictions of dead lines must bypass to
	// DRAM.
	lines := (4 << 20) / 64
	tr := streamTrace("wbbypass", lines, 6*lines, 1, 1) // all writes
	kang, _ := reference.ModelByName(reference.FixedCapacityModels(), "Kang_P")
	cfg := Gainestown(kang)
	cfg.LLCBypass = BypassDeadBlock
	r, err := Run(context.Background(), cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.LLC.BypassedWritebacks == 0 {
		t.Error("no writebacks bypassed")
	}
	if r.DRAM.Writes == 0 {
		t.Error("bypassed writebacks never reached DRAM")
	}
}

func TestLLCPolicyPlumbed(t *testing.T) {
	tr := streamTrace("policy", 5000, 20000, 3, 1)
	for _, p := range []cache.Policy{cache.LRU, cache.SRRIP, cache.Random} {
		cfg := sramConfig()
		cfg.LLCPolicy = p
		if _, err := Run(context.Background(), cfg, tr); err != nil {
			t.Errorf("policy %v: %v", p, err)
		}
	}
	cfg := sramConfig()
	cfg.LLCPolicy = cache.Policy(42)
	if _, err := Run(context.Background(), cfg, tr); err == nil {
		t.Error("invalid LLC policy accepted")
	}
}
