package system

// Write-endurance accounting. The paper's Table I lists write endurance as
// the key drawback of PCRAM (10⁷–10⁸ writes) and RRAM (10¹⁰), and its
// Section VII names lifetime characterization — how architecture-agnostic
// workload features affect the lifetime of different NVMs — as future
// work. This file implements the measurement side: per-line and per-set
// LLC write counts, from which internal/endurance derives lifetime
// estimates with and without ideal intra-set wear leveling (the
// WriteSmoothing-style technique the paper cites as [20]).

// WearTracker accumulates LLC data-array write counts.
type WearTracker struct {
	lineWrites map[uint64]uint64
	setWrites  []uint64
	setMask    uint64
	ways       int
	total      uint64
}

// newWearTracker sizes the tracker for an LLC with the given set count and
// associativity.
func newWearTracker(sets, ways int) *WearTracker {
	return &WearTracker{
		lineWrites: make(map[uint64]uint64),
		setWrites:  make([]uint64, sets),
		setMask:    uint64(sets - 1),
		ways:       ways,
	}
}

// Record notes one data-array write of the given line.
func (w *WearTracker) Record(line uint64) {
	w.lineWrites[line]++
	w.setWrites[line&w.setMask]++
	w.total++
}

// WearStats summarizes write wear at the end of a run.
type WearStats struct {
	// TotalWrites is every data-array write (fills + writebacks).
	TotalWrites uint64
	// LinesTouched is the number of distinct line addresses written.
	LinesTouched int
	// MaxLineWrites is the hottest single line's write count — the raw
	// (unleveled) wear-out driver.
	MaxLineWrites uint64
	// MaxSetWrites is the hottest set's total write count.
	MaxSetWrites uint64
	// Ways is the LLC associativity, used to compute the ideally-leveled
	// per-cell wear.
	Ways int
	// Sets is the LLC set count.
	Sets int
}

// LeveledMaxLineWrites is the hottest physical line's write count under
// ideal intra-set wear leveling: the hottest set's writes spread evenly
// over its ways.
func (s WearStats) LeveledMaxLineWrites() uint64 {
	if s.Ways <= 0 {
		return s.MaxLineWrites
	}
	return (s.MaxSetWrites + uint64(s.Ways) - 1) / uint64(s.Ways)
}

// ImbalanceFactor is the ratio of actual hottest-line wear to the
// ideally-leveled wear — the headroom an intra-set wear-leveling scheme
// could reclaim (≥ 1).
func (s WearStats) ImbalanceFactor() float64 {
	leveled := s.LeveledMaxLineWrites()
	if leveled == 0 {
		return 1
	}
	f := float64(s.MaxLineWrites) / float64(leveled)
	if f < 1 {
		return 1
	}
	return f
}

// Stats snapshots the tracker.
func (w *WearTracker) Stats() WearStats {
	s := WearStats{
		TotalWrites:  w.total,
		LinesTouched: len(w.lineWrites),
		Ways:         w.ways,
		Sets:         len(w.setWrites),
	}
	for _, c := range w.lineWrites {
		if c > s.MaxLineWrites {
			s.MaxLineWrites = c
		}
	}
	for _, c := range w.setWrites {
		if c > s.MaxSetWrites {
			s.MaxSetWrites = c
		}
	}
	return s
}
