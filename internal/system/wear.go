package system

import (
	"math"
	"sort"
)

// Write-endurance accounting. The paper's Table I lists write endurance as
// the key drawback of PCRAM (10⁷–10⁸ writes) and RRAM (10¹⁰), and its
// Section VII names lifetime characterization — how architecture-agnostic
// workload features affect the lifetime of different NVMs — as future
// work. This file implements the measurement side: per-line and per-set
// LLC write counts, from which internal/endurance derives lifetime
// estimates with and without ideal intra-set wear leveling (the
// WriteSmoothing-style technique the paper cites as [20]).

// WearTracker accumulates LLC data-array write counts.
type WearTracker struct {
	lineWrites map[uint64]uint64
	setWrites  []uint64
	setMask    uint64
	ways       int
	total      uint64
}

// newWearTracker sizes the tracker for an LLC with the given set count
// and associativity, taking over the scratch's recycled storage (the
// per-line map and per-set slice are the dominant per-run allocations
// of a wear-tracked sweep). releaseScratch hands them back after the
// run.
func newWearTracker(sets, ways int, scratch *Scratch) *WearTracker {
	lines := scratch.wearLines
	if lines == nil {
		lines = make(map[uint64]uint64)
	} else {
		clear(lines)
	}
	setW := scratch.wearSets
	if cap(setW) < sets {
		setW = make([]uint64, sets)
	} else {
		setW = setW[:sets]
		clear(setW)
	}
	scratch.wearLines, scratch.wearSets = nil, nil
	return &WearTracker{
		lineWrites: lines,
		setWrites:  setW,
		setMask:    uint64(sets - 1),
		ways:       ways,
	}
}

// Record notes one data-array write of the given line.
func (w *WearTracker) Record(line uint64) {
	w.lineWrites[line]++
	w.setWrites[line&w.setMask]++
	w.total++
}

// WearStats summarizes write wear at the end of a run.
type WearStats struct {
	// TotalWrites is every data-array write (fills + writebacks).
	TotalWrites uint64
	// LinesTouched is the number of distinct line addresses written.
	LinesTouched int
	// MaxLineWrites is the hottest single line's write count — the raw
	// (unleveled) wear-out driver.
	MaxLineWrites uint64
	// MaxSetWrites is the hottest set's total write count.
	MaxSetWrites uint64
	// Ways is the LLC associativity, used to compute the ideally-leveled
	// per-cell wear.
	Ways int
	// Sets is the LLC set count.
	Sets int
	// SetWriteCoV is the coefficient of variation (σ/µ) of per-set write
	// counts: 0 for perfectly even spatial wear, large when a few sets
	// take most of the traffic.
	SetWriteCoV float64
	// SetWriteGini is the Gini coefficient of per-set write counts
	// (0 = perfectly even, → 1 as wear concentrates in few sets) — the
	// single-number form of the per-set wear heatmap.
	SetWriteGini float64
}

// LeveledMaxLineWrites is the hottest physical line's write count under
// ideal intra-set wear leveling: the hottest set's writes spread evenly
// over its ways.
func (s WearStats) LeveledMaxLineWrites() uint64 {
	if s.Ways <= 0 {
		return s.MaxLineWrites
	}
	return (s.MaxSetWrites + uint64(s.Ways) - 1) / uint64(s.Ways)
}

// ImbalanceFactor is the ratio of actual hottest-line wear to the
// ideally-leveled wear — the headroom an intra-set wear-leveling scheme
// could reclaim (≥ 1).
func (s WearStats) ImbalanceFactor() float64 {
	leveled := s.LeveledMaxLineWrites()
	if leveled == 0 {
		return 1
	}
	f := float64(s.MaxLineWrites) / float64(leveled)
	if f < 1 {
		return 1
	}
	return f
}

// Stats snapshots the tracker.
func (w *WearTracker) Stats() WearStats {
	s := WearStats{
		TotalWrites:  w.total,
		LinesTouched: len(w.lineWrites),
		Ways:         w.ways,
		Sets:         len(w.setWrites),
	}
	for _, c := range w.lineWrites {
		if c > s.MaxLineWrites {
			s.MaxLineWrites = c
		}
	}
	for _, c := range w.setWrites {
		if c > s.MaxSetWrites {
			s.MaxSetWrites = c
		}
	}
	s.SetWriteCoV, s.SetWriteGini = setDispersion(w.setWrites)
	return s
}

// setDispersion computes the CoV and Gini coefficient of the per-set
// write distribution. Both are 0 for an idle or perfectly even cache.
func setDispersion(setWrites []uint64) (cov, gini float64) {
	n := len(setWrites)
	if n == 0 {
		return 0, 0
	}
	var sum float64
	for _, c := range setWrites {
		sum += float64(c)
	}
	if sum == 0 {
		return 0, 0
	}
	mean := sum / float64(n)
	var varsum float64
	sorted := make([]float64, n)
	for i, c := range setWrites {
		v := float64(c)
		d := v - mean
		varsum += d * d
		sorted[i] = v
	}
	cov = math.Sqrt(varsum/float64(n)) / mean
	// Gini via the sorted-rank formula: G = (2·Σ i·xᵢ)/(n·Σx) − (n+1)/n,
	// with xᵢ ascending and i 1-based.
	sort.Float64s(sorted)
	var ranked float64
	for i, v := range sorted {
		ranked += float64(i+1) * v
	}
	gini = 2*ranked/(float64(n)*sum) - float64(n+1)/float64(n)
	if gini < 0 {
		gini = 0
	}
	return cov, gini
}
