package system

import (
	"context"
	"testing"

	"nvmllc/internal/reference"
	"nvmllc/internal/trace"
)

// pingPongTrace makes two threads alternately write the same line —
// maximal coherence traffic.
func pingPongTrace(n int) *trace.Trace {
	tr := &trace.Trace{Name: "pingpong", Threads: 2}
	for i := 0; i < n; i++ {
		tr.Accesses = append(tr.Accesses, trace.Access{
			Addr: 0x1000,
			Kind: trace.Write,
			Tid:  uint8(i % 2),
		})
	}
	tr.InstrCount = uint64(n) * 3
	return tr
}

// producerConsumerTrace: thread 0 writes lines, thread 1 reads them.
func producerConsumerTrace(lines, rounds int) *trace.Trace {
	tr := &trace.Trace{Name: "prodcons", Threads: 2}
	for r := 0; r < rounds; r++ {
		for l := 0; l < lines; l++ {
			tr.Accesses = append(tr.Accesses, trace.Access{
				Addr: uint64(l) * 64, Kind: trace.Write, Tid: 0})
			tr.Accesses = append(tr.Accesses, trace.Access{
				Addr: uint64(l) * 64, Kind: trace.Read, Tid: 1})
		}
	}
	tr.InstrCount = uint64(len(tr.Accesses)) * 3
	return tr
}

func TestCoherenceOffForSingleThread(t *testing.T) {
	tr := streamTrace("st", 1000, 10000, 2, 1)
	r, err := Run(context.Background(), sramConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Directory != (DirectoryStats{}) {
		t.Errorf("single-threaded run produced coherence traffic: %+v", r.Directory)
	}
}

func TestWriteSharingInvalidates(t *testing.T) {
	r, err := Run(context.Background(), sramConfig(), pingPongTrace(10000))
	if err != nil {
		t.Fatal(err)
	}
	if r.Directory.Invalidations == 0 {
		t.Error("ping-pong writes produced no invalidations")
	}
	if r.Directory.RemoteWritebacks == 0 {
		t.Error("ping-pong writes produced no remote writebacks")
	}
}

func TestReadAfterRemoteWriteIntervenes(t *testing.T) {
	r, err := Run(context.Background(), sramConfig(), producerConsumerTrace(64, 100))
	if err != nil {
		t.Fatal(err)
	}
	if r.Directory.InterventionStalls == 0 {
		t.Error("producer/consumer produced no interventions")
	}
}

func TestDisableCoherence(t *testing.T) {
	cfg := sramConfig()
	cfg.DisableCoherence = true
	r, err := Run(context.Background(), cfg, pingPongTrace(10000))
	if err != nil {
		t.Fatal(err)
	}
	if r.Directory != (DirectoryStats{}) {
		t.Errorf("disabled coherence still counted: %+v", r.Directory)
	}
}

func TestCoherenceCostsTimeAndEnergy(t *testing.T) {
	tr := producerConsumerTrace(64, 200)
	on, err := Run(context.Background(), sramConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sramConfig()
	cfg.DisableCoherence = true
	off, err := Run(context.Background(), cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if on.TimeNS <= off.TimeNS {
		t.Errorf("coherent run %g ns not slower than incoherent %g ns", on.TimeNS, off.TimeNS)
	}
	if on.LLC.Writes <= off.LLC.Writes {
		t.Errorf("coherent LLC writes %d not above incoherent %d (remote flushes)",
			on.LLC.Writes, off.LLC.Writes)
	}
}

func TestPrivateDataHasNoCoherenceTraffic(t *testing.T) {
	// Threads touching disjoint regions: the directory must stay quiet.
	tr := &trace.Trace{Name: "private", Threads: 4}
	for i := 0; i < 40000; i++ {
		tid := uint8(i % 4)
		tr.Accesses = append(tr.Accesses, trace.Access{
			Addr: uint64(tid)<<30 | uint64(i%2000)*64,
			Kind: trace.Kind(i % 2),
			Tid:  tid,
		})
	}
	tr.InstrCount = uint64(len(tr.Accesses)) * 3
	r, err := Run(context.Background(), sramConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Directory.Invalidations != 0 || r.Directory.RemoteWritebacks != 0 {
		t.Errorf("disjoint threads produced coherence traffic: %+v", r.Directory)
	}
}

func TestInclusionBackInvalidation(t *testing.T) {
	// A line evicted from L2 must leave L1 too: sweep far more lines than
	// L2 holds in one L2 set's conflict chain, then confirm re-access
	// misses (it would hit in a non-inclusive L1 that kept the line).
	// Construct addresses that conflict in L2 (4096 sets) but not in L1
	// (64 sets): stride = 4096 lines.
	tr := &trace.Trace{Name: "inclusion", Threads: 1}
	for rep := 0; rep < 3; rep++ {
		for i := 0; i < 16; i++ { // 16 > 8 L2 ways
			tr.Accesses = append(tr.Accesses, trace.Access{
				Addr: uint64(i) * 4096 * 64, Kind: trace.Read})
		}
	}
	tr.InstrCount = uint64(len(tr.Accesses)) * 3
	r, err := Run(context.Background(), Gainestown(reference.SRAMBaseline()), tr)
	if err != nil {
		t.Fatal(err)
	}
	// With inclusion, every pass misses L1 and L2 for all 16 lines (the
	// 16-line chain overflows the 8-way L2 set; back-invalidation keeps L1
	// from short-circuiting). 3 passes × 16 = 48 L1D misses.
	if r.L1D.Misses != 48 {
		t.Errorf("L1D misses = %d, want 48 under inclusive back-invalidation", r.L1D.Misses)
	}
}

func TestDirectoryUnitOps(t *testing.T) {
	d := newDirectory()
	d.noteFill(7, 0)
	d.noteFill(7, 2)
	if d.othersHolding(7, 0) != 1<<2 {
		t.Errorf("othersHolding = %b", d.othersHolding(7, 0))
	}
	d.noteEvict(7, 2)
	if d.othersHolding(7, 0) != 0 {
		t.Error("evicted sharer still tracked")
	}
	d.noteEvict(7, 0)
	if d.sharers.used != 0 {
		t.Error("empty entry not reclaimed")
	}
}

// TestSharerTableMatchesMap cross-checks the open-addressed sharer table
// against a plain map under a long random op sequence: set bits, clear
// bits (including on absent lines, a no-op), and lookups. Keys are drawn
// from a small range so probe chains collide, grow triggers, and the
// backward-shift deletion gets exercised across wrapped chains.
func TestSharerTableMatchesMap(t *testing.T) {
	var tab sharerTable
	tab.init(8) // tiny, so growth and collisions happen immediately
	ref := map[uint64]uint64{}
	rng := uint64(0x2545F4914F6CDD1D)
	next := func(n uint64) uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng % n
	}
	for op := 0; op < 200000; op++ {
		line := next(512)
		bit := uint64(1) << next(64)
		switch next(3) {
		case 0:
			tab.orBit(line, bit)
			ref[line] |= bit
		case 1:
			tab.clearBit(line, bit)
			if m := ref[line] &^ bit; m == 0 {
				delete(ref, line)
			} else {
				ref[line] = m
			}
		case 2:
			if got, want := tab.get(line), ref[line]; got != want {
				t.Fatalf("op %d: get(%d) = %b, want %b", op, line, got, want)
			}
		}
	}
	if tab.used != len(ref) {
		t.Fatalf("table tracks %d lines, map %d", tab.used, len(ref))
	}
	for line, want := range ref {
		if got := tab.get(line); got != want {
			t.Fatalf("final: get(%d) = %b, want %b", line, got, want)
		}
	}
}
