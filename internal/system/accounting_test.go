package system

import (
	"context"
	"math"
	"testing"

	"nvmllc/internal/cache"
	"nvmllc/internal/nvsim"
	"nvmllc/internal/reference"
	"nvmllc/internal/trace"
)

// TestIPCUsesConfiguredClock: IPC must be computed against the run's
// configured core frequency, not the hardcoded 2.66 GHz Gainestown
// clock.
func TestIPCUsesConfiguredClock(t *testing.T) {
	tr := randomTrace(3, 20000, 1, 30000)
	cfg := sramConfig()
	cfg.Core.ClockGHz = 1.33
	cfg.L2LatencyNS = 6.0 // keep the 8-cycle L2 at the slower clock
	r, err := Run(context.Background(), cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.ClockGHz != 1.33 {
		t.Fatalf("Result.ClockGHz = %g, want the configured 1.33", r.ClockGHz)
	}
	want := float64(r.Instructions) / (r.TimeNS * 1.33)
	if got := r.IPC(); math.Abs(got-want) > 1e-12 {
		t.Errorf("IPC = %g, want %g at 1.33 GHz", got, want)
	}
	gainestown := float64(r.Instructions) / (r.TimeNS * 2.66)
	if got := r.IPC(); math.Abs(got-gainestown) < 1e-12 {
		t.Errorf("IPC = %g still uses the hardcoded 2.66 GHz clock", got)
	}
}

// TestHybridInterventionChargesLatency: a coherence cache-to-cache
// transfer in hybrid mode must stall the reader by the hybrid LLC's
// lookup latency. The historical code charged Config.LLC's latencies,
// which are documented as ignored (zero-valued) in hybrid mode, so
// multithreaded hybrid runs got free interventions.
func TestHybridInterventionChargesLatency(t *testing.T) {
	nvmModel, err := reference.ModelByName(reference.FixedCapacityModels(), "Kang_P")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Gainestown(nvsim.LLCModel{})
	cfg.Hybrid = &HybridConfig{SRAM: reference.SRAMBaseline(), NVM: nvmModel, SRAMWays: 4}
	tr := &trace.Trace{
		Name: "intervene", Threads: 2, InstrCount: 2,
		Accesses: []trace.Access{
			{Addr: 0x10040, Kind: trace.Write, Tid: 0},
			{Addr: 0x10040, Kind: trace.Read, Tid: 1},
		},
	}
	sim, err := newSimulator(cfg, tr.Threads, new(Scratch), cache.LayoutSoA)
	if err != nil {
		t.Fatal(err)
	}
	line := uint64(0x10040) >> sim.blockBits
	// Core 0 holds the line dirty in its L1D.
	sim.cores[0].l1d.Access(line, true)
	sim.dir.noteFill(line, 0)

	reader := sim.cores[1]
	before := reader.core.TimeNS()
	after := sim.downgradeOthers(reader, line, before)
	if sim.dir.stats.InterventionStalls != 1 {
		t.Fatalf("InterventionStalls = %d, want 1", sim.dir.stats.InterventionStalls)
	}
	stall := reader.core.TimeNS() - before
	if stall <= 0 {
		t.Fatal("hybrid intervention charged no latency (free cache-to-cache transfer)")
	}
	if after != reader.core.TimeNS() {
		t.Errorf("downgradeOthers returned stale clock %g, core is at %g", after, reader.core.TimeNS())
	}
	// The flushed line lands in the SRAM partition, so the transfer must
	// cost the SRAM tag+read latency through the MLP overlap factor.
	want := (cfg.Hybrid.SRAM.TagLatencyNS + cfg.Hybrid.SRAM.ReadLatencyNS) / cfg.Core.EffectiveMLP()
	if math.Abs(stall-want) > 1e-9 {
		t.Errorf("intervention stall = %g ns, want %g (SRAM partition read / MLP)", stall, want)
	}
}

// TestHybridCoherenceEndToEnd is the full-run regression for the same
// bug: a write-shared multithreaded hybrid run must report intervention
// stalls and nonzero memory stall time attributable to them.
func TestHybridCoherenceEndToEnd(t *testing.T) {
	nvmModel, err := reference.ModelByName(reference.FixedCapacityModels(), "Kang_P")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(disableCoherence bool) *Result {
		cfg := Gainestown(nvsim.LLCModel{})
		cfg.Hybrid = &HybridConfig{SRAM: reference.SRAMBaseline(), NVM: nvmModel, SRAMWays: 4}
		cfg.DisableCoherence = disableCoherence
		// Two threads ping-ponging over a tiny shared footprint: thread 0
		// writes a line, thread 1 reads it back, so reads keep finding the
		// other core's dirty copy.
		accs := make([]trace.Access, 0, 20000)
		for i := 0; i < 10000; i++ {
			addr := uint64(i%8) * 64
			accs = append(accs,
				trace.Access{Addr: addr, Kind: trace.Write, Tid: 0},
				trace.Access{Addr: addr, Kind: trace.Read, Tid: 1})
		}
		tr := &trace.Trace{Name: "pingpong", Threads: 2, Accesses: accs, InstrCount: uint64(len(accs)) * 2}
		r, err := Run(context.Background(), cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r := mk(false)
	if r.Directory.InterventionStalls == 0 {
		t.Fatal("write-shared hybrid run produced no interventions")
	}
	if r.MemStallNS <= 0 {
		t.Error("hybrid coherent run has zero memory stall time")
	}
	// With interventions now priced, the coherent run cannot be faster
	// than the incoherent one on this transfer-dominated trace.
	if rNo := mk(true); r.TimeNS <= rNo.TimeNS {
		t.Errorf("coherent hybrid run (%.1f ns) not slower than coherence-off (%.1f ns) despite %d interventions",
			r.TimeNS, rNo.TimeNS, r.Directory.InterventionStalls)
	}
}
