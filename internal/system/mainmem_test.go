package system

import (
	"context"
	"testing"

	"nvmllc/internal/mainmem"
	"nvmllc/internal/reference"
)

func TestCustomMainMemoryIntegration(t *testing.T) {
	// LLC-thrashing trace so main memory actually matters.
	lines := (8 << 20) / 64
	tr := streamTrace("mm", lines, 2*lines, 4, 1)

	run := func(tech mainmem.Tech) (*Result, *mainmem.Memory) {
		mem, err := mainmem.New(mainmem.Preset(tech))
		if err != nil {
			t.Fatal(err)
		}
		cfg := Gainestown(reference.SRAMBaseline())
		cfg.Memory = mem
		r, err := Run(context.Background(), cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		return r, mem
	}

	dramRes, dramMem := run(mainmem.DRAM)
	pcmRes, pcmMem := run(mainmem.PCRAMMem)

	// Custom memory leaves the built-in DRAM stats empty.
	if dramRes.DRAM.Reads != 0 {
		t.Error("built-in DRAM stats populated despite custom memory")
	}
	if dramMem.Stats().Reads == 0 {
		t.Error("custom memory saw no reads")
	}
	// A sequential stream should enjoy high row-buffer locality.
	if hr := dramMem.Stats().RowHitRate(); hr < 0.5 {
		t.Errorf("streaming row hit rate = %.2f, want ≥ 0.5", hr)
	}
	// PCM main memory slows the system (write drains block the banks the
	// reads need) and burns more dynamic energy on this write-heavy
	// stream.
	if pcmRes.TimeNS <= dramRes.TimeNS {
		t.Errorf("PCM main memory %g ns not slower than DRAM %g ns", pcmRes.TimeNS, dramRes.TimeNS)
	}
	dramE := dramMem.EnergyJ(dramRes.TimeNS)
	pcmE := pcmMem.EnergyJ(pcmRes.TimeNS)
	if pcmMem.Stats().Writes > 0 && pcmE <= 0 || dramE <= 0 {
		t.Error("memory energies not positive")
	}
}

func TestMainMemoryTechTradeoffLLCFiltered(t *testing.T) {
	// With a cache-resident workload the main-memory technology should
	// barely matter — the LLC filters it.
	tr := streamTrace("filtered", 2000, 100000, 4, 1)
	times := map[mainmem.Tech]float64{}
	for _, tech := range []mainmem.Tech{mainmem.DRAM, mainmem.PCRAMMem} {
		mem, err := mainmem.New(mainmem.Preset(tech))
		if err != nil {
			t.Fatal(err)
		}
		cfg := Gainestown(reference.SRAMBaseline())
		cfg.Memory = mem
		r, err := Run(context.Background(), cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		times[tech] = r.TimeNS
	}
	ratio := times[mainmem.PCRAMMem] / times[mainmem.DRAM]
	if ratio > 1.05 {
		t.Errorf("LLC-filtered workload still %.2f× slower on PCM main memory", ratio)
	}
}
