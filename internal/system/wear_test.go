package system

import (
	"context"
	"reflect"
	"testing"

	"nvmllc/internal/reference"
	"nvmllc/internal/trace"
)

func TestWearTrackingDisabledByDefault(t *testing.T) {
	tr := streamTrace("nowear", 10000, 50000, 3, 1)
	r, err := Run(context.Background(), sramConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Wear != nil {
		t.Error("wear stats present without TrackWear")
	}
}

func TestWearTrackingCountsAllLLCWrites(t *testing.T) {
	tr := streamTrace("wear", 100000, 200000, 2, 1)
	cfg := sramConfig()
	cfg.TrackWear = true
	r, err := Run(context.Background(), cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Wear == nil {
		t.Fatal("no wear stats")
	}
	if r.Wear.TotalWrites != r.LLC.Writes {
		t.Errorf("wear total %d != LLC writes %d", r.Wear.TotalWrites, r.LLC.Writes)
	}
	if r.Wear.MaxLineWrites == 0 || r.Wear.LinesTouched == 0 {
		t.Errorf("empty wear stats: %+v", r.Wear)
	}
	if r.Wear.MaxSetWrites < r.Wear.MaxLineWrites {
		t.Errorf("hottest set %d below hottest line %d", r.Wear.MaxSetWrites, r.Wear.MaxLineWrites)
	}
	if r.Wear.Ways != 16 || r.Wear.Sets != 2048 {
		t.Errorf("geometry = %d ways × %d sets, want 16 × 2048", r.Wear.Ways, r.Wear.Sets)
	}
}

func TestWearLeveledBound(t *testing.T) {
	s := WearStats{MaxLineWrites: 100, MaxSetWrites: 160, Ways: 16}
	if got := s.LeveledMaxLineWrites(); got != 10 {
		t.Errorf("leveled max = %d, want 10", got)
	}
	if f := s.ImbalanceFactor(); f != 10 {
		t.Errorf("imbalance = %g, want 10", f)
	}
	// Leveling can never make wear look worse than 1×.
	balanced := WearStats{MaxLineWrites: 10, MaxSetWrites: 160, Ways: 16}
	if f := balanced.ImbalanceFactor(); f != 1 {
		t.Errorf("balanced imbalance = %g, want 1", f)
	}
	// Degenerate geometry falls back to raw.
	raw := WearStats{MaxLineWrites: 7}
	if raw.LeveledMaxLineWrites() != 7 {
		t.Error("degenerate leveled wear wrong")
	}
	if (WearStats{}).ImbalanceFactor() != 1 {
		t.Error("empty imbalance should be 1")
	}
}

func TestWearHotLineDominates(t *testing.T) {
	// One line written once per pass of a large streaming sweep (so the
	// private caches evict it and the write reaches the LLC every pass):
	// its LLC wear must dominate its set, making the imbalance factor
	// clearly exceed 1.
	tr := &trace.Trace{Name: "hotline", Threads: 1}
	hot := uint64(0x100000)
	const sweepLines = 8192 // 512KB: flushes L1 and L2 each pass
	for pass := 0; pass < 50; pass++ {
		tr.Accesses = append(tr.Accesses, trace.Access{Addr: hot, Kind: trace.Write})
		for l := 0; l < sweepLines; l++ {
			tr.Accesses = append(tr.Accesses, trace.Access{
				Addr: uint64(l)*64 + 1<<30, Kind: trace.Write})
		}
	}
	tr.InstrCount = uint64(len(tr.Accesses)) * 3
	cfg := Gainestown(reference.SRAMBaseline())
	cfg.TrackWear = true
	r, err := Run(context.Background(), cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Wear.ImbalanceFactor() <= 1.5 {
		t.Errorf("imbalance = %g, want > 1.5 for a hot-line workload", r.Wear.ImbalanceFactor())
	}
}

func TestSetDispersion(t *testing.T) {
	// Perfectly uniform wear: no spread by either measure.
	cov, gini := setDispersion([]uint64{5, 5, 5, 5})
	if cov != 0 || gini != 0 {
		t.Errorf("uniform dispersion = (%g, %g), want (0, 0)", cov, gini)
	}
	// All wear on one of four sets: CoV = sqrt(3), Gini = 3/4.
	cov, gini = setDispersion([]uint64{12, 0, 0, 0})
	if cov < 1.73 || cov > 1.74 {
		t.Errorf("concentrated CoV = %g, want sqrt(3)", cov)
	}
	if gini != 0.75 {
		t.Errorf("concentrated Gini = %g, want 0.75", gini)
	}
	// Degenerate inputs are quiet zeros.
	if c, g := setDispersion(nil); c != 0 || g != 0 {
		t.Errorf("nil dispersion = (%g, %g)", c, g)
	}
	if c, g := setDispersion([]uint64{0, 0}); c != 0 || g != 0 {
		t.Errorf("idle dispersion = (%g, %g)", c, g)
	}
}

func TestWearStatsIncludeDispersion(t *testing.T) {
	tr := streamTrace("disp", 30000, 90000, 2, 2)
	cfg := sramConfig()
	cfg.TrackWear = true
	r, err := Run(context.Background(), cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Wear == nil {
		t.Fatal("no wear stats")
	}
	if r.Wear.SetWriteCoV < 0 || r.Wear.SetWriteGini < 0 || r.Wear.SetWriteGini >= 1 {
		t.Errorf("dispersion out of range: CoV %g, Gini %g", r.Wear.SetWriteCoV, r.Wear.SetWriteGini)
	}
}

// TestWearScratchRecycled pins the satellite: back-to-back wear-tracked
// runs through one Scratch reuse the tracker's line map and per-set
// slice instead of reallocating them, without perturbing results.
func TestWearScratchRecycled(t *testing.T) {
	tr := streamTrace("recycle", 20000, 60000, 2, 2)
	cfg := sramConfig()
	cfg.TrackWear = true
	var scratch Scratch
	first, err := RunWith(context.Background(), cfg, tr, &scratch)
	if err != nil {
		t.Fatal(err)
	}
	if scratch.wearLines == nil || scratch.wearSets == nil {
		t.Fatal("scratch did not retain wear storage after the run")
	}
	retained := reflect.ValueOf(scratch.wearLines).Pointer()
	second, err := RunWith(context.Background(), cfg, tr, &scratch)
	if err != nil {
		t.Fatal(err)
	}
	if scratch.wearLines == nil {
		t.Fatal("scratch lost wear storage on the second run")
	}
	if reflect.ValueOf(scratch.wearLines).Pointer() != retained {
		t.Error("second run allocated a fresh line map instead of recycling the scratch's")
	}
	if first.Wear.TotalWrites != second.Wear.TotalWrites ||
		first.Wear.MaxLineWrites != second.Wear.MaxLineWrites {
		t.Errorf("recycled run diverged: %+v vs %+v", first.Wear, second.Wear)
	}
}
