package system

// Time-resolved sampling: the simulator's whole-run aggregates (LLC
// events, DRAM wait, wear, fault outcomes) sliced into fixed
// instruction epochs. The paper's premise is that modern use cases are
// *phased* — write pressure varies over execution — and a single
// end-of-run number hides exactly the bursts that dominate NVM wear.
// The sampler hangs off the scheduler hot loop as one nil check per
// access when disabled and a counter compare when enabled; epoch
// boundaries emit one point of per-epoch deltas into a
// telemetry.Timeline, whose pair-merge compaction bounds memory at
// O(Points) for arbitrarily long runs.

import (
	"fmt"

	"nvmllc/internal/telemetry"
)

// DefaultTimelinePoints is the default Timeline point budget: enough
// resolution to see phases, small enough that a Result stays cheap to
// copy and encode.
const DefaultTimelinePoints = 256

// TimelineConfig enables time-resolved sampling of a run. Like
// Config.Telemetry it is observation-only — sampling never alters
// simulation behavior, and the engine's cache key excludes it — but
// unlike a registry it adds data to the Result (Timeline, WearHeatmap),
// so the engine re-simulates a cached timeline-less result when a job
// asks for one.
type TimelineConfig struct {
	// EpochInstructions is the epoch length in retired instructions.
	// Zero derives trace_instructions/Points, so any run fills the point
	// budget about once regardless of length.
	EpochInstructions uint64
	// Points bounds the number of retained epochs (the telemetry.Timeline
	// budget). Zero means DefaultTimelinePoints.
	Points int
}

// Validate checks the sampling parameters. Nil-safe (nil = disabled).
func (c *TimelineConfig) Validate() error {
	if c == nil {
		return nil
	}
	if c.Points < 0 {
		return fmt.Errorf("system: timeline points = %d, want ≥ 0", c.Points)
	}
	return nil
}

// points resolves the configured point budget.
func (c *TimelineConfig) points() int {
	if c.Points > 0 {
		return c.Points
	}
	return DefaultTimelinePoints
}

// Timeline field names, one per sampled series. All are per-epoch
// deltas except TimelineCapacity, an instantaneous level.
const (
	// TimelineLLCHits/Misses/Writes are the LLC demand hits, demand
	// misses and array writes (fills + writebacks) in the epoch.
	TimelineLLCHits   = "llc_hits"
	TimelineLLCMisses = "llc_misses"
	TimelineLLCWrites = "llc_writes"
	// TimelineDRAMReqs and TimelineDRAMWaitNS are the epoch's DRAM
	// request count and summed queueing delay (default memory model only).
	TimelineDRAMReqs   = "dram_reqs"
	TimelineDRAMWaitNS = "dram_wait_ns"
	// TimelineWearWrites is the epoch's wear-tracked LLC array writes
	// (zero without Config.TrackWear).
	TimelineWearWrites = "wear_writes"
	// TimelineFaultRetries and TimelineFaultCondemned are the epoch's
	// write-verify retries and condemned ways (zero without faults).
	TimelineFaultRetries   = "fault_retries"
	TimelineFaultCondemned = "fault_condemned"
	// TimelineCapacity is the surviving LLC capacity fraction at the
	// epoch's end (1.0 without faults).
	TimelineCapacity = "capacity_fraction"
)

// timelineFields is the fixed schema of a system timeline, in the order
// the sampler fills its value buffer.
func timelineFields() []telemetry.TimelineField {
	return []telemetry.TimelineField{
		telemetry.DeltaField(TimelineLLCHits),
		telemetry.DeltaField(TimelineLLCMisses),
		telemetry.DeltaField(TimelineLLCWrites),
		telemetry.DeltaField(TimelineDRAMReqs),
		telemetry.DeltaField(TimelineDRAMWaitNS),
		telemetry.DeltaField(TimelineWearWrites),
		telemetry.DeltaField(TimelineFaultRetries),
		telemetry.DeltaField(TimelineFaultCondemned),
		telemetry.LevelField(TimelineCapacity),
	}
}

// epochSampler drives the instruction-epoch clock and cuts per-epoch
// deltas out of the simulator's cumulative counters. Owned by a single
// simulation; only the Timeline it feeds is concurrency-safe.
type epochSampler struct {
	tl    *telemetry.Timeline
	epoch uint64 // epoch length in instructions
	next  uint64 // boundary that triggers the next sample
	instr uint64 // instructions retired so far (all cores)
	last  uint64 // instr at the previous sample

	// Previous cumulative values, subtracted to form epoch deltas.
	prevHits, prevMisses, prevWrites uint64
	prevDRAMReqs                     uint64
	prevDRAMWaitNS                   float64
	prevWear                         uint64
	prevRetries                      uint64
	prevCondemned                    int

	vals [9]float64 // scratch, one slot per timelineFields entry
}

// newEpochSampler sizes the sampler for a run of instrCount
// instructions. A zero-instruction trace degenerates to epoch 1 and
// simply never samples.
func newEpochSampler(cfg *TimelineConfig, instrCount uint64) *epochSampler {
	points := cfg.points()
	epoch := cfg.EpochInstructions
	if epoch == 0 {
		epoch = instrCount / uint64(points)
	}
	if epoch == 0 {
		epoch = 1
	}
	return &epochSampler{
		tl:    telemetry.NewTimeline(points, "instructions", timelineFields()...),
		epoch: epoch,
		next:  epoch,
	}
}

// note advances the instruction clock by one access's retirement and
// samples when a boundary is crossed. The simulator's step hand-inlines
// this exact logic (an add and a compare per access, no call); note is
// the reference form, kept for the sampler's unit tests.
func (es *epochSampler) note(s *simulator, retired uint64) {
	es.instr += retired
	if es.instr >= es.next {
		es.boundary(s)
	}
}

// boundary samples the crossed epoch and advances the next threshold
// past the current instruction clock (several epochs at once when one
// access retires more than an epoch's worth of instructions).
func (es *epochSampler) boundary(s *simulator) {
	es.sample(s)
	for es.next <= es.instr {
		es.next += es.epoch
	}
}

// flush emits the final partial epoch (retireRemainder's catch-up
// included), so every delta series telescopes to the run totals.
func (es *epochSampler) flush(s *simulator) {
	if es.instr > es.last {
		es.sample(s)
	}
}

// sample appends one epoch point: deltas of every cumulative quantity
// since the previous sample, plus the instantaneous capacity level.
// Reads only cheap accessors (no allocation — the streaming allocation
// gate runs with sampling enabled).
func (es *epochSampler) sample(s *simulator) {
	hits, misses, writes := s.stats.Hits, s.stats.Misses, s.stats.Writes
	es.vals[0] = float64(hits - es.prevHits)
	es.vals[1] = float64(misses - es.prevMisses)
	es.vals[2] = float64(writes - es.prevWrites)
	es.prevHits, es.prevMisses, es.prevWrites = hits, misses, writes

	var dramReqs uint64
	var dramWait float64
	if s.dramWait != nil {
		dramReqs = s.dramWait.Count()
		dramWait = s.dramWait.Sum()
	}
	es.vals[3] = float64(dramReqs - es.prevDRAMReqs)
	es.vals[4] = dramWait - es.prevDRAMWaitNS
	es.prevDRAMReqs, es.prevDRAMWaitNS = dramReqs, dramWait

	var wear uint64
	if s.wear != nil {
		wear = s.wear.total
	}
	es.vals[5] = float64(wear - es.prevWear)
	es.prevWear = wear

	var retries uint64
	var condemned int
	capacity := 1.0
	if s.faults != nil {
		fs := s.faults.Stats()
		retries = fs.WriteRetries
		condemned = fs.CondemnedWays
		capacity = fs.CapacityFraction()
	}
	es.vals[6] = float64(retries - es.prevRetries)
	es.vals[7] = float64(condemned - es.prevCondemned)
	es.prevRetries, es.prevCondemned = retries, condemned
	es.vals[8] = capacity

	es.tl.Append(es.instr, es.vals[:]...)
	es.last = es.instr
}

// PhaseStats is the phase summary a timeline condenses to: how bursty
// the write traffic is and how far the peak epoch's wear sits above the
// mean — the quantity wear-leveling headroom actually depends on.
type PhaseStats struct {
	// Epochs is the number of retained timeline points.
	Epochs int
	// WriteRateCoV is the coefficient of variation of the per-epoch LLC
	// write rate (0 = perfectly steady traffic).
	WriteRateCoV float64
	// PeakToMeanWrites is the peak epoch's LLC write rate over the mean.
	PeakToMeanWrites float64
	// PeakToMeanWear is the same ratio for wear-tracked array writes;
	// falls back to PeakToMeanWrites when wear tracking was off.
	PeakToMeanWear float64
	// MPKIMin/MPKIMax bound the per-epoch LLC MPKI across phases.
	MPKIMin, MPKIMax float64
}

// Phases derives the phase summary from the run's timeline; nil when
// the run was not sampled or produced no epochs.
func (r *Result) Phases() *PhaseStats {
	s := r.Timeline
	if s == nil || s.Len() == 0 {
		return nil
	}
	ps := &PhaseStats{
		Epochs:           s.Len(),
		WriteRateCoV:     s.RateCoV(TimelineLLCWrites),
		PeakToMeanWrites: s.RatePeakToMean(TimelineLLCWrites),
		PeakToMeanWear:   s.RatePeakToMean(TimelineWearWrites),
	}
	if ps.PeakToMeanWear == 0 {
		ps.PeakToMeanWear = ps.PeakToMeanWrites
	}
	misses := s.SeriesOf(TimelineLLCMisses)
	if misses == nil {
		return ps
	}
	prev := uint64(0)
	first := true
	for i, x := range s.X {
		width := float64(x - prev)
		prev = x
		if width <= 0 {
			// A zero-width epoch has no defined rate; skipping it must
			// not leave MPKIMin stuck at the zero value (the bounds are
			// seeded by the first *valid* epoch, not by index 0).
			continue
		}
		mpki := misses[i] / width * 1000
		if first || mpki < ps.MPKIMin {
			ps.MPKIMin = mpki
		}
		if first || mpki > ps.MPKIMax {
			ps.MPKIMax = mpki
		}
		first = false
	}
	return ps
}

// buildWearHeatmap assembles the per-set sets×{writes, accesses} grid
// from the wear tracker's per-set write counts and the sampler-gated
// per-set access counts.
func buildWearHeatmap(wear *WearTracker, setAccs []uint64) *telemetry.Heatmap {
	h := telemetry.NewHeatmap(len(wear.setWrites), "set", "writes", "accesses")
	for set, w := range wear.setWrites {
		h.Set(set, 0, float64(w))
	}
	for set, a := range setAccs {
		h.Set(set, 1, float64(a))
	}
	return h
}
