package system_test

import (
	"context"
	"fmt"

	"nvmllc/internal/reference"
	"nvmllc/internal/system"
	"nvmllc/internal/workload"
)

// ExampleRun simulates the cg benchmark on the Gainestown system with the
// paper's Jan_S STT-RAM LLC and reports the energy ratio against SRAM.
func ExampleRun() {
	profile, err := workload.ByName("cg")
	if err != nil {
		panic(err)
	}
	tr, err := workload.Generate(profile, workload.Options{Accesses: 100_000})
	if err != nil {
		panic(err)
	}
	jan, err := reference.ModelByName(reference.FixedCapacityModels(), "Jan_S")
	if err != nil {
		panic(err)
	}
	nvmRes, err := system.Run(context.Background(), system.Gainestown(jan), tr)
	if err != nil {
		panic(err)
	}
	sramRes, err := system.Run(context.Background(), system.Gainestown(reference.SRAMBaseline()), tr)
	if err != nil {
		panic(err)
	}
	ratio := nvmRes.LLCEnergyJ() / sramRes.LLCEnergyJ()
	fmt.Printf("Jan_S energy below SRAM: %v\n", ratio < 0.5)
	// Output:
	// Jan_S energy below SRAM: true
}
