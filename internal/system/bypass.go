package system

// LLC write bypassing, the second category of NVM-LLC techniques the paper
// surveys ("Novel architectural techniques, e.g., cache bypassing" [14],
// [16], [17], [21]): blocks predicted dead-on-arrival skip the NVM data
// array entirely, trading potential future hits for avoided expensive NVM
// writes. The predictor is a dead-block table in the style of the
// write-minimization literature: it remembers, per (hashed) line address,
// whether the line saw any reuse during its last LLC residency; lines that
// died without reuse are bypassed on their next fill or writeback.

// BypassPolicy selects the LLC write-bypass behavior.
type BypassPolicy int

const (
	// BypassNone disables bypassing (the paper's configuration).
	BypassNone BypassPolicy = iota
	// BypassDeadBlock bypasses fills and L2 writebacks of lines whose
	// previous LLC residency ended without a single hit.
	BypassDeadBlock
)

// String names the policy.
func (b BypassPolicy) String() string {
	switch b {
	case BypassNone:
		return "none"
	case BypassDeadBlock:
		return "dead-block"
	default:
		return "BypassPolicy(?)"
	}
}

const (
	// bypassTableBits sizes the dead-block table (2^bits entries).
	bypassTableBits = 16
	bypassTableMask = 1<<bypassTableBits - 1
)

// deadBlockPredictor tracks per-line reuse across LLC residencies.
type deadBlockPredictor struct {
	// deadLast is set when the line's last residency saw no hit.
	deadLast []bool
	// seen marks table entries with at least one completed residency.
	seen []bool
	// hitThisResidency marks currently resident lines that have hit.
	hitThisResidency map[uint64]bool
}

func newDeadBlockPredictor() *deadBlockPredictor {
	return &deadBlockPredictor{
		deadLast:         make([]bool, 1<<bypassTableBits),
		seen:             make([]bool, 1<<bypassTableBits),
		hitThisResidency: make(map[uint64]bool),
	}
}

// slot hashes a line address into the table.
func (d *deadBlockPredictor) slot(line uint64) uint64 {
	h := line * 0x9E3779B97F4A7C15
	return (h >> 24) & bypassTableMask
}

// predictDead reports whether the line should be bypassed: it has a
// completed residency on record and that residency ended dead.
func (d *deadBlockPredictor) predictDead(line uint64) bool {
	s := d.slot(line)
	return d.seen[s] && d.deadLast[s]
}

// onHit records reuse for a resident line.
func (d *deadBlockPredictor) onHit(line uint64) {
	d.hitThisResidency[line] = true
}

// onFill starts a residency.
func (d *deadBlockPredictor) onFill(line uint64) {
	delete(d.hitThisResidency, line)
}

// onEvict closes a residency and trains the table.
func (d *deadBlockPredictor) onEvict(line uint64) {
	s := d.slot(line)
	d.seen[s] = true
	d.deadLast[s] = !d.hitThisResidency[line]
	delete(d.hitThisResidency, line)
}
