package system

import (
	"context"
	"testing"

	"nvmllc/internal/cache"
	"nvmllc/internal/reference"
)

// hybridConfig builds a 4-SRAM + 12-NVM way hybrid from the SRAM baseline
// and Kang_P (the worst-case write-energy NVM).
func hybridConfig(t *testing.T, sramWays int) Config {
	t.Helper()
	kang, err := reference.ModelByName(reference.FixedCapacityModels(), "Kang_P")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Gainestown(kang)
	cfg.Hybrid = &HybridConfig{
		SRAM:     reference.SRAMBaseline(),
		NVM:      kang,
		SRAMWays: sramWays,
	}
	return cfg
}

func TestHybridValidation(t *testing.T) {
	cfg := hybridConfig(t, 4)
	cfg.Hybrid.SRAMWays = 0
	tr := streamTrace("hv", 100, 2000, 3, 1)
	if _, err := Run(context.Background(), cfg, tr); err == nil {
		t.Error("zero SRAM ways accepted")
	}
	cfg.Hybrid.SRAMWays = 16
	if _, err := Run(context.Background(), cfg, tr); err == nil {
		t.Error("all-SRAM hybrid accepted")
	}
	cfg = hybridConfig(t, 4)
	cfg.TrackWear = true
	if _, err := Run(context.Background(), cfg, tr); err == nil {
		t.Error("hybrid + wear tracking accepted")
	}
	cfg = hybridConfig(t, 4)
	cfg.LLCBypass = BypassDeadBlock
	if _, err := Run(context.Background(), cfg, tr); err == nil {
		t.Error("hybrid + bypass accepted")
	}
}

func TestHybridBasicRun(t *testing.T) {
	tr := streamTrace("hybrid", 60000, 200000, 3, 1)
	r, err := Run(context.Background(), hybridConfig(t, 4), tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Hybrid == nil {
		t.Fatal("no hybrid stats")
	}
	if r.LLCName != "hybrid(SRAM+Kang_P)" {
		t.Errorf("LLC name = %q", r.LLCName)
	}
	h := r.Hybrid
	if h.SRAMHits+h.NVMHits != r.LLC.Hits {
		t.Errorf("partition hits %d+%d != total %d", h.SRAMHits, h.NVMHits, r.LLC.Hits)
	}
	if h.Misses != r.LLC.Misses {
		t.Errorf("hybrid misses %d != LLC misses %d", h.Misses, r.LLC.Misses)
	}
	if h.SRAMWrites == 0 || h.NVMWrites == 0 {
		t.Errorf("partition writes = %d/%d, want both nonzero", h.SRAMWrites, h.NVMWrites)
	}
	if r.LLCEnergyJ() <= 0 {
		t.Error("non-positive hybrid energy")
	}
}

func TestHybridMigratesWriteHotLines(t *testing.T) {
	// A 768KB read/write mix: loads fill the NVM partition, the L2
	// overflow sends repeated writebacks of the same lines, and those
	// write-hot NVM lines must migrate to SRAM.
	tr := streamTrace("hotwrites", 12288, 400000, 2, 1)
	r, err := Run(context.Background(), hybridConfig(t, 4), tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Hybrid.Migrations == 0 {
		t.Error("no write-hot lines migrated to SRAM")
	}
}

func TestHybridAbsorbsNVMWrites(t *testing.T) {
	// Against a pure Kang_P LLC of the same total capacity-class, the
	// hybrid must divert a meaningful share of writes to SRAM and cut
	// dynamic energy on a write-heavy workload.
	tr := streamTrace("absorb", 8192, 300000, 1, 1)
	kang, _ := reference.ModelByName(reference.FixedCapacityModels(), "Kang_P")

	pure, err := Run(context.Background(), Gainestown(kang), tr)
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := Run(context.Background(), hybridConfig(t, 4), tr)
	if err != nil {
		t.Fatal(err)
	}
	nvmShare := float64(hyb.Hybrid.NVMWrites) / float64(hyb.Hybrid.NVMWrites+hyb.Hybrid.SRAMWrites)
	if nvmShare > 0.6 {
		t.Errorf("NVM still takes %.0f%% of hybrid writes", nvmShare*100)
	}
	if hyb.LLCDynamicJ >= pure.LLCDynamicJ {
		t.Errorf("hybrid dynamic energy %g not below pure Kang_P %g", hyb.LLCDynamicJ, pure.LLCDynamicJ)
	}
}

func TestHybridDemotionsPreserveData(t *testing.T) {
	// SRAM pressure (more write-allocated lines than SRAM ways per set)
	// must demote lines to NVM, not lose them: re-visits after the write
	// burst should hit (SRAM or NVM), not go to DRAM. 1.5MB working set:
	// overflows L2 (so traffic reaches the LLC) and the 2 SRAM ways per
	// set (12 lines/set), but fits the 2MB hybrid.
	tr := streamTrace("demote", 24576, 300000, 1, 1)
	r, err := Run(context.Background(), hybridConfig(t, 2), tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Hybrid.Demotions == 0 {
		t.Error("no demotions under SRAM pressure")
	}
	// After warmup the 256KB set fits the hybrid easily: miss rate low.
	missRate := float64(r.LLC.Misses) / float64(r.LLC.Hits+r.LLC.Misses)
	if missRate > 0.25 {
		t.Errorf("hybrid miss rate %.2f, want < 0.25 (lines lost on demotion?)", missRate)
	}
}

func TestHybridLeakageBlend(t *testing.T) {
	kang, _ := reference.ModelByName(reference.FixedCapacityModels(), "Kang_P")
	h := &HybridConfig{SRAM: reference.SRAMBaseline(), NVM: kang, SRAMWays: 4}
	hl, err := newHybridLLC(h, 64, 16, cache.LayoutSoA)
	if err != nil {
		t.Fatal(err)
	}
	want := reference.SRAMBaseline().LeakageW*0.25 + kang.LeakageW*0.75
	if got := hl.leakageW(); got != want {
		t.Errorf("blended leakage = %g, want %g", got, want)
	}
}
