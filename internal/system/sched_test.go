package system

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"nvmllc/internal/cpu"
	"nvmllc/internal/workload"
)

// schedCores builds n cores with deterministic pseudo-random stream
// lengths for scheduler-order tests.
func schedCores(t *testing.T, n int) []*coreState {
	t.Helper()
	cores := make([]*coreState, n)
	for i := 0; i < n; i++ {
		core, err := cpu.NewCore(cpu.Gainestown())
		if err != nil {
			t.Fatal(err)
		}
		// Lengths vary per core, some zero (cores with no work).
		length := (i * 13) % 37
		cores[i] = &coreState{idx: i, core: core, line: make([]uint64, length)}
	}
	return cores
}

// advance moves a core's clock deterministically as a function of its
// index and position; amount 0 exercises the tie-break paths.
func advance(cs *coreState) {
	cs.pos++
	cs.core.Retire(uint64((cs.idx*7 + cs.pos*13) % 5))
}

// TestCoreHeapMatchesLinearScan drives the heap and the historical
// linear scan over identical synthetic core populations and asserts the
// selection sequences are step-for-step identical, including ties
// (equal clocks must resolve to the lowest core index).
func TestCoreHeapMatchesLinearScan(t *testing.T) {
	heapOrder := func() []int {
		cores := schedCores(t, 19)
		h := newCoreHeap(cores)
		var order []int
		for h.len() > 0 {
			cs := h.min()
			order = append(order, cs.idx)
			advance(cs)
			if cs.pos >= len(cs.line) {
				h.popMin()
			} else {
				h.fixMin(cs.core.TimeNS())
			}
		}
		return order
	}()
	scanOrder := func() []int {
		cores := schedCores(t, 19)
		var order []int
		for {
			var next *coreState
			for _, cs := range cores {
				if cs.pos >= len(cs.line) {
					continue
				}
				if next == nil || cs.core.TimeNS() < next.core.TimeNS() {
					next = cs
				}
			}
			if next == nil {
				break
			}
			order = append(order, next.idx)
			advance(next)
		}
		return order
	}()
	if len(heapOrder) != len(scanOrder) {
		t.Fatalf("heap scheduled %d steps, scan %d", len(heapOrder), len(scanOrder))
	}
	for i := range heapOrder {
		if heapOrder[i] != scanOrder[i] {
			t.Fatalf("step %d: heap chose core %d, scan core %d", i, heapOrder[i], scanOrder[i])
		}
	}
}

// TestSchedulerResultEquivalence: the heap and linear-scan schedulers
// must produce byte-identical Results on multi-threaded workloads (the
// interleaving, and therefore every counter and clock, is the same).
func TestSchedulerResultEquivalence(t *testing.T) {
	p, err := workload.ByName("ft")
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{2, 4, 16} {
		tr, err := workload.Generate(p, workload.Options{Accesses: 30000, Threads: threads})
		if err != nil {
			t.Fatal(err)
		}
		cfg := sramConfig().WithCores(threads)
		heap, err := RunScheduled(context.Background(), cfg, tr, SchedHeap, nil)
		if err != nil {
			t.Fatal(err)
		}
		scan, err := RunScheduled(context.Background(), cfg, tr, SchedLinearScan, nil)
		if err != nil {
			t.Fatal(err)
		}
		hb, err := json.Marshal(heap)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := json.Marshal(scan)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(hb, sb) {
			t.Errorf("%d threads: schedulers disagree\nheap: %s\nscan: %s", threads, hb, sb)
		}
	}
}
