package cliutil

// /debug/timeline: a live, auto-refreshing HTML view of the run's
// headline metrics over wall-clock time. No JavaScript, no external
// assets — a <meta refresh> paces the sampling (each page load takes
// one sample), and unicode block glyphs draw the sparklines. The
// retained history rides a telemetry.Timeline, so an arbitrarily long
// run holds a bounded number of points and concurrent scrapes exercise
// the instrument's concurrency safety rather than racing.

import (
	"fmt"
	"html"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"nvmllc/internal/telemetry"
)

// liveSeries are the headline metrics the dashboard tracks. All are
// sampled as levels (cumulative totals / instantaneous gauges); the
// renderer differences consecutive samples into per-interval activity.
var liveSeries = []struct {
	field  string
	name   string
	labels []string
	gauge  bool
}{
	{"llc_hits", "system_llc_hits_total", nil, false},
	{"llc_misses", "system_llc_misses_total", nil, false},
	{"llc_writes", "system_llc_writes_total", nil, false},
	{"dram_reads", "system_dram_reads_total", nil, false},
	{"dram_writes", "system_dram_writes_total", nil, false},
	{"fault_retries", "system_llc_fault_write_retries_total", nil, false},
	{"fault_condemned", "system_llc_fault_condemned_ways_total", nil, false},
	{"jobs_simulated", "engine_jobs_total", []string{"outcome", "simulated"}, false},
	{"jobs_cached", "engine_jobs_total", []string{"outcome", "cached"}, false},
	{"capacity_fraction", "system_llc_capacity_fraction", nil, true},
}

// timelinePoints bounds the dashboard's retained samples (~17 minutes
// of history at the 2 s refresh before the first pair-merge).
const timelinePoints = 512

// liveTimeline samples a registry into a bounded wall-clock timeline,
// one sample per page load.
type liveTimeline struct {
	reg   *telemetry.Registry
	tl    *telemetry.Timeline
	start time.Time
	// lastMS dedupes bursts: concurrent or sub-millisecond scrapes skip
	// sampling instead of appending non-increasing x values.
	lastMS atomic.Int64
}

func newLiveTimeline(reg *telemetry.Registry) *liveTimeline {
	fields := make([]telemetry.TimelineField, len(liveSeries))
	for i, s := range liveSeries {
		fields[i] = telemetry.LevelField(s.field)
	}
	lt := &liveTimeline{
		reg:   reg,
		tl:    telemetry.NewTimeline(timelinePoints, "ms", fields...),
		start: time.Now(),
	}
	lt.lastMS.Store(-1) // admit a scrape inside the first millisecond
	return lt
}

// sample reads every tracked instrument and appends one point.
func (lt *liveTimeline) sample() {
	ms := time.Since(lt.start).Milliseconds()
	last := lt.lastMS.Load()
	if ms <= last || !lt.lastMS.CompareAndSwap(last, ms) {
		return
	}
	vals := make([]float64, len(liveSeries))
	for i, s := range liveSeries {
		if s.gauge {
			vals[i] = lt.reg.Gauge(s.name, s.labels...).Value()
		} else {
			vals[i] = float64(lt.reg.Counter(s.name, s.labels...).Value())
		}
	}
	lt.tl.Append(uint64(ms), vals...)
}

// sparkGlyphs scale a series into eight block heights.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// sparkline draws per-interval deltas of a level series (the gauge case
// draws the levels themselves).
func sparkline(vals []float64, gauge bool) string {
	deltas := make([]float64, 0, len(vals))
	for i, v := range vals {
		switch {
		case gauge:
			deltas = append(deltas, v)
		case i == 0:
			deltas = append(deltas, 0)
		default:
			deltas = append(deltas, v-vals[i-1])
		}
	}
	var max float64
	for _, d := range deltas {
		if d > max {
			max = d
		}
	}
	var b strings.Builder
	for _, d := range deltas {
		idx := 0
		if max > 0 && d > 0 {
			idx = int(d / max * float64(len(sparkGlyphs)-1))
		}
		b.WriteRune(sparkGlyphs[idx])
	}
	return b.String()
}

// serve handles GET /debug/timeline.
func (lt *liveTimeline) serve(w http.ResponseWriter, _ *http.Request) {
	lt.sample()
	s := lt.tl.Snapshot()
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<!DOCTYPE html>
<html><head><meta http-equiv="refresh" content="2"><title>nvmllc timeline</title>
<style>
body { font-family: monospace; background: #111; color: #ddd; margin: 2em; }
table { border-collapse: collapse; }
td, th { padding: 0.3em 1em; text-align: right; border-bottom: 1px solid #333; }
th { color: #8cf; text-align: left; }
td.name { text-align: left; color: #fc8; }
td.spark { color: #6d6; letter-spacing: 0; }
</style></head><body>
<h2>nvmllc live timeline</h2>
`)
	fmt.Fprintf(w, "<p>%d samples over %s (refreshes every 2s; history pair-merges beyond %d points)</p>\n",
		s.Len(), time.Since(lt.start).Truncate(time.Second), timelinePoints)
	fmt.Fprint(w, "<table><tr><th>metric</th><th>current</th><th>last Δ</th><th>activity</th></tr>\n")
	for i, series := range liveSeries {
		vals := s.Series[i]
		var cur, delta float64
		if n := len(vals); n > 0 {
			cur = vals[n-1]
			if n > 1 && !series.gauge {
				delta = cur - vals[n-2]
			}
		}
		fmt.Fprintf(w, "<tr><td class=\"name\">%s</td><td>%g</td><td>%g</td><td class=\"spark\">%s</td></tr>\n",
			html.EscapeString(series.field), cur, delta, sparkline(vals, series.gauge))
	}
	fmt.Fprint(w, "</table>\n<p><a href=\"/metrics\" style=\"color:#8cf\">/metrics</a> · <a href=\"/metrics.json\" style=\"color:#8cf\">/metrics.json</a> · <a href=\"/debug/pprof/\" style=\"color:#8cf\">/debug/pprof</a></p>\n</body></html>\n")
}
