package cliutil

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"nvmllc/internal/telemetry"
)

func TestDebugTimelineServesHTML(t *testing.T) {
	reg := telemetry.New()
	reg.Counter("system_llc_hits_total").Add(100)
	reg.Counter("system_llc_writes_total").Add(40)
	reg.Counter("engine_jobs_total", "outcome", "simulated").Add(2)
	reg.Gauge("system_llc_capacity_fraction").Set(0.97)

	srv := httptest.NewServer(DebugHandler(reg))
	defer srv.Close()

	get := func() string {
		resp, err := http.Get(srv.URL + "/debug/timeline")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/debug/timeline status = %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
			t.Fatalf("Content-Type = %q, want text/html", ct)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	first := get()
	for _, want := range []string{
		"http-equiv=\"refresh\"", // auto-refresh, no JS
		"llc_hits",
		"capacity_fraction",
		"jobs_simulated",
	} {
		if !strings.Contains(first, want) {
			t.Errorf("first page missing %q", want)
		}
	}
	if strings.Contains(first, "<script") {
		t.Error("dashboard must not ship JavaScript")
	}

	// A later scrape lands a second sample and shows the totals.
	reg.Counter("system_llc_hits_total").Add(23)
	time.Sleep(2 * time.Millisecond)
	second := get()
	if !strings.Contains(second, "123") {
		t.Errorf("second page does not show the updated hit total:\n%s", second)
	}
}

func TestDebugTimelineConcurrentScrapes(t *testing.T) {
	lt := newLiveTimeline(telemetry.New())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				rec := httptest.NewRecorder()
				lt.serve(rec, nil)
				if rec.Code != http.StatusOK {
					t.Errorf("status = %d", rec.Code)
				}
			}
		}()
	}
	wg.Wait()
	if got := lt.tl.Snapshot().Len(); got < 1 {
		t.Errorf("timeline retained %d points, want at least 1", got)
	}
}

func TestSparkline(t *testing.T) {
	// Deltas 0,1,3 of a level series: first glyph is the floor, last the peak.
	s := []rune(sparkline([]float64{0, 1, 4}, false))
	if len(s) != 3 {
		t.Fatalf("sparkline length = %d, want 3", len(s))
	}
	if s[0] != sparkGlyphs[0] {
		t.Errorf("first glyph = %q, want floor %q", s[0], sparkGlyphs[0])
	}
	if s[2] != sparkGlyphs[len(sparkGlyphs)-1] {
		t.Errorf("peak glyph = %q, want %q", s[2], sparkGlyphs[len(sparkGlyphs)-1])
	}
	// Gauge mode plots levels directly.
	g := []rune(sparkline([]float64{1, 1}, true))
	if g[0] != g[1] {
		t.Errorf("gauge sparkline %q should be flat", string(g))
	}
	if sparkline(nil, false) != "" {
		t.Error("empty series should render empty")
	}
}
