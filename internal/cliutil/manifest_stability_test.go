package cliutil

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"nvmllc/internal/engine"
	"nvmllc/internal/reference"
	"nvmllc/internal/system"
	"nvmllc/internal/workload"
)

// runManifestTrial simulates a small fixed-seed design-point grid
// sequentially (parallelism 1, so manifest event order is the submission
// order) and writes the JSONL manifest to path.
func runManifestTrial(t *testing.T, path string) {
	t.Helper()
	f := &Flags{Manifest: path}
	o, err := f.StartObservability("golden")
	if err != nil {
		t.Fatal(err)
	}
	opts := workload.Options{Accesses: 20_000, Seed: 7}
	p, err := workload.ByName("cg")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.Generate(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	var jobs []engine.Job
	for _, m := range reference.FixedCapacityModels()[:3] {
		jobs = append(jobs, engine.Job{
			Workload:  "cg",
			TraceOpts: opts,
			Config:    system.Gainestown(m),
			Trace:     tr,
		})
	}
	eng := engine.New(append(o.EngineOptions(), engine.WithParallelism(1))...)
	if _, err := eng.RunAll(o.Context(context.Background()), jobs); err != nil {
		t.Fatal(err)
	}
	if err := o.Close(nil); err != nil {
		t.Fatal(err)
	}
}

// stripVolatile removes the wall-clock fields — the only parts of a
// fixed-seed manifest that may differ between runs — and re-marshals
// each line (map marshaling sorts keys, so output is canonical).
func stripVolatile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("manifest line is not JSON: %v (%q)", err, sc.Text())
		}
		delete(m, "unix_ms")
		delete(m, "wall_ns")
		line, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		out.Write(line)
		out.WriteByte('\n')
	}
	return out.Bytes()
}

// TestManifestStableAcrossRuns is the manifest "golden" check: two runs
// with the same seed must produce byte-identical JSONL modulo the
// wall-clock fields. Comparing run-against-run (instead of a stored
// file) keeps the test valid as simulator internals evolve while still
// catching nondeterminism in keys, stats or event ordering.
func TestManifestStableAcrossRuns(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.jsonl"), filepath.Join(dir, "b.jsonl")
	runManifestTrial(t, a)
	runManifestTrial(t, b)
	sa, sb := stripVolatile(t, a), stripVolatile(t, b)
	if !bytes.Equal(sa, sb) {
		t.Errorf("fixed-seed manifests differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", sa, sb)
	}

	// Every design_point event carries the full observability payload:
	// the config key, per-level cache rates and the DRAM wait summary.
	sc := bufio.NewScanner(bytes.NewReader(sa))
	points := 0
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatal(err)
		}
		if m["event"] != "design_point" {
			continue
		}
		points++
		if m["key"] == "" || m["key"] == nil {
			t.Errorf("design_point missing config key: %v", m)
		}
		levels, ok := m["levels"].(map[string]any)
		if !ok || levels["L1D"] == nil || levels["LLC"] == nil {
			t.Errorf("design_point missing per-level rates: %v", m)
		}
		if m["dram"] == nil {
			t.Errorf("design_point missing DRAM summary: %v", m)
		}
	}
	if points != 3 {
		t.Errorf("manifest has %d design points, want 3", points)
	}
}
