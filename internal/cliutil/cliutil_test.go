package cliutil

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"testing"
	"time"
)

func TestStandardFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := StandardFlags(fs, 123)
	if err := fs.Parse([]string{"-accesses", "500", "-seed", "9", "-parallelism", "3", "-timeout", "2s"}); err != nil {
		t.Fatal(err)
	}
	if f.Accesses != 500 || f.Seed != 9 || f.Parallelism != 3 || f.Timeout != 2*time.Second {
		t.Errorf("parsed flags = %+v", f)
	}
	opts := f.Options()
	if opts.Accesses != 500 || opts.Seed != 9 {
		t.Errorf("Options() = %+v", opts)
	}
}

func TestStandardFlagsDefaults(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := StandardFlags(fs, 123)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if f.Accesses != 123 || f.Seed != 1 || f.Parallelism != 0 || f.Timeout != 0 {
		t.Errorf("defaults = %+v", f)
	}
}

func TestWithTimeout(t *testing.T) {
	f := &Flags{Timeout: time.Nanosecond}
	ctx, cancel := f.WithTimeout(context.Background())
	defer cancel()
	if _, ok := ctx.Deadline(); !ok {
		t.Error("timeout flag did not set a deadline")
	}

	f = &Flags{}
	ctx, cancel = f.WithTimeout(context.Background())
	if _, ok := ctx.Deadline(); ok {
		t.Error("zero timeout set a deadline")
	}
	cancel()
	if ctx.Err() == nil {
		t.Error("cancel func did not cancel")
	}
}

func TestFlagsEngine(t *testing.T) {
	f := &Flags{Parallelism: 2}
	if got := f.Engine().Workers(); got != 2 {
		t.Errorf("Workers() = %d, want 2", got)
	}
	f = &Flags{}
	if got := f.Engine().Workers(); got < 1 {
		t.Errorf("Workers() = %d, want ≥ 1", got)
	}
}

type fakeRenderer string

func (r fakeRenderer) Render(w io.Writer) error {
	_, err := fmt.Fprintln(w, string(r))
	return err
}

func TestRenderAll(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderAll(&buf, fakeRenderer("a"), fakeRenderer("b")); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "a\n\nb\n" {
		t.Errorf("RenderAll = %q, want blank-line separation", got)
	}
}

func TestStartProgressStopIdempotent(t *testing.T) {
	stop := StartProgress((&Flags{}).Engine(), time.Hour)
	stop()
	stop() // second call must not panic

	// Disabled reporting returns a no-op.
	stop = StartProgress((&Flags{}).Engine(), 0)
	stop()
}
