// Package cliutil holds the scaffolding shared by the nvmllc command-line
// tools: signal-aware entry points (SIGINT/SIGTERM cancel the run's
// context so in-flight simulations abort promptly), the standard
// simulation flags (-accesses, -seed, -parallelism, -timeout), periodic
// engine progress reporting, and table-rendering helpers.
package cliutil

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"nvmllc/internal/engine"
	"nvmllc/internal/workload"
)

// Main runs a tool body under a context that is cancelled by SIGINT or
// SIGTERM, then exits with the conventional status: 0 on success, 130
// when the run was interrupted, 1 on any other error. Errors are printed
// to stderr prefixed with the tool name.
func Main(tool string, body func(ctx context.Context) error) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	err := body(ctx)
	stop()
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled):
		fmt.Fprintf(os.Stderr, "%s: interrupted: %v\n", tool, err)
		os.Exit(130)
	default:
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		os.Exit(1)
	}
}

// Flags holds the flag values shared by the simulation CLIs.
type Flags struct {
	// Accesses is the base trace length before per-workload scaling.
	Accesses int
	// Seed seeds trace generation.
	Seed int64
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Timeout aborts the whole run when positive.
	Timeout time.Duration
	// DebugAddr serves the live /metrics, expvar and pprof endpoint when
	// non-empty.
	DebugAddr string
	// Manifest is the JSONL run-manifest path; registered only by
	// ManifestFlag (the tools that emit per-design-point manifests).
	Manifest string
}

// StandardFlags registers the shared simulation flags on fs
// (flag.CommandLine when nil) and returns the value struct to read after
// Parse.
func StandardFlags(fs *flag.FlagSet, defaultAccesses int) *Flags {
	if fs == nil {
		fs = flag.CommandLine
	}
	f := &Flags{}
	fs.IntVar(&f.Accesses, "accesses", defaultAccesses, "base trace length before per-workload scaling")
	fs.Int64Var(&f.Seed, "seed", 1, "trace generation seed")
	fs.IntVar(&f.Parallelism, "parallelism", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	fs.DurationVar(&f.Timeout, "timeout", 0, "abort the run after this duration (0 = no limit)")
	fs.StringVar(&f.DebugAddr, "debug-addr", "",
		"serve /metrics, /debug/vars and /debug/pprof on this address (e.g. localhost:6060; empty disables)")
	return f
}

// ManifestFlag additionally registers -manifest on fs (flag.CommandLine
// when nil), for the tools that write JSONL run manifests.
func (f *Flags) ManifestFlag(fs *flag.FlagSet) {
	if fs == nil {
		fs = flag.CommandLine
	}
	fs.StringVar(&f.Manifest, "manifest", "",
		"write a JSONL run manifest (one design_point event per answered design point) to this path")
}

// Options builds trace-generation options from the flags.
func (f *Flags) Options() workload.Options {
	return workload.Options{Accesses: f.Accesses, Seed: f.Seed}
}

// WithTimeout derives the run context: a deadline context when -timeout
// was set, otherwise a plain cancellable child. Callers must call the
// returned cancel func.
func (f *Flags) WithTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	if f.Timeout > 0 {
		return context.WithTimeout(ctx, f.Timeout)
	}
	return context.WithCancel(ctx)
}

// Engine builds an experiment engine bounded by the -parallelism flag.
func (f *Flags) Engine(opts ...engine.Option) *engine.Engine {
	if f.Parallelism > 0 {
		opts = append([]engine.Option{engine.WithParallelism(f.Parallelism)}, opts...)
	}
	return engine.New(opts...)
}

// StartProgress prints the engine's counters to stderr every interval
// until the returned stop func is called (idempotent). A non-positive
// interval disables reporting. Ticks on which the counters did not move
// print nothing, and stop flushes a final snapshot when there is unseen
// progress — so a run shorter than the interval still reports exactly
// once, and an idle engine does not spam identical lines.
func StartProgress(eng *engine.Engine, every time.Duration) (stop func()) {
	if every <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(every)
		defer t.Stop()
		var last engine.Stats
		printed := false
		report := func() {
			s := eng.Stats()
			if printed && s == last {
				return
			}
			last, printed = s, true
			fmt.Fprintf(os.Stderr, "progress: %s\n", s)
		}
		for {
			select {
			case <-done:
				report()
				return
			case <-t.C:
				report()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-finished
	}
}

// ArtifactList collects -artifact flag values: the flag may be repeated
// and each value may be a comma-separated list, so `-artifact fig1a
// -artifact table5,lifetime` selects three artifacts. Values are kept in
// the order given, deduplicated.
type ArtifactList struct {
	names []string
	known map[string]bool
}

// String implements flag.Value.
func (l *ArtifactList) String() string {
	if l == nil {
		return ""
	}
	return strings.Join(l.names, ",")
}

// Set implements flag.Value: it splits on commas, validates each name
// against the registry snapshot, and appends new names in order.
func (l *ArtifactList) Set(v string) error {
	for _, name := range strings.Split(v, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if len(l.known) > 0 && !l.known[name] {
			return fmt.Errorf("unknown artifact %q", name)
		}
		dup := false
		for _, have := range l.names {
			if have == name {
				dup = true
				break
			}
		}
		if !dup {
			l.names = append(l.names, name)
		}
	}
	return nil
}

// Names returns the selected artifact names in the order given.
func (l *ArtifactList) Names() []string { return l.names }

// Selected reports whether name was selected.
func (l *ArtifactList) Selected(name string) bool {
	for _, have := range l.names {
		if have == name {
			return true
		}
	}
	return false
}

// ArtifactFlag registers -artifact on fs (flag.CommandLine when nil).
// known is the registry's name list (e.g. sweep.ArtifactNames()); it is
// baked into the help text so -help documents every runnable artifact,
// and values are validated against it at parse time. cliutil stays
// registry-agnostic: callers pass the snapshot in.
func ArtifactFlag(fs *flag.FlagSet, known []string) *ArtifactList {
	if fs == nil {
		fs = flag.CommandLine
	}
	l := &ArtifactList{known: make(map[string]bool, len(known))}
	for _, n := range known {
		l.known[n] = true
	}
	fs.Var(l, "artifact",
		fmt.Sprintf("artifact to run, by registry name (repeatable, comma-separated); one of: %s",
			strings.Join(known, ", ")))
	return l
}

// Renderer is anything that can print itself — tablefmt tables and
// heatmaps.
type Renderer interface {
	Render(io.Writer) error
}

// RenderAll renders each item to w, separated by blank lines.
func RenderAll(w io.Writer, items ...Renderer) error {
	for i, it := range items {
		if i > 0 {
			fmt.Fprintln(w)
		}
		if err := it.Render(w); err != nil {
			return err
		}
	}
	return nil
}
