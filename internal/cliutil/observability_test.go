package cliutil

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nvmllc/internal/cache"
	"nvmllc/internal/dram"
	"nvmllc/internal/engine"
	"nvmllc/internal/system"
	"nvmllc/internal/telemetry"
)

func TestDebugHandlerMetricsParses(t *testing.T) {
	reg := telemetry.New()
	reg.Counter("test_jobs_total", "outcome", "ok").Add(3)
	reg.Gauge("test_temperature").Set(21.5)
	h := reg.Histogram("test_latency_ns")
	for _, v := range []float64{1, 10, 100, 1000} {
		h.Observe(v)
	}

	srv := httptest.NewServer(DebugHandler(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain", ct)
	}
	if err := telemetry.ValidateExposition(resp.Body); err != nil {
		t.Errorf("/metrics is not valid Prometheus text format: %v", err)
	}
}

func TestDebugHandlerJSONAndExpvar(t *testing.T) {
	reg := telemetry.New()
	reg.Counter("test_json_total").Add(7)
	srv := httptest.NewServer(DebugHandler(reg))
	defer srv.Close()

	for _, path := range []string{"/metrics.json", "/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d", path, resp.StatusCode)
		}
		if path != "/debug/pprof/" {
			var v map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
				t.Errorf("%s is not JSON: %v", path, err)
			}
		}
		resp.Body.Close()
	}
}

func TestStartDebugServerPortZero(t *testing.T) {
	srv, err := StartDebugServer("localhost:0", telemetry.New())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !strings.Contains(srv.Addr(), ":") || strings.HasSuffix(srv.Addr(), ":0") {
		t.Errorf("Addr() = %q, want a resolved port", srv.Addr())
	}
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}

func TestObservabilityManifestLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	f := &Flags{Manifest: path}
	o, err := f.StartObservability("testtool")
	if err != nil {
		t.Fatal(err)
	}

	res := &system.Result{
		Workload:     "cg",
		LLCName:      "SRAM",
		Cores:        4,
		TimeNS:       1e6,
		Instructions: 1000,
		LLC:          system.LLCStats{Hits: 80, Misses: 20, Writes: 30},
		L1D:          cache.Stats{Hits: 900, Misses: 100, Fills: 100, Writebacks: 10},
		DRAM:         dram.Stats{Reads: 20, Writes: 5, TotalWaitNS: 125},
	}
	ev := o.ResultEvent(engine.Event{Workload: "cg", LLC: "SRAM", Key: "k", Result: res, WallNS: 42})
	if err := o.Manifest.Write(ev); err != nil {
		t.Fatal(err)
	}
	if err := o.Close(errors.New("boom")); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []telemetry.ManifestEvent
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	for sc.Scan() {
		var e telemetry.ManifestEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("manifest line is not JSON: %v (%q)", err, sc.Text())
		}
		events = append(events, e)
	}
	if len(events) != 3 {
		t.Fatalf("manifest has %d events, want run_start + design_point + run_end", len(events))
	}
	if events[0].Event != "run_start" || events[0].Tool != "testtool" || events[0].Version == "" {
		t.Errorf("run_start = %+v", events[0])
	}
	dp := events[1]
	if dp.Event != "design_point" || dp.Workload != "cg" || dp.LLC != "SRAM" || dp.Key != "k" {
		t.Errorf("design_point identity = %+v", dp)
	}
	if dp.Levels["L1D"].HitRate != 0.9 || dp.Levels["LLC"].HitRate != 0.8 {
		t.Errorf("design_point levels = %+v", dp.Levels)
	}
	if dp.DRAM == nil || dp.DRAM.Reads != 20 || dp.DRAM.AvgWaitNS != 5 {
		t.Errorf("design_point dram = %+v", dp.DRAM)
	}
	if events[2].Event != "run_end" || events[2].Error != "boom" || events[2].Jobs != 1 {
		t.Errorf("run_end = %+v", events[2])
	}
}

func TestObservabilityEngineOptionsWriteManifest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	f := &Flags{Manifest: path}
	o, err := f.StartObservability("testtool")
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(o.EngineOptions()...)
	// A failing job still produces a design_point event with the error.
	_, runErr := eng.Run(o.Context(context.Background()), engine.Job{Workload: "x", NoCache: true})
	if runErr == nil {
		t.Fatal("expected a failure from the empty job")
	}
	if got := o.Manifest.Events(); got != 1 {
		t.Errorf("Events() = %d, want 1", got)
	}
	if err := o.Close(nil); err != nil {
		t.Fatal(err)
	}
	// The engine's simulate span landed in the run's registry.
	spans := o.Registry.Spans()
	found := false
	for _, s := range spans {
		if s.Name == "simulate" {
			found = true
		}
	}
	if !found {
		t.Errorf("registry spans = %+v, want a simulate span", spans)
	}
}

func TestManifestFlagAndDebugAddrFlag(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := StandardFlags(fs, 1)
	f.ManifestFlag(fs)
	if err := fs.Parse([]string{"-manifest", "/tmp/m.jsonl", "-debug-addr", "localhost:1234"}); err != nil {
		t.Fatal(err)
	}
	if f.Manifest != "/tmp/m.jsonl" || f.DebugAddr != "localhost:1234" {
		t.Errorf("flags = %+v", f)
	}

	fs2 := flag.NewFlagSet("test2", flag.ContinueOnError)
	addr := DebugAddrFlag(fs2)
	if err := fs2.Parse([]string{"-debug-addr", "localhost:9"}); err != nil {
		t.Fatal(err)
	}
	if *addr != "localhost:9" {
		t.Errorf("DebugAddrFlag = %q", *addr)
	}
}

func TestVersionNonEmpty(t *testing.T) {
	if Version() == "" {
		t.Error("Version() is empty")
	}
}
