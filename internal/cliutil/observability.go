package cliutil

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime/debug"
	"sync"
	"time"

	"nvmllc/internal/cache"
	"nvmllc/internal/engine"
	"nvmllc/internal/telemetry"
)

// versionOnce caches the build-info lookup; the version string is
// stamped into every manifest event.
var versionOnce = sync.OnceValue(func() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	v := bi.Main.Version
	if v == "" || v == "(devel)" {
		v = "devel"
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && len(s.Value) >= 12 {
			return v + "+" + s.Value[:12]
		}
	}
	return v
})

// Version reports the tool version recorded in run manifests: the main
// module version, with the VCS revision appended when the build stamped
// one.
func Version() string { return versionOnce() }

// DebugAddrFlag registers just the -debug-addr flag, for tools that do
// not take the standard simulation flags, and returns the value to read
// after Parse.
func DebugAddrFlag(fs *flag.FlagSet) *string {
	if fs == nil {
		fs = flag.CommandLine
	}
	return fs.String("debug-addr", "",
		"serve /metrics, /debug/vars and /debug/pprof on this address (e.g. localhost:6060; empty disables)")
}

// expvar registration is process-global and panics on duplicate names,
// so the "nvmllc" var is published once and reads through a swappable
// registry pointer (tests and successive runs start fresh registries).
var (
	expvarOnce sync.Once
	expvarMu   sync.Mutex
	expvarReg  *telemetry.Registry
)

func publishExpvar(reg *telemetry.Registry) {
	expvarMu.Lock()
	expvarReg = reg
	expvarMu.Unlock()
	expvarOnce.Do(func() {
		expvar.Publish("nvmllc", expvar.Func(func() any {
			expvarMu.Lock()
			defer expvarMu.Unlock()
			if expvarReg == nil {
				return nil
			}
			return expvarReg.Snapshot()
		}))
	})
}

// DebugHandler serves the observability surface for one registry:
//
//	/metrics         Prometheus text exposition (version 0.0.4)
//	/metrics.json    registry snapshot as indented JSON
//	/debug/vars      expvar (the registry appears under "nvmllc")
//	/debug/pprof/    the standard pprof index, profiles and traces
//	/debug/timeline  live auto-refreshing HTML dashboard (no JS)
func DebugHandler(reg *telemetry.Registry) http.Handler {
	publishExpvar(reg)
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/timeline", newLiveTimeline(reg).serve)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer is the live observability endpoint behind -debug-addr.
type DebugServer struct {
	lis net.Listener
	srv *http.Server
}

// StartDebugServer listens on addr (host:port; port 0 picks a free one)
// and serves DebugHandler in the background until Close.
func StartDebugServer(addr string, reg *telemetry.Registry) (*DebugServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debug server: %w", err)
	}
	srv := &http.Server{Handler: DebugHandler(reg)}
	go func() { _ = srv.Serve(lis) }()
	return &DebugServer{lis: lis, srv: srv}, nil
}

// Addr is the bound address (resolving a requested port 0).
func (s *DebugServer) Addr() string { return s.lis.Addr().String() }

// Close stops the server. Nil-safe.
func (s *DebugServer) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// Observability bundles the per-run telemetry a CLI starts from its
// flags: the metrics registry and root span (always on — they cost
// nothing until read), the JSONL manifest writer when -manifest was
// given, and the live debug endpoint when -debug-addr was given.
type Observability struct {
	// Tool names the CLI; it is stamped into every manifest event.
	Tool string
	// Registry collects the run's metrics and spans.
	Registry *telemetry.Registry
	// Manifest receives one design_point event per answered job (nil
	// without -manifest; nil-safe to write to).
	Manifest *telemetry.ManifestWriter
	// Debug is the live endpoint (nil without -debug-addr).
	Debug *DebugServer
	// Span is the run's root span; sweep and engine spans parent to it
	// through Context.
	Span *telemetry.Span
	// engStats, when set by TrackEngine, snapshots the engine's final
	// counters into the run_end manifest event.
	engStats func() engine.Stats
}

// TrackEngine registers the run's engine so Close can stamp its final
// counter snapshot — including estimator usage (profiling passes and
// profile-cache hits) — into the run_end manifest event.
func (o *Observability) TrackEngine(eng *engine.Engine) { o.engStats = eng.Stats }

// StartObservability builds the run's observability surface from the
// parsed flags. The manifest opens with a run_start event; the debug
// server announces its bound address on stderr, so `-debug-addr
// localhost:0` is discoverable. Callers must Close with the run's
// error.
func (f *Flags) StartObservability(tool string) (*Observability, error) {
	o := &Observability{Tool: tool, Registry: telemetry.New()}
	o.Span = o.Registry.StartSpan(tool, nil)
	if f.Manifest != "" {
		mw, err := telemetry.CreateManifest(f.Manifest)
		if err != nil {
			return nil, err
		}
		o.Manifest = mw
		if err := mw.Write(telemetry.ManifestEvent{
			Event:   "run_start",
			Tool:    tool,
			Version: Version(),
			UnixMS:  time.Now().UnixMilli(),
		}); err != nil {
			return nil, err
		}
	}
	if f.DebugAddr != "" {
		srv, err := StartDebugServer(f.DebugAddr, o.Registry)
		if err != nil {
			_ = o.Manifest.Close()
			return nil, err
		}
		o.Debug = srv
		fmt.Fprintf(os.Stderr, "%s: debug server on http://%s/ (metrics, timeline, expvar, pprof)\n", tool, srv.Addr())
	}
	return o, nil
}

// Context returns ctx carrying the run's root span, so design-point
// spans started below it are parented correctly.
func (o *Observability) Context(ctx context.Context) context.Context {
	return telemetry.ContextWithSpan(ctx, o.Span)
}

// EngineOptions instruments an engine with the run's registry and, when
// a manifest is open, a progress observer appending one design_point
// event per answered job.
func (o *Observability) EngineOptions() []engine.Option {
	opts := []engine.Option{engine.WithTelemetry(o.Registry)}
	if o.Manifest != nil {
		opts = append(opts, engine.WithProgress(func(ev engine.Event) {
			_ = o.Manifest.Write(o.ResultEvent(ev))
		}))
	}
	return opts
}

// ResultEvent converts an engine progress event into a manifest
// design_point event, flattening per-level cache rates and the DRAM
// queue-latency quantile summary.
func (o *Observability) ResultEvent(ev engine.Event) telemetry.ManifestEvent {
	e := telemetry.ManifestEvent{
		Event:    "design_point",
		Tool:     o.Tool,
		Version:  Version(),
		UnixMS:   time.Now().UnixMilli(),
		Workload: ev.Workload,
		LLC:      ev.LLC,
		Key:      ev.Key,
		Cached:   ev.Cached,
		WallNS:   ev.WallNS,
	}
	if ev.Err != nil {
		e.Error = ev.Err.Error()
	}
	r := ev.Result
	if r == nil {
		return e
	}
	e.Cores = r.Cores
	e.TimeNS = r.TimeNS
	e.Instructions = r.Instructions
	e.MPKI = r.LLCMPKI()
	e.WriteFraction = r.LLC.WriteFraction()
	e.LLCEnergyJ = r.LLCEnergyJ()
	llcRate := 0.0
	if acc := r.LLC.Accesses(); acc > 0 {
		llcRate = float64(r.LLC.Hits) / float64(acc)
	}
	e.Levels = map[string]telemetry.ManifestLevel{
		"L1I": manifestLevel(r.L1I),
		"L1D": manifestLevel(r.L1D),
		"L2":  manifestLevel(r.L2),
		"LLC": {
			Hits:    r.LLC.Hits,
			Misses:  r.LLC.Misses,
			HitRate: llcRate,
			Writes:  r.LLC.Writes,
		},
	}
	d := &telemetry.ManifestDRAM{Reads: r.DRAM.Reads, Writes: r.DRAM.Writes}
	if n := r.DRAM.Reads + r.DRAM.Writes; n > 0 {
		d.AvgWaitNS = r.DRAM.TotalWaitNS / float64(n)
	}
	if s := r.DRAMWait; s != nil && s.Count > 0 {
		d.WaitP50NS = s.Quantile(0.5)
		d.WaitP90NS = s.Quantile(0.9)
		d.WaitP99NS = s.Quantile(0.99)
		d.WaitMaxNS = s.Max
	}
	e.DRAM = d
	e.Timeline = r.Timeline
	return e
}

// manifestLevel flattens one private cache level's statistics.
func manifestLevel(s cache.Stats) telemetry.ManifestLevel {
	return telemetry.ManifestLevel{
		Hits:       s.Hits,
		Misses:     s.Misses,
		HitRate:    s.HitRate(),
		Writebacks: s.Writebacks,
		Fills:      s.Fills,
	}
}

// Close ends the run: the root span ends, the run_end event (with the
// run's error and design-point count) closes the manifest, and the
// debug server shuts down. Errors are joined.
func (o *Observability) Close(runErr error) error {
	o.Span.End()
	var errs []error
	if o.Manifest != nil {
		end := telemetry.ManifestEvent{
			Event:  "run_end",
			Tool:   o.Tool,
			UnixMS: time.Now().UnixMilli(),
			Jobs:   o.Manifest.Events(),
		}
		if runErr != nil {
			end.Error = runErr.Error()
		}
		if o.engStats != nil {
			s := o.engStats()
			end.Engine = &telemetry.ManifestEngine{
				Simulated:   s.Simulated,
				Upgraded:    s.Upgraded,
				Cached:      s.Cached,
				Failed:      s.Failed,
				TraceGens:   s.TraceGens,
				TraceShared: s.TraceShared,
				Profiles:    s.Profiles,
				ProfileHits: s.ProfileHits,
			}
		}
		errs = append(errs, o.Manifest.Write(end), o.Manifest.Close())
	}
	if o.Debug != nil {
		errs = append(errs, o.Debug.Close())
	}
	return errors.Join(errs...)
}
