package profile

import (
	"context"
	"fmt"
	"math"
	"math/bits"

	"nvmllc/internal/cache"
	"nvmllc/internal/trace"
)

// chunkLen sizes the stream-drain buffer (accesses per ReadChunk).
const chunkLen = 1 << 16

// flag bits carried per stream entry through the set-partition scatter.
const (
	// flagDemand marks an access the histograms classify; every stack
	// touch updates recency, demand or not.
	flagDemand uint8 = 1 << 0
)

// lastTouch is one open-addressed last-touch table slot: the line
// address and its most recent 1-based set-local position. pos == 0 means
// empty (positions are 1-based), so recycling the table is a memclr.
type lastTouch struct {
	line uint64
	pos  int32
}

// Scratch holds the profiler's reusable buffers: the drained line/flag
// lanes, their set-partition scatter targets, the per-set counting
// array, the Fenwick tree and last-touch table (sized for the largest
// set substream and recycled across sets, levels and runs), the
// stream-drain chunk buffer, and the filter pass's cache arena and LLC
// stream lanes. The zero value is ready to use; a Scratch must not be
// shared by concurrent profiling passes. system.Scratch embeds one, so
// the engine's scratch pool covers profile jobs too.
type Scratch struct {
	lines   []uint64
	flags   []uint8
	scLines []uint64
	scFlags []uint8
	counts  []int32
	offs    []int32
	fen     []int32
	table   []lastTouch
	chunk   []trace.Access
	// arena recycles the filter pass's L1/L2 tag stores.
	arena cache.Arena
	// fLines/fFlags hold the filter pass's LLC-bound stream.
	fLines []uint64
	fFlags []uint8
}

// grow returns buf resized to n, reallocating only when capacity is
// short (the slices hold no pointers, so stale tails need no clearing).
func grow[T uint64 | uint8 | int32 | lastTouch | trace.Access](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// Run profiles a raw access stream: every access is a demand stack
// touch at its line address. The stream is drained once (one pass over
// the source); the per-level histogram passes then run over the
// in-memory line lane. The context is checked per chunk and per set
// substream, so cancellation aborts long passes in bounded time.
func Run(ctx context.Context, src trace.ChunkSource, cfg Config, sc *Scratch) (*Profile, error) {
	if sc == nil {
		sc = new(Scratch)
	}
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	meta := src.Meta()
	if err := meta.Validate(); err != nil {
		return nil, err
	}
	p := newProfile(meta, cfg)
	n, err := drain(ctx, src, cfg, sc)
	if err != nil {
		return nil, err
	}
	p.Accesses = int64(n)
	p.Demand = uint64(n)
	if err := profileLines(ctx, p, sc.lines[:n], nil, cfg, sc); err != nil {
		return nil, err
	}
	p.finalize()
	return p, nil
}

// newProfile builds the empty result shell for a stream's metadata.
func newProfile(meta trace.Meta, cfg Config) *Profile {
	p := &Profile{
		Name:       meta.Name,
		BlockBytes: cfg.BlockBytes,
		MaxWays:    cfg.MaxWays,
		InstrCount: meta.InstrCount,
		Threads:    meta.Threads,
		Levels:     make([]Level, len(cfg.SetCounts)),
	}
	for i, s := range cfg.SetCounts {
		p.Levels[i] = Level{Sets: s, Hist: make([]uint64, cfg.MaxWays+1)}
	}
	return p
}

// drain reads the whole stream into sc.lines as line addresses,
// returning the access count.
func drain(ctx context.Context, src trace.ChunkSource, cfg Config, sc *Scratch) (int, error) {
	meta := src.Meta()
	if meta.Accesses > math.MaxInt32 {
		return 0, fmt.Errorf("profile %s: %d accesses exceed the profiler's 2^31 stream bound", meta.Name, meta.Accesses)
	}
	shift := blockBits(cfg.BlockBytes)
	sc.lines = grow(sc.lines, int(meta.Accesses))
	sc.chunk = grow(sc.chunk, chunkLen)
	n := 0
	for {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		m, err := src.ReadChunk(sc.chunk)
		if err != nil {
			return 0, err
		}
		if m == 0 {
			break
		}
		if n+m > len(sc.lines) {
			return 0, fmt.Errorf("profile %s: stream produced more than the declared %d accesses", meta.Name, meta.Accesses)
		}
		for i := 0; i < m; i++ {
			sc.lines[n+i] = sc.chunk[i].Addr >> shift
		}
		n += m
	}
	if int64(n) != meta.Accesses {
		return 0, fmt.Errorf("profile %s: stream produced %d accesses, meta declares %d", meta.Name, n, meta.Accesses)
	}
	return n, nil
}

// profileLines runs every configured level over the line lane. flags
// may be nil (every access is demand). Each level partitions the stream
// by set index — a stable counting scatter, so program order is
// preserved within each set — and runs the per-set Mattson pass over
// each contiguous substream.
func profileLines(ctx context.Context, p *Profile, lines []uint64, flags []uint8, cfg Config, sc *Scratch) error {
	if len(lines) > math.MaxInt32 {
		return fmt.Errorf("profile %s: %d accesses exceed the profiler's 2^31 stream bound", p.Name, len(lines))
	}
	for li := range p.Levels {
		lv := &p.Levels[li]
		if err := profileLevel(ctx, lv, lines, flags, cfg.MaxWays, sc); err != nil {
			return err
		}
	}
	return nil
}

// profileLevel computes one set count's stack-distance histogram.
func profileLevel(ctx context.Context, lv *Level, lines []uint64, flags []uint8, maxWays int, sc *Scratch) error {
	sets := lv.Sets
	if sets == 1 {
		// Fully-indexed single set: the stream is its own substream.
		return setPass(ctx, lv, lines, flags, maxWays, sc)
	}
	mask := uint64(sets - 1)
	sc.counts = grow(sc.counts, sets)
	sc.offs = grow(sc.offs, sets)
	counts := sc.counts
	for i := range counts {
		counts[i] = 0
	}
	for _, l := range lines {
		counts[l&mask]++
	}
	offs := sc.offs
	var off int32
	for s := 0; s < sets; s++ {
		offs[s] = off
		off += counts[s]
	}
	sc.scLines = grow(sc.scLines, len(lines))
	scLines := sc.scLines
	if flags != nil {
		sc.scFlags = grow(sc.scFlags, len(flags))
		scFlags := sc.scFlags
		for i, l := range lines {
			d := offs[l&mask]
			offs[l&mask] = d + 1
			scLines[d] = l
			scFlags[d] = flags[i]
		}
	} else {
		for _, l := range lines {
			d := offs[l&mask]
			offs[l&mask] = d + 1
			scLines[d] = l
		}
	}
	// offs[s] now points one past set s's segment end.
	start := 0
	for s := 0; s < sets; s++ {
		end := int(offs[s])
		if end == start {
			continue
		}
		var segFlags []uint8
		if flags != nil {
			segFlags = sc.scFlags[start:end]
		}
		if err := setPass(ctx, lv, scLines[start:end], segFlags, maxWays, sc); err != nil {
			return err
		}
		start = end
	}
	return nil
}

// setPass runs the classical Mattson stack pass over one set's
// contiguous substream: a Fenwick tree over set-local positions counts,
// in O(log n) per access, the distinct lines touched since the probed
// line's previous access (each line contributes a single 1 at its most
// recent position), and an open-addressed last-touch table maps lines
// to those positions.
func setPass(ctx context.Context, lv *Level, seg []uint64, flags []uint8, maxWays int, sc *Scratch) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	m := len(seg)
	sc.fen = grow(sc.fen, m+1)
	fen := sc.fen
	for i := range fen {
		fen[i] = 0
	}
	// Table capacity ≥ 2× the segment's distinct-line bound keeps linear
	// probing short; capacity is a power of two for mask-and-multiply
	// hashing.
	tcap := 16
	for tcap < 2*m {
		tcap <<= 1
	}
	sc.table = grow(sc.table, tcap)
	table := sc.table
	for i := range table {
		table[i] = lastTouch{}
	}
	tmask := uint64(tcap - 1)
	tshift := uint(64 - bits.TrailingZeros(uint(tcap)))
	hist := lv.Hist
	for j := 0; j < m; j++ {
		line := seg[j]
		pos := int32(j + 1)
		demand := flags == nil || flags[j]&flagDemand != 0
		// Probe the last-touch table (fibonacci hash, linear probing).
		slot := (line * 0x9E3779B97F4A7C15) >> tshift
		for table[slot].pos != 0 && table[slot].line != line {
			slot = (slot + 1) & tmask
		}
		if prev := table[slot].pos; prev != 0 {
			// Distinct lines touched in (prev, pos): prefix-sum delta over
			// the active (most-recent-position) flags, excluding prev itself.
			var d int32
			for i := pos - 1; i > 0; i -= i & (-i) {
				d += fen[i]
			}
			for i := prev; i > 0; i -= i & (-i) {
				d -= fen[i]
			}
			// The probed line's own flag moves from prev to pos.
			for i := prev; i <= int32(m); i += i & (-i) {
				fen[i]--
			}
			if demand {
				if int(d) >= maxWays {
					hist[maxWays]++
				} else {
					hist[d]++
				}
			}
		} else {
			table[slot].line = line
			if demand {
				lv.Cold++
			}
		}
		table[slot].pos = pos
		for i := pos; i <= int32(m); i += i & (-i) {
			fen[i]++
		}
	}
	return nil
}
