// Package profile implements single-pass reuse-distance (Mattson stack)
// profiling of a memory-access trace, from which LRU hit/miss counts for
// every set/way cache geometry in a sweep are derived in O(1) per
// geometry — the single-pass multi-configuration analysis of Haque et
// al. (arXiv:1506.03193), applied to the LLC design-space sweeps of the
// paper's Figures 1-4.
//
// The profiler consumes one decoded trace stream (trace.ChunkSource; the
// engine's trace-sharing layer typically hands it a SliceSource cursor)
// and produces, for each requested power-of-two set count, a bounded
// stack-distance histogram. An access to line L in an S-set LRU cache of
// associativity A hits iff the number of distinct lines mapping to L's
// set and touched since L's previous access is < A — so the histogram
// prefix sum at A is the exact LRU hit count for geometry (S, A), for
// any A up to the histogram bound. This holds for true-LRU only; Random
// and RRIP replacement stay exact-simulation territory (see DESIGN.md
// §17).
//
// Per level the profiler partitions the line stream by set index
// (stability preserves program order within a set; within-set stack
// distance is invariant to interleaving with other sets), then runs each
// set's contiguous substream through a Fenwick-tree distance counter
// (O(log n) per access) with an open-addressed last-touch table, both
// recycled across sets and runs via Scratch (reachable through
// system.Scratch so the engine's scratch pool covers profile jobs too).
package profile

import (
	"fmt"
	"math/bits"

	"nvmllc/internal/cache"
)

// Defaults for Config zero values.
const (
	// DefaultMaxWays bounds the distance histograms: hit counts are exact
	// for any associativity up to this, and every LLC the simulator
	// builds has ≤ 64 ways.
	DefaultMaxWays = 64
	// DefaultBlockBytes matches the Gainestown hierarchy's line size.
	DefaultBlockBytes = 64
)

// Config selects the geometries a profiling pass covers.
type Config struct {
	// BlockBytes is the line size used to map byte addresses to line
	// addresses (default 64).
	BlockBytes int
	// SetCounts are the power-of-two set counts to profile, one
	// stack-distance level each. Order is preserved in Profile.Levels.
	SetCounts []int
	// MaxWays bounds the per-level histograms (default DefaultMaxWays).
	// HitsFor answers exactly for any ways ≤ MaxWays.
	MaxWays int
}

// WithDefaults returns the configuration with zero fields resolved to
// their defaults — the canonical form cache keys should hash, so a
// zero-MaxWays config and an explicit DefaultMaxWays one share an
// identity (they produce identical profiles).
func (cfg Config) WithDefaults() Config { return cfg.withDefaults() }

// withDefaults fills zero fields.
func (cfg Config) withDefaults() Config {
	if cfg.BlockBytes == 0 {
		cfg.BlockBytes = DefaultBlockBytes
	}
	if cfg.MaxWays == 0 {
		cfg.MaxWays = DefaultMaxWays
	}
	return cfg
}

// Validate checks the configuration (after defaulting zero fields).
func (cfg Config) Validate() error {
	cfg = cfg.withDefaults()
	if cfg.BlockBytes <= 0 || cfg.BlockBytes&(cfg.BlockBytes-1) != 0 {
		return fmt.Errorf("profile: block size %d must be a positive power of two", cfg.BlockBytes)
	}
	if cfg.MaxWays <= 0 || cfg.MaxWays > 4096 {
		return fmt.Errorf("profile: max ways %d out of range [1, 4096]", cfg.MaxWays)
	}
	if len(cfg.SetCounts) == 0 {
		return fmt.Errorf("profile: no set counts requested")
	}
	seen := make(map[int]bool, len(cfg.SetCounts))
	for _, s := range cfg.SetCounts {
		if s <= 0 || s&(s-1) != 0 {
			return fmt.Errorf("profile: set count %d must be a positive power of two", s)
		}
		if seen[s] {
			return fmt.Errorf("profile: duplicate set count %d", s)
		}
		seen[s] = true
	}
	return nil
}

// Level is the stack-distance histogram for one set count.
type Level struct {
	// Sets is the power-of-two set count this level models.
	Sets int `json:"sets"`
	// Hist counts demand accesses by within-set stack distance: Hist[d]
	// for exact distance d < MaxWays, Hist[MaxWays] for distance ≥
	// MaxWays (a miss at every profiled associativity).
	Hist []uint64 `json:"hist"`
	// Cold counts demand first-touch (compulsory) misses — identical
	// across levels, kept per level as a consistency check.
	Cold uint64 `json:"cold"`
	// cum[a] = Σ Hist[0..a-1]: exact LRU hits at associativity a.
	// Rebuilt by finalize after profiling or decoding.
	cum []uint64
}

// UpstreamStats are the private-cache hit statistics of a filtered
// profiling pass (RunFiltered): the L1/L2 levels the LLC stream was
// strained through.
type UpstreamStats struct {
	L1I cache.Stats `json:"l1i"`
	L1D cache.Stats `json:"l1d"`
	L2  cache.Stats `json:"l2"`
}

// Profile is the result of one profiling pass: per-set-count histograms
// plus the stream totals needed to turn them into hit/miss rates.
type Profile struct {
	// Name is the profiled trace's name.
	Name string `json:"name"`
	// BlockBytes is the line size the stream was profiled at.
	BlockBytes int `json:"block_bytes"`
	// MaxWays is the histogram bound.
	MaxWays int `json:"max_ways"`
	// Accesses counts every stack touch (demand + writeback).
	Accesses int64 `json:"accesses"`
	// Demand counts the accesses the histograms classify (for a raw
	// profile every access; for a filtered one the L2 demand misses).
	Demand uint64 `json:"demand"`
	// Writebacks counts non-demand stack touches (a filtered profile's
	// L2 dirty evictions; they update recency but not the histograms).
	Writebacks uint64 `json:"writebacks"`
	// InstrCount is the instruction count of the profiled trace.
	InstrCount uint64 `json:"instr_count"`
	// Threads is the profiled trace's thread count.
	Threads int `json:"threads"`
	// Levels holds one histogram per requested set count.
	Levels []Level `json:"levels"`
	// Upstream carries the private-cache statistics of a filtered pass;
	// nil for a raw profile.
	Upstream *UpstreamStats `json:"upstream,omitempty"`
}

// finalize (re)builds the per-level hit-count prefix sums.
func (p *Profile) finalize() {
	for i := range p.Levels {
		lv := &p.Levels[i]
		cum := make([]uint64, len(lv.Hist)+1)
		for a, h := range lv.Hist {
			cum[a+1] = cum[a] + h
		}
		lv.cum = cum
	}
}

// Validate checks structural invariants and rebuilds derived state; the
// engine's persistence layer runs it on every decoded profile.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("profile: unnamed profile")
	}
	if p.BlockBytes <= 0 || p.BlockBytes&(p.BlockBytes-1) != 0 {
		return fmt.Errorf("profile %s: block size %d must be a positive power of two", p.Name, p.BlockBytes)
	}
	if p.MaxWays <= 0 {
		return fmt.Errorf("profile %s: max ways %d must be positive", p.Name, p.MaxWays)
	}
	if len(p.Levels) == 0 {
		return fmt.Errorf("profile %s: no levels", p.Name)
	}
	for i := range p.Levels {
		lv := &p.Levels[i]
		if lv.Sets <= 0 || lv.Sets&(lv.Sets-1) != 0 {
			return fmt.Errorf("profile %s: level %d set count %d must be a positive power of two", p.Name, i, lv.Sets)
		}
		if len(lv.Hist) != p.MaxWays+1 {
			return fmt.Errorf("profile %s: level %d histogram has %d buckets, want %d", p.Name, i, len(lv.Hist), p.MaxWays+1)
		}
		var sum uint64
		for _, h := range lv.Hist {
			sum += h
		}
		if sum+lv.Cold != p.Demand {
			return fmt.Errorf("profile %s: level %d classifies %d accesses, want %d", p.Name, i, sum+lv.Cold, p.Demand)
		}
	}
	p.finalize()
	return nil
}

// level returns the histogram for a set count, or nil.
func (p *Profile) level(sets int) *Level {
	for i := range p.Levels {
		if p.Levels[i].Sets == sets {
			return &p.Levels[i]
		}
	}
	return nil
}

// SetCounts lists the profiled set counts in level order.
func (p *Profile) SetCounts() []int {
	out := make([]int, len(p.Levels))
	for i := range p.Levels {
		out[i] = p.Levels[i].Sets
	}
	return out
}

// HitsFor returns the exact LRU demand hit count for a (sets, ways)
// geometry, in O(1). ok is false when the set count was not profiled or
// ways exceeds the histogram bound.
func (p *Profile) HitsFor(sets, ways int) (hits uint64, ok bool) {
	lv := p.level(sets)
	if lv == nil || ways <= 0 || ways > p.MaxWays || len(lv.cum) != len(lv.Hist)+1 {
		return 0, false
	}
	return lv.cum[ways], true
}

// MissesFor is Demand − HitsFor (cold and beyond-bound distances
// included).
func (p *Profile) MissesFor(sets, ways int) (misses uint64, ok bool) {
	hits, ok := p.HitsFor(sets, ways)
	if !ok {
		return 0, false
	}
	return p.Demand - hits, true
}

// HitRateFor returns hits/demand for a geometry (0 for an empty stream).
func (p *Profile) HitRateFor(sets, ways int) (rate float64, ok bool) {
	hits, ok := p.HitsFor(sets, ways)
	if !ok {
		return 0, false
	}
	if p.Demand == 0 {
		return 0, true
	}
	return float64(hits) / float64(p.Demand), true
}

// MPKIFor returns demand misses per kilo-instruction for a geometry.
func (p *Profile) MPKIFor(sets, ways int) (mpki float64, ok bool) {
	misses, ok := p.MissesFor(sets, ways)
	if !ok {
		return 0, false
	}
	if p.InstrCount == 0 {
		return 0, true
	}
	return float64(misses) / float64(p.InstrCount) * 1000, true
}

// Curve returns the hit-rate-vs-associativity curve for a set count
// (index a-1 holds associativity a), or nil if the set count was not
// profiled.
func (p *Profile) Curve(sets int) []float64 {
	lv := p.level(sets)
	if lv == nil || len(lv.cum) != len(lv.Hist)+1 {
		return nil
	}
	out := make([]float64, p.MaxWays)
	for a := 1; a <= p.MaxWays; a++ {
		if p.Demand > 0 {
			out[a-1] = float64(lv.cum[a]) / float64(p.Demand)
		}
	}
	return out
}

// blockBits returns log2 of the validated block size.
func blockBits(blockBytes int) uint {
	return uint(bits.TrailingZeros64(uint64(blockBytes)))
}
