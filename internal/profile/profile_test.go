package profile

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"nvmllc/internal/cache"
	"nvmllc/internal/trace"
	"nvmllc/internal/workload"
)

// genTrace materializes a named workload trace for tests.
func genTrace(t *testing.T, name string, opts workload.Options) *trace.Trace {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatalf("ByName(%s): %v", name, err)
	}
	tr, err := workload.Generate(p, opts)
	if err != nil {
		t.Fatalf("Generate(%s): %v", name, err)
	}
	return tr
}

// exactHits drives an exact cache.Cache simulation of a raw line stream
// and returns its hit count.
func exactHits(t *testing.T, tr *trace.Trace, sets, ways, blockBytes int, layout cache.Layout) uint64 {
	t.Helper()
	c, err := cache.New(cache.Config{
		Name:          "X",
		CapacityBytes: int64(sets) * int64(ways) * int64(blockBytes),
		BlockBytes:    blockBytes,
		Ways:          ways,
		Layout:        layout,
	})
	if err != nil {
		t.Fatalf("cache.New(%d sets, %d ways): %v", sets, ways, err)
	}
	for _, a := range tr.Accesses {
		c.Access(c.Line(a.Addr), a.Kind == trace.Write)
	}
	return c.Stats().Hits
}

// TestCrossCheckExact is the exhaustive small-geometry property test:
// for every set count ≤ 64 and associativity ≤ 8, the profiler-derived
// LRU hit count must equal the exact cache.Cache simulation's, across
// both tag-store layouts and several workloads and seeds.
func TestCrossCheckExact(t *testing.T) {
	setCounts := []int{1, 2, 4, 8, 16, 32, 64}
	cfg := Config{SetCounts: setCounts, MaxWays: 8}
	for _, name := range []string{"ft", "mg", "deepsjeng", "milc"} {
		for _, seed := range []int64{1, 7} {
			opts := workload.Options{Accesses: 20000, Threads: 2, Seed: seed}
			tr := genTrace(t, name, opts)
			src, err := trace.NewTraceSource(tr)
			if err != nil {
				t.Fatalf("NewTraceSource: %v", err)
			}
			p, err := Run(context.Background(), src, cfg, nil)
			if err != nil {
				t.Fatalf("Run(%s seed %d): %v", name, seed, err)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("Validate(%s seed %d): %v", name, seed, err)
			}
			for _, sets := range setCounts {
				for ways := 1; ways <= 8; ways++ {
					got, ok := p.HitsFor(sets, ways)
					if !ok {
						t.Fatalf("%s seed %d: HitsFor(%d, %d) not derivable", name, seed, sets, ways)
					}
					for _, layout := range []cache.Layout{cache.LayoutSoA, cache.LayoutAoS} {
						want := exactHits(t, tr, sets, ways, DefaultBlockBytes, layout)
						if got != want {
							t.Errorf("%s seed %d, %d sets × %d ways, %s: profiler %d hits, exact %d",
								name, seed, sets, ways, layout, got, want)
						}
					}
				}
			}
		}
	}
}

// TestDerivationIdentities checks the derived-quantity algebra on a
// real profile: hits+misses = demand, hit rate and MPKI consistency,
// cold counts identical across levels, monotonicity in associativity.
func TestDerivationIdentities(t *testing.T) {
	tr := genTrace(t, "ft", workload.Options{Accesses: 30000, Threads: 4, Seed: 3})
	src, err := trace.NewTraceSource(tr)
	if err != nil {
		t.Fatalf("NewTraceSource: %v", err)
	}
	p, err := Run(context.Background(), src, Config{SetCounts: []int{64, 512, 2048}}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if p.Demand != uint64(len(tr.Accesses)) {
		t.Fatalf("demand = %d, want %d", p.Demand, len(tr.Accesses))
	}
	cold := p.Levels[0].Cold
	for _, lv := range p.Levels {
		if lv.Cold != cold {
			t.Errorf("level %d sets: cold %d differs from %d", lv.Sets, lv.Cold, cold)
		}
	}
	var prev uint64
	for ways := 1; ways <= p.MaxWays; ways++ {
		hits, ok := p.HitsFor(512, ways)
		if !ok {
			t.Fatalf("HitsFor(512, %d) not derivable", ways)
		}
		if hits < prev {
			t.Errorf("hits not monotonic in ways: %d ways gives %d < %d", ways, hits, prev)
		}
		prev = hits
		misses, _ := p.MissesFor(512, ways)
		if hits+misses != p.Demand {
			t.Errorf("%d ways: hits %d + misses %d != demand %d", ways, hits, misses, p.Demand)
		}
	}
	if _, ok := p.HitsFor(1024, 4); ok {
		t.Error("HitsFor on an unprofiled set count should report !ok")
	}
	if _, ok := p.HitsFor(512, p.MaxWays+1); ok {
		t.Error("HitsFor beyond MaxWays should report !ok")
	}
	if curve := p.Curve(512); len(curve) != p.MaxWays {
		t.Errorf("Curve length %d, want %d", len(curve), p.MaxWays)
	}
}

// TestDeterminismAndScratchReuse runs the same stream twice through one
// Scratch and once through a fresh one; all three profiles must be
// deep-equal.
func TestDeterminismAndScratchReuse(t *testing.T) {
	tr := genTrace(t, "mg", workload.Options{Accesses: 20000, Threads: 4, Seed: 2})
	cfg := Config{SetCounts: []int{16, 256, 4096}}
	run := func(sc *Scratch) *Profile {
		src, err := trace.NewTraceSource(tr)
		if err != nil {
			t.Fatalf("NewTraceSource: %v", err)
		}
		p, err := Run(context.Background(), src, cfg, sc)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return p
	}
	sc := new(Scratch)
	a, b, c := run(sc), run(sc), run(nil)
	if !reflect.DeepEqual(a, b) {
		t.Error("scratch reuse changed the profile")
	}
	if !reflect.DeepEqual(a, c) {
		t.Error("fresh scratch changed the profile")
	}
}

// TestJSONRoundTrip persists a profile through JSON and checks the
// decoded copy validates and derives identical hit counts.
func TestJSONRoundTrip(t *testing.T) {
	tr := genTrace(t, "ft", workload.Options{Accesses: 10000, Threads: 2, Seed: 1})
	src, err := trace.NewTraceSource(tr)
	if err != nil {
		t.Fatalf("NewTraceSource: %v", err)
	}
	p, err := Run(context.Background(), src, Config{SetCounts: []int{32, 128}}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	blob, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var q Profile
	if err := json.Unmarshal(blob, &q); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if err := q.Validate(); err != nil {
		t.Fatalf("decoded profile invalid: %v", err)
	}
	for _, sets := range []int{32, 128} {
		for ways := 1; ways <= p.MaxWays; ways *= 2 {
			want, _ := p.HitsFor(sets, ways)
			got, ok := q.HitsFor(sets, ways)
			if !ok || got != want {
				t.Errorf("HitsFor(%d, %d) after round trip = %d ok=%v, want %d", sets, ways, got, ok, want)
			}
		}
	}
}

// TestCancellation checks a cancelled context aborts the pass.
func TestCancellation(t *testing.T) {
	tr := genTrace(t, "ft", workload.Options{Accesses: 10000, Threads: 2, Seed: 1})
	src, err := trace.NewTraceSource(tr)
	if err != nil {
		t.Fatalf("NewTraceSource: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, src, Config{SetCounts: []int{64}}, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run on cancelled context: err = %v, want context.Canceled", err)
	}
}

// TestConfigValidate exercises the configuration error paths.
func TestConfigValidate(t *testing.T) {
	cases := []Config{
		{},                                  // no set counts
		{SetCounts: []int{3}},               // not a power of two
		{SetCounts: []int{8, 8}},            // duplicate
		{SetCounts: []int{8}, MaxWays: -1},  // bad ways
		{SetCounts: []int{8}, BlockBytes: 3} /* bad block */}
	for i, cfg := range cases {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, cfg)
		}
	}
	good := Config{SetCounts: []int{1, 64}}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected %+v: %v", good, err)
	}
}

// TestRunFiltered checks the filtered pass's bookkeeping: stream totals
// add up, upstream stats are populated, and the filter is deterministic
// across scratch reuse.
func TestRunFiltered(t *testing.T) {
	tr := genTrace(t, "ft", workload.Options{Accesses: 30000, Threads: 4, Seed: 1})
	h := Hierarchy{
		BlockBytes: 64,
		L1I:        LevelSpec{CapacityBytes: 32 << 10, Ways: 4},
		L1D:        LevelSpec{CapacityBytes: 32 << 10, Ways: 8},
		L2:         LevelSpec{CapacityBytes: 256 << 10, Ways: 8},
	}
	cfg := Config{SetCounts: []int{512, 1024, 2048, 4096}}
	run := func(sc *Scratch) *Profile {
		src, err := trace.NewTraceSource(tr)
		if err != nil {
			t.Fatalf("NewTraceSource: %v", err)
		}
		p, err := RunFiltered(context.Background(), src, h, cfg, sc)
		if err != nil {
			t.Fatalf("RunFiltered: %v", err)
		}
		return p
	}
	sc := new(Scratch)
	p := run(sc)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.Demand+p.Writebacks != uint64(p.Accesses) {
		t.Errorf("demand %d + writebacks %d != stream accesses %d", p.Demand, p.Writebacks, p.Accesses)
	}
	if p.Upstream == nil {
		t.Fatal("filtered profile has no upstream stats")
	}
	if p.Upstream.L2.Misses != p.Demand {
		t.Errorf("L2 misses %d != LLC demand %d", p.Upstream.L2.Misses, p.Demand)
	}
	if got := p.Upstream.L1D.Accesses() + p.Upstream.L1I.Accesses(); got != uint64(len(tr.Accesses)) {
		t.Errorf("L1 lookups %d != trace accesses %d", got, len(tr.Accesses))
	}
	if p.Demand == 0 {
		t.Error("filter strained away every demand access")
	}
	// The LLC sees far fewer accesses than the raw trace.
	if p.Accesses >= int64(len(tr.Accesses)) {
		t.Errorf("filtered stream (%d) not smaller than raw (%d)", p.Accesses, len(tr.Accesses))
	}
	if q := run(sc); !reflect.DeepEqual(p, q) {
		t.Error("filtered profile not deterministic across scratch reuse")
	}
}
