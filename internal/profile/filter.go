package profile

import (
	"context"
	"fmt"

	"nvmllc/internal/cache"
	"nvmllc/internal/trace"
)

// LevelSpec is one private cache level's geometry.
type LevelSpec struct {
	// CapacityBytes is the level's total data capacity.
	CapacityBytes int64
	// Ways is the associativity.
	Ways int
}

// Hierarchy describes the private L1I/L1D/L2 levels a filtered
// profiling pass strains the raw trace through, replicating the
// simulator's upstream hierarchy functionally (residency and
// writebacks, no timing) so the profiled stream is the one the LLC
// actually sees. sweep builds one from a system.Config.
type Hierarchy struct {
	// BlockBytes is the hierarchy's line size.
	BlockBytes int
	// L1I, L1D and L2 are per-thread private levels (true-LRU,
	// write-back write-allocate, inclusive L2, like the simulator's).
	L1I, L1D, L2 LevelSpec
}

// configs expands the hierarchy into validated cache configurations.
func (h Hierarchy) configs() (l1i, l1d, l2 cache.Config, err error) {
	mk := func(name string, spec LevelSpec) (cache.Config, error) {
		cfg := cache.Config{
			Name:          name,
			CapacityBytes: spec.CapacityBytes,
			BlockBytes:    h.BlockBytes,
			Ways:          spec.Ways,
		}
		return cfg, cfg.Validate()
	}
	if l1i, err = mk("L1I", h.L1I); err != nil {
		return
	}
	if l1d, err = mk("L1D", h.L1D); err != nil {
		return
	}
	l2, err = mk("L2", h.L2)
	return
}

// filterCore is one thread's private cache stack.
type filterCore struct {
	l1i, l1d, l2 *cache.Cache
}

// filterState runs the functional upstream hierarchy over a trace in
// program order, appending the LLC-bound stream (demand fills from L2
// misses plus L2 dirty-eviction writebacks, in the order the simulator
// would issue them) to the scratch's fLines/fFlags lanes.
//
// Approximations vs the full simulator, self-validated by the estimate
// artifact: accesses are processed in trace program order rather than
// the timing scheduler's core interleaving (exact for single-threaded
// traces), and the coherence directory's cross-core downgrades,
// invalidations and flush writebacks are not modeled.
type filterState struct {
	cores []filterCore
	sc    *Scratch
}

// newFilterState builds the per-thread cache stacks out of the
// scratch's arena.
func newFilterState(h Hierarchy, threads int, sc *Scratch) (*filterState, error) {
	l1iCfg, l1dCfg, l2Cfg, err := h.configs()
	if err != nil {
		return nil, err
	}
	sc.arena.Reset()
	fs := &filterState{cores: make([]filterCore, threads), sc: sc}
	for t := 0; t < threads; t++ {
		c := &fs.cores[t]
		if c.l1i, err = cache.NewIn(&sc.arena, l1iCfg); err != nil {
			return nil, err
		}
		if c.l1d, err = cache.NewIn(&sc.arena, l1dCfg); err != nil {
			return nil, err
		}
		if c.l2, err = cache.NewIn(&sc.arena, l2Cfg); err != nil {
			return nil, err
		}
	}
	return fs, nil
}

// emit appends one LLC-bound stack touch.
func (fs *filterState) emit(line uint64, flags uint8) {
	fs.sc.fLines = append(fs.sc.fLines, line)
	fs.sc.fFlags = append(fs.sc.fFlags, flags)
}

// l2Writeback propagates an L1 dirty eviction into the L2; a dirty L2
// victim continues to the LLC as a writeback (mirroring the
// simulator's l2Writeback).
func (fs *filterState) l2Writeback(c *filterCore, line uint64) {
	if present, ev := c.l2.WritebackTo(line); !present && ev.Valid && ev.Dirty {
		fs.emit(ev.LineAddr, 0)
	}
}

// fromL2 services an L1 miss: an L2 hit stops there; an L2 miss first
// settles the L2 victim (inclusion invalidations, dirty victim to the
// LLC) and then issues the demand access to the LLC — the same event
// order as the simulator's fromL2/fromLLC.
func (fs *filterState) fromL2(c *filterCore, line uint64) {
	if hit, ev := c.l2.Access(line, false); hit {
		return
	} else if ev.Valid {
		if present, dirty := c.l1d.Invalidate(ev.LineAddr); present && dirty {
			ev.Dirty = true
		}
		c.l1i.Invalidate(ev.LineAddr)
		if ev.Dirty {
			fs.emit(ev.LineAddr, 0)
		}
	}
	fs.emit(line, flagDemand)
}

// access runs one trace access through its thread's stack.
func (fs *filterState) access(a trace.Access, shift uint) {
	c := &fs.cores[a.Tid]
	line := a.Addr >> shift
	switch a.Kind {
	case trace.Ifetch:
		if hit, ev := c.l1i.Access(line, false); hit {
			return
		} else if ev.Valid && ev.Dirty {
			fs.l2Writeback(c, ev.LineAddr)
		}
	default:
		if hit, ev := c.l1d.Access(line, a.Kind == trace.Write); hit {
			return
		} else if ev.Valid && ev.Dirty {
			fs.l2Writeback(c, ev.LineAddr)
		}
	}
	fs.fromL2(c, line)
}

// upstream sums the per-thread cache statistics.
func (fs *filterState) upstream() *UpstreamStats {
	var u UpstreamStats
	for i := range fs.cores {
		u.L1I.Add(fs.cores[i].l1i.Stats())
		u.L1D.Add(fs.cores[i].l1d.Stats())
		u.L2.Add(fs.cores[i].l2.Stats())
	}
	return &u
}

// RunFiltered profiles the LLC-bound stream of a trace: the raw stream
// is strained through per-thread functional L1I/L1D/L2 caches in one
// pass, and the resulting demand + writeback sequence is profiled like
// Run profiles a raw stream — demand accesses fill the histograms,
// writebacks only update recency, matching how the simulated LLC
// counts hits and misses on demand lookups while writeback arrivals
// still touch replacement state.
func RunFiltered(ctx context.Context, src trace.ChunkSource, h Hierarchy, cfg Config, sc *Scratch) (*Profile, error) {
	if sc == nil {
		sc = new(Scratch)
	}
	if h.BlockBytes == 0 {
		h.BlockBytes = DefaultBlockBytes
	}
	if cfg.BlockBytes == 0 {
		cfg.BlockBytes = h.BlockBytes
	}
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.BlockBytes != h.BlockBytes {
		return nil, fmt.Errorf("profile: config block size %d differs from hierarchy block size %d", cfg.BlockBytes, h.BlockBytes)
	}
	meta := src.Meta()
	if err := meta.Validate(); err != nil {
		return nil, err
	}
	fs, err := newFilterState(h, meta.Threads, sc)
	if err != nil {
		return nil, err
	}
	// Single pass over the source: strain each chunk as it is read,
	// growing the LLC-bound lanes in place.
	shift := blockBits(h.BlockBytes)
	sc.fLines = sc.fLines[:0]
	sc.fFlags = sc.fFlags[:0]
	sc.chunk = grow(sc.chunk, chunkLen)
	var read int64
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m, err := src.ReadChunk(sc.chunk)
		if err != nil {
			return nil, err
		}
		if m == 0 {
			break
		}
		read += int64(m)
		if read > meta.Accesses {
			return nil, fmt.Errorf("profile %s: stream produced more than the declared %d accesses", meta.Name, meta.Accesses)
		}
		for i := 0; i < m; i++ {
			fs.access(sc.chunk[i], shift)
		}
	}
	if read != meta.Accesses {
		return nil, fmt.Errorf("profile %s: stream produced %d accesses, meta declares %d", meta.Name, read, meta.Accesses)
	}
	p := newProfile(meta, cfg)
	p.Accesses = int64(len(sc.fLines))
	for _, f := range sc.fFlags {
		if f&flagDemand != 0 {
			p.Demand++
		} else {
			p.Writebacks++
		}
	}
	if err := profileLines(ctx, p, sc.fLines, sc.fFlags, cfg, sc); err != nil {
		return nil, err
	}
	p.Upstream = fs.upstream()
	p.finalize()
	return p, nil
}
