package dram

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{Controllers: 0, BandwidthGBps: 7.6, LatencyNS: 65, BlockBytes: 64},
		{Controllers: 4, BandwidthGBps: 0, LatencyNS: 65, BlockBytes: 64},
		{Controllers: 4, BandwidthGBps: 7.6, LatencyNS: 0, BlockBytes: 64},
		{Controllers: 4, BandwidthGBps: 7.6, LatencyNS: 65, BlockBytes: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New accepted %+v", i, cfg)
		}
	}
	if _, err := New(Gainestown()); err != nil {
		t.Fatalf("New(Gainestown): %v", err)
	}
}

func TestGainestownConfig(t *testing.T) {
	cfg := Gainestown()
	if cfg.Controllers != 4 || cfg.BandwidthGBps != 7.6 {
		t.Errorf("Gainestown = %+v, want 4 controllers at 7.6 GB/s", cfg)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 64B / 7.6 GB/s ≈ 8.42 ns occupancy.
	if math.Abs(m.ServiceNS()-64.0/7.6) > 1e-9 {
		t.Errorf("ServiceNS = %g, want %g", m.ServiceNS(), 64.0/7.6)
	}
}

func TestUnloadedLatency(t *testing.T) {
	m, _ := New(Gainestown())
	done := m.Read(100, 0)
	if done != 165 {
		t.Errorf("unloaded read completes at %g, want 165", done)
	}
	if m.AvgWaitNS() != 0 {
		t.Errorf("unloaded wait = %g, want 0", m.AvgWaitNS())
	}
}

func TestQueueingOnSameController(t *testing.T) {
	m, _ := New(Gainestown())
	first := m.Read(0, 0)
	second := m.Read(0, 4) // line 4 maps to controller 0 as well (4 % 4)
	if second <= first {
		t.Errorf("queued request completes at %g, not after %g", second, first)
	}
	if m.AvgWaitNS() <= 0 {
		t.Error("no queueing delay recorded")
	}
}

func TestControllersAreIndependent(t *testing.T) {
	m, _ := New(Gainestown())
	a := m.Read(0, 0) // controller 0
	b := m.Read(0, 1) // controller 1
	if a != b {
		t.Errorf("independent controllers interfered: %g vs %g", a, b)
	}
}

func TestWritesConsumesBandwidth(t *testing.T) {
	m, _ := New(Gainestown())
	m.Write(0, 0)
	readDone := m.Read(0, 4) // behind the write on controller 0
	if readDone <= 65 {
		t.Errorf("read behind write completes at %g, want > 65", readDone)
	}
	st := m.Stats()
	if st.Reads != 1 || st.Writes != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSaturationThroughputBound(t *testing.T) {
	// Hammer one controller: completion times must advance by at least the
	// service time per request.
	m, _ := New(Gainestown())
	var last float64
	for i := 0; i < 1000; i++ {
		last = m.Read(0, 0)
	}
	minTime := 999 * m.ServiceNS()
	if last < minTime {
		t.Errorf("1000 back-to-back reads complete at %g, want ≥ %g", last, minTime)
	}
}

func TestCompletionMonotoneProperty(t *testing.T) {
	f := func(lines []uint16) bool {
		m, err := New(Gainestown())
		if err != nil {
			return false
		}
		perCtl := map[int]float64{}
		for i, l := range lines {
			now := float64(i) // non-decreasing arrivals
			done := m.Read(now, uint64(l))
			if done < now+65 {
				return false // can never beat unloaded latency
			}
			c := int(uint64(l) % 4)
			if done < perCtl[c] {
				return false // per-controller completions must be ordered
			}
			perCtl[c] = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
