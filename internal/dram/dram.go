// Package dram models the paper's main memory: 4 distributed DRAM
// controllers, each providing up to 7.6 GB/s, behind the shared LLC
// (Table IV). The model is a fixed access latency plus per-controller
// bandwidth queueing: each 64B transfer occupies its controller for
// blockBytes/bandwidth, and requests arriving at a busy controller wait.
package dram

import "fmt"

// Config describes the memory system.
type Config struct {
	// Controllers is the number of distributed DRAM controllers.
	Controllers int
	// BandwidthGBps is the per-controller peak bandwidth.
	BandwidthGBps float64
	// LatencyNS is the unloaded access latency (row access + channel).
	LatencyNS float64
	// BlockBytes is the transfer granularity (the LLC line size).
	BlockBytes int
}

// Gainestown returns the paper's memory configuration: 4 controllers at
// 7.6 GB/s with 64B lines. The 65 ns unloaded latency is a typical DDR3
// figure for the Xeon x5550 era.
func Gainestown() Config {
	return Config{Controllers: 4, BandwidthGBps: 7.6, LatencyNS: 65, BlockBytes: 64}
}

// Stats counts memory traffic.
type Stats struct {
	// Reads and Writes count transfers by direction.
	Reads, Writes uint64
	// TotalWaitNS accumulates queueing delay across all requests.
	TotalWaitNS float64
}

// Memory is the simulated main memory.
type Memory struct {
	cfg         Config
	serviceNS   float64
	busyUntilNS []float64
	stats       Stats
	onWait      func(waitNS float64)
}

// New builds a memory model.
func New(cfg Config) (*Memory, error) {
	if cfg.Controllers <= 0 {
		return nil, fmt.Errorf("dram: controllers = %d, want positive", cfg.Controllers)
	}
	if cfg.BandwidthGBps <= 0 {
		return nil, fmt.Errorf("dram: bandwidth = %g, want positive", cfg.BandwidthGBps)
	}
	if cfg.LatencyNS <= 0 {
		return nil, fmt.Errorf("dram: latency = %g, want positive", cfg.LatencyNS)
	}
	if cfg.BlockBytes <= 0 {
		return nil, fmt.Errorf("dram: block bytes = %d, want positive", cfg.BlockBytes)
	}
	return &Memory{
		cfg:         cfg,
		serviceNS:   float64(cfg.BlockBytes) / cfg.BandwidthGBps, // bytes / (GB/s) = ns
		busyUntilNS: make([]float64, cfg.Controllers),
	}, nil
}

// controller statically maps a line address to a controller.
func (m *Memory) controller(lineAddr uint64) int {
	return int(lineAddr % uint64(len(m.busyUntilNS)))
}

// Read issues a read of the line at the given time and returns the
// completion time (arrival + queueing + latency).
func (m *Memory) Read(nowNS float64, lineAddr uint64) float64 {
	m.stats.Reads++
	return m.transfer(nowNS, lineAddr)
}

// Write issues a writeback. Writebacks are posted (the caller does not
// wait), but they still occupy controller bandwidth; the returned time is
// when the transfer completes.
func (m *Memory) Write(nowNS float64, lineAddr uint64) float64 {
	m.stats.Writes++
	return m.transfer(nowNS, lineAddr)
}

func (m *Memory) transfer(nowNS float64, lineAddr uint64) float64 {
	c := m.controller(lineAddr)
	start := nowNS
	if b := m.busyUntilNS[c]; b > start {
		start = b
	}
	m.stats.TotalWaitNS += start - nowNS
	if m.onWait != nil {
		m.onWait(start - nowNS)
	}
	m.busyUntilNS[c] = start + m.serviceNS
	return start + m.cfg.LatencyNS
}

// SetWaitHook installs a per-request observer of queueing delay (the
// time a transfer waited for its controller, excluding the fixed access
// latency). The system simulator feeds it a telemetry histogram so run
// manifests can report queue-latency quantiles. A nil hook disables
// observation (the default).
func (m *Memory) SetWaitHook(fn func(waitNS float64)) { m.onWait = fn }

// Stats returns the accumulated counters.
func (m *Memory) Stats() Stats { return m.stats }

// ServiceNS returns the per-transfer controller occupancy.
func (m *Memory) ServiceNS() float64 { return m.serviceNS }

// AvgWaitNS returns the mean queueing delay per request.
func (m *Memory) AvgWaitNS() float64 {
	n := m.stats.Reads + m.stats.Writes
	if n == 0 {
		return 0
	}
	return m.stats.TotalWaitNS / float64(n)
}
