package reference

import (
	"testing"

	"nvmllc/internal/nvm"
)

func TestFixedCapacityModelsValid(t *testing.T) {
	models := FixedCapacityModels()
	if len(models) != 11 {
		t.Fatalf("fixed-capacity models = %d, want 11", len(models))
	}
	for _, m := range models {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
		if m.CapacityBytes != 2*MB {
			t.Errorf("%s: fixed-capacity capacity = %d, want 2MB", m.Name, m.CapacityBytes)
		}
	}
}

func TestFixedAreaModelsValid(t *testing.T) {
	models := FixedAreaModels()
	if len(models) != 11 {
		t.Fatalf("fixed-area models = %d, want 11", len(models))
	}
	wantCapMB := map[string]int64{
		"Oh_P": 2, "Chen_P": 4, "Kang_P": 2, "Close_P": 4,
		"Chung_S": 8, "Jan_S": 1, "Umeki_S": 2, "Xue_S": 8,
		"Hayakawa_R": 32, "Zhang_R": 128, "SRAM": 2,
	}
	for _, m := range models {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
		if want := wantCapMB[m.Name] * MB; m.CapacityBytes != want {
			t.Errorf("%s: fixed-area capacity = %d, want %d", m.Name, m.CapacityBytes, want)
		}
	}
}

func TestTableIIISpotChecks(t *testing.T) {
	fc := FixedCapacityModels()
	kang, err := ModelByName(fc, "Kang_P")
	if err != nil {
		t.Fatal(err)
	}
	if kang.WriteSetNS != 301.018 || kang.WriteResetNS != 51.018 {
		t.Errorf("Kang_P write latencies = %g/%g, want 301.018/51.018", kang.WriteSetNS, kang.WriteResetNS)
	}
	if kang.WriteLatencyNS() != 301.018 {
		t.Errorf("Kang_P WriteLatencyNS = %g, want worst-case 301.018", kang.WriteLatencyNS())
	}
	zhang, err := ModelByName(FixedAreaModels(), "Zhang_R")
	if err != nil {
		t.Fatal(err)
	}
	if zhang.CapacityMB() != 128 {
		t.Errorf("Zhang_R fixed-area capacity = %g MB, want 128", zhang.CapacityMB())
	}
	if zhang.LeakageW != 9.0 {
		t.Errorf("Zhang_R fixed-area leakage = %g, want 9.0", zhang.LeakageW)
	}
}

func TestPaperHeadlineRelationsHold(t *testing.T) {
	fc := FixedCapacityModels()
	sram := SRAMBaseline()
	jan, _ := ModelByName(fc, "Jan_S")
	xue, _ := ModelByName(fc, "Xue_S")
	hay, _ := ModelByName(fc, "Hayakawa_R")
	umeki, _ := ModelByName(fc, "Umeki_S")
	kang, _ := ModelByName(fc, "Kang_P")

	// Section V-C: Jan_S leakage far below the dense NVMs (paper: 32× less
	// than Xue_S at fixed-area... at fixed-capacity it is simply lowest).
	for _, m := range []struct {
		name string
		leak float64
	}{{"Xue_S", xue.LeakageW}, {"Hayakawa_R", hay.LeakageW}, {"Umeki_S", umeki.LeakageW}} {
		if jan.LeakageW >= m.leak {
			t.Errorf("Jan_S leakage %g not below %s %g", jan.LeakageW, m.name, m.leak)
		}
	}
	// SRAM leaks dramatically more than every NVM.
	for _, m := range NVMModels(fc) {
		if m.LeakageW >= sram.LeakageW {
			t.Errorf("%s leakage %g not below SRAM %g", m.Name, m.LeakageW, sram.LeakageW)
		}
	}
	// PCRAM write energy is orders of magnitude above SRAM (Kang worst).
	if kang.WriteEnergyNJ < 100*sram.WriteEnergyNJ {
		t.Errorf("Kang_P write energy %g not ≫ SRAM %g", kang.WriteEnergyNJ, sram.WriteEnergyNJ)
	}
}

func TestFixedAreaZhangVsHayakawaWriteLatency(t *testing.T) {
	// Section V-C: Zhang_R has "nearly 15× worse write latency than
	// Hayakawa_R".
	fa := FixedAreaModels()
	zhang, _ := ModelByName(fa, "Zhang_R")
	hay, _ := ModelByName(fa, "Hayakawa_R")
	ratio := zhang.WriteLatencyNS() / hay.WriteLatencyNS()
	if ratio < 13 || ratio > 16 {
		t.Errorf("Zhang/Hayakawa write latency ratio = %.2f, want ≈15", ratio)
	}
}

func TestModelByNameErrors(t *testing.T) {
	if _, err := ModelByName(FixedCapacityModels(), "nope"); err == nil {
		t.Error("ModelByName(nope) succeeded")
	}
}

func TestNVMModelsExcludesSRAM(t *testing.T) {
	nvms := NVMModels(FixedCapacityModels())
	if len(nvms) != 10 {
		t.Fatalf("NVM models = %d, want 10", len(nvms))
	}
	for _, m := range nvms {
		if m.Class == nvm.SRAM {
			t.Errorf("%s is SRAM", m.Name)
		}
	}
}

func TestWorkloadsTableV(t *testing.T) {
	ws := Workloads()
	if len(ws) != 20 {
		t.Fatalf("workloads = %d, want 20", len(ws))
	}
	if len(SingleThreaded()) != 11 {
		t.Errorf("single-threaded = %d, want 11", len(SingleThreaded()))
	}
	if len(MultiThreaded()) != 9 {
		t.Errorf("multi-threaded = %d, want 9", len(MultiThreaded()))
	}
	ai := AIWorkloads()
	if len(ai) != 3 {
		t.Fatalf("AI workloads = %d, want 3", len(ai))
	}
	wantAI := map[string]bool{"deepsjeng": true, "leela": true, "exchange2": true}
	for _, w := range ai {
		if !wantAI[w.Name] {
			t.Errorf("unexpected AI workload %s", w.Name)
		}
	}
	// All workloads pass the paper's MPKI > 5 selection threshold.
	for _, w := range ws {
		if w.LLCMPKI <= 5 {
			t.Errorf("%s MPKI %g fails the paper's >5 selection rule", w.Name, w.LLCMPKI)
		}
	}
}

func TestCharacterizedWorkloadsMatchTableVI(t *testing.T) {
	cw := CharacterizedWorkloads()
	if len(cw) != 16 {
		t.Fatalf("characterized workloads = %d, want 16", len(cw))
	}
	features := PaperFeatures()
	if len(features) != 16 {
		t.Fatalf("paper features = %d entries, want 16", len(features))
	}
	excluded := map[string]bool{"gamess": true, "gobmk": true, "milc": true, "perlbench": true}
	for _, w := range cw {
		if excluded[w.Name] {
			t.Errorf("%s should be excluded from characterization", w.Name)
		}
		if _, ok := features[w.Name]; !ok {
			t.Errorf("no Table VI features for %s", w.Name)
		}
	}
}

func TestPaperFeatureSpotChecks(t *testing.T) {
	f := PaperFeatures()
	ex := f["exchange2"]
	// exchange2: largest totals, smallest uniques (Section VI).
	for name, other := range f {
		if name == "exchange2" {
			continue
		}
		if other.TotalReads >= ex.TotalReads {
			t.Errorf("%s total reads %d ≥ exchange2 %d", name, other.TotalReads, ex.TotalReads)
		}
		if other.UniqueWrites <= ex.UniqueWrites {
			t.Errorf("%s unique writes %d ≤ exchange2 %d", name, other.UniqueWrites, ex.UniqueWrites)
		}
	}
	// GemsFDTD: 90% footprints two orders of magnitude above the rest.
	gems := f["GemsFDTD"]
	for name, other := range f {
		if name == "GemsFDTD" {
			continue
		}
		if other.Footprint90Writes >= gems.Footprint90Writes {
			t.Errorf("%s 90%% write footprint %d ≥ GemsFDTD %d", name, other.Footprint90Writes, gems.Footprint90Writes)
		}
	}
}

func TestWorkloadByName(t *testing.T) {
	w, err := WorkloadByName("cg")
	if err != nil || w.Suite != "NPB3.3.1" || !w.MultiThreaded {
		t.Errorf("WorkloadByName(cg) = %+v, %v", w, err)
	}
	if _, err := WorkloadByName("quake"); err == nil {
		t.Error("WorkloadByName(quake) succeeded")
	}
}

func TestBestNVMsPresentInBothConfigs(t *testing.T) {
	for _, name := range BestNVMs {
		if _, err := ModelByName(FixedCapacityModels(), name); err != nil {
			t.Errorf("fixed-capacity: %v", err)
		}
		if _, err := ModelByName(FixedAreaModels(), name); err != nil {
			t.Errorf("fixed-area: %v", err)
		}
	}
}
