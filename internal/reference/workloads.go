package reference

import (
	"fmt"

	"nvmllc/internal/prism"
)

// Workload is one row of the paper's Table V.
type Workload struct {
	// Name is the benchmark name as used throughout the paper.
	Name string
	// Suite is the benchmark suite ("cpu2006", "PARSEC3.0", "NPB3.3.1",
	// "cpu2017").
	Suite string
	// LLCMPKI is the LLC misses per kilo-instruction the paper measured.
	LLCMPKI float64
	// MultiThreaded is true for the m.t. workloads (simulated on 4 cores).
	MultiThreaded bool
	// AI marks the cpu2017 statistical-inference workloads used for the
	// specialized-system correlation study.
	AI bool
	// PRISMCompatible is false for the four cpu2006 workloads the paper
	// excludes from characterization (gamess, gobmk, milc, perlbench).
	PRISMCompatible bool
	// Description is the Table V summary.
	Description string
}

// Workloads returns the paper's 20 benchmarks in Table V order.
func Workloads() []Workload {
	return []Workload{
		{"bzip2", "cpu2006", 142.69, false, false, true, "Compression/Decompression, s.t."},
		{"gamess", "cpu2006", 12.83, false, false, false, "Quantum computations, s.t."},
		{"GemsFDTD", "cpu2006", 12.56, false, false, true, "Maxwell solver 3D, s.t."},
		{"gobmk", "cpu2006", 38.08, false, false, false, "Plays Go and analyzes, s.t."},
		{"milc", "cpu2006", 16.46, false, false, false, "Lattice gauge theory, s.t., MIMD"},
		{"perlbench", "cpu2006", 7.57, false, false, false, "Perl interpreter, s.t."},
		{"tonto", "cpu2006", 12.39, false, false, true, "Quantum package, s.t."},
		{"x264", "PARSEC3.0", 17.81, false, false, true, "MPEG-4 encoding, s.t."},
		{"vips", "PARSEC3.0", 5.43, true, false, true, "Image transformation, m.t."},
		{"cg", "NPB3.3.1", 80.89, true, false, true, "Conjugate gradient, m.t."},
		{"ep", "NPB3.3.1", 9.31, true, false, true, "Embarrassingly parallel, m.t."},
		{"ft", "NPB3.3.1", 15.39, true, false, true, "Discrete 3D FFT, m.t."},
		{"is", "NPB3.3.1", 35.63, true, false, true, "Integer sort, m.t."},
		{"lu", "NPB3.3.1", 14.42, true, false, true, "LU Gauss-Seidel solver, m.t."},
		{"mg", "NPB3.3.1", 65.09, true, false, true, "Multigrid on meshes, m.t."},
		{"sp", "NPB3.3.1", 44.35, true, false, true, "Scalar penta-diagonal solver, m.t."},
		{"ua", "NPB3.3.1", 39.08, true, false, true, "Unstructured adaptive mesh, m.t."},
		{"deepsjeng", "cpu2017", 159.58, false, true, true, "AI: alpha-beta tree search, s.t."},
		{"leela", "cpu2017", 24.05, false, true, true, "AI: Monte Carlo tree search, s.t."},
		{"exchange2", "cpu2017", 13.50, false, true, true, "AI: recursive solution generator, s.t."},
	}
}

// WorkloadByName finds a Table V workload.
func WorkloadByName(name string) (Workload, error) {
	for _, w := range Workloads() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("reference: no workload named %q", name)
}

// SingleThreaded returns the s.t. workloads in table order.
func SingleThreaded() []Workload {
	return filterWorkloads(func(w Workload) bool { return !w.MultiThreaded })
}

// MultiThreaded returns the m.t. workloads in table order.
func MultiThreaded() []Workload {
	return filterWorkloads(func(w Workload) bool { return w.MultiThreaded })
}

// AIWorkloads returns the cpu2017 statistical-inference workloads.
func AIWorkloads() []Workload { return filterWorkloads(func(w Workload) bool { return w.AI }) }

// CharacterizedWorkloads returns the 16 workloads included in the paper's
// Table VI characterization (the PRISM-incompatible four are excluded).
func CharacterizedWorkloads() []Workload {
	return filterWorkloads(func(w Workload) bool { return w.PRISMCompatible })
}

func filterWorkloads(keep func(Workload) bool) []Workload {
	var out []Workload
	for _, w := range Workloads() {
		if keep(w) {
			out = append(out, w)
		}
	}
	return out
}

// PaperFeatures returns the paper's Table VI feature measurements, keyed by
// workload name. Entropies are in bits; footprints and totals are absolute
// counts (the table's 10⁶/10³/10⁹ scalings are applied).
func PaperFeatures() map[string]prism.Features {
	f := func(hrg, hrl, hwg, hwl, runiqM, wuniqM, ft90rK, ft90wK, rtotG, wtotG float64) prism.Features {
		return prism.Features{
			GlobalReadEntropy:  hrg,
			LocalReadEntropy:   hrl,
			GlobalWriteEntropy: hwg,
			LocalWriteEntropy:  hwl,
			UniqueReads:        uint64(runiqM * 1e6),
			UniqueWrites:       uint64(wuniqM * 1e6),
			Footprint90Reads:   uint64(ft90rK * 1e3),
			Footprint90Writes:  uint64(ft90wK * 1e3),
			TotalReads:         uint64(rtotG * 1e9),
			TotalWrites:        uint64(wtotG * 1e9),
		}
	}
	return map[string]prism.Features{
		"bzip2":     f(18.03, 10.23, 11.72, 5.90, 5.99, 5.88, 2505.38, 750.86, 4.30, 1.47),
		"GemsFDTD":  f(19.92, 13.62, 22.27, 14.99, 116.88, 143.63, 76576.59, 113183.50, 1.30, 0.70),
		"tonto":     f(10.97, 5.15, 10.25, 3.72, 0.30, 0.29, 5.59, 1.74, 1.10, 0.47),
		"leela":     f(10.13, 4.07, 8.95, 3.01, 2.26, 5.06, 1.59, 1.29, 6.01, 2.35),
		"exchange2": f(8.79, 3.52, 8.61, 3.47, 0.03, 0.02, 0.64, 0.58, 62.28, 42.89),
		"deepsjeng": f(11.31, 5.69, 11.86, 5.93, 58.89, 68.28, 4.79, 4.33, 9.36, 4.43),
		"vips":      f(15.17, 10.26, 17.79, 11.61, 12.02, 6.32, 1107.19, 1325.34, 1.91, 0.68),
		"x264":      f(16.14, 7.43, 11.84, 4.04, 11.40, 9.28, 1585.49, 3.56, 18.07, 2.84),
		"cg":        f(19.01, 11.71, 18.88, 11.96, 2.30, 2.36, 1015.43, 819.15, 0.73, 0.04),
		"ep":        f(8.00, 4.81, 8.05, 4.74, 0.563, 1.47, 0.84, 113.18, 1.25, 0.54),
		"ft":        f(16.47, 9.93, 17.07, 10.28, 2.73, 2.72, 342.64, 611.66, 0.28, 0.27),
		"is":        f(15.23, 8.96, 15.65, 8.69, 2.20, 2.19, 1228.86, 794.26, 0.12, 0.06),
		"lu":        f(9.57, 6.01, 16.02, 9.63, 0.844, 0.84, 289.46, 259.75, 17.84, 3.99),
		"mg":        f(17.97, 11.80, 16.93, 10.18, 7.20, 7.29, 4249.78, 4767.97, 0.76, 0.16),
		"sp":        f(18.69, 12.02, 18.21, 11.35, 1.14, 1.28, 556.75, 256.73, 9.23, 4.12),
		"ua":        f(13.95, 8.17, 11.23, 5.69, 1.32, 1.57, 362.45, 106.25, 9.97, 5.85),
	}
}
