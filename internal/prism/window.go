package prism

import (
	"fmt"

	"nvmllc/internal/trace"
)

// Time-windowed characterization: the paper's Table VI metrics are
// whole-trace aggregates; phase behavior (the working set growing and
// shrinking as an application moves between phases) is what makes a
// fixed-capacity LLC alternately comfortable and starved. WindowProfile
// slices a trace into fixed-size windows and reports per-window footprints
// and entropies, giving the working-set-over-time curve.

// WindowFeatures summarizes one window of a trace.
type WindowFeatures struct {
	// StartAccess is the index of the window's first access.
	StartAccess int
	// UniqueLines is the number of distinct 64B lines touched.
	UniqueLines uint64
	// GlobalEntropy is the Shannon entropy of the window's addresses.
	GlobalEntropy float64
	// WriteFrac is the store share of the window.
	WriteFrac float64
}

// WindowProfile computes per-window features over windowSize accesses
// (the final partial window is included if at least a quarter full).
func WindowProfile(t *trace.Trace, windowSize int) ([]WindowFeatures, error) {
	if windowSize <= 0 {
		return nil, fmt.Errorf("prism: window size %d must be positive", windowSize)
	}
	var out []WindowFeatures
	for start := 0; start < len(t.Accesses); start += windowSize {
		end := start + windowSize
		if end > len(t.Accesses) {
			end = len(t.Accesses)
		}
		if end-start < windowSize/4 && start > 0 {
			break
		}
		counts := make(map[uint64]uint64)
		lines := make(map[uint64]struct{})
		writes := 0
		for _, a := range t.Accesses[start:end] {
			if a.Kind == trace.Ifetch {
				continue
			}
			counts[a.Addr]++
			lines[a.Addr>>6] = struct{}{}
			if a.Kind == trace.Write {
				writes++
			}
		}
		n := end - start
		out = append(out, WindowFeatures{
			StartAccess:   start,
			UniqueLines:   uint64(len(lines)),
			GlobalEntropy: Entropy(counts),
			WriteFrac:     float64(writes) / float64(n),
		})
	}
	return out, nil
}

// WorkingSetCurve returns just the per-window unique-line counts — the
// classic working-set-over-time curve, in 64B lines.
func WorkingSetCurve(t *trace.Trace, windowSize int) ([]uint64, error) {
	ws, err := WindowProfile(t, windowSize)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, len(ws))
	for i, w := range ws {
		out[i] = w.UniqueLines
	}
	return out, nil
}

// PeakWorkingSetBytes returns the largest windowed working set in bytes,
// the number a capacity-planning designer compares against LLC sizes.
func PeakWorkingSetBytes(t *trace.Trace, windowSize int) (uint64, error) {
	curve, err := WorkingSetCurve(t, windowSize)
	if err != nil {
		return 0, err
	}
	var max uint64
	for _, v := range curve {
		if v > max {
			max = v
		}
	}
	return max * 64, nil
}
