package prism

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nvmllc/internal/trace"
)

func TestEntropyUniform(t *testing.T) {
	// N equally likely addresses have entropy log2(N).
	for _, n := range []int{1, 2, 4, 256, 1024} {
		counts := make(map[uint64]uint64)
		for i := 0; i < n; i++ {
			counts[uint64(i)*64] = 7
		}
		want := math.Log2(float64(n))
		if got := Entropy(counts); math.Abs(got-want) > 1e-9 {
			t.Errorf("Entropy(uniform %d) = %g, want %g", n, got, want)
		}
	}
}

func TestEntropyEmptyAndSingle(t *testing.T) {
	if got := Entropy(nil); got != 0 {
		t.Errorf("Entropy(nil) = %g, want 0", got)
	}
	if got := Entropy(map[uint64]uint64{42: 1000}); got != 0 {
		t.Errorf("Entropy(single) = %g, want 0", got)
	}
}

func TestEntropySkewedBelowUniform(t *testing.T) {
	uniform := map[uint64]uint64{1: 10, 2: 10, 3: 10, 4: 10}
	skewed := map[uint64]uint64{1: 37, 2: 1, 3: 1, 4: 1}
	if Entropy(skewed) >= Entropy(uniform) {
		t.Errorf("skewed entropy %g should be below uniform %g", Entropy(skewed), Entropy(uniform))
	}
}

func TestEntropyBoundsProperty(t *testing.T) {
	// 0 ≤ H ≤ log2(unique addresses) for any distribution.
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		unique := int(n%50) + 1
		counts := make(map[uint64]uint64)
		for i := 0; i < unique; i++ {
			counts[rng.Uint64()] = uint64(rng.Intn(1000)) + 1
		}
		h := Entropy(counts)
		return h >= 0 && h <= math.Log2(float64(len(counts)))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLocalEntropyAtMostGlobal(t *testing.T) {
	// Masking low bits merges bins, which can only reduce entropy.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		counts := make(map[uint64]uint64)
		for i := 0; i < 200; i++ {
			counts[rng.Uint64()%(1<<20)] = uint64(rng.Intn(50)) + 1
		}
		global := Entropy(counts)
		local := Entropy(maskCounts(counts, 10))
		return local <= global+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFootprintBasics(t *testing.T) {
	// One address holds 90 of 100 accesses: the 90% footprint is 1.
	counts := map[uint64]uint64{1: 90, 2: 5, 3: 5}
	if got := Footprint(counts, 0.9); got != 1 {
		t.Errorf("Footprint(hot) = %d, want 1", got)
	}
	// Uniform: 90% of addresses are needed.
	uniform := make(map[uint64]uint64)
	for i := 0; i < 100; i++ {
		uniform[uint64(i)] = 1
	}
	if got := Footprint(uniform, 0.9); got != 90 {
		t.Errorf("Footprint(uniform) = %d, want 90", got)
	}
}

func TestFootprintEdgeCases(t *testing.T) {
	if got := Footprint(nil, 0.9); got != 0 {
		t.Errorf("Footprint(nil) = %d", got)
	}
	counts := map[uint64]uint64{1: 3, 2: 3}
	if got := Footprint(counts, 0); got != 0 {
		t.Errorf("Footprint(frac=0) = %d, want 0", got)
	}
	if got := Footprint(counts, 5); got != 2 {
		t.Errorf("Footprint(frac>1) = %d, want all (2)", got)
	}
}

func TestFootprintMonotoneInFraction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		counts := make(map[uint64]uint64)
		for i := 0; i < 64; i++ {
			counts[uint64(i)] = uint64(rng.Intn(100)) + 1
		}
		return Footprint(counts, 0.5) <= Footprint(counts, 0.9) &&
			Footprint(counts, 0.9) <= Footprint(counts, 1.0) &&
			Footprint(counts, 1.0) <= uint64(len(counts))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCharacterizeSeparatesReadsAndWrites(t *testing.T) {
	tr := &trace.Trace{
		Name: "rw", Threads: 1, InstrCount: 100,
		Accesses: []trace.Access{
			{Addr: 0x100, Kind: trace.Read},
			{Addr: 0x200, Kind: trace.Read},
			{Addr: 0x100, Kind: trace.Read},
			{Addr: 0x900, Kind: trace.Write},
			{Addr: 0xA00, Kind: trace.Ifetch}, // ignored
		},
	}
	f := Characterize(tr, Config{})
	if f.TotalReads != 3 || f.TotalWrites != 1 {
		t.Errorf("totals = %d,%d; want 3,1", f.TotalReads, f.TotalWrites)
	}
	if f.UniqueReads != 2 || f.UniqueWrites != 1 {
		t.Errorf("uniques = %d,%d; want 2,1", f.UniqueReads, f.UniqueWrites)
	}
	if f.GlobalWriteEntropy != 0 {
		t.Errorf("single-write entropy = %g, want 0", f.GlobalWriteEntropy)
	}
}

func TestProfilerStreamingMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := &trace.Trace{Name: "p", Threads: 1}
	for i := 0; i < 5000; i++ {
		tr.Accesses = append(tr.Accesses, trace.Access{
			Addr: rng.Uint64() % (1 << 16),
			Kind: trace.Kind(rng.Intn(2)),
		})
	}
	tr.InstrCount = uint64(len(tr.Accesses))
	batch := Characterize(tr, Config{})
	p := NewProfiler(Config{})
	p.ObserveStream(trace.NewSliceStream(tr.Accesses))
	stream := p.Features()
	// Entropy sums floats in map order, so allow rounding-level slack.
	b, s := batch.Vector(), stream.Vector()
	for i := range b {
		if math.Abs(b[i]-s[i]) > 1e-9*math.Max(1, math.Abs(b[i])) {
			t.Errorf("feature %s: streaming %g != batch %g", FeatureNames[i], s[i], b[i])
		}
	}
}

func TestLocalSkipBitsConfig(t *testing.T) {
	// Two addresses within one 1KB region: local entropy 0, global > 0.
	tr := &trace.Trace{Name: "local", Threads: 1, InstrCount: 2,
		Accesses: []trace.Access{
			{Addr: 0x1000, Kind: trace.Read},
			{Addr: 0x1200, Kind: trace.Read},
		}}
	f := Characterize(tr, Config{})
	if f.GlobalReadEntropy != 1 {
		t.Errorf("global entropy = %g, want 1", f.GlobalReadEntropy)
	}
	if f.LocalReadEntropy != 0 {
		t.Errorf("local entropy (M=10) = %g, want 0", f.LocalReadEntropy)
	}
	// With M=4 the two addresses are distinct regions.
	f4 := Characterize(tr, Config{LocalSkipBits: 4})
	if f4.LocalReadEntropy != 1 {
		t.Errorf("local entropy (M=4) = %g, want 1", f4.LocalReadEntropy)
	}
}

func TestVectorMatchesFeatureNames(t *testing.T) {
	f := Features{
		GlobalReadEntropy: 1, LocalReadEntropy: 2,
		GlobalWriteEntropy: 3, LocalWriteEntropy: 4,
		UniqueReads: 5, UniqueWrites: 6,
		Footprint90Reads: 7, Footprint90Writes: 8,
		TotalReads: 9, TotalWrites: 10,
	}
	v := f.Vector()
	if len(v) != len(FeatureNames) {
		t.Fatalf("Vector len %d != FeatureNames len %d", len(v), len(FeatureNames))
	}
	for i, want := range []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		if v[i] != want {
			t.Errorf("Vector[%d] (%s) = %g, want %g", i, FeatureNames[i], v[i], want)
		}
	}
}

func TestFeaturesString(t *testing.T) {
	s := Features{TotalReads: 3}.String()
	if s == "" {
		t.Error("empty String()")
	}
}
