// Package prism computes architecture-agnostic workload features from
// memory access traces, reproducing the characterization the paper performs
// with the PRISM framework (Section IV-B, Table VI).
//
// For each trace it computes, separately for reads and writes:
//
//   - Global memory entropy: Shannon entropy (equation (9)) of the accessed
//     address distribution — a measure of temporal locality.
//   - Local memory entropy: the same entropy computed after skipping the M
//     lowest-order address bits (M = 10, reflecting page size) — a measure
//     of spatial locality over memory regions.
//   - Unique address footprint: the number of distinct addresses touched.
//   - 90% footprint: the number of hottest addresses that together account
//     for 90% of all accesses — an estimate of the working set.
//   - Total accesses.
package prism

import (
	"fmt"
	"math"
	"sort"

	"nvmllc/internal/trace"
)

// DefaultLocalSkipBits is the paper's M: the number of low-order address
// bits skipped for local entropy, chosen to reflect a 1KB page-like region.
const DefaultLocalSkipBits = 10

// Features is one row of the paper's Table VI.
type Features struct {
	// GlobalReadEntropy is H_rg: Shannon entropy of read addresses, bits.
	GlobalReadEntropy float64
	// LocalReadEntropy is H_rl: read entropy with the low M bits skipped.
	LocalReadEntropy float64
	// GlobalWriteEntropy is H_wg.
	GlobalWriteEntropy float64
	// LocalWriteEntropy is H_wl.
	LocalWriteEntropy float64
	// UniqueReads is r_uniq: distinct read addresses.
	UniqueReads uint64
	// UniqueWrites is w_uniq: distinct written addresses.
	UniqueWrites uint64
	// Footprint90Reads is 90%ft_r: hottest read addresses covering 90% of
	// reads.
	Footprint90Reads uint64
	// Footprint90Writes is 90%ft_w.
	Footprint90Writes uint64
	// TotalReads is r_total.
	TotalReads uint64
	// TotalWrites is w_total.
	TotalWrites uint64
}

// FeatureNames lists the Table VI column names, in table order, matching
// the order of Vector.
var FeatureNames = []string{
	"H_rg", "H_rl", "H_wg", "H_wl",
	"r_uniq", "w_uniq", "90%ft_r", "90%ft_w",
	"r_total", "w_total",
}

// Vector returns the features as a float slice in FeatureNames order, for
// use by the correlation framework.
func (f Features) Vector() []float64 {
	return []float64{
		f.GlobalReadEntropy, f.LocalReadEntropy,
		f.GlobalWriteEntropy, f.LocalWriteEntropy,
		float64(f.UniqueReads), float64(f.UniqueWrites),
		float64(f.Footprint90Reads), float64(f.Footprint90Writes),
		float64(f.TotalReads), float64(f.TotalWrites),
	}
}

// Config controls characterization.
type Config struct {
	// LocalSkipBits is M, the low-order bits dropped for local entropy.
	// Zero means DefaultLocalSkipBits.
	LocalSkipBits int
}

func (c Config) skipBits() int {
	if c.LocalSkipBits <= 0 {
		return DefaultLocalSkipBits
	}
	return c.LocalSkipBits
}

// Profiler accumulates per-address access counts incrementally, so traces
// can be characterized in a streaming fashion without being held in memory.
type Profiler struct {
	cfg    Config
	reads  map[uint64]uint64
	writes map[uint64]uint64
}

// NewProfiler returns an empty profiler.
func NewProfiler(cfg Config) *Profiler {
	return &Profiler{
		cfg:    cfg,
		reads:  make(map[uint64]uint64),
		writes: make(map[uint64]uint64),
	}
}

// Observe records one access. Instruction fetches are ignored, as PRISM
// profiles data references.
func (p *Profiler) Observe(a trace.Access) {
	switch a.Kind {
	case trace.Read:
		p.reads[a.Addr]++
	case trace.Write:
		p.writes[a.Addr]++
	}
}

// ObserveStream drains a stream into the profiler.
func (p *Profiler) ObserveStream(s trace.Stream) {
	for {
		a, ok := s.Next()
		if !ok {
			return
		}
		p.Observe(a)
	}
}

// Features computes the feature vector from everything observed so far.
func (p *Profiler) Features() Features {
	m := p.cfg.skipBits()
	return Features{
		GlobalReadEntropy:  Entropy(p.reads),
		LocalReadEntropy:   Entropy(maskCounts(p.reads, m)),
		GlobalWriteEntropy: Entropy(p.writes),
		LocalWriteEntropy:  Entropy(maskCounts(p.writes, m)),
		UniqueReads:        uint64(len(p.reads)),
		UniqueWrites:       uint64(len(p.writes)),
		Footprint90Reads:   Footprint(p.reads, 0.9),
		Footprint90Writes:  Footprint(p.writes, 0.9),
		TotalReads:         total(p.reads),
		TotalWrites:        total(p.writes),
	}
}

// Characterize computes the features of an in-memory trace.
func Characterize(t *trace.Trace, cfg Config) Features {
	p := NewProfiler(cfg)
	for _, a := range t.Accesses {
		p.Observe(a)
	}
	return p.Features()
}

// Entropy computes the Shannon entropy (equation (9)) in bits of the
// distribution given by per-address access counts:
// H = -Σ p(x_i)·log2(p(x_i)) with p(x_i) the access frequency of address i.
// An empty or single-address distribution has zero entropy.
func Entropy(counts map[uint64]uint64) float64 {
	n := total(counts)
	if n == 0 {
		return 0
	}
	var h float64
	fn := float64(n)
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / fn
		h -= p * math.Log2(p)
	}
	if h < 0 { // guard against -0 from rounding
		h = 0
	}
	return h
}

// Footprint returns the number of hottest addresses that together cover at
// least the given fraction of all accesses (the paper's 90% footprint with
// frac = 0.9).
func Footprint(counts map[uint64]uint64, frac float64) uint64 {
	if frac <= 0 {
		return 0
	}
	if frac > 1 {
		frac = 1
	}
	n := total(counts)
	if n == 0 {
		return 0
	}
	cs := make([]uint64, 0, len(counts))
	for _, c := range counts {
		cs = append(cs, c)
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i] > cs[j] })
	need := uint64(math.Ceil(frac * float64(n)))
	var cum, taken uint64
	for _, c := range cs {
		cum += c
		taken++
		if cum >= need {
			break
		}
	}
	return taken
}

// maskCounts re-bins counts with the low skip bits dropped.
func maskCounts(counts map[uint64]uint64, skipBits int) map[uint64]uint64 {
	out := make(map[uint64]uint64, len(counts)/4+1)
	for addr, c := range counts {
		out[addr>>uint(skipBits)] += c
	}
	return out
}

func total(counts map[uint64]uint64) uint64 {
	var n uint64
	for _, c := range counts {
		n += c
	}
	return n
}

// String renders the features as a compact single-line summary.
func (f Features) String() string {
	return fmt.Sprintf(
		"Hrg=%.2f Hrl=%.2f Hwg=%.2f Hwl=%.2f r_uniq=%d w_uniq=%d 90ft_r=%d 90ft_w=%d r_tot=%d w_tot=%d",
		f.GlobalReadEntropy, f.LocalReadEntropy, f.GlobalWriteEntropy, f.LocalWriteEntropy,
		f.UniqueReads, f.UniqueWrites, f.Footprint90Reads, f.Footprint90Writes,
		f.TotalReads, f.TotalWrites)
}
