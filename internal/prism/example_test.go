package prism_test

import (
	"fmt"

	"nvmllc/internal/prism"
	"nvmllc/internal/trace"
)

// ExampleCharacterize computes the paper's Table VI metrics for a tiny
// trace: two reads of one address and one write of another.
func ExampleCharacterize() {
	tr := &trace.Trace{
		Name: "demo", Threads: 1, InstrCount: 10,
		Accesses: []trace.Access{
			{Addr: 0x1000, Kind: trace.Read},
			{Addr: 0x1000, Kind: trace.Read},
			{Addr: 0x2000, Kind: trace.Write},
		},
	}
	f := prism.Characterize(tr, prism.Config{})
	fmt.Printf("reads=%d writes=%d unique reads=%d H_rg=%.1f\n",
		f.TotalReads, f.TotalWrites, f.UniqueReads, f.GlobalReadEntropy)
	// Output:
	// reads=2 writes=1 unique reads=1 H_rg=0.0
}

// ExampleEntropy shows equation (9) on a uniform distribution: four
// equally likely addresses carry log2(4) = 2 bits.
func ExampleEntropy() {
	counts := map[uint64]uint64{0: 5, 64: 5, 128: 5, 192: 5}
	fmt.Printf("%.1f bits\n", prism.Entropy(counts))
	// Output:
	// 2.0 bits
}
