package prism

import (
	"testing"

	"nvmllc/internal/trace"
)

// phaseTrace alternates a small phase and a large phase.
func phaseTrace() *trace.Trace {
	tr := &trace.Trace{Name: "phases", Threads: 1}
	add := func(line uint64, k trace.Kind) {
		tr.Accesses = append(tr.Accesses, trace.Access{Addr: line * 64, Kind: k})
	}
	// Phase 1: 1000 accesses over 10 lines, all reads.
	for i := 0; i < 1000; i++ {
		add(uint64(i%10), trace.Read)
	}
	// Phase 2: 1000 accesses over 800 lines, all writes.
	for i := 0; i < 1000; i++ {
		add(uint64(1000+i%800), trace.Write)
	}
	tr.InstrCount = uint64(len(tr.Accesses))
	return tr
}

func TestWindowProfilePhases(t *testing.T) {
	ws, err := WindowProfile(phaseTrace(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 {
		t.Fatalf("windows = %d, want 2", len(ws))
	}
	if ws[0].UniqueLines != 10 || ws[1].UniqueLines != 800 {
		t.Errorf("unique lines = %d, %d; want 10, 800", ws[0].UniqueLines, ws[1].UniqueLines)
	}
	if ws[0].WriteFrac != 0 || ws[1].WriteFrac != 1 {
		t.Errorf("write fracs = %g, %g; want 0, 1", ws[0].WriteFrac, ws[1].WriteFrac)
	}
	if ws[1].GlobalEntropy <= ws[0].GlobalEntropy {
		t.Errorf("phase-2 entropy %g not above phase-1 %g", ws[1].GlobalEntropy, ws[0].GlobalEntropy)
	}
	if ws[0].StartAccess != 0 || ws[1].StartAccess != 1000 {
		t.Errorf("window starts = %d, %d", ws[0].StartAccess, ws[1].StartAccess)
	}
}

func TestWorkingSetCurveAndPeak(t *testing.T) {
	tr := phaseTrace()
	curve, err := WorkingSetCurve(tr, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 2 || curve[1] != 800 {
		t.Errorf("curve = %v", curve)
	}
	peak, err := PeakWorkingSetBytes(tr, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if peak != 800*64 {
		t.Errorf("peak = %d bytes, want %d", peak, 800*64)
	}
}

func TestWindowProfileErrorsAndEdges(t *testing.T) {
	if _, err := WindowProfile(phaseTrace(), 0); err == nil {
		t.Error("zero window accepted")
	}
	// Ifetches are excluded from data-footprint windows.
	tr := &trace.Trace{Name: "if", Threads: 1, InstrCount: 100}
	for i := 0; i < 100; i++ {
		tr.Accesses = append(tr.Accesses, trace.Access{Addr: uint64(i) * 64, Kind: trace.Ifetch})
	}
	ws, err := WindowProfile(tr, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		if w.UniqueLines != 0 {
			t.Errorf("ifetch counted in data working set: %+v", w)
		}
	}
	// Tiny trailing window is dropped.
	tr2 := phaseTrace()
	ws2, err := WindowProfile(tr2, 1999) // second window would be 1 access
	if err != nil {
		t.Fatal(err)
	}
	if len(ws2) != 1 {
		t.Errorf("windows = %d, want 1 (trailing sliver dropped)", len(ws2))
	}
}
