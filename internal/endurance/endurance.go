// Package endurance estimates NVM-based LLC lifetime from simulated write
// wear, the study the paper's Section VII names as future work: "Future
// work will characterize the extent to which architecture-agnostic
// features ... will affect the lifetime of different NVMs."
//
// The model is the standard first-cell-failure estimate used by the
// wear-leveling literature the paper cites (WriteSmoothing [20],
// EqualWrites [39]): a cache dies when its most-written physical line
// reaches the technology's write endurance, so
//
//	lifetime = endurance / (writes to the hottest line per second).
//
// Two estimates are produced: raw (the hottest logical line keeps mapping
// to one physical line) and ideally wear-leveled (the hottest set's writes
// spread evenly across its ways — an upper bound for intra-set schemes
// like WriteSmoothing).
package endurance

import (
	"fmt"
	"math"

	"nvmllc/internal/nvm"
	"nvmllc/internal/system"
)

// WriteEndurance returns the per-cell write endurance for a technology
// class, from the paper's Table I and Section II discussion: PCRAM suffers
// stuck-at faults after 10⁷–10⁸ writes (we use the geometric middle),
// RRAM at 10¹⁰; STTRAM endurance is effectively unbounded for cache
// lifetimes (10¹⁵ is the figure commonly used), and SRAM does not wear.
func WriteEndurance(class nvm.Class) float64 {
	switch class {
	case nvm.PCRAM:
		return 3e7
	case nvm.RRAM:
		return 1e10
	case nvm.STTRAM:
		return 1e15
	default: // SRAM
		return math.Inf(1)
	}
}

// SecondsPerYear converts write rates to calendar lifetimes.
const SecondsPerYear = 365.25 * 24 * 3600

// Estimate is a lifetime projection for one (workload, LLC) run.
type Estimate struct {
	// Workload and LLC identify the run.
	Workload, LLC string
	// Class is the LLC's technology class.
	Class nvm.Class
	// HottestLineWritesPerSec is the raw wear rate of the most-written
	// line.
	HottestLineWritesPerSec float64
	// LeveledWritesPerSec is the wear rate under ideal intra-set leveling.
	LeveledWritesPerSec float64
	// RawYears and LeveledYears are the projected lifetimes; +Inf for
	// non-wearing technologies or idle caches.
	RawYears, LeveledYears float64
	// ImbalanceFactor is the lifetime a wear-leveling scheme could
	// recover (LeveledYears / RawYears, ≥ 1).
	ImbalanceFactor float64
}

// FromResult derives the lifetime estimate from a simulation run that was
// executed with system.Config.TrackWear set.
func FromResult(r *system.Result, class nvm.Class) (Estimate, error) {
	if r.Wear == nil {
		return Estimate{}, fmt.Errorf("endurance: result for %s/%s has no wear data (set Config.TrackWear)", r.Workload, r.LLCName)
	}
	secs := r.Seconds()
	if secs <= 0 {
		return Estimate{}, fmt.Errorf("endurance: result for %s/%s has no execution time", r.Workload, r.LLCName)
	}
	e := Estimate{
		Workload:                r.Workload,
		LLC:                     r.LLCName,
		Class:                   class,
		HottestLineWritesPerSec: float64(r.Wear.MaxLineWrites) / secs,
		LeveledWritesPerSec:     float64(r.Wear.LeveledMaxLineWrites()) / secs,
		ImbalanceFactor:         r.Wear.ImbalanceFactor(),
	}
	end := WriteEndurance(class)
	e.RawYears = years(end, e.HottestLineWritesPerSec)
	e.LeveledYears = years(end, e.LeveledWritesPerSec)
	return e, nil
}

// years converts an endurance budget and a wear rate to calendar years.
func years(enduranceWrites, writesPerSec float64) float64 {
	if writesPerSec <= 0 || math.IsInf(enduranceWrites, 1) {
		return math.Inf(1)
	}
	return enduranceWrites / writesPerSec / SecondsPerYear
}

// Viable reports whether the raw lifetime clears a deployment threshold
// (the 5-year server-lifetime bar common in the endurance literature).
func (e Estimate) Viable(yearsRequired float64) bool {
	return e.RawYears >= yearsRequired
}
