// Package endurance estimates NVM-based LLC lifetime from simulated write
// wear, the study the paper's Section VII names as future work: "Future
// work will characterize the extent to which architecture-agnostic
// features ... will affect the lifetime of different NVMs."
//
// The model is the standard first-cell-failure estimate used by the
// wear-leveling literature the paper cites (WriteSmoothing [20],
// EqualWrites [39]): a cache dies when its most-written physical line
// reaches the technology's write endurance, so
//
//	lifetime = endurance / (writes to the hottest line per second).
//
// Two estimates are produced: raw (the hottest logical line keeps mapping
// to one physical line) and ideally wear-leveled (the hottest set's writes
// spread evenly across its ways — an upper bound for intra-set schemes
// like WriteSmoothing).
//
// What happens past first failure — the cache serving on at degraded
// capacity with faulty blocks disabled — is simulated rather than
// estimated: see internal/fault and the sweep's degradation artifact.
// Both models share one configuration type: Options is internal/fault's
// Options, so the endurance budget that parameterizes the analytical
// projection is exactly the one the fault process draws thresholds from.
package endurance

import (
	"fmt"
	"math"

	"nvmllc/internal/fault"
	"nvmllc/internal/nvm"
	"nvmllc/internal/system"
)

// Options selects the endurance budget for an estimate: the technology
// class (Table I budget) with an optional explicit override. It is the
// fault model's configuration core, aliased so the analytical estimate
// and the fault process cannot drift apart.
type Options = fault.Options

// WriteEndurance returns the per-cell write endurance for a technology
// class, from the paper's Table I (see nvm.WriteEndurance, where the
// table now lives).
func WriteEndurance(class nvm.Class) float64 { return nvm.WriteEndurance(class) }

// SecondsPerYear converts write rates to calendar lifetimes.
const SecondsPerYear = 365.25 * 24 * 3600

// Projection is a lifetime projection for one (workload, LLC) run.
type Projection struct {
	// Workload and LLC identify the run.
	Workload, LLC string
	// Class is the LLC's technology class.
	Class nvm.Class
	// EnduranceWrites is the per-cell write budget the projection used.
	EnduranceWrites float64
	// HottestLineWritesPerSec is the raw wear rate of the most-written
	// line.
	HottestLineWritesPerSec float64
	// LeveledWritesPerSec is the wear rate under ideal intra-set leveling.
	LeveledWritesPerSec float64
	// RawYears and LeveledYears are the projected lifetimes; +Inf for
	// non-wearing technologies or idle caches.
	RawYears, LeveledYears float64
	// ImbalanceFactor is the lifetime a wear-leveling scheme could
	// recover (LeveledYears / RawYears, ≥ 1).
	ImbalanceFactor float64
}

// Estimate derives the lifetime projection from a simulation run that was
// executed with system.Config.TrackWear set, under the endurance budget
// the options resolve to.
func Estimate(r *system.Result, opts Options) (Projection, error) {
	if r.Wear == nil {
		return Projection{}, fmt.Errorf("endurance: result for %s/%s has no wear data (set Config.TrackWear)", r.Workload, r.LLCName)
	}
	secs := r.Seconds()
	if secs <= 0 {
		return Projection{}, fmt.Errorf("endurance: result for %s/%s has no execution time", r.Workload, r.LLCName)
	}
	e := Projection{
		Workload:                r.Workload,
		LLC:                     r.LLCName,
		Class:                   opts.Class,
		EnduranceWrites:         opts.Endurance(),
		HottestLineWritesPerSec: float64(r.Wear.MaxLineWrites) / secs,
		LeveledWritesPerSec:     float64(r.Wear.LeveledMaxLineWrites()) / secs,
		ImbalanceFactor:         r.Wear.ImbalanceFactor(),
	}
	e.RawYears = years(e.EnduranceWrites, e.HottestLineWritesPerSec)
	e.LeveledYears = years(e.EnduranceWrites, e.LeveledWritesPerSec)
	return e, nil
}

// FromResult is Estimate with only a class.
//
// Deprecated: use Estimate with an Options struct; FromResult is kept
// for callers of the positional-parameter API.
func FromResult(r *system.Result, class nvm.Class) (Projection, error) {
	return Estimate(r, Options{Class: class})
}

// years converts an endurance budget and a wear rate to calendar years.
func years(enduranceWrites, writesPerSec float64) float64 {
	if writesPerSec <= 0 || math.IsInf(enduranceWrites, 1) {
		return math.Inf(1)
	}
	return enduranceWrites / writesPerSec / SecondsPerYear
}

// Viable reports whether the raw lifetime clears a deployment threshold
// (the 5-year server-lifetime bar common in the endurance literature).
func (e Projection) Viable(yearsRequired float64) bool {
	return e.RawYears >= yearsRequired
}
