package endurance

import (
	"math"
	"testing"

	"nvmllc/internal/nvm"
	"nvmllc/internal/system"
)

func TestWriteEnduranceByClass(t *testing.T) {
	// Table I ordering: PCRAM ≪ RRAM ≪ STTRAM ≪ SRAM (no wear).
	p, r, s := WriteEndurance(nvm.PCRAM), WriteEndurance(nvm.RRAM), WriteEndurance(nvm.STTRAM)
	if !(p < r && r < s) {
		t.Errorf("endurance ordering broken: %g, %g, %g", p, r, s)
	}
	if p < 1e7 || p > 1e8 {
		t.Errorf("PCRAM endurance %g outside the paper's 10^7-10^8", p)
	}
	if r != 1e10 {
		t.Errorf("RRAM endurance = %g, want 1e10", r)
	}
	if !math.IsInf(WriteEndurance(nvm.SRAM), 1) {
		t.Error("SRAM should not wear")
	}
}

func wearResult(maxLine, maxSet uint64, secs float64) *system.Result {
	return &system.Result{
		Workload: "w", LLCName: "Kang_P",
		TimeNS: secs * 1e9,
		Wear: &system.WearStats{
			TotalWrites:   maxSet * 2,
			LinesTouched:  100,
			MaxLineWrites: maxLine,
			MaxSetWrites:  maxSet,
			Ways:          16,
			Sets:          2048,
		},
	}
}

func TestFromResult(t *testing.T) {
	// 3000 writes to the hottest line in 1 ms = 3e6 writes/s.
	// PCRAM endurance 3e7 → dies in 10 seconds raw.
	r := wearResult(3000, 4800, 1e-3)
	e, err := FromResult(r, nvm.PCRAM)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.HottestLineWritesPerSec-3e6) > 1 {
		t.Errorf("raw rate = %g, want 3e6", e.HottestLineWritesPerSec)
	}
	wantYears := 3e7 / 3e6 / SecondsPerYear
	if math.Abs(e.RawYears-wantYears)/wantYears > 1e-9 {
		t.Errorf("raw years = %g, want %g", e.RawYears, wantYears)
	}
	// Leveled: 4800/16 = 300 writes → 10× the lifetime.
	if math.Abs(e.LeveledYears/e.RawYears-10) > 1e-9 {
		t.Errorf("leveling gain = %g, want 10", e.LeveledYears/e.RawYears)
	}
	if math.Abs(e.ImbalanceFactor-10) > 1e-9 {
		t.Errorf("imbalance = %g, want 10", e.ImbalanceFactor)
	}
	if e.Viable(5) {
		t.Error("a 10-second lifetime should not be viable")
	}
}

func TestFromResultSTTRAMOutlivesPCRAM(t *testing.T) {
	r := wearResult(1000, 1600, 1e-3)
	pc, err := FromResult(r, nvm.PCRAM)
	if err != nil {
		t.Fatal(err)
	}
	stt, err := FromResult(r, nvm.STTRAM)
	if err != nil {
		t.Fatal(err)
	}
	if stt.RawYears <= pc.RawYears {
		t.Errorf("STTRAM lifetime %g not above PCRAM %g", stt.RawYears, pc.RawYears)
	}
	sram, err := FromResult(r, nvm.SRAM)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(sram.RawYears, 1) {
		t.Errorf("SRAM lifetime = %g, want +Inf", sram.RawYears)
	}
	if !sram.Viable(100) {
		t.Error("SRAM should be viable forever")
	}
}

func TestFromResultErrors(t *testing.T) {
	if _, err := FromResult(&system.Result{TimeNS: 1}, nvm.PCRAM); err == nil {
		t.Error("missing wear accepted")
	}
	r := wearResult(1, 1, 0)
	if _, err := FromResult(r, nvm.PCRAM); err == nil {
		t.Error("zero-time result accepted")
	}
}

func TestIdleCacheLivesForever(t *testing.T) {
	r := wearResult(0, 0, 1e-3)
	e, err := FromResult(r, nvm.RRAM)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(e.RawYears, 1) {
		t.Errorf("idle lifetime = %g, want +Inf", e.RawYears)
	}
}
