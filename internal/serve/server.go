package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"nvmllc/internal/engine"
	"nvmllc/internal/sweep"
	"nvmllc/internal/system"
	"nvmllc/internal/telemetry"
	"nvmllc/internal/workload"
)

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// Terminal reports whether the state is final.
func (s Status) Terminal() bool { return s == StatusDone || s == StatusFailed }

// Config shapes a Server.
type Config struct {
	// Engine executes the jobs; all submissions share it, so identical
	// concurrent design points coalesce on its cache. Required.
	Engine *engine.Engine
	// Registry receives the serving metrics (queue depth gauge,
	// admission/rejection/outcome counters, end-to-end latency
	// histogram). Optional; nil disables instrumentation.
	Registry *telemetry.Registry
	// QueueDepth bounds the number of admitted-but-unstarted jobs; a
	// full queue rejects submissions with HTTP 429 (default 64).
	QueueDepth int
	// Workers is the number of job executors (default Engine.Workers()).
	Workers int
	// JobTimeout caps each job's execution unless the spec carries its
	// own timeout_ms; zero means no default cap.
	JobTimeout time.Duration
	// DefaultAccesses is the trace length for specs that omit accesses
	// (default 100_000).
	DefaultAccesses int
	// MaxBatch bounds the jobs in one batch submission (default 256).
	MaxBatch int
	// MaxJobs bounds the retained job records; once exceeded, the oldest
	// finished jobs are evicted so a long-lived daemon's memory stays
	// bounded (default 4096).
	MaxJobs int
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = c.Engine.Workers()
	}
	if c.DefaultAccesses <= 0 {
		c.DefaultAccesses = 100_000
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	return c
}

// job is one tracked submission.
type job struct {
	id        string
	spec      JobSpec
	kind      string
	engineJob engine.Job // compiled sim job (zero for artifacts)
	key       string     // engine cache key ("" when uncacheable/artifact)
	submitted time.Time

	mu     sync.Mutex
	status Status
	errMsg string
	result *system.Result // sim outcome
	text   string         // artifact outcome (rendered)
	wall   time.Duration  // execution wall time
}

func (j *job) set(status Status, res *system.Result, text string, err error, wall time.Duration) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.status = status
	j.result = res
	j.text = text
	j.wall = wall
	if err != nil {
		j.errMsg = err.Error()
	}
}

// view is the poll-endpoint snapshot of a job.
type view struct {
	ID       string `json:"id"`
	Status   Status `json:"status"`
	Kind     string `json:"kind"`
	Workload string `json:"workload,omitempty"`
	LLC      string `json:"llc,omitempty"`
	Artifact string `json:"artifact,omitempty"`
	Key      string `json:"key,omitempty"`
	Error    string `json:"error,omitempty"`
	WallMS   int64  `json:"wall_ms,omitempty"`
}

func (j *job) view() view {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := view{
		ID:       j.id,
		Status:   j.status,
		Kind:     j.kind,
		Workload: j.spec.Workload,
		Artifact: j.spec.Artifact,
		Key:      j.key,
		Error:    j.errMsg,
		WallMS:   j.wall.Milliseconds(),
	}
	if j.kind == "sim" {
		v.LLC = j.engineJob.LLCName()
	}
	return v
}

// Server is the serving layer: a bounded queue in front of a worker
// pool, answering asynchronously over HTTP. Construct with New, mount
// Handler, and call Shutdown to drain.
type Server struct {
	cfg Config
	eng *engine.Engine
	reg *telemetry.Registry

	// runCtx is the lifecycle context every job executes under; a
	// graceful Shutdown leaves it alive (jobs drain to completion), a
	// drain-deadline expiry cancels it so in-flight simulations abort in
	// bounded time (the hot loop polls it).
	runCtx    context.Context
	cancelRun context.CancelFunc

	queue chan *job
	wg    sync.WaitGroup

	mu       sync.Mutex
	draining bool
	jobs     map[string]*job
	order    []string // submission order, for bounded eviction

	nextID atomic.Uint64

	// testHook, when set, runs at the start of every job execution,
	// inside the panic-isolation boundary. Tests use it to block workers
	// (queue-overflow scenarios) or to inject panics.
	testHook func(*job)
}

// New builds the server and starts its worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("serve: Config.Engine is required")
	}
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		eng:       cfg.Engine,
		reg:       cfg.Registry,
		runCtx:    ctx,
		cancelRun: cancel,
		queue:     make(chan *job, cfg.QueueDepth),
		jobs:      make(map[string]*job),
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Shutdown drains the server: no new submissions are admitted (they get
// 503), queued and in-flight jobs run to completion, and the method
// returns when the pool is idle. If ctx expires first, the lifecycle
// context is cancelled — in-flight simulations abort promptly via
// context propagation into the hot loop — and ctx's error is returned
// after the workers exit.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		// Safe: submissions send on the queue only while holding s.mu
		// and only when !draining, so nobody can race this close.
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancelRun()
		<-done
		return ctx.Err()
	}
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// QueueDepth is the current number of admitted-but-unstarted jobs.
func (s *Server) QueueDepth() int { return len(s.queue) }

// submitErr carries an HTTP status with an admission failure.
type submitErr struct {
	code int
	msg  string
}

func (e *submitErr) Error() string { return e.msg }

// submit validates, compiles and enqueues one spec.
func (s *Server) submit(spec JobSpec) (*job, *submitErr) {
	jb := &job{
		spec:      spec,
		kind:      spec.kind(),
		submitted: time.Now(),
		status:    StatusQueued,
	}
	switch jb.kind {
	case "sim":
		ej, err := buildSimJob(spec, s.cfg.DefaultAccesses)
		if err != nil {
			s.count("invalid")
			return nil, &submitErr{http.StatusBadRequest, err.Error()}
		}
		jb.engineJob = ej
		jb.key, _ = engine.Key(ej)
	case "artifact":
		if err := validateArtifact(spec.Artifact); err != nil {
			s.count("invalid")
			return nil, &submitErr{http.StatusBadRequest, err.Error()}
		}
	default:
		s.count("invalid")
		return nil, &submitErr{http.StatusBadRequest, fmt.Sprintf("unknown job type %q (want sim or artifact)", spec.Type)}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.count("rejected_draining")
		return nil, &submitErr{http.StatusServiceUnavailable, "server is draining"}
	}
	jb.id = fmt.Sprintf("j%08d", s.nextID.Add(1))
	select {
	case s.queue <- jb:
		s.jobs[jb.id] = jb
		s.order = append(s.order, jb.id)
		s.evictLocked()
		s.mu.Unlock()
		s.count("admitted")
		s.reg.Gauge("serve_queue_depth").Set(float64(len(s.queue)))
		return jb, nil
	default:
		s.mu.Unlock()
		// Backpressure: a bounded queue plus 429 keeps an overloaded
		// daemon serving its in-flight work instead of growing without
		// bound.
		s.count("rejected_overflow")
		return nil, &submitErr{http.StatusTooManyRequests, "job queue full; retry later"}
	}
}

// evictLocked drops the oldest finished jobs above the retention bound.
// Queued/running jobs are never evicted. Called with s.mu held.
func (s *Server) evictLocked() {
	if len(s.jobs) <= s.cfg.MaxJobs {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		jb := s.jobs[id]
		if jb == nil {
			continue
		}
		jb.mu.Lock()
		terminal := jb.status.Terminal()
		jb.mu.Unlock()
		if terminal && len(s.jobs) > s.cfg.MaxJobs {
			delete(s.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// worker executes queued jobs until the queue is closed and drained.
func (s *Server) worker() {
	defer s.wg.Done()
	for jb := range s.queue {
		s.reg.Gauge("serve_queue_depth").Set(float64(len(s.queue)))
		s.execute(jb)
	}
}

// execute runs one job under the lifecycle context plus its timeout,
// with panic isolation: a panicking job marks itself failed and the
// worker keeps serving.
func (s *Server) execute(jb *job) {
	jb.mu.Lock()
	jb.status = StatusRunning
	jb.mu.Unlock()

	ctx := s.runCtx
	if d := jb.spec.timeout(s.cfg.JobTimeout); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	start := time.Now()
	var res *system.Result
	var text string
	var err error
	func() {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("job panicked: %v", p)
				s.count("panic")
			}
		}()
		if s.testHook != nil {
			s.testHook(jb)
		}
		switch jb.kind {
		case "sim":
			res, err = s.eng.Run(ctx, jb.engineJob)
		case "artifact":
			text, err = s.runArtifact(ctx, jb.spec)
		}
	}()
	wall := time.Since(start)
	// End-to-end latency: admission to completion, queueing included.
	s.reg.Histogram("serve_job_latency_ns").Observe(float64(time.Since(jb.submitted).Nanoseconds()))
	if err != nil {
		s.count("failed")
		jb.set(StatusFailed, nil, "", err, wall)
		return
	}
	s.count("done")
	jb.set(StatusDone, res, text, nil, wall)
}

// runArtifact executes a sweep-registry artifact on the shared engine
// and renders it to text.
func (s *Server) runArtifact(ctx context.Context, spec JobSpec) (string, error) {
	accesses := spec.Accesses
	if accesses <= 0 {
		accesses = s.cfg.DefaultAccesses
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	res, err := sweep.Run(ctx, spec.Artifact, sweep.Config{
		Opts:            workload.Options{Accesses: accesses, Seed: seed},
		WriteContention: spec.Contention,
		Engine:          s.eng,
		Telemetry:       s.reg,
	})
	if err != nil {
		return "", err
	}
	var buf bytes.Buffer
	for i, r := range res.Renderers {
		if i > 0 {
			fmt.Fprintln(&buf)
		}
		if err := r.Render(&buf); err != nil {
			return "", err
		}
	}
	return buf.String(), nil
}

// count increments the serve_jobs_total outcome counter.
func (s *Server) count(outcome string) {
	s.reg.Counter("serve_jobs_total", "outcome", outcome).Inc()
}

// lookup finds a job by id.
func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Handler returns the service API:
//
//	GET  /healthz            liveness ("ok", or "draining" with 503)
//	POST /v1/jobs            submit one JobSpec  → 202 {id,...}
//	POST /v1/jobs/batch      submit {"jobs":[...]} → 202 per-item results
//	GET  /v1/jobs/{id}       poll job status
//	GET  /v1/jobs/{id}/result  full result (409 until terminal)
//	GET  /v1/stats           engine + queue statistics
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /v1/jobs/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// decodeSpec reads one JobSpec, rejecting unknown fields so typos in a
// curl invocation fail loudly instead of simulating the default point.
func decodeSpec(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := decodeSpec(r, &spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{fmt.Sprintf("bad job spec: %v", err)})
		return
	}
	jb, serr := s.submit(spec)
	if serr != nil {
		writeJSON(w, serr.code, errorBody{serr.msg})
		return
	}
	writeJSON(w, http.StatusAccepted, jb.view())
}

// batchRequest is the batch submission wire form.
type batchRequest struct {
	Jobs []JobSpec `json:"jobs"`
}

// batchItem is one per-spec outcome: either an admitted job view or the
// admission error (with its HTTP code), positionally aligned with the
// request.
type batchItem struct {
	ID     string `json:"id,omitempty"`
	Status Status `json:"status,omitempty"`
	Key    string `json:"key,omitempty"`
	Error  string `json:"error,omitempty"`
	Code   int    `json:"code,omitempty"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := decodeSpec(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{fmt.Sprintf("bad batch: %v", err)})
		return
	}
	if len(req.Jobs) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{"batch has no jobs"})
		return
	}
	if len(req.Jobs) > s.cfg.MaxBatch {
		writeJSON(w, http.StatusBadRequest, errorBody{fmt.Sprintf("batch of %d exceeds limit %d", len(req.Jobs), s.cfg.MaxBatch)})
		return
	}
	items := make([]batchItem, len(req.Jobs))
	admitted := 0
	worst := 0
	for i, spec := range req.Jobs {
		jb, serr := s.submit(spec)
		if serr != nil {
			items[i] = batchItem{Error: serr.msg, Code: serr.code}
			if serr.code > worst {
				worst = serr.code
			}
			continue
		}
		admitted++
		items[i] = batchItem{ID: jb.id, Status: StatusQueued, Key: jb.key}
	}
	code := http.StatusAccepted
	if admitted == 0 {
		// Nothing got in: surface the strongest failure (429 overflow
		// dominates 400 spec errors) so clients back off correctly.
		code = worst
	}
	writeJSON(w, code, map[string]any{"jobs": items, "admitted": admitted})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	jb := s.lookup(r.PathValue("id"))
	if jb == nil {
		writeJSON(w, http.StatusNotFound, errorBody{"unknown job id"})
		return
	}
	writeJSON(w, http.StatusOK, jb.view())
}

// resultBody is the terminal-state payload: the full simulation result
// for sim jobs, rendered text for artifacts.
type resultBody struct {
	view
	Result *system.Result `json:"result,omitempty"`
	Text   string         `json:"text,omitempty"`
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	jb := s.lookup(r.PathValue("id"))
	if jb == nil {
		writeJSON(w, http.StatusNotFound, errorBody{"unknown job id"})
		return
	}
	v := jb.view()
	if !v.Status.Terminal() {
		writeJSON(w, http.StatusConflict, v)
		return
	}
	jb.mu.Lock()
	body := resultBody{view: v, Result: jb.result, Text: jb.text}
	jb.mu.Unlock()
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	tracked := len(s.jobs)
	draining := s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"engine":      s.eng.Stats(),
		"queue_depth": s.QueueDepth(),
		"queue_cap":   s.cfg.QueueDepth,
		"workers":     s.cfg.Workers,
		"jobs":        tracked,
		"draining":    draining,
	})
}
