package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"nvmllc/internal/engine"
	"nvmllc/internal/telemetry"
)

// newTestServer builds a server plus an httptest front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Engine == nil {
		cfg.Engine = engine.New()
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.New()
	}
	if cfg.DefaultAccesses == 0 {
		cfg.DefaultAccesses = 20000
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

// postJSON posts v and decodes the response into out (when non-nil).
func postJSON(t *testing.T, url string, v any, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp.StatusCode
}

// getJSON fetches url into out (when non-nil).
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp.StatusCode
}

// waitTerminal polls a job until it reaches a terminal state.
func waitTerminal(t *testing.T, base, id string) view {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var v view
		if code := getJSON(t, base+"/v1/jobs/"+id, &v); code != http.StatusOK {
			t.Fatalf("poll %s: HTTP %d", id, code)
		}
		if v.Status.Terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, v.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// simSpec is a small deterministic design point; the seed distinguishes
// design points.
func simSpec(seed int64) JobSpec {
	return JobSpec{Workload: "bzip2", LLC: "SRAM", Accesses: 20000, Seed: seed}
}

// TestSubmitPollResult is the basic happy path: submit, poll to done,
// fetch the full result.
func TestSubmitPollResult(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var v view
	if code := postJSON(t, ts.URL+"/v1/jobs", simSpec(1), &v); code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	if v.ID == "" || v.Key == "" {
		t.Fatalf("submission view incomplete: %+v", v)
	}
	done := waitTerminal(t, ts.URL, v.ID)
	if done.Status != StatusDone {
		t.Fatalf("job ended %s (%s)", done.Status, done.Error)
	}
	var res resultBody
	if code := getJSON(t, ts.URL+"/v1/jobs/"+v.ID+"/result", &res); code != http.StatusOK {
		t.Fatalf("result: HTTP %d", code)
	}
	if res.Result == nil || res.Result.Instructions == 0 {
		t.Error("result endpoint returned no simulation outcome")
	}
}

// TestConcurrentSubmissionsCoalesce is the headline dedup behavior: 64
// concurrent submissions spanning 8 distinct design points trigger at
// most 8 simulations — identical in-flight requests share one run via
// the engine's singleflight cache, the rest are cache hits.
func TestConcurrentSubmissionsCoalesce(t *testing.T) {
	eng := engine.New()
	s, ts := newTestServer(t, Config{Engine: eng, QueueDepth: 128})

	const distinct = 8
	const total = 64
	ids := make([]string, total)
	var wg sync.WaitGroup
	errs := make([]error, total)
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(simSpec(int64(i%distinct + 1)))
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			var v view
			if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
				errs[i] = err
				return
			}
			if resp.StatusCode != http.StatusAccepted {
				errs[i] = fmt.Errorf("HTTP %d: %s", resp.StatusCode, v.Error)
				return
			}
			ids[i] = v.ID
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submission %d: %v", i, err)
		}
	}
	for _, id := range ids {
		if v := waitTerminal(t, ts.URL, id); v.Status != StatusDone {
			t.Fatalf("job %s ended %s (%s)", id, v.Status, v.Error)
		}
	}
	st := eng.Stats()
	if st.Simulated > distinct {
		t.Errorf("%d simulations for %d distinct design points (want ≤ %d; coalescing broken)",
			st.Simulated, distinct, distinct)
	}
	if st.Jobs() != total {
		t.Errorf("engine answered %d jobs, want %d (one per submission)", st.Jobs(), total)
	}
	_ = s
}

// TestQueueOverflowBackpressure fills the pipeline — one blocked worker,
// a full queue — and requires the next submission to bounce with 429
// while the in-flight and queued jobs complete unharmed after release.
func TestQueueOverflowBackpressure(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 8)
	eng := engine.New()
	reg := telemetry.New()
	s, err := New(Config{Engine: eng, Registry: reg, Workers: 1, QueueDepth: 2, DefaultAccesses: 20000})
	if err != nil {
		t.Fatal(err)
	}
	s.testHook = func(jb *job) {
		started <- jb.id
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})

	// One running (held by the hook) + two queued = pipeline full.
	var admitted []string
	for i := 0; i < 3; i++ {
		var v view
		if code := postJSON(t, ts.URL+"/v1/jobs", simSpec(int64(i+1)), &v); code != http.StatusAccepted {
			t.Fatalf("submission %d: HTTP %d", i, code)
		}
		admitted = append(admitted, v.ID)
		if i == 0 {
			<-started // ensure the worker picked it up, freeing a queue slot ambiguity
		}
	}
	var e errorBody
	if code := postJSON(t, ts.URL+"/v1/jobs", simSpec(99), &e); code != http.StatusTooManyRequests {
		t.Fatalf("overflow submission: HTTP %d, want 429", code)
	}
	if !strings.Contains(e.Error, "queue full") {
		t.Errorf("overflow error = %q", e.Error)
	}
	if got := reg.Counter("serve_jobs_total", "outcome", "rejected_overflow").Value(); got != 1 {
		t.Errorf("rejected_overflow counter = %d, want 1", got)
	}

	close(release)
	for _, id := range admitted {
		if v := waitTerminal(t, ts.URL, id); v.Status != StatusDone {
			t.Errorf("admitted job %s ended %s (%s) — overflow must not hurt in-flight work", id, v.Status, v.Error)
		}
	}
}

// corruptCacheEntry flips a payload byte in one on-disk cache file so
// its checksum no longer matches.
func corruptCacheEntry(t *testing.T, dir string) {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.llcres"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no cache entries to corrupt (err=%v)", err)
	}
	raw, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0xFF
	if err := os.WriteFile(matches[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestWarmRestartServesFromDisk: a second daemon generation sharing only
// the on-disk cache answers every previously computed design point with
// zero re-simulations; a corrupted cache file degrades to exactly one
// re-simulation, not an error.
func TestWarmRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	specs := []JobSpec{simSpec(1), simSpec(2), simSpec(3), simSpec(4)}

	runGeneration := func(wantSimulated uint64) {
		t.Helper()
		store, err := engine.OpenDiskCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		eng := engine.New(engine.WithStore(store))
		_, ts := newTestServer(t, Config{Engine: eng})
		var resp struct {
			Jobs []batchItem `json:"jobs"`
		}
		if code := postJSON(t, ts.URL+"/v1/jobs/batch", batchRequest{Jobs: specs}, &resp); code != http.StatusAccepted {
			t.Fatalf("batch: HTTP %d", code)
		}
		for _, item := range resp.Jobs {
			if item.ID == "" {
				t.Fatalf("batch item rejected: %+v", item)
			}
			if v := waitTerminal(t, ts.URL, item.ID); v.Status != StatusDone {
				t.Fatalf("job %s ended %s (%s)", item.ID, v.Status, v.Error)
			}
		}
		if st := eng.Stats(); st.Simulated != wantSimulated {
			t.Fatalf("generation simulated %d, want %d (stats %+v)", st.Simulated, wantSimulated, st)
		}
	}

	runGeneration(uint64(len(specs))) // cold: everything simulates
	runGeneration(0)                  // warm restart: all served from disk

	corruptCacheEntry(t, dir)
	runGeneration(1) // corruption degrades to one re-simulation
}

// TestGracefulShutdownDrains: jobs queued at Shutdown still complete,
// and submissions during the drain get 503.
func TestGracefulShutdownDrains(t *testing.T) {
	release := make(chan struct{})
	eng := engine.New()
	s, err := New(Config{Engine: eng, Workers: 1, QueueDepth: 8, DefaultAccesses: 20000})
	if err != nil {
		t.Fatal(err)
	}
	var hookOnce sync.Once
	s.testHook = func(*job) {
		// Hold only the first job so the rest are still queued when
		// Shutdown begins.
		hookOnce.Do(func() { <-release })
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var ids []string
	for i := 0; i < 4; i++ {
		var v view
		if code := postJSON(t, ts.URL+"/v1/jobs", simSpec(int64(i+1)), &v); code != http.StatusAccepted {
			t.Fatalf("submission %d: HTTP %d", i, code)
		}
		ids = append(ids, v.ID)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// The drain must refuse new work.
	deadline := time.Now().Add(5 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	if code := postJSON(t, ts.URL+"/v1/jobs", simSpec(50), nil); code != http.StatusServiceUnavailable {
		t.Fatalf("submission during drain: HTTP %d, want 503", code)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain: HTTP %d, want 503", code)
	}

	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for _, id := range ids {
		v := s.lookup(id).view()
		if v.Status != StatusDone {
			t.Errorf("job %s ended %s (%s); graceful shutdown must drain queued work", id, v.Status, v.Error)
		}
	}
}

// TestPanicIsolation: a panicking job fails alone; the worker survives
// and keeps serving subsequent jobs.
func TestPanicIsolation(t *testing.T) {
	eng := engine.New()
	reg := telemetry.New()
	s, err := New(Config{Engine: eng, Registry: reg, Workers: 1, QueueDepth: 8, DefaultAccesses: 20000})
	if err != nil {
		t.Fatal(err)
	}
	s.testHook = func(jb *job) {
		if jb.spec.Seed == 666 {
			panic("injected test panic")
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})

	var bad, good view
	if code := postJSON(t, ts.URL+"/v1/jobs", simSpec(666), &bad); code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/jobs", simSpec(1), &good); code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	if v := waitTerminal(t, ts.URL, bad.ID); v.Status != StatusFailed || !strings.Contains(v.Error, "panicked") {
		t.Errorf("panicking job: %+v, want failed with panic error", v)
	}
	if v := waitTerminal(t, ts.URL, good.ID); v.Status != StatusDone {
		t.Errorf("job after the panic ended %s (%s); worker must survive", v.Status, v.Error)
	}
	if got := reg.Counter("serve_jobs_total", "outcome", "panic").Value(); got != 1 {
		t.Errorf("panic counter = %d, want 1", got)
	}
}

// TestPerJobTimeout: a job whose deadline expires fails with a context
// error; the server keeps serving.
func TestPerJobTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := simSpec(1)
	spec.Accesses = 5_000_000
	spec.TimeoutMS = 1
	var v view
	if code := postJSON(t, ts.URL+"/v1/jobs", spec, &v); code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	done := waitTerminal(t, ts.URL, v.ID)
	if done.Status != StatusFailed || !strings.Contains(done.Error, "deadline") {
		t.Errorf("timed-out job: %+v, want failed with deadline error", done)
	}
	// The daemon is still healthy.
	var ok view
	if code := postJSON(t, ts.URL+"/v1/jobs", simSpec(2), &ok); code != http.StatusAccepted {
		t.Fatalf("post-timeout submit: HTTP %d", code)
	}
	if v := waitTerminal(t, ts.URL, ok.ID); v.Status != StatusDone {
		t.Errorf("post-timeout job ended %s (%s)", v.Status, v.Error)
	}
}

// TestArtifactJob runs a registry artifact through the service and
// expects its rendered text back.
func TestArtifactJob(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var v view
	if code := postJSON(t, ts.URL+"/v1/jobs", JobSpec{Artifact: "table5", Accesses: 20000}, &v); code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	done := waitTerminal(t, ts.URL, v.ID)
	if done.Status != StatusDone {
		t.Fatalf("artifact job ended %s (%s)", done.Status, done.Error)
	}
	var res resultBody
	if code := getJSON(t, ts.URL+"/v1/jobs/"+v.ID+"/result", &res); code != http.StatusOK {
		t.Fatalf("result: HTTP %d", code)
	}
	if !strings.Contains(res.Text, "Table V") {
		t.Errorf("artifact text missing the table header:\n%.200s", res.Text)
	}
}

// TestBadRequests covers the validation surface: malformed JSON, unknown
// fields, unknown workloads/LLCs/artifacts, empty batches, unknown ids,
// and premature result fetches.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed", `{`, http.StatusBadRequest},
		{"unknown field", `{"wrkload":"cg"}`, http.StatusBadRequest},
		{"missing llc", `{"workload":"cg"}`, http.StatusBadRequest},
		{"unknown workload", `{"workload":"nope","llc":"SRAM"}`, http.StatusBadRequest},
		{"unknown llc", `{"workload":"cg","llc":"nope"}`, http.StatusBadRequest},
		{"unknown config", `{"workload":"cg","llc":"SRAM","config":"huh"}`, http.StatusBadRequest},
		{"unknown artifact", `{"type":"artifact","artifact":"nope"}`, http.StatusBadRequest},
		{"unknown type", `{"type":"frobnicate"}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: HTTP %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
	if code := postJSON(t, ts.URL+"/v1/jobs/batch", batchRequest{}, nil); code != http.StatusBadRequest {
		t.Errorf("empty batch: HTTP %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/nope", nil); code != http.StatusNotFound {
		t.Errorf("unknown id: HTTP %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/nope/result", nil); code != http.StatusNotFound {
		t.Errorf("unknown id result: HTTP %d, want 404", code)
	}
}

// TestResultBeforeTerminalConflicts: fetching a result for a queued or
// running job answers 409 with the job's current status.
func TestResultBeforeTerminalConflicts(t *testing.T) {
	release := make(chan struct{})
	eng := engine.New()
	s, err := New(Config{Engine: eng, Workers: 1, QueueDepth: 4, DefaultAccesses: 20000})
	if err != nil {
		t.Fatal(err)
	}
	s.testHook = func(*job) { <-release }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	t.Cleanup(func() {
		close(release)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})

	var v view
	if code := postJSON(t, ts.URL+"/v1/jobs", simSpec(1), &v); code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	var pending view
	if code := getJSON(t, ts.URL+"/v1/jobs/"+v.ID+"/result", &pending); code != http.StatusConflict {
		t.Fatalf("pending result: HTTP %d, want 409", code)
	}
	if pending.Status.Terminal() {
		t.Errorf("pending job reported terminal status %s", pending.Status)
	}
}

// TestStatsEndpoint sanity-checks the aggregate surface.
func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var v view
	if code := postJSON(t, ts.URL+"/v1/jobs", simSpec(1), &v); code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	waitTerminal(t, ts.URL, v.ID)
	var stats struct {
		Engine   engine.Stats `json:"engine"`
		QueueCap int          `json:"queue_cap"`
		Jobs     int          `json:"jobs"`
	}
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: HTTP %d", code)
	}
	if stats.Engine.Jobs() != 1 || stats.Jobs != 1 || stats.QueueCap == 0 {
		t.Errorf("stats = %+v, want 1 engine job / 1 tracked job", stats)
	}
}

// TestJobEviction bounds the daemon's job-record memory: finished jobs
// beyond MaxJobs are evicted oldest-first, queued/running never.
func TestJobEviction(t *testing.T) {
	eng := engine.New()
	s, err := New(Config{Engine: eng, MaxJobs: 4, QueueDepth: 16, DefaultAccesses: 20000})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})

	var ids []string
	for i := 0; i < 3; i++ {
		var v view
		if code := postJSON(t, ts.URL+"/v1/jobs", simSpec(1), &v); code != http.StatusAccepted {
			t.Fatalf("submit: HTTP %d", code)
		}
		ids = append(ids, v.ID)
		waitTerminal(t, ts.URL, v.ID)
	}
	// Push past MaxJobs; the oldest finished records must go.
	for i := 0; i < 4; i++ {
		var v view
		if code := postJSON(t, ts.URL+"/v1/jobs", simSpec(1), &v); code != http.StatusAccepted {
			t.Fatalf("submit: HTTP %d", code)
		}
		waitTerminal(t, ts.URL, v.ID)
	}
	s.mu.Lock()
	tracked := len(s.jobs)
	s.mu.Unlock()
	if tracked > 4+1 { // +1: eviction runs at submit, before the newest finishes
		t.Errorf("tracking %d job records, want ≤ %d", tracked, 5)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+ids[0], nil); code != http.StatusNotFound {
		t.Errorf("oldest job still resolvable: HTTP %d, want 404 after eviction", code)
	}
}
