// Package serve is the long-running simulation service behind
// cmd/llcsimd: an HTTP API that accepts simulation and artifact jobs
// (single and batch), executes them asynchronously through one shared
// engine.Engine — so concurrent identical design points coalesce on the
// engine's singleflight cache, and a persistent engine.CacheStore makes
// results survive restarts — and answers submit → job id → poll/result.
//
// Robustness is the point of the package: the job queue is bounded and
// overflow is surfaced as HTTP 429 backpressure instead of unbounded
// memory growth; every job runs under the server's lifecycle context
// plus an optional per-job timeout, which propagates into the
// simulator's hot loop; a panicking job is isolated (the job fails, the
// worker survives); and Shutdown drains in-flight and queued work
// before returning. Queue depth, admission/rejection counters and an
// end-to-end latency histogram are published into the shared telemetry
// registry next to the engine's own instruments.
package serve

import (
	"fmt"
	"time"

	"nvmllc/internal/engine"
	"nvmllc/internal/fault"
	"nvmllc/internal/reference"
	"nvmllc/internal/sweep"
	"nvmllc/internal/system"
	"nvmllc/internal/workload"
)

// JobSpec is the wire form of one job. Two kinds are accepted:
//
//   - "sim" (the default): one design point — a workload on an LLC
//     model — answered with the full system.Result;
//   - "artifact": a named sweep-registry artifact (table5, fig1a, ...),
//     answered with its rendered text.
//
// Zero-valued knobs take server defaults, so {"workload":"cg",
// "llc":"Jan_S"} is a complete submission.
type JobSpec struct {
	// Type selects the job kind: "sim" (default) or "artifact".
	Type string `json:"type,omitempty"`

	// Workload and LLC name the design point (Table V workload, Table
	// III model). Config selects the LLC configuration block: "cap"
	// (fixed-capacity, default) or "area" (fixed-area).
	Workload string `json:"workload,omitempty"`
	LLC      string `json:"llc,omitempty"`
	Config   string `json:"config,omitempty"`
	// Accesses, Threads, Cores and Seed shape the trace and machine
	// (defaults: server's DefaultAccesses, 4, 4, 1).
	Accesses int   `json:"accesses,omitempty"`
	Threads  int   `json:"threads,omitempty"`
	Cores    int   `json:"cores,omitempty"`
	Seed     int64 `json:"seed,omitempty"`
	// Contention, Wear, Timeline, Faults, PreWear and HybridSRAMWays
	// mirror the llcsim flags of the same names.
	Contention     bool    `json:"contention,omitempty"`
	Wear           bool    `json:"wear,omitempty"`
	Timeline       bool    `json:"timeline,omitempty"`
	Faults         bool    `json:"faults,omitempty"`
	PreWear        float64 `json:"prewear,omitempty"`
	HybridSRAMWays int     `json:"hybrid_sram_ways,omitempty"`

	// Artifact is the sweep-registry artifact name (type "artifact").
	Artifact string `json:"artifact,omitempty"`

	// TimeoutMS caps this job's execution; zero uses the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// kind normalizes Type.
func (s JobSpec) kind() string {
	if s.Type == "" {
		if s.Artifact != "" {
			return "artifact"
		}
		return "sim"
	}
	return s.Type
}

// timeout resolves the per-job execution cap against the server default.
func (s JobSpec) timeout(def time.Duration) time.Duration {
	if s.TimeoutMS > 0 {
		return time.Duration(s.TimeoutMS) * time.Millisecond
	}
	return def
}

// buildSimJob validates a "sim" spec and compiles it to a streaming
// engine job (the trace is generated chunk-at-a-time per simulation, so
// the server holds O(chunk) trace memory per worker, and cache hits skip
// generation entirely).
func buildSimJob(s JobSpec, defaultAccesses int) (engine.Job, error) {
	var zero engine.Job
	if s.Workload == "" {
		return zero, fmt.Errorf("sim job: workload is required")
	}
	if s.LLC == "" {
		return zero, fmt.Errorf("sim job: llc is required")
	}
	profile, err := workload.ByName(s.Workload)
	if err != nil {
		return zero, err
	}
	models := reference.FixedCapacityModels()
	switch s.Config {
	case "", "cap":
	case "area":
		models = reference.FixedAreaModels()
	default:
		return zero, fmt.Errorf("sim job: unknown config block %q (want cap or area)", s.Config)
	}
	model, err := reference.ModelByName(models, s.LLC)
	if err != nil {
		return zero, err
	}
	accesses := s.Accesses
	if accesses <= 0 {
		accesses = defaultAccesses
	}
	threads := s.Threads
	if threads <= 0 {
		threads = 4
	}
	cores := s.Cores
	if cores <= 0 {
		cores = 4
	}
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}

	cfg := system.Gainestown(model).WithCores(cores)
	cfg.ModelWriteContention = s.Contention
	cfg.TrackWear = s.Wear
	if s.Timeline {
		cfg.Timeline = &system.TimelineConfig{}
		cfg.TrackWear = true // the per-set wear heatmap rides the sampler
	}
	if s.Faults || s.PreWear > 0 {
		cfg.Fault = fault.Config{
			Options:       fault.Options{Class: model.Class},
			PreWearWrites: s.PreWear,
		}
	}
	if s.HybridSRAMWays > 0 {
		cfg.Hybrid = &system.HybridConfig{
			SRAM:     reference.SRAMBaseline(),
			NVM:      model,
			SRAMWays: s.HybridSRAMWays,
		}
		cfg.TrackWear = false // unsupported in hybrid mode
	}
	opts := workload.Options{Accesses: accesses, Threads: threads, Seed: seed}
	return engine.StreamJob(profile, opts, cfg), nil
}

// validateArtifact checks the artifact name against the sweep registry.
func validateArtifact(name string) error {
	if name == "" {
		return fmt.Errorf("artifact job: artifact name is required")
	}
	for _, known := range sweep.ArtifactNames() {
		if known == name {
			return nil
		}
	}
	return fmt.Errorf("artifact job: unknown artifact %q", name)
}
